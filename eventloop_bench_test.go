// Event-loop benchmarks: the simulator's throughput bound is the
// engine event loop, so these measure its hot paths.
//
// BenchmarkEventQueue exercises the timed-event queue under the classic
// "hold" workload (pop the earliest event, schedule a replacement a
// random increment later, repeat) at several queue depths.
// BenchmarkEventQueueContainerHeap runs the identical workload against
// a replica of the queue the engine used before PR 1 — a binary heap
// behind the container/heap interface, which boxes every event and
// blocks inlining — so that speedup stays directly visible.
//
// The remaining benchmarks target the steady-state scheduling paths a
// simulation actually spends its time in: zero-delay self-rescheduling
// (BenchmarkZeroDelayLane), signal fan-out wakeups
// (BenchmarkSignalFanout), proc park/resume round trips
// (BenchmarkProcPingPong), and a full Jacobi3D iteration end to end
// (BenchmarkJacobiStep). Run them all with:
//
//	go test -run xxx -bench . -benchmem
//
// make bench records their trajectory into BENCH_PR2.json.
package gat

import (
	"container/heap"
	"testing"

	"gat/internal/jacobi"
	"gat/internal/machine"
	"gat/internal/sim"
)

// holdDepths are the standing queue sizes benchmarked; figure sweeps
// sit in the hundreds-to-thousands range (one event per in-flight
// message, stream op and parked proc).
var holdDepths = []struct {
	name  string
	depth int
}{
	{"depth64", 64},
	{"depth1k", 1024},
	{"depth16k", 16384},
}

func BenchmarkEventQueue(b *testing.B) {
	for _, c := range holdDepths {
		b.Run(c.name, func(b *testing.B) {
			e := sim.NewEngine()
			rng := sim.NewRNG(1)
			var fn func()
			fn = func() {
				e.Schedule(sim.Time(1+rng.Intn(1000)), fn)
			}
			for i := 0; i < c.depth; i++ {
				e.Schedule(sim.Time(1+rng.Intn(1000)), fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			// Each Step pops one event and pushes its replacement.
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// oldEvent / oldHeap replicate the engine's previous event queue: a
// binary min-heap driven through the container/heap interface.
type oldEvent struct {
	at  sim.Time
	seq uint64
	fn  func()
}

type oldHeap []oldEvent

func (h oldHeap) Len() int { return len(h) }
func (h oldHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oldHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *oldHeap) Push(x any)   { *h = append(*h, x.(oldEvent)) }
func (h *oldHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// BenchmarkZeroDelayLane measures the dominant event class of a real
// simulation: events scheduled with zero delay (signal wakeups, queue
// wakeups, yields, resume thunks). A standing population of 64
// self-rescheduling zero-delay events is stepped one event at a time;
// the virtual clock never advances. The steady state must be 0
// allocs/op.
func BenchmarkZeroDelayLane(b *testing.B) {
	e := sim.NewEngine()
	var fn func()
	fn = func() { e.Schedule(0, fn) }
	for i := 0; i < 64; i++ {
		e.Schedule(0, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkSignalFanout measures one Signal.Fire waking 8 parked procs
// — the completion-broadcast shape of Waitall, barrier rounds, and
// stream drains. Signals are one-shot, so each round uses a fresh
// pre-allocated signal; the per-op cost is the fire, 8 wakeup events,
// and 8 park/resume transfers.
func BenchmarkSignalFanout(b *testing.B) {
	const fanout = 8
	e := sim.NewEngine()
	sigs := make([]*sim.Signal, b.N)
	for i := range sigs {
		sigs[i] = sim.NewSignal()
	}
	for w := 0; w < fanout; w++ {
		e.Spawn("waiter", func(p *sim.Proc) {
			for _, s := range sigs {
				p.Wait(s)
			}
		})
	}
	e.Spawn("driver", func(p *sim.Proc) {
		eng := p.Engine()
		for _, s := range sigs {
			s.Fire(eng)
			p.Yield() // let this round's waiters run and re-park
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkProcPingPong measures one full proc-to-proc round trip: two
// procs exchange a token through two queues, so each op is two queue
// wakeups and two park/resume control transfers. The steady state must
// be 0 allocs/op — this is the path under every blocking MPI call.
func BenchmarkProcPingPong(b *testing.B) {
	e := sim.NewEngine()
	q1, q2 := sim.NewQueue[int](), sim.NewQueue[int]()
	n := b.N
	e.Spawn("ping", func(p *sim.Proc) {
		eng := p.Engine()
		for i := 0; i < n; i++ {
			q1.Push(eng, i)
			q2.Pop(p)
		}
	})
	e.Spawn("pong", func(p *sim.Proc) {
		eng := p.Engine()
		for i := 0; i < n; i++ {
			q1.Pop(p)
			q2.Push(eng, i)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkJacobiStep measures one timed Jacobi3D iteration end to end
// (MPI-D variant, 2 Summit nodes = 12 ranks), the workload every
// figure sweep is made of. b.N becomes the run's timed iteration
// count, so setup and warm-up amortize away and ns/op approaches the
// host cost of simulating one iteration.
func BenchmarkJacobiStep(b *testing.B) {
	m := machine.MustNew(machine.Summit(2))
	cfg := jacobi.Config{Global: [3]int{96, 96, 96}, Warmup: 1, Iters: b.N}
	opts := jacobi.MPIOpts{Device: true}
	b.ReportAllocs()
	b.ResetTimer()
	jacobi.RunMPI(m, cfg, opts)
}

func BenchmarkEventQueueContainerHeap(b *testing.B) {
	for _, c := range holdDepths {
		b.Run(c.name, func(b *testing.B) {
			var h oldHeap
			rng := sim.NewRNG(1)
			var now sim.Time
			seq := uint64(0)
			fn := func() {}
			for i := 0; i < c.depth; i++ {
				seq++
				heap.Push(&h, oldEvent{at: sim.Time(1 + rng.Intn(1000)), seq: seq, fn: fn})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := heap.Pop(&h).(oldEvent)
				now = ev.at
				seq++
				heap.Push(&h, oldEvent{at: now + sim.Time(1+rng.Intn(1000)), seq: seq, fn: fn})
			}
		})
	}
}
