// Event-loop benchmarks: the simulator's throughput bound is the
// engine event loop, so these measure its hot paths.
//
// BenchmarkEventQueue exercises the timed-event queue under the classic
// "hold" workload (pop the earliest event, schedule a replacement a
// random increment later, repeat) at several queue depths and under
// three arrival distributions: uniform increments (the base case the
// calendar queue's bucket geometry adapts to), bimodal near/far (half
// the replacements land ~1ms out, stressing the overflow tier and its
// drain back into the bucket window), and all-ties (every event in a
// depth-sized cohort shares one timestamp, so ordering is carried
// entirely by sequence numbers within a single bucket).
// BenchmarkEventQueueHeap4 runs the uniform workload against a replica
// of the 4-ary array heap the engine used before the calendar queue,
// and BenchmarkEventQueueContainerHeap against the pre-PR-1 binary heap
// behind the container/heap interface — so the calendar's standing is
// directly visible against both ancestors at every depth.
//
// The remaining benchmarks target the steady-state scheduling paths a
// simulation actually spends its time in: zero-delay self-rescheduling
// (BenchmarkZeroDelayLane), signal fan-out wakeups
// (BenchmarkSignalFanout), proc park/resume round trips
// (BenchmarkProcPingPong), and a full Jacobi3D iteration end to end
// (BenchmarkJacobiStep). Run them all with:
//
//	go test -run xxx -bench . -benchmem
//
// make bench records their trajectory into BENCH_PR8.json (BENCH_PR2.json
// and BENCH_PR7.json are kept in-tree as earlier reference points).
package gat

import (
	"container/heap"
	"testing"

	"gat/internal/jacobi"
	"gat/internal/machine"
	"gat/internal/mpi"
	"gat/internal/sim"
)

// holdDepths are the standing queue sizes benchmarked; figure sweeps
// sit in the hundreds-to-thousands range (one event per in-flight
// message, stream op and parked proc).
var holdDepths = []struct {
	name  string
	depth int
}{
	{"depth64", 64},
	{"depth1k", 1024},
	{"depth16k", 16384},
}

func BenchmarkEventQueue(b *testing.B) {
	for _, c := range holdDepths {
		b.Run(c.name, func(b *testing.B) {
			e := sim.NewEngine()
			rng := sim.NewRNG(1)
			var fn func()
			fn = func() {
				e.Schedule(sim.Time(1+rng.Intn(1000)), fn)
			}
			for i := 0; i < c.depth; i++ {
				e.Schedule(sim.Time(1+rng.Intn(1000)), fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			// Each Step pops one event and pushes its replacement.
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// BenchmarkEventQueueBimodal is the hold workload with a near/far
// mixture: half the replacements land within 1µs, half ~1ms out. The
// far half stream through the calendar's overflow tier and re-enter the
// bucket window as the clock advances — the distribution sweeps with
// long-latency network transfers among dense kernel completions produce.
func BenchmarkEventQueueBimodal(b *testing.B) {
	for _, c := range holdDepths {
		b.Run(c.name, func(b *testing.B) {
			e := sim.NewEngine()
			rng := sim.NewRNG(1)
			var fn func()
			fn = func() {
				d := sim.Time(1 + rng.Intn(1000))
				if rng.Intn(2) == 1 {
					d += 1_000_000
				}
				e.Schedule(d, fn)
			}
			for i := 0; i < c.depth; i++ {
				fn()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// BenchmarkEventQueueTies is the hold workload where every replacement
// lands exactly one fixed period after the event it replaces, so the
// whole depth-sized cohort shares a single timestamp and ordering is
// carried purely by sequence numbers — the worst case for bucket
// indexing (everything in one bucket) and the best case for the seq
// tie-break path.
func BenchmarkEventQueueTies(b *testing.B) {
	for _, c := range holdDepths {
		b.Run(c.name, func(b *testing.B) {
			e := sim.NewEngine()
			var fn func()
			fn = func() {
				e.Schedule(1000, fn)
			}
			for i := 0; i < c.depth; i++ {
				e.Schedule(1000, fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// hold4Ev / hold4Heap replicate the 4-ary array heap the engine used
// between PR 1 and the calendar queue: same payload shape, same
// (at, seq) order, direct array code with no interface boxing. The
// calendar queue must hold its own against this at every depth — the
// acceptance bar is calendar ≤ heap at depth16k.
type hold4Ev struct {
	at  sim.Time
	seq uint64
	fn  func()
}

func hold4Before(a, b hold4Ev) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

type hold4Heap []hold4Ev

func (h *hold4Heap) push(e hold4Ev) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !hold4Before(e, q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = e
	*h = q
}

func (h *hold4Heap) pop() hold4Ev {
	q := *h
	min := q[0]
	n := len(q) - 1
	tail := q[n]
	q = q[:n]
	*h = q
	if n == 0 {
		return min
	}
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if hold4Before(q[j], q[best]) {
				best = j
			}
		}
		if !hold4Before(q[best], tail) {
			break
		}
		q[i] = q[best]
		i = best
	}
	q[i] = tail
	return min
}

func BenchmarkEventQueueHeap4(b *testing.B) {
	for _, c := range holdDepths {
		b.Run(c.name, func(b *testing.B) {
			var h hold4Heap
			rng := sim.NewRNG(1)
			var now sim.Time
			seq := uint64(0)
			fn := func() {}
			for i := 0; i < c.depth; i++ {
				seq++
				h.push(hold4Ev{at: sim.Time(1 + rng.Intn(1000)), seq: seq, fn: fn})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := h.pop()
				now = ev.at
				seq++
				h.push(hold4Ev{at: now + sim.Time(1+rng.Intn(1000)), seq: seq, fn: fn})
			}
		})
	}
}

// oldEvent / oldHeap replicate the engine's previous event queue: a
// binary min-heap driven through the container/heap interface.
type oldEvent struct {
	at  sim.Time
	seq uint64
	fn  func()
}

type oldHeap []oldEvent

func (h oldHeap) Len() int { return len(h) }
func (h oldHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oldHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *oldHeap) Push(x any)   { *h = append(*h, x.(oldEvent)) }
func (h *oldHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// BenchmarkZeroDelayLane measures the dominant event class of a real
// simulation: events scheduled with zero delay (signal wakeups, queue
// wakeups, yields, resume thunks). A standing population of 64
// self-rescheduling zero-delay events is stepped one event at a time;
// the virtual clock never advances. The steady state must be 0
// allocs/op.
func BenchmarkZeroDelayLane(b *testing.B) {
	e := sim.NewEngine()
	var fn func()
	fn = func() { e.Schedule(0, fn) }
	for i := 0; i < 64; i++ {
		e.Schedule(0, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkSignalFanout measures one Signal.Fire waking 8 parked procs
// — the completion-broadcast shape of Waitall, barrier rounds, and
// stream drains. Signals are one-shot, so each round uses a fresh
// pre-allocated signal; the per-op cost is the fire, 8 wakeup events,
// and 8 park/resume transfers.
func BenchmarkSignalFanout(b *testing.B) {
	const fanout = 8
	e := sim.NewEngine()
	sigs := make([]*sim.Signal, b.N)
	for i := range sigs {
		sigs[i] = sim.NewSignal()
	}
	for w := 0; w < fanout; w++ {
		e.Spawn("waiter", func(p *sim.Proc) {
			for _, s := range sigs {
				p.Wait(s)
			}
		})
	}
	e.Spawn("driver", func(p *sim.Proc) {
		eng := p.Engine()
		for _, s := range sigs {
			s.Fire(eng)
			p.Yield() // let this round's waiters run and re-park
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkProcPingPong measures one full proc-to-proc round trip: two
// procs exchange a token through two queues, so each op is two queue
// wakeups and two park/resume control transfers. The steady state must
// be 0 allocs/op — this is the path under every blocking MPI call.
func BenchmarkProcPingPong(b *testing.B) {
	e := sim.NewEngine()
	q1, q2 := sim.NewQueue[int](), sim.NewQueue[int]()
	n := b.N
	e.Spawn("ping", func(p *sim.Proc) {
		eng := p.Engine()
		for i := 0; i < n; i++ {
			q1.Push(eng, i)
			q2.Pop(p)
		}
	})
	e.Spawn("pong", func(p *sim.Proc) {
		eng := p.Engine()
		for i := 0; i < n; i++ {
			q1.Pop(p)
			q2.Push(eng, i)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkJacobiStep measures one timed Jacobi3D iteration end to end
// (MPI-D variant, 2 Summit nodes = 12 ranks), the workload every
// figure sweep is made of. b.N is spread over runs of jacobiBenchIters
// iterations on one machine, with the arena records reset between runs
// — the sweep shape the simulator is built for (one engine per data
// point, transient records freed wholesale at the run boundary), so
// record memory stays warm instead of accumulating for the lifetime of
// the benchmark.
func BenchmarkJacobiStep(b *testing.B) {
	const jacobiBenchIters = 128
	m := machine.MustNew(machine.Summit(2))
	w := mpi.NewWorld(m, mpi.DefaultOptions())
	opts := jacobi.MPIOpts{Device: true}
	b.ReportAllocs()
	b.ResetTimer()
	for n := b.N; n > 0; n -= jacobiBenchIters {
		iters := jacobiBenchIters
		if n < iters {
			iters = n
		}
		cfg := jacobi.Config{Global: [3]int{96, 96, 96}, Warmup: 1, Iters: iters}
		jacobi.RunMPIWorld(w, cfg, opts)
		m.ResetTransients()
		w.Reset()
	}
}

func BenchmarkEventQueueContainerHeap(b *testing.B) {
	for _, c := range holdDepths {
		b.Run(c.name, func(b *testing.B) {
			var h oldHeap
			rng := sim.NewRNG(1)
			var now sim.Time
			seq := uint64(0)
			fn := func() {}
			for i := 0; i < c.depth; i++ {
				seq++
				heap.Push(&h, oldEvent{at: sim.Time(1 + rng.Intn(1000)), seq: seq, fn: fn})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := heap.Pop(&h).(oldEvent)
				now = ev.at
				seq++
				heap.Push(&h, oldEvent{at: now + sim.Time(1+rng.Intn(1000)), seq: seq, fn: fn})
			}
		})
	}
}
