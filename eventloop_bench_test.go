// Event-queue benchmarks: the simulator's throughput bound is the
// engine event loop, so these measure the queue under the classic
// "hold" workload (pop the earliest event, schedule a replacement a
// random increment later, repeat) at several queue depths.
//
// BenchmarkEventQueue exercises the real engine with its monomorphic
// 4-ary heap. BenchmarkEventQueueContainerHeap runs the identical
// workload against a replica of the queue the engine used before —
// a binary heap behind the container/heap interface, which boxes every
// event and blocks inlining — so the speedup is directly visible:
//
//	go test -run xxx -bench BenchmarkEventQueue
package gat

import (
	"container/heap"
	"testing"

	"gat/internal/sim"
)

// holdDepths are the standing queue sizes benchmarked; figure sweeps
// sit in the hundreds-to-thousands range (one event per in-flight
// message, stream op and parked proc).
var holdDepths = []struct {
	name  string
	depth int
}{
	{"depth64", 64},
	{"depth1k", 1024},
	{"depth16k", 16384},
}

func BenchmarkEventQueue(b *testing.B) {
	for _, c := range holdDepths {
		b.Run(c.name, func(b *testing.B) {
			e := sim.NewEngine()
			rng := sim.NewRNG(1)
			var fn func()
			fn = func() {
				e.Schedule(sim.Time(1+rng.Intn(1000)), fn)
			}
			for i := 0; i < c.depth; i++ {
				e.Schedule(sim.Time(1+rng.Intn(1000)), fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			// Each Step pops one event and pushes its replacement.
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// oldEvent / oldHeap replicate the engine's previous event queue: a
// binary min-heap driven through the container/heap interface.
type oldEvent struct {
	at  sim.Time
	seq uint64
	fn  func()
}

type oldHeap []oldEvent

func (h oldHeap) Len() int { return len(h) }
func (h oldHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oldHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *oldHeap) Push(x any)   { *h = append(*h, x.(oldEvent)) }
func (h *oldHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func BenchmarkEventQueueContainerHeap(b *testing.B) {
	for _, c := range holdDepths {
		b.Run(c.name, func(b *testing.B) {
			var h oldHeap
			rng := sim.NewRNG(1)
			var now sim.Time
			seq := uint64(0)
			fn := func() {}
			for i := 0; i < c.depth; i++ {
				seq++
				heap.Push(&h, oldEvent{at: sim.Time(1 + rng.Intn(1000)), seq: seq, fn: fn})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := heap.Pop(&h).(oldEvent)
				now = ev.at
				seq++
				heap.Push(&h, oldEvent{at: now + sim.Time(1+rng.Intn(1000)), seq: seq, fn: fn})
			}
		})
	}
}
