// Command benchjson converts `go test -bench` output into the
// gat-bench-v1 JSON schema and merges it into a trajectory file, so
// performance PRs can commit machine-readable before/after numbers.
//
// Schema (gat-bench-v1): one object per label (e.g. "baseline",
// "after"), mapping benchmark name to aggregated ns/op, B/op and
// allocs/op. With -count > 1 the per-benchmark samples are aggregated
// by median, which is robust to scheduling noise on shared hosts.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem -count=6 . | benchjson -label after -out BENCH_PR2.json
//
// If the output file already exists, the new label is merged in and
// existing labels are preserved; re-running a label replaces it. When
// both "baseline" and "after" are present, a comparison table is
// printed to stderr.
//
// Check mode gates CI on performance: instead of recording, the parsed
// results are compared against a committed trajectory label and the
// process fails when a named benchmark regressed beyond the tolerance:
//
//	go test -run xxx -bench . -count=3 . |
//	  benchjson -check BENCH_PR2.json -against after \
//	            -require BenchmarkJacobiStep,BenchmarkZeroDelayLane -max-regress 25
//
// Exit status: 0 within tolerance, 1 on regression, 2 on missing
// benchmarks or unusable input — so a renamed benchmark cannot
// silently disable the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is the aggregated measurement of one benchmark.
type Result struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
	Samples  int     `json:"samples"`
}

// File is the on-disk trajectory document.
type File struct {
	Schema string                       `json:"schema"`
	Labels map[string]map[string]Result `json:"labels"`
}

// benchLine matches one benchmark result line, e.g.
// "BenchmarkFoo/depth64-8   123456   789.0 ns/op   12 B/op   3 allocs/op".
// The -cpu suffix is stripped so labels stay host-independent.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9.]+) allocs/op)?`)

func parse(r io.Reader) (map[string][]Result, error) {
	samples := make(map[string][]Result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		res := Result{}
		res.NsOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			res.BOp, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" {
			res.AllocsOp, _ = strconv.ParseFloat(m[4], 64)
		}
		samples[m[1]] = append(samples[m[1]], res)
	}
	return samples, sc.Err()
}

// median aggregates one benchmark's samples field-wise.
func median(rs []Result) Result {
	pick := func(get func(Result) float64) float64 {
		vals := make([]float64, len(rs))
		for i, r := range rs {
			vals[i] = get(r)
		}
		sort.Float64s(vals)
		n := len(vals)
		if n%2 == 1 {
			return vals[n/2]
		}
		return (vals[n/2-1] + vals[n/2]) / 2
	}
	return Result{
		NsOp:     pick(func(r Result) float64 { return r.NsOp }),
		BOp:      pick(func(r Result) float64 { return r.BOp }),
		AllocsOp: pick(func(r Result) float64 { return r.AllocsOp }),
		Samples:  len(rs),
	}
}

func main() {
	label := flag.String("label", "run", "label to record these results under (e.g. baseline, after)")
	out := flag.String("out", "", "trajectory file to merge into (default: write JSON to stdout)")
	in := flag.String("in", "", "bench output file to read (default: stdin)")
	check := flag.String("check", "", "check mode: trajectory file to compare the input against (no recording)")
	against := flag.String("against", "after", "trajectory label to compare against in -check mode")
	require := flag.String("require", "", "comma-separated benchmarks that must be present and within tolerance in -check mode")
	maxRegress := flag.Float64("max-regress", 25, "allowed ns/op regression over the reference, percent (-check mode)")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		src = f
	}
	samples, err := parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(2)
	}
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	agg := make(map[string]Result, len(samples))
	for _, name := range names {
		agg[name] = median(samples[name])
	}

	if *check != "" {
		os.Exit(runCheck(*check, *against, *require, *maxRegress, agg))
	}

	doc := File{Schema: "gat-bench-v1", Labels: map[string]map[string]Result{}}
	if *out != "" {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, &doc); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not valid gat-bench JSON: %v\n", *out, err)
				os.Exit(2)
			}
		}
		if doc.Labels == nil {
			doc.Labels = map[string]map[string]Result{}
		}
	}
	doc.Schema = "gat-bench-v1"
	doc.Labels[*label] = agg

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if base, ok := doc.Labels["baseline"]; ok {
		if after, ok := doc.Labels["after"]; ok {
			compare(os.Stderr, base, after)
		}
	}
}

// runCheck is the CI regression gate: compare the freshly measured
// medians in agg against the label recorded in the trajectory file and
// return the process exit code (0 ok, 1 regression, 2 unusable).
func runCheck(path, against, require string, maxRegress float64, agg map[string]Result) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: cannot read reference trajectory: %v\n", err)
		return 2
	}
	var doc File
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s is not valid gat-bench JSON: %v\n", path, err)
		return 2
	}
	ref, ok := doc.Labels[against]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: %s has no label %q\n", path, against)
		return 2
	}

	var names []string
	if require != "" {
		for _, n := range strings.Split(require, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	} else {
		// No explicit list: gate every benchmark present in both.
		for n := range agg {
			if _, ok := ref[n]; ok {
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: nothing to check (no overlapping benchmarks)")
		return 2
	}
	sort.Strings(names)

	code := 0
	fmt.Printf("%-42s %12s %12s %8s  %s\n", "benchmark", "ref ns/op", "cur ns/op", "delta", "verdict")
	for _, name := range names {
		r, haveRef := ref[name]
		c, haveCur := agg[name]
		if !haveRef || !haveCur {
			fmt.Printf("%-42s %12s %12s %8s  MISSING (ref=%v cur=%v)\n", name, "-", "-", "-", haveRef, haveCur)
			code = 2
			continue
		}
		if r.NsOp <= 0 {
			// A zeroed reference would make every delta read 0%: the
			// gate can't measure against it, which is a broken
			// trajectory file, not a pass.
			fmt.Printf("%-42s %12.1f %12.1f %8s  BAD REFERENCE (ns/op <= 0)\n", name, r.NsOp, c.NsOp, "-")
			code = 2
			continue
		}
		delta := (c.NsOp - r.NsOp) / r.NsOp * 100
		verdict := "ok"
		if delta > maxRegress {
			verdict = fmt.Sprintf("REGRESSED (> %.0f%%)", maxRegress)
			if code == 0 {
				code = 1
			}
		}
		fmt.Printf("%-42s %12.1f %12.1f %+7.1f%%  %s\n", name, r.NsOp, c.NsOp, delta, verdict)
	}
	switch code {
	case 0:
		fmt.Printf("bench-check: all %d benchmarks within %.0f%% of %q\n", len(names), maxRegress, against)
	case 1:
		fmt.Printf("bench-check: regression beyond %.0f%% of %q\n", maxRegress, against)
	default:
		fmt.Println("bench-check: missing or unusable benchmarks; the gate cannot run")
	}
	return code
}

// compare prints a baseline-vs-after delta table.
func compare(w io.Writer, base, after map[string]Result) {
	names := make([]string, 0, len(after))
	for name := range after {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-42s %12s %12s %8s %10s\n", "benchmark", "base ns/op", "after ns/op", "delta", "allocs")
	for _, name := range names {
		b, a := base[name], after[name]
		delta := 0.0
		if b.NsOp > 0 {
			delta = (a.NsOp - b.NsOp) / b.NsOp * 100
		}
		fmt.Fprintf(w, "%-42s %12.1f %12.1f %+7.1f%% %4.0f -> %.0f\n",
			name, b.NsOp, a.NsOp, delta, b.AllocsOp, a.AllocsOp)
	}
}
