// Command sweep regenerates the paper's figures on the simulated
// machine. Each figure id (fig6a..fig9b) maps to one experiment from
// the per-experiment index in DESIGN.md.
//
// Usage:
//
//	sweep -fig fig7c                # one figure, full node range
//	sweep -fig all -maxnodes 64     # everything, capped sweep
//	sweep -fig fig7a -csv           # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"

	"gat/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure id (fig6a, fig6b, fig7a, fig7b, fig7c, fig8a, fig8b, fig9a, fig9b) or 'all'")
	maxNodes := flag.Int("maxnodes", 0, "cap the node sweep (0 = paper's full range)")
	iters := flag.Int("iters", 0, "timed iterations per run (0 = default 10)")
	warmup := flag.Int("warmup", 0, "warm-up iterations per run (0 = default 3)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	verbose := flag.Bool("v", false, "print per-run progress to stderr")
	flag.Parse()

	opt := bench.Options{MaxNodes: *maxNodes, Iters: *iters, Warmup: *warmup}
	if *verbose {
		opt.Verbose = os.Stderr
	}

	var ids []string
	switch *fig {
	case "all":
		for _, g := range bench.Generators() {
			ids = append(ids, g.ID)
		}
	case "ablations":
		for _, g := range bench.AblationGenerators() {
			ids = append(ids, g.ID)
		}
	default:
		ids = []string{*fig}
	}

	for _, id := range ids {
		f, err := bench.GenerateAny(id, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *csv {
			if err := f.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			f.WriteTable(os.Stdout)
			fmt.Println()
		}
	}
}
