// Command sweep regenerates the paper's figures on the simulated
// machine. Each figure id (fig6a..fig9b) maps to one experiment from
// the per-experiment index in DESIGN.md. Runs execute concurrently on
// a worker pool (one private simulation engine per run); output is
// reassembled in deterministic order, so any -j produces the same
// table and CSV bytes as -j 1.
//
// Usage:
//
//	sweep -fig fig7c                # one figure, full node range
//	sweep -fig all -maxnodes 64     # everything, capped sweep
//	sweep -fig all -j 4 -v          # 4 workers, progress on stderr
//	sweep -fig fig7a -csv           # machine-readable output
//	sweep -fig all -json            # JSON with per-run wall-clock
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"gat/internal/bench"
	"gat/internal/sweep"
)

func main() {
	fig := flag.String("fig", "all", "figure id (fig6a, fig6b, fig7a, fig7b, fig7c, fig8a, fig8b, fig9a, fig9b) or 'all' / 'ablations'")
	maxNodes := flag.Int("maxnodes", 0, "cap the node sweep (0 = paper's full range)")
	iters := flag.Int("iters", 0, "timed iterations per run (0 = default 10)")
	warmup := flag.Int("warmup", 0, "warm-up iterations per run (0 = default 3)")
	jitter := flag.Float64("jitter", 0, "network latency jitter fraction (0 = exactly deterministic; seeded per run)")
	jobs := flag.Int("j", runtime.NumCPU(), "concurrent simulation runs (default: all CPUs)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.Bool("json", false, "emit a JSON report with per-run wall-clock metadata")
	verbose := flag.Bool("v", false, "print per-run progress to stderr")
	flag.Parse()

	opt := sweep.Options{
		Workers: *jobs,
		Bench:   bench.Options{MaxNodes: *maxNodes, Iters: *iters, Warmup: *warmup, Jitter: *jitter},
	}
	if *verbose {
		opt.Progress = os.Stderr
	}

	var ids []string
	switch *fig {
	case "all":
		for _, g := range bench.Generators() {
			ids = append(ids, g.ID)
		}
	case "ablations":
		for _, g := range bench.AblationGenerators() {
			ids = append(ids, g.ID)
		}
	default:
		ids = []string{*fig}
	}

	res, err := sweep.Sweep(ids, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "sweep: %d figures in %v with %d workers\n",
			len(res.Figures), res.Wall.Round(1e6), res.Workers)
	}

	switch {
	case *jsonOut:
		err = res.WriteJSON(os.Stdout)
	case *csv:
		err = res.WriteCSV(os.Stdout)
	default:
		res.WriteTables(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
