// Command sweep runs registered scenarios — app x machine x
// variant-series x sweep-axis compositions — on the simulated
// machines. The paper's figures (fig6a..fig9b) and the ablations are
// themselves registered scenarios, so -fig remains a thin alias. Runs
// execute concurrently on a worker pool (one private simulation engine
// per run); output is reassembled in deterministic order, so any -j
// produces the same table and CSV bytes as -j 1.
//
// Usage:
//
//	sweep -list                             # every registered scenario
//	sweep -fig fig7c                        # one paper figure
//	sweep -fig all -maxnodes 64             # all figures, capped sweep
//	sweep -scenario minimd-lb -j 4 -v       # a non-paper scenario
//	sweep -scenario fig7b -machine frontier # same experiment, other machine
//	sweep -scenario scaling -app minimd -machine perlmutter
//	sweep -scenario jacobi-exascale -shards 4 # parallel-in-run (same bytes)
//	sweep -fig all -json                    # gat-sweep-v3 JSON report
//
// Incremental sweeps: every run is content-addressed (a fingerprint
// over scenario, series, x, nodes, iteration counts, seed, jitter and
// the engine/app/machine versions), so identical runs need never be
// simulated twice.
//
//	sweep -fig all -cache                   # memoize runs on disk
//	sweep -fig all -cache -explain          # ...and say what was cached
//	sweep -fig all -resume partial.json     # re-run only what's missing
//
// A warm -cache sweep emits byte-identical output to a cold one and
// performs zero simulations.
//
// Sweep as a service: point -remote at a sweepd server and the run
// store is shared across machines. -cache and -remote compose into a
// tiered cache (local disk first, then the network); -sweep-id streams
// each completed run to the server's /v1/watch endpoint. A dead or
// unreachable sweepd degrades to plain simulation with a warning —
// remote failures can cost wall time, never figure bytes.
//
//	sweep -fig all -remote http://cachehost:8344
//	sweep -fig all -cache -remote http://cachehost:8344   # tiered
//	sweep -fig all -remote http://cachehost:8344 -sweep-id nightly
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"gat/internal/app"
	"gat/internal/bench"
	"gat/internal/machine"
	"gat/internal/sweep"
	"gat/internal/sweep/store"
	"gat/internal/sweep/store/remote"
)

func main() {
	fig := flag.String("fig", "", "figure id (fig6a..fig9b) or 'all' / 'ablations' — aliases for registered scenarios")
	scenario := flag.String("scenario", "", "registered scenario name (see -list)")
	machineName := flag.String("machine", "", "machine profile override (see -list for profiles)")
	appName := flag.String("app", "", "application override, for app-generic scenarios like 'scaling'")
	list := flag.Bool("list", false, "list registered scenarios, apps and machine profiles, then exit")
	maxNodes := flag.Int("maxnodes", 0, "cap the node sweep (0 = paper's full range)")
	iters := flag.Int("iters", 0, "timed iterations per run (0 = default 10)")
	warmup := flag.Int("warmup", 0, "warm-up iterations per run (0 = default 3)")
	jitter := flag.Float64("jitter", 0, "network latency jitter fraction (0 = exactly deterministic; seeded per run)")
	shards := flag.Int("shards", 1, "parallel-in-run engine shards for scenarios that support them (byte-identical output at any value)")
	jobs := flag.Int("j", runtime.NumCPU(), "concurrent simulation runs (default: all CPUs)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.Bool("json", false, "emit a JSON report with per-run provenance (gat-sweep-v3)")
	cache := flag.Bool("cache", false, "memoize runs in the content-addressed run store")
	cacheDir := flag.String("cache-dir", "", "run store directory (implies -cache; default: user cache dir /gat/sweep)")
	remoteURL := flag.String("remote", "", "sweepd base URL (e.g. http://cachehost:8344); composes with -cache as a tiered store")
	sweepID := flag.String("sweep-id", "", "publish each completed run to the sweepd under this id, feeding its /v1/watch stream (requires -remote)")
	remoteToken := flag.String("remote-token", os.Getenv("SWEEPD_TOKEN"), "bearer token for a sweepd started with -token (default $SWEEPD_TOKEN)")
	resume := flag.String("resume", "", "reuse results from a previous gat-sweep JSON report; only missing/failed runs are simulated")
	explain := flag.Bool("explain", false, "print the per-run provenance table (simulated vs cached, keys) to stderr")
	verbose := flag.Bool("v", false, "print per-run progress to stderr")
	flag.Parse()

	if *list {
		listScenarios(os.Stdout)
		return
	}
	if *jitter < 0 || *jitter >= 1 {
		fatalf("bad -jitter %g: want a fraction in [0,1)", *jitter)
	}
	if *shards < 1 {
		fatalf("bad -shards %d: want at least 1", *shards)
	}
	if *shards > 1 && *jitter > 0 {
		fatalf("-shards %d is incompatible with -jitter: the jitter RNG stream is not partitioned across shards, so sharded jittered runs would not reproduce serial ones; drop one of the two flags", *shards)
	}
	if *machineName != "" {
		if _, err := machine.ProfileByName(*machineName); err != nil {
			fatalf("%v", err)
		}
	}

	opt := sweep.Options{
		Workers:   *jobs,
		Bench:     bench.Options{MaxNodes: *maxNodes, Iters: *iters, Warmup: *warmup, Jitter: *jitter, Shards: *shards},
		Overrides: bench.Overrides{Machine: *machineName, App: *appName},
	}
	if *verbose {
		opt.Progress = os.Stderr
		if *shards > 1 {
			fmt.Fprintf(os.Stderr, "sweep: parallel-in-run shards: %d\n", *shards)
		}
	}
	if *cacheDir != "" {
		*cache = true
	}
	if *cache {
		dir := *cacheDir
		if dir == "" {
			base, err := os.UserCacheDir()
			if err != nil {
				fatalf("no default cache location (%v); pass -cache-dir", err)
			}
			dir = filepath.Join(base, "gat", "sweep")
		}
		st, err := store.Open(dir)
		if err != nil {
			fatalf("%v", err)
		}
		opt.Cache = st
	}
	if *sweepID != "" && *remoteURL == "" {
		fatalf("-sweep-id needs -remote: run publication goes to the sweepd server")
	}
	if *remoteURL != "" {
		rc, err := remote.Open(*remoteURL, remote.WithToken(*remoteToken))
		if err != nil {
			fatalf("%v", err)
		}
		if opt.Cache != nil {
			// Local disk first, network on miss; a remote hit seeds the
			// local tier. Content-addressed entries make tier order a
			// cost decision only — the bytes are identical either way.
			opt.Cache = sweep.Tiered{Local: opt.Cache, Remote: rc}
		} else {
			opt.Cache = rc
		}
		if *sweepID != "" {
			// Publication is advisory: the sweep's own report stays the
			// source of truth, so a failing watch feed warns once and
			// the sweep carries on.
			var warnOnce sync.Once
			opt.Notify = func(run sweep.Run) {
				if err := rc.PublishRun(*sweepID, run.Record()); err != nil {
					warnOnce.Do(func() {
						fmt.Fprintf(os.Stderr, "sweep: warning: publishing runs to %s failed (%v); the watch stream for %q will be incomplete\n",
							*remoteURL, err, *sweepID)
					})
				}
			}
		}
	}
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fatalf("cannot read -resume report: %v", err)
		}
		rep, err := sweep.ReadJSON(f)
		f.Close()
		if err != nil {
			fatalf("-resume %s: %v", *resume, err)
		}
		opt.Prior = sweep.NewPrior(rep)
		if *verbose {
			fmt.Fprintf(os.Stderr, "sweep: resuming from %s (%d reusable runs, schema %s)\n",
				*resume, opt.Prior.Len(), rep.Schema)
		}
	}

	ids, err := resolveIDs(*fig, *scenario)
	if err != nil {
		fatalf("%v", err)
	}

	res, err := sweep.Sweep(ids, opt)
	if err != nil {
		fatalf("%v", err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "sweep: %d figures in %v with %d workers (%s)\n",
			len(res.Figures), res.Wall.Round(1e6), res.Workers, res.Provenance())
	}
	if res.CacheErrors > 0 {
		// Never silent, -v or not: a full disk or rotting cache dir
		// means the memoization the user asked for isn't happening
		// (figure output itself is unaffected — misses re-simulate).
		fmt.Fprintf(os.Stderr, "sweep: warning: %d cache errors (run with -v for details); results are correct but not (fully) memoized\n",
			res.CacheErrors)
	}
	if *explain {
		res.WriteExplain(os.Stderr)
	}

	switch {
	case *jsonOut:
		err = res.WriteJSON(os.Stdout)
	case *csv:
		err = res.WriteCSV(os.Stdout)
	default:
		res.WriteTables(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// resolveIDs maps the -fig alias and -scenario flag to scenario names.
// With neither set, -fig defaults to every paper figure.
func resolveIDs(fig, scenario string) ([]string, error) {
	if scenario != "" {
		if fig != "" {
			return nil, fmt.Errorf("use either -fig or -scenario, not both")
		}
		// Validate here so a typo fails before any run starts.
		if _, err := bench.ScenarioByName(scenario); err != nil {
			return nil, err
		}
		return []string{scenario}, nil
	}
	if fig == "" {
		fig = "all"
	}
	switch fig {
	case "all":
		return scenarioNames(bench.KindFigure), nil
	case "ablations":
		return scenarioNames(bench.KindAblation), nil
	default:
		if _, err := bench.ScenarioByName(fig); err != nil {
			return nil, err
		}
		return []string{fig}, nil
	}
}

func scenarioNames(k bench.Kind) []string {
	var ids []string
	for _, s := range bench.Scenarios() {
		if s.Kind == k {
			ids = append(ids, s.Name)
		}
	}
	return ids
}

// listScenarios prints the registry: scenarios with their default
// composition, then the registered apps and machine profiles.
func listScenarios(w *os.File) {
	fmt.Fprintf(w, "%-22s %-9s %-10s %-11s %s\n", "SCENARIO", "KIND", "APP", "MACHINE", "TITLE")
	for _, s := range bench.Scenarios() {
		appCol := s.App
		if appCol == "" {
			appCol = "-"
		}
		if s.SeriesFor != nil {
			appCol += "*"
		}
		fmt.Fprintf(w, "%-22s %-9s %-10s %-11s %s\n", s.Name, s.Kind, appCol, s.Machine, s.Title)
	}
	fmt.Fprintf(w, "\napps (* = overridable with -app):\n")
	for _, a := range app.Apps() {
		fmt.Fprintf(w, "  %-10s variants: %v\n", a.Name(), a.Variants())
	}
	fmt.Fprintf(w, "\nmachine profiles (-machine):\n")
	fmt.Fprintf(w, "  %-29s %-14s %-9s %s\n", "PROFILE", "TOPOLOGY", "ROUTING", "DESCRIPTION")
	for _, p := range machine.Profiles() {
		// The topology/taper and routing columns come from the built
		// config (any node count: profiles are homogeneous in geometry).
		cfg := p.Build(2)
		fmt.Fprintf(w, "  %-29s %-14s %-9s %s\n", p.Name, cfg.TopologySummary(), cfg.RoutingSummary(), p.Description)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
	os.Exit(2)
}
