// Command claims verifies the paper's qualitative claims (C1–C7 in
// DESIGN.md) against the simulation and prints a PASS/FAIL report.
//
// Usage:
//
//	claims                 # full scale (slow: up to 512 nodes)
//	claims -maxnodes 64    # capped scale (thresholds still apply)
package main

import (
	"flag"
	"fmt"
	"os"

	"gat/internal/bench"
)

func main() {
	maxNodes := flag.Int("maxnodes", 0, "cap the node counts used by the checks (0 = paper scale)")
	iters := flag.Int("iters", 0, "timed iterations per run (0 = default 10)")
	flag.Parse()
	opt := bench.Options{MaxNodes: *maxNodes, Iters: *iters}
	if !bench.CheckClaims(opt, os.Stdout) {
		fmt.Println("\nsome claims FAILED")
		os.Exit(1)
	}
	fmt.Println("\nall claims PASS")
}
