// Command claims verifies the paper's qualitative claims (C1–C7 in
// DESIGN.md) against the simulation and prints a PASS/FAIL report.
//
// Usage:
//
//	claims                 # full scale (slow: up to 512 nodes)
//	claims -maxnodes 64    # capped scale (thresholds still apply)
//	claims -maxnodes 2 -smoke   # CI smoke: report all claims, exit 0
//
// With -smoke the exit status stops depending on the verdicts: every
// claim still runs and reports, but a FAIL does not fail the process.
// CI uses this at tiny scale, where the paper's thresholds are not
// expected to hold — the smoke asserts the checks execute, not that
// the shape claims survive a 2-node machine.
package main

import (
	"flag"
	"fmt"
	"os"

	"gat/internal/bench"
)

func main() {
	maxNodes := flag.Int("maxnodes", 0, "cap the node counts used by the checks (0 = paper scale)")
	iters := flag.Int("iters", 0, "timed iterations per run (0 = default 10)")
	smoke := flag.Bool("smoke", false, "report every claim but exit 0 even on FAIL (for reduced-scale CI runs)")
	flag.Parse()
	opt := bench.Options{MaxNodes: *maxNodes, Iters: *iters}
	ok := bench.CheckClaims(opt, os.Stdout)
	switch {
	case ok:
		fmt.Println("\nall claims PASS")
	case *smoke:
		fmt.Println("\nsome claims FAILED (ignored: -smoke)")
	default:
		fmt.Println("\nsome claims FAILED")
		os.Exit(1)
	}
}
