// Command sweepd serves a shared content-addressed run store plus a
// streaming sweep-watch API over HTTP — sweep-as-a-service. Point many
// machines' `sweep -remote` at one sweepd and every figure any of them
// has ever simulated costs one lookup; attach `curl -N` to the watch
// endpoint and per-run results stream in as cells complete.
//
// Usage:
//
//	sweepd -dir /var/cache/gat-sweep                 # serve on :8344
//	sweepd -dir /mnt/shared/gat -read-only           # lookup-only tier
//	sweepd -addr 127.0.0.1:0 -addr-file /tmp/addr    # random port, for scripts
//
// Then, from any worker machine:
//
//	sweep -fig all -remote http://cachehost:8344 -sweep-id nightly
//	curl -N http://cachehost:8344/v1/watch/nightly   # stream results
//
// Access control is a single shared bearer token: start with -token
// (or SWEEPD_TOKEN) and every endpoint except GET /healthz requires
// "Authorization: Bearer <token>"; workers pass the same value via
// `sweep -remote-token`. No TLS — pair the token with network
// isolation or a TLS-terminating proxy. See the endpoint table in
// README "Sweep as a service".
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"gat/internal/sweep/store"
	"gat/internal/sweepd"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address; use host:0 for an ephemeral port")
	dir := flag.String("dir", "", "run-store directory to serve (created unless -read-only; required)")
	readOnly := flag.Bool("read-only", false, "serve lookups only: the directory must exist and every PUT answers 403")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts wrapping -addr :0)")
	token := flag.String("token", os.Getenv("SWEEPD_TOKEN"), "bearer token required on every endpoint but /healthz (default $SWEEPD_TOKEN; empty = open server)")
	flag.Parse()

	if *dir == "" {
		fatalf("missing -dir: sweepd needs a run-store directory to serve")
	}
	var (
		st  *store.Store
		err error
	)
	if *readOnly {
		st, err = store.OpenReadOnly(*dir)
	} else {
		st, err = store.Open(*dir)
	}
	if err != nil {
		fatalf("%v", err)
	}

	logger := log.New(os.Stderr, "sweepd: ", log.LstdFlags)
	srv := sweepd.New(st, logger.Printf, sweepd.WithToken(*token))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen %s: %v", *addr, err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		// Written after listen succeeds, so a script that waits for the
		// file can connect immediately.
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fatalf("writing -addr-file: %v", err)
		}
	}
	n, _ := st.Len()
	mode := "read-write"
	if st.ReadOnly() {
		mode = "read-only"
	}
	if *token != "" {
		mode += ", token-auth"
	}
	logger.Printf("serving %s (%d entries, %s) on http://%s", st.Dir(), n, mode, bound)

	// No write timeout: /v1/watch streams are long-lived by design.
	// Idle and header timeouts still bound half-open connections.
	server := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          logger,
	}
	if err := server.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sweepd: "+format+"\n", args...)
	os.Exit(2)
}
