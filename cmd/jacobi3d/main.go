// Command jacobi3d runs one configuration of the Jacobi3D proxy
// application on the simulated machine and reports the time per
// iteration plus resource utilization.
//
// Usage:
//
//	jacobi3d -variant charm-d -nodes 8 -odf 4 -global 1536x1536x3072
//	jacobi3d -variant charm-d -nodes 64 -odf 8 -fusion C -graphs
//	jacobi3d -variant mpi-h -nodes 16 -overlap
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"gat/internal/jacobi"
	"gat/internal/machine"
	"gat/internal/sim"
	"gat/internal/timeline"
)

func main() {
	variant := flag.String("variant", "charm-d", "mpi-h | mpi-d | charm-h | charm-d")
	nodes := flag.Int("nodes", 1, "number of nodes")
	machineName := flag.String("machine", "summit", "machine profile (summit, perlmutter, frontier, ...)")
	globalStr := flag.String("global", "768x768x768", "global grid size XxYxZ")
	odf := flag.Int("odf", 1, "overdecomposition factor (charm variants)")
	fusionStr := flag.String("fusion", "none", "kernel fusion: none | A | B | C (charm-d)")
	graphs := flag.Bool("graphs", false, "execute iterations as CUDA-style graphs (charm-d)")
	overlap := flag.Bool("overlap", false, "manual interior/exterior overlap (mpi variants)")
	before := flag.Bool("before-opts", false, "disable the §III-C optimizations (charm variants)")
	iters := flag.Int("iters", 10, "timed iterations")
	warmup := flag.Int("warmup", 3, "warm-up iterations")
	residual := flag.Int("residual", 0, "global residual check every N iterations (0 = off)")
	trace := flag.Bool("trace", false, "record a timeline and print per-resource utilization")
	traceCSV := flag.String("trace-csv", "", "write the raw timeline spans to this CSV file (implies -trace)")
	flag.Parse()
	if *traceCSV != "" {
		*trace = true
	}

	global, err := parseGlobal(*globalStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fusion, err := jacobi.ParseFusion(*fusionStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := jacobi.Config{Global: global, Iters: *iters, Warmup: *warmup}
	mcfg, err := machine.BuildProfile(*machineName, *nodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	m, err := machine.New(mcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *trace {
		m.Eng.SetTracer(sim.NewTracer())
	}

	var res jacobi.Result
	switch *variant {
	case "mpi-h":
		res = jacobi.RunMPI(m, cfg, jacobi.MPIOpts{Overlap: *overlap, ResidualEvery: *residual})
	case "mpi-d":
		res = jacobi.RunMPI(m, cfg, jacobi.MPIOpts{Device: true, Overlap: *overlap, ResidualEvery: *residual})
	case "charm-h", "charm-d":
		opts := jacobi.CharmOpts{
			ODF:           *odf,
			GPUAware:      *variant == "charm-d",
			Fusion:        fusion,
			Graphs:        *graphs,
			ResidualEvery: *residual,
		}
		if !*before {
			opts = opts.Optimized()
		}
		res = jacobi.RunCharm(m, cfg, opts)
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
		os.Exit(2)
	}

	fmt.Printf("variant      %s\n", *variant)
	fmt.Printf("machine      %s\n", *machineName)
	fmt.Printf("nodes        %d (%d GPUs)\n", *nodes, m.Procs())
	fmt.Printf("global grid  %dx%dx%d\n", global[0], global[1], global[2])
	if strings.HasPrefix(*variant, "charm") {
		fmt.Printf("odf          %d (%d chares)\n", *odf, m.Procs()**odf)
	}
	fmt.Printf("time/iter    %v\n", res.TimePerIter)
	fmt.Printf("total        %v (%d timed + %d warm-up iterations)\n", res.Total, *iters, *warmup)
	fmt.Printf("kernels      %d\n", res.Kernels)
	fmt.Printf("network      %d messages, %.1f MB\n", res.NetMsgs, float64(res.NetBytes)/1e6)
	fmt.Printf("sim events   %d\n", res.Events)

	var gpuBusy sim.Time
	for _, g := range m.GPUs {
		gpuBusy += g.BusyTime()
	}
	util := 100 * float64(gpuBusy) / float64(res.Total) / float64(len(m.GPUs))
	fmt.Printf("GPU util     %.1f%%\n", util)

	var peak int64
	for _, g := range m.GPUs {
		if g.MemPeak() > peak {
			peak = g.MemPeak()
		}
	}
	fmt.Printf("GPU mem      %.2f GB peak per GPU (of %.0f GB)\n",
		float64(peak)/(1<<30), float64(m.GPUs[0].MemCapacity())/(1<<30))

	if tr := m.Eng.Tracer(); tr != nil {
		an := timeline.Analyze(tr, res.Total)
		fmt.Printf("\noverlap analysis:\n")
		fmt.Printf("  compute busy   %v (%.1f%% of run)\n", an.Compute, 100*an.ComputeUtilization())
		fmt.Printf("  comm busy      %v\n", an.Comm)
		fmt.Printf("  comm hidden    %v (%.1f%% overlapped with compute)\n",
			an.Hidden, 100*an.OverlapFraction())
		fmt.Println("\ntimeline (busiest resources):")
		printTopResources(tr, res.Total, 12)
		if *traceCSV != "" {
			f, err := os.Create(*traceCSV)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			if err := tr.WriteCSV(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d spans to %s\n", len(tr.Spans), *traceCSV)
		}
	}
}

// printTopResources lists the n busiest traced resources with their
// utilization over the run.
func printTopResources(tr *sim.Tracer, horizon sim.Time, n int) {
	busy := tr.BusyByResource()
	type row struct {
		name string
		t    sim.Time
	}
	rows := make([]row, 0, len(busy))
	for name, t := range busy {
		rows = append(rows, row{name, t})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].t != rows[j].t {
			return rows[i].t > rows[j].t
		}
		return rows[i].name < rows[j].name
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	for _, r := range rows {
		util := 100 * float64(r.t) / float64(horizon)
		fmt.Printf("  %-24s busy %-12v %5.1f%%\n", r.name, r.t, util)
	}
}

func parseGlobal(s string) ([3]int, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 {
		return [3]int{}, fmt.Errorf("bad -global %q, want XxYxZ", s)
	}
	var g [3]int
	for i, p := range parts {
		if _, err := fmt.Sscanf(p, "%d", &g[i]); err != nil || g[i] <= 0 {
			return [3]int{}, fmt.Errorf("bad -global component %q", p)
		}
	}
	return g, nil
}
