// Command gatvet runs the project's determinism and hot-path
// analyzers (internal/analysis/suite) over the named packages and
// fails on any finding. It is the machine enforcement of the contracts
// the byte-identical sweep goldens and the content-addressed run cache
// depend on:
//
//	detmap     no map-iteration order in deterministic/output code
//	wallclock  no host clock inside engine packages
//	seedrand   no process-global math/rand source
//	hotpath    //gat:hotpath functions stay allocation-free (proxies)
//	gatdir     the //gat: annotation vocabulary itself is well-formed
//
// Usage:
//
//	gatvet [-list] [packages]
//
// With no packages, ./... is checked. Exit status: 0 clean, 1 on
// findings, 2 on load/usage errors — mirroring go vet so `make lint`
// and CI gate on it directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gat/internal/analysis"
	"gat/internal/analysis/suite"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and their package scopes, then exit")
	flag.Parse()

	analyzers := suite.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
			if len(a.Scope) > 0 {
				fmt.Printf("%-10s scope: %v\n", "", a.Scope)
			}
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gatvet:", err)
		os.Exit(2)
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			ds, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gatvet:", err)
				os.Exit(2)
			}
			diags = append(diags, ds...)
		}
	}
	analysis.SortDiagnostics(diags)

	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gatvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
