// Command microbench measures the simulator's communication and device
// primitives the way osu_latency/osu_bw measure a real cluster: one-way
// latency and effective bandwidth for every transfer path, and the
// device-side launch/copy overheads. Use it to sanity-check the cost
// model against the calibration targets in DESIGN.md §5.
//
// It also runs the event-queue hold microgrid (arrival distribution x
// standing depth) through the engine's calendar queue; -v adds the
// calendar geometry each cell settled into (bucket width and count,
// occupancy, overflow population, rebuilds), which is where a resize
// pathology — rebuild churn, a width stuck far from the inter-event
// spacing, everything pooling in the overflow tier — shows up first.
//
// Usage: microbench [-j N] [-v]
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"gat/internal/gpu"
	"gat/internal/machine"
	"gat/internal/netsim"
	"gat/internal/sim"
	"gat/internal/sweep"
)

func main() {
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "concurrent simulation runs")
	verbose := flag.Bool("v", false, "print calendar-queue geometry per hold-grid cell")
	flag.Parse()

	fmt.Println("== transfer paths: one-way delivery time (inter-node) ==")
	fmt.Printf("%-10s %14s %14s %14s %14s\n", "size", "host", "gpudirect", "staged", "pipelined")
	// The whole grid (sizes x paths) runs on the worker pool — each
	// cell simulates on its own 2-node machine — and prints in
	// deterministic row order afterwards.
	sizes := []int{10, 12, 14, 16, 18, 20, 22, 24}
	paths := []func(m *machine.Machine, bytes int64, ready *sim.Signal) *sim.Signal{
		func(m *machine.Machine, bytes int64, ready *sim.Signal) *sim.Signal {
			return m.Net.Transfer(0, 1, bytes, ready)
		},
		func(m *machine.Machine, bytes int64, ready *sim.Signal) *sim.Signal {
			return m.Net.TransferGPUDirect(0, 1, bytes, ready)
		},
		func(m *machine.Machine, bytes int64, ready *sim.Signal) *sim.Signal {
			return m.Net.StagedTransfer(m.GPUOf(0), m.GPUOf(6), 0, 1, bytes, ready)
		},
		func(m *machine.Machine, bytes int64, ready *sim.Signal) *sim.Signal {
			return m.Net.PipelinedStagedTransfer(m.GPUOf(0), m.GPUOf(6), 0, 1, bytes,
				m.Cfg.Net.PipelineChunkSize, ready)
		},
	}
	grid := make([]sim.Time, len(sizes)*len(paths))
	sweep.Each(len(grid), *jobs, func(i int) {
		bytes := int64(1) << sizes[i/len(paths)]
		path := paths[i%len(paths)]
		grid[i] = pathTime(bytes, func(m *machine.Machine, ready *sim.Signal) *sim.Signal {
			return path(m, bytes, ready)
		})
	})
	for r, p := range sizes {
		row := grid[r*len(paths) : (r+1)*len(paths)]
		fmt.Printf("%-10s %14v %14v %14v %14v\n", size(int64(1)<<p), row[0], row[1], row[2], row[3])
	}

	fmt.Println("\n== effective bandwidth at 16 MiB (GB/s) ==")
	bytes := int64(16) << 20
	bwRows := []struct {
		name string
		f    func(m *machine.Machine, ready *sim.Signal) *sim.Signal
	}{
		{"host", func(m *machine.Machine, ready *sim.Signal) *sim.Signal {
			return m.Net.Transfer(0, 1, bytes, ready)
		}},
		{"gpudirect", func(m *machine.Machine, ready *sim.Signal) *sim.Signal {
			return m.Net.TransferGPUDirect(0, 1, bytes, ready)
		}},
		{"pipelined", func(m *machine.Machine, ready *sim.Signal) *sim.Signal {
			return m.Net.PipelinedStagedTransfer(m.GPUOf(0), m.GPUOf(6), 0, 1, bytes,
				m.Cfg.Net.PipelineChunkSize, ready)
		}},
		{"intra-node", func(m *machine.Machine, ready *sim.Signal) *sim.Signal {
			return m.Net.Transfer(0, 0, bytes, ready)
		}},
	}
	bw := make([]sim.Time, len(bwRows))
	sweep.Each(len(bwRows), *jobs, func(i int) { bw[i] = pathTime(bytes, bwRows[i].f) })
	for i, row := range bwRows {
		fmt.Printf("  %-12s %6.1f GB/s\n", row.name, float64(bytes)/bw[i].Seconds()/1e9)
	}

	fmt.Println("\n== device primitives (V100 model) ==")
	cfg := gpu.V100()
	fmt.Printf("  kernel launch (host)    %v\n", cfg.KernelLaunchHost)
	fmt.Printf("  kernel dispatch (dev)   %v\n", cfg.KernelDispatch)
	fmt.Printf("  async copy call (host)  %v\n", cfg.CopyLaunchHost)
	fmt.Printf("  graph launch (host)     %v + %v/node\n", cfg.GraphLaunchHost, cfg.GraphNodeHost)
	fmt.Printf("  graph dispatch (dev)    %v/node\n", cfg.GraphNodeDispatch)
	fmt.Printf("  stream sync (host)      %v\n", cfg.SyncOverhead)
	fmt.Printf("  HBM2 roofline           %.0f GB/s\n", cfg.MemBandwidth/1e9)
	fmt.Printf("  host link (per engine)  %.0f GB/s\n", cfg.CopyBandwidth/1e9)

	fmt.Println("\n== kernel time scaling (roofline) ==")
	e := sim.NewEngine()
	d := gpu.New(e, "v100", cfg)
	for _, cells := range []int64{1 << 18, 1 << 21, 1 << 24, 1 << 27, 603979776} {
		fmt.Printf("  %11d cells  update %v\n", cells, d.KernelTime(cells*24))
	}

	fmt.Println("\n== event queue: hold workload ns/op (calendar queue) ==")
	fmt.Printf("%-10s %10s %10s %10s\n", "depth", "uniform", "bimodal", "ties")
	for _, depth := range []int{64, 1024, 16384} {
		var cells [len(holdDists)]float64
		var geom [len(holdDists)]sim.QueueStats
		for i, dist := range holdDists {
			cells[i], geom[i] = holdCell(depth, dist.next)
		}
		fmt.Printf("%-10d %10.1f %10.1f %10.1f\n", depth, cells[0], cells[1], cells[2])
		if *verbose {
			for i, dist := range holdDists {
				g := geom[i]
				fmt.Printf("    %-8s width %-8v buckets %-6d in-buckets %-6d overflow %-6d maxchain %-4d resizes %d\n",
					dist.name, g.BucketWidth, g.Buckets, g.InBuckets, g.Overflow, g.MaxBucketLen, g.Resizes)
			}
		}
	}

	fmt.Println("\n== network config (Summit EDR fat tree) ==")
	ncfg := netsim.Summit()
	fmt.Printf("  base latency            %v (+%v/hop)\n", ncfg.LatencyBase, ncfg.LatencyPerHop)
	fmt.Printf("  injection bandwidth     %.0f GB/s\n", ncfg.InjectionBW/1e9)
	fmt.Printf("  rendezvous threshold    %d KiB\n", ncfg.RendezvousThreshold>>10)
	fmt.Printf("  pipeline chunk          %d MiB + %v/chunk\n",
		ncfg.PipelineChunkSize>>20, ncfg.PipelineChunkOverhead)
}

// holdDists are the arrival distributions of the hold microgrid,
// mirroring the BenchmarkEventQueue* variants: uniform short gaps,
// a near/far bimodal mix exercising the overflow tier, and all-ties
// (fixed period, ordering carried by sequence numbers alone).
var holdDists = [3]struct {
	name string
	next func(rng *sim.RNG) sim.Time
}{
	{"uniform", func(rng *sim.RNG) sim.Time { return sim.Time(1 + rng.Intn(1000)) }},
	{"bimodal", func(rng *sim.RNG) sim.Time {
		d := sim.Time(1 + rng.Intn(1000))
		if rng.Intn(2) == 1 {
			d += 1_000_000
		}
		return d
	}},
	{"ties", func(*sim.RNG) sim.Time { return 1000 }},
}

// holdCell runs one hold-workload cell — pop the earliest event,
// schedule a replacement drawn from dist, repeat — at the given
// standing depth, returning wall ns/op and the calendar geometry the
// queue settled into. Cells run serially: wall timing under a worker
// pool would measure scheduler contention, not the queue.
func holdCell(depth int, dist func(*sim.RNG) sim.Time) (float64, sim.QueueStats) {
	e := sim.NewEngine()
	rng := sim.NewRNG(1)
	var fn func()
	fn = func() { e.Schedule(dist(rng), fn) }
	for i := 0; i < depth; i++ {
		fn()
	}
	const ops = 1 << 18
	start := time.Now()
	for i := 0; i < ops; i++ {
		e.Step()
	}
	wall := time.Since(start)
	return float64(wall.Nanoseconds()) / ops, e.QueueStats()
}

// pathTime measures one delivery on a fresh 2-node machine.
func pathTime(bytes int64, f func(m *machine.Machine, ready *sim.Signal) *sim.Signal) sim.Time {
	m := machine.MustNew(machine.Summit(2))
	var at sim.Time
	f(m, sim.FiredSignal()).OnFire(m.Eng, func() { at = m.Eng.Now() })
	m.Eng.Run()
	return at
}

func size(bytes int64) string {
	switch {
	case bytes >= 1<<20:
		return fmt.Sprintf("%dMiB", bytes>>20)
	case bytes >= 1<<10:
		return fmt.Sprintf("%dKiB", bytes>>10)
	default:
		return fmt.Sprintf("%dB", bytes)
	}
}
