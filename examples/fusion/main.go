// Fusion example: strong-scaling survival kit for fine-grained GPU
// tasks — kernel fusion (§III-D1) and CUDA-graph execution (§III-D2)
// on an overdecomposed Jacobi3D at the edge of strong scaling.
//
// Run: go run ./examples/fusion
package main

import (
	"fmt"

	"gat/internal/jacobi"
	"gat/internal/machine"
)

func main() {
	const nodes = 16
	const odf = 8
	cfg := jacobi.Config{Global: [3]int{768, 768, 768}, Warmup: 2, Iters: 8}
	fmt.Printf("Jacobi3D 768^3 on %d nodes, ODF-%d (%d fine-grained chares)\n\n",
		nodes, odf, nodes*6*odf)
	fmt.Printf("%-12s %-8s %14s %10s %12s\n", "fusion", "graphs", "time/iter", "kernels", "vs baseline")

	var base jacobi.Result
	for _, fusion := range []jacobi.Fusion{jacobi.FusionNone, jacobi.FusionA, jacobi.FusionB, jacobi.FusionC} {
		for _, graphs := range []bool{false, true} {
			m := machine.MustNew(machine.Summit(nodes))
			res := jacobi.RunCharm(m, cfg, jacobi.CharmOpts{
				ODF: odf, GPUAware: true, Fusion: fusion, Graphs: graphs,
			}.Optimized())
			if fusion == jacobi.FusionNone && !graphs {
				base = res
			}
			speedup := float64(base.TimePerIter) / float64(res.TimePerIter)
			fmt.Printf("%-12s %-8v %14v %10d %11.2fx\n",
				fusion, graphs, res.TimePerIter, res.Kernels, speedup)
		}
	}
	fmt.Println("\nFusion cuts kernel-launch overhead; graphs cut the host-side launch")
	fmt.Println("work that dominates when many fine-grained chares share each core.")
}
