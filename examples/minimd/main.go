// MiniMD: a molecular-dynamics proxy in the style of the workloads the
// paper's introduction motivates (NAMD-class simulations on thousands
// of GPUs). Space is decomposed into patches (chares); each timestep a
// patch runs a force kernel on the GPU, exchanges boundary atoms with
// its 6 spatial neighbors over GPU-aware channels, and integrates.
// Unlike Jacobi's uniform grid, patch densities are non-uniform, so the
// example also shows periodic load balancing.
//
// Run: go run ./examples/minimd
package main

import (
	"fmt"

	"gat/internal/charm"
	"gat/internal/comm"
	"gat/internal/core"
	"gat/internal/gpu"
	"gat/internal/sim"
)

const (
	nodes     = 4
	odf       = 4
	timesteps = 12
	// Force kernels are ~30x the cost of a Jacobi update per byte
	// (neighbor lists), boundary exchanges are small.
	atomBytesPerPatch = 2 << 20
	boundaryBytes     = 96 << 10
	forceCostFactor   = 30
	rebalanceEvery    = 4
)

type patch struct {
	stream   *gpu.Stream
	channels []*comm.Channel
	peers    []int
	gate     *charm.Gate
	step     int
	density  float64 // relative atom density of this spatial region
}

func buildSystem(balance bool) (*core.System, *sim.Counter) {
	sys := core.NewSystem(nodes)
	n := sys.RT.NumPEs() * odf
	done := sim.NewCounter(n)

	var arr *charm.Array
	var drive func(el *charm.Elem, ctx *charm.Ctx)
	entries := []charm.EntryFn{
		func(el *charm.Elem, ctx *charm.Ctx, m charm.Msg) { drive(el, ctx) },
	}
	// A 1-D chain of patches with a dense cluster in the middle — the
	// solvated-protein density profile in miniature.
	arr = sys.NewTaskArray("patch", n, entries, func(ix charm.Index) any {
		density := 1.0
		if ix[0] >= n/3 && ix[0] < n/2 {
			density = 6.0
		}
		return &patch{gate: charm.NewGate(), density: density}
	})

	elems := arr.Elems()
	for i, el := range elems {
		p := el.State.(*patch)
		for _, d := range []int{-1, 1} {
			j := i + d
			if j < 0 || j >= n {
				continue
			}
			p.peers = append(p.peers, j)
		}
		// Channels are created once from the lower index.
		if i+1 < n {
			ch := sys.Channel(el, elems[i+1])
			p.channels = append(p.channels, ch)
			elems[i+1].State.(*patch).channels = append([]*comm.Channel{ch},
				elems[i+1].State.(*patch).channels...)
		}
	}

	var rebalances int
	drive = func(el *charm.Elem, ctx *charm.Ctx) {
		p := el.State.(*patch)
		if p.stream == nil || p.stream.Device() != sys.GPUFor(el) {
			p.stream = sys.GPUFor(el).NewStream("force", gpu.PriorityNormal)
		}
		if p.step == timesteps {
			done.Add(ctx.Engine())
			return
		}
		step := p.step
		p.step++

		// Force computation scales with local density.
		forceBytes := int64(float64(atomBytesPerPatch) * p.density * forceCostFactor / odf)
		force := ctx.LaunchKernelBytes(p.stream, "force", forceBytes)

		// Exchange boundary atoms with spatial neighbors.
		for k, ch := range p.channels {
			peerIdx := p.peers[k]
			_ = peerIdx
			ctx.Charge(500 * sim.Nanosecond)
			ch.Send(el.Flat, step, boundaryBytes, force, nil)
			ctx.Charge(500 * sim.Nanosecond)
			ch.Recv(el.Flat, step, ctx.CommCallback("boundary", func(ctx *charm.Ctx) {
				p.gate.Arrive(ctx, step, nil)
			}))
		}
		p.gate.Expect(ctx, step, len(p.channels), func(ctx *charm.Ctx) {
			// Integrate (cheap kernel), then next step via HAPI.
			ctx.LaunchKernelBytes(p.stream, "integrate", atomBytesPerPatch/int64(odf))
			ctx.HAPICallback(p.stream, "next", func(ctx *charm.Ctx) {
				if balance && p.step%rebalanceEvery == 0 && p.step < timesteps && el.Flat == 0 {
					rebalances++
					arr.RebalanceGreedy(atomBytesPerPatch).OnFire(ctx.Engine(), func() {})
				}
				drive(el, ctx)
			})
		})
	}

	arr.Broadcast(charm.Msg{Entry: 0})
	return sys, done
}

func run(balance bool) sim.Time {
	sys, done := buildSystem(balance)
	t := sys.Run()
	if done.Remaining() != 0 {
		panic("minimd: patches did not finish")
	}
	return t
}

func main() {
	fmt.Printf("miniMD: %d patches on %d GPUs, dense cluster = 6x force cost\n", nodes*6*odf, nodes*6)
	static := run(false)
	fmt.Printf("  static patches:          %v\n", static)
	balanced := run(true)
	fmt.Printf("  with load balancing:     %v\n", balanced)
	fmt.Printf("  improvement: %.1f%%\n", 100*(float64(static)-float64(balanced))/float64(static))
}
