// MiniMD: drive the registered molecular-dynamics proxy app through
// the public experiment layer — the app registry plus the machine
// profile registry — instead of hand-wiring engines.
//
// miniMD (internal/app) decomposes space into patches (chares); each
// timestep a patch runs a force kernel on the GPU, exchanges boundary
// atoms with its spatial neighbors over GPU-aware channels, and
// integrates. Patch densities are non-uniform (a dense cluster in the
// middle of the domain), so its charm-lb variant exercises periodic
// load balancing. The same composition is registered as the
// "minimd-lb" scenario for cmd/sweep.
//
// Run: go run ./examples/minimd
package main

import (
	"fmt"
	"os"

	"gat/internal/app"
	"gat/internal/machine"
)

const nodes = 4

func main() {
	md, err := app.ByName("minimd")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	run := func(variant string) float64 {
		cfg, err := machine.BuildProfile("summit", nodes)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		m, err := machine.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exec, err := md.BuildRun(m, variant, md.Defaults(nodes))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return exec().Total.Millis()
	}

	p := md.Defaults(nodes)
	fmt.Printf("miniMD: %d patches on %d GPUs, dense cluster = 6x force cost\n",
		nodes*6*p.ODF, nodes*6)
	static := run("charm-static")
	fmt.Printf("  static patches:          %.3f ms\n", static)
	balanced := run("charm-lb")
	fmt.Printf("  with load balancing:     %.3f ms\n", balanced)
	fmt.Printf("  improvement: %.1f%%\n", 100*(static-balanced)/static)
}
