// Quickstart: build a ring of GPU-accelerated asynchronous tasks with
// the core API and watch overdecomposition hide communication.
//
// Each task repeatedly runs a GPU kernel and then sends a device buffer
// to its ring neighbor over a GPU-aware channel. With one task per GPU
// (ODF-1) the communication is exposed; with four tasks per GPU (ODF-4)
// the scheduler interleaves them so one task's transfer overlaps
// another's kernel — the paper's core mechanism, in ~100 lines.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"gat/internal/charm"
	"gat/internal/comm"
	"gat/internal/core"
	"gat/internal/gpu"
	"gat/internal/sim"
)

const (
	nodes = 2
	steps = 20
)

// task is one ring element's state.
type task struct {
	stream *gpu.Stream
	next   *comm.Channel // channel to the partner we send to
	prev   *comm.Channel // channel we receive from
	step   int
	gate   *charm.Gate
}

func run(odf int) sim.Time {
	sys := core.NewSystem(nodes)
	n := sys.RT.NumPEs() * odf
	done := sim.NewCounter(n)

	var arr *charm.Array
	var drive func(el *charm.Elem, ctx *charm.Ctx)
	entries := []charm.EntryFn{
		func(el *charm.Elem, ctx *charm.Ctx, m charm.Msg) { drive(el, ctx) },
	}
	arr = sys.NewTaskArray("ring", n, entries, func(ix charm.Index) any {
		return &task{gate: charm.NewGate()}
	})
	// Wire a cross-node exchange: task i talks to task i + n/2, which
	// the block mapping places on the other node.
	elems := arr.Elems()
	for i, el := range elems {
		nxt := elems[(i+n/2)%n]
		ch := sys.Channel(el, nxt)
		el.State.(*task).next = ch
		nxt.State.(*task).prev = ch
		el.State.(*task).stream = sys.GPUFor(el).NewStream("work", gpu.PriorityNormal)
	}

	// Finer tasks do proportionally less compute and exchange
	// proportionally smaller buffers, like stencil halos.
	kernelBytes := int64(256 << 20 / odf) // fixed total work per GPU
	msgBytes := int64(1 << 20 / odf)      // fixed total traffic per GPU

	drive = func(el *charm.Elem, ctx *charm.Ctx) {
		st := el.State.(*task)
		if st.step == steps {
			done.Add(ctx.Engine())
			return
		}
		step := st.step
		st.step++
		// Compute, then pass a device buffer around the ring; the next
		// step starts when our own kernel is done AND the neighbor's
		// buffer has arrived.
		k := ctx.LaunchKernelBytes(st.stream, "work", kernelBytes)
		st.next.Send(el.Flat, step, msgBytes, k, nil)
		st.prev.Recv(el.Flat, step, ctx.CommCallback("ringRecv", func(ctx *charm.Ctx) {
			st.gate.Arrive(ctx, step, nil)
		}))
		st.gate.Expect(ctx, step, 1, func(ctx *charm.Ctx) {
			ctx.HAPICallback(st.stream, "next", func(ctx *charm.Ctx) { drive(el, ctx) })
		})
	}

	arr.Broadcast(charm.Msg{Entry: 0})
	total := sys.Run()
	if done.Remaining() != 0 {
		panic("quickstart: tasks did not finish")
	}
	return total
}

func main() {
	fmt.Println("ring of GPU tasks, 2 nodes x 6 GPUs, 20 steps, halo-like messages")
	base := run(1)
	fmt.Printf("  ODF-1 (one task per GPU):   %v\n", base)
	over := run(4)
	fmt.Printf("  ODF-4 (four tasks per GPU): %v\n", over)
	improvement := 100 * (float64(base) - float64(over)) / float64(base)
	fmt.Printf("  overdecomposition hides communication: %.1f%% faster\n", improvement)
	if over >= base {
		fmt.Println("  (unexpected: no overlap benefit)")
		os.Exit(1)
	}
}
