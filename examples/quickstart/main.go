// Quickstart: run a registered scenario through the experiment layer
// and watch overdecomposition hide communication.
//
// The "ring-odf" scenario composes the `ring` app (a ring of
// GPU-accelerated asynchronous tasks, each repeatedly running a kernel
// and passing a device buffer to a partner) with the Summit machine
// profile and an ODF sweep axis. With one task per GPU (ODF-1) the
// communication is exposed; with more tasks per GPU the scheduler
// interleaves them so one task's transfer overlaps another's kernel —
// the paper's core mechanism, through the same scenario API cmd/sweep
// uses. `sweep -list` shows every registered scenario.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"gat/internal/bench"
)

func main() {
	fmt.Println("scenario ring-odf: ring of GPU tasks, 2 nodes, halo-like messages")
	fig, err := bench.GenerateAny("ring-odf", bench.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fig.WriteTable(os.Stdout)

	at := func(odf int) float64 {
		for _, p := range fig.Series[0].Points {
			if p.Nodes == odf {
				return p.Value
			}
		}
		return 0
	}
	base, over := at(1), at(4)
	if base == 0 || over == 0 {
		fmt.Fprintln(os.Stderr, "quickstart: scenario missing ODF-1/ODF-4 points")
		os.Exit(1)
	}
	improvement := 100 * (base - over) / base
	fmt.Printf("\noverdecomposition hides communication: ODF-4 is %.1f%% faster than ODF-1\n", improvement)
	if over >= base {
		fmt.Println("(unexpected: no overlap benefit)")
		os.Exit(1)
	}
}
