// Load-balance example: the adaptive-runtime payoff of
// overdecomposition (§I). A stencil-like task array has a hot corner —
// some tasks cost 8x more GPU work than others. Because work lives in
// migratable chares, the greedy load balancer can redistribute them;
// with one task per PE there is nothing to move.
//
// Run: go run ./examples/loadbalance
package main

import (
	"fmt"

	"gat/internal/charm"
	"gat/internal/core"
	"gat/internal/gpu"
	"gat/internal/sim"
)

const (
	nodes  = 2
	odf    = 4
	phases = 6
	steps  = 5 // GPU rounds per phase
)

type work struct {
	stream *gpu.Stream
	bytes  int64
	step   int
}

func run(balance bool) sim.Time {
	sys := core.NewSystem(nodes)
	n := sys.RT.NumPEs() * odf

	var arr *charm.Array
	var phaseDone *sim.Counter
	var drive func(el *charm.Elem, ctx *charm.Ctx)
	entries := []charm.EntryFn{
		func(el *charm.Elem, ctx *charm.Ctx, m charm.Msg) { drive(el, ctx) },
	}
	arr = sys.NewTaskArray("stencil", n, entries, func(ix charm.Index) any {
		// Hot corner: the first eighth of the tasks carry 8x the load.
		bytes := int64(8 << 20)
		if ix[0] < n/8 {
			bytes *= 8
		}
		return &work{bytes: bytes}
	})

	drive = func(el *charm.Elem, ctx *charm.Ctx) {
		st := el.State.(*work)
		if st.stream == nil || st.stream.Device() != sys.GPUFor(el) {
			// First run, or the element migrated: bind to the local GPU.
			st.stream = sys.GPUFor(el).NewStream("work", gpu.PriorityNormal)
		}
		if st.step == steps {
			st.step = 0
			phaseDone.Add(ctx.Engine())
			return
		}
		st.step++
		ctx.LaunchKernelBytes(st.stream, "stencil", st.bytes)
		ctx.HAPICallback(st.stream, "next", func(ctx *charm.Ctx) { drive(el, ctx) })
	}

	eng := sys.Engine()
	var runPhase func(p int)
	runPhase = func(p int) {
		if p == phases {
			return
		}
		phaseDone = sim.NewCounter(n)
		phaseDone.Done().OnFire(eng, func() {
			if balance {
				arr.RebalanceGreedy(8<<20).OnFire(eng, func() { runPhase(p + 1) })
			} else {
				runPhase(p + 1)
			}
		})
		arr.Broadcast(charm.Msg{Entry: 0})
	}
	runPhase(0)
	return sys.Run()
}

func main() {
	fmt.Printf("imbalanced stencil: %d tasks on %d GPUs, hot corner carries 8x load\n",
		nodes*6*odf, nodes*6)
	static := run(false)
	fmt.Printf("  static placement:      %v\n", static)
	balanced := run(true)
	fmt.Printf("  greedy load balancing: %v\n", balanced)
	fmt.Printf("  improvement: %.1f%%\n", 100*(float64(static)-float64(balanced))/float64(static))
}
