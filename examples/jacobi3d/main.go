// Jacobi3D example: the paper's proxy application, all four variants
// side by side on a small cluster — the quick version of Fig 7.
//
// Run: go run ./examples/jacobi3d
package main

import (
	"fmt"

	"gat/internal/jacobi"
	"gat/internal/machine"
)

func main() {
	const nodes = 4
	cfg := jacobi.Config{Global: [3]int{768, 768, 1536}, Warmup: 2, Iters: 8}
	fmt.Printf("Jacobi3D on %d simulated Summit nodes, %dx%dx%d grid\n\n",
		nodes, cfg.Global[0], cfg.Global[1], cfg.Global[2])

	type row struct {
		name string
		run  func(m *machine.Machine) jacobi.Result
	}
	rows := []row{
		{"MPI-H   (host staging)", func(m *machine.Machine) jacobi.Result {
			return jacobi.RunMPI(m, cfg, jacobi.MPIOpts{})
		}},
		{"MPI-D   (CUDA-aware)", func(m *machine.Machine) jacobi.Result {
			return jacobi.RunMPI(m, cfg, jacobi.MPIOpts{Device: true})
		}},
		{"Charm-H (tasks + host staging)", func(m *machine.Machine) jacobi.Result {
			return jacobi.RunCharm(m, cfg, jacobi.CharmOpts{ODF: 4}.Optimized())
		}},
		{"Charm-D (tasks + GPU-aware)", func(m *machine.Machine) jacobi.Result {
			return jacobi.RunCharm(m, cfg, jacobi.CharmOpts{ODF: 2, GPUAware: true}.Optimized())
		}},
	}

	var base jacobi.Result
	for i, r := range rows {
		m := machine.MustNew(machine.Summit(nodes))
		res := r.run(m)
		if i == 0 {
			base = res
		}
		speedup := float64(base.TimePerIter) / float64(res.TimePerIter)
		fmt.Printf("  %-32s %10v/iter   %.2fx vs MPI-H\n", r.name, res.TimePerIter, speedup)
	}
	fmt.Println("\nCharm-D combines automatic overlap with GPUDirect-style transfers,")
	fmt.Println("the configuration the paper scales to 3,072 GPUs (§IV-C).")
}
