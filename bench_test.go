// Package gat's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (one benchmark per figure, fig6a..fig9b,
// plus the ablations in DESIGN.md). Each benchmark prints the figure's
// rows — the same series the paper plots — so `go test -bench=.` is the
// reproduction harness.
//
// Scale knobs (environment):
//
//	GAT_MAX_NODES  cap the node sweep (default 128 here, so the whole
//	               suite fits a default `go test` timeout; the paper's
//	               full 512-node range: GAT_MAX_NODES=512 or cmd/sweep)
//	GAT_ITERS      timed iterations per run (default 5 here; 10 in
//	               cmd/sweep and EXPERIMENTS.md)
//	GAT_JOBS       concurrent simulation runs per figure (default
//	               GOMAXPROCS; 1 recovers the serial path)
package gat

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"gat/internal/bench"
	"gat/internal/sweep"
)

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func benchOptions() bench.Options {
	return bench.Options{
		MaxNodes: envInt("GAT_MAX_NODES", 128),
		Iters:    envInt("GAT_ITERS", 5),
		Warmup:   2,
	}
}

// benchFigure regenerates one figure per benchmark iteration — its
// independent runs spread over the sweep worker pool — and prints the
// figure's rows once.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	opt := sweep.Options{
		Workers: envInt("GAT_JOBS", 0),
		Bench:   benchOptions(),
	}
	var printed bool
	for i := 0; i < b.N; i++ {
		res, err := sweep.Sweep([]string{id}, opt)
		if err != nil {
			b.Fatal(err)
		}
		fig := res.Figures[0].Figure
		if len(fig.Series) == 0 {
			b.Fatalf("%s: empty figure", id)
		}
		if !printed {
			printed = true
			fmt.Println()
			fig.WriteTable(os.Stdout)
		}
		// Expose the final data point of the first and last series as
		// metrics, so regressions in the headline numbers are visible
		// in benchmark diffs.
		first := fig.Series[0]
		last := fig.Series[len(fig.Series)-1]
		b.ReportMetric(first.Points[len(first.Points)-1].Value, first.Name+"@max")
		b.ReportMetric(last.Points[len(last.Points)-1].Value, last.Name+"@max")
	}
}

// BenchmarkFig6aWeakBeforeAfter reproduces Fig 6a: weak scaling of
// Charm-H (ODF-4) before vs after the §III-C optimizations.
func BenchmarkFig6aWeakBeforeAfter(b *testing.B) { benchFigure(b, "fig6a") }

// BenchmarkFig6bStrongBeforeAfter reproduces Fig 6b: the strong-scaling
// companion of Fig 6a on the 3072^3 grid.
func BenchmarkFig6bStrongBeforeAfter(b *testing.B) { benchFigure(b, "fig6b") }

// BenchmarkFig7aWeakLarge reproduces Fig 7a: weak scaling with the
// 1536^3-per-node problem across MPI-H, MPI-D, Charm-H, Charm-D.
func BenchmarkFig7aWeakLarge(b *testing.B) { benchFigure(b, "fig7a") }

// BenchmarkFig7bWeakSmall reproduces Fig 7b: weak scaling with the
// 192^3-per-node problem (microsecond regime).
func BenchmarkFig7bWeakSmall(b *testing.B) { benchFigure(b, "fig7b") }

// BenchmarkFig7cStrong reproduces Fig 7c: strong scaling of the 3072^3
// grid.
func BenchmarkFig7cStrong(b *testing.B) { benchFigure(b, "fig7c") }

// BenchmarkFig8aFusionODF1 reproduces Fig 8a: kernel fusion strategies
// on 768^3 without overdecomposition.
func BenchmarkFig8aFusionODF1(b *testing.B) { benchFigure(b, "fig8a") }

// BenchmarkFig8bFusionODF8 reproduces Fig 8b: kernel fusion at ODF-8.
func BenchmarkFig8bFusionODF8(b *testing.B) { benchFigure(b, "fig8b") }

// BenchmarkFig9aGraphsODF1 reproduces Fig 9a: CUDA-graph speedup by
// fusion strategy without overdecomposition.
func BenchmarkFig9aGraphsODF1(b *testing.B) { benchFigure(b, "fig9a") }

// BenchmarkFig9bGraphsODF8 reproduces Fig 9b: CUDA-graph speedup at
// ODF-8.
func BenchmarkFig9bGraphsODF8(b *testing.B) { benchFigure(b, "fig9b") }

// BenchmarkAblationPriorityStreams quantifies the §III-A prescription:
// high-priority streams for packing and transfers vs flat priorities.
func BenchmarkAblationPriorityStreams(b *testing.B) { benchFigure(b, "abl-priority") }

// BenchmarkAblationManualOverlap quantifies the Fig 1b manual
// interior/exterior overlap option of the MPI variant.
func BenchmarkAblationManualOverlap(b *testing.B) { benchFigure(b, "abl-overlap") }

// BenchmarkAblationChannelAPI compares Channel API and GPU Messaging
// API one-way latency across message sizes (§II-B).
func BenchmarkAblationChannelAPI(b *testing.B) { benchFigure(b, "abl-chanapi") }
