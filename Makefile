# Tier-1 verification plus lint and smoke targets. `make check` runs
# everything CI needs in one command.

GO ?= go
# Smoke targets drop their machine-readable JSON reports here; CI
# points this at a workspace directory and uploads it as an artifact.
SMOKE_OUT ?= /tmp

.PHONY: all build test vet fmt-check lint check sweep-smoke sweepd-smoke scenario-smoke claims-smoke bench-queue bench bench-check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt -l lists unformatted files; fail if any.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# gatvet: the repo's own go/analysis suite (internal/analysis) that
# machine-enforces the determinism and hot-path contracts — detmap,
# wallclock, seedrand, hotpath, gatdir. Exit 1 means unannotated
# findings; fix the site or add a reasoned //gat: annotation (see
# README "Static analysis & determinism contracts").
lint:
	@$(GO) build -o /tmp/gat-gatvet ./cmd/gatvet
	@/tmp/gat-gatvet ./...
	@echo "lint: gatvet clean"

# A fast end-to-end sweep, three ways byte-identical: parallel vs the
# serial reference path, and a warm content-addressed cache vs the
# cold run that filled it — with the warm run simulating nothing (the
# "[0-9]* simulated" provenance line comes from the run counter).
# The tapered-fabric scenario gets the same serial-vs-parallel gate:
# fabric link contention must not perturb deterministic reassembly —
# and -shards 4 layered on top must still reproduce the serial bytes
# (a no-op on the per-GPU engine, the real thing on jacobi-exascale,
# whose runs partition across the conservative pdes shards).
sweep-smoke:
	@$(GO) build -o /tmp/gat-sweep ./cmd/sweep
	@/tmp/gat-sweep -fig all -maxnodes 2 -iters 2 -j 1 > /tmp/gat-sweep-serial.txt
	@/tmp/gat-sweep -fig all -maxnodes 2 -iters 2 -j 8 > /tmp/gat-sweep-parallel.txt
	@cmp /tmp/gat-sweep-serial.txt /tmp/gat-sweep-parallel.txt
	@/tmp/gat-sweep -scenario jacobi-taper -maxnodes 36 -iters 2 -warmup 1 -j 1 > /tmp/gat-sweep-taper-serial.txt
	@/tmp/gat-sweep -scenario jacobi-taper -maxnodes 36 -iters 2 -warmup 1 -j 4 > /tmp/gat-sweep-taper-parallel.txt
	@cmp /tmp/gat-sweep-taper-serial.txt /tmp/gat-sweep-taper-parallel.txt
	@/tmp/gat-sweep -scenario jacobi-taper -maxnodes 36 -iters 2 -warmup 1 -j 4 -shards 4 > /tmp/gat-sweep-taper-sharded.txt
	@cmp /tmp/gat-sweep-taper-serial.txt /tmp/gat-sweep-taper-sharded.txt
	@/tmp/gat-sweep -scenario jacobi-exascale -maxnodes 1024 -iters 2 -warmup 1 -j 1 > /tmp/gat-sweep-exa-serial.txt
	@/tmp/gat-sweep -scenario jacobi-exascale -maxnodes 1024 -iters 2 -warmup 1 -j 4 -shards 4 > /tmp/gat-sweep-exa-sharded.txt
	@cmp /tmp/gat-sweep-exa-serial.txt /tmp/gat-sweep-exa-sharded.txt
	@rm -rf /tmp/gat-sweep-cache
	@/tmp/gat-sweep -fig all -maxnodes 2 -iters 2 -j 4 -cache-dir /tmp/gat-sweep-cache > /tmp/gat-sweep-cold.txt
	@/tmp/gat-sweep -fig all -maxnodes 2 -iters 2 -j 4 -cache-dir /tmp/gat-sweep-cache -v \
		> /tmp/gat-sweep-warm.txt 2> /tmp/gat-sweep-warm-log.txt
	@cmp /tmp/gat-sweep-serial.txt /tmp/gat-sweep-cold.txt
	@cmp /tmp/gat-sweep-cold.txt /tmp/gat-sweep-warm.txt
	@grep -Eq "\([0-9]+ runs: 0 simulated, [0-9]+ from store, 0 resumed\)" /tmp/gat-sweep-warm-log.txt || \
		{ echo "sweep-smoke: warm cache run still simulated:"; tail -1 /tmp/gat-sweep-warm-log.txt; exit 1; }
	@/tmp/gat-sweep -fig all -maxnodes 2 -iters 2 -j 4 -cache-dir /tmp/gat-sweep-cache -json > $(SMOKE_OUT)/sweep-smoke.json
	@echo "sweep-smoke: parallel, sharded and warm-cache output byte-identical to serial; warm run simulated 0 runs"

# Sweep-as-a-service smoke: a sweepd on a random port backs a cold
# `sweep -remote` run, the warm rerun simulates nothing and emits
# byte-identical figures (every entry comes back over HTTP), and the
# /v1/watch stream replays at least one published run line. Server
# stderr lands in $(SMOKE_OUT)/sweepd-smoke.log so CI can upload it
# with the other smoke artifacts.
sweepd-smoke:
	@$(GO) build -o /tmp/gat-sweep ./cmd/sweep
	@$(GO) build -o /tmp/gat-sweepd ./cmd/sweepd
	@rm -rf /tmp/gat-sweepd-dir /tmp/gat-sweepd-addr
	@/tmp/gat-sweepd -dir /tmp/gat-sweepd-dir -addr 127.0.0.1:0 -addr-file /tmp/gat-sweepd-addr \
		2> $(SMOKE_OUT)/sweepd-smoke.log & \
	pid=$$!; trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do [ -s /tmp/gat-sweepd-addr ] && break; sleep 0.1; done; \
	[ -s /tmp/gat-sweepd-addr ] || { echo "sweepd-smoke: server never wrote its address"; exit 1; }; \
	addr=$$(cat /tmp/gat-sweepd-addr); \
	/tmp/gat-sweep -fig all -maxnodes 2 -iters 2 -j 4 -remote http://$$addr -sweep-id smoke \
		> /tmp/gat-sweepd-cold.txt || exit 1; \
	/tmp/gat-sweep -fig all -maxnodes 2 -iters 2 -j 4 -remote http://$$addr -sweep-id smoke -v \
		> /tmp/gat-sweepd-warm.txt 2> /tmp/gat-sweepd-warm-log.txt || exit 1; \
	cmp /tmp/gat-sweepd-cold.txt /tmp/gat-sweepd-warm.txt || \
		{ echo "sweepd-smoke: warm remote sweep differs from cold"; exit 1; }; \
	grep -Eq "\([0-9]+ runs: 0 simulated, [0-9]+ from store, 0 resumed\)" /tmp/gat-sweepd-warm-log.txt || \
		{ echo "sweepd-smoke: warm remote run still simulated:"; tail -1 /tmp/gat-sweepd-warm-log.txt; exit 1; }; \
	curl -s -N --max-time 10 http://$$addr/v1/watch/smoke | head -n 1 > /tmp/gat-sweepd-watch.txt; \
	grep -q '"figure"' /tmp/gat-sweepd-watch.txt || \
		{ echo "sweepd-smoke: watch stream produced no run line"; cat /tmp/gat-sweepd-watch.txt; exit 1; }
	@echo "sweepd-smoke: warm remote sweep served entirely from sweepd, byte-identical; watch stream live"

# Scenario registry smoke: the registry must list (with the topology
# and routing columns), a non-Summit, non-Jacobi composition must run
# end to end, one tapered-fabric run must emit its link-utilization
# provenance in the v3 JSON, and one adaptive-routing run must emit its
# routing provenance.
scenario-smoke:
	@$(GO) build -o /tmp/gat-sweep ./cmd/sweep
	@/tmp/gat-sweep -list | grep -q minimd-frontier
	@/tmp/gat-sweep -list | grep -q "dragonfly 2:1"
	@/tmp/gat-sweep -list | grep -q adaptive
	@/tmp/gat-sweep -list | grep -q slimfly
	@/tmp/gat-sweep -scenario minimd-frontier -maxnodes 2 -iters 4 -j 2 -json > $(SMOKE_OUT)/scenario-smoke.json
	@/tmp/gat-sweep -scenario scaling -app ring -machine perlmutter -maxnodes 2 -iters 4 > /dev/null
	@/tmp/gat-sweep -scenario jacobi-taper -maxnodes 36 -iters 2 -warmup 1 -j 4 -json > $(SMOKE_OUT)/taper-smoke.json
	@grep -q max_link_util $(SMOKE_OUT)/taper-smoke.json || \
		{ echo "scenario-smoke: tapered run reported no fabric-link utilization"; exit 1; }
	@/tmp/gat-sweep -scenario jacobi-adaptive-vs-minimal -maxnodes 48 -iters 2 -warmup 1 -j 4 -json > $(SMOKE_OUT)/routing-smoke.json
	@grep -q '"routing"' $(SMOKE_OUT)/routing-smoke.json || \
		{ echo "scenario-smoke: adaptive-routing run reported no routing provenance"; exit 1; }
	@echo "scenario-smoke: registry lists; non-Summit, tapered-fabric and adaptive-routing scenarios run"

# Claims smoke: all seven C1-C7 checks must execute and report at
# reduced scale; their verdicts are advisory there (-smoke exits 0).
claims-smoke:
	@$(GO) build -o /tmp/gat-claims ./cmd/claims
	@/tmp/gat-claims -maxnodes 2 -iters 2 -smoke > /tmp/gat-claims-smoke.txt
	@for c in C1 C2 C3 C4 C5 C6 C7; do \
		grep -q "^$$c " /tmp/gat-claims-smoke.txt || \
			{ echo "claims-smoke: claim $$c did not report"; cat /tmp/gat-claims-smoke.txt; exit 1; }; \
	done
	@echo "claims-smoke: all 7 claims executed and reported"

bench-queue:
	$(GO) test -run xxx -bench BenchmarkEventQueue -benchtime 1000000x .

# Engine hot-path benchmarks, recorded into the gat-bench-v1 trajectory
# file. BENCH_LABEL selects the slot to (re)record; the committed
# BENCH_PR8.json is the current reference (BENCH_PR2.json stays as the
# heap-era trajectory, BENCH_PR7.json as the pre-pdes one), so the
# default refreshes "after" and prints the delta table. -count=6
# interleaves full suite repetitions, so each benchmark's median spans
# the whole run rather than one hot stretch; -timeout=0 drops the test
# framework's watchdog timer, whose periodic host-clock reads otherwise
# tax every goroutine switch — the sweep binaries run without one, so
# benchmarks should too.
BENCH_PATTERN := 'BenchmarkZeroDelayLane|BenchmarkSignalFanout|BenchmarkProcPingPong|BenchmarkJacobiStep|BenchmarkEventQueue|BenchmarkPDESWindowMerge'
BENCH_LABEL ?= after
# The bench output lands in a temp file first so a mid-run benchmark
# failure aborts before benchjson can overwrite the trajectory file
# with partial medians.
bench:
	@$(GO) build -o /tmp/gat-benchjson ./cmd/benchjson
	$(GO) test -run xxx -bench $(BENCH_PATTERN) -benchmem -count=6 -timeout=0 . > /tmp/gat-bench-out.txt
	/tmp/gat-benchjson -label $(BENCH_LABEL) -out BENCH_PR8.json -in /tmp/gat-bench-out.txt

# Bench regression gate: re-measure the headline hot-path benchmarks
# (medians over -count=3) and fail when any is >25% slower than the
# committed "after" trajectory. JacobiStep and ZeroDelayLane are the
# end-to-end and lane headliners; the depth16k hold pair keeps the
# calendar queue honest against its own recorded number and records the
# 4-ary heap reference it must not fall behind. The comparison is
# absolute ns/op against numbers recorded on whatever host last ran
# `make bench`, so it is only a real gate on comparable hardware; CI
# runs it informationally (continue-on-error) because a shared runner's
# verdict tracks the hardware gap as much as the code. Re-baseline with
# `make bench` when the reference host changes.
bench-check:
	@$(GO) build -o /tmp/gat-benchjson ./cmd/benchjson
	$(GO) test -run xxx -bench 'BenchmarkJacobiStep$$|BenchmarkJacobiStepSharded$$|BenchmarkZeroDelayLane$$|BenchmarkEventQueue/depth16k$$|BenchmarkEventQueueHeap4/depth16k$$|BenchmarkPDESWindowMerge$$' -benchmem -count=3 -timeout=0 . > /tmp/gat-bench-check.txt
	/tmp/gat-benchjson -in /tmp/gat-bench-check.txt -check BENCH_PR8.json -against after \
		-require BenchmarkJacobiStep,BenchmarkJacobiStepSharded,BenchmarkZeroDelayLane,BenchmarkEventQueue/depth16k,BenchmarkEventQueueHeap4/depth16k,BenchmarkPDESWindowMerge -max-regress 25

# claims-smoke is not part of check: CI runs it as its own job, and
# doubling it into the matrix legs would just re-run identical work.
check: build vet fmt-check lint test sweep-smoke sweepd-smoke scenario-smoke
