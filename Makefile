# Tier-1 verification plus lint and smoke targets. `make check` runs
# everything CI needs in one command.

GO ?= go

.PHONY: all build test vet fmt-check check sweep-smoke scenario-smoke bench-queue bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt -l lists unformatted files; fail if any.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# A fast end-to-end sweep: parallel output must be byte-identical to
# the serial reference path.
sweep-smoke:
	@$(GO) build -o /tmp/gat-sweep ./cmd/sweep
	@/tmp/gat-sweep -fig all -maxnodes 2 -iters 2 -j 1 > /tmp/gat-sweep-serial.txt
	@/tmp/gat-sweep -fig all -maxnodes 2 -iters 2 -j 8 > /tmp/gat-sweep-parallel.txt
	@cmp /tmp/gat-sweep-serial.txt /tmp/gat-sweep-parallel.txt
	@echo "sweep-smoke: parallel output byte-identical to serial"

# Scenario registry smoke: the registry must list, and a non-Summit,
# non-Jacobi composition must run end to end.
scenario-smoke:
	@$(GO) build -o /tmp/gat-sweep ./cmd/sweep
	@/tmp/gat-sweep -list | grep -q minimd-frontier
	@/tmp/gat-sweep -scenario minimd-frontier -maxnodes 2 -iters 4 -j 2 > /dev/null
	@/tmp/gat-sweep -scenario scaling -app ring -machine perlmutter -maxnodes 2 -iters 4 > /dev/null
	@echo "scenario-smoke: registry lists; non-Summit scenarios run"

bench-queue:
	$(GO) test -run xxx -bench BenchmarkEventQueue -benchtime 1000000x .

# Engine hot-path benchmarks, recorded into the gat-bench-v1 trajectory
# file. BENCH_LABEL selects the slot to (re)record; the committed
# BENCH_PR2.json keeps the PR's baseline for comparison, so the default
# refreshes "after" and prints the delta table.
BENCH_PATTERN := 'BenchmarkZeroDelayLane|BenchmarkSignalFanout|BenchmarkProcPingPong|BenchmarkJacobiStep|BenchmarkEventQueue/'
BENCH_LABEL ?= after
# The bench output lands in a temp file first so a mid-run benchmark
# failure aborts before benchjson can overwrite the trajectory file
# with partial medians.
bench:
	@$(GO) build -o /tmp/gat-benchjson ./cmd/benchjson
	$(GO) test -run xxx -bench $(BENCH_PATTERN) -benchmem -count=6 . > /tmp/gat-bench-out.txt
	/tmp/gat-benchjson -label $(BENCH_LABEL) -out BENCH_PR2.json -in /tmp/gat-bench-out.txt

check: build vet fmt-check test sweep-smoke scenario-smoke
