# Tier-1 verification plus lint and smoke targets. `make check` runs
# everything CI needs in one command.

GO ?= go

.PHONY: all build test vet fmt-check check sweep-smoke bench-queue

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt -l lists unformatted files; fail if any.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# A fast end-to-end sweep: parallel output must be byte-identical to
# the serial reference path.
sweep-smoke:
	@$(GO) build -o /tmp/gat-sweep ./cmd/sweep
	@/tmp/gat-sweep -fig all -maxnodes 2 -iters 2 -j 1 > /tmp/gat-sweep-serial.txt
	@/tmp/gat-sweep -fig all -maxnodes 2 -iters 2 -j 8 > /tmp/gat-sweep-parallel.txt
	@cmp /tmp/gat-sweep-serial.txt /tmp/gat-sweep-parallel.txt
	@echo "sweep-smoke: parallel output byte-identical to serial"

bench-queue:
	$(GO) test -run xxx -bench BenchmarkEventQueue -benchtime 1000000x .

check: build vet fmt-check test sweep-smoke
