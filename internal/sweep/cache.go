package sweep

import (
	"errors"

	"gat/internal/sweep/store"
)

// Cache is the content-addressed run-cache contract the sweep
// orchestrator runs against: Get/Put of whole store.Entry values by
// fingerprint. The unit of exchange is the full Entry — not just the
// figure point — so provenance like the original simulation's wall_ns
// survives every round trip through every backend identically.
//
// Implementations today: *store.Store (the local on-disk cache),
// remote.Client (a shared sweepd service over HTTP), cachetest.Mem
// (in-memory fake for tests), and Tiered (local read-through over
// remote). All are exercised by the same conformance suite
// (internal/sweep/cachetest.Conformance).
//
// Error contract, inherited from the disk store: Get returns
// (zero, false, nil) for a plain miss and (zero, false, err) for a
// diagnosable problem (corrupt entry, unreachable backend) — both are
// misses to the orchestrator, which logs the error and simulates, so
// a broken cache can never fail a sweep. Implementations may also
// return (entry, true, err) when the hit is good but a side effect
// failed (Tiered seeding its local tier); the orchestrator uses the
// hit and logs the error. Put failures lose only the memo.
//
// Implementations must be safe for concurrent use by the sweep
// worker pool.
type Cache interface {
	// Get returns the entry filed under key. ok reports a usable hit;
	// see the interface comment for the (ok, err) matrix.
	Get(key string) (store.Entry, bool, error)
	// Put files e under e.Key. Entries are content-addressed: a re-put
	// of the same key carries the same result, so overwriting is
	// conflict-free and Put is idempotent. Implementations gate on
	// Entry.Validate and return store.ErrReadOnly (wrapped) when the
	// backend cannot accept writes.
	Put(e store.Entry) error
}

// Tiered composes a local cache as a read-through tier in front of a
// shared remote one, so `-cache` and `-remote` stack: lookups try the
// cheap local tier first, fall through to the remote, and seed the
// local tier on a remote hit so the next sweep on this machine never
// leaves disk. Because entries are content-addressed and immutable,
// tier order affects only lookup cost, never results.
type Tiered struct {
	Local, Remote Cache
}

// Get tries the local tier, then the remote. A remote hit is written
// through to the local tier best-effort: seeding failure (or a corrupt
// local entry that the remote healed over) is reported alongside the
// hit as (entry, true, err) so the orchestrator can log it without
// losing the result.
func (t Tiered) Get(key string) (store.Entry, bool, error) {
	e, ok, localErr := t.Local.Get(key)
	if ok {
		return e, true, localErr
	}
	e, ok, remoteErr := t.Remote.Get(key)
	if !ok {
		return store.Entry{}, false, errors.Join(localErr, remoteErr)
	}
	var seedErr error
	if err := t.Local.Put(e); err != nil {
		seedErr = err
	}
	return e, true, errors.Join(localErr, remoteErr, seedErr)
}

// Put writes through to both tiers; a failure in either loses only
// that tier's memo. Errors are joined so the caller's log names every
// tier that refused.
func (t Tiered) Put(e store.Entry) error {
	return errors.Join(t.Local.Put(e), t.Remote.Put(e))
}
