package sweep

import (
	"bytes"
	"strings"
	"testing"

	"gat/internal/bench"
)

// fabricScenarioIDs are the topology/congestion scenarios introduced
// with the contention fabric: the taper sweeps and the dragonfly-
// backed machine variants.
var fabricScenarioIDs = []string{
	"jacobi-taper", "jacobi-taper-msgsize", "minimd-taper",
	"jacobi-dragonfly", "minimd-dragonfly",
}

// TestFabricScenariosParallelEquality is the serial-vs-parallel golden
// for the new tapered/dragonfly scenarios: -j 4 must produce the exact
// bytes of the serial reference, tables and CSV alike, just as the
// pre-fabric scenarios are pinned by TestGoldenBackCompat.
func TestFabricScenariosParallelEquality(t *testing.T) {
	opt := bench.Options{MaxNodes: 2, Iters: 2}
	for _, csv := range []bool{false, true} {
		serial := sweepBytes(t, fabricScenarioIDs, opt, 1, csv)
		if len(serial) == 0 {
			t.Fatal("fabric scenarios produced no output")
		}
		parallel := sweepBytes(t, fabricScenarioIDs, opt, 4, csv)
		if !bytes.Equal(serial, parallel) {
			t.Fatalf("csv=%v: -j 4 output differs from serial at line %d\n--- serial ---\n%s\n--- parallel ---\n%s",
				csv, diffLine(serial, parallel), serial, parallel)
		}
	}
}

// TestContendedFabricParallelEquality runs the taper sweep at its full
// two-pod scale — where the shared uplinks are genuinely contended,
// unlike the MaxNodes-2 case whose single pod leaves the fabric idle —
// and checks both that -j 4 reproduces the serial bytes and that the
// fabric really saw traffic (nonzero link utilization), so a
// nondeterministic fabric-path ordering bug cannot hide behind an
// inert fabric.
func TestContendedFabricParallelEquality(t *testing.T) {
	opt := bench.Options{MaxNodes: 36, Iters: 2, Warmup: 1}
	ids := []string{"jacobi-taper"}
	serial := sweepBytes(t, ids, opt, 1, false)
	parallel := sweepBytes(t, ids, opt, 4, false)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("-j 4 output differs from serial at line %d under fabric contention\n--- serial ---\n%s\n--- parallel ---\n%s",
			diffLine(serial, parallel), serial, parallel)
	}
	res, err := Sweep(ids, Options{Workers: 4, Bench: opt})
	if err != nil {
		t.Fatal(err)
	}
	contended := 0
	for _, run := range res.Figures[0].Runs {
		if run.Point.MaxLinkUtil > 0 {
			contended++
		}
	}
	if contended == 0 {
		t.Fatal("36-node taper sweep reported zero link utilization everywhere; the contention gate is running against an idle fabric")
	}
}

// utilResult builds a minimal synthetic sweep result with one verified
// run carrying a fabric congestion summary.
func utilResult() Result {
	spec := bench.RunSpec{
		FigID: "jacobi-taper", Series: "MPI-H", X: 4, Nodes: 36,
		Warmup: 1, Iters: 2, Seed: 7,
		Scenario: "jacobi-taper", App: "jacobi3d", Machine: "summit",
	}
	pt := bench.Point{Nodes: 4, Value: 123.5, MaxLinkUtil: 0.83, MeanLinkUtil: 0.41}
	fig := bench.Figure{
		ID: "jacobi-taper", Title: "t", XLabel: "taper", YLabel: "us",
		Series: []bench.Series{{Name: "MPI-H", Points: []bench.Point{pt}}},
	}
	return Result{
		Workers: 1,
		Figures: []FigureResult{{
			Figure: fig,
			Runs: []Run{{
				Spec: spec, Point: pt, Key: "0123456789abcdef0123456789abcdef",
				Source: SourceSim, Verified: true, SimWallNS: 10,
			}},
		}},
	}
}

// TestLinkUtilInReportAndResume proves the congestion summary survives
// the full provenance loop: the gat-sweep-v3 writer emits it per run,
// ReadJSON+NewPrior recover it, and a fingerprint-exact resume hit
// returns the point with its utilization intact.
func TestLinkUtilInReportAndResume(t *testing.T) {
	res := utilResult()
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"max_link_util": 0.83`, `"mean_link_util": 0.41`} {
		if !strings.Contains(out, want) {
			t.Fatalf("v3 report missing %q:\n%s", want, out)
		}
	}

	rep, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	prior := NewPrior(rep)
	run := res.Figures[0].Runs[0]
	hit, ok := prior.Lookup(run.Spec, run.Key)
	if !ok || !hit.Exact {
		t.Fatalf("fingerprint-exact resume lookup failed: ok=%v exact=%v", ok, hit.Exact)
	}
	if hit.Point.MaxLinkUtil != 0.83 || hit.Point.MeanLinkUtil != 0.41 {
		t.Fatalf("resume dropped the congestion summary: %+v", hit.Point)
	}
}

// TestExplainShowsNetColumn checks the human provenance table flags
// network-bound runs and dashes out NIC-only ones.
func TestExplainShowsNetColumn(t *testing.T) {
	res := utilResult()
	var buf bytes.Buffer
	res.WriteExplain(&buf)
	out := buf.String()
	if !strings.Contains(out, "NET") || !strings.Contains(out, "83%") {
		t.Fatalf("explain table missing the NET column or the 83%% entry:\n%s", out)
	}
	res.Figures[0].Runs[0].Point.MaxLinkUtil = 0
	buf.Reset()
	res.WriteExplain(&buf)
	if !strings.Contains(buf.String(), " - ") {
		t.Fatalf("explain table should dash out NIC-only runs:\n%s", buf.String())
	}
}
