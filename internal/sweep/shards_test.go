package sweep

import (
	"bytes"
	"testing"

	"gat/internal/bench"
)

// TestExascaleShardedEquality is the sweep-level half of the
// parallel-in-run guarantee: the jacobi-exascale scenario — the one
// registered scenario that actually partitions its runs across pdes
// shards — must emit byte-identical tables and CSV at -shards 1, 2
// and 4, with the worker pool layered on top. The engine-level halves
// live in internal/pdes and internal/jacobi; this catches any
// shard-dependent state leaking through the bench cell into figure
// bytes (a Meta field, a reordered point).
func TestExascaleShardedEquality(t *testing.T) {
	ids := []string{"jacobi-exascale"}
	opt := bench.Options{MaxNodes: 1024, Iters: 2, Warmup: 1}
	for _, csv := range []bool{false, true} {
		serial := sweepBytes(t, ids, opt, 1, csv)
		if len(serial) == 0 {
			t.Fatal("exascale scenario produced no output")
		}
		for _, shards := range []int{2, 4} {
			sOpt := opt
			sOpt.Shards = shards
			for _, workers := range []int{1, 4} {
				got := sweepBytes(t, ids, sOpt, workers, csv)
				if !bytes.Equal(serial, got) {
					t.Fatalf("csv=%v shards=%d workers=%d: output differs from serial at line %d\n--- serial ---\n%s\n--- sharded ---\n%s",
						csv, shards, workers, diffLine(serial, got), serial, got)
				}
			}
		}
	}
}
