package sweep

import (
	"gat/internal/bench"
)

// Sweep resume: a previous (typically partial or smaller) gat-sweep
// report becomes a run source, so an interrupted or narrower sweep is
// completed by simulating only the specs the report doesn't already
// answer. v3 reports carry per-run fingerprints and values, so resume
// matches exactly — same semantics salt, app/machine versions, jitter.
// v1/v2 reports predate fingerprints; their runs are matched on the
// full metadata tuple (figure, series, x, nodes, warmup, iters, seed,
// plus the machine/app names the report records — v1 predates machine
// profiles entirely, so its runs are pinned to "summit") and their
// values recovered from the rendered series. That is precise for the
// coordinates but cannot see the simulation inputs the old schemas
// never recorded: metadata matches are refused for jittered sweeps
// (the reports don't say what jitter they ran under), and resuming a
// v1/v2 report asserts the engine semantics haven't moved.

// priorRun is one reusable result from a prior report. Runs the
// report marks as failed are never indexed, so every entry here is
// returnable.
type priorRun struct {
	pt           bench.Point
	app, machine string // names as recorded (empty in v1 reports)
	wallNS       int64  // host cost of the original simulation
}

// PriorHit is one reused result: the point, the host cost the reuse
// saved (the prior report's wall_ns for the run), and whether the
// match was fingerprint-exact (a v3 key) rather than by v1/v2
// metadata. Only exact hits are safe to write through into a
// fingerprint-keyed store.
type PriorHit struct {
	Point  bench.Point
	WallNS int64
	Exact  bool
}

// metaKey identifies a run by its v1/v2-era metadata.
type metaKey struct {
	figure, series          string
	x, nodes, warmup, iters int
	seed                    uint64
}

// Prior is an indexed prior report.
type Prior struct {
	byKey  map[string]priorRun // v3: fingerprint-exact
	byMeta map[metaKey]priorRun
}

// NewPrior indexes a parsed report for resume lookups.
func NewPrior(rep *Report) *Prior {
	p := &Prior{
		byKey:  map[string]priorRun{},
		byMeta: map[metaKey]priorRun{},
	}
	for _, f := range rep.Figures {
		// Series points by (series, x): the value source for v1/v2
		// runs, which recorded no per-run value.
		type sx struct {
			series string
			x      int
		}
		points := map[sx]bench.Point{}
		for _, s := range f.Series {
			for _, pt := range s.Points {
				points[sx{s.Name, pt.X}] = bench.Point{Nodes: pt.X, Value: pt.Value, Meta: pt.Meta}
			}
		}
		for _, run := range f.Runs {
			if run.Error != "" {
				// Failed runs must be re-run; indexing them would only
				// inflate Len and force errored checks on every path.
				continue
			}
			pr := priorRun{app: run.App, machine: run.Machine, wallNS: run.WallNS}
			if pr.machine == "" {
				// v1 reports predate the machine registry: every run
				// simulated the paper's Summit. Pinning them keeps a
				// -machine override from reusing Summit numbers.
				pr.machine = "summit"
			}
			if run.Key != "" {
				// v3: the run itself carries its value (and, for fabric
				// machines, its congestion summary).
				pr.pt = bench.Point{
					Nodes: run.X, Value: run.Value, Meta: run.Meta,
					MaxLinkUtil: run.MaxLinkUtil, MeanLinkUtil: run.MeanLinkUtil,
					Routing: run.Routing,
				}
				p.byKey[run.Key] = pr
				continue
			}
			// Keyless metadata entries are only sound for unjittered
			// runs (the tuple is jitter-blind; Lookup refuses jittered
			// specs for the same reason). v1/v2 never recorded jitter,
			// but a v3 run stripped of its key still carries it — honor
			// it rather than serving jittered values as deterministic.
			if run.Jitter != 0 {
				continue
			}
			pt, ok := points[sx{run.Series, run.X}]
			if !ok {
				continue // runs with no rendered point can't be reused
			}
			pr.pt = pt
			p.byMeta[metaKey{
				figure: run.Figure, series: run.Series,
				x: run.X, nodes: run.Nodes,
				warmup: run.Warmup, iters: run.Iters,
				seed: run.Seed,
			}] = pr
		}
	}
	return p
}

// Len returns the number of reusable runs indexed (failed runs are
// excluded up front).
func (p *Prior) Len() int { return len(p.byKey) + len(p.byMeta) }

// Lookup returns the prior result for a spec, keyed first by the
// spec's fingerprint (v3-exact), then by its metadata tuple (v1/v2).
// Runs the prior report marked as failed are never returned: resume
// re-runs exactly the missing and failed specs.
func (p *Prior) Lookup(spec bench.RunSpec, key string) (PriorHit, bool) {
	if pr, ok := p.byKey[key]; ok {
		return PriorHit{Point: pr.pt, WallNS: pr.wallNS, Exact: true}, true
	}
	// Metadata matching is only sound when the inputs the v1/v2
	// schemas never recorded are at their defaults: the seed tuple is
	// identical between jittered and unjittered sweeps, so a jittered
	// sweep must re-simulate rather than trust a report that doesn't
	// say what jitter it ran under. (The converse — an old report that
	// was itself produced with -jitter — is undetectable from the
	// file; that risk is inherent to pre-v3 reports and is why only
	// Exact hits reach the run store.)
	if spec.Jitter != 0 {
		return PriorHit{}, false
	}
	pr, ok := p.byMeta[metaKey{
		figure: spec.FigID, series: spec.Series,
		x: spec.X, nodes: spec.Nodes,
		warmup: spec.Warmup, iters: spec.Iters,
		seed: spec.Seed,
	}]
	if !ok {
		return PriorHit{}, false
	}
	// The recorded composition must match ("summit" stands in for v1
	// runs, which predate both registries).
	if pr.app != "" && pr.app != spec.App {
		return PriorHit{}, false
	}
	if pr.machine != spec.Machine {
		return PriorHit{}, false
	}
	return PriorHit{Point: pr.pt, WallNS: pr.wallNS}, true
}
