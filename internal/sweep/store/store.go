// Package store is the content-addressed run cache behind incremental
// sweeps: a directory of immutable per-key JSON entries, one per
// executed RunSpec, addressed by the spec's fingerprint
// (bench.RunSpec.Fingerprint). Because the fingerprint covers every
// input that determines a run's simulated result — engine-semantics
// salt, versioned app/machine identities, experiment coordinates,
// seed, jitter — a hit can be served without simulating, and a stale
// entry can never be returned for current semantics: semantic changes
// change the key, orphaning (not poisoning) old entries.
//
// Layout: <dir>/<key[:2]>/<key>.json, sharded on the first hash byte
// so a full-figure cache doesn't pile thousands of files into one
// directory. Entries are written atomically (temp file + rename), so
// concurrent sweep workers and interrupted runs leave either a whole
// entry or none. Corrupt or foreign files read as misses, never as
// errors that abort a sweep: the run is simply re-simulated and the
// entry rewritten.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"gat/internal/bench"
)

// Schema is the cache-entry schema tag. Bump only when the entry file
// format itself changes; result invalidation is the fingerprint's job.
const Schema = "gat-cache-v1"

// Entry is one cached run: the key it is filed under, the spec
// coordinates that produced it (for humans reading the cache dir —
// lookups trust only the key), and the resulting figure point.
type Entry struct {
	Schema string `json:"schema"`
	Key    string `json:"key"`

	// Provenance: where the point came from.
	Figure   string  `json:"figure"`
	Scenario string  `json:"scenario,omitempty"`
	App      string  `json:"app,omitempty"`     // versioned identity, e.g. jacobi3d@v1
	Machine  string  `json:"machine,omitempty"` // versioned identity, e.g. summit@v1
	Series   string  `json:"series"`
	X        int     `json:"x"`
	Nodes    int     `json:"nodes"`
	Warmup   int     `json:"warmup"`
	Iters    int     `json:"iters"`
	Seed     uint64  `json:"seed"`
	Jitter   float64 `json:"jitter,omitempty"`

	// The cached result, including the run's fabric-link congestion
	// summary (zero/absent on NIC-only machines).
	Value        float64 `json:"value"`
	Meta         string  `json:"meta,omitempty"`
	MaxLinkUtil  float64 `json:"max_link_util,omitempty"`
	MeanLinkUtil float64 `json:"mean_link_util,omitempty"`

	// WallNS is the host cost of the original simulation — what the
	// hit saved. Metadata only.
	WallNS int64 `json:"wall_ns"`
}

// Point reconstructs the figure point the entry caches.
func (e Entry) Point() bench.Point {
	return bench.Point{
		Nodes: e.X, Value: e.Value, Meta: e.Meta,
		MaxLinkUtil: e.MaxLinkUtil, MeanLinkUtil: e.MeanLinkUtil,
	}
}

// Store is an open cache directory.
type Store struct {
	dir string
}

// Open prepares dir as a run cache, creating it if needed and probing
// that it is writable, so a sweep fails up front — not after an hour
// of simulation — when the cache can't persist results.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: cannot create cache directory: %w", err)
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("store: cache directory %s is not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return &Store{dir: dir}, nil
}

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the entry file for a key (which need not exist).
func (s *Store) Path(key string) string {
	shard := key
	if len(shard) > 2 {
		shard = shard[:2]
	}
	return filepath.Join(s.dir, shard, key+".json")
}

// Get looks a key up and returns the whole entry (the point via
// Entry.Point, plus provenance like the original simulation's WallNS).
// ok reports a usable hit; a missing entry returns (zero, false, nil)
// and a corrupt one (unparseable JSON, wrong schema, key mismatch from
// a renamed file) returns (zero, false, err) so the caller can log the
// discard — both are misses, and Put later heals the slot.
func (s *Store) Get(key string) (Entry, bool, error) {
	data, err := os.ReadFile(s.Path(key))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return Entry{}, false, nil
		}
		return Entry{}, false, fmt.Errorf("store: reading %s: %w", key, err)
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return Entry{}, false, fmt.Errorf("store: corrupt entry %s: %w", key, err)
	}
	if e.Schema != Schema {
		return Entry{}, false, fmt.Errorf("store: entry %s has schema %q, want %q", key, e.Schema, Schema)
	}
	if e.Key != key {
		return Entry{}, false, fmt.Errorf("store: entry filed under %s claims key %s", key, e.Key)
	}
	return e, true, nil
}

// Put files the result of one executed spec under key, atomically:
// the entry is complete on disk before it becomes visible, and a
// re-put of the same key (a healed corrupt slot, a racing worker with
// the identical result) simply replaces it.
func (s *Store) Put(key string, spec bench.RunSpec, pt bench.Point, wallNS int64) error {
	e := Entry{
		Schema:       Schema,
		Key:          key,
		Figure:       spec.FigID,
		Scenario:     spec.Scenario,
		App:          spec.AppIdentity(),
		Machine:      spec.MachineIdentity(),
		Series:       spec.Series,
		X:            spec.X,
		Nodes:        spec.Nodes,
		Warmup:       spec.Warmup,
		Iters:        spec.Iters,
		Seed:         spec.Seed,
		Jitter:       spec.Jitter,
		Value:        pt.Value,
		Meta:         pt.Meta,
		MaxLinkUtil:  pt.MaxLinkUtil,
		MeanLinkUtil: pt.MeanLinkUtil,
		WallNS:       wallNS,
	}
	// The cached point's x coordinate must round-trip: Entry.Point
	// rebuilds it from X, so a spec whose point disagrees with its own
	// x cell would corrupt reassembly on the next hit.
	if pt.Nodes != spec.X {
		return fmt.Errorf("store: spec %s produced a point at x=%d; refusing to cache", spec.Name(), pt.Nodes)
	}
	path := s.Path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	data, err := json.MarshalIndent(&e, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+"-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Len walks the cache and returns the number of entries, for -explain
// style diagnostics and tests. O(entries); not used on hot paths.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
