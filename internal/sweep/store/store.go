// Package store is the content-addressed run cache behind incremental
// sweeps: a directory of immutable per-key JSON entries, one per
// executed RunSpec, addressed by the spec's fingerprint
// (bench.RunSpec.Fingerprint). Because the fingerprint covers every
// input that determines a run's simulated result — engine-semantics
// salt, versioned app/machine identities, experiment coordinates,
// seed, jitter — a hit can be served without simulating, and a stale
// entry can never be returned for current semantics: semantic changes
// change the key, orphaning (not poisoning) old entries.
//
// Layout: <dir>/<key[:2]>/<key>.json, sharded on the first hash byte
// so a full-figure cache doesn't pile thousands of files into one
// directory. Entries are written atomically (temp file + rename), so
// concurrent sweep workers and interrupted runs leave either a whole
// entry or none. Corrupt or foreign files read as misses, never as
// errors that abort a sweep: the run is simply re-simulated and the
// entry rewritten.
//
// The unit of exchange is the whole Entry — value, provenance
// coordinates and the original simulation's wall cost — so any cache
// backend that moves Entries (the disk store here, the sweepd HTTP
// service, an in-memory fake) round-trips wall_ns provenance without
// knowing what it means. Build entries with NewEntry, which validates
// the invariants Put relies on.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"gat/internal/bench"
)

// Schema is the cache-entry schema tag. Bump only when the entry file
// format itself changes; result invalidation is the fingerprint's job.
const Schema = "gat-cache-v1"

// ErrReadOnly marks a Put refused by a store opened with OpenReadOnly
// (a worker on a shared read-only mount, sweepd's -read-only serving
// mode). Callers that treat cache errors as non-fatal lose only the
// memo; errors.Is(err, ErrReadOnly) identifies the cause.
var ErrReadOnly = errors.New("store is read-only")

// Entry is one cached run: the key it is filed under, the spec
// coordinates that produced it (for humans reading the cache dir —
// lookups trust only the key), and the resulting figure point.
type Entry struct {
	Schema string `json:"schema"`
	Key    string `json:"key"`

	// Provenance: where the point came from.
	Figure   string  `json:"figure"`
	Scenario string  `json:"scenario,omitempty"`
	App      string  `json:"app,omitempty"`     // versioned identity, e.g. jacobi3d@v1
	Machine  string  `json:"machine,omitempty"` // versioned identity, e.g. summit@v1
	Series   string  `json:"series"`
	X        int     `json:"x"`
	Nodes    int     `json:"nodes"`
	Warmup   int     `json:"warmup"`
	Iters    int     `json:"iters"`
	Seed     uint64  `json:"seed"`
	Jitter   float64 `json:"jitter,omitempty"`

	// The cached result, including the run's fabric-link congestion
	// summary (zero/absent on NIC-only machines).
	Value        float64 `json:"value"`
	Meta         string  `json:"meta,omitempty"`
	MaxLinkUtil  float64 `json:"max_link_util,omitempty"`
	MeanLinkUtil float64 `json:"mean_link_util,omitempty"`
	Routing      string  `json:"routing,omitempty"`

	// WallNS is the host cost of the original simulation — what the
	// hit saved. Metadata only.
	WallNS int64 `json:"wall_ns"`
}

// NewEntry builds the cache entry for one executed spec, validating
// the invariants every backend's Put relies on: the key is a
// well-formed fingerprint and the point's x coordinate round-trips
// (Entry.Point rebuilds it from X, so a spec whose point disagrees
// with its own x cell would corrupt reassembly on the next hit).
func NewEntry(key string, spec bench.RunSpec, pt bench.Point, wallNS int64) (Entry, error) {
	if !ValidKey(key) {
		return Entry{}, fmt.Errorf("store: malformed key %q for spec %s", key, spec.Name())
	}
	if pt.Nodes != spec.X {
		return Entry{}, fmt.Errorf("store: spec %s produced a point at x=%d; refusing to cache", spec.Name(), pt.Nodes)
	}
	return Entry{
		Schema:       Schema,
		Key:          key,
		Figure:       spec.FigID,
		Scenario:     spec.Scenario,
		App:          spec.AppIdentity(),
		Machine:      spec.MachineIdentity(),
		Series:       spec.Series,
		X:            spec.X,
		Nodes:        spec.Nodes,
		Warmup:       spec.Warmup,
		Iters:        spec.Iters,
		Seed:         spec.Seed,
		Jitter:       spec.Jitter,
		Value:        pt.Value,
		Meta:         pt.Meta,
		MaxLinkUtil:  pt.MaxLinkUtil,
		MeanLinkUtil: pt.MeanLinkUtil,
		Routing:      pt.Routing,
		WallNS:       wallNS,
	}, nil
}

// Point reconstructs the figure point the entry caches.
func (e Entry) Point() bench.Point {
	return bench.Point{
		Nodes: e.X, Value: e.Value, Meta: e.Meta,
		MaxLinkUtil: e.MaxLinkUtil, MeanLinkUtil: e.MeanLinkUtil,
		Routing: e.Routing,
	}
}

// Validate checks the entry's self-description: the schema tag this
// package writes and a well-formed key. It is the shared gate for
// every ingest path — the disk store's Put, sweepd's PUT handler, the
// remote client decoding a server response — so a foreign or damaged
// entry is refused identically everywhere.
func (e Entry) Validate() error {
	if e.Schema != Schema {
		return fmt.Errorf("store: entry has schema %q, want %q", e.Schema, Schema)
	}
	if !ValidKey(e.Key) {
		return fmt.Errorf("store: entry has malformed key %q", e.Key)
	}
	return nil
}

// ValidKey reports whether key has the shape of a run fingerprint: 32
// lowercase hex characters (bench.RunSpec.Fingerprint). Everything
// that builds a file path or URL from an externally supplied key
// checks this first, so a hostile key ("../../etc/passwd") can never
// escape the cache directory.
func ValidKey(key string) bool {
	if len(key) != 32 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Store is an open cache directory.
type Store struct {
	dir      string
	readOnly bool
}

// Open prepares dir as a run cache, creating it if needed and probing
// that it is writable, so a sweep fails up front — not after an hour
// of simulation — when the cache can't persist results. Consumers
// that only ever Get (a worker on a shared read-only mount) should use
// OpenReadOnly instead: the probe would wrongly reject their mount.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: cannot create cache directory: %w", err)
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("store: cache directory %s is not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return &Store{dir: dir}, nil
}

// OpenReadOnly opens an existing cache directory for lookups only: no
// writability probe, no directory creation, and every Put returns an
// error satisfying errors.Is(err, ErrReadOnly). This is the mode for
// consumers of a shared read-only mount and for sweepd's -read-only
// serving. The directory must already exist — a missing path is
// almost always a typo, and a read-only consumer cannot create it
// anyway.
func OpenReadOnly(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty cache directory")
	}
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("store: read-only cache directory: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("store: read-only cache path %s is not a directory", dir)
	}
	return &Store{dir: dir, readOnly: true}, nil
}

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

// ReadOnly reports whether the store was opened with OpenReadOnly.
func (s *Store) ReadOnly() bool { return s.readOnly }

// Path returns the entry file for a key (which need not exist).
func (s *Store) Path(key string) string {
	shard := key
	if len(shard) > 2 {
		shard = shard[:2]
	}
	return filepath.Join(s.dir, shard, key+".json")
}

// Get looks a key up and returns the whole entry (the point via
// Entry.Point, plus provenance like the original simulation's WallNS).
// ok reports a usable hit; a missing entry returns (zero, false, nil)
// and a corrupt one (unparseable JSON, wrong schema, key mismatch from
// a renamed file) returns (zero, false, err) so the caller can log the
// discard — both are misses, and Put later heals the slot.
func (s *Store) Get(key string) (Entry, bool, error) {
	if !ValidKey(key) {
		return Entry{}, false, fmt.Errorf("store: malformed key %q", key)
	}
	data, err := os.ReadFile(s.Path(key))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return Entry{}, false, nil
		}
		return Entry{}, false, fmt.Errorf("store: reading %s: %w", key, err)
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return Entry{}, false, fmt.Errorf("store: corrupt entry %s: %w", key, err)
	}
	if e.Schema != Schema {
		return Entry{}, false, fmt.Errorf("store: entry %s has schema %q, want %q", key, e.Schema, Schema)
	}
	if e.Key != key {
		return Entry{}, false, fmt.Errorf("store: entry filed under %s claims key %s", key, e.Key)
	}
	return e, true, nil
}

// Put files an entry under its own key, atomically: the entry is
// complete on disk before it becomes visible, and a re-put of the same
// key (a healed corrupt slot, a racing worker with the identical
// result) simply replaces it — entries are content-addressed, so
// concurrent writers of the same key are writing the same result and
// last-rename-wins is conflict-free. Build entries with NewEntry;
// foreign ones are gated by Entry.Validate.
func (s *Store) Put(e Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if s.readOnly {
		return fmt.Errorf("store: put %s: %w", e.Key, ErrReadOnly)
	}
	path := s.Path(e.Key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	data, err := json.MarshalIndent(&e, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+e.Key+"-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Len walks the cache and returns the number of entries, for -explain
// style diagnostics and tests. O(entries); not used on hot paths.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
