package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"gat/internal/bench"
)

// testSpec compiles a real plan and returns one spec plus its key, so
// the cache tests exercise the same fingerprints production uses.
func testSpec(t *testing.T) (bench.RunSpec, string) {
	t.Helper()
	p, err := bench.PlanScenario("fig6a", bench.Options{MaxNodes: 2, Warmup: 1, Iters: 2}, bench.Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	spec := p.Specs[0]
	return spec, spec.Fingerprint()
}

// mustEntry builds a valid entry for one executed spec.
func mustEntry(t *testing.T, key string, spec bench.RunSpec, pt bench.Point, wallNS int64) Entry {
	t.Helper()
	e, err := NewEntry(key, spec, pt, wallNS)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestStoreMissThenHit(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec, key := testSpec(t)

	if _, ok, err := s.Get(key); ok || err != nil {
		t.Fatalf("empty store: Get = ok=%v err=%v, want miss with nil error", ok, err)
	}

	want := bench.Point{Nodes: spec.X, Value: 1.25, Meta: "ODF-2", MaxLinkUtil: 0.42, MeanLinkUtil: 0.17, Routing: "adaptive"}
	if err := s.Put(mustEntry(t, key, spec, want, 42)); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if got.Point() != want {
		t.Fatalf("round trip: got %+v, want %+v", got.Point(), want)
	}
	if got.WallNS != 42 {
		t.Fatalf("round trip lost the simulation cost: wall_ns = %d, want 42", got.WallNS)
	}

	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1 entry", n, err)
	}
	// The layout contract: sharded by the first key byte.
	if want := filepath.Join(s.Dir(), key[:2], key+".json"); s.Path(key) != want {
		t.Fatalf("Path = %s, want %s", s.Path(key), want)
	}
}

// TestStoreCorruptEntryIsMiss covers every way an entry can rot on
// disk: truncated JSON, a wrong schema tag, and a file renamed under a
// key it doesn't match. All must read as misses with a diagnostic
// error — never a hit, never a sweep-aborting failure — and a fresh
// Put must heal the slot.
func TestStoreCorruptEntryIsMiss(t *testing.T) {
	spec, key := testSpec(t)
	cases := []struct {
		name, content string
	}{
		{"truncated", `{"schema":"gat-cache-v1","key":"` + key[:8]},
		{"wrong-schema", `{"schema":"gat-cache-v9","key":"` + key + `","x":1,"value":2}`},
		{"key-mismatch", `{"schema":"gat-cache-v1","key":"deadbeefdeadbeefdeadbeefdeadbeef","x":1,"value":2}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			path := s.Path(key)
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(c.content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, ok, err := s.Get(key)
			if ok {
				t.Fatal("corrupt entry returned as a hit")
			}
			if err == nil {
				t.Fatal("corrupt entry should return a diagnostic error")
			}
			// Put heals the slot.
			if err := s.Put(mustEntry(t, key, spec, bench.Point{Nodes: spec.X, Value: 3.5}, 1)); err != nil {
				t.Fatal(err)
			}
			if got, ok, err := s.Get(key); !ok || err != nil || got.Point().Value != 3.5 {
				t.Fatalf("healed slot: got %+v ok=%v err=%v", got, ok, err)
			}
		})
	}
}

func TestStoreOpenErrors(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") should error")
	}
	// A file where the directory should be.
	dir := t.TempDir()
	blocked := filepath.Join(dir, "occupied")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(blocked); err == nil {
		t.Fatal("Open over a plain file should error")
	}
	if os.Geteuid() != 0 { // root ignores mode bits; the probe can't fail
		ro := filepath.Join(dir, "ro")
		if err := os.Mkdir(ro, 0o555); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(ro); err == nil || !strings.Contains(err.Error(), "writable") {
			t.Fatalf("Open of read-only dir: err = %v, want writability error", err)
		}
	}
}

// TestStoreOpenReadOnly: a read-only store serves hits without ever
// probing writability, refuses Put with the typed error, and refuses
// to invent a directory that a typo pointed at.
func TestStoreOpenReadOnly(t *testing.T) {
	dir := t.TempDir()
	rw, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec, key := testSpec(t)
	want := bench.Point{Nodes: spec.X, Value: 2.5}
	if err := rw.Put(mustEntry(t, key, spec, want, 7)); err != nil {
		t.Fatal(err)
	}

	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !ro.ReadOnly() {
		t.Fatal("OpenReadOnly store does not report ReadOnly()")
	}
	got, ok, err := ro.Get(key)
	if !ok || err != nil || got.Point() != want {
		t.Fatalf("read-only Get: got %+v ok=%v err=%v", got, ok, err)
	}
	err = ro.Put(mustEntry(t, key, spec, want, 7))
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only Put error = %v, want errors.Is(_, ErrReadOnly)", err)
	}

	if _, err := OpenReadOnly(filepath.Join(dir, "no-such-dir")); err == nil {
		t.Fatal("OpenReadOnly of a missing directory should error")
	}
	if _, err := OpenReadOnly(""); err == nil {
		t.Fatal("OpenReadOnly(\"\") should error")
	}
}

// TestStorePutRejectsInconsistentPoint guards the x round trip: a
// point whose coordinate disagrees with its spec must not be cached,
// because Entry.Point would rebuild it at the wrong x. The check
// lives in NewEntry, so every backend inherits it.
func TestStorePutRejectsInconsistentPoint(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec, key := testSpec(t)
	if _, err := NewEntry(key, spec, bench.Point{Nodes: spec.X + 7, Value: 1}, 0); err == nil {
		t.Fatal("NewEntry accepted a point at the wrong x coordinate")
	}
	if _, ok, _ := s.Get(key); ok {
		t.Fatal("rejected entry still created a slot")
	}
}

// TestStorePutRejectsForeignEntries: Put gates on Entry.Validate, so a
// wrong-schema or malformed-key entry (e.g. relayed by sweepd from a
// hostile client) can never land on disk.
func TestStorePutRejectsForeignEntries(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec, key := testSpec(t)
	good := mustEntry(t, key, spec, bench.Point{Nodes: spec.X, Value: 1}, 1)

	bad := good
	bad.Schema = "gat-cache-v9"
	if err := s.Put(bad); err == nil {
		t.Fatal("Put accepted a foreign schema")
	}
	for _, k := range []string{"", "short", "../../../../etc/passwd", strings.Repeat("Z", 32), key[:31] + "/"} {
		bad = good
		bad.Key = k
		if err := s.Put(bad); err == nil {
			t.Fatalf("Put accepted malformed key %q", k)
		}
		if _, _, err := s.Get(k); err == nil {
			t.Fatalf("Get accepted malformed key %q", k)
		}
	}
	if n, _ := s.Len(); n != 0 {
		t.Fatalf("rejected entries still landed: %d files", n)
	}
}

func TestValidKey(t *testing.T) {
	spec, key := testSpec(t)
	_ = spec
	cases := []struct {
		key  string
		want bool
	}{
		{key, true},
		{"deadbeefdeadbeefdeadbeefdeadbeef", true},
		{"0123456789abcdef0123456789abcdef", true},
		{"", false},
		{"deadbeef", false},                         // too short
		{strings.Repeat("a", 33), false},            // too long
		{"DEADBEEFDEADBEEFDEADBEEFDEADBEEF", false}, // uppercase
		{"deadbeefdeadbeefdeadbeefdeadbee/", false}, // path byte
		{"deadbeefdeadbeefdeadbeefdeadbe..", false}, // dot-dot
		{"deadbeefdeadbeefdeadbeefdeadbeeg", false}, // non-hex
	}
	for _, c := range cases {
		if got := ValidKey(c.key); got != c.want {
			t.Errorf("ValidKey(%q) = %v, want %v", c.key, got, c.want)
		}
	}
}

// TestStoreConcurrentPutSameKey races many workers finishing the
// identical fingerprint at once: every Put must succeed via the atomic
// temp+rename (last write wins), the surviving entry must be whole —
// never a torn interleaving — and no temp droppings may remain. This
// is exactly the shape a shared sweepd store sees when two machines
// complete the same cell simultaneously.
func TestStoreConcurrentPutSameKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec, key := testSpec(t)

	const writers = 16
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Same content-addressed result; only the host-side wall
			// cost differs between racing writers.
			e := mustEntry(t, key, spec, bench.Point{Nodes: spec.X, Value: 4.25, Meta: "racer"}, int64(1000+w))
			errs[w] = s.Put(e)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("racing Put %d failed: %v", w, err)
		}
	}

	got, ok, err := s.Get(key)
	if !ok || err != nil {
		t.Fatalf("entry after race: ok=%v err=%v", ok, err)
	}
	if got.Point() != (bench.Point{Nodes: spec.X, Value: 4.25, Meta: "racer"}) {
		t.Fatalf("torn entry after race: %+v", got)
	}
	if got.WallNS < 1000 || got.WallNS >= 1000+writers {
		t.Fatalf("entry wall_ns %d is not one of the racing writes", got.WallNS)
	}
	// Atomic rename leaves no temp files behind.
	leftovers, err := filepath.Glob(filepath.Join(filepath.Dir(s.Path(key)), ".*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("racing Puts left temp files: %v", leftovers)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len after race = %d, %v; want exactly 1 entry", n, err)
	}
}

// TestStoreConcurrentPutDistinctKeys shakes the per-shard MkdirAll
// path: distinct keys landing in the same and different shards at
// once must all persist.
func TestStoreConcurrentPutDistinctKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := testSpec(t)
	const writers = 24
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("%032x", w%3*16+w) // collide some shards on purpose
			e := mustEntry(t, key, spec, bench.Point{Nodes: spec.X, Value: float64(w)}, 1)
			errs[w] = s.Put(e)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("distinct-key Put %d failed: %v", w, err)
		}
	}
}
