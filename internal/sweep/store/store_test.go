package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gat/internal/bench"
)

// testSpec compiles a real plan and returns one spec plus its key, so
// the cache tests exercise the same fingerprints production uses.
func testSpec(t *testing.T) (bench.RunSpec, string) {
	t.Helper()
	p, err := bench.PlanScenario("fig6a", bench.Options{MaxNodes: 2, Warmup: 1, Iters: 2}, bench.Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	spec := p.Specs[0]
	return spec, spec.Fingerprint()
}

func TestStoreMissThenHit(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec, key := testSpec(t)

	if _, ok, err := s.Get(key); ok || err != nil {
		t.Fatalf("empty store: Get = ok=%v err=%v, want miss with nil error", ok, err)
	}

	want := bench.Point{Nodes: spec.X, Value: 1.25, Meta: "ODF-2", MaxLinkUtil: 0.42, MeanLinkUtil: 0.17}
	if err := s.Put(key, spec, want, 42); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if got.Point() != want {
		t.Fatalf("round trip: got %+v, want %+v", got.Point(), want)
	}
	if got.WallNS != 42 {
		t.Fatalf("round trip lost the simulation cost: wall_ns = %d, want 42", got.WallNS)
	}

	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1 entry", n, err)
	}
	// The layout contract: sharded by the first key byte.
	if want := filepath.Join(s.Dir(), key[:2], key+".json"); s.Path(key) != want {
		t.Fatalf("Path = %s, want %s", s.Path(key), want)
	}
}

// TestStoreCorruptEntryIsMiss covers every way an entry can rot on
// disk: truncated JSON, a wrong schema tag, and a file renamed under a
// key it doesn't match. All must read as misses with a diagnostic
// error — never a hit, never a sweep-aborting failure — and a fresh
// Put must heal the slot.
func TestStoreCorruptEntryIsMiss(t *testing.T) {
	spec, key := testSpec(t)
	cases := []struct {
		name, content string
	}{
		{"truncated", `{"schema":"gat-cache-v1","key":"` + key[:8]},
		{"wrong-schema", `{"schema":"gat-cache-v9","key":"` + key + `","x":1,"value":2}`},
		{"key-mismatch", `{"schema":"gat-cache-v1","key":"deadbeefdeadbeefdeadbeefdeadbeef","x":1,"value":2}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			path := s.Path(key)
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(c.content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, ok, err := s.Get(key)
			if ok {
				t.Fatal("corrupt entry returned as a hit")
			}
			if err == nil {
				t.Fatal("corrupt entry should return a diagnostic error")
			}
			// Put heals the slot.
			if err := s.Put(key, spec, bench.Point{Nodes: spec.X, Value: 3.5}, 1); err != nil {
				t.Fatal(err)
			}
			if got, ok, err := s.Get(key); !ok || err != nil || got.Point().Value != 3.5 {
				t.Fatalf("healed slot: got %+v ok=%v err=%v", got, ok, err)
			}
		})
	}
}

func TestStoreOpenErrors(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") should error")
	}
	// A file where the directory should be.
	dir := t.TempDir()
	blocked := filepath.Join(dir, "occupied")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(blocked); err == nil {
		t.Fatal("Open over a plain file should error")
	}
	if os.Geteuid() != 0 { // root ignores mode bits; the probe can't fail
		ro := filepath.Join(dir, "ro")
		if err := os.Mkdir(ro, 0o555); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(ro); err == nil || !strings.Contains(err.Error(), "writable") {
			t.Fatalf("Open of read-only dir: err = %v, want writability error", err)
		}
	}
}

// TestStorePutRejectsInconsistentPoint guards the x round trip: a
// point whose coordinate disagrees with its spec must not be cached,
// because Entry.Point would rebuild it at the wrong x.
func TestStorePutRejectsInconsistentPoint(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec, key := testSpec(t)
	if err := s.Put(key, spec, bench.Point{Nodes: spec.X + 7, Value: 1}, 0); err == nil {
		t.Fatal("Put accepted a point at the wrong x coordinate")
	}
	if _, ok, _ := s.Get(key); ok {
		t.Fatal("rejected Put still created an entry")
	}
}
