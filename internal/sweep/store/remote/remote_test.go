package remote_test

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gat/internal/bench"
	"gat/internal/sweep"
	"gat/internal/sweep/cachetest"
	"gat/internal/sweep/store"
	"gat/internal/sweep/store/remote"
	"gat/internal/sweepd"
)

// fast returns client options tuned for tests: tiny timeouts, one
// quick retry, a hair-trigger breaker where noted.
func fast(extra ...remote.Option) []remote.Option {
	opts := []remote.Option{
		remote.WithTimeout(2 * time.Second),
		remote.WithBackoff(time.Millisecond),
	}
	return append(opts, extra...)
}

func openServer(t *testing.T) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sweepd.New(st, t.Logf))
	t.Cleanup(ts.Close)
	return ts, st
}

// TestRemoteConformance: the HTTP client passes the exact suite the
// disk store and in-memory fake pass — one sweep.Cache contract,
// three backends.
func TestRemoteConformance(t *testing.T) {
	cachetest.Conformance(t, func(t *testing.T) cachetest.Cache {
		ts, _ := openServer(t)
		c, err := remote.Open(ts.URL, fast()...)
		if err != nil {
			t.Fatal(err)
		}
		return c
	})
}

func TestOpenRejectsBadURLs(t *testing.T) {
	for _, base := range []string{"", "cachehost:8344", "ftp://x", "http://"} {
		if _, err := remote.Open(base); err == nil {
			t.Errorf("Open(%q) succeeded, want error", base)
		}
	}
}

// TestGetRetriesServerErrors: two 500s then a clean miss — the
// bounded-retry path, exercised without any sleep beyond 1ms backoff.
func TestGetRetriesServerErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		http.NotFound(w, r)
	}))
	defer ts.Close()

	c, err := remote.Open(ts.URL, fast(remote.WithAttempts(3))...)
	if err != nil {
		t.Fatal(err)
	}
	_, key := cachetest.TestSpec(t)
	if _, ok, err := c.Get(key); ok || err != nil {
		t.Fatalf("Get after retries = ok=%v err=%v, want clean miss", ok, err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 retried + final)", got)
	}
}

// TestGetDoesNotRetryClientErrors: a 400 means the server understood
// and refused; retrying identical bytes is pointless.
func TestGetDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "no", http.StatusBadRequest)
	}))
	defer ts.Close()

	c, err := remote.Open(ts.URL, fast(remote.WithAttempts(5))...)
	if err != nil {
		t.Fatal(err)
	}
	_, key := cachetest.TestSpec(t)
	if _, ok, err := c.Get(key); ok || err == nil {
		t.Fatalf("Get on 400 = ok=%v err=%v, want error miss", ok, err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (4xx never retried)", got)
	}
}

// TestGetRejectsForeignPayloads: a server handing back a wrong-key or
// wrong-schema entry is reported, and the entry is not forwarded.
func TestGetRejectsForeignPayloads(t *testing.T) {
	spec, key := cachetest.TestSpec(t)
	e, err := store.NewEntry(key, spec, bench.Point{Nodes: spec.X, Value: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	e.Key = "0123456789abcdef0123456789abcdef" // server lies about the key

	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sweepdWriteEntry(t, w, e)
	}))
	defer ts.Close()

	c, err := remote.Open(ts.URL, fast()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get(key); ok || err == nil {
		t.Fatalf("Get with lying server = ok=%v err=%v, want error miss", ok, err)
	}
}

func sweepdWriteEntry(t *testing.T, w http.ResponseWriter, e store.Entry) {
	t.Helper()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(&e); err != nil {
		t.Error(err)
	}
}

// TestBreakerFastFails: a server that is simply not there trips the
// breaker after WithDownAfter consecutive transport failures; later
// calls return ErrUnavailable without touching the network.
func TestBreakerFastFails(t *testing.T) {
	// Grab a port that nothing listens on: bind, then close.
	dead := httptest.NewServer(http.NotFoundHandler())
	base := dead.URL
	dead.Close()

	c, err := remote.Open(base, fast(
		remote.WithTimeout(200*time.Millisecond),
		remote.WithAttempts(1),
		remote.WithDownAfter(2),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	_, key := cachetest.TestSpec(t)

	if _, ok, err := c.Get(key); ok || err == nil {
		t.Fatal("first Get against dead server should error")
	}
	if _, ok, err := c.Get(key); ok || err == nil {
		t.Fatal("second Get against dead server should error")
	}
	if !c.Down() {
		t.Fatal("breaker should have tripped after 2 consecutive failures")
	}
	start := time.Now() //gat:nondet-ok test-only latency assertion on fast-fail path
	_, _, err = c.Get(key)
	elapsed := time.Since(start) //gat:nondet-ok test-only latency assertion on fast-fail path
	if !errors.Is(err, remote.ErrUnavailable) {
		t.Fatalf("tripped Get error = %v, want ErrUnavailable", err)
	}
	if elapsed > 50*time.Millisecond {
		t.Fatalf("tripped Get took %v, want fast-fail", elapsed)
	}
}

// TestBreakerResetOnSuccess: failures interleaved with successes never
// trip it — only consecutive failures mark a server down.
func TestBreakerResetOnSuccess(t *testing.T) {
	ts, _ := openServer(t)
	c, err := remote.Open(ts.URL, fast(remote.WithAttempts(1), remote.WithDownAfter(2))...)
	if err != nil {
		t.Fatal(err)
	}
	_, key := cachetest.TestSpec(t)
	for i := 0; i < 5; i++ {
		if _, ok, err := c.Get(key); ok || err != nil {
			t.Fatalf("Get %d = ok=%v err=%v", i, ok, err)
		}
	}
	if c.Down() {
		t.Fatal("breaker tripped on a healthy server")
	}
}

// TestPutReadOnlyMapsTo403: errors.Is(err, store.ErrReadOnly) works
// identically for a local read-only store and a read-only sweepd.
func TestPutReadOnlyMapsTo403(t *testing.T) {
	dir := t.TempDir()
	if _, err := store.Open(dir); err != nil {
		t.Fatal(err)
	}
	ro, err := store.OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sweepd.New(ro, t.Logf))
	defer ts.Close()

	c, err := remote.Open(ts.URL, fast()...)
	if err != nil {
		t.Fatal(err)
	}
	spec, key := cachetest.TestSpec(t)
	e, err := store.NewEntry(key, spec, bench.Point{Nodes: spec.X, Value: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(e); !errors.Is(err, store.ErrReadOnly) {
		t.Fatalf("Put to read-only sweepd = %v, want errors.Is(_, store.ErrReadOnly)", err)
	}
}

// TestPublishRunAndHealthz: the watch-feed path end to end against a
// real sweepd.
func TestPublishRunAndHealthz(t *testing.T) {
	ts, _ := openServer(t)
	c, err := remote.Open(ts.URL, fast()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Healthz(); err != nil {
		t.Fatal(err)
	}
	rec := sweep.ReportRun{Figure: "fig6a", Series: "Charm-D", X: 2, Nodes: 2, Iters: 2, Value: 3, Source: "sim"}
	if err := c.PublishRun("nightly", rec); err != nil {
		t.Fatal(err)
	}
	if err := c.PublishRun("", rec); err == nil {
		t.Fatal("PublishRun with empty sweep id should error")
	}

	resp, err := http.Get(ts.URL + "/v1/sweep/nightly")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [4096]byte
	n, _ := resp.Body.Read(buf[:])
	if !strings.Contains(string(buf[:n]), `"figure"`) {
		t.Fatalf("published run not visible in snapshot: %s", buf[:n])
	}
}

// TestTokenRoundTripAndUnauthorized: a tokened client works against a
// tokened sweepd end to end; a missing or wrong token maps every call
// to ErrUnauthorized without retries and without tripping the breaker
// (the server answered — it is alive, just unpersuaded).
func TestTokenRoundTripAndUnauthorized(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sweepd.New(st, t.Logf, sweepd.WithToken("hunter2")))
	t.Cleanup(ts.Close)

	good, err := remote.Open(ts.URL, fast(remote.WithToken("hunter2"))...)
	if err != nil {
		t.Fatal(err)
	}
	spec, key := cachetest.TestSpec(t)
	e, err := store.NewEntry(key, spec, bench.Point{Nodes: spec.X, Value: 4.5, Routing: "adaptive"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Put(e); err != nil {
		t.Fatal(err)
	}
	back, ok, err := good.Get(key)
	if err != nil || !ok {
		t.Fatalf("tokened Get = (%v, %v), want a hit", ok, err)
	}
	if back.Routing != "adaptive" {
		t.Fatalf("entry routing did not round-trip: got %q", back.Routing)
	}

	bad, err := remote.Open(ts.URL, fast(remote.WithToken("wrong"), remote.WithAttempts(1), remote.WithDownAfter(1))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bad.Get(key); !errors.Is(err, remote.ErrUnauthorized) {
		t.Fatalf("Get with wrong token = %v, want errors.Is(_, ErrUnauthorized)", err)
	}
	if err := bad.Put(e); !errors.Is(err, remote.ErrUnauthorized) {
		t.Fatalf("Put with wrong token = %v, want errors.Is(_, ErrUnauthorized)", err)
	}
	if err := bad.PublishRun("nightly", sweep.ReportRun{Figure: "f", Series: "s"}); !errors.Is(err, remote.ErrUnauthorized) {
		t.Fatalf("PublishRun with wrong token = %v, want errors.Is(_, ErrUnauthorized)", err)
	}
	if bad.Down() {
		t.Fatal("401s tripped the breaker; completed exchanges must count as proof of life")
	}
	// Healthz is exempt server-side, so even the tokenless client sees it.
	if err := bad.Healthz(); err != nil {
		t.Fatalf("healthz with wrong token = %v, want nil (endpoint is auth-exempt)", err)
	}
}
