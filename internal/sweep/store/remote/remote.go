// Package remote implements sweep.Cache over HTTP against a sweepd
// server, so many worker machines can share one content-addressed run
// store. The client is built to fail open: the orchestrator treats
// every error it returns as a cache miss and simulates instead, so a
// slow, flaky or dead sweepd can cost wall time but never a figure.
//
// Three behaviours keep that cost bounded:
//
//   - Bounded retries. Transport errors and 5xx responses are retried
//     with exponential backoff a fixed number of times; 4xx responses
//     never are (the server understood us and said no).
//   - A one-way breaker. After WithDownAfter consecutive transport
//     failures the client marks the server down and every later call
//     fails fast with ErrUnavailable — a killed sweepd costs a few
//     timeouts total, not one per run. Any successful HTTP exchange
//     before the trip resets the count.
//   - Short per-request timeouts (WithTimeout), so a black-holed
//     connection cannot stall a sweep cell indefinitely.
//
// Compose with the local disk store via sweep.Tiered so warm local
// entries never touch the network and remote hits seed the local tier.
package remote

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"gat/internal/sweep"
	"gat/internal/sweep/store"
)

// ErrUnavailable reports that the breaker has tripped: the server
// failed too many consecutive exchanges and the client now fails fast
// instead of paying a timeout per call. The orchestrator treats it
// like any other cache error — complain once, simulate.
var ErrUnavailable = errors.New("remote cache marked unavailable after repeated failures")

// ErrUnauthorized reports a 401 from a token-protected sweepd: the
// client's token (possibly absent) was rejected. Like every 4xx it is
// never retried — the same bytes would be refused again — but it gets
// its own sentinel so the orchestrator can say "fix -remote-token"
// instead of a generic cache complaint. The exchange itself completed,
// so a 401 feeds the breaker as proof of life, not failure.
var ErrUnauthorized = errors.New("remote cache rejected the bearer token")

// Option configures a Client.
type Option func(*Client)

// WithTimeout bounds each individual HTTP exchange (default 5s).
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.hc.Timeout = d } }

// WithAttempts sets how many times a retryable request is tried in
// total, including the first attempt (default 3, minimum 1).
func WithAttempts(n int) Option { return func(c *Client) { c.attempts = max(1, n) } }

// WithBackoff sets the sleep before the first retry; it doubles each
// further retry (default 100ms).
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// WithDownAfter sets how many consecutive failed exchanges trip the
// breaker (default 3, minimum 1).
func WithDownAfter(n int) Option { return func(c *Client) { c.downAfter = max(1, n) } }

// WithToken sends "Authorization: Bearer <token>" on every request,
// matching a sweepd started with -token. An empty token sends no
// header (the open-server default).
func WithToken(token string) Option { return func(c *Client) { c.token = token } }

// Client is a sweep.Cache backed by a sweepd server.
type Client struct {
	base      string
	hc        *http.Client
	token     string
	attempts  int
	backoff   time.Duration
	downAfter int

	mu    sync.Mutex
	fails int
	down  bool
}

// Open builds a client for the sweepd at base (e.g.
// "http://cachehost:8344"). It does not touch the network: a sweep
// pointed at a server that never comes up still runs, it just
// simulates everything.
func Open(base string, opts ...Option) (*Client, error) {
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("remote: parsing base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("remote: base URL %q must be http:// or https://", base)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("remote: base URL %q has no host", base)
	}
	c := &Client{
		base:      strings.TrimRight(base, "/"),
		hc:        &http.Client{Timeout: 5 * time.Second},
		attempts:  3,
		backoff:   100 * time.Millisecond,
		downAfter: 3,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Base returns the server URL the client was opened with.
func (c *Client) Base() string { return c.base }

// Down reports whether the breaker has tripped.
func (c *Client) Down() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down
}

// checkDown fails fast once the breaker has tripped.
func (c *Client) checkDown() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return fmt.Errorf("remote %s: %w", c.base, ErrUnavailable)
	}
	return nil
}

// recordExchange feeds the breaker: any completed HTTP exchange —
// whatever the status code — proves the server is alive and resets
// the count; a transport-level failure increments it.
func (c *Client) recordExchange(ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ok {
		c.fails = 0
		return
	}
	c.fails++
	if c.fails >= c.downAfter {
		c.down = true
	}
}

// retryable reports whether a response status is worth retrying.
// 5xx means the server glitched; 4xx means it understood the request
// and rejected it, so retrying the same bytes cannot help.
func retryable(status int) bool { return status >= 500 }

// do runs one request with bounded retries and feeds the breaker. The
// caller owns the returned body. A nil response with nil error never
// happens: either resp is live or err is set.
func (c *Client) do(method, path string, body []byte) (*http.Response, error) {
	if err := c.checkDown(); err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < c.attempts; attempt++ {
		if attempt > 0 {
			// Host wall time by definition: network backoff between
			// retries. Never observable in figure values.
			time.Sleep(c.backoff << (attempt - 1)) //gat:nondet-ok HTTP retry backoff; host-side network path
		}
		req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("remote: building %s %s: %w", method, path, err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.token != "" {
			req.Header.Set("Authorization", "Bearer "+c.token)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			c.recordExchange(false)
			lastErr = fmt.Errorf("remote: %s %s: %w", method, path, err)
			if err := c.checkDown(); err != nil {
				return nil, errors.Join(lastErr, err)
			}
			continue
		}
		c.recordExchange(true)
		if resp.StatusCode == http.StatusUnauthorized {
			// A completed exchange (breaker already fed above), mapped to
			// the sentinel here so every caller gets it uniformly.
			drain(resp)
			return nil, fmt.Errorf("remote: %s %s: %w", method, path, ErrUnauthorized)
		}
		if retryable(resp.StatusCode) && attempt+1 < c.attempts {
			lastErr = fmt.Errorf("remote: %s %s: server error %d", method, path, resp.StatusCode)
			drain(resp)
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

// drain discards a response body so the connection can be reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// errorBody extracts the server's plain-text diagnostic for a non-2xx
// response, truncated to one log-friendly line.
func errorBody(resp *http.Response) string {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	s := strings.TrimSpace(string(data))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if s == "" {
		return resp.Status
	}
	return s
}

// Get implements sweep.Cache. A 404 is a clean miss; a payload that
// fails validation (foreign schema, key mismatch) is reported as an
// error so the orchestrator logs it, but is still a miss — the client
// never forwards bytes it cannot vouch for.
func (c *Client) Get(key string) (store.Entry, bool, error) {
	var zero store.Entry
	if !store.ValidKey(key) {
		return zero, false, fmt.Errorf("remote: malformed cache key %q", key)
	}
	resp, err := c.do(http.MethodGet, "/v1/entry/"+key, nil)
	if err != nil {
		return zero, false, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		drainRest(resp)
		return zero, false, nil
	case resp.StatusCode != http.StatusOK:
		return zero, false, fmt.Errorf("remote: GET entry %s: %s", key, errorBody(resp))
	}
	var e store.Entry
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e); err != nil {
		return zero, false, fmt.Errorf("remote: GET entry %s: undecodable payload: %w", key, err)
	}
	if err := e.Validate(); err != nil {
		return zero, false, fmt.Errorf("remote: GET entry %s: server returned invalid entry: %w", key, err)
	}
	if e.Key != key {
		return zero, false, fmt.Errorf("remote: GET entry %s: server returned entry for key %s", key, e.Key)
	}
	return e, true, nil
}

// drainRest discards whatever is left on an already-deferred body.
func drainRest(resp *http.Response) { io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) }

// Put implements sweep.Cache. A 403 from a read-only sweepd maps to
// store.ErrReadOnly so callers can errors.Is it exactly like a local
// read-only store.
func (c *Client) Put(e store.Entry) error {
	if err := e.Validate(); err != nil {
		return fmt.Errorf("remote: refusing to PUT: %w", err)
	}
	body, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("remote: encoding entry: %w", err)
	}
	resp, err := c.do(http.MethodPut, "/v1/entry/"+e.Key, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent, http.StatusOK, http.StatusCreated:
		drainRest(resp)
		return nil
	case http.StatusForbidden:
		return fmt.Errorf("remote: PUT entry %s: %s: %w", e.Key, errorBody(resp), store.ErrReadOnly)
	default:
		return fmt.Errorf("remote: PUT entry %s: %s", e.Key, errorBody(resp))
	}
}

// PublishRun registers one completed run under sweepID on the server,
// feeding /v1/watch streams. Meant to be called from sweep.Options.
// Notify; errors are advisory (the sweep's own report is still the
// source of truth).
func (c *Client) PublishRun(sweepID string, rec sweep.ReportRun) error {
	if sweepID == "" {
		return errors.New("remote: PublishRun needs a sweep id")
	}
	body, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("remote: encoding run record: %w", err)
	}
	resp, err := c.do(http.MethodPost, "/v1/sweep/"+url.PathEscape(sweepID)+"/run", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("remote: publish run to sweep %q: %s", sweepID, errorBody(resp))
	}
	drainRest(resp)
	return nil
}

// Healthz probes the server once (no retries beyond the usual policy)
// and returns nil if it answered 200.
func (c *Client) Healthz() error {
	resp, err := c.do(http.MethodGet, "/healthz", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("remote: healthz: %s", errorBody(resp))
	}
	drainRest(resp)
	return nil
}
