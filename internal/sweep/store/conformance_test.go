package store_test

import (
	"testing"

	"gat/internal/sweep/cachetest"
	"gat/internal/sweep/store"
)

// TestDiskStoreConformance runs the shared cache-backend suite over
// the on-disk store — the same suite the in-memory fake and the
// remote sweepd client run, so every sweep.Cache behaves identically.
func TestDiskStoreConformance(t *testing.T) {
	cachetest.Conformance(t, func(t *testing.T) cachetest.Cache {
		s, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}
