package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"gat/internal/bench"
)

// The golden files under testdata/ were captured from the pre-scenario
// -redesign cmd/sweep (closed per-figure generator functions, machine
// hard-wired to Summit). Every pre-redesign figure and ablation must
// stay byte-identical now that -fig resolves through the scenario
// registry — serial and parallel alike. Regenerate (only after an
// intentional cost-model change) with:
//
//	go run ./cmd/sweep -fig all -maxnodes 2 -iters 2 > internal/sweep/testdata/golden_figs_n2i2.txt
//	go run ./cmd/sweep -fig ablations -maxnodes 2 -iters 2 > internal/sweep/testdata/golden_ablations_n2i2.txt
//	go run ./cmd/sweep -fig all -maxnodes 4 -iters 2 -csv > internal/sweep/testdata/golden_figs_n4i2.csv
//	go run ./cmd/sweep -fig ablations -maxnodes 4 -iters 2 -csv > internal/sweep/testdata/golden_ablations_n4i2.csv

func kindIDs(t *testing.T, k bench.Kind) []string {
	t.Helper()
	var ids []string
	for _, s := range bench.Scenarios() {
		if s.Kind == k {
			ids = append(ids, s.Name)
		}
	}
	if len(ids) == 0 {
		t.Fatalf("no scenarios of kind %v registered", k)
	}
	return ids
}

func goldenBytes(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sweepBytes(t *testing.T, ids []string, opt bench.Options, workers int, csv bool) []byte {
	t.Helper()
	res, err := Sweep(ids, Options{Workers: workers, Bench: opt})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if csv {
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	} else {
		res.WriteTables(&buf)
	}
	return buf.Bytes()
}

func diffLine(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	line := 1
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return line
		}
		if a[i] == '\n' {
			line++
		}
	}
	return line
}

// TestGoldenBackCompat replays the pre-redesign golden sweeps through
// the scenario registry, serially and with 4 workers, and at several
// parallel-in-run shard counts — the paper-figure scenarios run on the
// full per-GPU engine, which Shards does not partition, so the knob
// must be a no-op on their bytes.
func TestGoldenBackCompat(t *testing.T) {
	cases := []struct {
		golden string
		kind   bench.Kind
		opt    bench.Options
		csv    bool
	}{
		{"golden_figs_n2i2.txt", bench.KindFigure, bench.Options{MaxNodes: 2, Iters: 2}, false},
		{"golden_ablations_n2i2.txt", bench.KindAblation, bench.Options{MaxNodes: 2, Iters: 2}, false},
		{"golden_figs_n4i2.csv", bench.KindFigure, bench.Options{MaxNodes: 4, Iters: 2}, true},
		{"golden_ablations_n4i2.csv", bench.KindAblation, bench.Options{MaxNodes: 4, Iters: 2}, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.golden, func(t *testing.T) {
			want := goldenBytes(t, c.golden)
			ids := kindIDs(t, c.kind)
			for _, run := range []struct{ workers, shards int }{
				{1, 1}, {4, 1}, {1, 2}, {4, 4},
			} {
				opt := c.opt
				opt.Shards = run.shards
				got := sweepBytes(t, ids, opt, run.workers, c.csv)
				if !bytes.Equal(got, want) {
					t.Fatalf("workers=%d shards=%d: output differs from pre-redesign golden at line %d\n--- got ---\n%s",
						run.workers, run.shards, diffLine(got, want), got)
				}
			}
		})
	}
}
