// End-to-end coverage of the sweep.Cache redesign: every backend —
// disk store, in-memory fake, remote sweepd client, tiered composite —
// must make a warm sweep byte-identical to a cold one with zero engine
// simulations, and a dead sweepd must degrade to plain simulation.
//
// Lives in package sweep_test (not sweep): it imports sweepd, which
// imports sweep, so an internal test file would be an import cycle.
package sweep_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gat/internal/bench"
	"gat/internal/sweep"
	"gat/internal/sweep/cachetest"
	"gat/internal/sweep/store"
	"gat/internal/sweep/store/remote"
	"gat/internal/sweepd"
)

// e2eIDs keeps the end-to-end matrix cheap: one Charm/MPI figure and
// one best-ODF search cover both spec shapes.
var e2eIDs = []string{"fig6a", "fig9a"}

func e2eOpt(c sweep.Cache) sweep.Options {
	return sweep.Options{
		Workers: 4,
		Bench:   bench.Options{MaxNodes: 2, Warmup: 1, Iters: 2},
		Cache:   c,
	}
}

// render captures the figure output — tables and CSV. The JSON report
// is deliberately excluded: it records per-run provenance (source,
// cached, wall_ns) that differs between a warm and a cold sweep by
// design, while the figure bytes must not.
func render(t *testing.T, res sweep.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	res.WriteTables(&buf)
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func startSweepd(t *testing.T) *httptest.Server {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sweepd.New(st, t.Logf))
	t.Cleanup(ts.Close)
	return ts
}

func remoteClient(t *testing.T, base string) *remote.Client {
	t.Helper()
	rc, err := remote.Open(base, remote.WithTimeout(5*time.Second), remote.WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

// TestBackendsWarmSweepByteIdentical is the acceptance gate of the
// cache API redesign, run against every backend through one table: a
// warm sweep re-emits the cold sweep's bytes without a single engine
// execution, whether the entries sit on local disk, in memory, behind
// a sweepd, or in a tiered local+remote composite.
func TestBackendsWarmSweepByteIdentical(t *testing.T) {
	backends := []struct {
		name string
		open func(t *testing.T) sweep.Cache
	}{
		{"disk", func(t *testing.T) sweep.Cache {
			st, err := store.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return st
		}},
		{"mem", func(t *testing.T) sweep.Cache { return cachetest.NewMem() }},
		{"remote", func(t *testing.T) sweep.Cache {
			return remoteClient(t, startSweepd(t).URL)
		}},
		{"tiered", func(t *testing.T) sweep.Cache {
			local, err := store.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return sweep.Tiered{Local: local, Remote: remoteClient(t, startSweepd(t).URL)}
		}},
	}
	for _, bk := range backends {
		t.Run(bk.name, func(t *testing.T) {
			c := bk.open(t)
			cold, err := sweep.Sweep(e2eIDs, e2eOpt(c))
			if err != nil {
				t.Fatal(err)
			}
			if cold.Simulated == 0 || cold.FromStore != 0 {
				t.Fatalf("cold provenance wrong: %s", cold.Provenance())
			}
			if cold.CacheErrors != 0 {
				t.Fatalf("cold sweep hit %d cache errors", cold.CacheErrors)
			}

			before := bench.Executions()
			warm, err := sweep.Sweep(e2eIDs, e2eOpt(c))
			if err != nil {
				t.Fatal(err)
			}
			if simulated := bench.Executions() - before; simulated != 0 {
				t.Fatalf("warm sweep executed %d simulations, want 0", simulated)
			}
			if warm.Simulated != 0 || warm.FromStore != cold.Simulated {
				t.Fatalf("warm provenance wrong: %s (cold was %s)", warm.Provenance(), cold.Provenance())
			}
			if got, want := render(t, warm), render(t, cold); !bytes.Equal(got, want) {
				t.Fatalf("warm sweep differs from cold sweep:\n%s\n---\n%s", got, want)
			}
		})
	}
}

// TestTieredWarmLocalAfterRemoteSeed: a sweep warmed purely through
// the remote tier seeds the local disk tier, so a second client with
// the same local dir never needs the network.
func TestTieredWarmLocalAfterRemoteSeed(t *testing.T) {
	ts := startSweepd(t)
	dir := t.TempDir()

	// Cold sweep, remote only: the server now holds every entry.
	if _, err := sweep.Sweep(e2eIDs, e2eOpt(remoteClient(t, ts.URL))); err != nil {
		t.Fatal(err)
	}

	// Warm sweep through a tiered cache with an empty local dir: every
	// hit comes from the remote and is written through to local disk.
	local, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sweep.Sweep(e2eIDs, e2eOpt(sweep.Tiered{Local: local, Remote: remoteClient(t, ts.URL)}))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Simulated != 0 || warm.CacheErrors != 0 {
		t.Fatalf("tiered warm provenance wrong: %s (%d cache errors)", warm.Provenance(), warm.CacheErrors)
	}
	n, err := local.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != warm.FromStore {
		t.Fatalf("local tier holds %d entries after remote-seeded sweep, want %d", n, warm.FromStore)
	}

	// Third sweep, local tier only — the network is gone and it still
	// serves everything.
	ts.Close()
	third, err := sweep.Sweep(e2eIDs, e2eOpt(local))
	if err != nil {
		t.Fatal(err)
	}
	if third.Simulated != 0 {
		t.Fatalf("after seeding, local-only sweep still simulated: %s", third.Provenance())
	}
}

// TestRemoteWarmJSONMatchesLocalWarm: the same store served two ways —
// locally by path, remotely through sweepd — must yield identical
// gat-sweep-v3 reports on a warm sweep, run records and all: the full
// Entry crosses the HTTP boundary, so even each run's original
// simulation wall_ns survives the round trip. Only the report header's
// own host wall time is excluded (it measures the sweep, not the runs).
func TestRemoteWarmJSONMatchesLocalWarm(t *testing.T) {
	dir := t.TempDir()
	local, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sweep.Sweep(e2eIDs, e2eOpt(local)); err != nil {
		t.Fatal(err)
	}

	// Serve the very same directory over HTTP, read-only: the warm
	// remote sweep needs no writes.
	ro, err := store.OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sweepd.New(ro, t.Logf))
	defer ts.Close()

	warmJSON := func(c sweep.Cache) []byte {
		t.Helper()
		before := bench.Executions()
		res, err := sweep.Sweep(e2eIDs, e2eOpt(c))
		if err != nil {
			t.Fatal(err)
		}
		if simulated := bench.Executions() - before; simulated != 0 {
			t.Fatalf("warm sweep executed %d simulations, want 0", simulated)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		rep, err := sweep.ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		rep.WallNS = 0 // the header times the sweep itself, not its runs
		out, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	localJSON := warmJSON(local)
	remoteJSON := warmJSON(remoteClient(t, ts.URL))
	if !bytes.Equal(localJSON, remoteJSON) {
		t.Fatalf("warm remote v3 report differs from warm local one:\n%s\n---\n%s", remoteJSON, localJSON)
	}
}

// TestDeadSweepdFailsOpen is the acceptance criterion for a killed or
// unreachable server: the sweep completes by simulating everything,
// reports cache errors (so the warning fires), and produces the same
// bytes as an uncached sweep.
func TestDeadSweepdFailsOpen(t *testing.T) {
	// Bind a port, then close it: a base URL where nothing listens.
	dead := httptest.NewServer(http.NotFoundHandler())
	base := dead.URL
	dead.Close()

	rc, err := remote.Open(base,
		remote.WithTimeout(200*time.Millisecond),
		remote.WithAttempts(1),
		remote.WithDownAfter(1))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sweep.Sweep(e2eIDs, sweep.Options{Workers: 4, Bench: bench.Options{MaxNodes: 2, Warmup: 1, Iters: 2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sweep.Sweep(e2eIDs, e2eOpt(rc))
	if err != nil {
		t.Fatalf("sweep against dead server failed instead of failing open: %v", err)
	}
	if res.Simulated == 0 || res.FromStore != 0 {
		t.Fatalf("dead-server provenance wrong: %s", res.Provenance())
	}
	if res.CacheErrors == 0 {
		t.Fatal("dead server produced no cache errors; the user would never see a warning")
	}
	if got, want := render(t, res), render(t, plain); !bytes.Equal(got, want) {
		t.Fatalf("dead-server sweep differs from uncached sweep:\n%s\n---\n%s", got, want)
	}
	if !rc.Down() {
		t.Fatal("breaker never tripped: a dead server would cost a timeout per run")
	}
}

// TestWatchStreamsSweepRuns wires the whole service loop: a sweep
// publishes each completed run through Options.Notify, and a watcher
// attached before the sweep starts receives one gat-sweep-v3 run line
// per cell, replay and live alike.
func TestWatchStreamsSweepRuns(t *testing.T) {
	ts := startSweepd(t)
	rc := remoteClient(t, ts.URL)

	resp, err := http.Get(ts.URL + "/v1/watch/e2e")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type line struct {
		rec sweep.ReportRun
		err error
	}
	lines := make(chan line)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var rec sweep.ReportRun
			err := json.Unmarshal(sc.Bytes(), &rec)
			lines <- line{rec, err}
			if err != nil {
				return
			}
		}
	}()

	opt := e2eOpt(rc)
	opt.Notify = func(run sweep.Run) {
		if err := rc.PublishRun("e2e", run.Record()); err != nil {
			t.Errorf("publishing run: %v", err)
		}
	}
	res, err := sweep.Sweep(e2eIDs, opt)
	if err != nil {
		t.Fatal(err)
	}
	total := res.Simulated + res.FromStore + res.FromPrior
	if total == 0 {
		t.Fatal("sweep produced no runs")
	}

	deadline := time.After(30 * time.Second)
	seen := 0
	for seen < total {
		select {
		case l := <-lines:
			if l.err != nil {
				t.Fatalf("watch stream line is not a run record: %v", l.err)
			}
			if l.rec.Figure == "" || l.rec.Series == "" {
				t.Fatalf("watch line missing figure/series: %+v", l.rec)
			}
			seen++
		case <-deadline:
			t.Fatalf("watch stream delivered %d of %d runs before timeout", seen, total)
		}
	}
}
