package sweep

import (
	"bytes"
	"strings"
	"testing"

	"gat/internal/bench"
)

// routingScenarioIDs are the route-choice studies introduced with the
// Router layer: minimal vs adaptive under the Jacobi halo exchange,
// and the two synthetic traffic patterns swept over every policy.
var routingScenarioIDs = []string{
	"jacobi-adaptive-vs-minimal", "hotspot", "jacobi-adversarial-mapping",
}

// routingOpt runs the routing scenarios at their full 48-node,
// three-group scale — the smallest machine with a real detour group,
// and the scale where the taper axis genuinely congests the fabric.
func routingOpt() bench.Options {
	return bench.Options{MaxNodes: 48, Iters: 2, Warmup: 1}
}

// TestRoutingScenariosParallelEquality pins the determinism contract
// for the stateful routers at sweep level: the Valiant RNG stream and
// the adaptive penalty table live per run, so -j 4 and -shards 4 must
// reproduce the serial reference byte for byte even while routes are
// being chosen from congestion feedback.
func TestRoutingScenariosParallelEquality(t *testing.T) {
	for _, csv := range []bool{false, true} {
		serial := sweepBytes(t, routingScenarioIDs, routingOpt(), 1, csv)
		if len(serial) == 0 {
			t.Fatal("routing scenarios produced no output")
		}
		parallel := sweepBytes(t, routingScenarioIDs, routingOpt(), 4, csv)
		if !bytes.Equal(serial, parallel) {
			t.Fatalf("csv=%v: -j 4 output differs from serial at line %d\n--- serial ---\n%s\n--- parallel ---\n%s",
				csv, diffLine(serial, parallel), serial, parallel)
		}
		sharded := routingOpt()
		sharded.Shards = 4
		shardedOut := sweepBytes(t, routingScenarioIDs, sharded, 4, csv)
		if !bytes.Equal(serial, shardedOut) {
			t.Fatalf("csv=%v: -shards 4 output differs from serial at line %d\n--- serial ---\n%s\n--- sharded ---\n%s",
				csv, diffLine(serial, shardedOut), serial, shardedOut)
		}
	}
}

// TestAdaptiveBeatsMinimalUnderTaper is the headline acceptance claim:
// in the jacobi-adaptive-vs-minimal scenario, the adaptive series
// reports strictly lower max_link_util than the minimal series at
// every taper >= 4, and the run records carry the routing provenance
// that says which policy produced which number.
func TestAdaptiveBeatsMinimalUnderTaper(t *testing.T) {
	res, err := Sweep([]string{"jacobi-adaptive-vs-minimal"}, Options{Workers: 4, Bench: routingOpt()})
	if err != nil {
		t.Fatal(err)
	}
	util := map[string]map[int]float64{}
	for _, run := range res.Figures[0].Runs {
		if run.Point.Routing == "" {
			t.Fatalf("run %s/x=%d carries no routing provenance", run.Spec.Series, run.Spec.X)
		}
		if util[run.Spec.Series] == nil {
			util[run.Spec.Series] = map[int]float64{}
		}
		util[run.Spec.Series][run.Spec.X] = run.Point.MaxLinkUtil
	}
	for _, taper := range []int{4, 16, 32} {
		min, ok1 := util["Minimal"][taper]
		ad, ok2 := util["Adaptive"][taper]
		if !ok1 || !ok2 {
			t.Fatalf("missing series point at taper %d: %v", taper, util)
		}
		if ad >= min {
			t.Fatalf("taper %d: adaptive max_link_util %.4f >= minimal %.4f; adaptive routing is not relieving congestion", taper, ad, min)
		}
	}
}

// TestRoutingInReportAndStore proves the routing field survives the
// full provenance loop: the gat-sweep-v3 writer emits it per run,
// ReadJSON+NewPrior recover it on resume, and the mirror checks in
// store_test.go cover the cache entry round-trip.
func TestRoutingInReportAndStore(t *testing.T) {
	res := utilResult()
	res.Figures[0].Runs[0].Point.Routing = "adaptive"
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"routing": "adaptive"`) {
		t.Fatalf("v3 report missing the routing field:\n%s", buf.String())
	}
	rep, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	prior := NewPrior(rep)
	run := res.Figures[0].Runs[0]
	hit, ok := prior.Lookup(run.Spec, run.Key)
	if !ok || !hit.Exact {
		t.Fatalf("fingerprint-exact resume lookup failed: ok=%v exact=%v", ok, hit.Exact)
	}
	if hit.Point.Routing != "adaptive" {
		t.Fatalf("resume dropped the routing field: %+v", hit.Point)
	}
}
