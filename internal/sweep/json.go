package sweep

import (
	"encoding/json"
	"io"
)

// JSON report schema, version gat-sweep-v1. Figure values are fully
// deterministic; the wall_ns fields and the header's workers/wall_ns
// are host-side measurements and vary run to run.

type jsonReport struct {
	Schema  string       `json:"schema"`
	Workers int          `json:"workers"`
	WallNS  int64        `json:"wall_ns"`
	Figures []jsonFigure `json:"figures"`
}

type jsonFigure struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	XLabel string       `json:"xlabel"`
	YLabel string       `json:"ylabel"`
	Series []jsonSeries `json:"series"`
	Runs   []jsonRun    `json:"runs"`
}

type jsonSeries struct {
	Name   string      `json:"name"`
	Points []jsonPoint `json:"points"`
}

type jsonPoint struct {
	X     int     `json:"x"`
	Value float64 `json:"value"`
	Meta  string  `json:"meta,omitempty"`
}

// jsonRun is the per-run record: enough to re-execute the spec in
// isolation (figure, series, x, nodes, iteration counts, seed) plus
// the host wall-clock it cost.
type jsonRun struct {
	Figure string `json:"figure"`
	Series string `json:"series"`
	X      int    `json:"x"`
	Nodes  int    `json:"nodes"`
	Warmup int    `json:"warmup"`
	Iters  int    `json:"iters"`
	Seed   uint64 `json:"seed"`
	WallNS int64  `json:"wall_ns"`
}

// WriteJSON renders the sweep as an indented gat-sweep-v1 document.
func (r Result) WriteJSON(w io.Writer) error {
	rep := jsonReport{
		Schema:  "gat-sweep-v1",
		Workers: r.Workers,
		WallNS:  r.Wall.Nanoseconds(),
	}
	for _, f := range r.Figures {
		jf := jsonFigure{
			ID:     f.Figure.ID,
			Title:  f.Figure.Title,
			XLabel: f.Figure.XLabel,
			YLabel: f.Figure.YLabel,
		}
		for _, s := range f.Figure.Series {
			js := jsonSeries{Name: s.Name, Points: []jsonPoint{}}
			for _, p := range s.Points {
				js.Points = append(js.Points, jsonPoint{X: p.Nodes, Value: p.Value, Meta: p.Meta})
			}
			jf.Series = append(jf.Series, js)
		}
		for _, run := range f.Runs {
			jf.Runs = append(jf.Runs, jsonRun{
				Figure: run.Spec.FigID,
				Series: run.Spec.Series,
				X:      run.Spec.X,
				Nodes:  run.Spec.Nodes,
				Warmup: run.Spec.Warmup,
				Iters:  run.Spec.Iters,
				Seed:   run.Spec.Seed,
				WallNS: run.Wall.Nanoseconds(),
			})
		}
		rep.Figures = append(rep.Figures, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
