package sweep

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON report schema, version gat-sweep-v2. Figure values are fully
// deterministic; the wall_ns fields and the header's workers/wall_ns
// are host-side measurements and vary run to run.
//
// v2 adds the per-run scenario/app/machine composition fields; it is
// otherwise a superset of gat-sweep-v1, and ReadJSON accepts both.

// SchemaV1 and SchemaV2 are the accepted schema tags.
const (
	SchemaV1 = "gat-sweep-v1"
	SchemaV2 = "gat-sweep-v2"
)

// Report is the on-disk sweep document.
type Report struct {
	Schema  string         `json:"schema"`
	Workers int            `json:"workers"`
	WallNS  int64          `json:"wall_ns"`
	Figures []ReportFigure `json:"figures"`
}

// ReportFigure is one figure with its series and per-run records.
type ReportFigure struct {
	ID     string         `json:"id"`
	Title  string         `json:"title"`
	XLabel string         `json:"xlabel"`
	YLabel string         `json:"ylabel"`
	Series []ReportSeries `json:"series"`
	Runs   []ReportRun    `json:"runs"`
}

// ReportSeries is one rendered line.
type ReportSeries struct {
	Name   string        `json:"name"`
	Points []ReportPoint `json:"points"`
}

// ReportPoint is one rendered figure value.
type ReportPoint struct {
	X     int     `json:"x"`
	Value float64 `json:"value"`
	Meta  string  `json:"meta,omitempty"`
}

// ReportRun is the per-run record: enough to re-execute the spec in
// isolation (figure, series, x, nodes, iteration counts, seed), the
// scenario composition that produced it (scenario, app, machine —
// empty in v1 documents), plus the host wall-clock it cost.
type ReportRun struct {
	Figure   string `json:"figure"`
	Scenario string `json:"scenario,omitempty"`
	App      string `json:"app,omitempty"`
	Machine  string `json:"machine,omitempty"`
	Series   string `json:"series"`
	X        int    `json:"x"`
	Nodes    int    `json:"nodes"`
	Warmup   int    `json:"warmup"`
	Iters    int    `json:"iters"`
	Seed     uint64 `json:"seed"`
	WallNS   int64  `json:"wall_ns"`
}

// WriteJSON renders the sweep as an indented gat-sweep-v2 document.
func (r Result) WriteJSON(w io.Writer) error {
	rep := Report{
		Schema:  SchemaV2,
		Workers: r.Workers,
		WallNS:  r.Wall.Nanoseconds(),
	}
	for _, f := range r.Figures {
		jf := ReportFigure{
			ID:     f.Figure.ID,
			Title:  f.Figure.Title,
			XLabel: f.Figure.XLabel,
			YLabel: f.Figure.YLabel,
		}
		for _, s := range f.Figure.Series {
			js := ReportSeries{Name: s.Name, Points: []ReportPoint{}}
			for _, p := range s.Points {
				js.Points = append(js.Points, ReportPoint{X: p.Nodes, Value: p.Value, Meta: p.Meta})
			}
			jf.Series = append(jf.Series, js)
		}
		for _, run := range f.Runs {
			jf.Runs = append(jf.Runs, ReportRun{
				Figure:   run.Spec.FigID,
				Scenario: run.Spec.Scenario,
				App:      run.Spec.App,
				Machine:  run.Spec.Machine,
				Series:   run.Spec.Series,
				X:        run.Spec.X,
				Nodes:    run.Spec.Nodes,
				Warmup:   run.Spec.Warmup,
				Iters:    run.Spec.Iters,
				Seed:     run.Spec.Seed,
				WallNS:   run.Wall.Nanoseconds(),
			})
		}
		rep.Figures = append(rep.Figures, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}

// ReadJSON parses a sweep report, accepting both gat-sweep-v1 and
// gat-sweep-v2 documents (v1 runs simply lack the scenario/app/machine
// fields).
func ReadJSON(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("sweep: invalid report JSON: %w", err)
	}
	switch rep.Schema {
	case SchemaV1, SchemaV2:
		return &rep, nil
	default:
		return nil, fmt.Errorf("sweep: unsupported report schema %q (want %s or %s)",
			rep.Schema, SchemaV1, SchemaV2)
	}
}
