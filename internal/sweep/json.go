package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// JSON report schema, version gat-sweep-v3. Figure values are fully
// deterministic; the wall_ns fields and the header's workers/wall_ns
// are host-side measurements and vary run to run.
//
// v2 added the per-run scenario/app/machine composition fields.
// v3 adds per-run provenance — the content-address key (fingerprint),
// the cached flag with its source (sim/store/prior), the run's own
// value/meta, and the jitter fraction — which makes a report
// self-contained for exact resume (-resume) and cache audits
// (-explain). Each version is a superset of the previous one, and
// ReadJSON accepts all three.

// SchemaV1, SchemaV2 and SchemaV3 are the accepted schema tags.
const (
	SchemaV1 = "gat-sweep-v1"
	SchemaV2 = "gat-sweep-v2"
	SchemaV3 = "gat-sweep-v3"
)

// ErrUnknownSchema marks a structurally valid JSON document whose
// schema tag is not one ReadJSON accepts. It is distinguishable from
// a JSON decode error so servers (sweepd) can answer a foreign-but-
// well-formed payload with a friendly "unsupported schema" message
// instead of a decoder trace.
var ErrUnknownSchema = errors.New("unsupported sweep report schema")

// SchemaVersion maps an accepted schema tag to its ordinal (1, 2 or
// 3). ok is false for anything else. Use it to branch on capability:
// only version >= 3 documents carry per-run values and fingerprints.
func SchemaVersion(schema string) (int, bool) {
	switch schema {
	case SchemaV1:
		return 1, true
	case SchemaV2:
		return 2, true
	case SchemaV3:
		return 3, true
	default:
		return 0, false
	}
}

// Report is the on-disk sweep document.
type Report struct {
	Schema  string         `json:"schema"`
	Workers int            `json:"workers"`
	WallNS  int64          `json:"wall_ns"`
	Figures []ReportFigure `json:"figures"`
}

// ReportFigure is one figure with its series and per-run records.
type ReportFigure struct {
	ID     string         `json:"id"`
	Title  string         `json:"title"`
	XLabel string         `json:"xlabel"`
	YLabel string         `json:"ylabel"`
	Series []ReportSeries `json:"series"`
	Runs   []ReportRun    `json:"runs"`
}

// ReportSeries is one rendered line.
type ReportSeries struct {
	Name   string        `json:"name"`
	Points []ReportPoint `json:"points"`
}

// ReportPoint is one rendered figure value.
type ReportPoint struct {
	X     int     `json:"x"`
	Value float64 `json:"value"`
	Meta  string  `json:"meta,omitempty"`
}

// ReportRun is the per-run record: enough to re-execute the spec in
// isolation (figure, series, x, nodes, iteration counts, seed), the
// scenario composition that produced it (scenario, app, machine —
// empty in v1 documents), the v3 provenance (fingerprint key, cached
// flag and source, the run's own value), plus WallNS — the host cost
// of the simulation that produced the value. For cached/resumed runs
// that is the original simulation's cost carried through the store or
// prior report, not the microseconds the lookup took, so resuming a
// warm-sweep report never launders lookup times into saved-cost
// accounting.
type ReportRun struct {
	Figure   string `json:"figure"`
	Scenario string `json:"scenario,omitempty"`
	App      string `json:"app,omitempty"`
	Machine  string `json:"machine,omitempty"`
	Series   string `json:"series"`
	X        int    `json:"x"`
	Nodes    int    `json:"nodes"`
	Warmup   int    `json:"warmup"`
	Iters    int    `json:"iters"`
	Seed     uint64 `json:"seed"`
	WallNS   int64  `json:"wall_ns"`

	// v3 provenance (absent in v1/v2 documents). Key is the spec's
	// content-address fingerprint; Cached reports whether the point was
	// served without simulating, with Source naming where from ("sim",
	// "store" or "prior"); Value/Meta duplicate the run's figure point
	// so a partial report resumes exactly; Jitter is the run's network
	// jitter fraction; Error, when non-empty, marks a run whose result
	// must not be reused (resume re-runs it). Error is reserved: the
	// writer never emits it today — specs cannot fail, only be absent —
	// but readers honor it so hand-annotated or externally generated
	// reports can force selective re-runs.
	Key    string  `json:"key,omitempty"`
	Cached bool    `json:"cached"`
	Source string  `json:"source,omitempty"`
	Value  float64 `json:"value"`
	Meta   string  `json:"meta,omitempty"`
	Jitter float64 `json:"jitter,omitempty"`
	Error  string  `json:"error,omitempty"`

	// MaxLinkUtil and MeanLinkUtil summarize the run's fabric-link
	// congestion (bench.Point): where the run was network-bound.
	// Absent for runs on NIC-only machines and in pre-fabric documents.
	MaxLinkUtil  float64 `json:"max_link_util,omitempty"`
	MeanLinkUtil float64 `json:"mean_link_util,omitempty"`

	// Routing names the fabric's route-choice policy ("minimal",
	// "valiant", "adaptive"; bench.Point). Absent for runs on NIC-only
	// machines and in pre-routing documents.
	Routing string `json:"routing,omitempty"`
}

// keyIfVerified returns the run's fingerprint only when the value is
// known to belong to it (simulated, store-served, or fingerprint-exact
// resume); metadata-resumed values stay keyless so they remain
// second-class on every future resume.
func keyIfVerified(run Run) string {
	if run.Verified {
		return run.Key
	}
	return ""
}

// Record renders the run as its gat-sweep-v3 per-run record — the
// exact shape WriteJSON embeds and sweepd's watch stream emits one
// line of per completed cell, so report files and live streams carry
// identical records.
func (run Run) Record() ReportRun {
	return ReportRun{
		Figure:   run.Spec.FigID,
		Scenario: run.Spec.Scenario,
		App:      run.Spec.App,
		Machine:  run.Spec.Machine,
		Series:   run.Spec.Series,
		X:        run.Spec.X,
		Nodes:    run.Spec.Nodes,
		Warmup:   run.Spec.Warmup,
		Iters:    run.Spec.Iters,
		Seed:     run.Spec.Seed,
		WallNS:   run.SimWallNS,
		// A key asserts "this value was verified against this
		// fingerprint". Metadata-matched resume values weren't:
		// stamping them with the current fingerprint would make
		// the next resume treat them as exact and write the
		// unverified numbers through into the run store.
		Key:          keyIfVerified(run),
		Cached:       run.Source != SourceSim,
		Source:       run.Source.String(),
		Value:        run.Point.Value,
		Meta:         run.Point.Meta,
		Jitter:       run.Spec.Jitter,
		MaxLinkUtil:  run.Point.MaxLinkUtil,
		MeanLinkUtil: run.Point.MeanLinkUtil,
		Routing:      run.Point.Routing,
	}
}

// WriteJSON renders the sweep as an indented gat-sweep-v3 document.
func (r Result) WriteJSON(w io.Writer) error {
	rep := Report{
		Schema:  SchemaV3,
		Workers: r.Workers,
		WallNS:  r.Wall.Nanoseconds(),
	}
	for _, f := range r.Figures {
		jf := ReportFigure{
			ID:     f.Figure.ID,
			Title:  f.Figure.Title,
			XLabel: f.Figure.XLabel,
			YLabel: f.Figure.YLabel,
		}
		for _, s := range f.Figure.Series {
			js := ReportSeries{Name: s.Name, Points: []ReportPoint{}}
			for _, p := range s.Points {
				js.Points = append(js.Points, ReportPoint{X: p.Nodes, Value: p.Value, Meta: p.Meta})
			}
			jf.Series = append(jf.Series, js)
		}
		for _, run := range f.Runs {
			jf.Runs = append(jf.Runs, run.Record())
		}
		rep.Figures = append(rep.Figures, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}

// ReadJSON parses a sweep report. The acceptance contract, one clause
// per schema generation (each a strict superset of the last):
//
//   - gat-sweep-v1: figures with rendered series plus per-run
//     coordinates (figure, series, x, nodes, warmup, iters, seed) and
//     wall_ns. No composition, no provenance: resume matches these
//     runs by metadata tuple only, pinned to the summit machine.
//   - gat-sweep-v2: v1 plus per-run scenario/app/machine composition.
//   - gat-sweep-v3: v2 plus per-run provenance — fingerprint key,
//     cached flag and source, the run's own value/meta, jitter, and
//     the optional error marker — making the document self-contained
//     for exact resume and for sweepd's watch stream.
//
// The detected version is returned verbatim in Report.Schema (feed it
// to SchemaVersion for the ordinal); later-version fields are simply
// zero in earlier documents. Anything else fails: malformed JSON with
// a decode error, and a well-formed document under a foreign schema
// tag with an error satisfying errors.Is(err, ErrUnknownSchema) — the
// split sweepd uses to answer 400 with a friendly message rather than
// a decoder trace.
func ReadJSON(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("sweep: invalid report JSON: %w", err)
	}
	if _, ok := SchemaVersion(rep.Schema); !ok {
		return nil, fmt.Errorf("sweep: %w %q (want %s, %s or %s)",
			ErrUnknownSchema, rep.Schema, SchemaV1, SchemaV2, SchemaV3)
	}
	return &rep, nil
}
