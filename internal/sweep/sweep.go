// Package sweep is the parallel figure-sweep orchestrator. It takes
// the flat RunSpec plans that internal/bench produces, executes the
// specs on a worker pool — every run builds its own machine and
// private sim.Engine, so runs never share state — and reassembles the
// results in deterministic spec order. Table and CSV output is
// therefore byte-identical to the serial path regardless of worker
// count or scheduling; only the per-run wall-clock metadata in the
// JSON report varies between hosts.
package sweep

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"gat/internal/bench"
)

// Options tunes a sweep.
type Options struct {
	// Workers is the worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Bench is passed through to the scenario plan builders.
	Bench bench.Options
	// Overrides re-targets every swept scenario (machine profile, and
	// app for app-generic scenarios).
	Overrides bench.Overrides
	// Progress, if non-nil, receives one line per completed run.
	Progress io.Writer
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run is one executed RunSpec with its result and host-side cost.
type Run struct {
	Spec  bench.RunSpec
	Point bench.Point
	// Wall is the host wall-clock time the run took. Metadata only:
	// it never influences figure values or output ordering.
	Wall time.Duration
}

// FigureResult is one reassembled figure plus its per-run metadata.
type FigureResult struct {
	Figure bench.Figure
	Runs   []Run // in spec order
}

// Result is a completed sweep.
type Result struct {
	Figures []FigureResult
	// Wall is the host wall-clock for the whole sweep; Workers the
	// pool size that produced it.
	Wall    time.Duration
	Workers int
}

// Each runs fn(0..n-1) on up to workers goroutines and returns when
// all calls finished. fn must write its result at its own index; Each
// imposes no output ordering of its own. It is the primitive under
// Sweep, exported for other embarrassingly parallel grids (e.g.
// cmd/microbench's transfer-path matrix).
func Each(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// job addresses one spec within one figure plan.
type job struct {
	fig, spec int
}

// Sweep generates every figure in ids concurrently and reassembles
// them in the order given. Unknown ids fail before any run starts.
func Sweep(ids []string, opt Options) (Result, error) {
	// Serialize the bench progress writer: run closures log from
	// worker goroutines.
	if opt.Bench.Verbose != nil {
		opt.Bench.Verbose = &lockedWriter{w: opt.Bench.Verbose}
	}

	plans := make([]bench.Plan, len(ids))
	var jobs []job
	for i, id := range ids {
		p, err := bench.PlanScenario(id, opt.Bench, opt.Overrides)
		if err != nil {
			return Result{}, err
		}
		plans[i] = p
		for s := range p.Specs {
			jobs = append(jobs, job{fig: i, spec: s})
		}
	}

	runs := make([][]Run, len(plans))
	for i, p := range plans {
		runs[i] = make([]Run, len(p.Specs))
	}

	var (
		mu   sync.Mutex
		done int
	)
	if opt.Progress != nil {
		fmt.Fprintf(opt.Progress, "sweep: %d runs across %d figures on %d workers\n",
			len(jobs), len(plans), opt.workers())
	}
	start := time.Now()
	Each(len(jobs), opt.workers(), func(j int) {
		fig, si := jobs[j].fig, jobs[j].spec
		spec := plans[fig].Specs[si]
		t0 := time.Now()
		pt := spec.Execute()
		runs[fig][si] = Run{Spec: spec, Point: pt, Wall: time.Since(t0)}
		if opt.Progress != nil {
			mu.Lock()
			done++
			fmt.Fprintf(opt.Progress, "[%d/%d] %-24s %10.3f  (%v)\n",
				done, len(jobs), spec.Name(), pt.Value, runs[fig][si].Wall.Round(time.Millisecond))
			mu.Unlock()
		}
	})

	res := Result{Wall: time.Since(start), Workers: opt.workers()}
	for i, p := range plans {
		points := make([]bench.Point, len(p.Specs))
		for s, r := range runs[i] {
			points[s] = r.Point
		}
		res.Figures = append(res.Figures, FigureResult{
			Figure: p.Assemble(points),
			Runs:   runs[i],
		})
	}
	return res, nil
}

// WriteTables renders every figure as an aligned text table, blank
// line separated — the same bytes the serial path prints.
func (r Result) WriteTables(w io.Writer) {
	for _, f := range r.Figures {
		f.Figure.WriteTable(w)
		fmt.Fprintln(w)
	}
}

// WriteCSV renders every figure as CSV, each with its own header row —
// the same bytes the serial path prints.
func (r Result) WriteCSV(w io.Writer) error {
	for _, f := range r.Figures {
		if err := f.Figure.WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}

// lockedWriter serializes whole Write calls from concurrent runs.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
