// Package sweep is the parallel figure-sweep orchestrator. It takes
// the flat RunSpec plans that internal/bench produces, executes the
// specs on a worker pool — every run builds its own machine and
// private sim.Engine, so runs never share state — and reassembles the
// results in deterministic spec order. Table and CSV output is
// therefore byte-identical to the serial path regardless of worker
// count or scheduling; only the per-run wall-clock metadata in the
// JSON report varies between hosts.
package sweep

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"gat/internal/bench"
	"gat/internal/sweep/store"
)

// Options tunes a sweep.
type Options struct {
	// Workers is the worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Bench is passed through to the scenario plan builders.
	Bench bench.Options
	// Overrides re-targets every swept scenario (machine profile, and
	// app for app-generic scenarios).
	Overrides bench.Overrides
	// Progress, if non-nil, receives one line per completed run.
	Progress io.Writer
	// Cache, if non-nil, is the content-addressed run cache: every
	// spec is looked up by fingerprint before simulating, and every
	// simulated (or resumed) result is written through. Assembly order
	// is unchanged, so cached sweeps stay byte-identical to cold ones.
	// Any Cache implementation slots in here — the local disk store
	// (*store.Store), a shared sweepd service (remote.Client), or the
	// two stacked (Tiered).
	Cache Cache
	// Prior, if non-nil, supplies results from a previous (possibly
	// partial) report: matching specs are not simulated. See NewPrior.
	Prior *Prior
	// Notify, if non-nil, is called once per completed run, as soon as
	// its point is final — before the sweep finishes or assembles.
	// This is the streaming hook: cmd/sweep uses it to publish per-run
	// completions to a sweepd watch stream. Calls arrive concurrently
	// from worker goroutines, in completion (not spec) order; Notify
	// must not block for long — it stalls one worker — and has no way
	// to alter the run.
	Notify func(Run)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Source says where a run's point came from.
type Source uint8

// Run sources, in lookup order: the fingerprint-keyed store beats a
// prior report beats simulating.
const (
	// SourceSim marks a point produced by executing the simulation.
	SourceSim Source = iota
	// SourceStore marks a content-addressed cache hit.
	SourceStore
	// SourcePrior marks a point reused from a -resume report.
	SourcePrior
)

func (s Source) String() string {
	switch s {
	case SourceSim:
		return "sim"
	case SourceStore:
		return "store"
	case SourcePrior:
		return "prior"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// Run is one completed RunSpec with its result, provenance and
// host-side cost.
type Run struct {
	Spec  bench.RunSpec
	Point bench.Point
	// Key is the spec's content-address fingerprint.
	Key string
	// Source says whether the point was simulated, served from the run
	// store, or reused from a resumed report.
	Source Source
	// Wall is the host wall-clock time the run took. Metadata only:
	// it never influences figure values or output ordering.
	Wall time.Duration
	// SimWallNS is the host cost of the simulation that originally
	// produced the point: equal to Wall for simulated runs, and
	// carried over from the store entry / prior report for cached and
	// resumed ones — what the hit saved, not what the lookup cost.
	SimWallNS int64
	// Verified reports that the point is known to belong to Key: it
	// was simulated under it, served from the store by it, or resumed
	// by fingerprint. v1/v2 metadata-matched resume values are not —
	// they are kept out of the store, and reports must not stamp them
	// with the current fingerprint (which would launder them into
	// "exact" on the next resume).
	Verified bool
}

// FigureResult is one reassembled figure plus its per-run metadata.
type FigureResult struct {
	Figure bench.Figure
	Runs   []Run // in spec order
}

// Result is a completed sweep.
type Result struct {
	Figures []FigureResult
	// Wall is the host wall-clock for the whole sweep; Workers the
	// pool size that produced it.
	Wall    time.Duration
	Workers int
	// Simulated, FromStore and FromPrior count the runs by source; a
	// fully warm cache shows Simulated == 0.
	Simulated, FromStore, FromPrior int
	// CacheErrors counts non-fatal run-store failures (corrupt entries
	// discarded, write-through errors); each is also reported on the
	// Progress writer. The sweep's figures are unaffected: failed
	// lookups are simulated and failed writes only lose the memo.
	CacheErrors int
}

// Each runs fn(0..n-1) on up to workers goroutines and returns when
// all calls finished. fn must write its result at its own index; Each
// imposes no output ordering of its own. It is the primitive under
// Sweep, exported for other embarrassingly parallel grids (e.g.
// cmd/microbench's transfer-path matrix).
func Each(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// job addresses one spec within one figure plan.
type job struct {
	fig, spec int
}

// Sweep generates every figure in ids concurrently and reassembles
// them in the order given. Unknown ids fail before any run starts.
func Sweep(ids []string, opt Options) (Result, error) {
	// Serialize the bench progress writer: run closures log from
	// worker goroutines.
	if opt.Bench.Verbose != nil {
		opt.Bench.Verbose = &lockedWriter{w: opt.Bench.Verbose}
	}

	plans := make([]bench.Plan, len(ids))
	var jobs []job
	for i, id := range ids {
		p, err := bench.PlanScenario(id, opt.Bench, opt.Overrides)
		if err != nil {
			return Result{}, err
		}
		plans[i] = p
		for s := range p.Specs {
			jobs = append(jobs, job{fig: i, spec: s})
		}
	}

	runs := make([][]Run, len(plans))
	for i, p := range plans {
		runs[i] = make([]Run, len(p.Specs))
	}

	var (
		mu        sync.Mutex
		done      int
		cacheErrs int
	)
	// complain reports a non-fatal cache problem; the run itself is
	// unaffected (lookup failures simulate, write failures lose only
	// the memo).
	complain := func(err error) {
		mu.Lock()
		cacheErrs++
		if opt.Progress != nil {
			fmt.Fprintf(opt.Progress, "cache: %v\n", err)
		}
		mu.Unlock()
	}
	if opt.Progress != nil {
		fmt.Fprintf(opt.Progress, "sweep: %d runs across %d figures on %d workers\n",
			len(jobs), len(plans), opt.workers())
	}
	start := time.Now() //gat:nondet-ok host-side sweep wall time; never enters figure values
	Each(len(jobs), opt.workers(), func(j int) {
		fig, si := jobs[j].fig, jobs[j].spec
		spec := plans[fig].Specs[si]
		key := spec.Fingerprint()
		t0 := time.Now() //gat:nondet-ok per-run wall_ns provenance; never enters figure values

		// Lookup order: the store first — its entries are keyed on the
		// current fingerprint, so they are always semantics-current —
		// then the prior report (whose v1/v2 metadata matches cannot
		// see an engine-salt bump), then the simulator.
		pt, src := bench.Point{}, SourceSim
		var hit PriorHit
		var simWallNS int64
		if opt.Cache != nil {
			e, ok, err := opt.Cache.Get(key)
			if err != nil {
				// A hit can arrive with an error (e.g. Tiered failing to
				// seed its local tier): use the hit, log the problem.
				complain(err)
			}
			if ok {
				pt, src, simWallNS = e.Point(), SourceStore, e.WallNS
			}
		}
		if src == SourceSim && opt.Prior != nil {
			if h, ok := opt.Prior.Lookup(spec, key); ok {
				hit, pt, src, simWallNS = h, h.Point, SourcePrior, h.WallNS
			}
		}
		if src == SourceSim {
			pt = spec.Execute()
		}
		wall := time.Since(t0) //gat:nondet-ok per-run wall_ns provenance; never enters figure values
		if src == SourceSim {
			simWallNS = wall.Nanoseconds()
		}
		// Write-through: simulated results are memoized under their
		// fingerprint, and fingerprint-exact resumed points propagate
		// into the store (with the original simulation's cost) so the
		// next sweep hits without the report. The store missed in both
		// cases, so nothing is clobbered. Metadata-matched v1/v2 resume
		// hits stay out of the store: they were not verified against
		// the fingerprint they would be filed under.
		if opt.Cache != nil && (src == SourceSim || (src == SourcePrior && hit.Exact)) {
			if e, err := store.NewEntry(key, spec, pt, simWallNS); err != nil {
				complain(err)
			} else if err := opt.Cache.Put(e); err != nil {
				complain(err)
			}
		}

		verified := src != SourcePrior || hit.Exact
		run := Run{Spec: spec, Point: pt, Key: key, Source: src, Wall: wall, SimWallNS: simWallNS, Verified: verified}
		runs[fig][si] = run
		if opt.Notify != nil {
			opt.Notify(run)
		}
		if opt.Progress != nil {
			tag := ""
			if pt.MaxLinkUtil > 0 {
				// Congestion summary: the run's peak fabric-link
				// utilization, flagging network-bound points.
				tag = fmt.Sprintf(" net=%.0f%%", 100*pt.MaxLinkUtil)
			}
			if src != SourceSim {
				tag += " [" + src.String() + "]"
			}
			mu.Lock()
			done++
			fmt.Fprintf(opt.Progress, "[%d/%d] %-24s %10.3f  (%v)%s\n",
				done, len(jobs), spec.Name(), pt.Value, wall.Round(time.Millisecond), tag)
			mu.Unlock()
		}
	})

	//gat:nondet-ok host-side sweep wall time; never enters figure values
	res := Result{Wall: time.Since(start), Workers: opt.workers(), CacheErrors: cacheErrs}
	for i, p := range plans {
		points := make([]bench.Point, len(p.Specs))
		for s, r := range runs[i] {
			points[s] = r.Point
			switch r.Source {
			case SourceStore:
				res.FromStore++
			case SourcePrior:
				res.FromPrior++
			default:
				res.Simulated++
			}
		}
		res.Figures = append(res.Figures, FigureResult{
			Figure: p.Assemble(points),
			Runs:   runs[i],
		})
	}
	return res, nil
}

// Provenance summarizes the run sources as a one-line string, e.g.
// "24 runs: 12 simulated, 12 from store, 0 resumed".
func (r Result) Provenance() string {
	total := r.Simulated + r.FromStore + r.FromPrior
	return fmt.Sprintf("%d runs: %d simulated, %d from store, %d resumed",
		total, r.Simulated, r.FromStore, r.FromPrior)
}

// WriteExplain renders the per-run provenance table (spec order):
// which runs were simulated and which were served from the cache or a
// resumed report, under which content-address keys. This is the same
// information the gat-sweep-v3 JSON embeds per run, shaped for humans.
func (r Result) WriteExplain(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", r.Provenance())
	fmt.Fprintf(w, "%-28s %-6s %-32s %-8s %s\n", "RUN", "SOURCE", "KEY", "NET", "WALL")
	for _, f := range r.Figures {
		for _, run := range f.Runs {
			// Same rule as the JSON writer: a printed key asserts the
			// value was verified against it, which metadata-resumed
			// points never were.
			key := run.Key
			if !run.Verified {
				key = "- (metadata match)"
			}
			// NET is the run's peak fabric-link utilization: where the
			// sweep was network-bound ("-" on NIC-only machines).
			net := "-"
			if run.Point.MaxLinkUtil > 0 {
				net = fmt.Sprintf("%.0f%%", 100*run.Point.MaxLinkUtil)
			}
			fmt.Fprintf(w, "%-28s %-6s %-32s %-8s %v\n",
				run.Spec.Name(), run.Source, key, net, run.Wall.Round(time.Millisecond))
		}
	}
}

// WriteTables renders every figure as an aligned text table, blank
// line separated — the same bytes the serial path prints.
func (r Result) WriteTables(w io.Writer) {
	for _, f := range r.Figures {
		f.Figure.WriteTable(w)
		fmt.Fprintln(w)
	}
}

// WriteCSV renders every figure as CSV, each with its own header row —
// the same bytes the serial path prints.
func (r Result) WriteCSV(w io.Writer) error {
	for _, f := range r.Figures {
		if err := f.Figure.WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}

// lockedWriter serializes whole Write calls from concurrent runs.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
