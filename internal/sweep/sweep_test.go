package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"gat/internal/bench"
)

// quickOpt keeps orchestrator tests fast: tiny sweeps, few iterations.
func quickOpt() bench.Options {
	return bench.Options{MaxNodes: 2, Warmup: 1, Iters: 2}
}

// testIDs mixes paper figures (Charm and MPI runs, best-ODF searches,
// run pairs) with a non-jacobi ablation, so the determinism check
// covers every spec shape.
var testIDs = []string{"fig6a", "fig7b", "fig9a", "abl-chanapi"}

// serialOutput renders ids through the serial reference path exactly
// as the orchestrator would: tables then CSV.
func serialOutput(t *testing.T, ids []string) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, id := range ids {
		f, err := bench.GenerateAny(id, quickOpt())
		if err != nil {
			t.Fatal(err)
		}
		f.WriteTable(&buf)
		fmt.Fprintln(&buf)
	}
	for _, id := range ids {
		f, err := bench.GenerateAny(id, quickOpt())
		if err != nil {
			t.Fatal(err)
		}
		if err := f.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func parallelOutput(t *testing.T, ids []string, workers int) []byte {
	t.Helper()
	res, err := Sweep(ids, Options{Workers: workers, Bench: quickOpt()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.WriteTables(&buf)
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelMatchesSerial is the core determinism regression: a
// parallel sweep must produce byte-identical table and CSV output to
// the serial reference path, whatever the worker count.
func TestParallelMatchesSerial(t *testing.T) {
	want := serialOutput(t, testIDs)
	for _, workers := range []int{1, 3, 8} {
		got := parallelOutput(t, testIDs, workers)
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, want, got)
		}
	}
}

// TestRepeatedSweepsBitIdentical asserts that two sweeps with the same
// specs (hence the same seeds) produce bit-identical output.
func TestRepeatedSweepsBitIdentical(t *testing.T) {
	a := parallelOutput(t, testIDs, 4)
	b := parallelOutput(t, testIDs, 4)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical sweeps produced different bytes")
	}
}

// TestJitterSeededDeterministic asserts the RunSpec seed is actually
// consumed: with jitter enabled, repeated parallel sweeps stay
// bit-identical (the jitter RNG is seeded per run from the spec), and
// the perturbed values differ from the jitter-free ones. fig7b is the
// probe because its MPI ranks block on halo latency, so latency
// jitter must move the measured time (Charm figures can absorb small
// jitter in compute slack).
func TestJitterSeededDeterministic(t *testing.T) {
	jopt := quickOpt()
	jopt.Jitter = 0.05
	run := func() []byte {
		res, err := Sweep([]string{"fig7b"}, Options{Workers: 4, Bench: jopt})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed jittered sweeps differ:\n%s\n---\n%s", a, b)
	}
	res, err := Sweep([]string{"fig7b"}, Options{Workers: 4, Bench: quickOpt()})
	if err != nil {
		t.Fatal(err)
	}
	var clean bytes.Buffer
	if err := res.WriteCSV(&clean); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, clean.Bytes()) {
		t.Fatal("jitter had no effect: seeded RNG not wired into the runs")
	}
}

func TestSweepUnknownIDFailsEarly(t *testing.T) {
	if _, err := Sweep([]string{"fig6a", "nope"}, Options{Bench: quickOpt()}); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestSweepRunMetadata(t *testing.T) {
	res, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Figures) != 1 {
		t.Fatalf("want 1 figure, got %d", len(res.Figures))
	}
	f := res.Figures[0]
	nPoints := 0
	for _, s := range f.Figure.Series {
		nPoints += len(s.Points)
	}
	if len(f.Runs) != nPoints {
		t.Fatalf("runs (%d) != points (%d)", len(f.Runs), nPoints)
	}
	seeds := map[uint64]bool{}
	for _, r := range f.Runs {
		if r.Spec.FigID != "fig6a" {
			t.Fatalf("run has wrong figure id %q", r.Spec.FigID)
		}
		if r.Spec.Iters <= 0 || r.Spec.Warmup <= 0 {
			t.Fatalf("run %s missing iteration metadata: %+v", r.Spec.Name(), r.Spec)
		}
		if seeds[r.Spec.Seed] {
			t.Fatalf("duplicate seed %d", r.Spec.Seed)
		}
		seeds[r.Spec.Seed] = true
	}
}

func TestWriteJSON(t *testing.T) {
	res, err := Sweep([]string{"fig6a", "abl-chanapi"}, Options{Workers: 4, Bench: quickOpt()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema  string `json:"schema"`
		Workers int    `json:"workers"`
		WallNS  int64  `json:"wall_ns"`
		Figures []struct {
			ID     string `json:"id"`
			Series []struct {
				Name   string `json:"name"`
				Points []struct {
					X     int     `json:"x"`
					Value float64 `json:"value"`
				} `json:"points"`
			} `json:"series"`
			Runs []struct {
				Figure   string  `json:"figure"`
				Scenario string  `json:"scenario"`
				App      string  `json:"app"`
				Machine  string  `json:"machine"`
				Seed     uint64  `json:"seed"`
				WallNS   int64   `json:"wall_ns"`
				Key      string  `json:"key"`
				Cached   bool    `json:"cached"`
				Source   string  `json:"source"`
				Value    float64 `json:"value"`
			} `json:"runs"`
		} `json:"figures"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if rep.Schema != SchemaV3 {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Workers != 4 || rep.WallNS <= 0 {
		t.Fatalf("bad header: workers=%d wall=%d", rep.Workers, rep.WallNS)
	}
	if len(rep.Figures) != 2 || rep.Figures[0].ID != "fig6a" || rep.Figures[1].ID != "abl-chanapi" {
		t.Fatalf("figures out of order: %+v", rep.Figures)
	}
	for _, f := range rep.Figures {
		if len(f.Series) == 0 || len(f.Runs) == 0 {
			t.Fatalf("%s: empty series or runs", f.ID)
		}
		for _, r := range f.Runs {
			if r.Figure != f.ID {
				t.Fatalf("run under %s claims figure %s", f.ID, r.Figure)
			}
			if r.Scenario != f.ID || r.Machine != "summit" {
				t.Fatalf("run under %s missing v2 composition fields: %+v", f.ID, r)
			}
			if len(r.Key) != 32 || r.Cached || r.Source != "sim" {
				t.Fatalf("run under %s missing v3 provenance (want 32-char key, cached=false, source=sim): %+v", f.ID, r)
			}
		}
	}
	// The v3 per-run value must duplicate the rendered figure point, so
	// a partial report is self-contained for resume.
	r0 := rep.Figures[0].Runs[0]
	p0 := rep.Figures[0].Series[0].Points[0]
	if r0.Value != p0.Value {
		t.Fatalf("run value %v != series point value %v", r0.Value, p0.Value)
	}
	// fig6a runs belong to the jacobi3d app; abl-chanapi bypasses the
	// app layer and must say so.
	if got := rep.Figures[0].Runs[0].App; got != "jacobi3d" {
		t.Fatalf("fig6a app = %q", got)
	}
	if got := rep.Figures[1].Runs[0].App; got != "" {
		t.Fatalf("abl-chanapi app = %q, want empty", got)
	}
}

// TestReadJSONAcceptsAllVersions checks the reader side of the schema
// bumps: v3 documents round-trip with their provenance, and v1/v2
// documents (no fingerprints, no per-run values) still parse.
func TestReadJSONAcceptsAllVersions(t *testing.T) {
	res, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != SchemaV3 || len(rep.Figures) != 1 || rep.Figures[0].Runs[0].Machine != "summit" {
		t.Fatalf("v3 round trip lost data: %+v", rep)
	}
	if rep.Figures[0].Runs[0].Key == "" || rep.Figures[0].Runs[0].Source != "sim" {
		t.Fatalf("v3 round trip lost provenance: %+v", rep.Figures[0].Runs[0])
	}

	v1 := `{"schema":"gat-sweep-v1","workers":1,"wall_ns":5,
		"figures":[{"id":"fig6a","title":"t","xlabel":"nodes","ylabel":"ms",
		"series":[{"name":"Before","points":[{"x":1,"value":2.5}]}],
		"runs":[{"figure":"fig6a","series":"Before","x":1,"nodes":1,"warmup":3,"iters":10,"seed":7,"wall_ns":9}]}]}`
	rep, err = ReadJSON(strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Figures[0].Runs[0].Scenario != "" || rep.Figures[0].Runs[0].Seed != 7 {
		t.Fatalf("v1 parse wrong: %+v", rep.Figures[0].Runs[0])
	}

	v2 := `{"schema":"gat-sweep-v2","workers":1,"wall_ns":5,
		"figures":[{"id":"fig6a","title":"t","xlabel":"nodes","ylabel":"ms",
		"series":[{"name":"Before","points":[{"x":1,"value":2.5}]}],
		"runs":[{"figure":"fig6a","scenario":"fig6a","app":"jacobi3d","machine":"summit",
		"series":"Before","x":1,"nodes":1,"warmup":3,"iters":10,"seed":7,"wall_ns":9}]}]}`
	rep, err = ReadJSON(strings.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Figures[0].Runs[0].Machine != "summit" || rep.Figures[0].Runs[0].Key != "" {
		t.Fatalf("v2 parse wrong: %+v", rep.Figures[0].Runs[0])
	}

	if _, err := ReadJSON(strings.NewReader(`{"schema":"gat-sweep-v9"}`)); err == nil {
		t.Fatal("unknown schema should error")
	}
}

// TestSweepMachineOverride threads Overrides through the orchestrator.
func TestSweepMachineOverride(t *testing.T) {
	base, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt()})
	if err != nil {
		t.Fatal(err)
	}
	over, err := Sweep([]string{"fig6a"}, Options{
		Workers:   2,
		Bench:     quickOpt(),
		Overrides: bench.Overrides{Machine: "perlmutter"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := over.Figures[0].Runs[0].Spec.Machine; got != "perlmutter" {
		t.Fatalf("override spec machine = %q", got)
	}
	var a, b bytes.Buffer
	if err := base.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := over.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("perlmutter override produced byte-identical figures to summit")
	}
}

func TestEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 100} {
		const n = 37
		var hit [n]atomic.Int32
		Each(n, workers, func(i int) { hit[i].Add(1) })
		for i := range hit {
			if got := hit[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d run %d times", workers, i, got)
			}
		}
	}
	Each(0, 4, func(int) { t.Fatal("fn called for n=0") })
}

func TestProgressLinesComplete(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	res, err := Sweep([]string{"fig6a"}, Options{
		Workers:  4,
		Bench:    quickOpt(),
		Progress: lockedTestWriter{mu: &mu, w: &buf},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	out := buf.String()
	lines := bytes.Count(buf.Bytes(), []byte("\n"))
	mu.Unlock()
	// One header line announcing the effective worker count, then one
	// line per completed run.
	if lines != len(res.Figures[0].Runs)+1 {
		t.Fatalf("progress lines = %d, want %d", lines, len(res.Figures[0].Runs)+1)
	}
	if !strings.Contains(out, "on 4 workers") {
		t.Fatalf("progress header does not report the worker count:\n%s", out)
	}
}

type lockedTestWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedTestWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
