package sweep

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestReadJSONVersionDetection pins the acceptance contract documented
// on ReadJSON: each accepted schema tag is detected and surfaced
// verbatim in Report.Schema, a well-formed document under a foreign
// tag fails with ErrUnknownSchema (sweepd's friendly-400 split), and
// malformed JSON fails with a plain decode error.
func TestReadJSONVersionDetection(t *testing.T) {
	cases := []struct {
		name, doc   string
		wantSchema  string
		wantVersion int
		wantUnknown bool // errors.Is(err, ErrUnknownSchema)
		wantErr     bool
	}{
		{"v1", `{"schema":"gat-sweep-v1","figures":[]}`, SchemaV1, 1, false, false},
		{"v2", `{"schema":"gat-sweep-v2","figures":[]}`, SchemaV2, 2, false, false},
		{"v3", `{"schema":"gat-sweep-v3","workers":4,"figures":[]}`, SchemaV3, 3, false, false},
		{"future-version", `{"schema":"gat-sweep-v4","figures":[]}`, "", 0, true, true},
		{"foreign-tag", `{"schema":"gat-cache-v1","figures":[]}`, "", 0, true, true},
		{"missing-schema", `{"figures":[]}`, "", 0, true, true},
		{"not-json", `schema: gat-sweep-v3`, "", 0, false, true},
		{"truncated", `{"schema":"gat-sweep-v3","figures":[`, "", 0, false, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rep, err := ReadJSON(strings.NewReader(c.doc))
			if c.wantErr {
				if err == nil {
					t.Fatalf("ReadJSON(%q) succeeded, want error", c.doc)
				}
				if got := errors.Is(err, ErrUnknownSchema); got != c.wantUnknown {
					t.Fatalf("errors.Is(err, ErrUnknownSchema) = %v, want %v (err: %v)", got, c.wantUnknown, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("ReadJSON: %v", err)
			}
			if rep.Schema != c.wantSchema {
				t.Fatalf("detected schema %q, want %q", rep.Schema, c.wantSchema)
			}
			v, ok := SchemaVersion(rep.Schema)
			if !ok || v != c.wantVersion {
				t.Fatalf("SchemaVersion(%q) = %d, %v; want %d, true", rep.Schema, v, ok, c.wantVersion)
			}
		})
	}
	if _, ok := SchemaVersion("gat-sweep-v99"); ok {
		t.Fatal("SchemaVersion accepted an unknown tag")
	}
}

// TestRunRecordMatchesWriteJSON: the watch stream and the report file
// must carry the same per-run record — Record is the single renderer.
func TestRunRecordMatchesWriteJSON(t *testing.T) {
	res, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, run := range res.Figures[0].Runs {
		if got, want := run.Record(), rep.Figures[0].Runs[i]; got != want {
			t.Fatalf("run %d: Record() = %+v, report run = %+v", i, got, want)
		}
	}
}
