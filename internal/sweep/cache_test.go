package sweep

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"gat/internal/bench"
	"gat/internal/sweep/store"
)

func openStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func renderAll(t *testing.T, res Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	res.WriteTables(&buf)
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCachedSweepByteIdentical is the cache's core contract, in all
// three directions: a cold cached sweep matches the uncached path, a
// warm sweep matches the cold one byte for byte, and the warm sweep
// performs zero engine simulations (run-counter hook).
func TestCachedSweepByteIdentical(t *testing.T) {
	st := openStore(t)
	plain, err := Sweep(testIDs, Options{Workers: 4, Bench: quickOpt()})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Sweep(testIDs, Options{Workers: 4, Bench: quickOpt(), Cache: st})
	if err != nil {
		t.Fatal(err)
	}
	if cold.FromStore != 0 || cold.Simulated == 0 {
		t.Fatalf("cold run provenance wrong: %s", cold.Provenance())
	}
	if got, want := renderAll(t, cold), renderAll(t, plain); !bytes.Equal(got, want) {
		t.Fatalf("cold cached sweep differs from uncached sweep:\n%s\n---\n%s", got, want)
	}

	before := bench.Executions()
	warm, err := Sweep(testIDs, Options{Workers: 4, Bench: quickOpt(), Cache: st})
	if err != nil {
		t.Fatal(err)
	}
	if simulated := bench.Executions() - before; simulated != 0 {
		t.Fatalf("warm sweep executed %d simulations, want 0", simulated)
	}
	if warm.Simulated != 0 || warm.FromStore != cold.Simulated {
		t.Fatalf("warm run provenance wrong: %s (cold was %s)", warm.Provenance(), cold.Provenance())
	}
	if got, want := renderAll(t, warm), renderAll(t, plain); !bytes.Equal(got, want) {
		t.Fatalf("warm cached sweep differs from uncached sweep:\n%s\n---\n%s", got, want)
	}
	if warm.CacheErrors != 0 {
		t.Fatalf("warm sweep reported %d cache errors", warm.CacheErrors)
	}
}

// TestCacheCorruptEntryResimulated corrupts one entry of a warm cache:
// the sweep must notice (CacheErrors), re-simulate exactly that run,
// heal the entry, and still produce identical bytes.
func TestCacheCorruptEntryResimulated(t *testing.T) {
	st := openStore(t)
	cold, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Cache: st})
	if err != nil {
		t.Fatal(err)
	}
	victim := cold.Figures[0].Runs[0].Key
	if err := os.WriteFile(st.Path(victim), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	before := bench.Executions()
	warm, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Cache: st})
	if err != nil {
		t.Fatal(err)
	}
	if simulated := bench.Executions() - before; simulated != 1 {
		t.Fatalf("corrupt-entry sweep executed %d simulations, want exactly 1", simulated)
	}
	if warm.Simulated != 1 || warm.CacheErrors != 1 {
		t.Fatalf("corrupt-entry provenance wrong: %s, cacheErrors=%d", warm.Provenance(), warm.CacheErrors)
	}
	if got, want := renderAll(t, warm), renderAll(t, cold); !bytes.Equal(got, want) {
		t.Fatal("re-simulated sweep output differs")
	}
	// The slot healed: a third sweep is fully warm.
	third, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Cache: st})
	if err != nil {
		t.Fatal(err)
	}
	if third.Simulated != 0 || third.CacheErrors != 0 {
		t.Fatalf("healed sweep provenance wrong: %s, cacheErrors=%d", third.Provenance(), third.CacheErrors)
	}
}

// TestCacheKeyedOnOptions checks the cache cannot cross-talk between
// sweeps with different simulation inputs: changing jitter misses,
// returning to the original hits again.
func TestCacheKeyedOnOptions(t *testing.T) {
	st := openStore(t)
	if _, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Cache: st}); err != nil {
		t.Fatal(err)
	}
	jopt := quickOpt()
	jopt.Jitter = 0.05
	jres, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: jopt, Cache: st})
	if err != nil {
		t.Fatal(err)
	}
	if jres.FromStore != 0 {
		t.Fatalf("jittered sweep hit the jitter-free cache: %s", jres.Provenance())
	}
	back, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Cache: st})
	if err != nil {
		t.Fatal(err)
	}
	if back.Simulated != 0 {
		t.Fatalf("original options no longer fully cached: %s", back.Provenance())
	}
}

// TestResumeFromPartialReport simulates the resume workflow: a sweep
// of a subset of figures produces a v3 report; resuming a larger sweep
// from it re-runs only the missing figure's specs.
func TestResumeFromPartialReport(t *testing.T) {
	partial, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := partial.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	prior := NewPrior(rep)
	if prior.Len() != len(partial.Figures[0].Runs) {
		t.Fatalf("prior indexed %d runs, want %d", prior.Len(), len(partial.Figures[0].Runs))
	}

	full := []string{"fig6a", "abl-chanapi"}
	want, err := Sweep(full, Options{Workers: 2, Bench: quickOpt()})
	if err != nil {
		t.Fatal(err)
	}
	before := bench.Executions()
	resumed, err := Sweep(full, Options{Workers: 2, Bench: quickOpt(), Prior: prior})
	if err != nil {
		t.Fatal(err)
	}
	ablRuns := len(want.Figures[1].Runs)
	if simulated := int(bench.Executions() - before); simulated != ablRuns {
		t.Fatalf("resumed sweep executed %d simulations, want %d (only the missing figure)", simulated, ablRuns)
	}
	if resumed.FromPrior != prior.Len() || resumed.Simulated != ablRuns {
		t.Fatalf("resume provenance wrong: %s", resumed.Provenance())
	}
	if got, wantB := renderAll(t, resumed), renderAll(t, want); !bytes.Equal(got, wantB) {
		t.Fatalf("resumed sweep output differs from full sweep:\n%s\n---\n%s", got, wantB)
	}
}

// TestResumeIgnoresMismatchedReport: a report taken under different
// simulation inputs (here: jitter) must not satisfy any spec — the
// fingerprint mismatch forces re-simulation.
func TestResumeIgnoresMismatchedReport(t *testing.T) {
	jopt := quickOpt()
	jopt.Jitter = 0.05
	jittered, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: jopt})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := jittered.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Prior: NewPrior(rep)})
	if err != nil {
		t.Fatal(err)
	}
	if res.FromPrior != 0 {
		t.Fatalf("jittered report satisfied %d jitter-free specs", res.FromPrior)
	}
}

// TestResumeV2Report: fingerprint-less v1/v2 reports resume on the
// metadata tuple, recovering values from the rendered series.
func TestResumeV2Report(t *testing.T) {
	res, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the report down to v2: no keys, no per-run values.
	rep.Schema = SchemaV2
	for fi := range rep.Figures {
		for ri := range rep.Figures[fi].Runs {
			rep.Figures[fi].Runs[ri].Key = ""
			rep.Figures[fi].Runs[ri].Value = 0
			rep.Figures[fi].Runs[ri].Meta = ""
		}
	}
	prior := NewPrior(rep)
	resumed, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Prior: prior})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Simulated != 0 || resumed.FromPrior == 0 {
		t.Fatalf("v2 resume provenance wrong: %s", resumed.Provenance())
	}
	if got, want := renderAll(t, resumed), renderAll(t, res); !bytes.Equal(got, want) {
		t.Fatal("v2-resumed sweep output differs")
	}
}

// TestResumeSkipsFailedRuns: a v3 run marked failed must be re-run
// even though its key matches.
func TestResumeSkipsFailedRuns(t *testing.T) {
	res, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep.Figures[0].Runs[0].Error = "simulated crash"
	resumed, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Prior: NewPrior(rep)})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Simulated != 1 || resumed.FromPrior != len(res.Figures[0].Runs)-1 {
		t.Fatalf("failed-run resume provenance wrong: %s", resumed.Provenance())
	}
}

// TestResumeWritesThroughToStore: resumed points should seed the run
// store, so the report becomes unnecessary after one resumed sweep.
func TestResumeWritesThroughToStore(t *testing.T) {
	res, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st := openStore(t)
	first, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Cache: st, Prior: NewPrior(rep)})
	if err != nil {
		t.Fatal(err)
	}
	if first.FromPrior == 0 || first.Simulated != 0 {
		t.Fatalf("first resume provenance wrong: %s", first.Provenance())
	}
	// Without the prior, the store alone must now answer everything.
	second, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Cache: st})
	if err != nil {
		t.Fatal(err)
	}
	if second.FromStore != first.FromPrior || second.Simulated != 0 {
		t.Fatalf("store not seeded by resume: %s", second.Provenance())
	}
}

// TestWriteExplain sanity-checks the human provenance rendering.
func TestWriteExplain(t *testing.T) {
	st := openStore(t)
	if _, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Cache: st}); err != nil {
		t.Fatal(err)
	}
	warm, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Cache: st})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	warm.WriteExplain(&buf)
	out := buf.String()
	for _, want := range []string{"0 simulated", "store", warm.Figures[0].Runs[0].Key, "fig6a/"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
}

// TestResumeV2RefusesUnrecordedInputs closes the metadata-tuple holes:
// v1/v2 reports never recorded jitter (and v1 recorded no machine), so
// a jittered sweep must refuse metadata matches entirely, and a v1
// report must only satisfy Summit sweeps.
func TestResumeV2RefusesUnrecordedInputs(t *testing.T) {
	res, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Downgrade to v1: no keys, no per-run values, no composition.
	rep.Schema = SchemaV1
	for fi := range rep.Figures {
		for ri := range rep.Figures[fi].Runs {
			r := &rep.Figures[fi].Runs[ri]
			r.Key, r.Scenario, r.App, r.Machine = "", "", "", ""
			r.Value, r.Meta = 0, ""
		}
	}
	prior := NewPrior(rep)

	// The seed tuple is jitter-blind, so a jittered sweep over the same
	// coordinates must not reuse the jitter-free report.
	jopt := quickOpt()
	jopt.Jitter = 0.05
	jres, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: jopt, Prior: prior})
	if err != nil {
		t.Fatal(err)
	}
	if jres.FromPrior != 0 {
		t.Fatalf("jittered sweep reused %d runs from a jitter-less v1 report", jres.FromPrior)
	}

	// v1 runs predate machine profiles: they are pinned to summit and
	// must not satisfy a -machine override.
	mres, err := Sweep([]string{"fig6a"}, Options{
		Workers:   2,
		Bench:     quickOpt(),
		Overrides: bench.Overrides{Machine: "perlmutter"},
		Prior:     prior,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mres.FromPrior != 0 {
		t.Fatalf("perlmutter sweep reused %d Summit runs from a v1 report", mres.FromPrior)
	}

	// The same report still resumes the sweep it actually matches.
	ok, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Prior: prior})
	if err != nil {
		t.Fatal(err)
	}
	if ok.Simulated != 0 {
		t.Fatalf("matching sweep not fully resumed: %s", ok.Provenance())
	}
}

// TestResumeV2DoesNotSeedStore: metadata-matched (fingerprint-less)
// resume hits must not be written through — they were never verified
// against the fingerprint they would be filed under.
func TestResumeV2DoesNotSeedStore(t *testing.T) {
	res, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep.Schema = SchemaV2
	for fi := range rep.Figures {
		for ri := range rep.Figures[fi].Runs {
			rep.Figures[fi].Runs[ri].Key = ""
		}
	}
	st := openStore(t)
	first, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Cache: st, Prior: NewPrior(rep)})
	if err != nil {
		t.Fatal(err)
	}
	if first.FromPrior == 0 {
		t.Fatalf("v2 resume did not hit: %s", first.Provenance())
	}
	if n, err := st.Len(); err != nil || n != 0 {
		t.Fatalf("store has %d entries (err %v) after v2-metadata resume, want 0", n, err)
	}
}

// TestResumeExactWriteThroughKeepsWall: a fingerprint-exact resumed
// point lands in the store with the original simulation's wall cost,
// not the microseconds the lookup took.
func TestResumeExactWriteThroughKeepsWall(t *testing.T) {
	res, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st := openStore(t)
	if _, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Cache: st, Prior: NewPrior(rep)}); err != nil {
		t.Fatal(err)
	}
	run0 := rep.Figures[0].Runs[0]
	data, err := os.ReadFile(st.Path(run0.Key))
	if err != nil {
		t.Fatalf("exact resume hit not written through: %v", err)
	}
	var entry struct {
		WallNS int64 `json:"wall_ns"`
	}
	if err := json.Unmarshal(data, &entry); err != nil {
		t.Fatal(err)
	}
	if entry.WallNS != run0.WallNS {
		t.Fatalf("store entry wall_ns = %d, want the report's original %d", entry.WallNS, run0.WallNS)
	}
}

// TestStoreBeatsPrior pins the lookup order: store entries are keyed
// on the current fingerprint (always semantics-current), so a warm
// store must win over a prior report even when both could answer.
func TestStoreBeatsPrior(t *testing.T) {
	st := openStore(t)
	cold, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Cache: st})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cold.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Cache: st, Prior: NewPrior(rep)})
	if err != nil {
		t.Fatal(err)
	}
	if res.FromStore != len(cold.Figures[0].Runs) || res.FromPrior != 0 {
		t.Fatalf("store did not win over prior: %s", res.Provenance())
	}
}

// TestWarmReportKeepsSimulationCost: a report written from a warm
// sweep must carry each run's original simulation cost, not the
// microseconds the store lookup took — otherwise resuming that report
// into a fresh cache would launder lookup times into the store's
// saved-cost provenance.
func TestWarmReportKeepsSimulationCost(t *testing.T) {
	st := openStore(t)
	cold, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Cache: st})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Cache: st})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := warm.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, run := range rep.Figures[0].Runs {
		coldRun := cold.Figures[0].Runs[i]
		if run.WallNS != coldRun.SimWallNS {
			t.Fatalf("warm report run %s wall_ns = %d, want the cold simulation's %d",
				coldRun.Spec.Name(), run.WallNS, coldRun.SimWallNS)
		}
		if run.WallNS <= 0 {
			t.Fatalf("warm report run %s has non-positive wall_ns %d", coldRun.Spec.Name(), run.WallNS)
		}
	}
}

// TestMetadataResumeStaysUnverified closes the laundering loop: a
// report written from a metadata-resumed (v1/v2) sweep must not stamp
// those values with the current fingerprint, so a second resume still
// treats them as non-exact and keeps them out of the store.
func TestMetadataResumeStaysUnverified(t *testing.T) {
	res, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep.Schema = SchemaV2
	for fi := range rep.Figures {
		for ri := range rep.Figures[fi].Runs {
			rep.Figures[fi].Runs[ri].Key = ""
		}
	}
	resumed, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Prior: NewPrior(rep)})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.FromPrior == 0 {
		t.Fatalf("metadata resume did not hit: %s", resumed.Provenance())
	}
	var buf2 bytes.Buffer
	if err := resumed.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	rep2, err := ReadJSON(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range rep2.Figures[0].Runs {
		if run.Key != "" {
			t.Fatalf("metadata-resumed run %s/%s@%d was stamped with key %s", run.Figure, run.Series, run.X, run.Key)
		}
	}
	// Round trip: resuming the second-generation report with a store
	// must still not write the unverified values through.
	st := openStore(t)
	if _, err := Sweep([]string{"fig6a"}, Options{Workers: 2, Bench: quickOpt(), Cache: st, Prior: NewPrior(rep2)}); err != nil {
		t.Fatal(err)
	}
	if n, err := st.Len(); err != nil || n != 0 {
		t.Fatalf("second-generation resume seeded the store with %d unverified entries (err %v)", n, err)
	}
}
