package cachetest

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"gat/internal/bench"
	"gat/internal/sweep/store"
)

// TestSpec compiles a real figure plan and returns one spec plus its
// fingerprint, so cache tests exercise production keys. Exported for
// backend test packages that need a valid (spec, key) pair.
func TestSpec(t *testing.T) (bench.RunSpec, string) {
	t.Helper()
	p, err := bench.PlanScenario("fig6a", bench.Options{MaxNodes: 2, Warmup: 1, Iters: 2}, bench.Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	spec := p.Specs[0]
	return spec, spec.Fingerprint()
}

// Conformance runs the shared behavioral suite against a cache
// backend. open must return a fresh, empty cache per call. Every
// sweep.Cache implementation — disk store, in-memory fake, remote
// sweepd client — runs this same suite, so the orchestrator can treat
// them interchangeably:
//
//   - absent keys miss with a nil error
//   - a Put entry round-trips whole, including wall_ns provenance,
//     meta and the fabric-congestion summary
//   - Put is idempotent and last-write-wins on a re-put
//   - entries failing Entry.Validate (foreign schema, malformed key)
//     are refused and never become visible
//   - malformed keys never hit (and may error diagnostically)
//   - concurrent same-key Puts all succeed and leave a whole entry
func Conformance(t *testing.T, open func(t *testing.T) Cache) {
	spec, key := TestSpec(t)
	pt := bench.Point{Nodes: spec.X, Value: 1.5, Meta: "ODF-2", MaxLinkUtil: 0.4, MeanLinkUtil: 0.1}

	t.Run("miss-on-absent-key", func(t *testing.T) {
		c := open(t)
		if _, ok, err := c.Get(key); ok || err != nil {
			t.Fatalf("Get on empty cache = ok=%v err=%v, want plain miss", ok, err)
		}
	})

	t.Run("round-trip-whole-entry", func(t *testing.T) {
		c := open(t)
		e, err := store.NewEntry(key, spec, pt, 1234)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Put(e); err != nil {
			t.Fatal(err)
		}
		got, ok, err := c.Get(key)
		if !ok || err != nil {
			t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
		}
		if got != e {
			t.Fatalf("entry did not round-trip whole:\n got %+v\nwant %+v", got, e)
		}
		if got.WallNS != 1234 {
			t.Fatalf("wall_ns provenance lost: %d, want 1234", got.WallNS)
		}
		if got.Point() != pt {
			t.Fatalf("point did not round-trip: %+v, want %+v", got.Point(), pt)
		}
	})

	t.Run("idempotent-last-write-wins", func(t *testing.T) {
		c := open(t)
		first, err := store.NewEntry(key, spec, pt, 100)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Put(first); err != nil {
			t.Fatal(err)
		}
		second := first
		second.WallNS = 200
		if err := c.Put(second); err != nil {
			t.Fatalf("re-put of the same key failed: %v", err)
		}
		got, ok, err := c.Get(key)
		if !ok || err != nil || got.WallNS != 200 {
			t.Fatalf("after re-put: entry %+v ok=%v err=%v, want wall_ns 200", got, ok, err)
		}
	})

	t.Run("refuses-invalid-entries", func(t *testing.T) {
		c := open(t)
		good, err := store.NewEntry(key, spec, pt, 1)
		if err != nil {
			t.Fatal(err)
		}
		bad := good
		bad.Schema = "gat-cache-v9"
		if err := c.Put(bad); err == nil {
			t.Fatal("Put accepted a foreign schema tag")
		}
		bad = good
		bad.Key = "../../../../tmp/escape"
		if err := c.Put(bad); err == nil {
			t.Fatal("Put accepted a malformed key")
		}
		if _, ok, _ := c.Get(key); ok {
			t.Fatal("refused entries became visible")
		}
	})

	t.Run("malformed-key-never-hits", func(t *testing.T) {
		c := open(t)
		for _, k := range []string{"", "short", "../../etc/passwd", "DEADBEEFDEADBEEFDEADBEEFDEADBEEF"} {
			if _, ok, _ := c.Get(k); ok {
				t.Fatalf("malformed key %q returned a hit", k)
			}
		}
	})

	t.Run("concurrent-same-key-puts", func(t *testing.T) {
		c := open(t)
		const writers = 8
		errs := make([]error, writers)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				e, err := store.NewEntry(key, spec, pt, int64(1000+w))
				if err != nil {
					errs[w] = err
					return
				}
				errs[w] = c.Put(e)
			}(w)
		}
		wg.Wait()
		var firstErr error
		for _, err := range errs {
			firstErr = errors.Join(firstErr, err)
		}
		if firstErr != nil {
			t.Fatalf("racing Puts failed: %v", firstErr)
		}
		got, ok, err := c.Get(key)
		if !ok || err != nil {
			t.Fatalf("after racing Puts: ok=%v err=%v", ok, err)
		}
		if got.Point() != pt {
			t.Fatalf("torn entry after race: %+v", got)
		}
		if got.WallNS < 1000 || got.WallNS >= 1000+writers {
			t.Fatalf("entry wall_ns %d is not one of the racing writes", got.WallNS)
		}
	})

	t.Run("distinct-keys-coexist", func(t *testing.T) {
		c := open(t)
		for i := 0; i < 4; i++ {
			k := fmt.Sprintf("%032x", 0xa000+i)
			e, err := store.NewEntry(key, spec, pt, int64(i))
			if err != nil {
				t.Fatal(err)
			}
			e.Key = k // distinct synthetic keys, same content shape
			if err := c.Put(e); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 4; i++ {
			k := fmt.Sprintf("%032x", 0xa000+i)
			got, ok, err := c.Get(k)
			if !ok || err != nil || got.WallNS != int64(i) {
				t.Fatalf("key %s: entry %+v ok=%v err=%v", k, got, ok, err)
			}
		}
	})
}
