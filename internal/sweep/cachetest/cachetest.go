// Package cachetest supplies the shared test kit for run-cache
// backends: an in-memory fake (Mem) and a conformance suite
// (Conformance) that every sweep.Cache implementation — the on-disk
// store, the fake, the sweepd HTTP client — must pass, so "cache
// backend" means exactly one behavior regardless of transport.
//
// The package deliberately declares its own structural Cache
// interface rather than importing the orchestrator: Go interfaces are
// satisfied structurally, so anything passing Conformance is a
// sweep.Cache and vice versa, while internal/sweep's own tests stay
// free to import this package without an import cycle.
package cachetest

import (
	"fmt"
	"sync"

	"gat/internal/sweep/store"
)

// Cache mirrors sweep.Cache structurally; see that interface for the
// full contract (miss/error matrix, idempotent content-addressed Put,
// concurrency safety).
type Cache interface {
	Get(key string) (store.Entry, bool, error)
	Put(e store.Entry) error
}

// Mem is an in-memory Cache: the reference fake for tests that need
// cache behavior without disk or network. It validates entries
// exactly like the disk store (Entry.Validate) and honors a read-only
// mode with the same typed error, so orchestrator tests can swap it
// for *store.Store without changing assertions.
type Mem struct {
	mu       sync.Mutex
	entries  map[string]store.Entry
	readOnly bool

	// Fault injection: when set, every matching call fails with the
	// given error (Get errors are "corrupt entry" style misses).
	GetErr, PutErr error
}

// NewMem returns an empty in-memory cache.
func NewMem() *Mem {
	return &Mem{entries: map[string]store.Entry{}}
}

// Get returns the stored entry, a miss for absent keys, and an error
// miss for malformed keys or injected faults — the disk store's
// matrix.
func (m *Mem) Get(key string) (store.Entry, bool, error) {
	if !store.ValidKey(key) {
		return store.Entry{}, false, fmt.Errorf("cachetest: malformed key %q", key)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.GetErr != nil {
		return store.Entry{}, false, m.GetErr
	}
	e, ok := m.entries[key]
	return e, ok, nil
}

// Put validates and files the entry; last write wins.
func (m *Mem) Put(e store.Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.PutErr != nil {
		return m.PutErr
	}
	if m.readOnly {
		return fmt.Errorf("cachetest: put %s: %w", e.Key, store.ErrReadOnly)
	}
	m.entries[e.Key] = e
	return nil
}

// SetReadOnly toggles read-only mode: Puts fail with store.ErrReadOnly.
func (m *Mem) SetReadOnly(ro bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.readOnly = ro
}

// Len returns the number of entries held.
func (m *Mem) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}
