package cachetest

import (
	"errors"
	"testing"

	"gat/internal/bench"
	"gat/internal/sweep/store"
)

// TestMemConformance: the fake must pass the same suite as the real
// backends, or tests written against it prove nothing.
func TestMemConformance(t *testing.T) {
	Conformance(t, func(t *testing.T) Cache { return NewMem() })
}

// TestMemReadOnly mirrors store.OpenReadOnly semantics.
func TestMemReadOnly(t *testing.T) {
	m := NewMem()
	spec, key := TestSpec(t)
	e, err := store.NewEntry(key, spec, bench.Point{Nodes: spec.X, Value: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put(e); err != nil {
		t.Fatal(err)
	}
	m.SetReadOnly(true)
	if err := m.Put(e); !errors.Is(err, store.ErrReadOnly) {
		t.Fatalf("read-only Put error = %v, want errors.Is(_, store.ErrReadOnly)", err)
	}
	if _, ok, err := m.Get(key); !ok || err != nil {
		t.Fatalf("read-only Get: ok=%v err=%v", ok, err)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

// TestMemFaultInjection: the injectable errors surface on the right
// calls, so orchestrator tests can simulate a rotting cache.
func TestMemFaultInjection(t *testing.T) {
	m := NewMem()
	spec, key := TestSpec(t)
	e, err := store.NewEntry(key, spec, bench.Point{Nodes: spec.X, Value: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	m.PutErr = boom
	if err := m.Put(e); !errors.Is(err, boom) {
		t.Fatalf("Put with injected fault = %v, want boom", err)
	}
	m.PutErr = nil
	if err := m.Put(e); err != nil {
		t.Fatal(err)
	}
	m.GetErr = boom
	if _, ok, err := m.Get(key); ok || !errors.Is(err, boom) {
		t.Fatalf("Get with injected fault = ok=%v err=%v, want error miss", ok, err)
	}
}
