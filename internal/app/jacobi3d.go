package app

import (
	"gat/internal/jacobi"
	"gat/internal/machine"
)

// jacobi3D adapts the paper's Jacobi3D proxy (internal/jacobi) to the
// App interface: the four measured runtime/communication variants over
// a shared parameter set. Consumed Params: Global, ODF (charm-*),
// Warmup, Iters, Fusion/Graphs (charm-d), Unoptimized/FlatPriority
// (charm-*), Overlap (mpi-*), Residual.
type jacobi3D struct{}

func init() { Register(jacobi3D{}) }

func (jacobi3D) Name() string { return "jacobi3d" }

// Version is the cache-identity version: bump when the Jacobi cost
// model or decomposition changes simulated results.
func (jacobi3D) Version() int { return 1 }

func (jacobi3D) Variants() []string {
	return []string{"mpi-h", "mpi-d", "charm-h", "charm-d"}
}

// Defaults weak-scales the paper's small base problem (192^3 per node,
// Fig 7b) with ODF-4, keeping generic cross-machine sweeps fast, at
// the reproduction's standard 3 warm-up + 10 timed iterations.
func (jacobi3D) Defaults(nodes int) Params {
	return Params{
		Global: jacobi.WeakGlobal([3]int{192, 192, 192}, nodes),
		ODF:    4,
		Warmup: 3,
		Iters:  10,
	}
}

func (a jacobi3D) BuildRun(m *machine.Machine, variant string, p Params) (func() Metrics, error) {
	cfg := jacobi.Config{Global: p.Global, Warmup: p.Warmup, Iters: p.Iters}
	switch variant {
	case "mpi-h", "mpi-d":
		mo := jacobi.MPIOpts{
			Device:        variant == "mpi-d",
			Overlap:       p.Overlap,
			ResidualEvery: p.Residual,
		}
		return func() Metrics { return fromResult(jacobi.RunMPI(m, cfg, mo)) }, nil
	case "charm-h", "charm-d":
		fusion, err := jacobi.ParseFusion(p.Fusion)
		if err != nil {
			return nil, err
		}
		co := jacobi.CharmOpts{
			ODF:           p.ODF,
			GPUAware:      variant == "charm-d",
			Fusion:        fusion,
			Graphs:        p.Graphs,
			FlatPriority:  p.FlatPriority,
			ResidualEvery: p.Residual,
		}
		if !p.Unoptimized {
			co = co.Optimized()
		}
		return func() Metrics { return fromResult(jacobi.RunCharm(m, cfg, co)) }, nil
	default:
		return nil, badVariant(a, variant)
	}
}

func fromResult(r jacobi.Result) Metrics {
	return Metrics{
		TimePerIter:  r.TimePerIter,
		Total:        r.Total,
		Events:       r.Events,
		Kernels:      r.Kernels,
		NetBytes:     r.NetBytes,
		NetMsgs:      r.NetMsgs,
		MaxLinkUtil:  r.MaxLinkUtil,
		MeanLinkUtil: r.MeanLinkUtil,
		Routing:      r.Routing,
	}
}
