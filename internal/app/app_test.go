package app

import (
	"fmt"
	"strings"
	"testing"

	"gat/internal/jacobi"
	"gat/internal/machine"
	"gat/internal/netsim"
	"gat/internal/sim"
)

func summitMachine(t *testing.T, nodes int) *machine.Machine {
	t.Helper()
	cfg, err := machine.BuildProfile("summit", nodes)
	if err != nil {
		t.Fatal(err)
	}
	return machine.MustNew(cfg)
}

func TestRegistryLookup(t *testing.T) {
	for _, name := range []string{"jacobi3d", "minimd", "ring"} {
		a, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, a.Name())
		}
		if len(a.Variants()) == 0 {
			t.Fatalf("%s: no variants", name)
		}
	}
	if _, err := ByName("nope"); err == nil || !strings.Contains(err.Error(), "have:") {
		t.Fatalf("unknown app error should list known apps, got %v", err)
	}
}

func TestUniqueAppNames(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Apps() {
		if seen[a.Name()] {
			t.Fatalf("duplicate app %q", a.Name())
		}
		seen[a.Name()] = true
	}
}

// TestEveryVariantRuns executes one tiny run of every variant of every
// registered app on a one-node Summit machine and checks the metrics
// are sane.
func TestEveryVariantRuns(t *testing.T) {
	for _, a := range Apps() {
		for _, v := range a.Variants() {
			p := a.Defaults(1)
			p.Warmup, p.Iters = 1, 2
			if p.Global != ([3]int{}) {
				p.Global = [3]int{96, 96, 96} // keep jacobi runs tiny
			}
			run, err := a.BuildRun(summitMachine(t, 1), v, p)
			if err != nil {
				t.Fatalf("%s/%s: %v", a.Name(), v, err)
			}
			m := run()
			if m.TimePerIter <= 0 || m.Total <= 0 || m.Kernels == 0 {
				t.Fatalf("%s/%s: implausible metrics %+v", a.Name(), v, m)
			}
		}
	}
}

func TestUnknownVariantErrors(t *testing.T) {
	for _, a := range Apps() {
		_, err := a.BuildRun(summitMachine(t, 1), "no-such-variant", a.Defaults(1))
		if err == nil || !strings.Contains(err.Error(), "no-such-variant") {
			t.Fatalf("%s: want unknown-variant error, got %v", a.Name(), err)
		}
	}
}

// TestJacobiAppMatchesDirectRun pins the adapter to the underlying
// proxy: the app path and a direct jacobi.RunCharm must produce the
// same simulated time on identical machines.
func TestJacobiAppMatchesDirectRun(t *testing.T) {
	a, err := ByName("jacobi3d")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Global: [3]int{192, 192, 192}, ODF: 2, Warmup: 1, Iters: 2}
	run, err := a.BuildRun(summitMachine(t, 1), "charm-d", p)
	if err != nil {
		t.Fatal(err)
	}
	viaApp := run()
	direct := directCharmD(t, p)
	if viaApp.TimePerIter != direct {
		t.Fatalf("app path %v != direct path %v", viaApp.TimePerIter, direct)
	}
}

func directCharmD(t *testing.T, p Params) sim.Time {
	t.Helper()
	cfg := jacobi.Config{Global: p.Global, Warmup: p.Warmup, Iters: p.Iters}
	co := jacobi.CharmOpts{ODF: p.ODF, GPUAware: true}.Optimized()
	return jacobi.RunCharm(summitMachine(t, 1), cfg, co).TimePerIter
}

// TestMiniMDLoadBalancingHelps checks the minimd app's reason to
// exist: its non-uniform density profile must leave room for the
// balancer to improve on static placement.
func TestMiniMDLoadBalancingHelps(t *testing.T) {
	a, err := ByName("minimd")
	if err != nil {
		t.Fatal(err)
	}
	time := func(variant string) int64 {
		run, err := a.BuildRun(summitMachine(t, 2), variant, Params{ODF: 4, Iters: 12})
		if err != nil {
			t.Fatal(err)
		}
		return int64(run().Total)
	}
	static, lb := time("charm-static"), time("charm-lb")
	if lb >= static {
		t.Fatalf("load balancing did not help: static %d, lb %d", static, lb)
	}
}

// TestMetricsCarryLinkUtilization checks the congestion plumbing end
// to end at the app layer: on a machine with a heavily tapered fabric
// and cross-group traffic, run metrics must report nonzero fabric-link
// utilization; on the NIC-only Summit they must report zero.
func TestMetricsCarryLinkUtilization(t *testing.T) {
	tapered := machine.Summit(4)
	tapered.Net.PodSize = 2 // two pods at test scale, so halos cross groups
	tapered.Fabric = &netsim.FabricConfig{Taper: 8, UplinksPerPod: 1}
	for _, name := range []string{"jacobi3d", "minimd"} {
		a, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p := a.Defaults(4)
		p.Warmup, p.Iters = 1, 2
		if p.Global != ([3]int{}) {
			p.Global = [3]int{96, 96, 192}
		}
		run, err := a.BuildRun(machine.MustNew(tapered), a.Variants()[0], p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m := run()
		if m.MaxLinkUtil <= 0 || m.MeanLinkUtil <= 0 {
			t.Errorf("%s on a tapered fabric: MaxLinkUtil=%g MeanLinkUtil=%g, want > 0",
				name, m.MaxLinkUtil, m.MeanLinkUtil)
		}
		if m.MeanLinkUtil > m.MaxLinkUtil {
			t.Errorf("%s: mean link util %g exceeds max %g", name, m.MeanLinkUtil, m.MaxLinkUtil)
		}
		run, err = a.BuildRun(summitMachine(t, 4), a.Variants()[0], p)
		if err != nil {
			t.Fatal(err)
		}
		if m := run(); m.MaxLinkUtil != 0 || m.MeanLinkUtil != 0 {
			t.Errorf("%s on NIC-only Summit: link util %g/%g, want zeros", name, m.MaxLinkUtil, m.MeanLinkUtil)
		}
	}
}

// TestAppIdentity pins the versioned identity strings that enter run
// fingerprints: all registered apps implement Versioner, identities
// are distinct, and an unversioned app falls back to @v0.
func TestAppIdentity(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Apps() {
		if _, ok := a.(Versioner); !ok {
			t.Errorf("app %s does not implement Versioner; its cached runs can never be invalidated independently", a.Name())
		}
		id := Identity(a)
		if id == "" || seen[id] {
			t.Errorf("app %s has empty or duplicate identity %q", a.Name(), id)
		}
		seen[id] = true
	}
	j, err := ByName("jacobi3d")
	if err != nil {
		t.Fatal(err)
	}
	if got := Identity(j); got != "jacobi3d@v1" {
		t.Errorf("jacobi3d identity = %q, want jacobi3d@v1 (bumping it invalidates all cached jacobi3d runs)", got)
	}
	if got := Identity(unversionedApp{}); got != "legacy@v0" {
		t.Errorf("unversioned app identity = %q, want legacy@v0", got)
	}
}

// unversionedApp is a minimal App without Versioner, for the fallback.
type unversionedApp struct{}

func (unversionedApp) Name() string       { return "legacy" }
func (unversionedApp) Variants() []string { return []string{"only"} }
func (unversionedApp) Defaults(int) Params {
	return Params{}
}
func (unversionedApp) BuildRun(*machine.Machine, string, Params) (func() Metrics, error) {
	return nil, fmt.Errorf("not runnable")
}
