package app

import (
	"fmt"

	"gat/internal/charm"
	"gat/internal/comm"
	"gat/internal/core"
	"gat/internal/gpu"
	"gat/internal/machine"
	"gat/internal/sim"
)

// ring is the quickstart workload as a registered application: a ring
// of GPU-accelerated asynchronous tasks, each repeatedly running a
// kernel and passing a device buffer to a partner placed on another
// PE. It is the smallest workload that shows overdecomposition hiding
// communication, which is what its ODF-sweep scenarios measure.
//
// Consumed Params: ODF (tasks per GPU, default 1) and Iters (ring
// steps, default 20). Finer tasks do proportionally less compute and
// exchange proportionally smaller buffers, so total work per GPU is
// ODF-independent. Global and Warmup are ignored.
type ring struct{}

func init() { Register(ring{}) }

const (
	ringDefaultSteps = 20
	ringKernelBytes  = 256 << 20 // total kernel traffic per GPU per step
	ringMsgBytes     = 1 << 20   // total message bytes per GPU per step
)

func (ring) Name() string { return "ring" }

// Version is the cache-identity version: bump when the ring workload's
// simulated results change.
func (ring) Version() int { return 1 }

func (ring) Variants() []string { return []string{"ring"} }

func (ring) Defaults(int) Params { return Params{ODF: 1, Iters: ringDefaultSteps} }

func (a ring) BuildRun(m *machine.Machine, variant string, p Params) (func() Metrics, error) {
	if variant != "ring" {
		return nil, badVariant(a, variant)
	}
	odf := p.ODF
	if odf <= 0 {
		odf = 1
	}
	steps := p.Iters
	if steps <= 0 {
		steps = ringDefaultSteps
	}
	return func() Metrics { return runRing(m, odf, steps) }, nil
}

// ringTask is one ring element's state.
type ringTask struct {
	stream *gpu.Stream
	next   *comm.Channel // channel to the partner we send to
	prev   *comm.Channel // channel we receive from
	step   int
	gate   *charm.Gate
}

func runRing(m *machine.Machine, odf, steps int) Metrics {
	sys := core.NewSystemOn(m)
	n := sys.RT.NumPEs() * odf
	done := sim.NewCounter(n)

	var arr *charm.Array
	var drive func(el *charm.Elem, ctx *charm.Ctx)
	entries := []charm.EntryFn{
		func(el *charm.Elem, ctx *charm.Ctx, msg charm.Msg) { drive(el, ctx) },
	}
	arr = sys.NewTaskArray("ring", n, entries, func(ix charm.Index) any {
		return &ringTask{gate: charm.NewGate()}
	})
	// Wire a distant exchange: task i talks to task i + n/2, which the
	// block mapping places half the machine away.
	elems := arr.Elems()
	for i, el := range elems {
		nxt := elems[(i+n/2)%n]
		ch := sys.Channel(el, nxt)
		el.State.(*ringTask).next = ch
		nxt.State.(*ringTask).prev = ch
		el.State.(*ringTask).stream = sys.GPUFor(el).NewStream("work", gpu.PriorityNormal)
	}

	kernelBytes := int64(ringKernelBytes / odf)
	msgBytes := int64(ringMsgBytes / odf)

	drive = func(el *charm.Elem, ctx *charm.Ctx) {
		st := el.State.(*ringTask)
		if st.step == steps {
			done.Add(ctx.Engine())
			return
		}
		step := st.step
		st.step++
		// Compute, then pass a device buffer around the ring; the next
		// step starts when our own kernel is done AND the neighbor's
		// buffer has arrived.
		k := ctx.LaunchKernelBytes(st.stream, "work", kernelBytes)
		st.next.Send(el.Flat, step, msgBytes, k, nil)
		st.prev.Recv(el.Flat, step, ctx.CommCallback("ringRecv", func(ctx *charm.Ctx) {
			st.gate.Arrive(ctx, step, nil)
		}))
		st.gate.Expect(ctx, step, 1, func(ctx *charm.Ctx) {
			ctx.HAPICallback(st.stream, "next", func(ctx *charm.Ctx) { drive(el, ctx) })
		})
	}

	arr.Broadcast(charm.Msg{Entry: 0})
	total := sys.Run()
	if done.Remaining() != 0 {
		panic(fmt.Sprintf("ring: %d tasks did not finish", done.Remaining()))
	}
	return systemMetrics(m, total, steps)
}
