package app

import (
	"fmt"

	"gat/internal/charm"
	"gat/internal/comm"
	"gat/internal/core"
	"gat/internal/gpu"
	"gat/internal/machine"
	"gat/internal/sim"
)

// miniMD is a molecular-dynamics proxy in the style of the workloads
// the paper's introduction motivates (NAMD-class simulations on
// thousands of GPUs). Space is decomposed into patches (chares); each
// timestep a patch runs a force kernel on the GPU, exchanges boundary
// atoms with its spatial neighbors over GPU-aware channels, and
// integrates. Unlike Jacobi's uniform grid the patch densities are
// non-uniform — a dense solvated-protein cluster in the middle of the
// domain — so the charm-lb variant also exercises periodic load
// balancing.
//
// Consumed Params: ODF (patches per PE, default 4) and Iters
// (timesteps, default 12). Global and Warmup are ignored: the problem
// weak-scales with the machine by construction and the cost model has
// no warm-up transient.
type miniMD struct{}

func init() { Register(miniMD{}) }

// miniMD cost-model constants: force kernels are ~30x the cost of a
// Jacobi update per byte (neighbor lists), boundary exchanges small.
const (
	mdAtomBytesPerPatch = 2 << 20
	mdBoundaryBytes     = 96 << 10
	mdForceCostFactor   = 30
	mdRebalanceEvery    = 4
	mdDefaultSteps      = 12
	mdDefaultODF        = 4
)

func (miniMD) Name() string { return "minimd" }

// Version is the cache-identity version: bump when the MD proxy's
// patch densities, force cost model or balancer change results.
func (miniMD) Version() int { return 1 }

func (miniMD) Variants() []string { return []string{"charm-static", "charm-lb"} }

func (miniMD) Defaults(int) Params { return Params{ODF: mdDefaultODF, Iters: mdDefaultSteps} }

func (a miniMD) BuildRun(m *machine.Machine, variant string, p Params) (func() Metrics, error) {
	var balance bool
	switch variant {
	case "charm-static":
	case "charm-lb":
		balance = true
	default:
		return nil, badVariant(a, variant)
	}
	odf := p.ODF
	if odf <= 0 {
		odf = mdDefaultODF
	}
	steps := p.Iters
	if steps <= 0 {
		steps = mdDefaultSteps
	}
	return func() Metrics { return runMiniMD(m, odf, steps, balance) }, nil
}

// mdPatch is one spatial patch's state.
type mdPatch struct {
	stream   *gpu.Stream
	channels []*comm.Channel
	gate     *charm.Gate
	step     int
	density  float64 // relative atom density of this spatial region
}

func runMiniMD(m *machine.Machine, odf, steps int, balance bool) Metrics {
	sys := core.NewSystemOn(m)
	n := sys.RT.NumPEs() * odf
	done := sim.NewCounter(n)

	var arr *charm.Array
	var drive func(el *charm.Elem, ctx *charm.Ctx)
	entries := []charm.EntryFn{
		func(el *charm.Elem, ctx *charm.Ctx, msg charm.Msg) { drive(el, ctx) },
	}
	// A 1-D chain of patches with a dense cluster in the middle — the
	// solvated-protein density profile in miniature.
	arr = sys.NewTaskArray("patch", n, entries, func(ix charm.Index) any {
		density := 1.0
		if ix[0] >= n/3 && ix[0] < n/2 {
			density = 6.0
		}
		return &mdPatch{gate: charm.NewGate(), density: density}
	})

	elems := arr.Elems()
	for i, el := range elems {
		// Channels are created once from the lower index.
		if i+1 < n {
			ch := sys.Channel(el, elems[i+1])
			el.State.(*mdPatch).channels = append(el.State.(*mdPatch).channels, ch)
			nxt := elems[i+1].State.(*mdPatch)
			nxt.channels = append([]*comm.Channel{ch}, nxt.channels...)
		}
	}

	drive = func(el *charm.Elem, ctx *charm.Ctx) {
		p := el.State.(*mdPatch)
		if p.stream == nil || p.stream.Device() != sys.GPUFor(el) {
			p.stream = sys.GPUFor(el).NewStream("force", gpu.PriorityNormal)
		}
		if p.step == steps {
			done.Add(ctx.Engine())
			return
		}
		step := p.step
		p.step++

		// Force computation scales with local density.
		forceBytes := int64(float64(mdAtomBytesPerPatch) * p.density * mdForceCostFactor / float64(odf))
		force := ctx.LaunchKernelBytes(p.stream, "force", forceBytes)

		// Exchange boundary atoms with spatial neighbors.
		for _, ch := range p.channels {
			ctx.Charge(500 * sim.Nanosecond)
			ch.Send(el.Flat, step, mdBoundaryBytes, force, nil)
			ctx.Charge(500 * sim.Nanosecond)
			ch.Recv(el.Flat, step, ctx.CommCallback("boundary", func(ctx *charm.Ctx) {
				p.gate.Arrive(ctx, step, nil)
			}))
		}
		p.gate.Expect(ctx, step, len(p.channels), func(ctx *charm.Ctx) {
			// Integrate (cheap kernel), then next step via HAPI.
			ctx.LaunchKernelBytes(p.stream, "integrate", mdAtomBytesPerPatch/int64(odf))
			ctx.HAPICallback(p.stream, "next", func(ctx *charm.Ctx) {
				if balance && p.step%mdRebalanceEvery == 0 && p.step < steps && el.Flat == 0 {
					arr.RebalanceGreedy(mdAtomBytesPerPatch).OnFire(ctx.Engine(), func() {})
				}
				drive(el, ctx)
			})
		})
	}

	arr.Broadcast(charm.Msg{Entry: 0})
	total := sys.Run()
	if done.Remaining() != 0 {
		panic(fmt.Sprintf("minimd: %d patches did not finish", done.Remaining()))
	}
	return systemMetrics(m, total, steps)
}

// systemMetrics collects the common machine-wide counters for apps
// whose timestep loop runs from virtual time zero.
func systemMetrics(m *machine.Machine, total sim.Time, steps int) Metrics {
	var kernels uint64
	for _, g := range m.GPUs {
		kernels += g.KernelsLaunched()
	}
	maxU, meanU := m.Net.LinkUtilization()
	return Metrics{
		TimePerIter:  total / sim.Time(steps),
		Total:        total,
		Events:       m.Eng.EventsExecuted(),
		Kernels:      kernels,
		NetBytes:     m.Net.BytesMoved(),
		NetMsgs:      m.Net.Messages(),
		MaxLinkUtil:  maxU,
		MeanLinkUtil: meanU,
		Routing:      m.Net.RoutingName(),
	}
}
