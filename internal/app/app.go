// Package app defines the application dimension of the experiment
// layer: a registry of workloads that run on any simulated machine.
// An App exposes named runtime/communication variants (e.g. Jacobi3D's
// mpi-h/mpi-d/charm-h/charm-d) and builds self-contained run closures,
// so the scenario layer (internal/bench) can compose any registered
// application with any machine profile and sweep axis without either
// side knowing the other's internals.
package app

import (
	"fmt"
	"sort"
	"strings"

	"gat/internal/machine"
	"gat/internal/sim"
)

// Params carries the per-run knobs shared across applications. Apps
// interpret only the fields that apply to them (a molecular-dynamics
// proxy has no global grid; an MPI variant has no ODF) and must
// document which fields they consume.
type Params struct {
	// Global is the global problem size for grid-shaped apps.
	Global [3]int
	// ODF is the overdecomposition factor (tasks per PE) for
	// task-based runtimes.
	ODF int
	// Warmup and Iters are the untimed and timed iteration counts;
	// zero selects the app's defaults.
	Warmup, Iters int
	// Fusion names a kernel-fusion strategy ("", "none", "A", "B",
	// "C") for apps that support fused (un)packing kernels.
	Fusion string
	// Graphs executes each iteration's kernel DAG as a pre-captured
	// executable device graph.
	Graphs bool
	// Unoptimized disables the runtime's tuned defaults (for Jacobi3D,
	// the §III-C synchronization/stream optimizations) — the "before"
	// series of optimization comparisons.
	Unoptimized bool
	// FlatPriority disables high-priority communication streams.
	FlatPriority bool
	// Overlap enables manual interior/exterior overlap in bulk-
	// synchronous variants.
	Overlap bool
	// Residual, when positive, adds a global convergence/conservation
	// check every that many iterations.
	Residual int
}

// Metrics is the outcome of one application run.
type Metrics struct {
	// TimePerIter is the average wall time per timed iteration.
	TimePerIter sim.Time
	// Total is the full simulated run time including warm-up.
	Total sim.Time
	// Events is the number of simulation events executed.
	Events uint64
	// Kernels is the total number of GPU kernels launched.
	Kernels uint64
	// NetBytes is the total bytes moved on the network.
	NetBytes int64
	// NetMsgs is the number of network transfers.
	NetMsgs uint64
	// MaxLinkUtil and MeanLinkUtil are the max/mean utilization of the
	// machine's detailed fabric links over the run (netsim
	// Fabric.Utilizations), zero on NIC-only machines. They say where a
	// run is network-bound: a taper sweep whose time grows with taper
	// shows MaxLinkUtil approaching 1 on the shared links.
	MaxLinkUtil, MeanLinkUtil float64
	// Routing names the fabric's route-choice policy ("minimal",
	// "valiant", "adaptive"; netsim.Network.RoutingName), empty on
	// NIC-only machines. Provenance for congestion studies: which
	// policy produced these utilization numbers.
	Routing string
}

// App is one registered workload.
type App interface {
	// Name is the registry key (lower-case, stable).
	Name() string
	// Variants lists the runtime/communication variants, in canonical
	// order.
	Variants() []string
	// Defaults returns sensible parameters for a run on nodes nodes —
	// the problem size generic scenarios sweep with.
	Defaults(nodes int) Params
	// BuildRun binds one run of the given variant to machine m and
	// returns the closure that executes it. The machine must be fresh:
	// a run owns its engine. Unknown variants and unusable parameters
	// return an error.
	BuildRun(m *machine.Machine, variant string, p Params) (func() Metrics, error)
}

// Versioner is an optional App extension for content-addressed run
// caching: an app whose simulated behavior changes (cost model, decomp
// rules, default workload shape) bumps Version so fingerprints keyed
// on its identity stop matching stale cache entries. Apps without it
// are treated as version 0.
type Versioner interface {
	Version() int
}

// Identity returns the app's stable identity string, "name@vN" — the
// application component of a run fingerprint. It changes exactly when
// the app's simulated results may change.
func Identity(a App) string {
	v := 0
	if vv, ok := a.(Versioner); ok {
		v = vv.Version()
	}
	return fmt.Sprintf("%s@v%d", a.Name(), v)
}

var apps []App

// Register adds an application to the registry; duplicate names are a
// programming error and panic at init time.
func Register(a App) {
	if a.Name() == "" || len(a.Variants()) == 0 {
		panic("app: application needs a name and at least one variant")
	}
	for _, b := range apps {
		if b.Name() == a.Name() {
			panic(fmt.Sprintf("app: duplicate application %q", a.Name()))
		}
	}
	apps = append(apps, a)
}

// Apps returns the registered applications in registration order.
func Apps() []App {
	out := make([]App, len(apps))
	copy(out, apps)
	return out
}

// ByName resolves an application, with an error naming the known apps
// on a miss.
func ByName(name string) (App, error) {
	for _, a := range apps {
		if a.Name() == name {
			return a, nil
		}
	}
	names := make([]string, len(apps))
	for i, a := range apps {
		names[i] = a.Name()
	}
	sort.Strings(names)
	return nil, fmt.Errorf("app: unknown application %q (have: %s)",
		name, strings.Join(names, ", "))
}

// badVariant builds the standard unknown-variant error.
func badVariant(a App, variant string) error {
	return fmt.Errorf("app: %s has no variant %q (have: %s)",
		a.Name(), variant, strings.Join(a.Variants(), ", "))
}
