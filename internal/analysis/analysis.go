// Package analysis is a small, dependency-free static-analysis
// framework: the subset of golang.org/x/tools/go/analysis that the
// gatvet suite needs, rebuilt on the standard library so the linter
// carries no module requirements beyond the Go toolchain itself.
//
// The shape mirrors x/tools deliberately — an Analyzer owns a Run
// function over a Pass carrying the package's syntax and types — so the
// suite can migrate to the real framework by swapping imports if the
// dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, e.g. "detmap".
	Name string
	// Doc is the one-paragraph description shown by `gatvet -list`.
	Doc string
	// Scope lists the import-path patterns the suite driver applies
	// this analyzer to: exact paths ("gat/internal/sim") or prefix
	// patterns ("gat/cmd/..."). An empty scope means every package.
	// Scope is driver policy, not analyzer logic: Run sees only the
	// packages the driver selected, and tests may bypass the scope.
	Scope []string
	// Run performs the check on one package and reports findings
	// through pass.Reportf.
	Run func(pass *Pass) error
}

// AppliesTo reports whether pkgPath falls inside the analyzer's scope.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	return MatchPath(a.Scope, pkgPath)
}

// MatchPath reports whether path matches any pattern: an exact import
// path, or a "prefix/..." wildcard (which also matches the prefix
// itself, mirroring the go tool's package-pattern semantics).
func MatchPath(patterns []string, path string) bool {
	for _, pat := range patterns {
		if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
			if path == prefix || strings.HasPrefix(path, prefix+"/") {
				return true
			}
			continue
		}
		if path == pat {
			return true
		}
	}
	return false
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the conventional
// file:line:col: [analyzer] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// RunAnalyzer applies a to pkg and returns the findings in source
// order.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders findings by file, line, column, then analyzer
// name, so gatvet output is byte-stable run to run.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
