// Package detmap implements the gatvet analyzer that flags `range`
// loops over Go maps in deterministic packages. Map iteration order is
// randomized per run, so any map-order-dependent effect — event
// scheduling, rendered tables, JSON field values built by
// concatenation — breaks the byte-identical-sweep contract the golden
// tests and the content-addressed run cache both rest on.
//
// Two shapes are recognized as safe and never flagged:
//
//   - the sorted-keys idiom: the loop body only appends to slices that
//     a later sort call in the same function orders (collect, sort,
//     then iterate the slice);
//   - commutative map-to-map accumulation: the loop body only assigns
//     into other maps, where write order cannot be observed.
//
// Anything else needs a line-scoped //gat:nondet-ok <reason>.
package detmap

import (
	"go/ast"
	"go/token"
	"go/types"

	"gat/internal/analysis"
	"gat/internal/analysis/gatfact"
)

// Analyzer flags iteration-order-dependent map ranges.
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc: "flags `range` over a map unless the loop is a recognized sorted-keys " +
		"or map-to-map accumulation idiom, or carries //gat:nondet-ok <reason>",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		dirs := gatfact.Parse(pass.Fset, file)
		walkStack(file, func(n ast.Node, stack []ast.Node) {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return
			}
			if gatfact.Suppressed(dirs, gatfact.NondetOK, pass.Fset, rng.Pos()) {
				return
			}
			if sortedIdiom(pass, rng, enclosingFunc(stack)) {
				return
			}
			pass.Reportf(rng.Pos(),
				"range over map %s depends on iteration order; collect and sort the keys, or annotate //gat:nondet-ok <reason>",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
		})
	}
	return nil
}

// walkStack traverses root calling f with each node and the stack of
// its ancestors (outermost first, excluding n itself).
func walkStack(root ast.Node, f func(n ast.Node, stack []ast.Node)) {
	v := &stackVisitor{f: f}
	ast.Walk(v, root)
}

type stackVisitor struct {
	stack []ast.Node
	f     func(n ast.Node, stack []ast.Node)
}

func (v *stackVisitor) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		v.stack = v.stack[:len(v.stack)-1]
		return nil
	}
	v.f(n, v.stack)
	v.stack = append(v.stack, n)
	return v
}

// enclosingFunc returns the innermost function declaration or literal
// on the stack, or nil at package scope.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// sortedIdiom reports whether the map range is a recognized safe
// shape. Every statement in the body must be an order-independent
// accumulation (possibly behind ifs); slice collectors must then be
// ordered by a sort call after the loop.
func sortedIdiom(pass *analysis.Pass, rng *ast.RangeStmt, encl ast.Node) bool {
	var collectors []types.Object
	if !allowedStmts(pass, rng.Body.List, &collectors) {
		return false
	}
	if len(collectors) > 0 && encl == nil {
		return false
	}
	for _, obj := range collectors {
		if !sortedAfter(pass, encl, rng.End(), obj) {
			return false
		}
	}
	return true
}

// allowedStmts reports whether every statement is order-independent:
// slice collection (sorted later — collectors records what must be
// sorted), writes into other maps, commutative integer accumulation,
// loop-local declarations, and ifs/blocks/continues over those. This
// is a syntactic proxy: a declaration whose initializer hides a
// side-effecting call can fool it, but any result that escapes the
// loop must still leave through one of the allowed shapes.
func allowedStmts(pass *analysis.Pass, list []ast.Stmt, collectors *[]types.Object) bool {
	for _, stmt := range list {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if !allowedAssign(pass, s, collectors) {
				return false
			}
		case *ast.IncDecStmt:
			// m2[k]++ or a commutative integer counter.
			if ix, ok := s.X.(*ast.IndexExpr); ok && isMapIndex(pass, ix) {
				continue
			}
			if !isInteger(pass, s.X) {
				return false
			}
		case *ast.IfStmt:
			if !allowedIf(pass, s, collectors) {
				return false
			}
		case *ast.BlockStmt:
			if !allowedStmts(pass, s.List, collectors) {
				return false
			}
		case *ast.BranchStmt:
			// continue skips a key wherever it falls in the order;
			// break makes the result depend on which keys came first.
			if s.Tok != token.CONTINUE {
				return false
			}
		case *ast.EmptyStmt:
		default:
			return false
		}
	}
	return true
}

// allowedIf admits `if` statements whose init is a loop-local
// declaration (the `if v, ok := other[k]; ok` lookup shape) and whose
// branches recursively contain only allowed statements.
func allowedIf(pass *analysis.Pass, s *ast.IfStmt, collectors *[]types.Object) bool {
	if s.Init != nil {
		init, ok := s.Init.(*ast.AssignStmt)
		if !ok || init.Tok != token.DEFINE {
			return false
		}
	}
	if !allowedStmts(pass, s.Body.List, collectors) {
		return false
	}
	switch e := s.Else.(type) {
	case nil:
		return true
	case *ast.BlockStmt:
		return allowedStmts(pass, e.List, collectors)
	case *ast.IfStmt:
		return allowedIf(pass, e, collectors)
	default:
		return false
	}
}

// allowedAssign classifies one assignment inside the loop body.
func allowedAssign(pass *analysis.Pass, s *ast.AssignStmt, collectors *[]types.Object) bool {
	if obj := appendCollector(pass, s); obj != nil {
		*collectors = append(*collectors, obj)
		return true
	}
	if isMapIndexWrite(pass, s) {
		return true
	}
	switch s.Tok {
	case token.DEFINE:
		// Loop-local state; anything escaping must still pass through
		// an allowed statement.
		return true
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative-and-associative only over integers: float
		// addition depends on order through rounding, string +=
		// concatenates in iteration order.
		return len(s.Lhs) == 1 && isInteger(pass, s.Lhs[0])
	default:
		return false
	}
}

// isInteger reports whether e has an integer type.
func isInteger(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// appendCollector matches `s = append(s, ...)` and returns s's object.
func appendCollector(pass *analysis.Pass, s *ast.AssignStmt) types.Object {
	if s.Tok != token.ASSIGN || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil
	}
	lhs, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[lhs]
	if obj == nil || obj != pass.TypesInfo.Uses[first] {
		return nil
	}
	return obj
}

// isMapIndexWrite matches `m[k] = v` (any assignment operator) with a
// single map-indexed left-hand side.
func isMapIndexWrite(pass *analysis.Pass, s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 {
		return false
	}
	ix, ok := s.Lhs[0].(*ast.IndexExpr)
	return ok && isMapIndex(pass, ix)
}

// isMapIndex reports whether ix indexes a map.
func isMapIndex(pass *analysis.Pass, ix *ast.IndexExpr) bool {
	tv, ok := pass.TypesInfo.Types[ix.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// sortedAfter reports whether a call into package sort or slices that
// references obj appears after pos within the enclosing function.
func sortedAfter(pass *analysis.Pass, encl ast.Node, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			refs := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					refs = true
					return false
				}
				return true
			})
			if refs {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
