package detmap_test

import (
	"testing"

	"gat/internal/analysis/analysistest"
	"gat/internal/analysis/detmap"
)

func TestDetmap(t *testing.T) {
	diags := analysistest.Run(t, detmap.Analyzer, "testdata")
	if len(diags) == 0 {
		t.Fatal("testdata produced no findings; the failing direction is untested")
	}
}
