// Testdata for the detmap analyzer: map ranges that must be flagged,
// the sorted-keys and commutative-accumulation idioms that must not
// be, and the line-scoping of //gat:nondet-ok.
package td

import "sort"

// bareRange leaks iteration order through println.
func bareRange(m map[string]int) {
	for k := range m { // want `range over map`
		println(k)
	}
}

// sortedKeys is the canonical safe idiom: collect, sort, iterate.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectNoSort collects but never sorts: order still leaks.
func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map`
		keys = append(keys, k)
	}
	return keys
}

// sortedSlice accepts any sort/slices call referencing the collector.
func sortedSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// mapToMap accumulates into another map: write order is unobservable.
func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = 2 * v
	}
	return out
}

// intSum is commutative integer accumulation.
func intSum(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		n += len(vs)
	}
	return n
}

// floatSum is order-dependent through rounding: flagged.
func floatSum(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m { // want `range over map`
		s += v
	}
	return s
}

// guardedCollect allows if-wrapped collection (the lookup shape).
func guardedCollect(m, other map[string]int) []string {
	var keys []string
	for k := range m {
		if _, ok := other[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// annotatedAbove is suppressed by a directive on the preceding line.
func annotatedAbove(m map[string]int) {
	//gat:nondet-ok testdata: order deliberately unobserved
	for k := range m {
		println(k)
	}
}

// annotatedTrailing is suppressed by a same-line directive.
func annotatedTrailing(m map[string]int) {
	for k := range m { //gat:nondet-ok testdata: order deliberately unobserved
		println(k)
	}
}

// reasonless directives must not suppress: the exemption is invalid
// (gatdir flags it) and the finding stays.
func reasonless(m map[string]int) {
	//gat:nondet-ok
	for k := range m { // want `range over map`
		println(k)
	}
}

// notSuppressed proves line scoping: the directives earlier in this
// file cover nothing here.
func notSuppressed(m map[string]int) {
	for k := range m { // want `range over map`
		println(k)
	}
}
