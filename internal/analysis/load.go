package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package loading. The driver needs every target package parsed and
// type-checked, which in turn needs types for the whole import closure.
// Instead of type-checking the standard library from source (slow,
// fragile) or depending on golang.org/x/tools/go/packages (unavailable
// offline), the loader asks the toolchain to do the heavy lifting:
//
//	go list -deps -export -json <patterns>
//
// compiles every dependency into the build cache and reports, in
// dependency order, each package's source files and its export-data
// file. Standard-library (and any other dep-only) packages are imported
// from export data via go/importer; only the named target packages are
// parsed and type-checked from source, which is exactly the set the
// analyzers need syntax for.

// Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	DepOnly    bool
	Standard   bool
}

// Load lists patterns (go package patterns, e.g. "./...") relative to
// dir, type-checks the named packages from source with their
// dependencies imported from export data, and returns them sorted by
// import path.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	ld := newDepLoader(fset, listed)

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		pkg, err := ld.checkFromSource(lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// LoadFiles parses the given Go files as one package and type-checks
// them, resolving their imports through the toolchain the same way Load
// does. It exists for analysistest, whose testdata directories are
// invisible to go list.
func LoadFiles(importPath string, filenames ...string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	// Resolve the testdata package's imports via go list, run from the
	// file directory so module-internal imports would resolve too.
	var imports []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p != "unsafe" && !seen[p] {
				seen[p] = true
				imports = append(imports, p)
			}
		}
	}
	sort.Strings(imports)

	var listed []*listedPkg
	if len(imports) > 0 {
		dir := filepath.Dir(filenames[0])
		var err error
		listed, err = goList(dir, imports)
		if err != nil {
			return nil, err
		}
	}
	ld := newDepLoader(fset, listed)
	return ld.check(importPath, filepath.Dir(filenames[0]), files)
}

// goList runs `go list -deps -export -json` and decodes the stream.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=Dir,ImportPath,Name,Export,GoFiles,Imports,ImportMap,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// CGO off: every dependency then has a pure-Go build, so export
	// data exists without a C toolchain.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	var listed []*listedPkg
	dec := json.NewDecoder(out)
	for {
		lp := new(listedPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %s failed: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return listed, nil
}

// depLoader resolves imports during type-checking: module packages from
// the source-checked map, everything else from export data.
type depLoader struct {
	fset    *token.FileSet
	exports map[string]string         // import path -> export data file
	byPath  map[string]*listedPkg     // import path -> listing
	source  map[string]*types.Package // already source-checked packages
	gc      types.Importer
}

func newDepLoader(fset *token.FileSet, listed []*listedPkg) *depLoader {
	ld := &depLoader{
		fset:    fset,
		exports: map[string]string{},
		byPath:  map[string]*listedPkg{},
		source:  map[string]*types.Package{},
	}
	for _, lp := range listed {
		ld.byPath[lp.ImportPath] = lp
		if lp.Export != "" {
			ld.exports[lp.ImportPath] = lp.Export
		}
	}
	ld.gc = importer.ForCompiler(fset, "gc", ld.lookup)
	return ld
}

// lookup feeds export data to the gc importer.
func (ld *depLoader) lookup(path string) (io.ReadCloser, error) {
	exp, ok := ld.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(exp)
}

// Import implements types.Importer for the type-checker, preferring
// source-checked module packages over export data.
func (ld *depLoader) Import(path string) (*types.Package, error) {
	if pkg, ok := ld.source[path]; ok {
		return pkg, nil
	}
	return ld.gc.Import(path)
}

// checkFromSource parses and type-checks one listed module package.
func (ld *depLoader) checkFromSource(lp *listedPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return ld.check(lp.ImportPath, lp.Dir, files)
}

// check type-checks parsed files as the package at importPath.
func (ld *depLoader) check(importPath, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: ld,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, ld.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v (%d errors)", importPath, typeErrs[0], len(typeErrs))
	}
	ld.source[importPath] = tpkg
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       ld.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
