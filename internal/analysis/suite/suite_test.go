package suite

import (
	"testing"

	"gat/internal/analysis"
)

// TestSuiteWellFormed pins the structural invariants cmd/gatvet relies
// on: at least the four contract analyzers plus the vocabulary linter,
// unique names (findings are keyed "[name]" in output), and a Doc and
// Run hook on every entry.
func TestSuiteWellFormed(t *testing.T) {
	all := All()
	if len(all) < 5 {
		t.Fatalf("suite has %d analyzers, want >= 5", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" {
			t.Fatal("analyzer with empty name")
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
	for _, want := range []string{"detmap", "wallclock", "seedrand", "hotpath", "gatdir"} {
		if !seen[want] {
			t.Errorf("suite is missing the %q analyzer", want)
		}
	}
}

// TestEngineScopeCoverage is the policy test promised in the package
// doc: every deterministic engine package must be inside the wallclock
// scope, so moving or renaming a package cannot silently exempt it
// from the no-wall-clock contract.
func TestEngineScopeCoverage(t *testing.T) {
	var wallclock *analysis.Analyzer
	for _, a := range All() {
		if a.Name == "wallclock" {
			wallclock = a
		}
	}
	if wallclock == nil {
		t.Fatal("wallclock analyzer not in suite")
	}
	engine := []string{
		"gat/internal/sim",
		"gat/internal/pdes",
		"gat/internal/netsim",
		"gat/internal/gpu",
		"gat/internal/mpi",
		"gat/internal/charm",
		"gat/internal/app",
		"gat/internal/machine",
		"gat/internal/bench",
		"gat/internal/sweep",
		// The cache backends ride the sweep wildcard: the remote client
		// sleeps between retries, and those sites must stay annotated.
		"gat/internal/sweep/store",
		"gat/internal/sweep/store/remote",
	}
	for _, pkg := range engine {
		if !wallclock.AppliesTo(pkg) {
			t.Errorf("engine package %s is outside the wallclock scope", pkg)
		}
	}
	// Presentation-layer commands and servers may read the clock
	// (progress meters, wall-time provenance, HTTP timeouts and request
	// logs): they must stay out of scope. sweepd in particular is
	// deliberately a non-engine package — it never computes a figure
	// value, only stores and streams them.
	for _, pkg := range []string{"gat/cmd/sweep", "gat/cmd/sweepd", "gat/internal/sweepd", "gat/internal/analysis/detmap"} {
		if wallclock.AppliesTo(pkg) {
			t.Errorf("non-engine package %s is inside the wallclock scope", pkg)
		}
	}
	// detmap and seedrand are global: an empty scope means every
	// package, including tools.
	for _, name := range []string{"detmap", "seedrand"} {
		for _, a := range All() {
			if a.Name == name && !a.AppliesTo("gat/cmd/sweep") {
				t.Errorf("%s must apply everywhere, but skips gat/cmd/sweep", name)
			}
		}
	}
}
