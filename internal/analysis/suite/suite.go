// Package suite assembles the gatvet analyzers. The set and each
// analyzer's package scope are policy: cmd/gatvet runs exactly this
// suite, and suite tests pin the policy (every engine package must be
// covered) so a refactor cannot silently drop a contract.
package suite

import (
	"gat/internal/analysis"
	"gat/internal/analysis/detmap"
	"gat/internal/analysis/gatdir"
	"gat/internal/analysis/hotpath"
	"gat/internal/analysis/seedrand"
	"gat/internal/analysis/wallclock"
)

// All returns the gatvet analyzers in their reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detmap.Analyzer,
		wallclock.Analyzer,
		seedrand.Analyzer,
		hotpath.Analyzer,
		gatdir.Analyzer,
	}
}
