// Package seedrand implements the gatvet analyzer that forbids the
// global math/rand and math/rand/v2 convenience functions. Those draw
// from a process-global source — seeded differently every run (and, in
// rand/v2, unseedable) — so a single rand.Float64() in engine code
// makes sweeps irreproducible. Randomness must flow from an explicitly
// seeded generator instead: the per-spec *rand.Rand the jitter
// plumbing threads through, or sim.RNG. Constructing such a generator
// (rand.New, rand.NewSource, ...) is therefore allowed; using the
// package-level source is not.
package seedrand

import (
	"go/ast"
	"go/types"

	"gat/internal/analysis"
	"gat/internal/analysis/gatfact"
)

// constructors are the package-level functions that build an
// explicitly seeded generator rather than touching the global source.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

// Analyzer flags global-source randomness.
var Analyzer = &analysis.Analyzer{
	Name: "seedrand",
	Doc: "forbids top-level math/rand and math/rand/v2 functions (the process-global source); " +
		"randomness must come from an explicitly seeded *rand.Rand or sim.RNG",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		dirs := gatfact.Parse(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on a seeded *rand.Rand are the sanctioned path
			}
			if constructors[fn.Name()] {
				return true
			}
			if gatfact.Suppressed(dirs, gatfact.NondetOK, pass.Fset, id.Pos()) {
				return true
			}
			pass.Reportf(id.Pos(),
				"%s.%s draws from the process-global source and is irreproducible; use the per-spec seeded generator (or annotate //gat:nondet-ok <reason>)",
				fn.Pkg().Path(), fn.Name())
			return true
		})
	}
	return nil
}
