// Testdata for the seedrand analyzer: global-source draws must be
// flagged in both math/rand generations, seeded-generator construction
// and use must not be, and //gat:nondet-ok is line-scoped.
package td

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// global draws from the process-global, per-run-seeded source.
func global() float64 {
	return rand.Float64() // want `math/rand\.Float64`
}

// globalV2 is unseedable by design: always irreproducible.
func globalV2() int {
	return randv2.IntN(10) // want `math/rand/v2\.IntN`
}

// shuffle mutates through the global source too.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand\.Shuffle`
}

// seeded construction and method draws are the sanctioned path.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// seededV2 likewise for the v2 generator types.
func seededV2(seed uint64) int {
	r := randv2.New(randv2.NewPCG(seed, seed))
	return r.IntN(10)
}

// annotated sites pass with a reasoned exemption.
func annotated() int {
	return rand.Int() //gat:nondet-ok testdata: demonstrating the exemption
}

// scoping: the exemption above covers nothing here.
func scoped() int {
	return rand.Int() // want `math/rand\.Int`
}
