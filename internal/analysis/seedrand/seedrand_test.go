package seedrand_test

import (
	"testing"

	"gat/internal/analysis/analysistest"
	"gat/internal/analysis/seedrand"
)

func TestSeedrand(t *testing.T) {
	diags := analysistest.Run(t, seedrand.Analyzer, "testdata")
	if len(diags) == 0 {
		t.Fatal("testdata produced no findings; the failing direction is untested")
	}
}
