package gatdir_test

import (
	"testing"

	"gat/internal/analysis/analysistest"
	"gat/internal/analysis/gatdir"
)

func TestGatdir(t *testing.T) {
	diags := analysistest.Run(t, gatdir.Analyzer, "testdata")
	if len(diags) == 0 {
		t.Fatal("testdata produced no findings; the failing direction is untested")
	}
}
