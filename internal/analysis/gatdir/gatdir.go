// Package gatdir implements the gatvet analyzer that polices the
// //gat: annotation vocabulary itself. Suppressions are load-bearing —
// a typoed //gat:nondetok or a reason-less exemption silently weakens
// the determinism gate — so malformed directives are findings, not
// no-ops:
//
//   - unknown //gat: kinds (typos, retired vocabulary);
//   - nondet-ok / alloc-ok without the mandatory reason;
//   - //gat:hotpath outside a function's doc comment, where it
//     annotates nothing.
package gatdir

import (
	"go/ast"

	"gat/internal/analysis"
	"gat/internal/analysis/gatfact"
)

// Analyzer validates //gat: directives.
var Analyzer = &analysis.Analyzer{
	Name: "gatdir",
	Doc: "flags malformed //gat: directives: unknown kinds, suppressions missing their " +
		"mandatory reason, and //gat:hotpath annotations attached to nothing",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		// hotpath directives are only meaningful inside a FuncDecl's
		// doc comment; collect those ranges first.
		type span struct{ lo, hi int }
		var docs []span
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				docs = append(docs, span{
					pass.Fset.Position(fd.Doc.Pos()).Line,
					pass.Fset.Position(fd.Doc.End()).Line,
				})
			}
		}
		inDoc := func(line int) bool {
			for _, s := range docs {
				if s.lo <= line && line <= s.hi {
					return true
				}
			}
			return false
		}

		for _, d := range gatfact.Parse(pass.Fset, file) {
			if !gatfact.Known(d.Kind) {
				pass.Reportf(d.Pos, "unknown //gat: directive %q (vocabulary: nondet-ok, hotpath, alloc-ok)", d.Kind)
				continue
			}
			if gatfact.NeedsReason(d.Kind) && d.Reason == "" {
				pass.Reportf(d.Pos, "//gat:%s needs a reason: //gat:%s <why this exemption is sound>", d.Kind, d.Kind)
				continue
			}
			if d.Kind == gatfact.HotPath && !inDoc(d.Line) {
				pass.Reportf(d.Pos, "//gat:hotpath must appear in a function's doc comment; here it annotates nothing")
			}
		}
	}
	return nil
}
