// Testdata for the gatdir analyzer: the //gat: vocabulary itself is
// policed — unknown kinds, reason-less suppressions, and hotpath
// annotations that attach to nothing are findings. Expectations use
// the want-N offset form because the findings land on comment lines.
package td

import "sort"

//gat:frobnicate the knob
// want-1 `unknown //gat: directive "frobnicate"`

//gat:nondet-ok
// want-1 `//gat:nondet-ok needs a reason`

//gat:alloc-ok
// want-1 `//gat:alloc-ok needs a reason`

// A hotpath annotation on a non-function declaration guards nothing.

// want+2 `must appear in a function's doc comment`
//
//gat:hotpath
var dangling = 1

// wellFormed carries a correct annotation set: no findings.
//
//gat:hotpath
func wellFormed() int { return dangling }

// suppress demonstrates a valid, reasoned suppression: no findings.
func suppress(m map[string]int) []string {
	var keys []string
	for k := range m { //gat:nondet-ok testdata: sorted on the next line
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
