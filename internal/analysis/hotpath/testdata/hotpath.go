// Testdata for the hotpath analyzer: the four banned constructs fire
// only inside //gat:hotpath functions, //gat:alloc-ok exempts single
// cold lines, and unannotated functions are out of contract.
package td

type doer interface{ do() }

type impl struct{ n int }

func (impl) do() {}

func sink(any) {}

func cleanup() {}

//gat:hotpath
func closure(n int) func() int {
	f := func() int { return n } // want `function literal`
	return f
}

//gat:hotpath
func deferred() {
	defer cleanup() // want `defer`
}

//gat:hotpath
func mapWrites(m map[int]int, k int) {
	m[k] = 1     // want `write to map`
	m[k] += 2    // want `write to map`
	m[k]++       // want `write to map`
	delete(m, k) // want `write to map`
}

//gat:hotpath
func boxing(v impl) doer {
	var d doer = v // want `box impl into doer`
	d = v          // want `box impl into doer`
	sinkDoer(d)
	sink(v)    // want `box impl into any`
	_ = any(v) // want `box impl into any`
	return v   // want `box impl into doer`
}

//gat:hotpath
func noBoxNeeded(d doer, v impl) doer {
	sinkDoer(d) // interface-to-interface: the box already exists
	sinkImpl(v) // concrete-to-concrete: no conversion
	var x doer  // declaration without value: nothing boxed
	x = d       // interface into interface
	return x
}

func sinkDoer(doer) {}

func sinkImpl(impl) {}

//gat:hotpath
func clean(xs []int, ys []impl) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	ys = append(ys, impl{n: s}) // append of concrete values: fine
	_ = ys
	return s
}

//gat:hotpath
func exempted(m map[int]int) {
	//gat:alloc-ok testdata: cold path, demonstrating the exemption
	m[0] = 1
	m[1] = 2 // want `write to map`
}

// unannotated uses every banned construct: out of contract, silent.
func unannotated(m map[int]int, v impl) {
	defer cleanup()
	m[0] = 1
	_ = func() {}
	sink(v)
}

// miniArena mirrors the engine's arena allocators: a hot bump-pointer
// alloc with a cold inline grow branch. make itself is not a banned
// construct (amortized chunk growth is the arena design), but
// bookkeeping on the grow branch still needs a line-scoped exemption,
// and the reset path gets no blanket pass just because it runs at a
// run boundary.
type miniArena struct {
	cur     []int
	idx     int
	chunks  map[int]int
	onReset func()
}

//gat:hotpath
func (a *miniArena) alloc() *int {
	if a.idx == len(a.cur) {
		a.cur = make([]int, 256) // chunk grow: amortized, not a banned construct
		a.idx = 0
		//gat:alloc-ok testdata: one registry write per chunk, amortized over its records
		a.chunks[len(a.chunks)] = len(a.cur)
	}
	p := &a.cur[a.idx]
	a.idx++
	return p
}

//gat:hotpath
func (a *miniArena) reset() {
	a.idx = 0
	a.onReset = func() { a.idx = 0 } // want `function literal`
	for k := range a.chunks {
		delete(a.chunks, k) // want `write to map`
	}
}
