// Package hotpath implements the gatvet analyzer that machine-checks
// the engine's allocation-free contract. Functions annotated
// //gat:hotpath — the event-loop core that PR 2 drove to 0 allocs/op —
// must stay free of the constructs whose cost the benchmarks only
// probabilistically catch:
//
//   - function literals (closure allocation, capture boxing);
//   - defer (frame bookkeeping on a path measured in nanoseconds);
//   - map writes (hash+grow machinery; hot-path state lives in slices
//     and rings by design);
//   - conversions of concrete values to interface types (boxing — the
//     allocation behind "interface method costs" the monomorphic heap
//     and packed events exist to avoid).
//
// These are AST-checkable proxies for the 0 allocs/op guarantee: a
// pass here does not prove zero allocations (append can still grow),
// but every construct flagged here is an allocation or scheduling cost
// the hot path must not reacquire silently. Cold branches inside a hot
// function (panic formatting) carry a line-scoped
// //gat:alloc-ok <reason>.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"gat/internal/analysis"
	"gat/internal/analysis/gatfact"
)

// Analyzer enforces the //gat:hotpath contract.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "functions annotated //gat:hotpath must contain no func literals, defer, " +
		"map writes, or concrete-to-interface conversions; exempt cold lines with //gat:alloc-ok <reason>",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		dirs := gatfact.Parse(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !gatfact.IsHotPath(fd) {
				continue
			}
			c := &checker{pass: pass, dirs: dirs, fn: fd}
			c.stmts(fd.Body.List)
		}
	}
	return nil
}

// checker walks one annotated function. It recurses manually (rather
// than ast.Inspect) so it can stop at nested function literals: the
// literal itself is the finding, and its body belongs to a different
// (colder) execution context.
type checker struct {
	pass *analysis.Pass
	dirs []gatfact.Directive
	fn   *ast.FuncDecl
}

func (c *checker) reportf(pos token.Pos, msg string) {
	if gatfact.Suppressed(c.dirs, gatfact.AllocOK, c.pass.Fset, pos) {
		return
	}
	name := c.fn.Name.Name
	if c.fn.Recv != nil && len(c.fn.Recv.List) == 1 {
		if t := c.pass.TypesInfo.Types[c.fn.Recv.List[0].Type]; t.Type != nil {
			name = types.TypeString(t.Type, types.RelativeTo(c.pass.Pkg)) + "." + name
		}
	}
	c.pass.Reportf(pos, "//gat:hotpath function %s: hot path must not %s", name, msg)
}

func (c *checker) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.DeferStmt:
		c.reportf(s.Pos(), "defer (per-call scheduling cost)")
		c.expr(s.Call)
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.IncDecStmt:
		if ix, ok := s.X.(*ast.IndexExpr); ok && c.isMapIndex(ix) {
			c.reportf(s.Pos(), "write to map (hash and grow machinery)")
		}
		c.expr(s.X)
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.SendStmt:
		c.expr(s.Chan)
		c.expr(s.Value)
	case *ast.ReturnStmt:
		c.returnStmt(s)
	case *ast.BlockStmt:
		c.stmts(s.List)
	case *ast.IfStmt:
		c.stmt(s.Init)
		c.expr(s.Cond)
		c.stmt(s.Body)
		c.stmt(s.Else)
	case *ast.ForStmt:
		c.stmt(s.Init)
		c.expr(s.Cond)
		c.stmt(s.Post)
		c.stmt(s.Body)
	case *ast.RangeStmt:
		c.expr(s.X)
		c.stmt(s.Body)
	case *ast.SwitchStmt:
		c.stmt(s.Init)
		c.expr(s.Tag)
		c.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init)
		c.stmt(s.Assign)
		c.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			c.expr(e)
		}
		c.stmts(s.Body)
	case *ast.SelectStmt:
		c.stmt(s.Body)
	case *ast.CommClause:
		c.stmt(s.Comm)
		c.stmts(s.Body)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	case *ast.GoStmt:
		c.expr(s.Call)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.valueSpec(vs)
				}
			}
		}
	}
}

// assign flags map writes and interface-boxing assignments.
func (c *checker) assign(s *ast.AssignStmt) {
	for _, lhs := range s.Lhs {
		if ix, ok := lhs.(*ast.IndexExpr); ok && c.isMapIndex(ix) {
			c.reportf(s.Pos(), "write to map (hash and grow machinery)")
		}
	}
	// Plain `=` can box the RHS into an interface-typed LHS; `:=`
	// infers the type, so no conversion happens there.
	if s.Tok == token.ASSIGN && len(s.Lhs) == len(s.Rhs) {
		for i, lhs := range s.Lhs {
			lt, ok := c.pass.TypesInfo.Types[lhs]
			if !ok {
				continue
			}
			c.checkBox(s.Rhs[i], lt.Type)
		}
	}
	for _, rhs := range s.Rhs {
		c.expr(rhs)
	}
	for _, lhs := range s.Lhs {
		c.expr(lhs)
	}
}

// valueSpec flags `var x I = concrete` boxing.
func (c *checker) valueSpec(vs *ast.ValueSpec) {
	if vs.Type != nil {
		if dt, ok := c.pass.TypesInfo.Types[vs.Type]; ok {
			for _, v := range vs.Values {
				c.checkBox(v, dt.Type)
			}
		}
	}
	for _, v := range vs.Values {
		c.expr(v)
	}
}

// returnStmt flags concrete returns through interface result types.
func (c *checker) returnStmt(s *ast.ReturnStmt) {
	sig, ok := c.pass.TypesInfo.Defs[c.fn.Name].Type().(*types.Signature)
	if ok && sig.Results().Len() == len(s.Results) {
		for i, r := range s.Results {
			c.checkBox(r, sig.Results().At(i).Type())
		}
	}
	for _, r := range s.Results {
		c.expr(r)
	}
}

// expr walks an expression, flagging func literals, delete() calls and
// boxing call arguments; recursion stops at func literal boundaries.
func (c *checker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.reportf(n.Pos(), "allocate a function literal (pre-bind the closure outside the hot path)")
			return false // the literal's body is a different execution context
		case *ast.CallExpr:
			c.call(n)
			// Children are still walked for nested calls/literals; the
			// call-specific checks above don't consume them.
		}
		return true
	})
}

// call flags delete() (a map write) and concrete-to-interface argument
// boxing.
func (c *checker) call(call *ast.CallExpr) {
	// Builtins: delete is a map write; the rest (append, len, panic...)
	// have no interface parameters to box into — panic's argument is a
	// deliberate exception, cold by definition... but still an
	// allocation, so it is NOT exempted here: annotate the line.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if b.Name() == "delete" {
				c.reportf(call.Pos(), "write to map (delete)")
			}
			return
		}
	}
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion T(x).
		if len(call.Args) == 1 {
			c.checkBox(call.Args[0], tv.Type)
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		c.checkBox(arg, pt)
	}
}

// checkBox reports when a concrete-typed value is converted to an
// interface type — the boxing allocation.
func (c *checker) checkBox(val ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	vt, ok := c.pass.TypesInfo.Types[val]
	if !ok || vt.Type == nil {
		return
	}
	if types.IsInterface(vt.Type) {
		return // interface-to-interface carries the existing box
	}
	if b, ok := vt.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	c.reportf(val.Pos(), "box "+types.TypeString(vt.Type, types.RelativeTo(c.pass.Pkg))+
		" into "+types.TypeString(target, types.RelativeTo(c.pass.Pkg))+" (interface conversion allocates)")
}

// isMapIndex reports whether ix indexes a map.
func (c *checker) isMapIndex(ix *ast.IndexExpr) bool {
	tv, ok := c.pass.TypesInfo.Types[ix.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}
