package hotpath_test

import (
	"testing"

	"gat/internal/analysis/analysistest"
	"gat/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	diags := analysistest.Run(t, hotpath.Analyzer, "testdata")
	if len(diags) == 0 {
		t.Fatal("testdata produced no findings; the failing direction is untested")
	}
}
