// Package analysistest runs one analyzer over a testdata directory and
// checks its findings against `// want` expectations embedded in the
// sources — the same convention as golang.org/x/tools'
// go/analysis/analysistest, rebuilt over the local framework.
//
// Each line that should produce findings carries a trailing comment:
//
//	for k := range m { // want `range over map`
//
// with one double- or back-quoted regular expression per expected
// finding. When the finding lands on a line that is itself a comment
// (a malformed //gat: directive, say), the expectation cannot share
// the line; `// want-1` / `// want+2` anchor it N lines away instead.
//
// The test fails on unexpected findings, on unmatched expectations,
// and on analyzer errors — so every testdata file proves both
// directions: the analyzer fires where it must and stays quiet where
// it must.
package analysistest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"gat/internal/analysis"
)

// wantRe extracts the quoted patterns of one want comment.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// wantHead matches the want keyword with its optional line offset.
var wantHead = regexp.MustCompile(`^want([+-]\d+)? `)

// expectation is one `// want` pattern awaiting a finding.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads dir's Go files as one package, applies a, and enforces the
// `// want` expectations. It returns the findings for additional
// assertions.
func Run(t *testing.T, a *analysis.Analyzer, dir string) []analysis.Diagnostic {
	t.Helper()

	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no testdata in %s: %v", dir, err)
	}
	sort.Strings(matches)
	pkg, err := analysis.LoadFiles("gatvet.test/"+filepath.Base(dir), matches...)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}

	diags, err := analysis.RunAnalyzer(a, pkg)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	expects := expectations(t, pkg)
	for _, d := range diags {
		found := false
		for _, e := range expects {
			if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected finding: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected finding matching %s, got none", filepath.Base(e.file), e.line, e.raw)
		}
	}
	return diags
}

// expectations parses every `// want` comment in the package.
func expectations(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				out = append(out, parseWant(t, pkg, c)...)
			}
		}
	}
	return out
}

func parseWant(t *testing.T, pkg *analysis.Package, c *ast.Comment) []*expectation {
	t.Helper()
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	head := wantHead.FindStringSubmatch(text)
	if head == nil {
		return nil
	}
	rest := text[len(head[0]):]
	offset := 0
	if head[1] != "" {
		offset, _ = strconv.Atoi(head[1])
	}
	pos := pkg.Fset.Position(c.Pos())
	pos.Line += offset
	var out []*expectation
	for _, q := range wantRe.FindAllString(rest, -1) {
		pat := strings.Trim(q, "`")
		if strings.HasPrefix(q, `"`) {
			var err error
			if pat, err = strconv.Unquote(q); err != nil {
				t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
			}
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: q})
	}
	if len(out) == 0 {
		t.Fatalf("%s:%d: want comment with no quoted patterns", pos.Filename, pos.Line)
	}
	return out
}
