// Testdata for the wallclock analyzer: host-clock reads and timers
// must be flagged, pure time arithmetic must not be, and
// //gat:nondet-ok is line-scoped.
package td

import "time"

// now reads the host clock.
func now() time.Time {
	return time.Now() // want `wall-clock call time.Now`
}

// since is Now in disguise.
func since(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock call time.Since`
}

// sleep blocks on the host scheduler.
func sleep() {
	time.Sleep(time.Millisecond) // want `wall-clock call time.Sleep`
}

// timers are wall-clock control flow.
func timer() *time.Timer {
	return time.NewTimer(time.Second) // want `wall-clock call time.NewTimer`
}

// arithmetic on time values never touches the host clock.
func arithmetic(d time.Duration, t time.Time) time.Time {
	return t.Add(d.Round(time.Millisecond))
}

// annotated wall-time sites pass with a reasoned exemption.
func annotated() time.Time {
	return time.Now() //gat:nondet-ok testdata: host-side provenance only
}

// scoping: the exemption above covers nothing here.
func scoped() time.Time {
	return time.Now() // want `wall-clock call time.Now`
}
