package wallclock_test

import (
	"testing"

	"gat/internal/analysis/analysistest"
	"gat/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	diags := analysistest.Run(t, wallclock.Analyzer, "testdata")
	if len(diags) == 0 {
		t.Fatal("testdata produced no findings; the failing direction is untested")
	}
}

// TestScope pins the policy: the engine and sweep packages must stay
// inside the wallclock scope, and host-facing drivers outside it.
func TestScope(t *testing.T) {
	for _, pkg := range []string{
		"gat/internal/sim", "gat/internal/netsim", "gat/internal/gpu",
		"gat/internal/mpi", "gat/internal/charm", "gat/internal/jacobi",
		"gat/internal/jacobi/compute", "gat/internal/app", "gat/internal/machine",
		"gat/internal/bench", "gat/internal/core", "gat/internal/comm",
		"gat/internal/timeline", "gat/internal/sweep", "gat/internal/sweep/store",
	} {
		if !wallclock.Analyzer.AppliesTo(pkg) {
			t.Errorf("engine package %s escaped the wallclock scope", pkg)
		}
	}
	for _, pkg := range []string{"gat/cmd/sweep", "gat/examples/quickstart", "gat/internal/analysis"} {
		if wallclock.Analyzer.AppliesTo(pkg) {
			t.Errorf("host-facing package %s must not be in the wallclock scope", pkg)
		}
	}
}
