// Package wallclock implements the gatvet analyzer that forbids
// wall-clock time in engine packages. Inside the simulator only
// virtual sim.Time is legal: a time.Now() in engine code ties a
// simulated timeline to the host scheduler and silently breaks the
// byte-identical serial-vs-parallel contract. Genuine wall-time call
// sites (the sweep orchestrator's wall_ns accounting) carry a
// line-scoped //gat:nondet-ok <reason>.
package wallclock

import (
	"go/ast"
	"go/types"

	"gat/internal/analysis"
	"gat/internal/analysis/gatfact"
)

// forbidden lists the package-time functions that read or wait on the
// host clock. Constructors of timers are included: a timer in engine
// code is wall-clock control flow by definition.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Analyzer flags host-clock usage in engine packages.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbids time.Now/Since/Sleep (and timer constructors) in engine packages " +
		"where only virtual sim time is legal; annotate genuine wall-time sites //gat:nondet-ok <reason>",
	Scope: []string{
		"gat/internal/sim",
		"gat/internal/pdes",
		"gat/internal/netsim",
		"gat/internal/gpu",
		"gat/internal/mpi",
		"gat/internal/charm",
		"gat/internal/jacobi/...",
		"gat/internal/app",
		"gat/internal/machine",
		"gat/internal/bench",
		"gat/internal/core",
		"gat/internal/comm",
		"gat/internal/timeline",
		"gat/internal/sweep/...",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		dirs := gatfact.Parse(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on time values are pure arithmetic
			}
			if !forbidden[fn.Name()] {
				return true
			}
			if gatfact.Suppressed(dirs, gatfact.NondetOK, pass.Fset, id.Pos()) {
				return true
			}
			pass.Reportf(id.Pos(),
				"wall-clock call time.%s in an engine package (only virtual sim time is deterministic); annotate //gat:nondet-ok <reason> if this is genuinely wall time",
				fn.Name())
			return true
		})
	}
	return nil
}
