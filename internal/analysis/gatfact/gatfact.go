// Package gatfact is the shared vocabulary of //gat: source
// annotations — the facts the gatvet analyzers exchange with the code
// they check. Keeping the vocabulary in one package means every
// analyzer (including future ones: PDES shard-safety, calendar-queue
// ordering) parses annotations identically and gatdir can police the
// whole vocabulary in one place.
//
// The vocabulary:
//
//	//gat:nondet-ok <reason>   allow one nondeterminism finding
//	                           (detmap, wallclock, seedrand) on this
//	                           line or the next
//	//gat:hotpath              subject this function to the hot-path
//	                           allocation contract (hotpath analyzer);
//	                           goes in the function's doc comment
//	//gat:alloc-ok <reason>    allow one hot-path finding on this line
//	                           or the next (cold paths such as panics
//	                           inside an otherwise hot function)
//
// Suppressions are line-scoped by construction: a directive covers
// findings on its own line (trailing comment) or the line directly
// below it (preceding comment), never the whole file or block. The
// reason is mandatory for suppressions — an unexplained exemption is
// itself a finding (gatdir).
package gatfact

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix introduces every directive comment.
const Prefix = "//gat:"

// Kind names one directive in the vocabulary.
type Kind string

const (
	// NondetOK allows one detmap/wallclock/seedrand finding.
	NondetOK Kind = "nondet-ok"
	// HotPath opts a function into the hot-path contract.
	HotPath Kind = "hotpath"
	// AllocOK allows one hotpath finding.
	AllocOK Kind = "alloc-ok"
)

// Known reports whether k is part of the vocabulary.
func Known(k Kind) bool {
	switch k {
	case NondetOK, HotPath, AllocOK:
		return true
	}
	return false
}

// NeedsReason reports whether the directive kind requires a
// justification after the keyword.
func NeedsReason(k Kind) bool { return k == NondetOK || k == AllocOK }

// Directive is one parsed //gat: comment.
type Directive struct {
	Kind   Kind
	Reason string
	Pos    token.Pos
	Line   int
}

// Parse extracts every //gat: directive from the file's comments.
func Parse(fset *token.FileSet, file *ast.File) []Directive {
	var out []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, Prefix)
			if !ok {
				continue
			}
			kind, reason, _ := strings.Cut(text, " ")
			out = append(out, Directive{
				Kind:   Kind(kind),
				Reason: strings.TrimSpace(reason),
				Pos:    c.Pos(),
				Line:   fset.Position(c.Pos()).Line,
			})
		}
	}
	return out
}

// Suppressed reports whether a finding of the given kind at pos is
// covered by a directive: same line (trailing comment) or the line
// immediately above (preceding comment). Directives missing their
// mandatory reason do not suppress — gatdir flags them instead, so a
// bare //gat:nondet-ok cannot silence anything.
func Suppressed(dirs []Directive, kind Kind, fset *token.FileSet, pos token.Pos) bool {
	line := fset.Position(pos).Line
	for _, d := range dirs {
		if d.Kind != kind {
			continue
		}
		if NeedsReason(kind) && d.Reason == "" {
			continue
		}
		if d.Line == line || d.Line == line-1 {
			return true
		}
	}
	return false
}

// IsHotPath reports whether the function declaration is annotated
// //gat:hotpath in its doc comment.
func IsHotPath(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if text, ok := strings.CutPrefix(c.Text, Prefix); ok {
			kind, _, _ := strings.Cut(text, " ")
			if Kind(kind) == HotPath {
				return true
			}
		}
	}
	return false
}
