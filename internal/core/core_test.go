package core

import (
	"strings"
	"testing"

	"gat/internal/charm"
	"gat/internal/gpu"
	"gat/internal/machine"
	"gat/internal/sim"
)

func TestSystemAssembly(t *testing.T) {
	sys := NewSystem(2)
	if sys.RT.NumPEs() != 12 {
		t.Fatalf("PEs = %d, want 12", sys.RT.NumPEs())
	}
	if sys.Engine() == nil || sys.M == nil {
		t.Fatal("incomplete system")
	}
}

func TestSystemFromCustomConfig(t *testing.T) {
	cfg := machine.Summit(1)
	cfg.GPUsPerNode = 4
	sys := NewSystemFrom(cfg)
	if sys.RT.NumPEs() != 4 {
		t.Fatalf("PEs = %d, want 4", sys.RT.NumPEs())
	}
}

func TestTaskArrayRoundTrip(t *testing.T) {
	sys := NewSystem(1)
	ran := 0
	entries := []charm.EntryFn{
		func(el *charm.Elem, ctx *charm.Ctx, m charm.Msg) { ran++ },
	}
	arr := sys.NewTaskArray("t", 12, entries, func(ix charm.Index) any { return nil })
	arr.Broadcast(charm.Msg{Entry: 0})
	sys.Run()
	if ran != 12 {
		t.Fatalf("ran = %d, want 12", ran)
	}
}

func TestTaskGridDims(t *testing.T) {
	sys := NewSystem(1)
	arr := sys.NewTaskGrid("g", [3]int{2, 3, 2}, nil, func(ix charm.Index) any { return nil })
	if arr.Len() != 12 {
		t.Fatalf("len = %d, want 12", arr.Len())
	}
}

func TestChannelBetweenElements(t *testing.T) {
	sys := NewSystem(2)
	var got bool
	entries := []charm.EntryFn{
		func(el *charm.Elem, ctx *charm.Ctx, m charm.Msg) {},
	}
	arr := sys.NewTaskArray("t", 12, entries, func(ix charm.Index) any { return nil })
	a, b := arr.Elems()[0], arr.Elems()[11] // different nodes
	ch := sys.Channel(a, b)
	ch.Recv(b.Flat, 0, func() { got = true })
	ch.Send(a.Flat, 0, 1<<20, sim.FiredSignal(), nil)
	sys.Run()
	if !got {
		t.Fatal("channel transfer did not complete")
	}
}

func TestGPUForFollowsElement(t *testing.T) {
	sys := NewSystem(1)
	arr := sys.NewTaskArray("t", 6, nil, func(ix charm.Index) any { return nil })
	el := arr.Elems()[3]
	if sys.GPUFor(el) != sys.M.GPUOf(3) {
		t.Fatal("GPUFor does not match the element's PE")
	}
}

func TestReportContents(t *testing.T) {
	sys := NewSystem(1)
	entries := []charm.EntryFn{
		func(el *charm.Elem, ctx *charm.Ctx, m charm.Msg) {
			s := sys.GPUFor(el).NewStream("s", gpu.PriorityNormal)
			ctx.LaunchKernelBytes(s, "k", 1<<20)
		},
	}
	arr := sys.NewTaskArray("t", 6, entries, func(ix charm.Index) any { return nil })
	arr.Broadcast(charm.Msg{Entry: 0})
	sys.Run()
	var sb strings.Builder
	sys.Report(&sb)
	out := sb.String()
	for _, want := range []string{"simulated time", "PEs: 6", "GPUs: 6", "kernels: 6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
