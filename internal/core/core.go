// Package core is the top-level API of the library: GPU-aware
// asynchronous tasks. It composes the simulated machine, the
// message-driven tasking runtime, the GPU device model, and the
// GPU-aware communication layer into one System, the entry point the
// examples and tools build on.
//
// The design follows the paper's thesis: decompose work into more tasks
// (chares) than processors, let a message-driven scheduler interleave
// them so communication of one task overlaps computation of others, and
// move device buffers directly between GPUs (Channel API / GPUDirect)
// instead of staging through host memory.
package core

import (
	"fmt"
	"io"

	"gat/internal/charm"
	"gat/internal/comm"
	"gat/internal/gpu"
	"gat/internal/machine"
	"gat/internal/sim"
)

// System is one assembled simulation: a cluster plus a tasking runtime.
type System struct {
	M  *machine.Machine
	RT *charm.Runtime
}

// NewSystem builds a Summit-like cluster with the given node count and
// a runtime with one PE per GPU.
func NewSystem(nodes int) *System {
	return NewSystemOn(machine.MustNew(machine.Summit(nodes)))
}

// NewSystemFrom builds a system over a custom machine configuration.
func NewSystemFrom(cfg machine.Config) *System {
	return NewSystemOn(machine.MustNew(cfg))
}

// NewSystemOn attaches a tasking runtime (one PE per GPU) to an
// existing machine — the path scenario apps use, since the experiment
// layer owns machine construction.
func NewSystemOn(m *machine.Machine) *System {
	return &System{M: m, RT: charm.NewRuntime(m, charm.DefaultOptions())}
}

// Engine returns the simulation engine.
func (s *System) Engine() *sim.Engine { return s.M.Eng }

// Run executes the simulation until no work remains and returns the
// final virtual time.
func (s *System) Run() sim.Time { return s.M.Eng.Run() }

// NewTaskArray creates an overdecomposed task array with odf tasks per
// PE, laid out dims[0]×dims[1]×dims[2] if dims is non-zero, else 1-D.
func (s *System) NewTaskArray(name string, count int, entries []charm.EntryFn, factory func(charm.Index) any) *charm.Array {
	return charm.NewArray(s.RT, name, [3]int{count, 1, 1}, entries, factory)
}

// NewTaskGrid creates a 3-D task array.
func (s *System) NewTaskGrid(name string, dims [3]int, entries []charm.EntryFn, factory func(charm.Index) any) *charm.Array {
	return charm.NewArray(s.RT, name, dims, entries, factory)
}

// GPUFor returns the device bound to the element's current PE.
func (s *System) GPUFor(el *charm.Elem) *gpu.Device {
	return s.M.GPUOf(el.PE())
}

// Channel opens a GPU-aware communication channel between two task
// elements (Channel API, §II-B).
func (s *System) Channel(a, b *charm.Elem) *comm.Channel {
	return comm.NewChannel(s.M.Net,
		comm.Endpoint{Proc: a.Flat, Node: s.M.NodeOf(a.PE())},
		comm.Endpoint{Proc: b.Flat, Node: s.M.NodeOf(b.PE())})
}

// Report writes a short utilization report: per-PE busy time and per-GPU
// kernel counts and busy time.
func (s *System) Report(w io.Writer) {
	now := s.Engine().Now()
	fmt.Fprintf(w, "simulated time: %v, events: %d\n", now, s.Engine().EventsExecuted())
	var peBusy sim.Time
	var tasks uint64
	for i := 0; i < s.RT.NumPEs(); i++ {
		peBusy += s.RT.PE(i).BusyTime()
		tasks += s.RT.PE(i).TasksRun()
	}
	fmt.Fprintf(w, "PEs: %d, tasks run: %d, mean host utilization: %.1f%%\n",
		s.RT.NumPEs(), tasks, pct(peBusy, now, s.RT.NumPEs()))
	var gpuBusy sim.Time
	var kernels uint64
	for _, g := range s.M.GPUs {
		gpuBusy += g.BusyTime()
		kernels += g.KernelsLaunched()
	}
	fmt.Fprintf(w, "GPUs: %d, kernels: %d, mean device utilization: %.1f%%\n",
		len(s.M.GPUs), kernels, pct(gpuBusy, now, len(s.M.GPUs)))
	fmt.Fprintf(w, "network: %d messages, %.1f MB\n", s.M.Net.Messages(), float64(s.M.Net.BytesMoved())/1e6)
}

func pct(busy, horizon sim.Time, n int) float64 {
	if horizon <= 0 || n == 0 {
		return 0
	}
	return 100 * float64(busy) / float64(horizon) / float64(n)
}
