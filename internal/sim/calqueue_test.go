package sim

import "testing"

// refEv and heap4 are an independent 4-ary heap ordered by (at, seq) —
// a from-scratch replica of the queue the engine used before the
// calendar queue, kept here as the order reference. The equivalence
// test below asserts the calendar dequeues in exactly this heap's
// order under a workload that exercises every calendar mechanism, which
// is the property that lets the calendar replace the heap without an
// EngineVersion bump.
type refEv struct {
	at  Time
	seq uint64
}

func refBefore(a, b refEv) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

type heap4 []refEv

func (h *heap4) push(e refEv) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !refBefore(e, q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = e
	*h = q
}

func (h *heap4) pop() refEv {
	q := *h
	min := q[0]
	n := len(q) - 1
	tail := q[n]
	q = q[:n]
	*h = q
	if n == 0 {
		return min
	}
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if refBefore(q[j], q[best]) {
				best = j
			}
		}
		if !refBefore(q[best], tail) {
			break
		}
		q[i] = q[best]
		i = best
	}
	q[i] = tail
	return min
}

// TestCalendarQueueMatchesHeapReference drives the calendar queue and
// the 4-ary reference heap through an identical randomized workload and
// asserts every dequeue matches in both timestamp and sequence number.
// The phases cover the mechanisms that could disagree: dense near-term
// spacing (cursor sweep), same-instant ties (in-bucket seq order),
// sparse far-future pushes (the overflow tier and its drain as the
// window advances), a bimodal mix (events crossing from overflow into
// buckets), population swings plus spacing shifts big enough to force
// geometry rebuilds, and pushes that precede the cached head (curAbs
// moving backward, bucket aliasing).
func TestCalendarQueueMatchesHeapReference(t *testing.T) {
	rng := NewRNG(7)
	var q calQueue
	q.init()
	var ref heap4
	var seq uint64
	var now Time

	push := func(at Time) {
		seq++
		q.push(event{at: at, seq: seq})
		ref.push(refEv{at: at, seq: seq})
	}
	pop := func() {
		if q.n != len(ref) {
			t.Fatalf("size mismatch: calendar %d, reference %d", q.n, len(ref))
		}
		got := q.popMin()
		want := ref.pop()
		if got.at != want.at || got.seq != want.seq {
			t.Fatalf("dequeue mismatch: calendar (%d, %d), reference (%d, %d)",
				got.at, got.seq, want.at, want.seq)
		}
		if got.at < now {
			t.Fatalf("time went backward: %d after %d", got.at, now)
		}
		now = got.at
	}

	// hold runs a push-one-pop-one workload at the given standing depth
	// with gaps drawn from [1, maxGap]; every tiesEvery-th push lands
	// exactly on the current head's timestamp to force (time, seq)
	// tie-breaks, and every farEvery-th push jumps farGap ahead so it
	// enters the overflow tier and later drains back into the window.
	hold := func(depth, iters int, maxGap Time, tiesEvery, farEvery int, farGap Time) {
		for q.n < depth {
			push(now + 1 + Time(rng.Intn(int(maxGap))))
		}
		for i := 0; i < iters; i++ {
			at := now + 1 + Time(rng.Intn(int(maxGap)))
			switch {
			case farEvery > 0 && i%farEvery == farEvery-1:
				at = now + farGap + Time(rng.Intn(int(maxGap)))
			case tiesEvery > 0 && i%tiesEvery == tiesEvery-1 && q.n > 0:
				at = q.head.at // exact tie with the pending minimum
			}
			push(at)
			pop()
		}
	}

	hold(256, 4000, 512, 7, 0, 0)        // dense near-term, frequent ties
	hold(64, 4000, 1<<19, 0, 0, 0)       // sparse: ~0.5ms gaps, width must grow
	hold(512, 6000, 256, 5, 16, 1<<21)   // bimodal: dense base + far-future spikes
	hold(2048, 4000, 1<<14, 3, 9, 1<<22) // deep, mixed, resize boundary crossings
	for q.n > 0 {
		pop()
	}
	if q.resizes == 0 {
		t.Fatalf("workload never triggered a geometry rebuild; stats: %+v", q.stats())
	}
	if seq < 20000 {
		t.Fatalf("workload too small: %d events", seq)
	}
}

// TestCalendarQueueHeadDisplacement pins the push path that replaces
// the cached head: a push earlier than every pending event must become
// the new head immediately (one field read for the engine's peek), and
// the displaced head must re-enter the calendar without losing its
// place in the total order, even when the new head lands in an earlier
// bucket window (curAbs moves backward and surviving entries alias).
func TestCalendarQueueHeadDisplacement(t *testing.T) {
	var q calQueue
	q.init()
	var ref heap4
	seq := uint64(0)
	push := func(at Time) {
		seq++
		q.push(event{at: at, seq: seq})
		ref.push(refEv{at: at, seq: seq})
	}
	// Fill far ahead of t=0, then push successively earlier heads,
	// including one tie pair at the very front.
	for i := 0; i < 300; i++ {
		push(Time(1_000_000 + i*64))
	}
	for _, at := range []Time{500_000, 10_000, 777, 777, 3} {
		push(at)
		if q.head.at != at {
			t.Fatalf("head not displaced: want %d, have %d", at, q.head.at)
		}
	}
	for q.n > 0 {
		got := q.popMin()
		want := ref.pop()
		if got.at != want.at || got.seq != want.seq {
			t.Fatalf("dequeue mismatch after displacement: calendar (%d, %d), reference (%d, %d)",
				got.at, got.seq, want.at, want.seq)
		}
	}
}
