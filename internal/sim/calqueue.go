package sim

import "math/bits"

// calQueue is the timed-event store: a calendar queue (Brown 1988)
// with a far-future overflow tier, tuned for the hold workload of a
// discrete-event simulation — pop the earliest event, push a
// replacement a short while later, O(1) amortized for both.
//
// Events are bucketed by fire time: an event's absolute bucket number
// is uint64(at) >> wshift, and it lands in buckets[abs & mask]. Both
// the bucket count and the width are powers of two, so routing is a
// shift and a mask, never a division. Only events within the current
// window — abs in [curAbs, curAbs+len(buckets)) at push time — go into
// buckets; everything farther out parks in a 4-ary heap (the engine's
// pre-calendar queue) and is drained forward as the window advances.
//
// Determinism: dequeue order is strict (at, seq) — buckets are kept
// sorted by that order, the cursor sweep always takes the lowest
// occupied bucket's first entry, and ties collapse into one bucket
// where insertion order is already (at, seq) order. The structure is
// an exact priority queue, not an approximation: replacing the 4-ary
// heap with it cannot move a timeline, which is why it needs no
// EngineVersion bump.
//
// The earliest event is cached in head, off to the side of the
// buckets: the run loop peeks it on every lane/timed interleave check
// and every Proc.Sleep fast-forward probe, so peeking must cost one
// field read.
type calQueue struct {
	head event // earliest pending event; valid when n > 0
	n    int   // pending events including head

	wshift uint   // bucket width is 1 << wshift nanoseconds
	mask   int    // len(buckets) - 1
	curAbs uint64 // head's absolute bucket number
	nBuck  int    // events stored in buckets (excludes head and overflow)

	buckets   []calBucket
	spare     []calBucket // retired bucket array, recycled by rebuild
	overflow  eventHeap   // events beyond the window at push time
	overSpare []event     // retired overflow backing array, ditto

	// Resize bookkeeping: dequeue timestamps are sampled to estimate
	// the standing population's span, from which width and bucket count
	// are re-derived. All inputs are event-history-determined, so
	// resizing is deterministic.
	pops    int    // pops since the last resize check
	lastAt  Time   // previous popped timestamp
	gapSum  uint64 // summed inter-dequeue gaps this sample window
	spanEst uint64 // EWMA of the per-window span estimate
	drift   int    // consecutive windows wanting a different geometry
	cool    int    // windows until another rebuild is permitted
	coolLen int    // rebuild back-off length; doubles under flapping
	sinceRB int    // windows since the last rebuild
	resizes int
}

// calBucket is one calendar day: events sorted by (at, seq), consumed
// from head. The explicit head index makes the all-ties case — one
// bucket holding thousands of same-instant events — pop in O(1)
// instead of re-copying the chain.
type calBucket struct {
	evs  []event
	head int
}

const (
	// calMinBuckets/calMaxBuckets bound the calendar size; the initial
	// geometry suits the few-hundred-event standing population of a
	// typical run before the first resize sample completes.
	calMinBuckets = 64
	calMaxBuckets = 1 << 16
	calInitShift  = 6 // 64ns buckets
	// calMaxShift caps bucket width at ~1ms: wider buckets than any
	// realistic event spacing just degrade to one giant bucket.
	calMaxShift = 20
	// calResizeInterval is the dequeue sample window between resize
	// checks.
	calResizeInterval = 64
)

// init sets the initial geometry. Called once by NewEngine.
func (q *calQueue) init() {
	q.wshift = calInitShift
	q.buckets = make([]calBucket, calMinBuckets)
	q.mask = calMinBuckets - 1
}

// push inserts ev, replacing the cached head when ev precedes it.
//
//gat:hotpath
func (q *calQueue) push(ev event) {
	if q.n == 0 {
		q.n = 1
		q.head = ev
		q.curAbs = uint64(ev.at) >> q.wshift
		return
	}
	q.n++
	if ev.before(q.head) {
		// The displaced head re-enters the calendar. Its bucket number
		// is >= the new curAbs, so the insert below stays in range; if
		// curAbs moves backward the window shrinks and entries near its
		// old end alias into lower buckets — the cursor sweep's
		// bucket-number check tolerates that (see refill).
		ev, q.head = q.head, ev
		q.curAbs = uint64(q.head.at) >> q.wshift
	}
	q.insert(ev)
}

// insert routes a non-head event into its bucket or the overflow tier.
//
//gat:hotpath
func (q *calQueue) insert(ev event) {
	abs := uint64(ev.at) >> q.wshift
	if abs-q.curAbs >= uint64(len(q.buckets)) {
		q.overflow.pushEv(ev)
		return
	}
	q.nBuck++
	q.bucketInsert(&q.buckets[int(abs)&q.mask], ev)
}

// bucketInsert places ev into b keeping (at, seq) order. The common
// cases are O(1): an empty bucket, or an event sorting after the
// current tail — which is every tie, since seq increases monotonically.
//
//gat:hotpath
func (q *calQueue) bucketInsert(b *calBucket, ev event) {
	evs := b.evs
	n := len(evs)
	if n == 0 || evs[n-1].before(ev) {
		b.evs = append(evs, ev)
		return
	}
	lo, hi := b.head, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if evs[mid].before(ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	evs = append(evs, event{})
	copy(evs[lo+1:], evs[lo:])
	evs[lo] = ev
	b.evs = evs
}

// popMin removes and returns the earliest event.
//
//gat:hotpath
func (q *calQueue) popMin() event {
	ev := q.head
	q.n--
	if q.n > 0 {
		q.refill()
	}
	q.observe(ev.at)
	return ev
}

// refill finds the next earliest event and installs it as head.
//
// The cursor sweep starts at the departing head's bucket and visits
// buckets in calendar order; the first entry whose bucket number
// matches the cursor is the global minimum (buckets are sorted, and
// the overflow tier by invariant holds nothing before the window's
// end). Entries that merely alias into a visited bucket — same slot,
// higher bucket number, possible after the window slid backward over a
// past-inserted head — fail the match and wait for a later sweep.
//
//gat:hotpath
func (q *calQueue) refill() {
	if q.nBuck == 0 {
		// Everything pending is far-future: jump the cursor to the
		// overflow's earliest and pull the new window in behind it.
		ev := q.overflow.popMin()
		q.head = ev
		q.curAbs = uint64(ev.at) >> q.wshift
		q.drainOverflow()
		return
	}
	c := q.curAbs
	for i := 0; i < len(q.buckets); i++ {
		b := &q.buckets[int(c)&q.mask]
		if b.head < len(b.evs) {
			ev := b.evs[b.head]
			if uint64(ev.at)>>q.wshift == c {
				q.takeBucketHead(b)
				q.head = ev
				q.curAbs = c
				q.drainOverflow()
				return
			}
		}
		c++
	}
	q.directSearch()
}

// directSearch is the rare fallback when a full cursor rotation finds
// only aliased (later-window) entries: compare every bucket's first
// entry and the overflow head directly. O(buckets), hit only after the
// window slid backward past its whole population.
func (q *calQueue) directSearch() {
	var best *calBucket
	var bestEv event
	for i := range q.buckets {
		b := &q.buckets[i]
		if b.head < len(b.evs) {
			ev := b.evs[b.head]
			if best == nil || ev.before(bestEv) {
				best, bestEv = b, ev
			}
		}
	}
	if len(q.overflow) > 0 && q.overflow[0].before(bestEv) {
		ev := q.overflow.popMin()
		q.head = ev
		q.curAbs = uint64(ev.at) >> q.wshift
		q.drainOverflow()
		return
	}
	q.takeBucketHead(best)
	q.head = bestEv
	q.curAbs = uint64(bestEv.at) >> q.wshift
	q.drainOverflow()
}

// takeBucketHead consumes b's first entry, releasing its payload
// pointers and recycling the chain's capacity once drained.
//
//gat:hotpath
func (q *calQueue) takeBucketHead(b *calBucket) {
	b.evs[b.head] = event{}
	b.head++
	if b.head == len(b.evs) {
		b.evs = b.evs[:0]
		b.head = 0
	}
	q.nBuck--
}

// drainOverflow moves overflow events that the advancing window now
// covers into their buckets, restoring the invariant that the overflow
// holds nothing before curAbs + len(buckets).
func (q *calQueue) drainOverflow() {
	limit := q.curAbs + uint64(len(q.buckets))
	for len(q.overflow) > 0 && uint64(q.overflow[0].at)>>q.wshift < limit {
		ev := q.overflow.popMin()
		q.nBuck++
		q.bucketInsert(&q.buckets[int(uint64(ev.at)>>q.wshift)&q.mask], ev)
	}
}

// observe samples the dequeue gap and periodically re-derives the
// calendar geometry from it.
//
//gat:hotpath
func (q *calQueue) observe(at Time) {
	q.gapSum += uint64(at - q.lastAt)
	q.lastAt = at
	q.pops++
	if q.pops >= calResizeInterval {
		q.maybeResize()
		q.pops = 0
		q.gapSum = 0
	}
}

// maybeResize re-derives bucket count and width from the sampled
// inter-dequeue spacing. The standing population's span is estimated
// as meanGap * population (each pending event occupies one mean gap of
// the timeline); the bucket count tracks the population so occupancy
// stays near one event per bucket, and the width is chosen so the
// window covers about twice the estimated span — narrow enough for a
// short cursor sweep, wide enough that pushes rarely fall into the
// overflow tier.
//
// Four dampers keep the policy from churning, because a rebuild costs
// more than any geometry error it corrects: the per-window span feeds
// an EWMA rather than being used raw (real workloads alternate dense
// and sparse phases within one iteration, and the raw estimate swings
// an order of magnitude between windows); the count moves only when
// mean occupancy leaves [1/4, 4] and the width only when the target
// drifts two shift steps (a population hovering at a power-of-two
// boundary would otherwise rebuild on every check); an out-of-band
// target must persist for four consecutive windows before the rebuild
// happens; and back-to-back rebuilds enter an exponential back-off —
// a bimodal arrival mix leaves the target flapping between two
// geometries neither of which fits both modes, and without the
// back-off the queue rebuilds forever at the drift period. The
// back-off decays during quiet windows so a genuine later phase shift
// is not penalized for an old flap. All inputs are
// event-history-determined, so the policy is deterministic.
func (q *calQueue) maybeResize() {
	if q.cool > 0 {
		q.cool--
	}
	q.sinceRB++
	span := q.gapSum * uint64(q.n) / calResizeInterval
	if q.spanEst == 0 {
		q.spanEst = span
	} else {
		q.spanEst = (3*q.spanEst + span) / 4
	}
	want := len(q.buckets)
	if q.n > 4*want || 4*q.n < want {
		want = calMinBuckets
		for want < q.n && want < calMaxBuckets {
			want <<= 1
		}
	}
	width := 2 * q.spanEst / uint64(want)
	tw := uint(bits.Len64(width))
	if tw > calMaxShift {
		tw = calMaxShift
	}
	widthStable := tw == q.wshift || tw == q.wshift+1 || tw+1 == q.wshift
	if want == len(q.buckets) && widthStable {
		q.drift = 0
		return
	}
	if q.drift++; q.drift < 4 {
		return
	}
	if q.cool > 0 {
		return
	}
	q.drift = 0
	// A rebuild arriving soon after the back-off expired means the
	// geometry is flapping, not converging: double the back-off. A
	// rebuild after a long quiet stretch is a genuine phase shift and
	// pays only the minimum.
	if q.sinceRB < 8*q.coolLen {
		if q.coolLen < 256 {
			q.coolLen *= 2
		}
	} else {
		q.coolLen = 4
	}
	q.cool = q.coolLen
	q.sinceRB = 0
	q.rebuild(tw, want)
}

// rebuild re-buckets every pending event under a new geometry. The
// cached head stays the head — geometry cannot change order, only
// placement. The retiring bucket array is kept as a spare and its
// per-bucket slices (with their grown capacity) come back on the next
// rebuild, so a same-size rebuild reaches steady state without
// allocating.
func (q *calQueue) rebuild(wshift uint, nb int) {
	q.resizes++
	old := q.buckets
	oldOver := q.overflow
	q.wshift = wshift
	if len(q.spare) == nb {
		q.buckets = q.spare
		q.spare = nil
	} else {
		//gat:alloc-ok cold geometry change, rate-limited by the resize dead band
		q.buckets = make([]calBucket, nb)
	}
	q.mask = nb - 1
	q.overflow = q.overSpare[:0]
	q.overSpare = nil
	q.nBuck = 0
	q.curAbs = uint64(q.head.at) >> wshift
	for i := range old {
		b := &old[i]
		for j := b.head; j < len(b.evs); j++ {
			q.insert(b.evs[j])
		}
		b.evs = b.evs[:0]
		b.head = 0
	}
	q.spare = old
	for _, ev := range oldOver {
		q.insert(ev)
	}
	clear(oldOver)
	q.overSpare = oldOver[:0]
}

// stats snapshots the calendar geometry for Engine.QueueStats.
func (q *calQueue) stats() QueueStats {
	maxLen := 0
	for i := range q.buckets {
		if l := len(q.buckets[i].evs) - q.buckets[i].head; l > maxLen {
			maxLen = l
		}
	}
	return QueueStats{
		Standing:     q.n,
		BucketWidth:  Time(1) << q.wshift,
		Buckets:      len(q.buckets),
		InBuckets:    q.nBuck,
		Overflow:     len(q.overflow),
		MaxBucketLen: maxLen,
		Resizes:      q.resizes,
	}
}
