package sim

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator collects summary statistics over a stream of float64
// samples using Welford's online algorithm.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
	samples  []float64 // retained for percentiles
}

// Add records one sample.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
	a.samples = append(a.samples, x)
}

// N returns the number of samples.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean, or 0 with no samples.
func (a *Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest sample, or 0 with no samples.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample, or 0 with no samples.
func (a *Accumulator) Max() float64 { return a.max }

// Stddev returns the sample standard deviation, or 0 for n < 2.
func (a *Accumulator) Stddev() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// Percentile returns the p-th percentile (0..100) by nearest-rank over
// the retained samples, or 0 with no samples.
func (a *Accumulator) Percentile(p float64) float64 {
	if a.n == 0 {
		return 0
	}
	s := append([]float64(nil), a.samples...)
	sort.Float64s(s)
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// String summarizes the accumulator for logs.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.3g min=%.3g max=%.3g sd=%.3g",
		a.n, a.Mean(), a.Min(), a.Max(), a.Stddev())
}
