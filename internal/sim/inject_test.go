package sim

import (
	"testing"
	"unsafe"
)

// injectRec is the arg record used by the injection tests; the order
// slice pointer lets the static callback log without a closure.
type injectRec struct {
	id  int
	log *[]int
}

func injectFire(_ *Engine, arg unsafe.Pointer) {
	r := (*injectRec)(arg)
	*r.log = append(*r.log, r.id)
}

// TestInjectAtOrder checks the PDES injection contract: events injected
// in sorted order interleave with natively scheduled events in exact
// (time, seq) order, including injection at the current instant (which
// takes the zero-delay lane).
func TestInjectAtOrder(t *testing.T) {
	e := NewEngine()
	var log []int
	recs := make([]injectRec, 6)
	for i := range recs {
		recs[i] = injectRec{id: i, log: &log}
	}
	e.At(10, func() { log = append(log, 100) })
	e.InjectAt(5, injectFire, unsafe.Pointer(&recs[0]))
	e.InjectAt(10, injectFire, unsafe.Pointer(&recs[1])) // after the native event at 10: larger seq
	e.InjectAt(0, injectFire, unsafe.Pointer(&recs[2]))  // current instant: zero-delay lane
	e.RunUntil(10)
	want := []int{2, 0, 100, 1}
	if len(log) != len(want) {
		t.Fatalf("executed %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("executed %v, want %v", log, want)
		}
	}
}

// TestInjectAtPast checks that injecting into the past panics like any
// other scheduling into the past — a PDES window-accounting bug must
// fail loudly, not silently reorder.
func TestInjectAtPast(t *testing.T) {
	e := NewEngine()
	e.At(50, func() {})
	e.RunUntil(50)
	defer func() {
		if recover() == nil {
			t.Fatal("InjectAt into the past did not panic")
		}
	}()
	var r injectRec
	e.InjectAt(10, injectFire, unsafe.Pointer(&r))
}

// TestNextEventTime checks the window-bound query against both event
// stores: the timed queue's cached head and the zero-delay lane (whose
// entries carry the current time).
func TestNextEventTime(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("empty engine reports a pending event")
	}
	e.At(30, func() {})
	if at, ok := e.NextEventTime(); !ok || at != 30 {
		t.Fatalf("NextEventTime = %v,%v, want 30,true", at, ok)
	}
	e.Schedule(0, func() {})
	if at, ok := e.NextEventTime(); !ok || at != 0 {
		t.Fatalf("with a lane event NextEventTime = %v,%v, want 0,true", at, ok)
	}
	e.RunUntil(10)
	if at, ok := e.NextEventTime(); !ok || at != 30 {
		t.Fatalf("after partial run NextEventTime = %v,%v, want 30,true", at, ok)
	}
	e.RunUntil(30)
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("drained engine reports a pending event")
	}
}

// TestRunUntilWindows replays one timeline in a single run and in many
// bounded windows and checks the executed order is identical — the
// window-limited RunUntil contract the PDES layer leans on.
func TestRunUntilWindows(t *testing.T) {
	build := func(e *Engine, log *[]int) {
		id := 0
		for _, at := range []Time{3, 7, 7, 12, 12, 40, 41, 95} {
			at, id := at, id
			e.At(at, func() {
				*log = append(*log, id)
				if at < 50 {
					e.Schedule(5, func() { *log = append(*log, id+100) })
				}
			})
			id++
		}
	}
	var one []int
	e1 := NewEngine()
	build(e1, &one)
	e1.Run()

	var win []int
	e2 := NewEngine()
	build(e2, &win)
	for limit := Time(0); ; limit += 4 {
		e2.RunUntil(limit)
		if e2.Idle() {
			break
		}
	}
	if len(one) != len(win) {
		t.Fatalf("windowed run executed %d events, single run %d", len(win), len(one))
	}
	for i := range one {
		if one[i] != win[i] {
			t.Fatalf("order diverges at %d: windowed %v vs single %v", i, win, one)
		}
	}
}
