package sim

import (
	"fmt"
	"io"
	"sort"
)

// Span is one traced activity interval on a named resource, the
// simulator's equivalent of an Nsight Systems timeline row segment.
type Span struct {
	Resource string
	Label    string
	Start    Time
	End      Time
	Bytes    int64
}

// Tracer records spans for post-run timeline analysis. Tracing is
// opt-in (SetTracer) because large runs emit millions of spans.
type Tracer struct {
	Spans []Span
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Add records a span.
func (t *Tracer) Add(s Span) { t.Spans = append(t.Spans, s) }

// BusyByResource returns total busy time per resource name.
func (t *Tracer) BusyByResource() map[string]Time {
	out := make(map[string]Time)
	for _, s := range t.Spans {
		out[s.Resource] += s.End - s.Start
	}
	return out
}

// WriteCSV emits the spans as CSV (resource,label,start_ns,end_ns,bytes).
func (t *Tracer) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "resource,label,start_ns,end_ns,bytes"); err != nil {
		return err
	}
	for _, s := range t.Spans {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d\n",
			s.Resource, s.Label, int64(s.Start), int64(s.End), s.Bytes); err != nil {
			return err
		}
	}
	return nil
}

// Summary writes per-resource busy time and utilization relative to
// horizon, sorted by resource name.
func (t *Tracer) Summary(w io.Writer, horizon Time) {
	busy := t.BusyByResource()
	names := make([]string, 0, len(busy))
	for n := range busy {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		util := 0.0
		if horizon > 0 {
			util = float64(busy[n]) / float64(horizon)
		}
		fmt.Fprintf(w, "%-24s busy=%-12v util=%5.1f%%\n", n, busy[n], util*100)
	}
}
