package sim

import (
	"fmt"
	"strings"
	"testing"
)

func TestTracerWriteCSV(t *testing.T) {
	tr := NewTracer()
	tr.Add(Span{Resource: "gpu0", Label: "kernel", Start: 10, End: 20, Bytes: 0})
	tr.Add(Span{Resource: "nic0/tx", Label: "xfer", Start: 5, End: 15, Bytes: 1024})
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "resource,label,start_ns,end_ns,bytes\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "gpu0,kernel,10,20,0") || !strings.Contains(out, "nic0/tx,xfer,5,15,1024") {
		t.Fatalf("rows missing: %q", out)
	}
}

func TestTracerSummaryOutput(t *testing.T) {
	tr := NewTracer()
	tr.Add(Span{Resource: "a", Label: "x", Start: 0, End: 50})
	tr.Add(Span{Resource: "b", Label: "x", Start: 0, End: 100})
	var sb strings.Builder
	tr.Summary(&sb, 200)
	out := sb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatalf("summary missing resources: %q", out)
	}
	// b (100/200 = 50%) must appear with its utilization.
	if !strings.Contains(out, "50.0%") {
		t.Fatalf("summary missing utilization: %q", out)
	}
}

// TestTracerSummaryByteStable pins the determinism contract on the
// human-readable summary: with enough resources that Go's randomized
// map iteration order would show through any unsorted path, repeated
// renderings of the same tracer must be byte-identical. Sweep goldens
// and the run cache both hash this output.
func TestTracerSummaryByteStable(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 64; i++ {
		tr.Add(Span{
			Resource: fmt.Sprintf("node%02d/gpu%d", i/4, i%4),
			Label:    "kernel",
			Start:    Time(i * 10),
			End:      Time(i*10 + 7),
		})
	}
	var first string
	for rep := 0; rep < 20; rep++ {
		var sb strings.Builder
		tr.Summary(&sb, 1000)
		if rep == 0 {
			first = sb.String()
			continue
		}
		if sb.String() != first {
			t.Fatalf("summary not byte-stable on repetition %d:\nfirst:\n%s\nnow:\n%s", rep, first, sb.String())
		}
	}
	// The sorted order itself is part of the contract: resource names
	// must appear in ascending order, not insertion or map order.
	lines := strings.Split(strings.TrimRight(first, "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		prev := strings.Fields(lines[i-1])[0]
		cur := strings.Fields(lines[i])[0]
		if prev >= cur {
			t.Fatalf("summary lines out of order: %q before %q", prev, cur)
		}
	}
}

func TestEngineTracerIntegration(t *testing.T) {
	e := NewEngine()
	tr := NewTracer()
	e.SetTracer(tr)
	p := NewPipe(e, "link", 1e9, 0)
	p.Transfer(100)
	e.Run()
	if len(tr.Spans) != 1 {
		t.Fatalf("pipe did not trace: %d spans", len(tr.Spans))
	}
	if tr.Spans[0].Bytes != 100 || tr.Spans[0].Resource != "link" {
		t.Fatalf("bad span: %+v", tr.Spans[0])
	}
	e.SetTracer(nil)
	p.Transfer(100)
	e.Run()
	if len(tr.Spans) != 1 {
		t.Fatal("disabled tracer still recorded")
	}
}

func TestPipeReserve(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, "link", 1e9, 5)
	s1, e1 := p.Reserve(0, 100)
	if s1 != 0 || e1 != 105 {
		t.Fatalf("first reserve = [%v,%v], want [0,105]", s1, e1)
	}
	// Second reservation queues behind the first even when requested
	// earlier than freeAt.
	s2, e2 := p.Reserve(50, 100)
	if s2 != 105 || e2 != 210 {
		t.Fatalf("second reserve = [%v,%v], want [105,210]", s2, e2)
	}
	// A reservation in the past clamps to now.
	e.Schedule(1000, func() {
		s3, _ := p.Reserve(0, 10)
		if s3 != 1000 {
			t.Errorf("past reserve start = %v, want 1000", s3)
		}
	})
	e.Run()
}
