package sim

import "unsafe"

// Signal is a one-shot broadcast: it starts unfired, fires exactly once,
// and wakes every waiting proc and runs every registered callback when it
// does. Waiting on an already-fired signal completes immediately.
//
// Signals are the completion primitive used throughout the simulator:
// GPU events, network transfer completions, and request objects all
// expose Signals.
// Signal stores its first waiter and first callback inline: the common
// case throughout the simulator is exactly one of each (a request with
// one waiting rank, a transfer with one completion callback), and the
// inline slots make that case allocation-free. Registration order is
// preserved — the inline slot is always the earliest registration.
type Signal struct {
	fired     bool
	w0        *Proc
	waiters   []*Proc // second and later waiters
	cb0       func()
	callbacks []func() // second and later callbacks
}

// NewSignal returns an unfired signal.
func NewSignal() *Signal { return &Signal{} }

// firedSignal is the shared already-fired signal. Safe to share across
// engines and goroutines: every Signal method is a pure read once fired
// (Fire is a no-op, Wait returns, OnFire and Chain only schedule).
var firedSignal = &Signal{fired: true}

// FiredSignal returns a signal that has already fired, useful as a
// no-op dependency. The same shared instance is returned every time;
// fired signals are immutable.
func FiredSignal() *Signal { return firedSignal }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire marks the signal fired, schedules all waiting procs to resume at
// the current time, and runs callbacks in registration order. Firing an
// already-fired signal is a no-op.
//
// Waiters are resumed through their pre-bound resume thunks, so firing
// a signal allocates nothing regardless of fan-out.
//
//gat:hotpath
func (s *Signal) Fire(e *Engine) {
	if s.fired {
		return
	}
	s.fired = true
	if s.w0 != nil {
		e.At(e.now, s.w0.resumeFn)
		s.w0 = nil
	}
	waiters := s.waiters
	s.waiters = nil
	for _, p := range waiters {
		e.At(e.now, p.resumeFn)
	}
	if s.cb0 != nil {
		e.At(e.now, s.cb0)
		s.cb0 = nil
	}
	callbacks := s.callbacks
	s.callbacks = nil
	for _, cb := range callbacks {
		e.At(e.now, cb)
	}
}

// OnFire registers cb to run (as a scheduled event) when the signal
// fires. If the signal already fired, cb is scheduled immediately.
func (s *Signal) OnFire(e *Engine, cb func()) {
	if s.fired {
		e.At(e.now, cb)
		return
	}
	if s.cb0 == nil && len(s.callbacks) == 0 {
		s.cb0 = cb
		return
	}
	s.callbacks = append(s.callbacks, cb)
}

// Chain arranges for dst to fire (as its own scheduled event) when s
// fires; if s has already fired, dst's firing is scheduled at the
// current time through the allocation-free fire-signal event form.
func (s *Signal) Chain(e *Engine, dst *Signal) {
	if s.fired {
		e.FireAt(e.now, dst)
		return
	}
	s.OnFire(e, func() { dst.Fire(e) })
}

// FireAt schedules s to fire at absolute time t. It is the
// allocation-free form of At(t, func() { s.Fire(e) }), the completion
// idiom of every transfer model (pipes, NICs, staging): the event
// carries the signal pointer directly instead of a closure.
//
//gat:hotpath
func (e *Engine) FireAt(t Time, s *Signal) { e.push(t, unsafe.Pointer(s), true) }

func (s *Signal) addWaiter(p *Proc) {
	if s.w0 == nil && len(s.waiters) == 0 {
		s.w0 = p
		return
	}
	s.waiters = append(s.waiters, p)
}

// AllOf returns a signal that fires once every input signal has fired.
// With no inputs it returns an already-fired signal.
func AllOf(e *Engine, sigs ...*Signal) *Signal {
	out := NewSignal()
	remaining := 0
	for _, s := range sigs {
		if !s.Fired() {
			remaining++
		}
	}
	if remaining == 0 {
		out.fired = true
		return out
	}
	n := remaining
	for _, s := range sigs {
		if s.Fired() {
			continue
		}
		s.OnFire(e, func() {
			n--
			if n == 0 {
				out.Fire(e)
			}
		})
	}
	return out
}

// Counter fires a signal after a fixed number of Add calls. It is used
// for completion reductions ("all chares reported done").
type Counter struct {
	remaining int
	sig       *Signal
}

// NewCounter returns a counter that fires after n calls to Add. n must
// be positive.
func NewCounter(n int) *Counter {
	if n <= 0 {
		panic("sim: counter needs positive count")
	}
	return &Counter{remaining: n, sig: NewSignal()}
}

// Add decrements the counter by one and fires the signal at zero.
// Calling Add more times than the initial count panics: it indicates a
// double-completion bug in the caller.
func (c *Counter) Add(e *Engine) {
	if c.remaining <= 0 {
		panic("sim: counter over-released")
	}
	c.remaining--
	if c.remaining == 0 {
		c.sig.Fire(e)
	}
}

// Remaining returns the number of outstanding Add calls.
func (c *Counter) Remaining() int { return c.remaining }

// Done returns the signal fired when the count reaches zero.
func (c *Counter) Done() *Signal { return c.sig }

// Queue is a FIFO queue with blocking Pop for procs. Push may be called
// from event or proc context.
//
// Items live in a slice with an explicit head index rather than being
// re-sliced off the front: re-slicing leaks capacity with every pop, so
// a steady push/pop cycle would reallocate continuously. With the head
// index the backing array is reused and the steady state allocates
// nothing. Waiters are woken through their pre-bound resume thunks and
// removed by copy-down for the same reason.
type Queue[T any] struct {
	items   []T
	head    int // index of the queue front within items
	waiters []*Proc
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] { return &Queue[T]{} }

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

// Push appends v and wakes the longest-waiting proc, if any. Wakeups
// are one-per-push: a push never wakes more than one waiter, and a
// woken waiter that finds the queue emptied (an event callback stole
// the item via TryPop) re-enters the wait list at the tail.
//
//gat:hotpath
func (q *Queue[T]) Push(e *Engine, v T) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		p := q.waiters[0]
		copy(q.waiters, q.waiters[1:])
		q.waiters = q.waiters[:len(q.waiters)-1]
		e.At(e.now, p.resumeFn)
	}
}

// TryPop removes and returns the head item if present.
//
//gat:hotpath
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if q.head == len(q.items) {
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero // release the slot for GC
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v, true
}

// Pop blocks the proc until an item is available, then removes and
// returns the head item.
func (q *Queue[T]) Pop(p *Proc) T {
	for {
		if v, ok := q.TryPop(); ok {
			return v
		}
		q.waiters = append(q.waiters, p)
		p.park()
	}
}
