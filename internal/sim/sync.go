package sim

import "unsafe"

// sigCB is one registered completion action, packed exactly like an
// event payload: fn == nil fires (*Signal)(arg), arg == nil calls the
// func() in fn, both non-nil calls the ArgFunc in fn with arg. The
// zero value means "no callback registered".
type sigCB struct {
	fn  unsafe.Pointer
	arg unsafe.Pointer
}

// Signal is a one-shot broadcast: it starts unfired, fires exactly once,
// and wakes every waiting proc and runs every registered callback when it
// does. Waiting on an already-fired signal completes immediately.
//
// Signals are the completion primitive used throughout the simulator:
// GPU events, network transfer completions, and request objects all
// expose Signals.
// Signal stores its first waiter and first two callbacks inline: one
// each is the common case throughout the simulator (a request with one
// waiting rank, a transfer with one completion callback), and two
// callbacks is the next most common (an accounting hook plus the
// transfer start on one gate signal), so the inline slots make both
// allocation-free. Registration order is preserved — the inline slots
// are always the earliest registrations.
type Signal struct {
	fired     bool
	w0        *Proc
	waiters   []*Proc // second and later waiters
	ga        *waitAll
	cb0, cb1  sigCB
	callbacks []sigCB // third and later callbacks
}

// NewSignal returns an unfired signal.
func NewSignal() *Signal { return &Signal{} }

// NewSignal returns an unfired signal allocated from the engine's
// arena: it costs a pointer bump, and it is reclaimed wholesale when
// the engine's arenas are reset or discarded. Use it for run-transient
// completion signals; a signal that must outlive the engine still goes
// through the package-level NewSignal.
//
//gat:hotpath
func (e *Engine) NewSignal() *Signal { return e.sigs.New() }

// firedSignal is the shared already-fired signal. Safe to share across
// engines and goroutines: every Signal method is a pure read once fired
// (Fire is a no-op, Wait returns, OnFire and Chain only schedule).
var firedSignal = &Signal{fired: true}

// FiredSignal returns a signal that has already fired, useful as a
// no-op dependency. The same shared instance is returned every time;
// fired signals are immutable.
func FiredSignal() *Signal { return firedSignal }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire marks the signal fired, schedules all waiting procs to resume at
// the current time, and runs callbacks in registration order. Firing an
// already-fired signal is a no-op.
//
// Waiters resume through the shared procResume dispatch and callbacks
// are re-queued in their stored payload form, so firing a signal
// allocates nothing regardless of fan-out.
//
//gat:hotpath
func (s *Signal) Fire(e *Engine) {
	if s.fired {
		return
	}
	s.fired = true
	if s.w0 != nil {
		e.push(e.now, procResumePtr, unsafe.Pointer(s.w0))
		s.w0 = nil
	}
	waiters := s.waiters
	s.waiters = nil
	for _, p := range waiters {
		e.push(e.now, procResumePtr, unsafe.Pointer(p))
	}
	if g := s.ga; g != nil {
		// Group wait: decrement at fire time, in the waiter slot of the
		// push order, so the group's single resume is pushed at exactly
		// the position a plain waiter's resume would occupy on the last
		// signal to fire (see Proc.WaitAll).
		s.ga = nil
		g.n--
		if g.n == 0 {
			e.push(e.now, procResumePtr, unsafe.Pointer(g.p))
		}
	}
	if s.cb0 != (sigCB{}) {
		e.push(e.now, s.cb0.fn, s.cb0.arg)
		s.cb0 = sigCB{}
	}
	if s.cb1 != (sigCB{}) {
		e.push(e.now, s.cb1.fn, s.cb1.arg)
		s.cb1 = sigCB{}
	}
	callbacks := s.callbacks
	s.callbacks = nil
	for _, cb := range callbacks {
		e.push(e.now, cb.fn, cb.arg)
	}
}

// addCB appends a callback in registration order, filling the inline
// slots first.
func (s *Signal) addCB(cb sigCB) {
	if len(s.callbacks) == 0 {
		if s.cb0 == (sigCB{}) {
			s.cb0 = cb
			return
		}
		if s.cb1 == (sigCB{}) {
			s.cb1 = cb
			return
		}
	}
	s.callbacks = append(s.callbacks, cb)
}

// OnFire registers cb to run (as a scheduled event) when the signal
// fires. If the signal already fired, cb is scheduled immediately.
func (s *Signal) OnFire(e *Engine, cb func()) {
	if s.fired {
		e.At(e.now, cb)
		return
	}
	s.addCB(sigCB{fn: fnToPtr(cb)})
}

// OnFireArg registers a static callback with a record argument, the
// allocation-free form of OnFire for arena-allocated records: the
// (fn, arg) pair is stored and later scheduled verbatim, no closure is
// created at any point. arg must be non-nil — a nil arg would make the
// stored pair ambiguous with the other payload forms.
//
//gat:hotpath
func (s *Signal) OnFireArg(e *Engine, fn ArgFunc, arg unsafe.Pointer) {
	if arg == nil {
		panic("sim: OnFireArg requires a non-nil arg")
	}
	if s.fired {
		e.push(e.now, argFnToPtr(fn), arg)
		return
	}
	s.addCB(sigCB{fn: argFnToPtr(fn), arg: arg})
}

// Chain arranges for dst to fire (as its own scheduled event) when s
// fires; if s has already fired, dst's firing is scheduled at the
// current time. Either way the link is carried in the fire-signal
// payload form, so chaining allocates nothing.
func (s *Signal) Chain(e *Engine, dst *Signal) {
	if s.fired {
		e.FireAt(e.now, dst)
		return
	}
	s.addCB(sigCB{arg: unsafe.Pointer(dst)})
}

// FireAt schedules s to fire at absolute time t. It is the
// allocation-free form of At(t, func() { s.Fire(e) }), the completion
// idiom of every transfer model (pipes, NICs, staging): the event
// carries the signal pointer directly instead of a closure.
//
//gat:hotpath
func (e *Engine) FireAt(t Time, s *Signal) { e.push(t, nil, unsafe.Pointer(s)) }

// delayOp carries one AfterSignal link: when the source signal fires,
// the op schedules its out signal to fire d later.
type delayOp struct {
	d   Time
	out Signal
}

// delayOpFire is the ArgFunc behind AfterSignal.
func delayOpFire(e *Engine, arg unsafe.Pointer) {
	op := (*delayOp)(arg)
	e.FireAt(e.now+op.d, &op.out)
}

// AfterSignal returns a signal that fires d after sig fires. A
// non-positive delay returns sig itself. The link record comes from the
// engine's arena, so a delay chain costs no per-hop heap allocation.
func (e *Engine) AfterSignal(sig *Signal, d Time) *Signal {
	if d <= 0 {
		return sig
	}
	op := e.delayOps.New()
	op.d = d
	sig.OnFireArg(e, delayOpFire, unsafe.Pointer(op))
	return &op.out
}

func (s *Signal) addWaiter(p *Proc) {
	if s.w0 == nil && len(s.waiters) == 0 {
		s.w0 = p
		return
	}
	s.waiters = append(s.waiters, p)
}

// AllOf returns a signal that fires once every input signal has fired.
// With no inputs it returns an already-fired signal.
func AllOf(e *Engine, sigs ...*Signal) *Signal {
	out := NewSignal()
	remaining := 0
	for _, s := range sigs {
		if !s.Fired() {
			remaining++
		}
	}
	if remaining == 0 {
		out.fired = true
		return out
	}
	n := remaining
	for _, s := range sigs {
		if s.Fired() {
			continue
		}
		s.OnFire(e, func() {
			n--
			if n == 0 {
				out.Fire(e)
			}
		})
	}
	return out
}

// Counter fires a signal after a fixed number of Add calls. It is used
// for completion reductions ("all chares reported done").
type Counter struct {
	remaining int
	sig       *Signal
}

// NewCounter returns a counter that fires after n calls to Add. n must
// be positive.
func NewCounter(n int) *Counter {
	if n <= 0 {
		panic("sim: counter needs positive count")
	}
	return &Counter{remaining: n, sig: NewSignal()}
}

// Add decrements the counter by one and fires the signal at zero.
// Calling Add more times than the initial count panics: it indicates a
// double-completion bug in the caller.
func (c *Counter) Add(e *Engine) {
	if c.remaining <= 0 {
		panic("sim: counter over-released")
	}
	c.remaining--
	if c.remaining == 0 {
		c.sig.Fire(e)
	}
}

// Remaining returns the number of outstanding Add calls.
func (c *Counter) Remaining() int { return c.remaining }

// Done returns the signal fired when the count reaches zero.
func (c *Counter) Done() *Signal { return c.sig }

// Queue is a FIFO queue with blocking Pop for procs. Push may be called
// from event or proc context.
//
// Items live in a slice with an explicit head index rather than being
// re-sliced off the front: re-slicing leaks capacity with every pop, so
// a steady push/pop cycle would reallocate continuously. With the head
// index the backing array is reused and the steady state allocates
// nothing. Waiters are woken through the shared procResume dispatch and
// removed by copy-down for the same reason.
type Queue[T any] struct {
	items   []T
	head    int // index of the queue front within items
	waiters []*Proc
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] { return &Queue[T]{} }

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

// Push appends v and wakes the longest-waiting proc, if any. Wakeups
// are one-per-push: a push never wakes more than one waiter, and a
// woken waiter that finds the queue emptied (an event callback stole
// the item via TryPop) re-enters the wait list at the tail.
//
//gat:hotpath
func (q *Queue[T]) Push(e *Engine, v T) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		p := q.waiters[0]
		copy(q.waiters, q.waiters[1:])
		q.waiters = q.waiters[:len(q.waiters)-1]
		e.push(e.now, procResumePtr, unsafe.Pointer(p))
	}
}

// TryPop removes and returns the head item if present.
//
//gat:hotpath
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if q.head == len(q.items) {
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero // release the slot for GC
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v, true
}

// Pop blocks the proc until an item is available, then removes and
// returns the head item.
func (q *Queue[T]) Pop(p *Proc) T {
	for {
		if v, ok := q.TryPop(); ok {
			return v
		}
		q.waiters = append(q.waiters, p)
		p.park()
	}
}
