package sim

// Signal is a one-shot broadcast: it starts unfired, fires exactly once,
// and wakes every waiting proc and runs every registered callback when it
// does. Waiting on an already-fired signal completes immediately.
//
// Signals are the completion primitive used throughout the simulator:
// GPU events, network transfer completions, and request objects all
// expose Signals.
type Signal struct {
	fired     bool
	waiters   []*Proc
	callbacks []func()
}

// NewSignal returns an unfired signal.
func NewSignal() *Signal { return &Signal{} }

// FiredSignal returns a signal that has already fired, useful as a
// no-op dependency.
func FiredSignal() *Signal { return &Signal{fired: true} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire marks the signal fired, schedules all waiting procs to resume at
// the current time, and runs callbacks in registration order. Firing an
// already-fired signal is a no-op.
func (s *Signal) Fire(e *Engine) {
	if s.fired {
		return
	}
	s.fired = true
	waiters := s.waiters
	s.waiters = nil
	for _, p := range waiters {
		p := p
		e.Schedule(0, func() { e.resume(p) })
	}
	callbacks := s.callbacks
	s.callbacks = nil
	for _, cb := range callbacks {
		cb := cb
		e.Schedule(0, cb)
	}
}

// OnFire registers cb to run (as a scheduled event) when the signal
// fires. If the signal already fired, cb is scheduled immediately.
func (s *Signal) OnFire(e *Engine, cb func()) {
	if s.fired {
		e.Schedule(0, cb)
		return
	}
	s.callbacks = append(s.callbacks, cb)
}

func (s *Signal) addWaiter(p *Proc) { s.waiters = append(s.waiters, p) }

// AllOf returns a signal that fires once every input signal has fired.
// With no inputs it returns an already-fired signal.
func AllOf(e *Engine, sigs ...*Signal) *Signal {
	out := NewSignal()
	remaining := 0
	for _, s := range sigs {
		if !s.Fired() {
			remaining++
		}
	}
	if remaining == 0 {
		out.fired = true
		return out
	}
	n := remaining
	for _, s := range sigs {
		if s.Fired() {
			continue
		}
		s.OnFire(e, func() {
			n--
			if n == 0 {
				out.Fire(e)
			}
		})
	}
	return out
}

// Counter fires a signal after a fixed number of Add calls. It is used
// for completion reductions ("all chares reported done").
type Counter struct {
	remaining int
	sig       *Signal
}

// NewCounter returns a counter that fires after n calls to Add. n must
// be positive.
func NewCounter(n int) *Counter {
	if n <= 0 {
		panic("sim: counter needs positive count")
	}
	return &Counter{remaining: n, sig: NewSignal()}
}

// Add decrements the counter by one and fires the signal at zero.
// Calling Add more times than the initial count panics: it indicates a
// double-completion bug in the caller.
func (c *Counter) Add(e *Engine) {
	if c.remaining <= 0 {
		panic("sim: counter over-released")
	}
	c.remaining--
	if c.remaining == 0 {
		c.sig.Fire(e)
	}
}

// Remaining returns the number of outstanding Add calls.
func (c *Counter) Remaining() int { return c.remaining }

// Done returns the signal fired when the count reaches zero.
func (c *Counter) Done() *Signal { return c.sig }

// Queue is a FIFO queue with blocking Pop for procs. Push may be called
// from event or proc context.
type Queue[T any] struct {
	items   []T
	waiters []*Proc
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] { return &Queue[T]{} }

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push appends v and wakes one waiting proc, if any.
func (q *Queue[T]) Push(e *Engine, v T) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		p := q.waiters[0]
		q.waiters = q.waiters[1:]
		e.Schedule(0, func() { e.resume(p) })
	}
}

// TryPop removes and returns the head item if present.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Pop blocks the proc until an item is available, then removes and
// returns the head item.
func (q *Queue[T]) Pop(p *Proc) T {
	for {
		if v, ok := q.TryPop(); ok {
			return v
		}
		q.waiters = append(q.waiters, p)
		p.park()
	}
}
