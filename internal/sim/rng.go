package sim

// RNG is a small deterministic pseudo-random generator (splitmix64).
// All stochastic behaviour in the simulator — jitter hooks, randomized
// workloads in examples — draws from an explicitly seeded RNG so that
// runs are reproducible.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn needs positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Jitter returns a duration in [d*(1-frac), d*(1+frac)], used by the
// optional run-to-run variability hooks.
func (r *RNG) Jitter(d Time, frac float64) Time {
	if frac <= 0 {
		return d
	}
	f := 1 + frac*(2*r.Float64()-1)
	return Time(float64(d) * f)
}
