package sim

import (
	"fmt"
	"testing"
)

// runMixedWorkload drives every scheduling primitive — procs with zero
// and positive sleeps, signal waits with fan-out, chained signals,
// FireAt, queue pushes/pops, yields, nested zero-delay chains, and
// duplicate-timestamp timed events — and returns the labels in
// execution order. noLane selects the heap-only reference engine.
func runMixedWorkload(noLane bool) []string {
	e := NewEngine()
	e.noLane = noLane
	var log []string
	rec := func(format string, args ...any) { log = append(log, fmt.Sprintf(format, args...)) }

	sig := NewSignal()
	q := NewQueue[int]()

	for i := 0; i < 4; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(Time(i % 3)) // zero-delay for i=0,3
			rec("p%d-awake@%v", i, p.Now())
			p.Wait(sig)
			rec("p%d-sig@%v", i, p.Now())
			v := q.Pop(p)
			rec("p%d-pop%d@%v", i, v, p.Now())
			p.Yield()
			rec("p%d-done@%v", i, p.Now())
		})
	}

	// Two timed events at the same instant; the first spawns a nested
	// zero-delay chain that must interleave after the second.
	e.Schedule(2, func() {
		rec("t2-a")
		e.Schedule(0, func() {
			rec("t2-a0")
			e.Schedule(0, func() { rec("t2-a00") })
		})
	})
	e.Schedule(2, func() { rec("t2-b") })

	chained := NewSignal()
	sig.Chain(e, chained)
	chained.OnFire(e, func() { rec("chained@%v", e.Now()) })
	e.At(5, func() { rec("t5"); sig.Fire(e) })

	e.Schedule(7, func() {
		for v := 0; v < 4; v++ {
			q.Push(e, v)
		}
		rec("t7-pushed")
	})

	late := NewSignal()
	e.FireAt(9, late)
	late.OnFire(e, func() { rec("t9-fired") })

	e.Run()
	return log
}

// TestLaneHeapOrderingEquivalence asserts the engine's central
// invariant: the zero-delay FIFO lane is purely an optimization.
// Running the same mixed workload with the lane disabled (every event
// through the heap, the pre-lane engine) must execute every event in
// the identical order.
func TestLaneHeapOrderingEquivalence(t *testing.T) {
	fast := runMixedWorkload(false)
	ref := runMixedWorkload(true)
	if len(fast) != len(ref) {
		t.Fatalf("event counts differ: lane=%d heap-only=%d\nlane: %v\nheap: %v",
			len(fast), len(ref), fast, ref)
	}
	for i := range ref {
		if fast[i] != ref[i] {
			t.Fatalf("order diverges at event %d: lane=%q heap-only=%q\nlane: %v\nheap: %v",
				i, fast[i], ref[i], fast, ref)
		}
	}
}

// TestLaneHeapSeqInterleave pins the one case where the lane must defer
// to the heap: a timed event already queued at the current instant has
// a smaller sequence number than a zero-delay event scheduled while
// handling that instant, so it fires first.
func TestLaneHeapSeqInterleave(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(10, func() {
		order = append(order, "A")
		e.Schedule(0, func() { order = append(order, "C") })
	})
	e.Schedule(10, func() { order = append(order, "B") })
	e.Run()
	want := []string{"A", "B", "C"}
	for i, w := range want {
		if i >= len(order) || order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestLaneRing exercises the ring buffer directly through growth and
// wrap-around: interleaved pushes and pops force head past zero before
// a grow re-linearizes the entries.
func TestLaneRing(t *testing.T) {
	var l eventLane
	var got []int
	mk := func(i int) laneEvent {
		return laneEvent{seq: uint64(i), fn: fnToPtr(func() { got = append(got, i) })}
	}
	next := 0
	push := func(k int) {
		for i := 0; i < k; i++ {
			l.push(mk(next))
			next++
		}
	}
	pop := func(k int) {
		for i := 0; i < k; i++ {
			if l.n == 0 {
				t.Fatal("pop on empty lane")
			}
			ptrToFn(l.pop().fn)()
		}
	}
	push(10)
	pop(7)   // head advances to 7
	push(70) // forces a grow with wrapped contents
	pop(l.n)
	for i, v := range got {
		if v != i {
			t.Fatalf("lane order broken at %d: got %v", i, got[:i+1])
		}
	}
	if len(got) != 80 {
		t.Fatalf("ran %d events, want 80", len(got))
	}
	// Vacated slots must not retain closures.
	for i := range l.buf {
		if l.buf[i].fn != nil {
			t.Fatalf("slot %d still holds a payload after drain", i)
		}
	}
}

// TestStopMidLaneBatch stops the engine inside a zero-delay batch; the
// remaining lane events must stay queued, keep the engine non-idle, and
// run on the next Run call.
func TestStopMidLaneBatch(t *testing.T) {
	e := NewEngine()
	var ran []int
	e.Schedule(0, func() { ran = append(ran, 1); e.Stop() })
	e.Schedule(0, func() { ran = append(ran, 2) })
	e.Run()
	if len(ran) != 1 {
		t.Fatalf("ran %v after Stop, want [1]", ran)
	}
	if e.Idle() {
		t.Fatal("engine reports idle with a lane event pending")
	}
	e.Run()
	if len(ran) != 2 || ran[1] != 2 {
		t.Fatalf("ran %v after resume, want [1 2]", ran)
	}
}

// TestRunUntilLeavesLaneBeyondLimit: zero-delay events queued at a time
// past the limit of a later RunUntil call must not run early.
func TestRunUntilLeavesLaneBeyondLimit(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(20, func() {
		e.Schedule(0, func() { ran++ })
		e.Stop()
	})
	e.Run() // stops at t=20 with one lane event pending
	if e.RunUntil(10); ran != 0 {
		t.Fatalf("lane event at t=20 ran under RunUntil(10)")
	}
	if e.Run(); ran != 1 {
		t.Fatalf("lane event did not run on final Run; ran=%d", ran)
	}
}
