package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{1, 2, 3, 4, 5} {
		a.Add(x)
	}
	if a.N() != 5 || a.Mean() != 3 || a.Min() != 1 || a.Max() != 5 {
		t.Fatalf("stats wrong: %v", a.String())
	}
	if sd := a.Stddev(); math.Abs(sd-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev = %v", sd)
	}
}

func TestAccumulatorPercentile(t *testing.T) {
	var a Accumulator
	for i := 1; i <= 100; i++ {
		a.Add(float64(i))
	}
	if p := a.Percentile(50); p != 50 {
		t.Fatalf("p50 = %v, want 50", p)
	}
	if p := a.Percentile(99); p != 99 {
		t.Fatalf("p99 = %v, want 99", p)
	}
	if p := a.Percentile(100); p != 100 {
		t.Fatalf("p100 = %v, want 100", p)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Stddev() != 0 || a.Percentile(50) != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

// Property: mean is always within [min, max].
func TestAccumulatorMeanBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var a Accumulator
		ok := false
		for _, x := range xs {
			// Bound magnitudes so Welford intermediates cannot overflow;
			// simulated metrics are always in this range.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue
			}
			a.Add(x)
			ok = true
		}
		if !ok {
			return true
		}
		const eps = 1e-9
		return a.Mean() >= a.Min()-eps*math.Abs(a.Min())-eps &&
			a.Mean() <= a.Max()+eps*math.Abs(a.Max())+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGJitterBounds(t *testing.T) {
	r := NewRNG(2)
	d := Time(1000)
	for i := 0; i < 1000; i++ {
		j := r.Jitter(d, 0.1)
		if j < 900 || j > 1100 {
			t.Fatalf("jitter out of bounds: %v", j)
		}
	}
	if r.Jitter(d, 0) != d {
		t.Fatal("zero-fraction jitter should return d unchanged")
	}
}

func TestTracerSummary(t *testing.T) {
	tr := NewTracer()
	tr.Add(Span{Resource: "gpu0", Label: "kernel", Start: 0, End: 100})
	tr.Add(Span{Resource: "gpu0", Label: "kernel", Start: 150, End: 250})
	tr.Add(Span{Resource: "nic0", Label: "xfer", Start: 0, End: 50, Bytes: 10})
	busy := tr.BusyByResource()
	if busy["gpu0"] != 200 || busy["nic0"] != 50 {
		t.Fatalf("busy = %v", busy)
	}
}
