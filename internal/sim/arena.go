package sim

// Arena is a typed bump allocator for a run's transient records:
// transfer ops, request handles, and similar objects that are created
// on the event hot path, live until the run ends, and are never freed
// individually. New hands out pointers into chunked backing arrays, so
// the steady-state cost of a record is one pointer bump instead of one
// garbage-collected heap object — and the records of one chunk sit
// contiguously, which the event loop's access pattern rewards.
//
// Records handed out by New must not outlive the next Reset: Reset
// frees every record at once (recycling the chunks, zeroed, for the
// next run), so a *T retained across it is a dangling — silently
// reused — record. The simulator's convention is one arena set per
// Engine (or per component bound to one), reset together at run
// boundaries or simply discarded with the engine.
//
// The zero value is ready to use.
type Arena[T any] struct {
	full  [][]T // fully carved chunks, live since the last Reset
	spare [][]T // zeroed chunks banked by Reset, reused before making new
	cur   []T   // chunk currently being carved
	idx   int   // next free slot in cur
	n     int   // records handed out since the last Reset
}

// arenaChunk is the records-per-chunk granularity. Large enough that
// chunk turnover vanishes from steady-state profiles, small enough that
// an almost-idle arena wastes little.
const arenaChunk = 256

// New returns a pointer to a zeroed record that stays valid until
// Reset. The record is zero-initialized Go memory: embedded Signals,
// slices and pointers start in their zero state exactly as a fresh
// heap allocation would.
//
//gat:hotpath
func (a *Arena[T]) New() *T {
	if a.idx == len(a.cur) {
		a.grow()
	}
	p := &a.cur[a.idx]
	a.idx++
	a.n++
	return p
}

// grow retires the current chunk and installs a fresh one — banked by
// an earlier Reset when possible, so a reset-and-rerun cycle reaches a
// steady state where this path allocates nothing.
func (a *Arena[T]) grow() {
	if a.cur != nil {
		a.full = append(a.full, a.cur)
	}
	if k := len(a.spare); k > 0 {
		a.cur = a.spare[k-1]
		a.spare[k-1] = nil
		a.spare = a.spare[:k-1]
	} else {
		//gat:alloc-ok cold chunk-grow site, one make per arenaChunk records until Reset banks enough chunks
		a.cur = make([]T, arenaChunk)
	}
	a.idx = 0
}

// Allocated returns the number of records handed out since the last
// Reset, for diagnostics and capacity reporting.
func (a *Arena[T]) Allocated() int { return a.n }

// Reset frees every record at once, banking the chunks — zeroed, so
// stale record pointers are released and the next run's records start
// from zero values — for reuse. The caller must guarantee no *T from
// before the Reset is still referenced — for engine-owned arenas that
// means the run is over and its events, signals and handles are all
// dead.
//
//gat:hotpath
func (a *Arena[T]) Reset() {
	for _, c := range a.full {
		clear(c)
	}
	a.spare = append(a.spare, a.full...)
	clear(a.full)
	a.full = a.full[:0]
	if a.idx > 0 {
		clear(a.cur[:a.idx])
	}
	a.idx = 0
	a.n = 0
}
