package sim

import (
	"testing"
	"testing/quick"
)

func TestPipeSingleTransfer(t *testing.T) {
	e := NewEngine()
	// 1 GB/s, 2ns overhead: 1000 bytes -> 1000ns + 2ns.
	p := NewPipe(e, "link", 1e9, 2)
	var doneAt Time = -1
	p.Transfer(1000).OnFire(e, func() { doneAt = e.Now() })
	e.Run()
	if doneAt != 1002 {
		t.Fatalf("transfer done at %v, want 1002", doneAt)
	}
}

func TestPipeSerialization(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, "link", 1e9, 0)
	var first, second Time
	p.Transfer(100).OnFire(e, func() { first = e.Now() })
	p.Transfer(100).OnFire(e, func() { second = e.Now() })
	e.Run()
	if first != 100 || second != 200 {
		t.Fatalf("first=%v second=%v, want 100/200", first, second)
	}
}

func TestPipeIdleGap(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, "link", 1e9, 0)
	var doneAt Time
	e.Schedule(500, func() {
		p.Transfer(100).OnFire(e, func() { doneAt = e.Now() })
	})
	e.Run()
	if doneAt != 600 {
		t.Fatalf("done at %v, want 600 (starts when requested, not at freeAt=0)", doneAt)
	}
}

func TestPipeTransferAfter(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, "link", 1e9, 0)
	ready := NewSignal()
	var doneAt Time
	p.TransferAfter(ready, 100).OnFire(e, func() { doneAt = e.Now() })
	// The pipe must remain available to others while waiting for ready.
	var otherAt Time
	p.Transfer(50).OnFire(e, func() { otherAt = e.Now() })
	e.Schedule(300, func() { ready.Fire(e) })
	e.Run()
	if otherAt != 50 {
		t.Fatalf("other transfer at %v, want 50", otherAt)
	}
	if doneAt != 400 {
		t.Fatalf("gated transfer done at %v, want 400", doneAt)
	}
}

func TestPipeUtilization(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, "link", 1e9, 0)
	p.Transfer(100)
	e.Schedule(400, func() {}) // extend horizon to 400
	e.Run()
	if u := p.Utilization(); u != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}

// Property: N back-to-back transfers of equal size complete at exactly
// N * (overhead + size/bw); serialization never loses or overlaps time.
func TestPipeSerializationProperty(t *testing.T) {
	f := func(n uint8, size uint16) bool {
		count := int(n)%16 + 1
		bytes := int64(size) + 1
		e := NewEngine()
		p := NewPipe(e, "link", 1e9, 3)
		var last Time
		for i := 0; i < count; i++ {
			p.Transfer(bytes).OnFire(e, func() { last = e.Now() })
		}
		e.Run()
		per := 3 + DurationOf(bytes, 1e9)
		return last == Time(count)*per
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPipeReserveClampsPastEarliest pins the Reserve contract: an
// earliest in the past is clamped to Now() rather than backdating the
// occupancy window (or panicking) — multi-stage cut-through callers
// may compute stage starts from upstream windows that have already
// elapsed.
func TestPipeReserveClampsPastEarliest(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, "link", 1e9, 0)
	e.Schedule(500, func() {
		start, end := p.Reserve(100, 200) // earliest 100 is 400ns in the past
		if start != 500 {
			t.Errorf("Reserve clamped start to %v, want Now()=500", start)
		}
		if end != 700 {
			t.Errorf("Reserve end = %v, want 700", end)
		}
	})
	e.Run()
	// A second reservation still queues behind the clamped window.
	e.Schedule(0, func() {
		if start, _ := p.Reserve(0, 100); start != 700 {
			t.Errorf("follow-up Reserve start = %v, want 700 (behind the clamped window)", start)
		}
	})
	e.Run()
}

func TestPipeZeroBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPipe with zero bandwidth did not panic")
		}
	}()
	NewPipe(NewEngine(), "bad", 0, 0)
}
