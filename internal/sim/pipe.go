package sim

// Pipe models a serialized bandwidth resource: a DMA copy engine, a NIC
// injection port, or a host-interconnect link. Transfers are served in
// request order; each occupies the pipe for overhead + bytes/bandwidth.
//
// Serialization is modelled with busy-until bookkeeping rather than an
// explicit server process, which keeps a transfer to two events.
type Pipe struct {
	eng         *Engine
	name        string
	bytesPerSec float64
	overhead    Time // fixed per-transfer setup cost
	freeAt      Time // pipe is busy until this instant

	busyAccum Time // total busy time, for utilization reporting
}

// NewPipe returns a pipe with the given bandwidth (bytes/second) and
// fixed per-transfer overhead. Bandwidth must be positive.
func NewPipe(e *Engine, name string, bytesPerSec float64, overhead Time) *Pipe {
	if bytesPerSec <= 0 {
		panic("sim: pipe needs positive bandwidth")
	}
	return &Pipe{eng: e, name: name, bytesPerSec: bytesPerSec, overhead: overhead}
}

// Name returns the pipe's name.
func (pp *Pipe) Name() string { return pp.name }

// Bandwidth returns the pipe's bandwidth in bytes per second.
func (pp *Pipe) Bandwidth() float64 { return pp.bytesPerSec }

// BusyTime returns the cumulative time the pipe has spent transferring.
func (pp *Pipe) BusyTime() Time { return pp.busyAccum }

// FreeAt returns the earliest instant a new transfer could start.
func (pp *Pipe) FreeAt() Time {
	if pp.freeAt < pp.eng.Now() {
		return pp.eng.Now()
	}
	return pp.freeAt
}

// Transfer reserves the pipe for bytes starting no earlier than now and
// returns a signal fired when the transfer completes. A zero-byte
// transfer still pays the per-transfer overhead.
func (pp *Pipe) Transfer(bytes int64) *Signal {
	return pp.TransferAfter(FiredSignal(), bytes)
}

// TransferAfter is like Transfer but the transfer cannot start before
// ready fires. The pipe is reserved only once ready fires, so other
// transfers may proceed in the meantime.
func (pp *Pipe) TransferAfter(ready *Signal, bytes int64) *Signal {
	done := NewSignal()
	ready.OnFire(pp.eng, func() {
		start := pp.FreeAt()
		dur := pp.overhead + DurationOf(bytes, pp.bytesPerSec)
		pp.freeAt = start + dur
		pp.busyAccum += dur
		pp.eng.FireAt(pp.freeAt, done)
		if tr := pp.eng.tracer; tr != nil {
			tr.Add(Span{Resource: pp.name, Label: "xfer", Start: start, End: pp.freeAt, Bytes: bytes})
		}
	})
	return done
}

// Reserve books the pipe for bytes starting no earlier than earliest,
// updating the busy-until bookkeeping, and returns the occupancy window.
// It is a synchronous primitive for callers that compose multi-stage
// transfers (e.g. cut-through network paths); most callers should use
// Transfer instead. An earliest in the past is clamped to Now(): a
// reservation can never backdate occupancy, so a stage computed from a
// stale upstream start time still books forward-looking time only.
func (pp *Pipe) Reserve(earliest Time, bytes int64) (start, end Time) {
	if earliest < pp.eng.Now() {
		earliest = pp.eng.Now()
	}
	start = earliest
	if pp.freeAt > start {
		start = pp.freeAt
	}
	dur := pp.overhead + DurationOf(bytes, pp.bytesPerSec)
	end = start + dur
	pp.freeAt = end
	pp.busyAccum += dur
	if tr := pp.eng.tracer; tr != nil {
		tr.Add(Span{Resource: pp.name, Label: "xfer", Start: start, End: end, Bytes: bytes})
	}
	return start, end
}

// Utilization returns busy time divided by elapsed time since epoch.
func (pp *Pipe) Utilization() float64 {
	now := pp.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(pp.busyAccum) / float64(now)
}
