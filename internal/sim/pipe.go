package sim

import "unsafe"

// Pipe models a serialized bandwidth resource: a DMA copy engine, a NIC
// injection port, or a host-interconnect link. Transfers are served in
// request order; each occupies the pipe for overhead + bytes/bandwidth.
//
// Serialization is modelled with busy-until bookkeeping rather than an
// explicit server process, which keeps a transfer to two events.
type Pipe struct {
	eng         *Engine
	name        string
	bytesPerSec float64
	overhead    Time // fixed per-transfer setup cost
	freeAt      Time // pipe is busy until this instant

	busyAccum Time // total busy time, for utilization reporting

	// Iterative workloads push the same few transfer sizes through a
	// pipe every step; the two most recent distinct sizes memoize the
	// float division in duration. Exact values: a hit returns the very
	// Time a miss computed. dur == 0 marks an empty slot (a zero-byte
	// transfer recomputes, harmlessly).
	memoBytes [2]int64
	memoDur   [2]Time
}

// duration returns overhead + bytes/bandwidth through the memo.
//
//gat:hotpath
func (pp *Pipe) duration(bytes int64) Time {
	if pp.memoBytes[0] == bytes && pp.memoDur[0] != 0 {
		return pp.memoDur[0]
	}
	if pp.memoBytes[1] == bytes && pp.memoDur[1] != 0 {
		pp.memoBytes[0], pp.memoBytes[1] = pp.memoBytes[1], pp.memoBytes[0]
		pp.memoDur[0], pp.memoDur[1] = pp.memoDur[1], pp.memoDur[0]
		return pp.memoDur[0]
	}
	dur := pp.overhead + DurationOf(bytes, pp.bytesPerSec)
	pp.memoBytes[1] = pp.memoBytes[0]
	pp.memoDur[1] = pp.memoDur[0]
	pp.memoBytes[0] = bytes
	pp.memoDur[0] = dur
	return dur
}

// NewPipe returns a pipe with the given bandwidth (bytes/second) and
// fixed per-transfer overhead. Bandwidth must be positive.
func NewPipe(e *Engine, name string, bytesPerSec float64, overhead Time) *Pipe {
	if bytesPerSec <= 0 {
		panic("sim: pipe needs positive bandwidth")
	}
	return &Pipe{eng: e, name: name, bytesPerSec: bytesPerSec, overhead: overhead}
}

// Name returns the pipe's name.
func (pp *Pipe) Name() string { return pp.name }

// Bandwidth returns the pipe's bandwidth in bytes per second.
func (pp *Pipe) Bandwidth() float64 { return pp.bytesPerSec }

// BusyTime returns the cumulative time the pipe has spent transferring.
func (pp *Pipe) BusyTime() Time { return pp.busyAccum }

// FreeAt returns the earliest instant a new transfer could start.
func (pp *Pipe) FreeAt() Time {
	if pp.freeAt < pp.eng.Now() {
		return pp.eng.Now()
	}
	return pp.freeAt
}

// Transfer reserves the pipe for bytes starting no earlier than now and
// returns a signal fired when the transfer completes. A zero-byte
// transfer still pays the per-transfer overhead.
func (pp *Pipe) Transfer(bytes int64) *Signal {
	return pp.TransferAfter(FiredSignal(), bytes)
}

// pipeOp is one pending TransferAfter: the pipe and byte count wait in
// the record until the ready signal fires, then the reservation is made
// and done is scheduled. Allocated from the engine's arena.
type pipeOp struct {
	pp    *Pipe
	bytes int64
	done  Signal
}

// pipeOpStart is the ArgFunc run when a pipeOp's ready signal fires.
func pipeOpStart(_ *Engine, arg unsafe.Pointer) {
	op := (*pipeOp)(arg)
	pp := op.pp
	start := pp.FreeAt()
	dur := pp.duration(op.bytes)
	pp.freeAt = start + dur
	pp.busyAccum += dur
	pp.eng.FireAt(pp.freeAt, &op.done)
	if tr := pp.eng.tracer; tr != nil {
		tr.Add(Span{Resource: pp.name, Label: "xfer", Start: start, End: pp.freeAt, Bytes: op.bytes})
	}
}

// TransferAfter is like Transfer but the transfer cannot start before
// ready fires. The pipe is reserved only once ready fires, so other
// transfers may proceed in the meantime. The pending transfer lives in
// an arena record, so the steady state allocates nothing.
//
//gat:hotpath
func (pp *Pipe) TransferAfter(ready *Signal, bytes int64) *Signal {
	op := pp.eng.pipeOps.New()
	op.pp = pp
	op.bytes = bytes
	ready.OnFireArg(pp.eng, pipeOpStart, unsafe.Pointer(op))
	return &op.done
}

// Reserve books the pipe for bytes starting no earlier than earliest,
// updating the busy-until bookkeeping, and returns the occupancy window.
// It is a synchronous primitive for callers that compose multi-stage
// transfers (e.g. cut-through network paths); most callers should use
// Transfer instead. An earliest in the past is clamped to Now(): a
// reservation can never backdate occupancy, so a stage computed from a
// stale upstream start time still books forward-looking time only.
func (pp *Pipe) Reserve(earliest Time, bytes int64) (start, end Time) {
	if earliest < pp.eng.Now() {
		earliest = pp.eng.Now()
	}
	start = earliest
	if pp.freeAt > start {
		start = pp.freeAt
	}
	dur := pp.duration(bytes)
	end = start + dur
	pp.freeAt = end
	pp.busyAccum += dur
	if tr := pp.eng.tracer; tr != nil {
		tr.Add(Span{Resource: pp.name, Label: "xfer", Start: start, End: end, Bytes: bytes})
	}
	return start, end
}

// Utilization returns busy time divided by elapsed time since epoch.
func (pp *Pipe) Utilization() float64 {
	now := pp.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(pp.busyAccum) / float64(now)
}
