package sim

import "unsafe"

// laneEvent is one zero-delay event: its action runs at the timestamp
// it was scheduled at (the lane never outlives a clock instant), and
// seq interleaves it with timed events that share that timestamp. The
// payload packing matches event: fn == nil fires (*Signal)(arg),
// arg == nil calls the func() in fn, both non-nil calls the ArgFunc in
// fn with arg.
type laneEvent struct {
	seq uint64
	fn  unsafe.Pointer
	arg unsafe.Pointer
}

// dispatch executes the lane event's action.
func (le laneEvent) dispatch(e *Engine) {
	if le.fn == nil {
		(*Signal)(le.arg).Fire(e)
		return
	}
	if le.arg == nil {
		ptrToFn(le.fn)()
		return
	}
	ptrToArgFn(le.fn)(e, le.arg)
}

// eventLane is a growable ring buffer holding zero-delay events in
// insertion order. The bulk of a simulation's events are zero-delay —
// signal wakeups, queue wakeups, yields, resume thunks — and for those
// (time, seq) order degenerates to plain FIFO, so a ring buffer
// delivers them with one store and one load instead of a heap
// sift-up/sift-down pair.
//
// Invariant: every queued entry was scheduled at the engine's current
// time, so the lane must drain completely before the clock advances.
// The engine's run loop maintains this by always preferring the lane
// unless a timed event at the same timestamp has a smaller sequence
// number.
type eventLane struct {
	buf  []laneEvent // len(buf) is a power of two, or nil before first use
	head int         // index of the oldest entry
	n    int         // live entries
}

// push appends ev at the tail, growing the ring if full.
//
//gat:hotpath
func (l *eventLane) push(ev laneEvent) {
	if l.n == len(l.buf) {
		l.grow()
	}
	l.buf[(l.head+l.n)&(len(l.buf)-1)] = ev
	l.n++
}

// grow doubles the ring, re-linearizing live entries at the front.
func (l *eventLane) grow() {
	newCap := 2 * len(l.buf)
	if newCap == 0 {
		newCap = 64
	}
	buf := make([]laneEvent, newCap)
	for i := 0; i < l.n; i++ {
		buf[i] = l.buf[(l.head+i)&(len(l.buf)-1)]
	}
	l.buf = buf
	l.head = 0
}

// peekSeq returns the sequence number of the oldest entry. The lane
// must be non-empty.
func (l *eventLane) peekSeq() uint64 { return l.buf[l.head].seq }

// pop removes and returns the oldest entry. The vacated slot is zeroed
// so the ring does not retain the entry's payload once it has run. The
// lane must be non-empty.
//
//gat:hotpath
func (l *eventLane) pop() laneEvent {
	ev := l.buf[l.head]
	l.buf[l.head] = laneEvent{}
	l.head = (l.head + 1) & (len(l.buf) - 1)
	l.n--
	return ev
}
