package sim

import (
	"fmt"
	"testing"
)

// TestQueueWaitersFIFO: multiple procs block on Pop in a known order;
// interleaved pushes must hand items out in that wait order, one item
// per waiter, with no lost wakeups.
func TestQueueWaitersFIFO(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int]()
	got := make(map[string]int)
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			// Stagger arrival so the wait order is w0, w1, w2.
			p.Sleep(Time(i + 1))
			got[p.Name()] = q.Pop(p)
		})
	}
	// Pushes land after all three are parked, interleaved over time.
	e.Schedule(10, func() { q.Push(e, 100) })
	e.Schedule(20, func() { q.Push(e, 200) })
	e.Schedule(30, func() { q.Push(e, 300) })
	e.Run()
	want := map[string]int{"w0": 100, "w1": 200, "w2": 300}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("pop order not FIFO by wait order: got %v, want %v", got, want)
		}
	}
}

// TestQueueBurstPushWakesEachWaiterOnce: several pushes within one
// event must wake distinct waiters — one wakeup per push, nobody woken
// twice, nobody left parked.
func TestQueueBurstPushWakesEachWaiterOnce(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int]()
	var got []int
	const waiters = 4
	for i := 0; i < waiters; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			got = append(got, q.Pop(p))
		})
	}
	e.Schedule(5, func() {
		for v := 1; v <= waiters; v++ {
			q.Push(e, v*11)
		}
	})
	e.Run()
	if len(got) != waiters {
		t.Fatalf("%d pops completed, want %d (lost wakeup): %v", len(got), waiters, got)
	}
	for i, v := range got {
		if v != (i+1)*11 {
			t.Fatalf("items out of FIFO order: %v", got)
		}
	}
}

// TestQueueStealDoesNotLoseWakeup: a TryPop from event context steals
// the item between Push waking a parked popper and the popper running.
// The popper must re-enter the wait list and still receive the next
// item — the wakeup is retried, never lost.
func TestQueueStealDoesNotLoseWakeup(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int]()
	popped := -1
	e.Spawn("popper", func(p *Proc) {
		popped = q.Pop(p)
	})
	var stolen int
	var stoleOK bool
	// Push wakes the popper with a scheduled resume; stealing
	// synchronously in the same event consumes the item before that
	// resume runs — the shape of an event callback racing a parked
	// proc for the queue head.
	e.Schedule(5, func() {
		q.Push(e, 42)
		v, ok := q.TryPop()
		stolen, stoleOK = v, ok
	})
	e.Schedule(10, func() { q.Push(e, 43) })
	e.Run()
	if !stoleOK || stolen != 42 {
		t.Fatalf("steal failed: ok=%v v=%d", stoleOK, stolen)
	}
	if popped != 43 {
		t.Fatalf("woken popper got %d, want the follow-up item 43 (wakeup lost?)", popped)
	}
}

// TestQueueRepeatedCycleKeepsCapacity: a steady push/pop cycle must not
// grow the queue's backing storage — the ring-style head index reuses
// it — and must preserve FIFO through many wrap cycles.
func TestQueueRepeatedCycleKeepsCapacity(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int]()
	const rounds = 10000
	sum := 0
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			sum += q.Pop(p)
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			q.Push(p.Engine(), i)
			p.Yield()
		}
	})
	e.Run()
	if want := rounds * (rounds - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if c := cap(q.items); c > 64 {
		t.Fatalf("queue backing array grew to %d for a 1-deep cycle", c)
	}
}

// TestQueueManyPoppersManyPushers drives 4 poppers against bursty
// pushes from two producer procs and checks conservation: every pushed
// item is popped exactly once.
func TestQueueManyPoppersManyPushers(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int]()
	const perProducer = 50
	seen := make(map[int]int)
	total := 0
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("pop%d", i), func(p *Proc) {
			for total < 2*perProducer {
				v := q.Pop(p)
				seen[v]++
				total++
			}
		})
	}
	for pr := 0; pr < 2; pr++ {
		pr := pr
		e.Spawn(fmt.Sprintf("push%d", pr), func(p *Proc) {
			for i := 0; i < perProducer; i++ {
				q.Push(p.Engine(), pr*perProducer+i)
				if i%3 == 0 {
					p.Sleep(Time(1 + pr))
				}
			}
		})
	}
	e.RunUntil(1_000_000)
	if total != 2*perProducer {
		t.Fatalf("popped %d items, want %d", total, 2*perProducer)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("item %d popped %d times", v, n)
		}
	}
}
