package sim

// EngineVersion is the simulation-semantics salt for content-addressed
// run caching. Anything that changes simulated timelines — event
// ordering rules, the cost model's arithmetic, DurationOf rounding,
// the jitter RNG stream — MUST bump this constant, or cached figure
// points produced by the old semantics would be served as if they came
// from the new ones. Pure performance work that keeps output
// byte-identical (the PR-2 contract: the lane/heap rewrite changed no
// timeline) must NOT bump it, so caches survive engine optimizations.
const EngineVersion = "gat-engine-1"
