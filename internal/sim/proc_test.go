package sim

import (
	"testing"
	"testing/quick"
)

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wakeups []Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(10)
		wakeups = append(wakeups, p.Now())
		p.Sleep(15)
		wakeups = append(wakeups, p.Now())
	})
	e.Run()
	if len(wakeups) != 2 || wakeups[0] != 10 || wakeups[1] != 25 {
		t.Fatalf("wakeups = %v, want [10 25]", wakeups)
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Proc) {
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20) // wakes at 30
		order = append(order, "a30")
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(20)
		order = append(order, "b20")
	})
	e.Run()
	want := []string{"a10", "b20", "a30"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcDoneSignal(t *testing.T) {
	e := NewEngine()
	p := e.Spawn("worker", func(p *Proc) { p.Sleep(42) })
	var doneAt Time = -1
	p.Done().OnFire(e, func() { doneAt = e.Now() })
	e.Run()
	if doneAt != 42 {
		t.Fatalf("done fired at %v, want 42", doneAt)
	}
}

func TestSignalWaitBeforeFire(t *testing.T) {
	e := NewEngine()
	s := NewSignal()
	var sawAt Time = -1
	e.Spawn("waiter", func(p *Proc) {
		p.Wait(s)
		sawAt = p.Now()
	})
	e.Schedule(100, func() { s.Fire(e) })
	e.Run()
	if sawAt != 100 {
		t.Fatalf("waiter resumed at %v, want 100", sawAt)
	}
}

func TestSignalWaitAfterFire(t *testing.T) {
	e := NewEngine()
	s := NewSignal()
	e.Schedule(5, func() { s.Fire(e) })
	var sawAt Time = -1
	e.Spawn("late", func(p *Proc) {
		p.Sleep(50)
		p.Wait(s) // already fired: no block
		sawAt = p.Now()
	})
	e.Run()
	if sawAt != 50 {
		t.Fatalf("late waiter resumed at %v, want 50", sawAt)
	}
}

func TestSignalDoubleFireIsNoop(t *testing.T) {
	e := NewEngine()
	s := NewSignal()
	count := 0
	s.OnFire(e, func() { count++ })
	s.Fire(e)
	s.Fire(e)
	e.Run()
	if count != 1 {
		t.Fatalf("callback ran %d times, want 1", count)
	}
}

func TestAllOf(t *testing.T) {
	e := NewEngine()
	a, b, c := NewSignal(), NewSignal(), NewSignal()
	all := AllOf(e, a, b, c)
	var at Time = -1
	all.OnFire(e, func() { at = e.Now() })
	e.Schedule(10, func() { a.Fire(e) })
	e.Schedule(30, func() { c.Fire(e) })
	e.Schedule(20, func() { b.Fire(e) })
	e.Run()
	if at != 30 {
		t.Fatalf("AllOf fired at %v, want 30", at)
	}
}

func TestAllOfEmpty(t *testing.T) {
	e := NewEngine()
	if !AllOf(e).Fired() {
		t.Fatal("AllOf() should be pre-fired")
	}
}

func TestCounter(t *testing.T) {
	e := NewEngine()
	c := NewCounter(3)
	fired := false
	c.Done().OnFire(e, func() { fired = true })
	c.Add(e)
	c.Add(e)
	if c.Remaining() != 1 {
		t.Fatalf("remaining = %d, want 1", c.Remaining())
	}
	c.Add(e)
	e.Run()
	if !fired {
		t.Fatal("counter did not fire at zero")
	}
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	c.Add(e)
}

func TestQueueFIFO(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int]()
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Pop(p))
		}
	})
	e.Schedule(10, func() { q.Push(e, 1) })
	e.Schedule(20, func() { q.Push(e, 2); q.Push(e, 3) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got = %v, want [1 2 3]", got)
	}
}

func TestQueueTryPop(t *testing.T) {
	e := NewEngine()
	q := NewQueue[string]()
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue returned ok")
	}
	q.Push(e, "x")
	v, ok := q.TryPop()
	if !ok || v != "x" {
		t.Fatalf("TryPop = %q,%v", v, ok)
	}
	e.Run()
}

// Property: a proc sleeping a sequence of durations wakes at the prefix
// sums of those durations.
func TestProcSleepSumProperty(t *testing.T) {
	f := func(durs []uint8) bool {
		e := NewEngine()
		var wakes []Time
		e.Spawn("p", func(p *Proc) {
			for _, d := range durs {
				p.Sleep(Time(d))
				wakes = append(wakes, p.Now())
			}
		})
		e.Run()
		var sum Time
		for i, d := range durs {
			sum += Time(d)
			if wakes[i] != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: queue preserves FIFO order for arbitrary push sequences.
func TestQueueOrderProperty(t *testing.T) {
	f := func(vals []int32) bool {
		e := NewEngine()
		q := NewQueue[int32]()
		var got []int32
		e.Spawn("c", func(p *Proc) {
			for range vals {
				got = append(got, q.Pop(p))
			}
		})
		for i, v := range vals {
			v := v
			e.Schedule(Time(i), func() { q.Push(e, v) })
		}
		e.Run()
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		var log []Time
		s := NewSignal()
		for i := 0; i < 5; i++ {
			i := i
			e.Spawn("p", func(p *Proc) {
				p.Sleep(Time(i * 7 % 3))
				p.Wait(s)
				log = append(log, p.Now()+Time(i))
			})
		}
		e.Schedule(9, func() { s.Fire(e) })
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic run lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a, b)
		}
	}
}
