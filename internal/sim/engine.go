// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated components (CPU schedulers, GPU engines, network links)
// share a single Engine with one virtual clock. Events fire in
// (time, insertion-sequence) order, so repeated runs with the same inputs
// produce bit-identical timelines. Two execution styles are supported:
//
//   - Event callbacks (Schedule/At) for passive components such as GPU
//     engines and NICs.
//   - Goroutine-backed processes (Spawn) for active components that need
//     blocking semantics, such as MPI ranks calling Waitall. The engine
//     runs at most one goroutine at a time and hands control back and
//     forth explicitly, preserving determinism.
package sim

import (
	"fmt"
	"math"
	"unsafe"
)

// Time is a virtual time instant or duration in nanoseconds.
// The zero value is the simulation epoch.
type Time int64

// Convenient duration units, mirroring package time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// maxTime is the largest representable instant, used as the limit of an
// unbounded Run.
const maxTime = Time(1<<62 - 1)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros returns t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats t with an adaptive unit, e.g. "12.50ms" or "340ns".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.2fms", t.Millis())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// DurationOf converts a byte count and a bandwidth in bytes/second into a
// transfer duration, rounded half-up to the nearest nanosecond.
// Truncating instead would shave up to 1ns off every transfer, a bias
// that compounds over the millions of transfers in a long sweep. Zero
// or negative bandwidth panics: it always indicates a miswired cost
// model rather than a recoverable condition.
func DurationOf(bytes int64, bytesPerSec float64) Time {
	if bytesPerSec <= 0 {
		panic("sim: non-positive bandwidth")
	}
	return Time(math.Floor(float64(bytes)/bytesPerSec*float64(Second) + 0.5))
}

// ArgFunc is a statically defined callback that receives its state as
// an untyped pointer. Scheduling (fn, arg) pairs lets a long-lived
// record — an arena-allocated transfer op, a proc — be dispatched
// through one shared top-level function, so registering or firing it
// allocates no closure. The arg must be non-nil (a nil arg selects the
// plain-callback payload form below).
type ArgFunc func(*Engine, unsafe.Pointer)

// event is one scheduled action, its payload packed into two pointer
// words so the event stays at 32 bytes — sift and copy operations move
// events, and a fatter event measurably slows the queue's hold
// workload. Three payload forms share the packing:
//
//	fn == nil             fire (*Signal)(arg) — the completion idiom of
//	                      every transfer model, carried without closure
//	arg == nil            call the func() packed in fn
//	fn, arg both non-nil  call the ArgFunc packed in fn with arg — the
//	                      record-callback form behind arena-allocated
//	                      transfer ops and proc wakeups
type event struct {
	at  Time
	seq uint64
	fn  unsafe.Pointer // *funcval of a func() or ArgFunc; nil for fire-signal
	arg unsafe.Pointer // *Signal, or the ArgFunc's record argument
}

// fnToPtr extracts a func value's single-word runtime representation.
// Storing it in an unsafe.Pointer field keeps the closure reachable for
// the GC (the field is scanned as a pointer).
func fnToPtr(fn func()) unsafe.Pointer { return *(*unsafe.Pointer)(unsafe.Pointer(&fn)) }

// ptrToFn reconstitutes a func value packed by fnToPtr.
func ptrToFn(p unsafe.Pointer) func() { return *(*func())(unsafe.Pointer(&p)) }

// argFnToPtr packs an ArgFunc the same way. Top-level functions have
// static funcvals, so converting one allocates nothing.
func argFnToPtr(fn ArgFunc) unsafe.Pointer { return *(*unsafe.Pointer)(unsafe.Pointer(&fn)) }

// ptrToArgFn reconstitutes an ArgFunc packed by argFnToPtr.
func ptrToArgFn(p unsafe.Pointer) ArgFunc { return *(*ArgFunc)(unsafe.Pointer(&p)) }

// dispatch executes the event's action.
func (ev event) dispatch(e *Engine) {
	if ev.fn == nil {
		(*Signal)(ev.arg).Fire(e)
		return
	}
	if ev.arg == nil {
		ptrToFn(ev.fn)()
		return
	}
	ptrToArgFn(ev.fn)(e, ev.arg)
}

// eventHeap is a monomorphic 4-ary min-heap ordered by (at, seq). It
// deliberately avoids container/heap: the interface methods box every
// event and defeat inlining. Since the calendar queue took over the
// dense near-term population, the heap serves as the calendar's
// far-future overflow tier — events beyond the bucket window, where
// O(log n) on a small, rarely touched set is cheaper than widening the
// calendar to reach them. A 4-ary layout halves the tree depth of a
// binary heap, trading slightly more comparisons per level for far
// fewer cache-missing sift-down steps.
type eventHeap []event

// before reports whether a fires before b: earlier time, then earlier
// insertion sequence, so same-time events keep FIFO order.
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// pushEv inserts e, sifting it up toward the root. The sift holds e
// aside and shifts displaced parents down, one copy per level instead
// of a three-copy swap; in the common no-movement case (a new event
// later than its parent) nothing is written beyond the append.
//
//gat:hotpath
func (h *eventHeap) pushEv(e event) {
	q := append(*h, e)
	i := len(q) - 1
	if i > 0 && e.before(q[(i-1)/4]) {
		for i > 0 {
			p := (i - 1) / 4
			if !e.before(q[p]) {
				break
			}
			q[i] = q[p]
			i = p
		}
		q[i] = e
	}
	*h = q
}

// popMin removes and returns the earliest event. The vacated tail slot
// is zeroed so the backing array does not retain the moved event's
// closure; without that, a long sweep keeps every executed event's
// captured object graph alive until the whole heap is collected.
//
//gat:hotpath
func (h *eventHeap) popMin() event {
	q := *h
	min := q[0]
	n := len(q) - 1
	tail := q[n]
	q[n] = event{}
	q = q[:n]
	*h = q
	if n == 0 {
		return min
	}
	// Sift the hole at the root down, pulling the smallest child up one
	// copy per level, until the displaced tail element fits.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if q[j].before(q[best]) {
				best = j
			}
		}
		if !q[best].before(tail) {
			break
		}
		q[i] = q[best]
		i = best
	}
	q[i] = tail
	return min
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
//
// Internally the engine keeps two event stores that together implement
// exact (time, sequence) order: the calendar queue for timed events,
// and a FIFO lane for zero-delay events — the dominant class in a real
// simulation (signal wakeups, queue wakeups, yields, proc resumes).
// Because a zero-delay event both carries the current timestamp and
// outranks, by sequence, every timed event that could still be
// scheduled at that timestamp, FIFO order within the lane is exactly
// (time, seq) order; only timed events already queued at the current
// instant can outrank the lane head, and a single peek detects that.
type Engine struct {
	// Hot fields first, grouped so the run loop touches few cache
	// lines: every dispatched event reads now/seq/nEvents and one of
	// lane/timed.
	now     Time
	seq     uint64
	nEvents uint64 // total events executed, for diagnostics
	// limit is the bound of the RunUntil call currently executing.
	// Proc.Sleep consults it for the direct-resume fast path: a proc may
	// fast-forward the clock only within the active run window.
	limit   Time
	stopped bool
	// noLane routes zero-delay events through the timed queue instead
	// of the FIFO lane. Test hook only: the ordering-equivalence test
	// runs the same workload both ways and asserts identical order.
	noLane bool
	// inDrive marks an active RunUntil, where the event loop is driven
	// by whichever goroutine holds the execution token (see drive): a
	// parking proc keeps driving instead of switching back to the
	// RunUntil caller, halving the goroutine switches per park/resume
	// pair. Step clears it, keeping its one-event contract on the
	// legacy handshake.
	inDrive bool
	lane    eventLane
	timed   calQueue

	handoff chan struct{} // procs signal here when they park or exit
	tracer  *Tracer

	// Per-engine arenas for the record types sim itself creates on the
	// hot path. Records live until the engine is discarded (or the
	// arenas are reset between runs by a caller that owns the engine);
	// see Arena for the lifetime contract.
	sigs     Arena[Signal]
	pipeOps  Arena[pipeOp]
	delayOps Arena[delayOp]
	waitAlls Arena[waitAll]
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	e := &Engine{handoff: make(chan struct{})}
	e.timed.init()
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsExecuted returns the number of events processed so far.
func (e *Engine) EventsExecuted() uint64 { return e.nEvents }

// Tracer returns the engine's tracer, or nil if tracing is disabled.
func (e *Engine) Tracer() *Tracer { return e.tracer }

// SetTracer installs a tracer; pass nil to disable tracing.
func (e *Engine) SetTracer(tr *Tracer) { e.tracer = tr }

// Schedule queues fn to run after delay d. A non-positive delay schedules
// the event at the current time, ordered after already-queued events at
// that time.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// At queues fn to run at absolute time t, which must not be in the past.
// Zero-delay events (t equal to the current time) take the FIFO lane,
// skipping the timed queue entirely while keeping exact (time, seq)
// order.
//
//gat:hotpath
func (e *Engine) At(t Time, fn func()) { e.push(t, fnToPtr(fn), nil) }

// push routes an event — in any payload form — to the lane or the
// timed queue.
//
//gat:hotpath
func (e *Engine) push(t Time, fn, arg unsafe.Pointer) {
	if t < e.now {
		//gat:alloc-ok cold panic path; formatting cost is irrelevant once the engine is wedged
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, e.now))
	}
	e.seq++
	if t == e.now && !e.noLane {
		e.lane.push(laneEvent{seq: e.seq, fn: fn, arg: arg})
		return
	}
	e.timed.push(event{at: t, seq: e.seq, fn: fn, arg: arg})
}

// Run executes events until the queue is empty or Stop is called.
// It returns the final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(maxTime) }

// RunUntil executes events with timestamps <= limit, advancing the clock
// to each event's time. Events left in the queue remain schedulable by a
// later call. It returns the current virtual time when it stops.
//
// The run executes in token-passing mode: the caller's goroutine starts
// driving the event loop, and when an event resumes a proc, the
// execution token — and with it the loop — moves to that proc's
// goroutine directly (see drive). The event order is exactly the
// (time, seq) order an engine-driven loop would produce; only which
// goroutine pops each event changes.
//
//gat:hotpath
func (e *Engine) RunUntil(limit Time) Time {
	e.stopped = false
	e.limit = limit
	e.inDrive = true
	e.drive(nil)
	e.inDrive = false
	return e.now
}

// drive runs the event loop on the calling goroutine — the RunUntil
// caller (self == nil) or a parking proc — until the run ends or the
// token moves on.
//
// The loop drains the whole same-timestamp batch from the zero-delay
// lane before consulting the timed queue for a clock advance; timed
// events that share the current timestamp (necessarily scheduled
// earlier, so with smaller sequence numbers) are interleaved ahead of
// the lane by a single peek of the queue's cached head, never a
// re-sort.
//
// Proc resume events are intercepted by payload identity (fn ==
// procResumePtr) instead of dispatched: popping one's own resume means
// the park is over (the proc returns to user code with zero goroutine
// switches — the common Sleep shape, where the sleeper pops its own
// wakeup); popping another proc's resume hands the token to that proc
// in one switch. The RunUntil caller parks on the handoff channel
// while procs hold the token, and receives it back — uniformly meaning
// "continue driving" — when a proc exits or ends the run.
//
//gat:hotpath
func (e *Engine) drive(self *Proc) {
	for !e.stopped {
		var fn, arg unsafe.Pointer
		if e.lane.n > 0 {
			// Lane entries are stamped with the current time; if even
			// that is past the limit they must stay queued.
			if e.now > e.limit {
				break
			}
			if e.timed.n > 0 && e.timed.head.at == e.now && e.timed.head.seq < e.lane.peekSeq() {
				ev := e.timed.popMin()
				fn, arg = ev.fn, ev.arg
			} else {
				le := e.lane.pop()
				fn, arg = le.fn, le.arg
			}
		} else {
			if e.timed.n == 0 {
				break
			}
			if e.timed.head.at > e.limit {
				if e.limit > e.now {
					e.now = e.limit
				}
				break
			}
			ev := e.timed.popMin()
			e.now = ev.at
			fn, arg = ev.fn, ev.arg
		}
		e.nEvents++
		if fn == procResumePtr {
			p := (*Proc)(arg)
			if p == self {
				// Our own resume: the park is over and this goroutine
				// already holds the token.
				return
			}
			if p.exited {
				//gat:alloc-ok cold panic path
				panic("sim: resuming exited proc " + p.name)
			}
			p.wake <- struct{}{}
			if self == nil {
				// The token comes back when a proc exits or ends the
				// run; either way, resume driving.
				<-e.handoff
				continue
			}
			// Token handed on; wait for our own resume to be dispatched
			// by whoever drives then.
			<-self.wake
			return
		}
		if fn == nil {
			(*Signal)(arg).Fire(e)
			continue
		}
		if arg == nil {
			ptrToFn(fn)()
			continue
		}
		ptrToArgFn(fn)(e, arg)
	}
	if self != nil {
		// Run over while a proc held the token: hand it back to the
		// RunUntil caller and park until a later run resumes us.
		e.handoff <- struct{}{}
		<-self.wake
	}
}

// InjectAt schedules a statically dispatched (fn, arg) pair at absolute
// time t — the cross-engine injection seam of the conservative PDES
// layer (internal/pdes). A coordinator that owns several parked engines
// calls it between lookahead windows to deliver merged cross-shard
// messages; sequence numbers are assigned in call order, so injecting a
// batch in sorted (time, source, sequence) order makes the receiving
// engine's execution order independent of how the batch was produced.
// Like every scheduling entry point it must only be called while the
// engine is not running (or from within one of its own events), and t
// must not be in the past.
//
//gat:hotpath
func (e *Engine) InjectAt(t Time, fn ArgFunc, arg unsafe.Pointer) {
	e.push(t, argFnToPtr(fn), arg)
}

// NextEventTime returns the timestamp of the earliest pending event and
// whether one exists. It is the window-bound query of the conservative
// PDES layer: the coordinator takes the minimum across shards to place
// the next lookahead window. Lane events carry the current time.
func (e *Engine) NextEventTime() (Time, bool) {
	if e.lane.n > 0 {
		return e.now, true
	}
	if e.timed.n > 0 {
		return e.timed.head.at, true
	}
	return 0, false
}

// Step executes the single earliest pending event, advancing the clock
// to its timestamp. It reports whether an event ran. Useful for
// lock-step debugging and for benchmarking the event loop itself.
// A proc resumed by the event may fast-forward through sleeps that
// nothing else could interleave with (see Proc.Sleep), so one Step can
// advance the clock past the event's own timestamp.
func (e *Engine) Step() bool {
	e.limit = maxTime
	e.inDrive = false
	if e.lane.n > 0 {
		if e.timed.n > 0 && e.timed.head.at == e.now && e.timed.head.seq < e.lane.peekSeq() {
			ev := e.timed.popMin()
			e.nEvents++
			ev.dispatch(e)
			return true
		}
		le := e.lane.pop()
		e.nEvents++
		le.dispatch(e)
		return true
	}
	if e.timed.n == 0 {
		return false
	}
	ev := e.timed.popMin()
	e.now = ev.at
	e.nEvents++
	ev.dispatch(e)
	return true
}

// Stop halts Run/RunUntil after the current event completes. Pending
// events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Idle reports whether no events are pending.
func (e *Engine) Idle() bool { return e.timed.n == 0 && e.lane.n == 0 }

// QueueStats is a snapshot of the timed queue's calendar structure, for
// diagnostics (cmd/microbench -v) and resize-pathology hunting.
type QueueStats struct {
	// Standing is the number of pending timed events, including the
	// cached head.
	Standing int
	// BucketWidth is the calendar bucket width.
	BucketWidth Time
	// Buckets is the number of calendar buckets.
	Buckets int
	// InBuckets counts events stored in the calendar buckets.
	InBuckets int
	// Overflow counts far-future events parked in the heap tier.
	Overflow int
	// MaxBucketLen is the longest current bucket chain.
	MaxBucketLen int
	// Resizes counts calendar rebuilds (width or bucket-count changes)
	// since the engine was created.
	Resizes int
}

// QueueStats returns a snapshot of the timed queue's structure.
func (e *Engine) QueueStats() QueueStats { return e.timed.stats() }

// ResetArenas frees all engine-arena records (signals, pipe and delay
// ops) at once, keeping chunk capacity so the next run reuses the same
// warm memory. It may only be called at a run boundary: the engine must
// be idle, and the caller must guarantee no record pointer from before
// the reset — no *Signal from Engine.NewSignal, no signal returned by
// Pipe.TransferAfter or Engine.AfterSignal — is used afterwards.
func (e *Engine) ResetArenas() {
	if !e.Idle() {
		panic("sim: ResetArenas with events pending")
	}
	e.sigs.Reset()
	e.pipeOps.Reset()
	e.delayOps.Reset()
	e.waitAlls.Reset()
}
