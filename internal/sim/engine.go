// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated components (CPU schedulers, GPU engines, network links)
// share a single Engine with one virtual clock. Events fire in
// (time, insertion-sequence) order, so repeated runs with the same inputs
// produce bit-identical timelines. Two execution styles are supported:
//
//   - Event callbacks (Schedule/At) for passive components such as GPU
//     engines and NICs.
//   - Goroutine-backed processes (Spawn) for active components that need
//     blocking semantics, such as MPI ranks calling Waitall. The engine
//     runs at most one goroutine at a time and hands control back and
//     forth explicitly, preserving determinism.
package sim

import (
	"fmt"
	"math"
	"unsafe"
)

// Time is a virtual time instant or duration in nanoseconds.
// The zero value is the simulation epoch.
type Time int64

// Convenient duration units, mirroring package time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// maxTime is the largest representable instant, used as the limit of an
// unbounded Run.
const maxTime = Time(1<<62 - 1)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros returns t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats t with an adaptive unit, e.g. "12.50ms" or "340ns".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.2fms", t.Millis())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// DurationOf converts a byte count and a bandwidth in bytes/second into a
// transfer duration, rounded half-up to the nearest nanosecond.
// Truncating instead would shave up to 1ns off every transfer, a bias
// that compounds over the millions of transfers in a long sweep. Zero
// or negative bandwidth panics: it always indicates a miswired cost
// model rather than a recoverable condition.
func DurationOf(bytes int64, bytesPerSec float64) Time {
	if bytesPerSec <= 0 {
		panic("sim: non-positive bandwidth")
	}
	return Time(math.Floor(float64(bytes)/bytesPerSec*float64(Second) + 0.5))
}

// event is one scheduled action: either a callback or, when isSig is
// set, "fire this signal" — the completion idiom of every transfer
// model, carried directly so it costs no closure. The payload is packed
// into a single pointer word (a func value is one pointer to its
// funcval; a *Signal is one pointer) so the event stays at 32 bytes —
// sift operations copy events, and a fatter event measurably slows the
// heap's hold workload.
type event struct {
	at    Time
	seq   uint64
	ptr   unsafe.Pointer // *funcval (callback) or *Signal (isSig)
	isSig bool
}

// fnToPtr extracts a func value's single-word runtime representation.
// Storing it in an unsafe.Pointer field keeps the closure reachable for
// the GC (the field is scanned as a pointer).
func fnToPtr(fn func()) unsafe.Pointer { return *(*unsafe.Pointer)(unsafe.Pointer(&fn)) }

// ptrToFn reconstitutes a func value packed by fnToPtr.
func ptrToFn(p unsafe.Pointer) func() { return *(*func())(unsafe.Pointer(&p)) }

// dispatch executes the event's action.
func (ev event) dispatch(e *Engine) {
	if ev.isSig {
		(*Signal)(ev.ptr).Fire(e)
		return
	}
	ptrToFn(ev.ptr)()
}

// eventHeap is a monomorphic 4-ary min-heap ordered by (at, seq). It
// deliberately avoids container/heap: the interface methods box every
// event and defeat inlining, and the event loop is the throughput
// bound of every simulation. A 4-ary layout halves the tree depth of a
// binary heap, trading slightly more comparisons per level for far
// fewer cache-missing sift-down steps — the win for the mostly
// push-pop workload of a discrete-event queue.
type eventHeap []event

// before reports whether a fires before b: earlier time, then earlier
// insertion sequence, so same-time events keep FIFO order.
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// pushEv inserts e, sifting it up toward the root. The sift holds e
// aside and shifts displaced parents down, one copy per level instead
// of a three-copy swap; in the common no-movement case (a new event
// later than its parent) nothing is written beyond the append.
//
//gat:hotpath
func (h *eventHeap) pushEv(e event) {
	q := append(*h, e)
	i := len(q) - 1
	if i > 0 && e.before(q[(i-1)/4]) {
		for i > 0 {
			p := (i - 1) / 4
			if !e.before(q[p]) {
				break
			}
			q[i] = q[p]
			i = p
		}
		q[i] = e
	}
	*h = q
}

// popMin removes and returns the earliest event. The vacated tail slot
// is zeroed so the backing array does not retain the moved event's
// closure; without that, a long sweep keeps every executed event's
// captured object graph alive until the whole heap is collected.
//
//gat:hotpath
func (h *eventHeap) popMin() event {
	q := *h
	min := q[0]
	n := len(q) - 1
	tail := q[n]
	q[n] = event{}
	q = q[:n]
	*h = q
	if n == 0 {
		return min
	}
	// Sift the hole at the root down, pulling the smallest child up one
	// copy per level, until the displaced tail element fits.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if q[j].before(q[best]) {
				best = j
			}
		}
		if !q[best].before(tail) {
			break
		}
		q[i] = q[best]
		i = best
	}
	q[i] = tail
	return min
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
//
// Internally the engine keeps two event stores that together implement
// exact (time, sequence) order: the heap for timed events, and a FIFO
// lane for zero-delay events — the dominant class in a real simulation
// (signal wakeups, queue wakeups, yields, proc resumes). Because a
// zero-delay event both carries the current timestamp and outranks, by
// sequence, every heap event that could still be scheduled at that
// timestamp, FIFO order within the lane is exactly (time, seq) order;
// only heap events already queued at the current instant can outrank
// the lane head, and a single peek detects that.
type Engine struct {
	// Hot fields first, grouped so the run loop touches few cache
	// lines: every dispatched event reads now/seq/nEvents and one of
	// lane/events.
	now     Time
	seq     uint64
	nEvents uint64 // total events executed, for diagnostics
	// limit is the bound of the RunUntil call currently executing.
	// Proc.Sleep consults it for the direct-resume fast path: a proc may
	// fast-forward the clock only within the active run window.
	limit   Time
	stopped bool
	// noLane routes zero-delay events through the heap instead of the
	// FIFO lane. Test hook only: the ordering-equivalence test runs the
	// same workload both ways and asserts identical event order.
	noLane bool
	lane   eventLane
	events eventHeap

	handoff chan struct{} // procs signal here when they park or exit
	tracer  *Tracer
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{handoff: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsExecuted returns the number of events processed so far.
func (e *Engine) EventsExecuted() uint64 { return e.nEvents }

// Tracer returns the engine's tracer, or nil if tracing is disabled.
func (e *Engine) Tracer() *Tracer { return e.tracer }

// SetTracer installs a tracer; pass nil to disable tracing.
func (e *Engine) SetTracer(tr *Tracer) { e.tracer = tr }

// Schedule queues fn to run after delay d. A non-positive delay schedules
// the event at the current time, ordered after already-queued events at
// that time.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// At queues fn to run at absolute time t, which must not be in the past.
// Zero-delay events (t equal to the current time) take the FIFO lane,
// skipping the heap entirely while keeping exact (time, seq) order.
//
//gat:hotpath
func (e *Engine) At(t Time, fn func()) { e.push(t, fnToPtr(fn), false) }

// push routes an event — callback or fire-signal form — to the lane or
// the heap.
//
//gat:hotpath
func (e *Engine) push(t Time, ptr unsafe.Pointer, isSig bool) {
	if t < e.now {
		//gat:alloc-ok cold panic path; formatting cost is irrelevant once the engine is wedged
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, e.now))
	}
	e.seq++
	if t == e.now && !e.noLane {
		e.lane.push(laneEvent{seq: e.seq, ptr: ptr, isSig: isSig})
		return
	}
	e.events.pushEv(event{at: t, seq: e.seq, ptr: ptr, isSig: isSig})
}

// Run executes events until the queue is empty or Stop is called.
// It returns the final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(maxTime) }

// RunUntil executes events with timestamps <= limit, advancing the clock
// to each event's time. Events left in the queue remain schedulable by a
// later call. It returns the current virtual time when it stops.
//
// The loop drains the whole same-timestamp batch from the zero-delay
// lane before consulting the heap for a clock advance; heap events that
// share the current timestamp (necessarily scheduled earlier, so with
// smaller sequence numbers) are interleaved ahead of the lane by a
// single peek, never a re-sort.
//
//gat:hotpath
func (e *Engine) RunUntil(limit Time) Time {
	e.stopped = false
	e.limit = limit
	for !e.stopped {
		if e.lane.n > 0 {
			// Lane entries are stamped with the current time; if even
			// that is past the limit they must stay queued.
			if e.now > limit {
				return e.now
			}
			if len(e.events) > 0 && e.events[0].at == e.now && e.events[0].seq < e.lane.peekSeq() {
				ev := e.events.popMin()
				e.nEvents++
				ev.dispatch(e)
				continue
			}
			le := e.lane.pop()
			e.nEvents++
			le.dispatch(e)
			continue
		}
		if len(e.events) == 0 {
			break
		}
		if e.events[0].at > limit {
			if limit > e.now {
				e.now = limit
			}
			return e.now
		}
		ev := e.events.popMin()
		e.now = ev.at
		e.nEvents++
		ev.dispatch(e)
	}
	return e.now
}

// Step executes the single earliest pending event, advancing the clock
// to its timestamp. It reports whether an event ran. Useful for
// lock-step debugging and for benchmarking the event loop itself.
// A proc resumed by the event may fast-forward through sleeps that
// nothing else could interleave with (see Proc.Sleep), so one Step can
// advance the clock past the event's own timestamp.
func (e *Engine) Step() bool {
	e.limit = maxTime
	if e.lane.n > 0 {
		if len(e.events) > 0 && e.events[0].at == e.now && e.events[0].seq < e.lane.peekSeq() {
			ev := e.events.popMin()
			e.nEvents++
			ev.dispatch(e)
			return true
		}
		le := e.lane.pop()
		e.nEvents++
		le.dispatch(e)
		return true
	}
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.popMin()
	e.now = ev.at
	e.nEvents++
	ev.dispatch(e)
	return true
}

// Stop halts Run/RunUntil after the current event completes. Pending
// events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Idle reports whether no events are pending.
func (e *Engine) Idle() bool { return len(e.events) == 0 && e.lane.n == 0 }
