// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated components (CPU schedulers, GPU engines, network links)
// share a single Engine with one virtual clock. Events fire in
// (time, insertion-sequence) order, so repeated runs with the same inputs
// produce bit-identical timelines. Two execution styles are supported:
//
//   - Event callbacks (Schedule/At) for passive components such as GPU
//     engines and NICs.
//   - Goroutine-backed processes (Spawn) for active components that need
//     blocking semantics, such as MPI ranks calling Waitall. The engine
//     runs at most one goroutine at a time and hands control back and
//     forth explicitly, preserving determinism.
package sim

import (
	"fmt"
	"math"
)

// Time is a virtual time instant or duration in nanoseconds.
// The zero value is the simulation epoch.
type Time int64

// Convenient duration units, mirroring package time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros returns t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats t with an adaptive unit, e.g. "12.50ms" or "340ns".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.2fms", t.Millis())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// DurationOf converts a byte count and a bandwidth in bytes/second into a
// transfer duration, rounded half-up to the nearest nanosecond.
// Truncating instead would shave up to 1ns off every transfer, a bias
// that compounds over the millions of transfers in a long sweep. Zero
// or negative bandwidth panics: it always indicates a miswired cost
// model rather than a recoverable condition.
func DurationOf(bytes int64, bytesPerSec float64) Time {
	if bytesPerSec <= 0 {
		panic("sim: non-positive bandwidth")
	}
	return Time(math.Floor(float64(bytes)/bytesPerSec*float64(Second) + 0.5))
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a monomorphic 4-ary min-heap ordered by (at, seq). It
// deliberately avoids container/heap: the interface methods box every
// event and defeat inlining, and the event loop is the throughput
// bound of every simulation. A 4-ary layout halves the tree depth of a
// binary heap, trading slightly more comparisons per level for far
// fewer cache-missing sift-down steps — the win for the mostly
// push-pop workload of a discrete-event queue.
type eventHeap []event

func (h eventHeap) peek() event { return h[0] }

// before reports whether a fires before b: earlier time, then earlier
// insertion sequence, so same-time events keep FIFO order.
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// pushEv inserts e, sifting it up toward the root.
func (h *eventHeap) pushEv(e event) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !q[i].before(q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

// popMin removes and returns the earliest event. The vacated tail slot
// is zeroed so the backing array does not retain the moved event's
// closure; without that, a long sweep keeps every executed event's
// captured object graph alive until the whole heap is collected.
func (h *eventHeap) popMin() event {
	q := *h
	min := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	*h = q
	// Sift the displaced tail element down: swap with the smallest of
	// up to four children until none fires earlier.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if q[j].before(q[best]) {
				best = j
			}
		}
		if !q[best].before(q[i]) {
			break
		}
		q[i], q[best] = q[best], q[i]
		i = best
	}
	return min
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	handoff chan struct{} // procs signal here when they park or exit
	nEvents uint64        // total events executed, for diagnostics
	tracer  *Tracer
	stopped bool
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{handoff: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsExecuted returns the number of events processed so far.
func (e *Engine) EventsExecuted() uint64 { return e.nEvents }

// Tracer returns the engine's tracer, or nil if tracing is disabled.
func (e *Engine) Tracer() *Tracer { return e.tracer }

// SetTracer installs a tracer; pass nil to disable tracing.
func (e *Engine) SetTracer(tr *Tracer) { e.tracer = tr }

// Schedule queues fn to run after delay d. A non-positive delay schedules
// the event at the current time, ordered after already-queued events at
// that time.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// At queues fn to run at absolute time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, e.now))
	}
	e.seq++
	e.events.pushEv(event{at: t, seq: e.seq, fn: fn})
}

// Run executes events until the queue is empty or Stop is called.
// It returns the final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(Time(1<<62 - 1)) }

// RunUntil executes events with timestamps <= limit, advancing the clock
// to each event's time. Events left in the queue remain schedulable by a
// later call. It returns the current virtual time when it stops.
func (e *Engine) RunUntil(limit Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events.peek().at > limit {
			e.now = limit
			return e.now
		}
		ev := e.events.popMin()
		e.now = ev.at
		e.nEvents++
		ev.fn()
	}
	return e.now
}

// Step executes the single earliest pending event, advancing the clock
// to its timestamp. It reports whether an event ran. Useful for
// lock-step debugging and for benchmarking the event loop itself.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.popMin()
	e.now = ev.at
	e.nEvents++
	ev.fn()
	return true
}

// Stop halts Run/RunUntil after the current event completes. Pending
// events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Idle reports whether no events are pending.
func (e *Engine) Idle() bool { return len(e.events) == 0 }
