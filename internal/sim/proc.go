package sim

// Proc is a goroutine-backed simulated process. Procs provide blocking
// semantics (Sleep, Wait, Queue.Pop) on top of the event engine: at most
// one proc runs at any real-time instant, and control transfers between
// the engine and procs are explicit, so execution remains deterministic.
//
// Procs are used for components whose natural expression is sequential
// blocking code — MPI ranks calling Waitall, for example. Purely reactive
// components should use event callbacks instead, which are cheaper.
type Proc struct {
	eng    *Engine
	name   string
	wake   chan struct{}
	done   *Signal
	exited bool
	// resumeFn is the pre-bound resume thunk, created once at Spawn.
	// Every wakeup of this proc — Sleep expiry, Signal.Fire, Queue.Push
	// — schedules this same func value, so the steady-state resume path
	// allocates nothing.
	resumeFn func()
}

// Spawn creates a proc running fn and schedules its first execution at
// the current virtual time. fn runs in its own goroutine but only while
// the engine has handed control to it.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{eng: e, name: name, wake: make(chan struct{}), done: NewSignal()}
	p.resumeFn = func() { e.resume(p) }
	go func() {
		<-p.wake
		fn(p)
		p.exited = true
		p.done.Fire(e)
		e.handoff <- struct{}{}
	}()
	e.At(e.now, p.resumeFn)
	return p
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Done returns a signal fired when the proc's function returns.
func (p *Proc) Done() *Signal { return p.done }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// resume hands control to p and blocks until p parks or exits.
// It must be called from event context (the engine goroutine).
func (e *Engine) resume(p *Proc) {
	if p.exited {
		panic("sim: resuming exited proc " + p.name)
	}
	p.wake <- struct{}{}
	<-e.handoff
}

// park returns control to the engine and blocks until resumed.
func (p *Proc) park() {
	p.eng.handoff <- struct{}{}
	<-p.wake
}

// Sleep suspends the proc for duration d of virtual time.
//
// If no other event can possibly run before the wake time — the
// zero-delay lane is empty, the heap's earliest event is later than the
// wake time, and the wake time is within the active run window — the
// proc fast-forwards the clock and keeps running. Parking would hand
// control to the engine only for it to resume this proc immediately, so
// skipping the resume event and both goroutine handoffs is observably
// identical (the engine is single-threaded: no new events can appear
// while this proc holds control).
//
//gat:hotpath
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	e := p.eng
	target := e.now + d
	// target < e.now means the addition overflowed; fall through so At
	// reports it loudly instead of moving the clock backward.
	if target >= e.now && e.lane.n == 0 && !e.stopped && target <= e.limit &&
		(len(e.events) == 0 || e.events[0].at > target) {
		e.now = target
		return
	}
	e.At(target, p.resumeFn)
	p.park()
}

// Wait blocks until s fires. If s has already fired, Wait returns
// immediately without yielding.
func (p *Proc) Wait(s *Signal) {
	if s.Fired() {
		return
	}
	s.addWaiter(p)
	p.park()
}

// WaitAll blocks until every signal in sigs has fired.
func (p *Proc) WaitAll(sigs ...*Signal) {
	for _, s := range sigs {
		p.Wait(s)
	}
}

// Yield reschedules the proc at the current time, letting other events
// and procs at this timestamp run first.
func (p *Proc) Yield() { p.Sleep(0) }
