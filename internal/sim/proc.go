package sim

import "unsafe"

// Proc is a goroutine-backed simulated process. Procs provide blocking
// semantics (Sleep, Wait, Queue.Pop) on top of the event engine: at most
// one proc runs at any real-time instant, and control transfers between
// the engine and procs are explicit, so execution remains deterministic.
//
// Procs are used for components whose natural expression is sequential
// blocking code — MPI ranks calling Waitall, for example. Purely reactive
// components should use event callbacks instead, which are cheaper.
type Proc struct {
	eng    *Engine
	name   string
	wake   chan struct{}
	done   *Signal
	exited bool
}

// procResume is the shared resume dispatch: every wakeup of any proc —
// Sleep expiry, Signal.Fire, Queue.Push — schedules this one top-level
// function with the proc as its argument, so the steady-state resume
// path allocates nothing and procs carry no per-proc thunk.
func procResume(e *Engine, arg unsafe.Pointer) { e.resume((*Proc)(arg)) }

// procResumePtr is procResume pre-packed into event payload form.
// Top-level funcvals are static, so this is a one-time conversion.
var procResumePtr = argFnToPtr(procResume)

// Spawn creates a proc running fn and schedules its first execution at
// the current virtual time. fn runs in its own goroutine but only while
// the engine has handed control to it.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{eng: e, name: name, wake: make(chan struct{}), done: NewSignal()}
	go func() {
		<-p.wake
		fn(p)
		p.exited = true
		p.done.Fire(e)
		e.handoff <- struct{}{}
	}()
	e.push(e.now, procResumePtr, unsafe.Pointer(p))
	return p
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Done returns a signal fired when the proc's function returns.
func (p *Proc) Done() *Signal { return p.done }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// resume hands control to p and blocks until p parks or exits. This is
// the legacy engine-driven handshake used by Step's single-event
// dispatch; RunUntil's token-passing loop intercepts resume events
// before dispatch instead (see Engine.drive).
func (e *Engine) resume(p *Proc) {
	if p.exited {
		panic("sim: resuming exited proc " + p.name)
	}
	p.wake <- struct{}{}
	<-e.handoff
}

// park blocks the proc until resumed. Inside a RunUntil the parking
// proc holds the execution token, so instead of switching back to the
// engine it drives the event loop itself until its own resume event
// comes up (see Engine.drive). Outside a run — a proc woken by Step —
// it returns control over the legacy handoff channel. A wake received
// while blocked here always means "your resume event was dispatched;
// you own execution now", regardless of which mode dispatched it.
func (p *Proc) park() {
	e := p.eng
	if e.inDrive {
		e.drive(p)
		return
	}
	e.handoff <- struct{}{}
	<-p.wake
}

// Sleep suspends the proc for duration d of virtual time.
//
// If no other event can possibly run before the wake time — the
// zero-delay lane is empty, the timed queue's earliest event is later
// than the wake time, and the wake time is within the active run window
// — the proc fast-forwards the clock and keeps running. Parking would
// hand control to the engine only for it to resume this proc
// immediately, so skipping the resume event and both goroutine handoffs
// is observably identical (the engine is single-threaded: no new events
// can appear while this proc holds control).
//
//gat:hotpath
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	e := p.eng
	target := e.now + d
	// target < e.now means the addition overflowed; fall through so push
	// reports it loudly instead of moving the clock backward.
	if target >= e.now && e.lane.n == 0 && !e.stopped && target <= e.limit &&
		(e.timed.n == 0 || e.timed.head.at > target) {
		e.now = target
		return
	}
	e.push(target, procResumePtr, unsafe.Pointer(p))
	p.park()
}

// Wait blocks until s fires. If s has already fired, Wait returns
// immediately without yielding.
func (p *Proc) Wait(s *Signal) {
	if s.Fired() {
		return
	}
	s.addWaiter(p)
	p.park()
}

// waitAll is the arena-allocated record behind a group wait: a countdown
// of unfired signals and the proc to resume when it reaches zero. Each
// member signal holds a pointer to the record and decrements it at fire
// time (see Signal.Fire).
type waitAll struct {
	n int
	p *Proc
}

// WaitSet accumulates signals for a single group wait: Add registers any
// number of signals, Wait parks the proc at most once until every added
// signal has fired. It is the incremental form of WaitAll for callers
// that would otherwise have to build a []*Signal (MPI Waitall over
// request records, for example). A WaitSet is a one-shot stack value:
// obtain it from Proc.NewWaitSet, use it, drop it.
type WaitSet struct {
	p    *Proc
	wa   *waitAll
	n    int
	rest []*Signal // signals whose group slot another WaitSet already holds
}

// NewWaitSet returns an empty wait set for the proc. The set allocates
// its countdown record from the engine arena on the first unfired Add,
// so a set over already-fired signals costs nothing.
func (p *Proc) NewWaitSet() WaitSet { return WaitSet{p: p} }

// Add registers s as a member of the group. Already-fired signals and
// duplicates are skipped.
func (g *WaitSet) Add(s *Signal) {
	if s.fired {
		return
	}
	if g.wa == nil {
		g.wa = g.p.eng.waitAlls.New()
		g.wa.p = g.p
	}
	if s.ga == g.wa {
		return // duplicate signal in the same set
	}
	if s.ga != nil {
		// Another in-flight group wait already holds this signal's slot
		// (two procs group-waiting one signal — never the case in the
		// simulator today); fall back to an in-order wait after the
		// group parks.
		//gat:alloc-ok cold contended-slot fallback
		g.rest = append(g.rest, s)
		return
	}
	s.ga = g.wa
	g.n++
}

// Wait parks the proc until every signal added to the set has fired,
// then consumes the set.
//
// The park resumes through a single event pushed by the chronologically
// last signal to fire, at the same position in that fire's push order a
// plain waiter would occupy — so replacing a chain of in-order Waits
// with one WaitSet leaves the execution order of every other event,
// and therefore the simulated timeline, unchanged. Only the
// intermediate wake-check-repark round trips (pure overhead: they run
// no user code and schedule nothing) are elided.
func (g *WaitSet) Wait() {
	if g.n > 0 {
		g.wa.n = g.n
		g.p.park()
	}
	for _, s := range g.rest {
		g.p.Wait(s)
	}
	g.wa, g.n, g.rest = nil, 0, nil
}

// WaitAll blocks until every signal in sigs has fired, parking at most
// once regardless of how many are still pending.
func (p *Proc) WaitAll(sigs ...*Signal) {
	g := p.NewWaitSet()
	for _, s := range sigs {
		g.Add(s)
	}
	g.Wait()
}

// Yield reschedules the proc at the current time, letting other events
// and procs at this timestamp run first.
func (p *Proc) Yield() { p.Sleep(0) }
