package sim

// Proc is a goroutine-backed simulated process. Procs provide blocking
// semantics (Sleep, Wait, Queue.Pop) on top of the event engine: at most
// one proc runs at any real-time instant, and control transfers between
// the engine and procs are explicit, so execution remains deterministic.
//
// Procs are used for components whose natural expression is sequential
// blocking code — MPI ranks calling Waitall, for example. Purely reactive
// components should use event callbacks instead, which are cheaper.
type Proc struct {
	eng    *Engine
	name   string
	wake   chan struct{}
	done   *Signal
	exited bool
}

// Spawn creates a proc running fn and schedules its first execution at
// the current virtual time. fn runs in its own goroutine but only while
// the engine has handed control to it.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{eng: e, name: name, wake: make(chan struct{}), done: NewSignal()}
	go func() {
		<-p.wake
		fn(p)
		p.exited = true
		p.done.Fire(e)
		e.handoff <- struct{}{}
	}()
	e.Schedule(0, func() { e.resume(p) })
	return p
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Done returns a signal fired when the proc's function returns.
func (p *Proc) Done() *Signal { return p.done }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// resume hands control to p and blocks until p parks or exits.
// It must be called from event context (the engine goroutine).
func (e *Engine) resume(p *Proc) {
	if p.exited {
		panic("sim: resuming exited proc " + p.name)
	}
	p.wake <- struct{}{}
	<-e.handoff
}

// park returns control to the engine and blocks until resumed.
func (p *Proc) park() {
	p.eng.handoff <- struct{}{}
	<-p.wake
}

// Sleep suspends the proc for duration d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	e := p.eng
	e.Schedule(d, func() { e.resume(p) })
	p.park()
}

// Wait blocks until s fires. If s has already fired, Wait returns
// immediately without yielding.
func (p *Proc) Wait(s *Signal) {
	if s.Fired() {
		return
	}
	s.addWaiter(p)
	p.park()
}

// WaitAll blocks until every signal in sigs has fired.
func (p *Proc) WaitAll(sigs ...*Signal) {
	for _, s := range sigs {
		p.Wait(s)
	}
}

// Yield reschedules the proc at the current time, letting other events
// and procs at this timestamp run first.
func (p *Proc) Yield() { p.Sleep(0) }
