package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Schedule(10, func() {
		hits = append(hits, e.Now())
		e.Schedule(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("hits = %v, want [10 15]", hits)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(10, func() { ran++ })
	e.Schedule(100, func() { ran++ })
	e.RunUntil(50)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if e.Now() != 50 {
		t.Fatalf("now = %v, want 50", e.Now())
	}
	e.Run()
	if ran != 2 {
		t.Fatalf("ran = %d after Run, want 2", ran)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(1, func() { ran++; e.Stop() })
	e.Schedule(2, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (stopped)", ran)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(-5, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative delay not clamped to now")
	}
}

// Property: events scheduled with arbitrary non-negative delays fire in
// sorted time order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			e.Schedule(Time(d), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the engine executes exactly one event per scheduled callback.
func TestEventCountProperty(t *testing.T) {
	f := func(delays []uint8) bool {
		e := NewEngine()
		for _, d := range delays {
			e.Schedule(Time(d), func() {})
		}
		e.Run()
		return e.EventsExecuted() == uint64(len(delays))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.50us"},
		{2500000, "2.50ms"},
		{3 * Second, "3.000s"},
		{-1500, "-1.50us"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestDurationOf(t *testing.T) {
	cases := []struct {
		name        string
		bytes       int64
		bytesPerSec float64
		want        Time
	}{
		// Exact divisions: the quotient is an integer nanosecond count.
		{"exact 1ns", 23, 23e9, 1},
		{"exact 1us", 1000, 1e9, 1 * Microsecond},
		{"exact 1s", 12_500_000_000, 12.5e9, Second},
		{"zero bytes", 0, 1e9, 0},
		// Fractional results: round half-up, never truncate.
		{"0.5ns rounds up", 1, 2e9, 1},               // 0.5 ns
		{"0.25ns rounds down", 1, 4e9, 0},            // 0.25 ns
		{"0.75ns rounds up", 3, 4e9, 1},              // 0.75 ns
		{"just under half", 49, 100e9, 0},            // 0.49 ns
		{"just over half", 51, 100e9, 1},             // 0.51 ns
		{"large fractional", 1 << 20, 12.5e9, 83886}, // 83886.08 ns
	}
	for _, c := range cases {
		if got := DurationOf(c.bytes, c.bytesPerSec); got != c.want {
			t.Errorf("%s: DurationOf(%d, %g) = %v, want %v", c.name, c.bytes, c.bytesPerSec, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("zero bandwidth did not panic")
		}
	}()
	DurationOf(1, 0)
}

func TestEventHeapOrdering(t *testing.T) {
	// Push a scrambled schedule and verify pops come back sorted by
	// (time, insertion order). The RNG makes heavy duplicate times so
	// the seq tiebreak is actually exercised.
	var h eventHeap
	rng := NewRNG(42)
	const n = 2000
	for seq := uint64(1); seq <= n; seq++ {
		h.pushEv(event{at: Time(rng.Intn(50)), seq: seq})
	}
	var last event
	for i := 0; i < n; i++ {
		e := h.popMin()
		if i > 0 && e.before(last) {
			t.Fatalf("pop %d out of order: (%v,%d) after (%v,%d)", i, e.at, e.seq, last.at, last.seq)
		}
		last = e
	}
	if len(h) != 0 {
		t.Fatalf("heap not drained: %d left", len(h))
	}
}

func TestEventHeapPopClearsSlot(t *testing.T) {
	// The vacated tail slot must not retain the popped event's closure.
	var h eventHeap
	fn := func() {}
	h.pushEv(event{at: 1, seq: 1, fn: fnToPtr(fn)})
	h.pushEv(event{at: 2, seq: 2, fn: fnToPtr(fn)})
	h.popMin()
	tail := h[:cap(h)][len(h)]
	if tail.fn != nil || tail.at != 0 || tail.seq != 0 {
		t.Fatalf("vacated slot still live: %+v", tail)
	}
}

func TestEventPayloadRoundTrip(t *testing.T) {
	// The packed single-word payload must survive the round trip for
	// both event forms: a closure (with captured state) and a signal.
	n := 0
	fn := func() { n++ }
	ptrToFn(fnToPtr(fn))()
	if n != 1 {
		t.Fatal("packed closure did not run")
	}
	e := NewEngine()
	s := NewSignal()
	e.FireAt(5, s)
	e.Run()
	if !s.Fired() {
		t.Fatal("packed signal event did not fire")
	}
	if e.Now() != 5 {
		t.Fatalf("fire event ran at %v, want 5", e.Now())
	}
}
