package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Schedule(10, func() {
		hits = append(hits, e.Now())
		e.Schedule(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("hits = %v, want [10 15]", hits)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(10, func() { ran++ })
	e.Schedule(100, func() { ran++ })
	e.RunUntil(50)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if e.Now() != 50 {
		t.Fatalf("now = %v, want 50", e.Now())
	}
	e.Run()
	if ran != 2 {
		t.Fatalf("ran = %d after Run, want 2", ran)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(1, func() { ran++; e.Stop() })
	e.Schedule(2, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (stopped)", ran)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(-5, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative delay not clamped to now")
	}
}

// Property: events scheduled with arbitrary non-negative delays fire in
// sorted time order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			e.Schedule(Time(d), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the engine executes exactly one event per scheduled callback.
func TestEventCountProperty(t *testing.T) {
	f := func(delays []uint8) bool {
		e := NewEngine()
		for _, d := range delays {
			e.Schedule(Time(d), func() {})
		}
		e.Run()
		return e.EventsExecuted() == uint64(len(delays))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.50us"},
		{2500000, "2.50ms"},
		{3 * Second, "3.000s"},
		{-1500, "-1.50us"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestDurationOf(t *testing.T) {
	// 23 GB/s, 23 bytes -> 1 ns.
	if d := DurationOf(23, 23e9); d != 1 {
		t.Fatalf("DurationOf = %v, want 1ns", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("zero bandwidth did not panic")
		}
	}()
	DurationOf(1, 0)
}
