// Exascale-scale Jacobi3D on the conservative parallel-in-run layer.
//
// The full-machine variants in this package simulate every kernel
// launch, DMA and NIC reservation on one engine — faithful, but serial
// and O(events) in GPU detail, which caps practical sweeps around a
// few hundred nodes. RunExa asks the paper's weak-scaling question at
// 10k+ nodes instead: each node is one pdes logical process with an
// aggregate roofline cost model (node compute from GPU memory
// bandwidth, halo exchange from the α–β wire model), so the event
// count is O(nodes · iterations · faces) and the run partitions
// across engine shards with the topology-derived lookahead.
//
// The model answers the overlap question structurally: the Blocking
// series sends halos only when the whole update finishes (transit
// fully exposed), the Overlap series computes boundary cells first,
// sends halos, and overlaps the interior update with their flight —
// the §III-C design point, reduced to its timing skeleton.
package jacobi

import (
	"fmt"

	"gat/internal/machine"
	"gat/internal/netsim"
	"gat/internal/pdes"
	"gat/internal/sim"
)

// ExaOpts tunes an exascale LP-model run.
type ExaOpts struct {
	// Shards is the parallel-in-run shard count (<= 1 means serial).
	// Results are byte-identical at any value.
	Shards int
	// Overlap selects the boundary-first overlapped schedule instead of
	// the blocking one.
	Overlap bool
}

// ExaResult is the outcome of one LP-model run. All fields except the
// partition diagnostics (Shards, Windows) are independent of ExaOpts.Shards.
type ExaResult struct {
	// TimePerIter is the average time per timed iteration, measured
	// between the global completions of the warmup boundary and the
	// final iteration.
	TimePerIter sim.Time
	// Total is the completion time of the last iteration on any node.
	Total sim.Time
	// Events is the number of delivered messages (engine events),
	// summed over shards; partition-independent.
	Events uint64
	// NetBytes and NetMsgs count the halo traffic sent.
	NetBytes int64
	NetMsgs  uint64
	// Shards is the effective shard count (groups bound it); Windows
	// and CrossMessages the lookahead-window diagnostics, and Lookahead
	// the derived window bound. Partition-dependent: diagnostics only,
	// never figure values.
	Shards        int
	Windows       uint64
	CrossMessages uint64
	Lookahead     sim.Time
}

// Message kinds of the exa protocol.
const (
	exaStart int32 = iota
	exaBoundaryDone
	exaComputeDone
	exaHalo
)

// exaNeighbor is one face-adjacent node: its LP id, the halo size, and
// the full send→deliver delay under the α–β model.
type exaNeighbor struct {
	lp    int32
	bytes int64
	delay sim.Time
}

// exaNode is one node's LP state. The slice of these is indexed by LP
// id; during the run each element is touched only by its owner shard.
type exaNode struct {
	// Static after setup.
	neighbors  []exaNeighbor
	boundaryT  sim.Time // boundary-update + pack + launch time
	interiorT  sim.Time // interior-update time
	iters      int      // total iterations (warmup + timed)
	warmupIter int
	overlap    bool

	// Mutable per-iteration state.
	k           int    // current iteration, 1-based
	computeDone bool   // this iteration's update has finished
	got         [2]int // halos received, indexed by epoch parity
	warmAt      sim.Time
	doneAt      sim.Time
	sentMsgs    uint64
	sentBytes   int64
}

// exaHandler drives one node's iteration protocol. It is a
// deterministic function of the node's state and the message, as the
// pdes delivery contract requires.
func exaHandler(nodes []exaNode) pdes.Handler {
	return func(ctx *pdes.Ctx, m pdes.Message) {
		s := &nodes[ctx.LP()]
		switch m.Kind {
		case exaStart:
			exaStartIter(ctx, s, 1)
		case exaBoundaryDone:
			exaSendHalos(ctx, s, int(m.Data))
			ctx.Send(ctx.LP(), s.interiorT, exaComputeDone, m.Data)
		case exaComputeDone:
			k := int(m.Data)
			if !s.overlap {
				exaSendHalos(ctx, s, k)
			}
			s.computeDone = true
			if k == s.warmupIter {
				s.warmAt = ctx.Now()
			}
			if k == s.iters {
				s.doneAt = ctx.Now()
				return
			}
			if s.got[k&1] == len(s.neighbors) {
				exaAdvance(ctx, s)
			}
		case exaHalo:
			e := int(m.Data)
			if e != s.k && e != s.k+1 {
				//gat:alloc-ok cold panic path
				panic(fmt.Sprintf("jacobi: node %d got a halo for epoch %d while in %d", ctx.LP(), e, s.k))
			}
			s.got[e&1]++
			if s.computeDone && e == s.k && s.got[e&1] == len(s.neighbors) {
				exaAdvance(ctx, s)
			}
		}
	}
}

// exaStartIter begins iteration k: the overlapped schedule splits the
// update at the boundary so halos leave before the interior runs; the
// blocking schedule is one fused delay with halos sent at the end.
func exaStartIter(ctx *pdes.Ctx, s *exaNode, k int) {
	s.k = k
	s.computeDone = false
	if s.overlap {
		ctx.Send(ctx.LP(), s.boundaryT, exaBoundaryDone, int64(k))
		return
	}
	ctx.Send(ctx.LP(), s.boundaryT+s.interiorT, exaComputeDone, int64(k))
}

// exaAdvance moves to the next iteration once the current update is
// done and all of this epoch's halos arrived.
func exaAdvance(ctx *pdes.Ctx, s *exaNode) {
	s.got[s.k&1] = 0
	exaStartIter(ctx, s, s.k+1)
}

// exaSendHalos emits iteration k's halo messages. The final iteration
// sends none: nothing waits on them, and skipping them keeps NetMsgs
// meaningful (every counted message is load-bearing).
func exaSendHalos(ctx *pdes.Ctx, s *exaNode, k int) {
	if k == s.iters {
		return
	}
	for _, nb := range s.neighbors {
		ctx.Send(int(nb.lp), nb.delay, exaHalo, int64(k))
		s.sentMsgs++
		s.sentBytes += nb.bytes
	}
}

// RunExa runs the node-level LP model of Jacobi3D on the machine
// configuration (which is consumed as a cost model only — no Machine,
// no per-node pipes are instantiated). The partition is group-aligned:
// whole switch groups per shard, so the lookahead is the cross-group
// wire latency and every cross-shard halo legally clears it.
func RunExa(cfg machine.Config, jc Config, opts ExaOpts) ExaResult {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	jc = jc.DefaultIterations()
	nNodes := cfg.Nodes
	d := NewDecomp(jc.Global, nNodes)

	podSize := cfg.Net.PodSize
	if podSize <= 0 {
		podSize = 18 // netsim.New's default
	}
	topo, err := netsim.TopologyByName(cfg.Net.Topology, podSize, nNodes)
	if err != nil {
		panic(err) // Validate accepted it above
	}

	// Group-aligned partition: contiguous runs of switch groups per
	// shard, clamped so no shard is empty.
	nGroups := topo.Group(nNodes-1) + 1
	k := opts.Shards
	if k < 1 {
		k = 1
	}
	if k > nGroups {
		k = nGroups
	}
	groupsPer := (nGroups + k - 1) / k
	shardOf := func(node int) int { return topo.Group(node) / groupsPer }
	lookahead := netsim.MinCrossLatency(cfg.Net, topo, nNodes, shardOf)

	// Aggregate node roofline: all GPUs stream the update together.
	aggBW := cfg.GPU.MemBandwidth * float64(cfg.GPUsPerNode)
	launch := cfg.GPU.KernelLaunchHost

	nodes := make([]exaNode, nNodes)
	totalIters := jc.Warmup + jc.Iters
	for n := 0; n < nNodes; n++ {
		b := d.BlockFlat(n)
		s := &nodes[n]
		s.iters = totalIters
		s.warmupIter = jc.Warmup
		s.overlap = opts.Overlap
		interior := b.InteriorVolume()
		boundary := b.Volume() - interior
		// Boundary phase carries the pack traffic and the launch cost;
		// interior is the pure streamed update.
		s.boundaryT = launch +
			sim.DurationOf(boundary*UpdateBytesPerCell+b.TotalFaceCells()*PackBytesPerCell, aggBW)
		s.interiorT = launch + sim.DurationOf(interior*UpdateBytesPerCell, aggBW)
		for _, nb := range b.Neighbors() {
			peer := d.Flatten(nb.Idx)
			bytes := b.FaceBytes(nb.Face)
			delay := netsim.PathLatency(cfg.Net, topo, n, peer) +
				cfg.Net.NICOverhead + sim.DurationOf(bytes, cfg.Net.InjectionBW)
			s.neighbors = append(s.neighbors, exaNeighbor{lp: int32(peer), bytes: bytes, delay: delay})
		}
	}

	r := pdes.MustNew(pdes.Config{
		LPs:       nNodes,
		Shards:    k,
		Lookahead: lookahead,
		ShardOf:   shardOf,
		Handler:   exaHandler(nodes),
	})
	for n := 0; n < nNodes; n++ {
		r.Post(n, 0, exaStart, 0)
	}
	r.Run()

	st := r.Stats()
	res := ExaResult{
		Events:        st.Events,
		Shards:        st.Shards,
		Windows:       st.Windows,
		CrossMessages: st.CrossMessages,
		Lookahead:     lookahead,
	}
	var warmMax, doneMax sim.Time
	for n := range nodes {
		s := &nodes[n]
		if s.doneAt == 0 && s.iters > 0 {
			//gat:alloc-ok cold panic path
			panic(fmt.Sprintf("jacobi: node %d never completed (stuck at iteration %d)", n, s.k))
		}
		if s.warmAt > warmMax {
			warmMax = s.warmAt
		}
		if s.doneAt > doneMax {
			doneMax = s.doneAt
		}
		res.NetMsgs += s.sentMsgs
		res.NetBytes += s.sentBytes
	}
	res.Total = doneMax
	res.TimePerIter = (doneMax - warmMax) / sim.Time(jc.Iters)
	return res
}
