package jacobi

import (
	"testing"

	"gat/internal/machine"
	"gat/internal/sim"
)

// smallCfg is a quick configuration for variant tests.
func smallCfg() Config {
	return Config{Global: [3]int{192, 192, 192}, Warmup: 1, Iters: 4}
}

func largeCfg() Config {
	return Config{Global: [3]int{1536, 1536, 1536}, Warmup: 1, Iters: 3}
}

func TestMPIHostRuns(t *testing.T) {
	m := machine.MustNew(machine.Summit(1))
	res := RunMPI(m, smallCfg(), MPIOpts{})
	if res.TimePerIter <= 0 {
		t.Fatalf("bad result: %v", res)
	}
	if res.Kernels == 0 || res.NetMsgs == 0 {
		t.Fatalf("no GPU/network activity: %v", res)
	}
}

func TestMPIDeviceRuns(t *testing.T) {
	m := machine.MustNew(machine.Summit(1))
	res := RunMPI(m, smallCfg(), MPIOpts{Device: true})
	if res.TimePerIter <= 0 {
		t.Fatalf("bad result: %v", res)
	}
}

func TestCharmHostRuns(t *testing.T) {
	m := machine.MustNew(machine.Summit(1))
	res := RunCharm(m, smallCfg(), CharmOpts{ODF: 1}.Optimized())
	if res.TimePerIter <= 0 {
		t.Fatalf("bad result: %v", res)
	}
}

func TestCharmDeviceRuns(t *testing.T) {
	m := machine.MustNew(machine.Summit(1))
	res := RunCharm(m, smallCfg(), CharmOpts{ODF: 2, GPUAware: true}.Optimized())
	if res.TimePerIter <= 0 {
		t.Fatalf("bad result: %v", res)
	}
}

func TestCharmODFRunsAllVariants(t *testing.T) {
	for _, odf := range []int{1, 2, 4} {
		for _, aware := range []bool{false, true} {
			m := machine.MustNew(machine.Summit(1))
			res := RunCharm(m, smallCfg(), CharmOpts{ODF: odf, GPUAware: aware}.Optimized())
			if res.TimePerIter <= 0 {
				t.Fatalf("odf=%d aware=%v: bad result %v", odf, aware, res)
			}
		}
	}
}

func TestDeviceAwareSmallBeatsHostStagingMPI(t *testing.T) {
	// Small halos go GPUDirect: MPI-D must beat MPI-H (Fig 7b).
	cfg := smallCfg()
	mH := machine.MustNew(machine.Summit(2))
	mD := machine.MustNew(machine.Summit(2))
	h := RunMPI(mH, cfg, MPIOpts{})
	d := RunMPI(mD, cfg, MPIOpts{Device: true})
	if d.TimePerIter >= h.TimePerIter {
		t.Fatalf("MPI-D (%v) should beat MPI-H (%v) on small halos", d.TimePerIter, h.TimePerIter)
	}
}

func TestCharmDBeatsCharmHSmall(t *testing.T) {
	cfg := smallCfg()
	mH := machine.MustNew(machine.Summit(2))
	mD := machine.MustNew(machine.Summit(2))
	h := RunCharm(mH, cfg, CharmOpts{ODF: 1}.Optimized())
	d := RunCharm(mD, cfg, CharmOpts{ODF: 1, GPUAware: true}.Optimized())
	if d.TimePerIter >= h.TimePerIter {
		t.Fatalf("Charm-D (%v) should beat Charm-H (%v) on small halos", d.TimePerIter, h.TimePerIter)
	}
}

func TestAfterOptimizationsBeatBefore(t *testing.T) {
	// Fig 6: removing the redundant sync and splitting transfer streams
	// must improve Charm-H.
	cfg := smallCfg()
	mB := machine.MustNew(machine.Summit(1))
	mA := machine.MustNew(machine.Summit(1))
	before := RunCharm(mB, cfg, CharmOpts{ODF: 4})
	after := RunCharm(mA, cfg, CharmOpts{ODF: 4}.Optimized())
	if after.TimePerIter >= before.TimePerIter {
		t.Fatalf("after (%v) should beat before (%v)", after.TimePerIter, before.TimePerIter)
	}
}

func TestFusionReducesKernelCount(t *testing.T) {
	cfg := smallCfg()
	counts := map[Fusion]uint64{}
	for _, f := range []Fusion{FusionNone, FusionA, FusionB, FusionC} {
		m := machine.MustNew(machine.Summit(1))
		res := RunCharm(m, cfg, CharmOpts{ODF: 1, GPUAware: true, Fusion: f}.Optimized())
		counts[f] = res.Kernels
	}
	if !(counts[FusionC] < counts[FusionB] && counts[FusionB] < counts[FusionA] && counts[FusionA] < counts[FusionNone]) {
		t.Fatalf("kernel counts should strictly decrease with fusion aggressiveness: %v", counts)
	}
}

func TestGraphsReduceHostLaunchWork(t *testing.T) {
	// CUDA graphs replace per-kernel launches with one graph launch;
	// total PE busy time must drop at high ODF.
	cfg := smallCfg()
	run := func(graphs bool) sim.Time {
		m := machine.MustNew(machine.Summit(1))
		RunCharm(m, cfg, CharmOpts{ODF: 8, GPUAware: true, Graphs: graphs}.Optimized())
		return m.Eng.Now()
	}
	plain := run(false)
	graphed := run(true)
	if graphed >= plain {
		t.Fatalf("graphs (%v) should beat plain launches (%v) at ODF-8", graphed, plain)
	}
}

func TestWeakScalingLargeProblemGPUDirectProtocolChange(t *testing.T) {
	// 9 MB halos: MPI-D falls back to pipelined host staging across
	// nodes, erasing most of its advantage over MPI-H (Fig 7a).
	cfg := largeCfg()
	mH := machine.MustNew(machine.Summit(2))
	mD := machine.MustNew(machine.Summit(2))
	h := RunMPI(mH, cfg, MPIOpts{})
	d := RunMPI(mD, cfg, MPIOpts{Device: true})
	ratio := float64(h.TimePerIter) / float64(d.TimePerIter)
	if ratio > 1.35 {
		t.Fatalf("MPI-D should NOT be much faster than MPI-H for 9MB halos (ratio %.2f)", ratio)
	}
	if ratio < 0.7 {
		t.Fatalf("MPI-D should not be much slower than MPI-H either (ratio %.2f)", ratio)
	}
}

func TestOverlapFlagHelpsMPI(t *testing.T) {
	cfg := largeCfg()
	mOff := machine.MustNew(machine.Summit(2))
	mOn := machine.MustNew(machine.Summit(2))
	off := RunMPI(mOff, cfg, MPIOpts{})
	on := RunMPI(mOn, cfg, MPIOpts{Overlap: true})
	if on.TimePerIter >= off.TimePerIter {
		t.Fatalf("manual overlap (%v) should beat no overlap (%v)", on.TimePerIter, off.TimePerIter)
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := smallCfg()
	run := func() Result {
		m := machine.MustNew(machine.Summit(1))
		return RunCharm(m, cfg, CharmOpts{ODF: 2, GPUAware: true}.Optimized())
	}
	a, b := run(), run()
	if a.TimePerIter != b.TimePerIter || a.Events != b.Events {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestFusionRequiresGPUAware(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("fusion without GPU-aware communication did not panic")
		}
	}()
	m := machine.MustNew(machine.Summit(1))
	RunCharm(m, smallCfg(), CharmOpts{ODF: 1, Fusion: FusionC}.Optimized())
}
