package jacobi

// Decomposition of the global grid over processes or chares. The grid
// is split into a px×py×pz block grid chosen to minimize aggregate
// surface area (communication volume), matching the paper's setup
// (§IV-A).

// Face identifiers: axis = face/2, direction = face%2 (0 = minus,
// 1 = plus). Opposite(face) flips the direction.
const (
	FaceXMinus = iota
	FaceXPlus
	FaceYMinus
	FaceYPlus
	FaceZMinus
	FaceZPlus
	NumFaces
)

// Opposite returns the face on the other side of the shared plane.
func Opposite(face int) int { return face ^ 1 }

// BestDims returns the factorization of n into three block-grid
// dimensions minimizing total surface area for the given global grid.
// Ties break lexicographically for determinism.
func BestDims(n int, global [3]int) [3]int {
	best := [3]int{n, 1, 1}
	bestSurf := int64(-1)
	for a := 1; a <= n; a++ {
		if n%a != 0 {
			continue
		}
		rest := n / a
		for b := 1; b <= rest; b++ {
			if rest%b != 0 {
				continue
			}
			c := rest / b
			bx := ceilDiv(global[0], a)
			by := ceilDiv(global[1], b)
			bz := ceilDiv(global[2], c)
			surf := 2 * (int64(bx)*int64(by) + int64(by)*int64(bz) + int64(bx)*int64(bz)) * int64(n)
			if bestSurf < 0 || surf < bestSurf {
				bestSurf = surf
				best = [3]int{a, b, c}
			}
		}
	}
	return best
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Decomp is a block decomposition of the global grid.
type Decomp struct {
	Global [3]int
	Dims   [3]int // block-grid dimensions
}

// NewDecomp decomposes global over n blocks.
func NewDecomp(global [3]int, n int) Decomp {
	return Decomp{Global: global, Dims: BestDims(n, global)}
}

// Count returns the number of blocks.
func (d Decomp) Count() int { return d.Dims[0] * d.Dims[1] * d.Dims[2] }

// Block is one block of the decomposition.
type Block struct {
	D    Decomp
	Idx  [3]int
	Size [3]int // cells per axis
}

// Block returns the block at position idx. Boundary blocks absorb the
// remainder when the global size does not divide evenly.
func (d Decomp) Block(idx [3]int) Block {
	var size [3]int
	for ax := 0; ax < 3; ax++ {
		per := ceilDiv(d.Global[ax], d.Dims[ax])
		lo := idx[ax] * per
		hi := lo + per
		if hi > d.Global[ax] {
			hi = d.Global[ax]
		}
		size[ax] = hi - lo
		if size[ax] < 0 {
			size[ax] = 0
		}
	}
	return Block{D: d, Idx: idx, Size: size}
}

// BlockFlat returns the block at flat index f (x-major, matching
// charm.Array).
func (d Decomp) BlockFlat(f int) Block {
	z := f % d.Dims[2]
	y := (f / d.Dims[2]) % d.Dims[1]
	x := f / (d.Dims[1] * d.Dims[2])
	return d.Block([3]int{x, y, z})
}

// Flatten converts a block index to its flat position.
func (d Decomp) Flatten(idx [3]int) int {
	return (idx[0]*d.Dims[1]+idx[1])*d.Dims[2] + idx[2]
}

// Volume returns the block's cell count.
func (b Block) Volume() int64 {
	return int64(b.Size[0]) * int64(b.Size[1]) * int64(b.Size[2])
}

// FaceCells returns the number of cells on the face along the given
// axis.
func (b Block) FaceCells(axis int) int64 {
	switch axis {
	case 0:
		return int64(b.Size[1]) * int64(b.Size[2])
	case 1:
		return int64(b.Size[0]) * int64(b.Size[2])
	default:
		return int64(b.Size[0]) * int64(b.Size[1])
	}
}

// FaceBytes returns the halo message size for the given face.
func (b Block) FaceBytes(face int) int64 {
	return b.FaceCells(face/2) * ElemBytes
}

// InteriorVolume returns the cell count of the block interior (the part
// updatable without halo data), for the manual-overlap MPI variant.
func (b Block) InteriorVolume() int64 {
	v := int64(1)
	for ax := 0; ax < 3; ax++ {
		s := b.Size[ax] - 2
		if s < 0 {
			s = 0
		}
		v *= int64(s)
	}
	return v
}

// Neighbor is one face-adjacent block.
type Neighbor struct {
	Face int
	Idx  [3]int
}

// Neighbors returns the block's existing face neighbors (non-periodic
// boundaries), ordered by face id for determinism.
func (b Block) Neighbors() []Neighbor {
	var out []Neighbor
	for face := 0; face < NumFaces; face++ {
		ax := face / 2
		delta := -1
		if face%2 == 1 {
			delta = 1
		}
		ni := b.Idx
		ni[ax] += delta
		if ni[ax] < 0 || ni[ax] >= b.D.Dims[ax] {
			continue
		}
		out = append(out, Neighbor{Face: face, Idx: ni})
	}
	return out
}

// TotalFaceCells returns the sum of halo cells over the block's
// existing neighbors (the thread count basis for fused kernels).
func (b Block) TotalFaceCells() int64 {
	var total int64
	for _, n := range b.Neighbors() {
		total += b.FaceCells(n.Face / 2)
	}
	return total
}
