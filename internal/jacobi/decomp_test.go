package jacobi

import (
	"testing"
	"testing/quick"
)

func TestBestDimsCube(t *testing.T) {
	// A cube over 8 blocks should split 2x2x2.
	d := BestDims(8, [3]int{512, 512, 512})
	if d != [3]int{2, 2, 2} {
		t.Fatalf("dims = %v, want {2 2 2}", d)
	}
}

func TestBestDimsSixGPUs(t *testing.T) {
	// The single-node case from the paper: 1536^3 over 6 GPUs splits
	// 3x2x1 (or a permutation with equal surface).
	d := BestDims(6, [3]int{1536, 1536, 1536})
	if d[0]*d[1]*d[2] != 6 {
		t.Fatalf("dims %v do not multiply to 6", d)
	}
	blk := NewDecomp([3]int{1536, 1536, 1536}, 6).Block([3]int{0, 0, 0})
	// Max halo face must be around 9 MB as the paper reports (§IV-B).
	var maxBytes int64
	for f := 0; f < NumFaces; f++ {
		if b := blk.FaceBytes(f); b > maxBytes {
			maxBytes = b
		}
	}
	if maxBytes < 8<<20 || maxBytes > 10<<20 {
		t.Fatalf("max halo = %d bytes, want ~9MB", maxBytes)
	}
}

func TestSmallProblemHaloSize(t *testing.T) {
	// 192^3 over 6 GPUs (1x2x3 split): face sizes are 48/96/144 KiB;
	// the paper quotes "up to 96 KB" for the faces most blocks exchange.
	blk := NewDecomp([3]int{192, 192, 192}, 6).Block([3]int{0, 0, 0})
	sizes := map[int64]bool{}
	for f := 0; f < NumFaces; f++ {
		sizes[blk.FaceBytes(f)] = true
	}
	for _, want := range []int64{48 << 10, 96 << 10, 144 << 10} {
		if !sizes[want] {
			t.Fatalf("face sizes %v missing %d", sizes, want)
		}
	}
}

func TestBlockVolumeConservation(t *testing.T) {
	d := NewDecomp([3]int{100, 90, 80}, 12)
	var total int64
	for f := 0; f < d.Count(); f++ {
		total += d.BlockFlat(f).Volume()
	}
	if want := int64(100) * 90 * 80; total != want {
		t.Fatalf("total volume %d, want %d", total, want)
	}
}

func TestNeighborsInteriorBlock(t *testing.T) {
	d := NewDecomp([3]int{64, 64, 64}, 27) // 3x3x3
	if d.Dims != [3]int{3, 3, 3} {
		t.Fatalf("dims = %v", d.Dims)
	}
	center := d.Block([3]int{1, 1, 1})
	if len(center.Neighbors()) != 6 {
		t.Fatalf("center block has %d neighbors, want 6", len(center.Neighbors()))
	}
	corner := d.Block([3]int{0, 0, 0})
	if len(corner.Neighbors()) != 3 {
		t.Fatalf("corner block has %d neighbors, want 3", len(corner.Neighbors()))
	}
}

func TestNeighborSymmetry(t *testing.T) {
	d := NewDecomp([3]int{48, 48, 48}, 24)
	for f := 0; f < d.Count(); f++ {
		blk := d.BlockFlat(f)
		for _, nb := range blk.Neighbors() {
			back := d.Block(nb.Idx)
			found := false
			for _, bn := range back.Neighbors() {
				if bn.Idx == blk.Idx && bn.Face == Opposite(nb.Face) {
					found = true
				}
			}
			if !found {
				t.Fatalf("neighbor relation not symmetric: %v face %d -> %v", blk.Idx, nb.Face, nb.Idx)
			}
		}
	}
}

func TestOpposite(t *testing.T) {
	pairs := [][2]int{{FaceXMinus, FaceXPlus}, {FaceYMinus, FaceYPlus}, {FaceZMinus, FaceZPlus}}
	for _, p := range pairs {
		if Opposite(p[0]) != p[1] || Opposite(p[1]) != p[0] {
			t.Fatalf("Opposite broken for pair %v", p)
		}
	}
}

func TestInteriorVolume(t *testing.T) {
	d := NewDecomp([3]int{10, 10, 10}, 1)
	blk := d.Block([3]int{0, 0, 0})
	if iv := blk.InteriorVolume(); iv != 8*8*8 {
		t.Fatalf("interior volume = %d, want 512", iv)
	}
}

// Property: BestDims always factors n exactly and never loses cells.
func TestBestDimsFactorsProperty(t *testing.T) {
	f := func(nRaw uint8, gx, gy, gz uint8) bool {
		n := int(nRaw)%64 + 1
		g := [3]int{int(gx)%64 + 64, int(gy)%64 + 64, int(gz)%64 + 64}
		dims := BestDims(n, g)
		if dims[0]*dims[1]*dims[2] != n {
			return false
		}
		d := Decomp{Global: g, Dims: dims}
		var vol int64
		for f := 0; f < n; f++ {
			vol += d.BlockFlat(f).Volume()
		}
		return vol == int64(g[0])*int64(g[1])*int64(g[2])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: flatten/unflatten round-trips.
func TestDecompFlattenProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)%48 + 1
		d := NewDecomp([3]int{96, 96, 96}, n)
		for flat := 0; flat < d.Count(); flat++ {
			if d.Flatten(d.BlockFlat(flat).Idx) != flat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFusionStringAndCosts(t *testing.T) {
	if FusionNone.String() != "none" || FusionC.String() != "C" {
		t.Fatal("fusion names wrong")
	}
	// Fused-all traffic must exceed the plain update (it also moves
	// halo bytes) but stay below update + 2*sum-faces*pack*2.
	vol, faces := int64(1000_000), int64(60_000)
	fa := fusedAllBytes(vol, faces)
	if fa <= updateKernelBytes(vol) {
		t.Fatal("fusedAll should cost more than the bare update")
	}
	if fa >= updateKernelBytes(vol)+4*packKernelBytes(faces) {
		t.Fatal("fusedAll cost implausibly high")
	}
}
