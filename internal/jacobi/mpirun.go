package jacobi

import (
	"gat/internal/gpu"
	"gat/internal/machine"
	"gat/internal/mpi"
	"gat/internal/sim"
)

// MPIOpts selects the MPI variant behaviour.
type MPIOpts struct {
	// Device enables CUDA-aware communication (MPI-D): halo buffers are
	// passed to the library on the device. Otherwise the application
	// stages through host buffers (MPI-H).
	Device bool
	// Overlap enables the manual interior/exterior split of Fig 1b,
	// overlapping the interior update with the halo exchange.
	Overlap bool
	// ResidualEvery, when positive, performs a global residual
	// allreduce every that many iterations — the convergence check a
	// production Jacobi solver carries that the proxy omits.
	ResidualEvery int
}

// RunMPI executes Jacobi3D with the MPI runtime on machine m and
// returns the measured result. One rank per GPU; the global grid is
// decomposed over all ranks with minimal surface area.
func RunMPI(m *machine.Machine, cfg Config, opts MPIOpts) Result {
	cfg = cfg.DefaultIterations()
	w := mpi.NewWorld(m, mpi.DefaultOptions())
	d := NewDecomp(cfg.Global, w.Size())

	kind := mpi.Host
	if opts.Device {
		kind = mpi.Device
	}
	total := cfg.Warmup + cfg.Iters
	var tWarm, tEnd sim.Time
	warmEpoch, endEpoch := 1_000_001, 1_000_002

	w.Run(func(r *mpi.Rank) {
		dev := r.GPU()
		gcfg := dev.Config()
		blk := d.BlockFlat(r.ID())
		nbrs := blk.Neighbors()
		// Two block copies plus send/recv halo buffers must fit in
		// device memory (the paper's 1536^3-per-node case uses ~9 GB
		// of the V100's 16 GB, §IV-B).
		dev.Alloc("jacobi/grids", 2*blk.Volume()*ElemBytes)
		dev.Alloc("jacobi/halos", 2*blk.TotalFaceCells()*ElemBytes)
		packS := dev.NewStream("pack", gpu.PriorityHigh)
		d2hS := dev.NewStream("d2h", gpu.PriorityHigh)
		h2dS := dev.NewStream("h2d", gpu.PriorityHigh)
		updS := dev.NewStream("update", gpu.PriorityNormal)
		p := r.Proc()

		// Per-iteration scratch, hoisted out of the loop and reset with
		// [:0] so the steady state allocates nothing.
		packSigs := make([]*sim.Signal, 0, len(nbrs))
		d2hSigs := make([]*sim.Signal, 0, len(nbrs))
		unpackSigs := make([]*sim.Signal, 0, len(nbrs))
		reqs := make([]*mpi.Request, 0, 2*len(nbrs))

		for iter := 0; iter < total; iter++ {
			if iter == cfg.Warmup {
				r.Barrier(warmEpoch)
				if r.ID() == 0 {
					tWarm = r.Engine().Now()
				}
			}
			// Pack halo faces on the high-priority stream.
			packSigs = packSigs[:0]
			d2hSigs = d2hSigs[:0]
			for _, nb := range nbrs {
				r.Compute(gcfg.KernelLaunchHost)
				sig := packS.KernelBytes("pack", packKernelBytes(blk.FaceCells(nb.Face/2)))
				packSigs = append(packSigs, sig)
				if !opts.Device {
					r.Compute(gcfg.CopyLaunchHost)
					d2hS.WaitSignal(sig)
					d2hSigs = append(d2hSigs, d2hS.Copy(gpu.D2H, blk.FaceBytes(nb.Face)))
				}
			}
			// The send buffers must be ready before posting sends.
			r.Compute(gcfg.SyncOverhead)
			if opts.Device {
				p.WaitAll(packSigs...)
			} else {
				p.WaitAll(d2hSigs...)
			}

			// Non-blocking halo exchange.
			reqs = reqs[:0]
			for _, nb := range nbrs {
				peer := d.Flatten(nb.Idx)
				bytes := blk.FaceBytes(nb.Face)
				reqs = append(reqs,
					r.Irecv(peer, iter*NumFaces+Opposite(nb.Face), kind),
					r.Isend(peer, iter*NumFaces+nb.Face, bytes, kind))
			}

			var interior *sim.Signal
			if opts.Overlap {
				r.Compute(gcfg.KernelLaunchHost)
				interior = updS.KernelBytes("interior", updateKernelBytes(blk.InteriorVolume()))
			}

			r.Waitall(reqs...)

			// Unpack received halos; host staging needs H2D first.
			unpackSigs = unpackSigs[:0]
			for _, nb := range nbrs {
				if !opts.Device {
					r.Compute(gcfg.CopyLaunchHost)
					h2d := h2dS.Copy(gpu.H2D, blk.FaceBytes(nb.Face))
					packS.WaitSignal(h2d)
				}
				r.Compute(gcfg.KernelLaunchHost)
				unpackSigs = append(unpackSigs,
					packS.KernelBytes("unpack", packKernelBytes(blk.FaceCells(nb.Face/2))))
			}

			// Update (exterior only under manual overlap).
			vol := blk.Volume()
			if opts.Overlap {
				vol -= blk.InteriorVolume()
			}
			r.Compute(gcfg.KernelLaunchHost)
			for _, s := range unpackSigs {
				updS.WaitSignal(s)
			}
			upd := updS.KernelBytes("update", updateKernelBytes(vol))

			// End-of-iteration device synchronization (sequential MPI
			// control flow).
			r.Compute(gcfg.SyncOverhead)
			if interior != nil {
				p.Wait(interior)
			}
			p.Wait(upd)

			if opts.ResidualEvery > 0 && (iter+1)%opts.ResidualEvery == 0 {
				// Global residual check: one 8-byte max-allreduce.
				r.Allreduce(2_000_000+iter, 8)
			}
		}
		r.Barrier(endEpoch)
		if r.ID() == 0 {
			tEnd = r.Engine().Now()
		}
	})

	return result(m, (tEnd-tWarm)/sim.Time(cfg.Iters))
}

// result assembles the machine-wide counters shared by both runtimes.
func result(m *machine.Machine, perIter sim.Time) Result {
	maxU, meanU := m.Net.LinkUtilization()
	return Result{
		TimePerIter:  perIter,
		Total:        m.Eng.Now(),
		Events:       m.Eng.EventsExecuted(),
		Kernels:      totalKernels(m),
		NetBytes:     m.Net.BytesMoved(),
		NetMsgs:      m.Net.Messages(),
		MaxLinkUtil:  maxU,
		MeanLinkUtil: meanU,
	}
}

func totalKernels(m *machine.Machine) uint64 {
	var k uint64
	for _, g := range m.GPUs {
		k += g.KernelsLaunched()
	}
	return k
}
