package jacobi

import (
	"gat/internal/gpu"
	"gat/internal/machine"
	"gat/internal/mpi"
	"gat/internal/sim"
)

// MPIOpts selects the MPI variant behaviour.
type MPIOpts struct {
	// Device enables CUDA-aware communication (MPI-D): halo buffers are
	// passed to the library on the device. Otherwise the application
	// stages through host buffers (MPI-H).
	Device bool
	// Overlap enables the manual interior/exterior split of Fig 1b,
	// overlapping the interior update with the halo exchange.
	Overlap bool
	// ResidualEvery, when positive, performs a global residual
	// allreduce every that many iterations — the convergence check a
	// production Jacobi solver carries that the proxy omits.
	ResidualEvery int
}

// RunMPI executes Jacobi3D with the MPI runtime on machine m and
// returns the measured result. One rank per GPU; the global grid is
// decomposed over all ranks with minimal surface area.
func RunMPI(m *machine.Machine, cfg Config, opts MPIOpts) Result {
	return RunMPIWorld(mpi.NewWorld(m, mpi.DefaultOptions()), cfg, opts)
}

// RunMPIWorld is RunMPI on a caller-provided world, so a benchmark or
// sweep batch can reuse one world (and its per-message record arenas)
// across consecutive runs on the same machine. Call World.Reset and
// Machine.ResetTransients between runs.
func RunMPIWorld(w *mpi.World, cfg Config, opts MPIOpts) Result {
	cfg = cfg.DefaultIterations()
	m := w.M
	d := NewDecomp(cfg.Global, w.Size())

	kind := mpi.Host
	if opts.Device {
		kind = mpi.Device
	}
	total := cfg.Warmup + cfg.Iters
	var tWarm, tEnd sim.Time
	warmEpoch, endEpoch := 1_000_001, 1_000_002

	w.Run(func(r *mpi.Rank) {
		dev := r.GPU()
		gcfg := dev.Config()
		blk := d.BlockFlat(r.ID())
		nbrs := blk.Neighbors()
		// Two block copies plus send/recv halo buffers must fit in
		// device memory (the paper's 1536^3-per-node case uses ~9 GB
		// of the V100's 16 GB, §IV-B).
		dev.Alloc("jacobi/grids", 2*blk.Volume()*ElemBytes)
		dev.Alloc("jacobi/halos", 2*blk.TotalFaceCells()*ElemBytes)
		packS := dev.NewStream("pack", gpu.PriorityHigh)
		d2hS := dev.NewStream("d2h", gpu.PriorityHigh)
		h2dS := dev.NewStream("h2d", gpu.PriorityHigh)
		updS := dev.NewStream("update", gpu.PriorityNormal)
		p := r.Proc()

		// Per-iteration scratch, hoisted out of the loop and reset with
		// [:0] so the steady state allocates nothing.
		packSigs := make([]*sim.Signal, 0, len(nbrs))
		d2hSigs := make([]*sim.Signal, 0, len(nbrs))
		unpackSigs := make([]*sim.Signal, 0, len(nbrs))
		reqs := make([]*mpi.Request, 0, 2*len(nbrs))

		// Per-neighbor constants, computed once: the loop below runs
		// every simulated iteration, and the geometry arithmetic is
		// identical each time.
		type nbrPlan struct {
			peer      int
			face      int   // send tag offset; Opposite(face) is the recv offset
			recvOff   int   // Opposite(face), precomputed
			faceBytes int64 // halo message size
			packBytes int64 // pack/unpack kernel traffic
		}
		plan := make([]nbrPlan, len(nbrs))
		for i, nb := range nbrs {
			plan[i] = nbrPlan{
				peer:      d.Flatten(nb.Idx),
				face:      nb.Face,
				recvOff:   Opposite(nb.Face),
				faceBytes: blk.FaceBytes(nb.Face),
				packBytes: packKernelBytes(blk.FaceCells(nb.Face / 2)),
			}
		}
		// Update kernel traffic (exterior only under manual overlap).
		vol := blk.Volume()
		if opts.Overlap {
			vol -= blk.InteriorVolume()
		}
		updKernelTraffic := updateKernelBytes(vol)
		interiorTraffic := updateKernelBytes(blk.InteriorVolume())

		for iter := 0; iter < total; iter++ {
			if iter == cfg.Warmup {
				r.Barrier(warmEpoch)
				if r.ID() == 0 {
					tWarm = r.Engine().Now()
				}
			}
			// Pack halo faces on the high-priority stream.
			packSigs = packSigs[:0]
			d2hSigs = d2hSigs[:0]
			for i := range plan {
				nb := &plan[i]
				r.Compute(gcfg.KernelLaunchHost)
				sig := packS.KernelBytes("pack", nb.packBytes)
				packSigs = append(packSigs, sig)
				if !opts.Device {
					r.Compute(gcfg.CopyLaunchHost)
					d2hS.WaitSignal(sig)
					d2hSigs = append(d2hSigs, d2hS.Copy(gpu.D2H, nb.faceBytes))
				}
			}
			// The send buffers must be ready before posting sends.
			r.Compute(gcfg.SyncOverhead)
			if opts.Device {
				p.WaitAll(packSigs...)
			} else {
				p.WaitAll(d2hSigs...)
			}

			// Non-blocking halo exchange.
			reqs = reqs[:0]
			for i := range plan {
				nb := &plan[i]
				reqs = append(reqs,
					r.Irecv(nb.peer, iter*NumFaces+nb.recvOff, kind),
					r.Isend(nb.peer, iter*NumFaces+nb.face, nb.faceBytes, kind))
			}

			var interior *sim.Signal
			if opts.Overlap {
				r.Compute(gcfg.KernelLaunchHost)
				interior = updS.KernelBytes("interior", interiorTraffic)
			}

			r.Waitall(reqs...)

			// Unpack received halos; host staging needs H2D first.
			unpackSigs = unpackSigs[:0]
			for i := range plan {
				nb := &plan[i]
				if !opts.Device {
					r.Compute(gcfg.CopyLaunchHost)
					h2d := h2dS.Copy(gpu.H2D, nb.faceBytes)
					packS.WaitSignal(h2d)
				}
				r.Compute(gcfg.KernelLaunchHost)
				unpackSigs = append(unpackSigs,
					packS.KernelBytes("unpack", nb.packBytes))
			}

			// Update (exterior only under manual overlap).
			r.Compute(gcfg.KernelLaunchHost)
			for _, s := range unpackSigs {
				updS.WaitSignal(s)
			}
			upd := updS.KernelBytes("update", updKernelTraffic)

			// End-of-iteration device synchronization (sequential MPI
			// control flow).
			r.Compute(gcfg.SyncOverhead)
			if interior != nil {
				p.Wait(interior)
			}
			p.Wait(upd)

			if opts.ResidualEvery > 0 && (iter+1)%opts.ResidualEvery == 0 {
				// Global residual check: one 8-byte max-allreduce.
				r.Allreduce(2_000_000+iter, 8)
			}
		}
		r.Barrier(endEpoch)
		if r.ID() == 0 {
			tEnd = r.Engine().Now()
		}
	})

	return result(m, (tEnd-tWarm)/sim.Time(cfg.Iters))
}

// result assembles the machine-wide counters shared by both runtimes.
func result(m *machine.Machine, perIter sim.Time) Result {
	maxU, meanU := m.Net.LinkUtilization()
	return Result{
		TimePerIter:  perIter,
		Total:        m.Eng.Now(),
		Events:       m.Eng.EventsExecuted(),
		Kernels:      totalKernels(m),
		NetBytes:     m.Net.BytesMoved(),
		NetMsgs:      m.Net.Messages(),
		MaxLinkUtil:  maxU,
		MeanLinkUtil: meanU,
		Routing:      m.Net.RoutingName(),
	}
}

func totalKernels(m *machine.Machine) uint64 {
	var k uint64
	for _, g := range m.GPUs {
		k += g.KernelsLaunched()
	}
	return k
}
