package jacobi

import (
	"gat/internal/charm"
	"gat/internal/comm"
	"gat/internal/gpu"
	"gat/internal/machine"
	"gat/internal/sim"
)

// CharmOpts selects the Charm-style variant behaviour.
type CharmOpts struct {
	// ODF is the overdecomposition factor: chares per PE/GPU. Zero
	// means 1 (no overdecomposition).
	ODF int
	// GPUAware enables Channel-API GPU-aware communication (Charm-D);
	// otherwise halos stage through host memory inside regular runtime
	// messages (Charm-H).
	GPUAware bool
	// Async enables HAPI asynchronous completion detection instead of
	// blocking stream synchronizations, and drops the redundant
	// after-update synchronization (the §III-C "after" optimization).
	Async bool
	// SplitStreams gives D2H and H2D transfers their own high-priority
	// streams instead of sharing the packing stream (the second §III-C
	// optimization).
	SplitStreams bool
	// Fusion selects the kernel fusion strategy (GPU-aware mode only,
	// as in the paper).
	Fusion Fusion
	// Graphs executes each iteration's kernel DAG as a pre-captured
	// executable graph (GPU-aware mode only).
	Graphs bool
	// FlatPriority disables the high-priority streams for packing and
	// transfers, the ablation of the §III-A prescription that
	// communication-related GPU work must bypass bulk kernels.
	FlatPriority bool
	// ResidualEvery, when positive, contributes each chare's residual
	// to an asynchronous tree reduction every that many iterations.
	// Unlike the MPI variant's allreduce this does not block: chares
	// keep iterating while the reduction propagates (§II-A).
	ResidualEvery int
	// UseMessagingAPI replaces the Channel API with the older GPU
	// Messaging API (metadata message + post entry method, §II-B) for
	// the halo transfers — the mechanism the Channel API superseded.
	UseMessagingAPI bool
}

// Optimized returns opts with the §III-C optimizations enabled — the
// baseline for every experiment after Fig 6.
func (o CharmOpts) Optimized() CharmOpts {
	o.Async = true
	o.SplitStreams = true
	return o
}

// Entry method ids for the block chare array.
const (
	entryStart = iota
	entryRecvHalo
)

// chState is the per-chare state of a Jacobi3D block.
type chState struct {
	blk  Block
	nbrs []Neighbor

	packS, d2hS, h2dS, updS *gpu.Stream

	gate     *charm.Gate
	iter     int
	produced *sim.Signal   // input data ready to pack (prev update/graph)
	sends    []*sim.Signal // this iteration's send completions
	unpacks  []*sim.Signal

	channels [NumFaces]*comm.Channel
	graphs   [2]*gpu.Graph

	warmReported bool
}

type charmDriver struct {
	rt    *charm.Runtime
	cfg   Config
	opt   CharmOpts
	d     Decomp
	arr   *charm.Array
	resid *charm.Reduction
	total int

	warmC, doneC *sim.Counter
	tWarm, tEnd  sim.Time
}

// RunCharm executes Jacobi3D with the Charm-style runtime on machine m.
func RunCharm(m *machine.Machine, cfg Config, opt CharmOpts) Result {
	cfg = cfg.DefaultIterations()
	if opt.ODF <= 0 {
		opt.ODF = 1
	}
	if !opt.GPUAware && (opt.Fusion != FusionNone || opt.Graphs) {
		panic("jacobi: fusion and graphs require GPU-aware communication (§III-D)")
	}
	rt := charm.NewRuntime(m, charm.DefaultOptions())
	nChares := rt.NumPEs() * opt.ODF
	drv := &charmDriver{
		rt:    rt,
		cfg:   cfg,
		opt:   opt,
		d:     NewDecomp(cfg.Global, nChares),
		total: cfg.Warmup + cfg.Iters,
		warmC: sim.NewCounter(nChares),
		doneC: sim.NewCounter(nChares),
	}
	drv.warmC.Done().OnFire(m.Eng, func() { drv.tWarm = m.Eng.Now() })
	drv.doneC.Done().OnFire(m.Eng, func() { drv.tEnd = m.Eng.Now() })

	entries := []charm.EntryFn{
		entryStart:    func(el *charm.Elem, ctx *charm.Ctx, msg charm.Msg) { drv.startIter(el, ctx) },
		entryRecvHalo: func(el *charm.Elem, ctx *charm.Ctx, msg charm.Msg) { drv.recvHaloH(el, ctx, msg) },
	}
	drv.arr = charm.NewArray(rt, "block", [3]int{drv.d.Dims[0], drv.d.Dims[1], drv.d.Dims[2]},
		entries, func(ix charm.Index) any { return &chState{} })
	if opt.ResidualEvery > 0 {
		drv.resid = charm.NewReduction(drv.arr, 8)
	}
	drv.setup()
	drv.arr.Broadcast(charm.Msg{Entry: entryStart})
	m.Eng.Run()

	return result(m, (drv.tEnd-drv.tWarm)/sim.Time(cfg.Iters))
}

func state(el *charm.Elem) *chState { return el.State.(*chState) }

// setup initializes per-chare streams, geometry, channels, and graphs.
func (drv *charmDriver) setup() {
	m := drv.rt.M
	for _, el := range drv.arr.Elems() {
		st := state(el)
		st.blk = drv.d.Block([3]int(el.Idx))
		st.nbrs = st.blk.Neighbors()
		st.gate = charm.NewGate()
		st.produced = sim.FiredSignal()
		dev := m.GPUOf(el.PE())
		dev.Alloc("jacobi/grids", 2*st.blk.Volume()*ElemBytes)
		dev.Alloc("jacobi/halos", 2*st.blk.TotalFaceCells()*ElemBytes)
		// Streams are created per chare so independent chares can use
		// the device concurrently (§III-A). Packing and unpacking run
		// at high priority; the bulk update at normal priority.
		commPrio := gpu.PriorityHigh
		if drv.opt.FlatPriority {
			commPrio = gpu.PriorityNormal
		}
		st.packS = dev.NewStream("pack", commPrio)
		st.updS = dev.NewStream("update", gpu.PriorityNormal)
		if drv.opt.SplitStreams {
			st.d2hS = dev.NewStream("d2h", commPrio)
			st.h2dS = dev.NewStream("h2d", commPrio)
		} else {
			// Before-optimization layout: transfers share the
			// pack/unpack stream.
			st.d2hS = st.packS
			st.h2dS = st.packS
		}
		if drv.opt.Graphs {
			st.graphs[0] = drv.buildGraph(dev, st.blk)
			st.graphs[1] = drv.buildGraph(dev, st.blk) // swapped-pointer twin
		}
	}
	if drv.opt.GPUAware {
		// One channel per adjacent chare pair, created from the
		// lower-indexed side.
		for _, el := range drv.arr.Elems() {
			st := state(el)
			for _, nb := range st.nbrs {
				peerFlat := drv.d.Flatten(nb.Idx)
				if peerFlat < el.Flat {
					continue
				}
				peer := drv.arr.Elem(charm.Index(nb.Idx))
				ch := comm.NewChannel(m.Net,
					comm.Endpoint{Proc: el.Flat, Node: m.NodeOf(el.PE())},
					comm.Endpoint{Proc: peerFlat, Node: m.NodeOf(peer.PE())})
				st.channels[nb.Face] = ch
				state(peer).channels[Opposite(nb.Face)] = ch
			}
		}
	}
}

// buildGraph captures one iteration's kernel DAG for a block under the
// current fusion strategy: unpack nodes, the update, and pack nodes for
// the next send.
func (drv *charmDriver) buildGraph(dev *gpu.Device, blk Block) *gpu.Graph {
	g := gpu.NewGraph()
	nbrs := blk.Neighbors()
	switch drv.opt.Fusion {
	case FusionC:
		g.AddKernel("fusedAll", dev.KernelTime(fusedAllBytes(blk.Volume(), blk.TotalFaceCells())))
		return g
	case FusionB:
		unp := g.AddKernel("unpackAll", dev.KernelTime(fusedPackBytes(blk.TotalFaceCells())))
		upd := g.AddKernel("update", dev.KernelTime(updateKernelBytes(blk.Volume())), unp)
		g.AddKernel("packAll", dev.KernelTime(fusedPackBytes(blk.TotalFaceCells())), upd)
	case FusionA:
		deps := make([]*gpu.GraphNode, 0, len(nbrs))
		for _, nb := range nbrs {
			deps = append(deps, g.AddKernel("unpack",
				dev.KernelTime(packKernelBytes(blk.FaceCells(nb.Face/2)))))
		}
		upd := g.AddKernel("update", dev.KernelTime(updateKernelBytes(blk.Volume())), deps...)
		g.AddKernel("packAll", dev.KernelTime(fusedPackBytes(blk.TotalFaceCells())), upd)
	default:
		deps := make([]*gpu.GraphNode, 0, len(nbrs))
		for _, nb := range nbrs {
			deps = append(deps, g.AddKernel("unpack",
				dev.KernelTime(packKernelBytes(blk.FaceCells(nb.Face/2)))))
		}
		upd := g.AddKernel("update", dev.KernelTime(updateKernelBytes(blk.Volume())), deps...)
		for _, nb := range nbrs {
			g.AddKernel("pack", dev.KernelTime(packKernelBytes(blk.FaceCells(nb.Face/2))), upd)
		}
	}
	return g
}

// startIter begins one iteration of a block chare: buffer swap, halo
// send phase, and the SDAG gate for incoming halos.
func (drv *charmDriver) startIter(el *charm.Elem, ctx *charm.Ctx) {
	st := state(el)
	if st.iter == drv.cfg.Warmup && !st.warmReported {
		st.warmReported = true
		drv.warmC.Add(drv.rt.Engine())
	}
	if st.iter == drv.total {
		drv.doneC.Add(drv.rt.Engine())
		return
	}
	iter := st.iter
	prevSends := st.sends
	st.sends = nil
	st.unpacks = nil

	if drv.opt.GPUAware {
		drv.sendPhaseD(el, ctx, iter, prevSends)
	} else {
		drv.sendPhaseH(el, ctx, iter, prevSends)
	}

	st.gate.Expect(ctx, iter, len(st.nbrs), func(ctx *charm.Ctx) {
		drv.afterHalos(el, ctx)
	})
}

// sendPhaseD packs and sends halos over GPU-aware channels.
func (drv *charmDriver) sendPhaseD(el *charm.Elem, ctx *charm.Ctx, iter int, prevSends []*sim.Signal) {
	st := state(el)
	opt := drv.rt.Opt
	eng := drv.rt.Engine()

	// Per-face data-ready signals for the sends.
	ready := make(map[int]*sim.Signal, len(st.nbrs))
	inputReady := sim.AllOf(eng, append([]*sim.Signal{st.produced}, prevSends...)...)
	switch {
	case drv.opt.Graphs && iter > 0, drv.opt.Fusion == FusionC && iter > 0:
		// Packing already happened inside the previous graph / fused
		// kernel.
		for _, nb := range st.nbrs {
			ready[nb.Face] = st.produced
		}
	case drv.opt.Fusion == FusionA || drv.opt.Fusion == FusionB ||
		(drv.opt.Fusion == FusionC && iter == 0) ||
		(drv.opt.Graphs && iter == 0 && drv.opt.Fusion != FusionNone):
		ctx.GateStream(st.packS, inputReady)
		one := ctx.LaunchKernelBytes(st.packS, "packAll", fusedPackBytes(st.blk.TotalFaceCells()))
		for _, nb := range st.nbrs {
			ready[nb.Face] = one
		}
	default:
		ctx.GateStream(st.packS, inputReady)
		for _, nb := range st.nbrs {
			ready[nb.Face] = ctx.LaunchKernelBytes(st.packS, "pack",
				packKernelBytes(st.blk.FaceCells(nb.Face/2)))
		}
	}

	for _, nb := range st.nbrs {
		nb := nb
		sendDone := sim.NewSignal()
		st.sends = append(st.sends, sendDone)
		if drv.opt.UseMessagingAPI {
			drv.messagingSend(el, ctx, nb, iter, ready[nb.Face], sendDone)
			continue
		}
		ch := st.channels[nb.Face]
		ctx.Charge(opt.MsgHostOverhead)
		ch.Send(el.Flat, iter, st.blk.FaceBytes(nb.Face), ready[nb.Face],
			func() { sendDone.Fire(eng) })
		ctx.Charge(opt.MsgHostOverhead)
		ch.Recv(el.Flat, iter, ctx.CommCallback("haloArrived", func(ctx *charm.Ctx) {
			drv.onHaloArrivedD(el, ctx, nb, iter)
		}))
	}
}

// messagingSend transfers one halo with the GPU Messaging API: the
// metadata message invokes a post entry method on the receiver before
// the device data can move, so the receive side needs no pre-posted
// recv — at the cost of an extra message round (§II-B).
func (drv *charmDriver) messagingSend(el *charm.Elem, ctx *charm.Ctx, nb Neighbor, iter int, ready, sendDone *sim.Signal) {
	st := state(el)
	m := drv.rt.M
	eng := drv.rt.Engine()
	peer := drv.arr.Elem(charm.Index(nb.Idx))
	recvNb := Neighbor{Face: Opposite(nb.Face), Idx: [3]int(el.Idx)}
	ctx.Charge(drv.rt.Opt.MsgHostOverhead)
	comm.MessagingSend(m.Net, comm.DefaultMessagingConfig(),
		comm.Endpoint{Proc: el.Flat, Node: m.NodeOf(el.PE())},
		comm.Endpoint{Proc: peer.Flat, Node: m.NodeOf(peer.PE())},
		st.blk.FaceBytes(nb.Face), ready, func() {
			sendDone.Fire(eng)
			drv.rt.PE(peer.PE()).Enqueue(charm.PrioHigh, drv.rt.Opt.SchedOverhead,
				"haloArrived", peer, func(ctx *charm.Ctx) {
					drv.onHaloArrivedD(peer, ctx, recvNb, iter)
				})
		})
}

// onHaloArrivedD handles one GPU-aware halo arrival: with per-face
// unpacking (FusionNone and FusionA, which fuses only the packs) the
// face's unpack kernel launches immediately, overlapping with other
// arrivals; fused-unpack and graph modes only count the arrival, since
// their unpack cannot start until every halo is present (§III-D1).
func (drv *charmDriver) onHaloArrivedD(el *charm.Elem, ctx *charm.Ctx, nb Neighbor, iter int) {
	st := state(el)
	st.gate.Arrive(ctx, iter, func(ctx *charm.Ctx) {
		if (drv.opt.Fusion == FusionNone || drv.opt.Fusion == FusionA) && !drv.opt.Graphs {
			st.unpacks = append(st.unpacks, ctx.LaunchKernelBytes(st.packS, "unpack",
				packKernelBytes(st.blk.FaceCells(nb.Face/2))))
		}
	})
}

// sendPhaseH packs halos, stages them to the host, and sends them as
// regular runtime messages (Charm-H).
func (drv *charmDriver) sendPhaseH(el *charm.Elem, ctx *charm.Ctx, iter int, prevSends []*sim.Signal) {
	st := state(el)
	eng := drv.rt.Engine()
	ctx.GateStream(st.packS, st.produced)

	d2hSigs := make([]*sim.Signal, 0, len(st.nbrs))
	type outMsg struct {
		nb   Neighbor
		d2h  *sim.Signal
		size int64
	}
	outs := make([]outMsg, 0, len(st.nbrs))
	for _, nb := range st.nbrs {
		pack := ctx.LaunchKernelBytes(st.packS, "pack", packKernelBytes(st.blk.FaceCells(nb.Face/2)))
		d2h := ctx.EnqueueCopy(st.d2hS, gpu.D2H, st.blk.FaceBytes(nb.Face), pack)
		d2hSigs = append(d2hSigs, d2h)
		outs = append(outs, outMsg{nb: nb, d2h: d2h, size: st.blk.FaceBytes(nb.Face)})
	}

	pe := drv.rt.PE(el.PE())
	sendOne := func(o outMsg) func(*charm.Ctx) {
		return func(ctx *charm.Ctx) {
			ctx.Send(drv.arr, charm.Index(o.nb.Idx), charm.Msg{
				Entry: entryRecvHalo,
				Ref:   iter,
				Bytes: o.size,
				Data:  Opposite(o.nb.Face),
			})
		}
	}
	if drv.opt.Async {
		// After-optimization: each halo is sent as soon as its staging
		// copy completes, with no blocking synchronization.
		for _, o := range outs {
			o := o
			o.d2h.OnFire(eng, func() {
				pe.Enqueue(charm.PrioHigh, drv.rt.Opt.SchedOverhead, "sendHalo", el, sendOne(o))
			})
		}
	} else {
		// Before-optimization: block the PE until all staging copies
		// finish, then send everything (the §III-C redundant sync).
		ctx.Block(sim.AllOf(eng, d2hSigs...))
		for _, o := range outs {
			o := o
			ctx.Post(charm.PrioHigh, "sendHalo", sendOne(o))
		}
	}
}

// recvHaloH handles a host-staged halo message: H2D transfer, then the
// face's unpack kernel.
func (drv *charmDriver) recvHaloH(el *charm.Elem, ctx *charm.Ctx, msg charm.Msg) {
	st := state(el)
	face := msg.Data.(int)
	st.gate.Arrive(ctx, msg.Ref, func(ctx *charm.Ctx) {
		h2d := ctx.EnqueueCopy(st.h2dS, gpu.H2D, msg.Bytes, nil)
		ctx.GateStream(st.packS, h2d)
		st.unpacks = append(st.unpacks, ctx.LaunchKernelBytes(st.packS, "unpack",
			packKernelBytes(st.blk.FaceCells(face/2))))
	})
}

// afterHalos runs once all halos of the iteration have arrived: it
// launches the remaining kernels (per fusion/graph strategy) and
// advances to the next iteration.
func (drv *charmDriver) afterHalos(el *charm.Elem, ctx *charm.Ctx) {
	st := state(el)
	eng := drv.rt.Engine()

	switch {
	case drv.opt.Graphs:
		st.produced = ctx.LaunchGraph(st.updS, st.graphs[st.iter%2])
	case drv.opt.Fusion == FusionC:
		// Single kernel: unpack + update + pack for the next iteration.
		// The pack portion writes the send buffers, so it must wait for
		// the previous sends to drain.
		ctx.GateStream(st.updS, sim.AllOf(eng, st.sends...))
		st.produced = ctx.LaunchKernelBytes(st.updS, "fusedAll",
			fusedAllBytes(st.blk.Volume(), st.blk.TotalFaceCells()))
	case drv.opt.Fusion == FusionB:
		unp := ctx.LaunchKernelBytes(st.packS, "unpackAll", fusedPackBytes(st.blk.TotalFaceCells()))
		ctx.GateStream(st.updS, unp)
		st.produced = ctx.LaunchKernelBytes(st.updS, "update", updateKernelBytes(st.blk.Volume()))
	default:
		ctx.GateStream(st.updS, sim.AllOf(eng, st.unpacks...))
		st.produced = ctx.LaunchKernelBytes(st.updS, "update", updateKernelBytes(st.blk.Volume()))
	}

	if drv.opt.ResidualEvery > 0 && (st.iter+1)%drv.opt.ResidualEvery == 0 {
		// Contribute asynchronously; the chare does not wait for the
		// reduction to reach the root.
		drv.resid.Contribute(ctx, st.iter)
	}

	st.iter++
	if drv.opt.Async {
		ctx.HAPICallback(st.updS, "nextIter", func(ctx *charm.Ctx) {
			drv.startIter(el, ctx)
		})
	} else {
		// Before-optimization: synchronize with the device before
		// starting the next iteration.
		ctx.Block(st.produced)
		ctx.Post(charm.PrioHigh, "nextIter", func(ctx *charm.Ctx) {
			drv.startIter(el, ctx)
		})
	}
}
