package jacobi

import (
	"testing"

	"gat/internal/machine"
	"gat/internal/sim"
	"gat/internal/timeline"
)

// Integration tests: end-to-end invariants tying the app, runtime, GPU,
// and network models together with analytic expectations.

// analyticHaloBytes computes the exact bytes the halo exchange moves
// per iteration: each interior face is sent once in each direction.
func analyticHaloBytes(d Decomp) int64 {
	var total int64
	for f := 0; f < d.Count(); f++ {
		blk := d.BlockFlat(f)
		for _, nb := range blk.Neighbors() {
			total += blk.FaceBytes(nb.Face)
		}
	}
	return total
}

func TestCharmDNetworkBytesMatchAnalytic(t *testing.T) {
	cfg := Config{Global: [3]int{192, 192, 192}, Warmup: 1, Iters: 4}
	m := machine.MustNew(machine.Summit(2))
	res := RunCharm(m, cfg, CharmOpts{ODF: 1, GPUAware: true}.Optimized())
	d := NewDecomp(cfg.Global, 12)
	perIter := analyticHaloBytes(d)
	iters := int64(cfg.Warmup + cfg.Iters)
	want := perIter * iters
	// GPU-aware Charm moves only halos (no runtime payload envelopes
	// beyond negligible headers).
	if res.NetBytes < want || res.NetBytes > want+want/10 {
		t.Fatalf("network bytes = %d, want ~%d (analytic halos)", res.NetBytes, want)
	}
}

func TestCharmDKernelCountMatchesFormula(t *testing.T) {
	cfg := Config{Global: [3]int{192, 192, 192}, Warmup: 1, Iters: 4}
	m := machine.MustNew(machine.Summit(1))
	res := RunCharm(m, cfg, CharmOpts{ODF: 1, GPUAware: true}.Optimized())
	// Per chare-iteration under FusionNone: one pack and one unpack per
	// neighbor plus one update.
	d := NewDecomp(cfg.Global, 6)
	var perIter uint64
	for f := 0; f < d.Count(); f++ {
		perIter += uint64(2*len(d.BlockFlat(f).Neighbors()) + 1)
	}
	want := perIter * uint64(cfg.Warmup+cfg.Iters)
	if res.Kernels != want {
		t.Fatalf("kernels = %d, want %d", res.Kernels, want)
	}
}

func TestFusionCKernelCountIsOnePerIterPlusInitialPack(t *testing.T) {
	cfg := Config{Global: [3]int{192, 192, 192}, Warmup: 1, Iters: 4}
	m := machine.MustNew(machine.Summit(1))
	res := RunCharm(m, cfg, CharmOpts{ODF: 1, GPUAware: true, Fusion: FusionC}.Optimized())
	chares := uint64(6)
	want := chares * uint64(cfg.Warmup+cfg.Iters+1) // +1 initial pack
	if res.Kernels != want {
		t.Fatalf("kernels = %d, want %d", res.Kernels, want)
	}
}

func TestMemoryPeakMatchesWorkingSet(t *testing.T) {
	cfg := Config{Global: [3]int{384, 384, 384}, Warmup: 1, Iters: 2}
	m := machine.MustNew(machine.Summit(1))
	RunCharm(m, cfg, CharmOpts{ODF: 2, GPUAware: true}.Optimized())
	d := NewDecomp(cfg.Global, 12)
	// Each GPU hosts 2 chares; working set = sum over its chares of
	// 2*vol + 2*faces, all in ElemBytes.
	var want int64
	for f := 0; f < 2; f++ { // chares 0,1 on GPU 0 (block mapping)
		blk := d.BlockFlat(f)
		want += 2*blk.Volume()*ElemBytes + 2*blk.TotalFaceCells()*ElemBytes
	}
	if got := m.GPUOf(0).MemPeak(); got != want {
		t.Fatalf("GPU0 peak = %d, want %d", got, want)
	}
}

func TestOverlapFractionCharmBeatsMPI(t *testing.T) {
	cfg := Config{Global: [3]int{384, 384, 768}, Warmup: 1, Iters: 4}
	overlapOf := func(run func(m *machine.Machine)) float64 {
		m := machine.MustNew(machine.Summit(2))
		m.Eng.SetTracer(sim.NewTracer())
		run(m)
		return timeline.Analyze(m.Eng.Tracer(), m.Eng.Now()).OverlapFraction()
	}
	charm := overlapOf(func(m *machine.Machine) {
		RunCharm(m, cfg, CharmOpts{ODF: 4}.Optimized())
	})
	mpi := overlapOf(func(m *machine.Machine) {
		RunMPI(m, cfg, MPIOpts{})
	})
	if charm <= mpi {
		t.Fatalf("overdecomposed tasks should hide more communication: charm=%.2f mpi=%.2f", charm, mpi)
	}
}

func TestResidualOptionAddsTimeMPI(t *testing.T) {
	cfg := Config{Global: [3]int{192, 192, 192}, Warmup: 1, Iters: 4}
	plain := RunMPI(machine.MustNew(machine.Summit(1)), cfg, MPIOpts{})
	withRes := RunMPI(machine.MustNew(machine.Summit(1)), cfg, MPIOpts{ResidualEvery: 1})
	if withRes.TimePerIter <= plain.TimePerIter {
		t.Fatalf("residual allreduce must cost time: %v vs %v", withRes.TimePerIter, plain.TimePerIter)
	}
}

func TestResidualOptionCharmAsyncCheaperThanMPIBlocking(t *testing.T) {
	cfg := Config{Global: [3]int{192, 192, 192}, Warmup: 1, Iters: 4}
	base := RunCharm(machine.MustNew(machine.Summit(1)), cfg, CharmOpts{ODF: 1, GPUAware: true}.Optimized())
	withRes := RunCharm(machine.MustNew(machine.Summit(1)), cfg,
		CharmOpts{ODF: 1, GPUAware: true, ResidualEvery: 1}.Optimized())
	// Asynchronous contributions must not cost anywhere near a blocking
	// allreduce; allow a modest slowdown.
	if float64(withRes.TimePerIter) > 1.25*float64(base.TimePerIter) {
		t.Fatalf("async residual too expensive: %v vs %v", withRes.TimePerIter, base.TimePerIter)
	}
}

func TestMessagingAPISlowerThanChannelAPIInApp(t *testing.T) {
	cfg := Config{Global: [3]int{192, 192, 192}, Warmup: 1, Iters: 6}
	ch := RunCharm(machine.MustNew(machine.Summit(2)), cfg, CharmOpts{ODF: 1, GPUAware: true}.Optimized())
	msg := RunCharm(machine.MustNew(machine.Summit(2)), cfg,
		CharmOpts{ODF: 1, GPUAware: true, UseMessagingAPI: true}.Optimized())
	if msg.TimePerIter <= ch.TimePerIter {
		t.Fatalf("messaging API (%v) should be slower than channel API (%v)",
			msg.TimePerIter, ch.TimePerIter)
	}
}

func TestFlatPriorityHurtsOrEqual(t *testing.T) {
	cfg := Config{Global: [3]int{384, 384, 768}, Warmup: 1, Iters: 4}
	prio := RunCharm(machine.MustNew(machine.Summit(2)), cfg, CharmOpts{ODF: 4, GPUAware: true}.Optimized())
	flat := RunCharm(machine.MustNew(machine.Summit(2)), cfg,
		CharmOpts{ODF: 4, GPUAware: true, FlatPriority: true}.Optimized())
	if flat.TimePerIter < prio.TimePerIter {
		t.Fatalf("flat priorities (%v) should not beat priority streams (%v)",
			flat.TimePerIter, prio.TimePerIter)
	}
}

func TestJitterMakesRunsVaryButSeedsReproduce(t *testing.T) {
	cfg := Config{Global: [3]int{192, 192, 192}, Warmup: 1, Iters: 4}
	run := func(seed uint64) sim.Time {
		mc := machine.Summit(2)
		mc.Net.JitterFrac = 0.2
		mc.Net.JitterSeed = seed
		return RunMPI(machine.MustNew(mc), cfg, MPIOpts{Device: true}).TimePerIter
	}
	a1, a2, b := run(1), run(1), run(2)
	if a1 != a2 {
		t.Fatalf("same seed diverged: %v vs %v", a1, a2)
	}
	if a1 == b {
		t.Fatal("different seeds produced identical times — jitter inert")
	}
}
