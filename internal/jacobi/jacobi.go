// Package jacobi implements the Jacobi3D proxy application from the
// paper on the simulated machine, in all four measured variants —
// MPI with host staging (MPI-H), CUDA-aware MPI (MPI-D), Charm-style
// tasks with host staging (Charm-H), and Charm-style tasks with
// GPU-aware communication through the Channel API (Charm-D) — plus the
// before/after host-synchronization optimizations of §III-C, the kernel
// fusion strategies of §III-D1, and the CUDA-graph execution of
// §III-D2.
//
// The subpackage compute holds a real numerical Jacobi solver used by
// the test suite to validate the method itself; this package models
// execution time.
package jacobi

import (
	"fmt"
	"strings"

	"gat/internal/sim"
)

// Cost-model constants for the memory-bound kernels (bytes of device
// memory traffic per grid cell; see DESIGN.md §5).
const (
	// ElemBytes is the size of one grid element (double precision).
	ElemBytes = 8
	// UpdateBytesPerCell is the traffic of the 7-point Jacobi update:
	// one streamed read, one write, plus cached neighbor reuse.
	UpdateBytesPerCell = 24
	// PackBytesPerCell is the traffic of copying one halo cell between
	// the block and a contiguous communication buffer (read + write).
	PackBytesPerCell = 16
)

// FusedDivergenceFactor is the slowdown of a fused (un)packing kernel
// relative to the sum of its parts, from the consecutive-face control
// divergence described in §III-D1.
const FusedDivergenceFactor = 1.1

// Fusion selects the kernel fusion strategy of §III-D1.
type Fusion int

// Fusion strategies. Higher values fuse more kernels.
const (
	// FusionNone launches one kernel per face plus the update kernel.
	FusionNone Fusion = iota
	// FusionA fuses the six packing kernels into one.
	FusionA
	// FusionB fuses packing kernels and unpacking kernels (two fused
	// kernels).
	FusionB
	// FusionC fuses unpacking, update, and packing into a single kernel
	// per iteration.
	FusionC
)

// ParseFusion parses a fusion strategy name as used by flags and
// scenario parameters: "" and "none" are FusionNone; "A".."C" (either
// case) the fused strategies.
func ParseFusion(s string) (Fusion, error) {
	switch strings.ToUpper(s) {
	case "", "NONE":
		return FusionNone, nil
	case "A":
		return FusionA, nil
	case "B":
		return FusionB, nil
	case "C":
		return FusionC, nil
	default:
		return 0, fmt.Errorf("jacobi: bad fusion strategy %q, want none|A|B|C", s)
	}
}

// WeakGlobal grows the base per-node grid with the node count, doubling
// one dimension per node doubling (z, then y, then x), matching the
// paper's weak-scaling setup (§IV-B).
func WeakGlobal(base [3]int, nodes int) [3]int {
	g := base
	axis := 2
	for f := nodes; f > 1; f /= 2 {
		g[axis] *= 2
		axis--
		if axis < 0 {
			axis = 2
		}
	}
	return g
}

func (f Fusion) String() string {
	switch f {
	case FusionNone:
		return "none"
	case FusionA:
		return "A"
	case FusionB:
		return "B"
	case FusionC:
		return "C"
	default:
		return fmt.Sprintf("Fusion(%d)", int(f))
	}
}

// Config describes one Jacobi3D run.
type Config struct {
	// Global is the global grid size in cells.
	Global [3]int
	// Warmup is the number of untimed iterations (paper: 10).
	Warmup int
	// Iters is the number of timed iterations (paper: 100).
	Iters int
}

// DefaultIterations fills in the iteration counts used by all
// experiments in this reproduction: 3 warm-up + 10 timed (the paper's
// 10+100 scaled down; per-iteration times are steady after warm-up, so
// the mean is unaffected while simulated event counts stay tractable).
func (c Config) DefaultIterations() Config {
	if c.Warmup == 0 {
		c.Warmup = 3
	}
	if c.Iters == 0 {
		c.Iters = 10
	}
	return c
}

// Result is the outcome of one run.
type Result struct {
	// TimePerIter is the average wall time per timed iteration.
	TimePerIter sim.Time
	// Total is the full simulated run time including warm-up.
	Total sim.Time
	// Events is the number of simulation events executed.
	Events uint64
	// Kernels is the total number of GPU kernels launched.
	Kernels uint64
	// NetBytes is the total bytes moved on the network.
	NetBytes int64
	// NetMsgs is the number of network transfers.
	NetMsgs uint64
	// MaxLinkUtil and MeanLinkUtil summarize the detailed fabric's
	// link utilization over the run (zero on NIC-only machines) — the
	// congestion signal of taper studies.
	MaxLinkUtil, MeanLinkUtil float64
	// Routing names the fabric's routing policy (empty on NIC-only
	// machines) — provenance for the utilization numbers above.
	Routing string
}

func (r Result) String() string {
	return fmt.Sprintf("%v/iter (total %v, %d kernels, %d msgs, %.1f MB moved)",
		r.TimePerIter, r.Total, r.Kernels, r.NetMsgs, float64(r.NetBytes)/1e6)
}

// updateKernelBytes is the device traffic of a full-block update.
func updateKernelBytes(vol int64) int64 { return vol * UpdateBytesPerCell }

// packKernelBytes is the device traffic of packing one face.
func packKernelBytes(faceCells int64) int64 { return faceCells * PackBytesPerCell }

// fusedPackBytes is the traffic of a fused kernel covering several
// faces, including the divergence penalty.
func fusedPackBytes(totalFaceCells int64) int64 {
	return int64(float64(totalFaceCells*PackBytesPerCell) * FusedDivergenceFactor)
}

// fusedAllBytes is the traffic of strategy C's single kernel: unpack +
// update + pack.
func fusedAllBytes(vol, totalFaceCells int64) int64 {
	return updateKernelBytes(vol) + int64(float64(2*totalFaceCells*PackBytesPerCell)*FusedDivergenceFactor)
}
