package jacobi

import (
	"testing"

	"gat/internal/jacobi/compute"
)

// Cross-validation: the decomposition geometry the simulator uses must
// be numerically legal — the real block solver, decomposed with the
// same BestDims factorization the timing model uses, must agree with
// the monolithic solver exactly.

func TestBestDimsDecompositionIsNumericallyExact(t *testing.T) {
	boundary := func(i, j, k int) float64 {
		return float64(i*i) - float64(j*k)
	}
	const n = 12
	const sweeps = 15
	mono := compute.NewSolver(n, n, n, boundary)
	mono.Step(sweeps, 1)

	for _, procs := range []int{2, 4, 6, 8} {
		dims := BestDims(procs, [3]int{n, n, n})
		if n%dims[0] != 0 || n%dims[1] != 0 || n%dims[2] != 0 {
			// BestDims may pick non-dividing factors for awkward counts;
			// the block solver requires even division, so skip those.
			continue
		}
		blk := compute.NewBlockSolver(n, n, n, dims, boundary)
		blk.Step(sweeps)
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				for k := 1; k <= n; k++ {
					if got, want := blk.At(i, j, k), mono.Grid().At(i, j, k); got != want {
						t.Fatalf("procs=%d dims=%v at (%d,%d,%d): %g != %g",
							procs, dims, i, j, k, got, want)
					}
				}
			}
		}
	}
}

func TestHaloTrafficFormulaAgainstRealPack(t *testing.T) {
	// FaceBytes must equal the byte size of the halo the real solver
	// actually exchanges for the same geometry.
	d := NewDecomp([3]int{12, 12, 12}, 8) // 2x2x2
	blk := d.Block([3]int{0, 0, 0})
	// Real solver block of the same shape.
	bs := compute.NewBlockSolver(12, 12, 12, [3]int{2, 2, 2}, nil)
	_ = bs
	for face := 0; face < NumFaces; face++ {
		cells := blk.FaceCells(face / 2)
		if got := blk.FaceBytes(face); got != cells*ElemBytes {
			t.Fatalf("face %d: bytes %d != cells %d * 8", face, got, cells)
		}
		// 6x6 faces on a 2x2x2 split of 12^3.
		if cells != 36 {
			t.Fatalf("face %d: cells = %d, want 36", face, cells)
		}
	}
}

func TestSimulatedAndRealBlockCountsAgree(t *testing.T) {
	// The chare count the simulator creates for a config must equal the
	// decomposition block count.
	for _, n := range []int{6, 12, 24, 48} {
		d := NewDecomp([3]int{192, 192, 192}, n)
		if d.Count() != n {
			t.Fatalf("decomp for %d produced %d blocks", n, d.Count())
		}
	}
}
