package compute

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformBoundaryConverges(t *testing.T) {
	// With boundary 1 everywhere, the harmonic solution is identically 1.
	s := NewSolver(8, 8, 8, func(i, j, k int) float64 { return 1 })
	sweeps, res := s.SolveToTolerance(1e-7, 2000, 4)
	if res >= 1e-7 {
		t.Fatalf("did not converge: residual %g after %d sweeps", res, sweeps)
	}
	g := s.Grid()
	for i := 1; i <= 8; i++ {
		if v := g.At(i, 4, 4); math.Abs(v-1) > 1e-5 {
			t.Fatalf("interior value %g at i=%d, want 1", v, i)
		}
	}
}

func TestLinearSolutionIsFixedPoint(t *testing.T) {
	// u = x is harmonic: a Jacobi sweep must leave it (near) unchanged.
	n := 6
	lin := func(i, j, k int) float64 { return float64(i) }
	s := NewSolver(n, n, n, lin)
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			for k := 1; k <= n; k++ {
				s.Grid().Set(i, j, k, lin(i, j, k))
			}
		}
	}
	res := s.Step(1, 2)
	if res > 1e-12 {
		t.Fatalf("linear field not a fixed point: residual %g", res)
	}
}

func TestBlockCountDoesNotChangeResult(t *testing.T) {
	// The decomposed solver must produce identical results regardless of
	// the block count — the invariant the whole paper leans on.
	boundary := func(i, j, k int) float64 { return float64(i) + 2*float64(j) - float64(k) }
	run := func(blocks int) *Grid {
		s := NewSolver(10, 9, 8, boundary)
		s.Step(25, blocks)
		return s.Grid()
	}
	ref := run(1)
	for _, blocks := range []int{2, 3, 5, 10} {
		g := run(blocks)
		for i := 1; i <= 10; i++ {
			for j := 1; j <= 9; j++ {
				for k := 1; k <= 8; k++ {
					if g.At(i, j, k) != ref.At(i, j, k) {
						t.Fatalf("blocks=%d diverges from serial at (%d,%d,%d): %g vs %g",
							blocks, i, j, k, g.At(i, j, k), ref.At(i, j, k))
					}
				}
			}
		}
	}
}

func TestResidualMonotoneForLaplace(t *testing.T) {
	s := NewSolver(8, 8, 8, func(i, j, k int) float64 {
		if i == 0 {
			return 1
		}
		return 0
	})
	prev := math.Inf(1)
	for sweep := 0; sweep < 30; sweep++ {
		r := s.Step(1, 3)
		if r > prev*1.0001 { // Jacobi residual decays monotonically here
			t.Fatalf("residual rose: %g -> %g at sweep %d", prev, r, sweep)
		}
		prev = r
	}
}

func TestMaximumPrinciple(t *testing.T) {
	// Interior values must remain within the boundary's range.
	s := NewSolver(6, 6, 6, func(i, j, k int) float64 {
		return math.Sin(float64(i)) + math.Cos(float64(j*k))
	})
	s.Step(100, 3)
	lo, hi := math.Inf(1), math.Inf(-1)
	g := s.Grid()
	for i := 0; i <= 7; i++ {
		for j := 0; j <= 7; j++ {
			for k := 0; k <= 7; k++ {
				if i == 0 || i == 7 || j == 0 || j == 7 || k == 0 || k == 7 {
					lo = math.Min(lo, g.At(i, j, k))
					hi = math.Max(hi, g.At(i, j, k))
				}
			}
		}
	}
	for i := 1; i <= 6; i++ {
		for j := 1; j <= 6; j++ {
			for k := 1; k <= 6; k++ {
				v := g.At(i, j, k)
				if v < lo-1e-9 || v > hi+1e-9 {
					t.Fatalf("maximum principle violated at (%d,%d,%d): %g not in [%g,%g]",
						i, j, k, v, lo, hi)
				}
			}
		}
	}
}

// Property: averaging is a contraction — one sweep never increases the
// max-abs interior value beyond the max-abs of the whole grid.
func TestSweepContractionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := seed
		next := func() float64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return float64(rng%1000) / 500.0
		}
		s := NewSolver(5, 5, 5, func(i, j, k int) float64 { return 0 })
		var maxAbs float64
		for i := 1; i <= 5; i++ {
			for j := 1; j <= 5; j++ {
				for k := 1; k <= 5; k++ {
					v := next()
					s.Grid().Set(i, j, k, v)
					maxAbs = math.Max(maxAbs, math.Abs(v))
				}
			}
		}
		s.Step(1, 2)
		for i := 1; i <= 5; i++ {
			for j := 1; j <= 5; j++ {
				for k := 1; k <= 5; k++ {
					if math.Abs(s.Grid().At(i, j, k)) > maxAbs+1e-12 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGridAccessors(t *testing.T) {
	g := NewGrid(3, 4, 5)
	nx, ny, nz := g.Size()
	if nx != 3 || ny != 4 || nz != 5 {
		t.Fatalf("size = %d,%d,%d", nx, ny, nz)
	}
	g.Set(1, 2, 3, 42)
	if g.At(1, 2, 3) != 42 {
		t.Fatal("Set/At round trip failed")
	}
}

func TestBadGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-extent grid did not panic")
		}
	}()
	NewGrid(0, 1, 1)
}
