// Package compute is a real, numerical 3-D Jacobi solver used to
// validate the method the proxy application models. It decomposes the
// grid into blocks, runs one goroutine per block, and exchanges halos
// through shared memory each iteration — the same dependency structure
// the simulated variants execute, but with actual float64 arithmetic.
package compute

import (
	"fmt"
	"math"
	"sync"
)

// Grid is a dense 3-D float64 field with one layer of ghost cells on
// every side. Interior indices run 1..N in each axis.
type Grid struct {
	nx, ny, nz int // interior extents
	data       []float64
}

// NewGrid allocates an nx×ny×nz interior with ghost layers.
func NewGrid(nx, ny, nz int) *Grid {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic("compute: grid extents must be positive")
	}
	return &Grid{nx: nx, ny: ny, nz: nz, data: make([]float64, (nx+2)*(ny+2)*(nz+2))}
}

// Size returns the interior extents.
func (g *Grid) Size() (nx, ny, nz int) { return g.nx, g.ny, g.nz }

func (g *Grid) idx(i, j, k int) int {
	return (i*(g.ny+2)+j)*(g.nz+2) + k
}

// At returns the value at interior-or-ghost coordinates (0..N+1).
func (g *Grid) At(i, j, k int) float64 { return g.data[g.idx(i, j, k)] }

// Set assigns the value at (i, j, k).
func (g *Grid) Set(i, j, k int, v float64) { g.data[g.idx(i, j, k)] = v }

// Jacobi3D solves Laplace's equation on a unit cube with Dirichlet
// boundary conditions using Jacobi sweeps over block-decomposed
// subgrids executed by worker goroutines.
type Jacobi3D struct {
	Nx, Ny, Nz int
	Boundary   func(i, j, k int) float64 // value on the ghost shell

	cur, next *Grid
}

// NewSolver builds a solver with the given interior size and boundary
// function (applied once to the ghost shell).
func NewSolver(nx, ny, nz int, boundary func(i, j, k int) float64) *Jacobi3D {
	s := &Jacobi3D{Nx: nx, Ny: ny, Nz: nz, Boundary: boundary,
		cur: NewGrid(nx, ny, nz), next: NewGrid(nx, ny, nz)}
	s.applyBoundary(s.cur)
	s.applyBoundary(s.next)
	return s
}

func (s *Jacobi3D) applyBoundary(g *Grid) {
	if s.Boundary == nil {
		return
	}
	for i := 0; i <= s.Nx+1; i++ {
		for j := 0; j <= s.Ny+1; j++ {
			for k := 0; k <= s.Nz+1; k++ {
				if i == 0 || i == s.Nx+1 || j == 0 || j == s.Ny+1 || k == 0 || k == s.Nz+1 {
					g.Set(i, j, k, s.Boundary(i, j, k))
				}
			}
		}
	}
}

// Grid returns the current solution grid.
func (s *Jacobi3D) Grid() *Grid { return s.cur }

// Step performs n Jacobi sweeps decomposed into blocks×1×1 slabs, each
// updated by its own goroutine with a barrier between sweeps, and
// returns the final residual (max |new-old|). blocks must be positive.
func (s *Jacobi3D) Step(n, blocks int) float64 {
	if blocks <= 0 {
		panic("compute: need at least one block")
	}
	if blocks > s.Nx {
		blocks = s.Nx
	}
	var residual float64
	for sweep := 0; sweep < n; sweep++ {
		var mu sync.Mutex
		var wg sync.WaitGroup
		residual = 0
		per := (s.Nx + blocks - 1) / blocks
		for b := 0; b < blocks; b++ {
			lo := b*per + 1
			hi := lo + per - 1
			if hi > s.Nx {
				hi = s.Nx
			}
			if lo > hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				local := s.sweepSlab(lo, hi)
				mu.Lock()
				if local > residual {
					residual = local
				}
				mu.Unlock()
			}(lo, hi)
		}
		wg.Wait()
		s.cur, s.next = s.next, s.cur
	}
	return residual
}

// sweepSlab updates interior rows lo..hi from cur into next and returns
// the slab's max-abs change. Reading cur while writing next is the
// Jacobi two-buffer discipline: no data races between slabs.
func (s *Jacobi3D) sweepSlab(lo, hi int) float64 {
	var maxd float64
	for i := lo; i <= hi; i++ {
		for j := 1; j <= s.Ny; j++ {
			for k := 1; k <= s.Nz; k++ {
				v := (s.cur.At(i-1, j, k) + s.cur.At(i+1, j, k) +
					s.cur.At(i, j-1, k) + s.cur.At(i, j+1, k) +
					s.cur.At(i, j, k-1) + s.cur.At(i, j, k+1)) / 6
				d := math.Abs(v - s.cur.At(i, j, k))
				if d > maxd {
					maxd = d
				}
				s.next.Set(i, j, k, v)
			}
		}
	}
	return maxd
}

// SolveToTolerance iterates until the residual drops below tol or
// maxSweeps is reached, returning the sweep count and final residual.
func (s *Jacobi3D) SolveToTolerance(tol float64, maxSweeps, blocks int) (int, float64) {
	for sweep := 1; sweep <= maxSweeps; sweep++ {
		if r := s.Step(1, blocks); r < tol {
			return sweep, r
		}
	}
	return maxSweeps, s.Step(1, blocks)
}

// String describes the solver.
func (s *Jacobi3D) String() string {
	return fmt.Sprintf("Jacobi3D %dx%dx%d", s.Nx, s.Ny, s.Nz)
}
