package compute

import (
	"math"
	"testing"
)

func TestBlockSolverMatchesMonolithic(t *testing.T) {
	// The overdecomposed solver must produce bit-identical results to
	// the monolithic one — the legality condition for the paper's whole
	// approach.
	boundary := func(i, j, k int) float64 { return float64(i) - 0.5*float64(j) + 0.25*float64(k) }
	const n = 12
	const sweeps = 20

	mono := NewSolver(n, n, n, boundary)
	mono.Step(sweeps, 1)

	for _, dims := range [][3]int{{2, 1, 1}, {2, 2, 3}, {3, 4, 2}, {1, 1, 12}} {
		blk := NewBlockSolver(n, n, n, dims, boundary)
		blk.Step(sweeps)
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				for k := 1; k <= n; k++ {
					if got, want := blk.At(i, j, k), mono.Grid().At(i, j, k); got != want {
						t.Fatalf("dims=%v (%d,%d,%d): %g != %g", dims, i, j, k, got, want)
					}
				}
			}
		}
	}
}

func TestBlockSolverConverges(t *testing.T) {
	s := NewBlockSolver(8, 8, 8, [3]int{2, 2, 2}, func(i, j, k int) float64 { return 2 })
	var res float64
	for sweep := 0; sweep < 500; sweep++ {
		res = s.Step(1)
		if res < 1e-7 {
			break
		}
	}
	if res >= 1e-7 {
		t.Fatalf("did not converge: residual %g", res)
	}
	if v := s.At(4, 4, 4); math.Abs(v-2) > 1e-5 {
		t.Fatalf("interior %g, want 2", v)
	}
}

func TestBlockSolverSetAt(t *testing.T) {
	s := NewBlockSolver(6, 6, 6, [3]int{3, 2, 1}, nil)
	s.Set(5, 4, 3, 42)
	if got := s.At(5, 4, 3); got != 42 {
		t.Fatalf("At = %g, want 42", got)
	}
	if got := s.At(1, 1, 1); got != 0 {
		t.Fatalf("untouched cell = %g", got)
	}
}

func TestBlockSolverUnevenDivisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("uneven block division did not panic")
		}
	}()
	NewBlockSolver(10, 10, 10, [3]int{3, 1, 1}, nil)
}

func TestBlockSolverHaloExchangeCorrectness(t *testing.T) {
	// One sweep with a linear field stays exact across block borders —
	// any halo mis-indexing would break harmonicity at the seams.
	lin := func(i, j, k int) float64 { return 3*float64(i) + 2*float64(j) + float64(k) }
	s := NewBlockSolver(8, 8, 8, [3]int{2, 2, 2}, lin)
	for i := 1; i <= 8; i++ {
		for j := 1; j <= 8; j++ {
			for k := 1; k <= 8; k++ {
				s.Set(i, j, k, lin(i, j, k))
			}
		}
	}
	if res := s.Step(1); res > 1e-12 {
		t.Fatalf("linear field perturbed across block seams: residual %g", res)
	}
}
