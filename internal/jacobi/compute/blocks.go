package compute

import (
	"fmt"
	"sync"
)

// BlockSolver is the overdecomposed counterpart of Jacobi3D: the grid
// splits into bx×by×bz blocks, each owned by a worker goroutine that
// keeps its own sub-grid with ghost layers, exchanges halos with
// neighbors through channels, and sweeps independently — structurally
// the same program the simulated Charm-D variant models, but computing
// real values. Its results must match the monolithic solver exactly;
// the test suite checks that invariant, which is what makes
// overdecomposition a legal transformation.
type BlockSolver struct {
	nx, ny, nz int
	dims       [3]int
	blocks     []*block
	boundary   func(i, j, k int) float64
}

type block struct {
	idx       [3]int
	lo, hi    [3]int // global interior ranges, inclusive
	cur, next *Grid
	neighbors [6]*block         // by face: -x,+x,-y,+y,-z,+z
	haloIn    [6]chan []float64 // receive channels keyed by my face
}

// NewBlockSolver decomposes an nx×ny×nz interior into dims blocks.
// Extents must divide evenly by the block grid.
func NewBlockSolver(nx, ny, nz int, dims [3]int, boundary func(i, j, k int) float64) *BlockSolver {
	if nx%dims[0] != 0 || ny%dims[1] != 0 || nz%dims[2] != 0 {
		panic("compute: block grid must divide the interior evenly")
	}
	s := &BlockSolver{nx: nx, ny: ny, nz: nz, dims: dims, boundary: boundary}
	sx, sy, sz := nx/dims[0], ny/dims[1], nz/dims[2]
	for ix := 0; ix < dims[0]; ix++ {
		for iy := 0; iy < dims[1]; iy++ {
			for iz := 0; iz < dims[2]; iz++ {
				b := &block{idx: [3]int{ix, iy, iz}}
				b.lo = [3]int{ix*sx + 1, iy*sy + 1, iz*sz + 1}
				b.hi = [3]int{(ix + 1) * sx, (iy + 1) * sy, (iz + 1) * sz}
				b.cur = NewGrid(sx, sy, sz)
				b.next = NewGrid(sx, sy, sz)
				s.blocks = append(s.blocks, b)
			}
		}
	}
	// Wire neighbors and halo channels.
	at := func(ix, iy, iz int) *block {
		return s.blocks[(ix*dims[1]+iy)*dims[2]+iz]
	}
	for _, b := range s.blocks {
		for face := 0; face < 6; face++ {
			ax, dir := face/2, face%2
			ni := b.idx
			if dir == 0 {
				ni[ax]--
			} else {
				ni[ax]++
			}
			if ni[ax] < 0 || ni[ax] >= dims[ax] {
				continue
			}
			b.neighbors[face] = at(ni[0], ni[1], ni[2])
			b.haloIn[face] = make(chan []float64, 1)
		}
	}
	// Seed boundary values on the global shell.
	s.applyBoundary()
	return s
}

// applyBoundary writes the global boundary function into the ghost
// cells of shell-adjacent blocks, for both buffers.
func (s *BlockSolver) applyBoundary() {
	if s.boundary == nil {
		return
	}
	for _, b := range s.blocks {
		for _, g := range []*Grid{b.cur, b.next} {
			bx, by, bz := g.Size()
			for i := 0; i <= bx+1; i++ {
				for j := 0; j <= by+1; j++ {
					for k := 0; k <= bz+1; k++ {
						gi, gj, gk := b.lo[0]+i-1, b.lo[1]+j-1, b.lo[2]+k-1
						onShell := gi == 0 || gi == s.nx+1 || gj == 0 || gj == s.ny+1 || gk == 0 || gk == s.nz+1
						if onShell {
							g.Set(i, j, k, s.boundary(gi, gj, gk))
						}
					}
				}
			}
		}
	}
}

// Set writes a value at global interior coordinates (1..N).
func (s *BlockSolver) Set(i, j, k int, v float64) {
	b, li, lj, lk := s.locate(i, j, k)
	b.cur.Set(li, lj, lk, v)
}

// At reads a value at global interior coordinates.
func (s *BlockSolver) At(i, j, k int) float64 {
	b, li, lj, lk := s.locate(i, j, k)
	return b.cur.At(li, lj, lk)
}

func (s *BlockSolver) locate(i, j, k int) (*block, int, int, int) {
	sx, sy, sz := s.nx/s.dims[0], s.ny/s.dims[1], s.nz/s.dims[2]
	ix, iy, iz := (i-1)/sx, (j-1)/sy, (k-1)/sz
	b := s.blocks[(ix*s.dims[1]+iy)*s.dims[2]+iz]
	return b, i - b.lo[0] + 1, j - b.lo[1] + 1, k - b.lo[2] + 1
}

// packFace copies a block's boundary plane for the given face out of
// its current buffer.
func (b *block) packFace(face int) []float64 {
	bx, by, bz := b.cur.Size()
	ax, dir := face/2, face%2
	fix := 1
	if dir == 1 {
		fix = [3]int{bx, by, bz}[ax]
	}
	var out []float64
	switch ax {
	case 0:
		out = make([]float64, 0, by*bz)
		for j := 1; j <= by; j++ {
			for k := 1; k <= bz; k++ {
				out = append(out, b.cur.At(fix, j, k))
			}
		}
	case 1:
		out = make([]float64, 0, bx*bz)
		for i := 1; i <= bx; i++ {
			for k := 1; k <= bz; k++ {
				out = append(out, b.cur.At(i, fix, k))
			}
		}
	default:
		out = make([]float64, 0, bx*by)
		for i := 1; i <= bx; i++ {
			for j := 1; j <= by; j++ {
				out = append(out, b.cur.At(i, j, fix))
			}
		}
	}
	return out
}

// unpackFace writes a received halo plane into the ghost layer of the
// given face.
func (b *block) unpackFace(face int, halo []float64) {
	bx, by, bz := b.cur.Size()
	ax, dir := face/2, face%2
	ghost := 0
	if dir == 1 {
		ghost = [3]int{bx, by, bz}[ax] + 1
	}
	n := 0
	switch ax {
	case 0:
		for j := 1; j <= by; j++ {
			for k := 1; k <= bz; k++ {
				b.cur.Set(ghost, j, k, halo[n])
				n++
			}
		}
	case 1:
		for i := 1; i <= bx; i++ {
			for k := 1; k <= bz; k++ {
				b.cur.Set(i, ghost, k, halo[n])
				n++
			}
		}
	default:
		for i := 1; i <= bx; i++ {
			for j := 1; j <= by; j++ {
				b.cur.Set(i, j, ghost, halo[n])
				n++
			}
		}
	}
}

// sweep updates the block interior from cur into next and returns the
// max-abs change.
func (b *block) sweep() float64 {
	bx, by, bz := b.cur.Size()
	var maxd float64
	for i := 1; i <= bx; i++ {
		for j := 1; j <= by; j++ {
			for k := 1; k <= bz; k++ {
				v := (b.cur.At(i-1, j, k) + b.cur.At(i+1, j, k) +
					b.cur.At(i, j-1, k) + b.cur.At(i, j+1, k) +
					b.cur.At(i, j, k-1) + b.cur.At(i, j, k+1)) / 6
				d := v - b.cur.At(i, j, k)
				if d < 0 {
					d = -d
				}
				if d > maxd {
					maxd = d
				}
				b.next.Set(i, j, k, v)
			}
		}
	}
	return maxd
}

// Step runs n sweeps: each sweep, every block concurrently sends its
// halos, receives its neighbors', updates, and swaps buffers. Returns
// the global residual of the final sweep.
func (s *BlockSolver) Step(n int) float64 {
	var residual float64
	for sweep := 0; sweep < n; sweep++ {
		var wg sync.WaitGroup
		var mu sync.Mutex
		residual = 0
		for _, b := range s.blocks {
			wg.Add(1)
			go func(b *block) {
				defer wg.Done()
				// Send halos to every existing neighbor (buffered
				// channels, no deadlock), then receive and unpack.
				for face := 0; face < 6; face++ {
					if nb := b.neighbors[face]; nb != nil {
						nb.haloIn[oppositeFace(face)] <- b.packFace(face)
					}
				}
				for face := 0; face < 6; face++ {
					if b.neighbors[face] != nil {
						b.unpackFace(face, <-b.haloIn[face])
					}
				}
				local := b.sweep()
				mu.Lock()
				if local > residual {
					residual = local
				}
				mu.Unlock()
			}(b)
		}
		wg.Wait()
		for _, b := range s.blocks {
			b.cur, b.next = b.next, b.cur
		}
		s.applyBoundary()
	}
	return residual
}

func oppositeFace(f int) int { return f ^ 1 }

// String describes the solver.
func (s *BlockSolver) String() string {
	return fmt.Sprintf("BlockSolver %dx%dx%d over %dx%dx%d blocks",
		s.nx, s.ny, s.nz, s.dims[0], s.dims[1], s.dims[2])
}
