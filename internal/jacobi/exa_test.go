package jacobi

import (
	"testing"

	"gat/internal/machine"
)

// exaFigure strips ExaResult to its partition-independent fields — the
// ones that may enter figures and tables. Shards/Windows/Lookahead are
// diagnostics and legitimately vary with the partition.
type exaFigure struct {
	TimePerIter, Total int64
	Events             uint64
	NetBytes           int64
	NetMsgs            uint64
}

func figureOf(r ExaResult) exaFigure {
	return exaFigure{
		TimePerIter: int64(r.TimePerIter), Total: int64(r.Total),
		Events: r.Events, NetBytes: r.NetBytes, NetMsgs: r.NetMsgs,
	}
}

func exaCfg(t *testing.T, profile string, nodes int) machine.Config {
	t.Helper()
	p, err := machine.ProfileByName(profile)
	if err != nil {
		t.Fatal(err)
	}
	return p.Build(nodes)
}

// TestExaShardEquality checks the figure-relevant result fields are
// identical at K ∈ {1, 2, 4} on a multi-group dragonfly, for both
// schedules.
func TestExaShardEquality(t *testing.T) {
	cfg := exaCfg(t, "perlmutter-dragonfly", 96) // 6 groups of 16
	jc := Config{Global: WeakGlobal([3]int{64, 64, 64}, 96), Warmup: 1, Iters: 3}
	for _, overlap := range []bool{false, true} {
		serial := RunExa(cfg, jc, ExaOpts{Shards: 1, Overlap: overlap})
		if serial.TimePerIter <= 0 || serial.NetMsgs == 0 {
			t.Fatalf("overlap=%v: degenerate serial result %+v", overlap, serial)
		}
		for _, k := range []int{2, 4} {
			sharded := RunExa(cfg, jc, ExaOpts{Shards: k, Overlap: overlap})
			if figureOf(sharded) != figureOf(serial) {
				t.Errorf("overlap=%v shards=%d: result diverged\nserial:  %+v\nsharded: %+v",
					overlap, k, figureOf(serial), figureOf(sharded))
			}
			if sharded.Shards != k {
				t.Errorf("overlap=%v: effective shards = %d, want %d", overlap, sharded.Shards, k)
			}
		}
	}
}

// TestExaTenThousandNodes is the scale acceptance test: the model must
// complete at >= 10,000 simulated nodes on perlmutter-dragonfly, with
// the sharded run reproducing the serial result exactly and actually
// windowing.
func TestExaTenThousandNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node run in -short mode")
	}
	const nodes = 10240
	cfg := exaCfg(t, "perlmutter-dragonfly", nodes)
	jc := Config{Global: WeakGlobal([3]int{192, 192, 192}, nodes), Warmup: 1, Iters: 4}
	serial := RunExa(cfg, jc, ExaOpts{Shards: 1, Overlap: true})
	sharded := RunExa(cfg, jc, ExaOpts{Shards: 4, Overlap: true})
	if figureOf(sharded) != figureOf(serial) {
		t.Fatalf("10k-node sharded run diverged\nserial:  %+v\nsharded: %+v",
			figureOf(serial), figureOf(sharded))
	}
	if serial.TimePerIter <= 0 {
		t.Fatalf("degenerate result: %+v", serial)
	}
	if sharded.Shards != 4 || sharded.Windows < 2 || sharded.Lookahead <= 0 {
		t.Fatalf("sharded run did not window: %+v", sharded)
	}
	if sharded.CrossMessages <= uint64(nodes) {
		// Every run merges one Post per node; real cross-shard halo
		// traffic must show on top of that.
		t.Fatalf("no cross-shard traffic crossed the barrier: %+v", sharded)
	}
}

// TestExaOverlapHelps checks the structural claim the scenario plots:
// overlapping the halo flight with the interior update is never slower
// than the blocking schedule, and strictly faster once the grid spans
// groups.
func TestExaOverlapHelps(t *testing.T) {
	cfg := exaCfg(t, "perlmutter-dragonfly", 128)
	jc := Config{Global: WeakGlobal([3]int{96, 96, 96}, 128), Warmup: 1, Iters: 3}
	blocking := RunExa(cfg, jc, ExaOpts{Overlap: false})
	overlap := RunExa(cfg, jc, ExaOpts{Overlap: true})
	if overlap.TimePerIter >= blocking.TimePerIter {
		t.Fatalf("overlap (%v/iter) not faster than blocking (%v/iter)",
			overlap.TimePerIter, blocking.TimePerIter)
	}
}

// TestExaShardsClampedToGroups: a single-group machine cannot shard
// (no cross-group latency to bound windows) and must degrade to one
// shard rather than panic.
func TestExaShardsClampedToGroups(t *testing.T) {
	cfg := exaCfg(t, "perlmutter-dragonfly", 8) // half of one group
	jc := Config{Global: [3]int{64, 64, 64}, Warmup: 1, Iters: 2}
	r := RunExa(cfg, jc, ExaOpts{Shards: 4})
	if r.Shards != 1 || r.Lookahead != 0 {
		t.Fatalf("single-group run sharded: %+v", r)
	}
}
