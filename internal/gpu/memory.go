package gpu

import "fmt"

// Device memory accounting. The paper sizes its problems against the
// V100's 16 GB of HBM2 (the 1536^3-per-node case uses ~9 GB per GPU,
// §IV-B); the allocator enforces that the modelled working set actually
// fits, which catches miscalibrated experiment configurations at setup
// time instead of producing silently impossible runs.

// MemCapacityV100 is the HBM2 capacity of one V100.
const MemCapacityV100 int64 = 16 << 30

// Buffer is one device memory allocation.
type Buffer struct {
	dev   *Device
	name  string
	bytes int64
	freed bool
}

// Bytes returns the allocation size.
func (b *Buffer) Bytes() int64 { return b.bytes }

// Name returns the allocation label.
func (b *Buffer) Name() string { return b.name }

// Alloc reserves bytes of device memory. It panics if the device would
// exceed its capacity: an experiment that does not fit on the GPU is a
// configuration error, not a runtime condition.
func (d *Device) Alloc(name string, bytes int64) *Buffer {
	if bytes < 0 {
		panic("gpu: negative allocation")
	}
	if d.memUsed+bytes > d.memCapacity {
		panic(fmt.Sprintf("gpu: %s out of memory: %d + %d > %d bytes (%s)",
			d.name, d.memUsed, bytes, d.memCapacity, name))
	}
	d.memUsed += bytes
	if d.memUsed > d.memPeak {
		d.memPeak = d.memUsed
	}
	return &Buffer{dev: d, name: name, bytes: bytes}
}

// Free releases the buffer. Double frees panic.
func (b *Buffer) Free() {
	if b.freed {
		panic("gpu: double free of " + b.name)
	}
	b.freed = true
	b.dev.memUsed -= b.bytes
}

// MemUsed returns current device memory in use.
func (d *Device) MemUsed() int64 { return d.memUsed }

// MemPeak returns the high-water mark of device memory use.
func (d *Device) MemPeak() int64 { return d.memPeak }

// MemCapacity returns the device memory capacity.
func (d *Device) MemCapacity() int64 { return d.memCapacity }
