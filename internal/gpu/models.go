package gpu

import "gat/internal/sim"

// Additional device cost models beyond the paper's calibrated V100.
// These are *illustrative* profiles built from public datasheet numbers
// (memory roofline, host-link bandwidth) with launch overheads
// extrapolated from the V100 calibration — not validated against the
// real machines the way V100/Summit is (DESIGN.md §5).

// A100 returns an illustrative cost model for an NVIDIA A100-40GB as
// deployed on Perlmutter-class nodes (HBM2e roofline, PCIe 4.0 host
// link, faster front-end than Volta).
func A100() Config {
	return Config{
		MemBandwidth:      1555e9,
		CopyBandwidth:     25e9,
		CopySetup:         1500 * sim.Nanosecond,
		KernelLaunchHost:  5000 * sim.Nanosecond,
		CopyLaunchHost:    3000 * sim.Nanosecond,
		KernelDispatch:    1000 * sim.Nanosecond,
		GraphLaunchHost:   7000 * sim.Nanosecond,
		GraphNodeHost:     700 * sim.Nanosecond,
		GraphNodeDispatch: 500 * sim.Nanosecond,
		SyncOverhead:      3500 * sim.Nanosecond,
		MemCapacity:       40 << 30,
	}
}

// MI250X returns an illustrative cost model for one GCD of an AMD
// MI250X as deployed on Frontier-class nodes (HBM2e roofline, Infinity
// Fabric host link, HIP launch overheads slightly above CUDA's).
func MI250X() Config {
	return Config{
		MemBandwidth:      1600e9,
		CopyBandwidth:     36e9,
		CopySetup:         1700 * sim.Nanosecond,
		KernelLaunchHost:  7000 * sim.Nanosecond,
		CopyLaunchHost:    3800 * sim.Nanosecond,
		KernelDispatch:    1300 * sim.Nanosecond,
		GraphLaunchHost:   9000 * sim.Nanosecond,
		GraphNodeHost:     900 * sim.Nanosecond,
		GraphNodeDispatch: 700 * sim.Nanosecond,
		SyncOverhead:      4200 * sim.Nanosecond,
		MemCapacity:       64 << 30,
	}
}
