package gpu

import (
	"testing"

	"gat/internal/sim"
)

func TestGraphLinearChain(t *testing.T) {
	e, d := newTestDevice()
	s := d.NewStream("s", PriorityNormal)
	g := NewGraph()
	a := g.AddKernel("a", 100)
	b := g.AddKernel("b", 50, a)
	g.AddKernel("c", 25, b)
	var at sim.Time
	s.Launch(g).OnFire(e, func() { at = e.Now() })
	e.Run()
	// Each node: dispatch 1 + dur. 101 + 51 + 26 = 178.
	if at != 178 {
		t.Fatalf("graph done at %v, want 178", at)
	}
}

func TestGraphDiamondDependency(t *testing.T) {
	e, d := newTestDevice()
	s := d.NewStream("s", PriorityNormal)
	g := NewGraph()
	root := g.AddKernel("root", 10)
	l := g.AddKernel("left", 20, root)
	r := g.AddCopy(D2H, 100, root)
	g.AddKernel("join", 5, l, r)
	var at sim.Time
	s.Launch(g).OnFire(e, func() { at = e.Now() })
	e.Run()
	// root done 11. left (compute) 11..32; copy 11..111 overlaps.
	// join starts at max(32, 111)=111, done 117.
	if at != 117 {
		t.Fatalf("diamond graph done at %v, want 117", at)
	}
}

func TestGraphNodeDispatchCheaperThanKernel(t *testing.T) {
	e, d := newTestDevice()
	// 5-kernel chain as separate launches vs as a graph: the graph saves
	// (KernelDispatch - GraphNodeDispatch) per node on the device.
	s1 := d.NewStream("s1", PriorityNormal)
	var plainAt sim.Time
	for i := 0; i < 5; i++ {
		sig := s1.Kernel("k", 10)
		if i == 4 {
			sig.OnFire(e, func() { plainAt = e.Now() })
		}
	}
	e.Run()

	e2, d2 := newTestDevice()
	s2 := d2.NewStream("s2", PriorityNormal)
	g := NewGraph()
	var prev *GraphNode
	for i := 0; i < 5; i++ {
		if prev == nil {
			prev = g.AddKernel("k", 10)
		} else {
			prev = g.AddKernel("k", 10, prev)
		}
	}
	var graphAt sim.Time
	s2.Launch(g).OnFire(e2, func() { graphAt = e2.Now() })
	e2.Run()

	if plainAt != 60 { // 5 * (2+10)
		t.Fatalf("plain chain done at %v, want 60", plainAt)
	}
	if graphAt != 55 { // 5 * (1+10)
		t.Fatalf("graph chain done at %v, want 55", graphAt)
	}
}

func TestGraphRepeatedLaunch(t *testing.T) {
	e, d := newTestDevice()
	s := d.NewStream("s", PriorityNormal)
	g := NewGraph()
	g.AddKernel("k", 10)
	var times []sim.Time
	for i := 0; i < 3; i++ {
		s.Launch(g).OnFire(e, func() { times = append(times, e.Now()) })
	}
	e.Run()
	want := []sim.Time{11, 22, 33}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("launch %d done at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestEmptyGraphLaunch(t *testing.T) {
	_, d := newTestDevice()
	s := d.NewStream("s", PriorityNormal)
	if !s.Launch(NewGraph()).Fired() {
		t.Fatal("empty graph launch should complete immediately")
	}
}

func TestGraphBlocksStream(t *testing.T) {
	// Work enqueued on the stream after a graph must wait for the whole
	// graph to finish.
	e, d := newTestDevice()
	s := d.NewStream("s", PriorityNormal)
	g := NewGraph()
	g.AddKernel("a", 100)
	s.Launch(g)
	var at sim.Time
	s.Kernel("after", 10).OnFire(e, func() { at = e.Now() })
	e.Run()
	if at != 113 { // graph 101, then 2+10
		t.Fatalf("post-graph kernel done at %v, want 113", at)
	}
}

func TestGraphParallelRootsShareComputeEngine(t *testing.T) {
	e, d := newTestDevice()
	s := d.NewStream("s", PriorityNormal)
	g := NewGraph()
	g.AddKernel("a", 10)
	g.AddKernel("b", 10)
	var at sim.Time
	s.Launch(g).OnFire(e, func() { at = e.Now() })
	e.Run()
	if at != 22 { // serialized on compute: (1+10)*2
		t.Fatalf("parallel-root graph done at %v, want 22", at)
	}
}

func TestV100ConfigSanity(t *testing.T) {
	cfg := V100()
	if cfg.MemBandwidth <= 0 || cfg.CopyBandwidth <= 0 {
		t.Fatal("V100 bandwidths must be positive")
	}
	if cfg.GraphNodeDispatch >= cfg.KernelDispatch {
		t.Fatal("graph node dispatch should be cheaper than kernel dispatch")
	}
	if cfg.GraphLaunchHost >= 3*cfg.KernelLaunchHost {
		t.Fatal("one graph launch should cost less than a few kernel launches")
	}
	e := sim.NewEngine()
	d := New(e, "v100", cfg)
	// 603M-cell block (1536^3/6) at 24 B/cell should take ~15-25 ms.
	cells := int64(1536) * 1536 * 1536 / 6
	dur := d.KernelTime(cells * 24)
	if dur < 10*sim.Millisecond || dur > 40*sim.Millisecond {
		t.Fatalf("V100 Jacobi update time %v out of plausible range", dur)
	}
}
