package gpu

import (
	"testing"
	"testing/quick"

	"gat/internal/sim"
)

// testConfig returns a cost model with round numbers for exact assertions.
func testConfig() Config {
	return Config{
		MemBandwidth:      1e9, // 1 byte/ns
		CopyBandwidth:     1e9,
		CopySetup:         0,
		KernelLaunchHost:  10,
		CopyLaunchHost:    5,
		KernelDispatch:    2,
		GraphLaunchHost:   8,
		GraphNodeDispatch: 1,
		SyncOverhead:      3,
	}
}

func newTestDevice() (*sim.Engine, *Device) {
	e := sim.NewEngine()
	return e, New(e, "gpu0", testConfig())
}

func TestKernelDuration(t *testing.T) {
	e, d := newTestDevice()
	s := d.NewStream("s", PriorityNormal)
	var doneAt sim.Time
	s.Kernel("k", 100).OnFire(e, func() { doneAt = e.Now() })
	e.Run()
	if doneAt != 102 { // dispatch 2 + duration 100
		t.Fatalf("kernel done at %v, want 102", doneAt)
	}
	if d.KernelsLaunched() != 1 {
		t.Fatalf("kernel count = %d", d.KernelsLaunched())
	}
}

func TestStreamOrdering(t *testing.T) {
	e, d := newTestDevice()
	s := d.NewStream("s", PriorityNormal)
	var first, second sim.Time
	s.Kernel("k1", 100).OnFire(e, func() { first = e.Now() })
	s.Kernel("k2", 50).OnFire(e, func() { second = e.Now() })
	e.Run()
	if first != 102 || second != 154 {
		t.Fatalf("first=%v second=%v, want 102/154 (in-order)", first, second)
	}
}

func TestCrossStreamSerialCompute(t *testing.T) {
	// Two kernels on different streams serialize on the compute engine
	// (processor-sharing equivalence for bandwidth-bound kernels).
	e, d := newTestDevice()
	s1 := d.NewStream("s1", PriorityNormal)
	s2 := d.NewStream("s2", PriorityNormal)
	var t1, t2 sim.Time
	s1.Kernel("a", 100).OnFire(e, func() { t1 = e.Now() })
	s2.Kernel("b", 100).OnFire(e, func() { t2 = e.Now() })
	e.Run()
	if t1 != 102 || t2 != 204 {
		t.Fatalf("t1=%v t2=%v, want 102/204", t1, t2)
	}
}

func TestPriorityBypass(t *testing.T) {
	// A high-priority kernel enqueued while a long kernel runs must jump
	// ahead of queued normal-priority work (no preemption of the running
	// kernel).
	e, d := newTestDevice()
	bulk := d.NewStream("bulk", PriorityNormal)
	hi := d.NewStream("hi", PriorityHigh)
	var hiAt, bulk2At sim.Time
	bulk.Kernel("long", 1000)
	bulk2 := d.NewStream("bulk2", PriorityNormal)
	bulk2.Kernel("queued", 100).OnFire(e, func() { bulk2At = e.Now() })
	e.Schedule(10, func() {
		hi.Kernel("pack", 10).OnFire(e, func() { hiAt = e.Now() })
	})
	e.Run()
	// long: 0..1002; pack runs next: 1002+2+10 = 1014; queued after.
	if hiAt != 1014 {
		t.Fatalf("high-priority kernel done at %v, want 1014", hiAt)
	}
	if bulk2At != 1116 {
		t.Fatalf("bypassed kernel done at %v, want 1116", bulk2At)
	}
}

func TestCopyEnginesIndependent(t *testing.T) {
	// D2H and H2D run concurrently on separate DMA engines, and both
	// overlap with compute.
	e, d := newTestDevice()
	s := d.NewStream("s", PriorityNormal)
	cp := d.NewStream("cp", PriorityHigh)
	cp2 := d.NewStream("cp2", PriorityHigh)
	var kAt, d2hAt, h2dAt sim.Time
	s.Kernel("k", 100).OnFire(e, func() { kAt = e.Now() })
	cp.Copy(D2H, 200).OnFire(e, func() { d2hAt = e.Now() })
	cp2.Copy(H2D, 300).OnFire(e, func() { h2dAt = e.Now() })
	e.Run()
	if kAt != 102 || d2hAt != 200 || h2dAt != 300 {
		t.Fatalf("kAt=%v d2hAt=%v h2dAt=%v, want 102/200/300 (all overlapped)", kAt, d2hAt, h2dAt)
	}
	if d.CopiesIssued() != 2 {
		t.Fatalf("copies = %d, want 2", d.CopiesIssued())
	}
}

func TestSameDirectionCopiesSerialize(t *testing.T) {
	e, d := newTestDevice()
	a := d.NewStream("a", PriorityHigh)
	b := d.NewStream("b", PriorityHigh)
	var t1, t2 sim.Time
	a.Copy(D2H, 100).OnFire(e, func() { t1 = e.Now() })
	b.Copy(D2H, 100).OnFire(e, func() { t2 = e.Now() })
	e.Run()
	if t1 != 100 || t2 != 200 {
		t.Fatalf("t1=%v t2=%v, want 100/200", t1, t2)
	}
}

func TestOnCompleteCallback(t *testing.T) {
	e, d := newTestDevice()
	s := d.NewStream("s", PriorityNormal)
	var cbAt sim.Time = -1
	s.Kernel("k", 50)
	s.OnComplete(func() { cbAt = e.Now() })
	e.Run()
	if cbAt != 52 {
		t.Fatalf("callback at %v, want 52", cbAt)
	}
}

func TestEventAndWaitEvent(t *testing.T) {
	e, d := newTestDevice()
	prod := d.NewStream("prod", PriorityNormal)
	cons := d.NewStream("cons", PriorityNormal)
	prod.Kernel("p", 100)
	ev := prod.RecordEvent()
	cons.WaitEvent(ev)
	var consAt sim.Time
	cons.Kernel("c", 10).OnFire(e, func() { consAt = e.Now() })
	e.Run()
	if consAt != 114 { // 102 (p done) + 2 + 10
		t.Fatalf("consumer kernel done at %v, want 114", consAt)
	}
}

func TestWaitSignalGatesStream(t *testing.T) {
	e, d := newTestDevice()
	s := d.NewStream("s", PriorityNormal)
	arrival := sim.NewSignal()
	s.WaitSignal(arrival)
	var kAt sim.Time
	s.Kernel("unpack", 10).OnFire(e, func() { kAt = e.Now() })
	e.Schedule(500, func() { arrival.Fire(e) })
	e.Run()
	if kAt != 512 {
		t.Fatalf("gated kernel done at %v, want 512", kAt)
	}
}

func TestStreamSync(t *testing.T) {
	e, d := newTestDevice()
	s := d.NewStream("s", PriorityNormal)
	var resumed sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		s.Kernel("k", 100)
		s.Sync(p)
		resumed = p.Now()
	})
	e.Run()
	// Sync overhead 3 charged first, kernel finishes at 102.
	if resumed != 102 {
		t.Fatalf("host resumed at %v, want 102", resumed)
	}
}

func TestStreamSyncEmpty(t *testing.T) {
	e, d := newTestDevice()
	s := d.NewStream("s", PriorityNormal)
	var resumed sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		s.Sync(p)
		resumed = p.Now()
	})
	e.Run()
	if resumed != 3 { // just the overhead
		t.Fatalf("host resumed at %v, want 3", resumed)
	}
}

func TestDrained(t *testing.T) {
	e, d := newTestDevice()
	s := d.NewStream("s", PriorityNormal)
	if !s.Drained().Fired() {
		t.Fatal("empty stream should be drained")
	}
	s.Kernel("k", 10)
	var at sim.Time
	s.Drained().OnFire(e, func() { at = e.Now() })
	e.Run()
	if at != 12 {
		t.Fatalf("drained at %v, want 12", at)
	}
}

func TestKernelBytesRoofline(t *testing.T) {
	e, d := newTestDevice()
	s := d.NewStream("s", PriorityNormal)
	var at sim.Time
	s.KernelBytes("k", 1000).OnFire(e, func() { at = e.Now() })
	e.Run()
	if at != 1002 { // 1000 bytes at 1 B/ns + dispatch 2
		t.Fatalf("roofline kernel done at %v, want 1002", at)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	e, d := newTestDevice()
	s := d.NewStream("s", PriorityNormal)
	s.Kernel("k", 98) // busy 100 with dispatch
	e.Schedule(400, func() {})
	e.Run()
	if u := d.Utilization(); u != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}

// Property: N kernels across arbitrary streams complete in total
// dispatch+duration sum (serial compute engine conserves work).
func TestComputeWorkConservationProperty(t *testing.T) {
	f := func(durs []uint8, nstreams uint8) bool {
		if len(durs) == 0 {
			return true
		}
		ns := int(nstreams)%4 + 1
		e, d := newTestDevice()
		streams := make([]*Stream, ns)
		for i := range streams {
			streams[i] = d.NewStream("s", PriorityNormal)
		}
		var last sim.Time
		var sum sim.Time
		for i, dur := range durs {
			dd := sim.Time(dur)
			sum += dd + 2 // + dispatch
			streams[i%ns].Kernel("k", dd).OnFire(e, func() { last = e.Now() })
		}
		e.Run()
		return last == sum && d.BusyTime() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
