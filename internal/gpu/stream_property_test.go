package gpu

import (
	"testing"
	"testing/quick"

	"gat/internal/sim"
)

// Property: operations on one stream complete in enqueue order, no
// matter how kernels and copies interleave.
func TestStreamFIFOProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		if len(ops) == 0 {
			return true
		}
		e, d := newTestDevice()
		s := d.NewStream("s", PriorityNormal)
		var completions []int
		for i, op := range ops {
			i := i
			var sig *sim.Signal
			switch op % 3 {
			case 0:
				sig = s.Kernel("k", sim.Time(op)+1)
			case 1:
				sig = s.Copy(D2H, int64(op)+1)
			default:
				sig = s.Copy(H2D, int64(op)+1)
			}
			sig.OnFire(e, func() { completions = append(completions, i) })
		}
		e.Run()
		if len(completions) != len(ops) {
			return false
		}
		for i, c := range completions {
			if c != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: recorded events fire exactly at the completion time of the
// work preceding them, and never before.
func TestEventOrderingProperty(t *testing.T) {
	f := func(durs []uint8) bool {
		e, d := newTestDevice()
		s := d.NewStream("s", PriorityNormal)
		var kernelDone, eventDone []sim.Time
		for _, dur := range durs {
			s.Kernel("k", sim.Time(dur)).OnFire(e, func() {
				kernelDone = append(kernelDone, e.Now())
			})
			ev := s.RecordEvent()
			ev.Done().OnFire(e, func() {
				eventDone = append(eventDone, e.Now())
			})
		}
		e.Run()
		if len(kernelDone) != len(durs) || len(eventDone) != len(durs) {
			return false
		}
		for i := range durs {
			if eventDone[i] < kernelDone[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: graphs conserve kernel work — total device busy time for a
// graph equals the sum of node durations plus per-node dispatch.
func TestGraphWorkConservationProperty(t *testing.T) {
	f := func(durs []uint8) bool {
		if len(durs) == 0 {
			return true
		}
		e, d := newTestDevice()
		s := d.NewStream("s", PriorityNormal)
		g := NewGraph()
		var prev *GraphNode
		var sum sim.Time
		for _, dur := range durs {
			dd := sim.Time(dur)
			sum += dd + 1 // + GraphNodeDispatch
			if prev == nil {
				prev = g.AddKernel("k", dd)
			} else {
				prev = g.AddKernel("k", dd, prev)
			}
		}
		s.Launch(g)
		e.Run()
		return d.BusyTime() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
