// Package gpu models a CUDA-capable accelerator on the discrete-event
// simulator: streams with priorities, kernels with launch overheads,
// dual DMA copy engines, CUDA-style events and host callbacks, and
// executable graphs.
//
// The compute side is modelled as a serial priority server. For the
// memory-bandwidth-bound kernels of stencil codes this is equivalent in
// aggregate to concurrent execution with shared bandwidth (processor
// sharing): k concurrent kernels each run k times slower, so total
// completion time is unchanged, while priority queueing still lets small
// high-priority packing kernels bypass queued bulk work — the behaviour
// the paper relies on in §III-A.
package gpu

import (
	"fmt"

	"gat/internal/sim"
)

// Config holds the device cost model. All host-side costs are *not*
// charged by this package; they are exposed so the calling runtime (a PE
// scheduler or an MPI rank) can charge them to the correct CPU.
type Config struct {
	// MemBandwidth is the effective device memory bandwidth in bytes/s,
	// used by callers to derive kernel durations.
	MemBandwidth float64
	// CopyBandwidth is the host-link (NVLink/PCIe) bandwidth per DMA
	// engine in bytes/s.
	CopyBandwidth float64
	// CopySetup is the fixed device-side setup time per DMA transfer.
	CopySetup sim.Time
	// KernelLaunchHost is the host CPU cost of launching one kernel.
	KernelLaunchHost sim.Time
	// CopyLaunchHost is the host CPU cost of enqueueing one async copy.
	CopyLaunchHost sim.Time
	// KernelDispatch is the device-side latency from a kernel reaching
	// the head of its stream to execution beginning, when idle.
	KernelDispatch sim.Time
	// GraphLaunchHost is the host CPU cost of launching one executable
	// graph, replacing per-kernel launch costs.
	GraphLaunchHost sim.Time
	// GraphNodeHost is the additional host cost per graph node at
	// launch (parameter validation scales mildly with graph size).
	GraphNodeHost sim.Time
	// GraphNodeDispatch is the device-side dispatch cost per graph node,
	// cheaper than KernelDispatch because dependencies are pre-resolved.
	GraphNodeDispatch sim.Time
	// SyncOverhead is the host cost of a stream/device synchronize call
	// in addition to the actual wait.
	SyncOverhead sim.Time
	// MemCapacity is the device memory capacity in bytes; zero means
	// MemCapacityV100.
	MemCapacity int64
}

// V100 returns a cost model calibrated to an NVIDIA Tesla V100 on a
// Summit node (HBM2 roofline, NVLink2 host link). See DESIGN.md §5.
func V100() Config {
	return Config{
		MemBandwidth:      780e9,
		CopyBandwidth:     45e9,
		CopySetup:         1800 * sim.Nanosecond,
		KernelLaunchHost:  6500 * sim.Nanosecond,
		CopyLaunchHost:    3500 * sim.Nanosecond,
		KernelDispatch:    1200 * sim.Nanosecond,
		GraphLaunchHost:   8000 * sim.Nanosecond,
		GraphNodeHost:     800 * sim.Nanosecond,
		GraphNodeDispatch: 600 * sim.Nanosecond,
		SyncOverhead:      4000 * sim.Nanosecond,
	}
}

// CopyDir is the direction of a host<->device DMA transfer.
type CopyDir int

// Transfer directions.
const (
	D2H CopyDir = iota // device to host
	H2D                // host to device
)

func (d CopyDir) String() string {
	if d == D2H {
		return "d2h"
	}
	return "h2d"
}

// Device is one simulated GPU.
type Device struct {
	eng  *sim.Engine
	cfg  Config
	name string

	ready     readyHeap
	busy      bool
	busyAccum sim.Time
	seq       uint64

	// The compute engine is a serial server, so at most one item is in
	// flight; its bookkeeping lives on the device and the completion
	// event schedules completeFn — one thunk created at New, instead of
	// one closure allocated per dispatched kernel.
	curService sim.Time
	curStart   sim.Time
	curLabel   string
	curDone    func()
	completeFn func()

	d2h, h2d *sim.Pipe

	// streamPool holds the reusable transient streams handed out by
	// AcquireStream; an entry with an empty op queue is idle and may be
	// re-acquired.
	streamPool []*Stream

	// ops is the arena all stream operations are carved from; records
	// live until the device (with its engine) is discarded.
	ops sim.Arena[op]

	kernelCount uint64
	copyCount   uint64

	// durCache memoizes KernelTime results (see there); durNext is the
	// round-robin eviction cursor.
	durCache [8]durEntry
	durNext  int

	memCapacity int64
	memUsed     int64
	memPeak     int64
}

// New creates a device attached to engine e.
func New(e *sim.Engine, name string, cfg Config) *Device {
	capacity := cfg.MemCapacity
	if capacity == 0 {
		capacity = MemCapacityV100
	}
	d := &Device{
		eng:         e,
		cfg:         cfg,
		name:        name,
		d2h:         sim.NewPipe(e, name+"/d2h", cfg.CopyBandwidth, cfg.CopySetup),
		h2d:         sim.NewPipe(e, name+"/h2d", cfg.CopyBandwidth, cfg.CopySetup),
		memCapacity: capacity,
	}
	d.completeFn = d.complete
	return d
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Config returns the device cost model.
func (d *Device) Config() Config { return d.cfg }

// Engine returns the simulation engine.
func (d *Device) Engine() *sim.Engine { return d.eng }

// BusyTime returns cumulative compute-engine busy time.
func (d *Device) BusyTime() sim.Time { return d.busyAccum }

// KernelsLaunched returns the number of kernels executed, including
// graph nodes.
func (d *Device) KernelsLaunched() uint64 { return d.kernelCount }

// CopiesIssued returns the number of DMA transfers executed.
func (d *Device) CopiesIssued() uint64 { return d.copyCount }

// KernelTime returns the device time of a memory-bound kernel moving the
// given number of bytes, per the roofline model. An iterative workload
// launches the same few kernel sizes every step, so the float division
// behind DurationOf is memoized in a small per-device table (exact
// values: a hit returns the very Time a miss computed earlier).
//
//gat:hotpath
func (d *Device) KernelTime(bytes int64) sim.Time {
	for i := range d.durCache {
		if c := &d.durCache[i]; c.bytes == bytes && c.dur != 0 {
			return c.dur
		}
	}
	dur := sim.DurationOf(bytes, d.cfg.MemBandwidth)
	d.durCache[d.durNext] = durEntry{bytes: bytes, dur: dur}
	d.durNext = (d.durNext + 1) % len(d.durCache)
	return dur
}

// durEntry is one memoized KernelTime result. dur == 0 marks an empty
// slot; a genuinely zero-duration kernel (bytes == 0) recomputes every
// time, which is harmless.
type durEntry struct {
	bytes int64
	dur   sim.Time
}

// Stream priorities. Lower values run first when the compute engine
// picks among eligible work, mirroring CUDA stream priorities.
const (
	PriorityHigh   = 0
	PriorityNormal = 1
)

// readyItem is a unit of compute work eligible for dispatch.
type readyItem struct {
	prio    int
	seq     uint64
	service sim.Time
	label   string
	done    func()
}

// readyHeap is a monomorphic 4-ary min-heap ordered by (prio, seq),
// mirroring the engine's event heap: the container/heap interface would
// box every readyItem on Push and Pop, and kernel dispatch sits on the
// per-iteration hot path of every simulation.
type readyHeap []readyItem

// before reports whether a dispatches before b: higher priority (lower
// value) first, then submission order.
func (a readyItem) before(b readyItem) bool {
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

// push inserts it, holding it aside and shifting displaced parents
// down — one copy per level instead of a swap.
//
//gat:hotpath
func (h *readyHeap) push(it readyItem) {
	q := append(*h, it)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !it.before(q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = it
	*h = q
}

// popMin removes and returns the first item to dispatch, zeroing the
// vacated tail slot so it does not retain the item's done closure.
//
//gat:hotpath
func (h *readyHeap) popMin() readyItem {
	q := *h
	min := q[0]
	n := len(q) - 1
	tail := q[n]
	q[n] = readyItem{}
	q = q[:n]
	*h = q
	if n == 0 {
		return min
	}
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if q[j].before(q[best]) {
				best = j
			}
		}
		if !q[best].before(tail) {
			break
		}
		q[i] = q[best]
		i = best
	}
	q[i] = tail
	return min
}

// submitCompute queues work for the serial compute engine.
func (d *Device) submitCompute(prio int, label string, service sim.Time, done func()) {
	d.seq++
	d.ready.push(readyItem{prio: prio, seq: d.seq, service: service, label: label, done: done})
	d.tryDispatch()
}

func (d *Device) tryDispatch() {
	if d.busy || len(d.ready) == 0 {
		return
	}
	it := d.ready.popMin()
	d.busy = true
	d.kernelCount++
	d.curService, d.curStart, d.curLabel, d.curDone = it.service, d.eng.Now(), it.label, it.done
	d.eng.At(d.eng.Now()+it.service, d.completeFn)
}

// complete finishes the in-flight compute item. The current item's
// fields are copied out first: done() may submit new work, which
// re-dispatches and overwrites them.
func (d *Device) complete() {
	service, start, label, done := d.curService, d.curStart, d.curLabel, d.curDone
	d.curDone = nil
	d.busyAccum += service
	if tr := d.eng.Tracer(); tr != nil {
		tr.Add(sim.Span{Resource: d.name, Label: label, Start: start, End: d.eng.Now()})
	}
	d.busy = false
	done()
	d.tryDispatch()
}

func (d *Device) copyPipe(dir CopyDir) *sim.Pipe {
	if dir == D2H {
		return d.d2h
	}
	return d.h2d
}

// ResetOps frees all stream-op records at once, keeping chunk capacity
// warm for the next run. It may only be called at a run boundary: every
// stream must be drained (no op in flight or queued) and the caller
// must not use any previously returned op signal — stream completion
// signals, recorded events — afterwards.
func (d *Device) ResetOps() {
	if d.busy || len(d.ready) > 0 {
		panic("gpu: ResetOps with compute work pending")
	}
	for _, s := range d.streamPool {
		if len(s.ops) > 0 {
			panic("gpu: ResetOps with stream ops pending")
		}
	}
	d.ops.Reset()
}

// Utilization returns compute busy time over elapsed time.
func (d *Device) Utilization() float64 {
	now := d.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(d.busyAccum) / float64(now)
}

func (d *Device) String() string {
	return fmt.Sprintf("%s(kernels=%d copies=%d busy=%v)", d.name, d.kernelCount, d.copyCount, d.busyAccum)
}
