package gpu

import (
	"testing"
	"testing/quick"

	"gat/internal/sim"
)

func TestAllocFreeAccounting(t *testing.T) {
	_, d := newTestDevice()
	b1 := d.Alloc("a", 1<<20)
	b2 := d.Alloc("b", 2<<20)
	if d.MemUsed() != 3<<20 {
		t.Fatalf("used = %d", d.MemUsed())
	}
	b1.Free()
	if d.MemUsed() != 2<<20 {
		t.Fatalf("used after free = %d", d.MemUsed())
	}
	if d.MemPeak() != 3<<20 {
		t.Fatalf("peak = %d", d.MemPeak())
	}
	b2.Free()
	if d.MemUsed() != 0 {
		t.Fatalf("used after all frees = %d", d.MemUsed())
	}
}

func TestAllocOverCapacityPanics(t *testing.T) {
	e := sim.NewEngine()
	cfg := testConfig()
	cfg.MemCapacity = 1 << 20
	d := New(e, "small", cfg)
	d.Alloc("fits", 1<<19)
	defer func() {
		if recover() == nil {
			t.Error("over-capacity alloc did not panic")
		}
	}()
	d.Alloc("overflow", 1<<20)
}

func TestDoubleFreePanics(t *testing.T) {
	_, d := newTestDevice()
	b := d.Alloc("x", 10)
	b.Free()
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	b.Free()
}

func TestDefaultCapacityIsV100(t *testing.T) {
	_, d := newTestDevice()
	if d.MemCapacity() != MemCapacityV100 {
		t.Fatalf("capacity = %d, want 16 GiB", d.MemCapacity())
	}
}

// Property: any alloc/free sequence that individually fits keeps
// used <= peak <= capacity and used equals the running sum.
func TestMemAccountingProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		e := sim.NewEngine()
		cfg := testConfig()
		cfg.MemCapacity = 1 << 30
		d := New(e, "m", cfg)
		var live []*Buffer
		var sum int64
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				b := live[0]
				live = live[1:]
				sum -= b.Bytes()
				b.Free()
			} else {
				bytes := int64(op) + 1
				if d.MemUsed()+bytes > d.MemCapacity() {
					continue
				}
				live = append(live, d.Alloc("p", bytes))
				sum += bytes
			}
			if d.MemUsed() != sum || d.MemPeak() < d.MemUsed() || d.MemPeak() > d.MemCapacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphTotalKernelTime(t *testing.T) {
	g := NewGraph()
	a := g.AddKernel("a", 100)
	g.AddCopy(D2H, 1000, a)
	g.AddKernel("b", 50, a)
	if got := g.TotalKernelTime(); got != 150 {
		t.Fatalf("TotalKernelTime = %v, want 150 (copies excluded)", got)
	}
}
