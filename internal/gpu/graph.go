package gpu

import "gat/internal/sim"

// Graph is an executable graph of device operations with explicit
// dependencies — the CUDA Graphs analogue. A graph is captured once and
// launched many times; each launch costs Config.GraphLaunchHost on the
// host instead of one launch overhead per kernel, and each node pays the
// cheaper GraphNodeDispatch on the device.
//
// Node parameters are fixed at capture time (the CUDA Graphs
// restriction the paper works around in §III-D2 by capturing two graphs
// with swapped buffer pointers and alternating between them).
type Graph struct {
	nodes []*GraphNode
}

// GraphNode is one operation in a graph.
type GraphNode struct {
	label string
	kind  opKind // opKernel or opCopy
	dur   sim.Time
	bytes int64
	dir   CopyDir
	deps  []*GraphNode
	index int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// TotalKernelTime returns the sum of the graph's kernel durations,
// used for load accounting.
func (g *Graph) TotalKernelTime() sim.Time {
	var total sim.Time
	for _, n := range g.nodes {
		if n.kind == opKernel {
			total += n.dur
		}
	}
	return total
}

// AddKernel adds a kernel node that runs after all deps complete.
func (g *Graph) AddKernel(label string, dur sim.Time, deps ...*GraphNode) *GraphNode {
	n := &GraphNode{label: label, kind: opKernel, dur: dur, deps: deps, index: len(g.nodes)}
	g.nodes = append(g.nodes, n)
	return n
}

// AddCopy adds a DMA node that runs after all deps complete.
func (g *Graph) AddCopy(dir CopyDir, bytes int64, deps ...*GraphNode) *GraphNode {
	n := &GraphNode{label: dir.String(), kind: opCopy, bytes: bytes, dir: dir, deps: deps, index: len(g.nodes)}
	g.nodes = append(g.nodes, n)
	return n
}

// Launch enqueues one execution of the graph on the stream and returns
// its completion signal. The caller charges Config.GraphLaunchHost to
// the launching CPU.
func (s *Stream) Launch(g *Graph) *sim.Signal {
	if g.Len() == 0 {
		return sim.FiredSignal()
	}
	o := s.newOp()
	o.kind, o.label, o.graph = opGraph, "graph", g
	return s.enqueue(o)
}

// launchGraphInstance executes one instance of o.graph, calling complete
// when every node has finished. Node-level parallelism is bounded by the
// device engines, as on real hardware.
func (s *Stream) launchGraphInstance(o *op, complete func()) {
	g := o.graph
	d := s.dev
	remaining := len(g.nodes)
	indeg := make([]int, len(g.nodes))
	children := make([][]*GraphNode, len(g.nodes))
	for _, n := range g.nodes {
		indeg[n.index] = len(n.deps)
		for _, dep := range n.deps {
			children[dep.index] = append(children[dep.index], n)
		}
	}

	var start func(n *GraphNode)
	nodeDone := func(n *GraphNode) {
		remaining--
		for _, c := range children[n.index] {
			indeg[c.index]--
			if indeg[c.index] == 0 {
				start(c)
			}
		}
		if remaining == 0 {
			complete()
		}
	}
	start = func(n *GraphNode) {
		switch n.kind {
		case opKernel:
			d.submitCompute(s.prio, "graph/"+n.label, d.cfg.GraphNodeDispatch+n.dur,
				func() { nodeDone(n) })
		case opCopy:
			d.copyCount++
			d.copyPipe(n.dir).Transfer(n.bytes).OnFire(d.eng, func() { nodeDone(n) })
		default:
			panic("gpu: unsupported graph node kind")
		}
	}
	for _, n := range g.nodes {
		if indeg[n.index] == 0 {
			start(n)
		}
	}
}
