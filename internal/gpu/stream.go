package gpu

import "gat/internal/sim"

// Stream is an in-order queue of device operations, the CUDA stream
// analogue. Operations on one stream execute in FIFO order; operations
// on different streams may interleave subject to engine availability.
type Stream struct {
	dev  *Device
	name string
	prio int
	ops  []*op // pending; ops[0] is the in-flight head
	// completeFn finishes the in-flight head op. A stream executes one
	// op at a time, so a single thunk created at NewStream serves every
	// op instead of allocating a completion closure per op.
	completeFn func()
}

// newOp returns a zeroed op from the device's arena. Ops are never
// recycled individually — their embedded done signals may outlive
// completion in caller hands — so they live until the device's engine
// (and with it the arena) is discarded.
//
//gat:hotpath
func (s *Stream) newOp() *op { return s.dev.ops.New() }

// NewStream creates a stream with the given priority (PriorityHigh or
// PriorityNormal).
func (d *Device) NewStream(name string, prio int) *Stream {
	s := &Stream{dev: d, name: name, prio: prio}
	s.completeFn = s.complete
	return s
}

// AcquireStream returns an idle stream from the device's pool —
// creating and pooling a new one only when every pooled stream still
// has operations in flight — relabeled with the given name and
// priority. An idle stream is behaviorally identical to a fresh one
// (its queue is empty, so no ordering carries over), which lets
// transient per-message streams (netsim host staging) be reused
// instead of allocated, keeping the steady state allocation-free.
//
// The caller must enqueue the stream's operations before the device's
// next AcquireStream call (i.e. synchronously, before returning to the
// event loop); a stream with pending operations is never handed out
// again until they complete. There is no release call: a stream
// returns to circulation by draining.
func (d *Device) AcquireStream(name string, prio int) *Stream {
	for _, s := range d.streamPool {
		if len(s.ops) == 0 {
			s.name, s.prio = name, prio
			return s
		}
	}
	s := d.NewStream(name, prio)
	d.streamPool = append(d.streamPool, s)
	return s
}

// PooledStreams returns the number of streams in the device's
// acquire pool (for reuse assertions in tests).
func (d *Device) PooledStreams() int { return len(d.streamPool) }

// Device returns the owning device.
func (s *Stream) Device() *Device { return s.dev }

// Priority returns the stream priority.
func (s *Stream) Priority() int { return s.prio }

// Pending returns the number of queued (not yet completed) operations.
func (s *Stream) Pending() int { return len(s.ops) }

type opKind int

const (
	opKernel opKind = iota
	opCopy
	opCallback
	opEvent
	opWait
	opGraph
)

type op struct {
	kind  opKind
	label string
	dur   sim.Time    // kernel device duration
	bytes int64       // copy size
	dir   CopyDir     // copy direction
	cb    func()      // callback body
	wait  *sim.Signal // gate for opWait
	graph *Graph      // for opGraph
	done  sim.Signal  // embedded: one allocation per op, not two
}

func (s *Stream) enqueue(o *op) *sim.Signal {
	s.ops = append(s.ops, o)
	if len(s.ops) == 1 {
		s.startHead()
	}
	return &o.done
}

// startHead begins executing the op at the head of the stream.
func (s *Stream) startHead() {
	o := s.ops[0]
	d := s.dev
	switch o.kind {
	case opKernel:
		d.submitCompute(s.prio, o.label, d.cfg.KernelDispatch+o.dur, s.completeFn)
	case opCopy:
		d.copyCount++
		d.copyPipe(o.dir).Transfer(o.bytes).OnFire(d.eng, s.completeFn)
	case opCallback:
		// Host callback: runs as an event at the current time, then the
		// stream advances.
		d.eng.Schedule(0, func() {
			o.cb()
			s.complete()
		})
	case opEvent:
		s.complete()
	case opWait:
		o.wait.OnFire(d.eng, s.completeFn)
	case opGraph:
		s.launchGraphInstance(o, s.completeFn)
	default:
		panic("gpu: unknown op kind")
	}
}

// complete finishes the head op: fire its signal, dequeue it
// (capacity-preserving, so a steady enqueue/complete cycle never
// reallocates), and start the next.
func (s *Stream) complete() {
	o := s.ops[0]
	o.done.Fire(s.dev.eng)
	n := copy(s.ops, s.ops[1:])
	s.ops[n] = nil
	s.ops = s.ops[:n]
	if len(s.ops) > 0 {
		s.startHead()
	}
}

// Kernel enqueues a kernel with an explicit device duration and returns
// its completion signal. The caller is responsible for charging
// Config.KernelLaunchHost to the launching CPU.
func (s *Stream) Kernel(label string, dur sim.Time) *sim.Signal {
	o := s.newOp()
	o.kind, o.label, o.dur = opKernel, label, dur
	return s.enqueue(o)
}

// KernelBytes enqueues a memory-bound kernel whose duration is derived
// from the roofline model.
func (s *Stream) KernelBytes(label string, bytes int64) *sim.Signal {
	return s.Kernel(label, s.dev.KernelTime(bytes))
}

// Copy enqueues an async DMA transfer of the given size and direction.
// The caller charges Config.CopyLaunchHost to the launching CPU.
func (s *Stream) Copy(dir CopyDir, bytes int64) *sim.Signal {
	o := s.newOp()
	o.kind, o.label, o.bytes, o.dir = opCopy, dir.String(), bytes, dir
	return s.enqueue(o)
}

// OnComplete enqueues a host callback that runs when all previously
// enqueued work on the stream has finished. This is the mechanism behind
// HAPI-style asynchronous completion detection.
func (s *Stream) OnComplete(cb func()) {
	o := s.newOp()
	o.kind, o.label, o.cb = opCallback, "callback", cb
	s.enqueue(o)
}

// Event is a CUDA-event analogue: a marker recorded on a stream whose
// signal fires when all prior work on that stream has completed.
type Event struct{ sig *sim.Signal }

// Done returns the completion signal.
func (ev *Event) Done() *sim.Signal { return ev.sig }

// RecordEvent records an event on the stream.
func (s *Stream) RecordEvent() *Event {
	o := s.newOp()
	o.kind, o.label = opEvent, "event"
	return &Event{sig: s.enqueue(o)}
}

// WaitEvent blocks subsequent work on s until ev (recorded on another
// stream) completes — the cross-stream dependency primitive.
func (s *Stream) WaitEvent(ev *Event) *sim.Signal {
	o := s.newOp()
	o.kind, o.label, o.wait = opWait, "waitEvent", ev.sig
	return s.enqueue(o)
}

// WaitSignal blocks subsequent work on s until an arbitrary simulation
// signal fires (e.g. network data arrival before an unpack kernel).
func (s *Stream) WaitSignal(sig *sim.Signal) *sim.Signal {
	o := s.newOp()
	o.kind, o.label, o.wait = opWait, "waitSignal", sig
	return s.enqueue(o)
}

// Sync blocks the calling proc until all currently enqueued work on the
// stream completes, charging the host synchronization overhead. This is
// the cudaStreamSynchronize analogue used by the "before-optimization"
// Jacobi3D variant and the MPI variants.
func (s *Stream) Sync(p *sim.Proc) {
	p.Sleep(s.dev.cfg.SyncOverhead)
	if len(s.ops) == 0 {
		return
	}
	ev := s.RecordEvent()
	p.Wait(ev.sig)
}

// Drained returns a signal that fires when all currently enqueued work
// completes, without blocking (for event-driven callers).
func (s *Stream) Drained() *sim.Signal {
	if len(s.ops) == 0 {
		return sim.FiredSignal()
	}
	return s.RecordEvent().sig
}
