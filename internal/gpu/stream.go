package gpu

import "gat/internal/sim"

// Stream is an in-order queue of device operations, the CUDA stream
// analogue. Operations on one stream execute in FIFO order; operations
// on different streams may interleave subject to engine availability.
type Stream struct {
	dev  *Device
	name string
	prio int
	ops  []*op // pending; ops[0] is the in-flight head
}

// NewStream creates a stream with the given priority (PriorityHigh or
// PriorityNormal).
func (d *Device) NewStream(name string, prio int) *Stream {
	return &Stream{dev: d, name: name, prio: prio}
}

// Device returns the owning device.
func (s *Stream) Device() *Device { return s.dev }

// Priority returns the stream priority.
func (s *Stream) Priority() int { return s.prio }

// Pending returns the number of queued (not yet completed) operations.
func (s *Stream) Pending() int { return len(s.ops) }

type opKind int

const (
	opKernel opKind = iota
	opCopy
	opCallback
	opEvent
	opWait
	opGraph
)

type op struct {
	kind  opKind
	label string
	dur   sim.Time    // kernel device duration
	bytes int64       // copy size
	dir   CopyDir     // copy direction
	cb    func()      // callback body
	wait  *sim.Signal // gate for opWait
	graph *Graph      // for opGraph
	done  *sim.Signal
}

func (s *Stream) enqueue(o *op) *sim.Signal {
	o.done = sim.NewSignal()
	s.ops = append(s.ops, o)
	if len(s.ops) == 1 {
		s.startHead()
	}
	return o.done
}

// startHead begins executing the op at the head of the stream.
func (s *Stream) startHead() {
	o := s.ops[0]
	d := s.dev
	complete := func() {
		o.done.Fire(d.eng)
		s.ops = s.ops[1:]
		if len(s.ops) > 0 {
			s.startHead()
		}
	}
	switch o.kind {
	case opKernel:
		d.submitCompute(s.prio, o.label, d.cfg.KernelDispatch+o.dur, complete)
	case opCopy:
		d.copyCount++
		d.copyPipe(o.dir).Transfer(o.bytes).OnFire(d.eng, complete)
	case opCallback:
		// Host callback: runs as an event at the current time, then the
		// stream advances.
		d.eng.Schedule(0, func() {
			o.cb()
			complete()
		})
	case opEvent:
		complete()
	case opWait:
		o.wait.OnFire(d.eng, complete)
	case opGraph:
		s.launchGraphInstance(o, complete)
	default:
		panic("gpu: unknown op kind")
	}
}

// Kernel enqueues a kernel with an explicit device duration and returns
// its completion signal. The caller is responsible for charging
// Config.KernelLaunchHost to the launching CPU.
func (s *Stream) Kernel(label string, dur sim.Time) *sim.Signal {
	return s.enqueue(&op{kind: opKernel, label: label, dur: dur})
}

// KernelBytes enqueues a memory-bound kernel whose duration is derived
// from the roofline model.
func (s *Stream) KernelBytes(label string, bytes int64) *sim.Signal {
	return s.Kernel(label, s.dev.KernelTime(bytes))
}

// Copy enqueues an async DMA transfer of the given size and direction.
// The caller charges Config.CopyLaunchHost to the launching CPU.
func (s *Stream) Copy(dir CopyDir, bytes int64) *sim.Signal {
	return s.enqueue(&op{kind: opCopy, label: dir.String(), bytes: bytes, dir: dir})
}

// OnComplete enqueues a host callback that runs when all previously
// enqueued work on the stream has finished. This is the mechanism behind
// HAPI-style asynchronous completion detection.
func (s *Stream) OnComplete(cb func()) {
	s.enqueue(&op{kind: opCallback, label: "callback", cb: cb})
}

// Event is a CUDA-event analogue: a marker recorded on a stream whose
// signal fires when all prior work on that stream has completed.
type Event struct{ sig *sim.Signal }

// Done returns the completion signal.
func (ev *Event) Done() *sim.Signal { return ev.sig }

// RecordEvent records an event on the stream.
func (s *Stream) RecordEvent() *Event {
	sig := s.enqueue(&op{kind: opEvent, label: "event"})
	return &Event{sig: sig}
}

// WaitEvent blocks subsequent work on s until ev (recorded on another
// stream) completes — the cross-stream dependency primitive.
func (s *Stream) WaitEvent(ev *Event) *sim.Signal {
	return s.enqueue(&op{kind: opWait, label: "waitEvent", wait: ev.sig})
}

// WaitSignal blocks subsequent work on s until an arbitrary simulation
// signal fires (e.g. network data arrival before an unpack kernel).
func (s *Stream) WaitSignal(sig *sim.Signal) *sim.Signal {
	return s.enqueue(&op{kind: opWait, label: "waitSignal", wait: sig})
}

// Sync blocks the calling proc until all currently enqueued work on the
// stream completes, charging the host synchronization overhead. This is
// the cudaStreamSynchronize analogue used by the "before-optimization"
// Jacobi3D variant and the MPI variants.
func (s *Stream) Sync(p *sim.Proc) {
	p.Sleep(s.dev.cfg.SyncOverhead)
	if len(s.ops) == 0 {
		return
	}
	ev := s.RecordEvent()
	p.Wait(ev.sig)
}

// Drained returns a signal that fires when all currently enqueued work
// completes, without blocking (for event-driven callers).
func (s *Stream) Drained() *sim.Signal {
	if len(s.ops) == 0 {
		return sim.FiredSignal()
	}
	return s.RecordEvent().sig
}
