// Package sweepd implements the sweep-as-a-service HTTP layer: a
// shared content-addressed run store plus a streaming sweep registry,
// so many machines drain one run-list against one global memo table
// and observers watch results land cell by cell instead of polling
// for a finished report.
//
// Two halves, one handler:
//
//   - The store half exposes the on-disk cache (internal/sweep/store)
//     over GET/PUT /v1/entry/<key>. Entries are content-addressed, so
//     PUTs are idempotent and racing workers conflict-free; writes are
//     atomic and corrupt entries read as misses and are healed by the
//     next PUT — exactly the local store's semantics, now shared.
//   - The watch half is the list-watch idiom: workers POST per-run
//     completions (gat-sweep-v3 ReportRun records) into a named sweep,
//     and GET /v1/watch/<sweep-id> streams one JSON line per run —
//     first a replay of everything already registered (the "list"),
//     then live lines as cells complete (the "watch"), until the
//     client disconnects.
//
// Endpoints:
//
//	GET  /healthz                  liveness + entry count
//	GET  /v1/entry/{key}           one cache entry (404 = miss)
//	PUT  /v1/entry/{key}           file an entry (idempotent; 403 read-only)
//	POST /v1/sweep/{id}/run        register one completed run (v3 record)
//	POST /v1/sweep/{id}/report     register every run of a v3 report
//	GET  /v1/sweep/{id}            snapshot of registered runs (the list)
//	GET  /v1/watch/{id}            NDJSON stream: replay, then live runs
//
// Authentication is a single shared bearer token (WithToken / the
// daemon's -token flag): when set, every endpoint except GET /healthz
// requires "Authorization: Bearer <token>" and answers 401 otherwise.
// That is deliberately coarse — one credential for the whole fleet,
// no TLS, no tenant separation — enough to keep a sweepd on a lab
// network from accepting writes from strangers, not a substitute for
// network isolation. Run it where you would run a shared NFS cache
// mount. It is presentation/transport code, not simulation code — it
// lives outside the gatvet wallclock scope and may read the host
// clock freely (timeouts, log timestamps); determinism is owed by the
// entries that pass through it, which carry their own fingerprints.
package sweepd

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"gat/internal/sweep"
	"gat/internal/sweep/store"
)

// maxBodyBytes bounds every request body sweepd decodes. Entries and
// run records are a few hundred bytes; whole reports a few hundred KB.
const maxBodyBytes = 8 << 20

// Server is the sweepd HTTP handler: a store front end plus the sweep
// registry. Create with New, mount via http.Server or httptest.
type Server struct {
	st    *store.Store
	logf  func(format string, args ...any)
	token string

	mu     sync.Mutex
	sweeps map[string]*sweepState

	mux *http.ServeMux
}

// Option configures a Server beyond its required store and logger.
type Option func(*Server)

// WithToken requires "Authorization: Bearer <token>" on every endpoint
// except GET /healthz (so load-balancer liveness probes stay
// credential-free). An empty token keeps the server open, matching the
// pre-auth behaviour.
func WithToken(token string) Option { return func(s *Server) { s.token = token } }

// sweepState is one named sweep's registered run lines, append-only,
// with a cond watchers wait on. Lines are stored re-marshaled
// (compact, known-good JSON), so the watch stream never relays a
// client's raw bytes.
type sweepState struct {
	mu   sync.Mutex
	cond *sync.Cond
	runs [][]byte
}

func newSweepState() *sweepState {
	ss := &sweepState{}
	ss.cond = sync.NewCond(&ss.mu)
	return ss
}

// New builds a Server over an open store (read-write or read-only —
// in the latter case every PUT answers 403 and the service is a pure
// lookup + watch tier). logf receives one line per mutating or
// anomalous request; pass nil to discard.
func New(st *store.Store, logf func(format string, args ...any), opts ...Option) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		st:     st,
		logf:   logf,
		sweeps: map[string]*sweepState{},
		mux:    http.NewServeMux(),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/entry/{key}", s.handleEntryGet)
	s.mux.HandleFunc("PUT /v1/entry/{key}", s.handleEntryPut)
	s.mux.HandleFunc("POST /v1/sweep/{id}/run", s.handleRunPost)
	s.mux.HandleFunc("POST /v1/sweep/{id}/report", s.handleReportPost)
	s.mux.HandleFunc("GET /v1/sweep/{id}", s.handleSweepGet)
	s.mux.HandleFunc("GET /v1/watch/{id}", s.handleWatch)
	return s
}

// ServeHTTP checks the bearer token (when configured), then dispatches
// to the v1 routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !s.authorized(r) {
		// The WWW-Authenticate challenge names the scheme, never the
		// expected credential.
		w.Header().Set("WWW-Authenticate", `Bearer realm="sweepd"`)
		clientError(w, http.StatusUnauthorized, "this sweepd requires Authorization: Bearer <token>")
		return
	}
	s.mux.ServeHTTP(w, r)
}

// authorized implements the bearer check. /healthz stays open so
// probes and humans can tell "down" from "locked out"; it exposes only
// liveness and an entry count. The comparison is constant-time — the
// token is a shared secret, and an equality that bails on the first
// wrong byte leaks its prefix to a timing probe.
func (s *Server) authorized(r *http.Request) bool {
	if s.token == "" || r.URL.Path == "/healthz" {
		return true
	}
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if !ok {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(got), []byte(s.token)) == 1
}

// sweep returns (creating if needed) the named sweep's state. Watching
// a sweep nobody has published to yet is legal — that is the normal
// order for an observer attached before the workers start.
func (s *Server) sweep(id string) *sweepState {
	s.mu.Lock()
	defer s.mu.Unlock()
	ss, ok := s.sweeps[id]
	if !ok {
		ss = newSweepState()
		s.sweeps[id] = ss
	}
	return ss
}

// publish appends one validated, re-marshaled run line and wakes every
// watcher.
func (ss *sweepState) publish(line []byte) {
	ss.mu.Lock()
	ss.runs = append(ss.runs, line)
	ss.mu.Unlock()
	ss.cond.Broadcast()
}

// clientError answers a 4xx with a one-line plain-text reason — the
// "friendly 400" contract: a foreign payload gets told what the
// endpoint wanted, not handed a decoder trace.
func clientError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	n, err := s.st.Len()
	if err != nil {
		n = -1 // still alive; the count is advisory
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"ok\":true,\"entries\":%d,\"read_only\":%v}\n", n, s.st.ReadOnly())
}

func (s *Server) handleEntryGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		clientError(w, http.StatusBadRequest, "malformed key %q: want 32 lowercase hex characters (a run fingerprint)", key)
		return
	}
	e, ok, err := s.st.Get(key)
	if err != nil {
		// Corrupt-entry healing semantics, inherited: a rotten file is
		// a miss, logged server-side; the worker re-simulates and its
		// PUT replaces the slot.
		s.logf("entry %s: discarding corrupt entry: %v", key, err)
		clientError(w, http.StatusNotFound, "no entry for %s (corrupt slot discarded; a fresh PUT heals it)", key)
		return
	}
	if !ok {
		clientError(w, http.StatusNotFound, "no entry for %s", key)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&e)
}

func (s *Server) handleEntryPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		clientError(w, http.StatusBadRequest, "malformed key %q: want 32 lowercase hex characters (a run fingerprint)", key)
		return
	}
	var e store.Entry
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&e); err != nil {
		clientError(w, http.StatusBadRequest, "body is not a %s entry: %v", store.Schema, err)
		return
	}
	if e.Schema != store.Schema {
		clientError(w, http.StatusBadRequest, "entry schema %q not accepted: this server stores %s entries", e.Schema, store.Schema)
		return
	}
	if e.Key != key {
		clientError(w, http.StatusBadRequest, "entry claims key %s but was PUT under %s", e.Key, key)
		return
	}
	if err := s.st.Put(e); err != nil {
		if errors.Is(err, store.ErrReadOnly) {
			clientError(w, http.StatusForbidden, "this sweepd serves a read-only store; PUT is disabled")
			return
		}
		s.logf("entry %s: put failed: %v", key, err)
		http.Error(w, "storing entry failed", http.StatusInternalServerError)
		return
	}
	s.logf("entry %s: stored (%s/%s x=%d)", key, e.Figure, e.Series, e.X)
	w.WriteHeader(http.StatusNoContent)
}

// decodeRun validates one gat-sweep-v3 run record and returns its
// compact re-marshaling. The friendly-400 contract: the error names
// what a valid record looks like.
func decodeRun(body io.Reader) ([]byte, error) {
	var rec sweep.ReportRun
	if err := json.NewDecoder(io.LimitReader(body, maxBodyBytes)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("body is not a %s run record: %v", sweep.SchemaV3, err)
	}
	return marshalRun(rec)
}

func marshalRun(rec sweep.ReportRun) ([]byte, error) {
	if rec.Figure == "" || rec.Series == "" {
		return nil, fmt.Errorf("run record is missing figure/series coordinates: want the per-run object of a %s report", sweep.SchemaV3)
	}
	line, err := json.Marshal(&rec)
	if err != nil {
		return nil, fmt.Errorf("re-encoding run record: %v", err)
	}
	return line, nil
}

func (s *Server) handleRunPost(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	line, err := decodeRun(r.Body)
	if err != nil {
		clientError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.sweep(id).publish(line)
	s.logf("sweep %s: +1 run", id)
	w.WriteHeader(http.StatusAccepted)
}

func (s *Server) handleReportPost(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rep, err := sweep.ReadJSON(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		if errors.Is(err, sweep.ErrUnknownSchema) {
			// A well-formed document under a foreign tag: say which
			// schemas exist rather than dumping a decode error.
			clientError(w, http.StatusBadRequest, "%v", err)
			return
		}
		clientError(w, http.StatusBadRequest, "body is not a gat-sweep report: %v", err)
		return
	}
	if v, _ := sweep.SchemaVersion(rep.Schema); v < 3 {
		clientError(w, http.StatusBadRequest,
			"%s reports carry no per-run values; re-run the sweep with a current build and publish its %s report", rep.Schema, sweep.SchemaV3)
		return
	}
	ss := s.sweep(id)
	n := 0
	for _, f := range rep.Figures {
		for _, rec := range f.Runs {
			line, err := marshalRun(rec)
			if err != nil {
				clientError(w, http.StatusBadRequest, "run %d: %v", n, err)
				return
			}
			ss.publish(line)
			n++
		}
	}
	s.logf("sweep %s: +%d runs from a published report", id, n)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"published\":%d}\n", n)
}

func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	ss := s.sweep(r.PathValue("id"))
	ss.mu.Lock()
	lines := ss.runs[:len(ss.runs):len(ss.runs)] // append-only: the snapshot is immutable
	ss.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"sweep\":%q,\"runs\":[", r.PathValue("id"))
	for i, line := range lines {
		if i > 0 {
			w.Write([]byte(","))
		}
		w.Write(line)
	}
	fmt.Fprintf(w, "]}\n")
}

// handleWatch is the streaming half of the list-watch idiom: replay
// every run already registered, then block and relay new ones as they
// land, one compact JSON object per line, flushed per batch, until the
// client goes away. A watcher can attach before the sweep starts.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ss := s.sweep(id)
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	if canFlush {
		fl.Flush() // commit headers so the client sees the stream open
	}
	s.logf("sweep %s: watcher attached", id)

	ctx := r.Context()
	// A watcher parked in cond.Wait must wake when its client hangs
	// up, or the goroutine leaks until the next publish.
	stop := context.AfterFunc(ctx, ss.cond.Broadcast)
	defer stop()

	next := 0
	for {
		ss.mu.Lock()
		for next >= len(ss.runs) && ctx.Err() == nil {
			ss.cond.Wait()
		}
		batch := ss.runs[next:len(ss.runs):len(ss.runs)]
		next = len(ss.runs)
		ss.mu.Unlock()

		if ctx.Err() != nil {
			s.logf("sweep %s: watcher detached", id)
			return
		}
		for _, line := range batch {
			// Two writes, not append(line, '\n'): the stored line's
			// backing array is shared with every other watcher.
			if _, err := w.Write(line); err != nil {
				s.logf("sweep %s: watcher write failed: %v", id, err)
				return
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				s.logf("sweep %s: watcher write failed: %v", id, err)
				return
			}
		}
		if canFlush {
			fl.Flush()
		}
	}
}
