package sweepd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gat/internal/bench"
	"gat/internal/sweep"
	"gat/internal/sweep/cachetest"
	"gat/internal/sweep/store"
)

// newServer spins up a sweepd over a fresh temp-dir store.
func newServer(t *testing.T) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(st, t.Logf))
	t.Cleanup(ts.Close)
	return ts, st
}

func testEntry(t *testing.T) store.Entry {
	t.Helper()
	spec, key := cachetest.TestSpec(t)
	e, err := store.NewEntry(key, spec, bench.Point{Nodes: spec.X, Value: 2.25, Meta: "ODF-2"}, 777)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func doJSON(t *testing.T, method, url string, body []byte) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

func TestEntryPutGetRoundTrip(t *testing.T) {
	ts, _ := newServer(t)
	e := testEntry(t)
	body, _ := json.Marshal(&e)

	resp, msg := doJSON(t, http.MethodPut, ts.URL+"/v1/entry/"+e.Key, body)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d: %s", resp.StatusCode, msg)
	}
	// Idempotent: the identical PUT succeeds again.
	resp, msg = doJSON(t, http.MethodPut, ts.URL+"/v1/entry/"+e.Key, body)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("re-PUT = %d: %s", resp.StatusCode, msg)
	}

	resp, got := doJSON(t, http.MethodGet, ts.URL+"/v1/entry/"+e.Key, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET = %d: %s", resp.StatusCode, got)
	}
	var back store.Entry
	if err := json.Unmarshal([]byte(got), &back); err != nil {
		t.Fatal(err)
	}
	if back != e {
		t.Fatalf("entry did not round-trip:\n got %+v\nwant %+v", back, e)
	}
}

func TestEntryGetMissIs404(t *testing.T) {
	ts, _ := newServer(t)
	resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/entry/deadbeefdeadbeefdeadbeefdeadbeef", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET missing entry = %d, want 404", resp.StatusCode)
	}
}

func TestEntryRejectsBadKeysAndPayloads(t *testing.T) {
	ts, _ := newServer(t)
	e := testEntry(t)

	// Malformed keys 400 on both verbs; traversal shapes never reach
	// the filesystem.
	for _, key := range []string{"short", "DEADBEEFDEADBEEFDEADBEEFDEADBEEF", "..%2F..%2Fetc%2Fpasswd"} {
		resp, msg := doJSON(t, http.MethodGet, ts.URL+"/v1/entry/"+key, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %q = %d (%s), want 400", key, resp.StatusCode, msg)
		}
	}

	// Foreign schema: friendly 400 naming the accepted schema.
	bad := e
	bad.Schema = "gat-cache-v9"
	body, _ := json.Marshal(&bad)
	resp, msg := doJSON(t, http.MethodPut, ts.URL+"/v1/entry/"+e.Key, body)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(msg, store.Schema) {
		t.Fatalf("foreign-schema PUT = %d (%s), want friendly 400 naming %s", resp.StatusCode, msg, store.Schema)
	}

	// Key mismatch between URL and body.
	other := "0123456789abcdef0123456789abcdef"
	body, _ = json.Marshal(&e)
	resp, msg = doJSON(t, http.MethodPut, ts.URL+"/v1/entry/"+other, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched-key PUT = %d (%s), want 400", resp.StatusCode, msg)
	}

	// Not JSON at all.
	resp, msg = doJSON(t, http.MethodPut, ts.URL+"/v1/entry/"+e.Key, []byte("not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage PUT = %d (%s), want 400", resp.StatusCode, msg)
	}
}

// TestEntryCorruptSlotHeals: a rotten file serves as 404 (miss), and
// the next PUT replaces it — the disk store's healing semantics,
// surfaced over HTTP.
func TestEntryCorruptSlotHeals(t *testing.T) {
	ts, st := newServer(t)
	e := testEntry(t)
	path := st.Path(e.Key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("rot"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/entry/"+e.Key, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("corrupt entry GET = %d, want 404 miss", resp.StatusCode)
	}
	body, _ := json.Marshal(&e)
	if resp, msg := doJSON(t, http.MethodPut, ts.URL+"/v1/entry/"+e.Key, body); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("healing PUT = %d: %s", resp.StatusCode, msg)
	}
	resp, got := doJSON(t, http.MethodGet, ts.URL+"/v1/entry/"+e.Key, nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(got, e.Key) {
		t.Fatalf("healed GET = %d: %s", resp.StatusCode, got)
	}
}

func TestReadOnlyStorePutIs403(t *testing.T) {
	dir := t.TempDir()
	if _, err := store.Open(dir); err != nil { // create layout
		t.Fatal(err)
	}
	ro, err := store.OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(ro, t.Logf))
	defer ts.Close()

	e := testEntry(t)
	body, _ := json.Marshal(&e)
	resp, msg := doJSON(t, http.MethodPut, ts.URL+"/v1/entry/"+e.Key, body)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("read-only PUT = %d (%s), want 403", resp.StatusCode, msg)
	}
	if !strings.Contains(msg, "read-only") {
		t.Fatalf("403 body should say read-only, got: %s", msg)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newServer(t)
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"ok":true`) {
		t.Fatalf("healthz = %d: %s", resp.StatusCode, body)
	}
}

func runRecord(fig, series string, x int) sweep.ReportRun {
	return sweep.ReportRun{Figure: fig, Series: series, X: x, Nodes: x, Iters: 2, Value: float64(x) * 1.5, Source: "sim"}
}

func postRun(t *testing.T, url, id string, rec sweep.ReportRun) {
	t.Helper()
	body, _ := json.Marshal(&rec)
	resp, msg := doJSON(t, http.MethodPost, url+"/v1/sweep/"+id+"/run", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST run = %d: %s", resp.StatusCode, msg)
	}
}

func TestRunPostValidation(t *testing.T) {
	ts, _ := newServer(t)
	// Garbage body.
	resp, msg := doJSON(t, http.MethodPost, ts.URL+"/v1/sweep/s/run", []byte("nope"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage run POST = %d (%s), want 400", resp.StatusCode, msg)
	}
	// Well-formed JSON that isn't a run record.
	resp, msg = doJSON(t, http.MethodPost, ts.URL+"/v1/sweep/s/run", []byte(`{"hello":"world"}`))
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(msg, sweep.SchemaV3) {
		t.Fatalf("foreign run POST = %d (%s), want friendly 400 naming %s", resp.StatusCode, msg, sweep.SchemaV3)
	}
}

// TestWatchListThenStream is the list-watch contract: a late watcher
// replays everything already registered, then receives live lines.
func TestWatchListThenStream(t *testing.T) {
	ts, _ := newServer(t)
	const id = "nightly"

	// Two runs land before the watcher attaches (the "list" half).
	postRun(t, ts.URL, id, runRecord("fig6a", "Charm-D", 1))
	postRun(t, ts.URL, id, runRecord("fig6a", "Charm-D", 2))

	resp, err := http.Get(ts.URL + "/v1/watch/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("watch Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	readLine := func() sweep.ReportRun {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("watch stream ended early: %v", sc.Err())
		}
		var rec sweep.ReportRun
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("stream line is not a run record: %v (%s)", err, sc.Text())
		}
		return rec
	}

	if got := readLine(); got.X != 1 {
		t.Fatalf("replay line 1 = %+v, want x=1", got)
	}
	if got := readLine(); got.X != 2 {
		t.Fatalf("replay line 2 = %+v, want x=2", got)
	}

	// A third run lands while the watcher is parked (the "watch" half).
	postRun(t, ts.URL, id, runRecord("fig6a", "MPI-H", 4))
	if got := readLine(); got.X != 4 || got.Series != "MPI-H" {
		t.Fatalf("live line = %+v, want MPI-H x=4", got)
	}
}

// TestWatchBeforeAnyPublish: attaching to a sweep nobody has published
// to is legal and the watcher survives to see the first run.
func TestWatchBeforeAnyPublish(t *testing.T) {
	ts, _ := newServer(t)
	resp, err := http.Get(ts.URL + "/v1/watch/early")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	postRun(t, ts.URL, "early", runRecord("fig7b", "Charm-D", 8))
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("watcher attached before publish saw nothing: %v", sc.Err())
	}
	var rec sweep.ReportRun
	if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Figure != "fig7b" || rec.X != 8 {
		t.Fatalf("first line = %+v", rec)
	}
}

func TestSweepSnapshot(t *testing.T) {
	ts, _ := newServer(t)
	postRun(t, ts.URL, "snap", runRecord("fig6a", "Charm-D", 1))
	postRun(t, ts.URL, "snap", runRecord("fig6a", "Charm-D", 2))
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/sweep/snap", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot = %d: %s", resp.StatusCode, body)
	}
	var snap struct {
		Sweep string            `json:"sweep"`
		Runs  []sweep.ReportRun `json:"runs"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, body)
	}
	if snap.Sweep != "snap" || len(snap.Runs) != 2 {
		t.Fatalf("snapshot = %+v, want 2 runs under 'snap'", snap)
	}
}

// TestReportPost covers the bulk-publish path and its version gate:
// v3 reports register every run; v1/v2 and foreign schemas get the
// friendly 400 built on sweep.ErrUnknownSchema / SchemaVersion.
func TestReportPost(t *testing.T) {
	ts, _ := newServer(t)

	rep := sweep.Report{
		Schema: sweep.SchemaV3,
		Figures: []sweep.ReportFigure{{
			ID:   "fig6a",
			Runs: []sweep.ReportRun{runRecord("fig6a", "Charm-D", 1), runRecord("fig6a", "Charm-D", 2)},
		}},
	}
	body, _ := json.Marshal(&rep)
	resp, msg := doJSON(t, http.MethodPost, ts.URL+"/v1/sweep/bulk/report", body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(msg, `"published":2`) {
		t.Fatalf("v3 report POST = %d: %s", resp.StatusCode, msg)
	}
	resp, msg = doJSON(t, http.MethodGet, ts.URL+"/v1/sweep/bulk", nil)
	if resp.StatusCode != http.StatusOK || strings.Count(msg, `"figure"`) != 2 {
		t.Fatalf("after report POST, snapshot = %d: %s", resp.StatusCode, msg)
	}

	// v2: well-formed, accepted by ReadJSON, but carries no per-run
	// values — friendly 400, not a decode trace.
	rep.Schema = sweep.SchemaV2
	body, _ = json.Marshal(&rep)
	resp, msg = doJSON(t, http.MethodPost, ts.URL+"/v1/sweep/bulk/report", body)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(msg, sweep.SchemaV2) {
		t.Fatalf("v2 report POST = %d (%s), want friendly 400", resp.StatusCode, msg)
	}

	// Foreign schema tag: the ErrUnknownSchema branch.
	resp, msg = doJSON(t, http.MethodPost, ts.URL+"/v1/sweep/bulk/report", []byte(`{"schema":"gat-sweep-v9"}`))
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(msg, "unsupported sweep report schema") {
		t.Fatalf("foreign report POST = %d (%s), want unsupported-schema 400", resp.StatusCode, msg)
	}

	// Garbage: the decode-error branch.
	resp, msg = doJSON(t, http.MethodPost, ts.URL+"/v1/sweep/bulk/report", []byte("}{"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage report POST = %d (%s), want 400", resp.StatusCode, msg)
	}
}

// TestConcurrentPutsThroughServer: racing identical PUTs — two workers
// finishing the same fingerprint — must all succeed (content-addressed
// writes are conflict-free).
func TestConcurrentPutsThroughServer(t *testing.T) {
	ts, _ := newServer(t)
	e := testEntry(t)
	const writers = 8
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			dup := e
			dup.WallNS = int64(100 + w)
			body, _ := json.Marshal(&dup)
			req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/entry/"+e.Key, bytes.NewReader(body))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				errs <- fmt.Errorf("racing PUT %d: status %d", w, resp.StatusCode)
				return
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/entry/"+e.Key, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after racing PUTs: GET = %d: %s", resp.StatusCode, body)
	}
}

// TestTokenAuth covers the bearer-token gate: without the right
// credential every endpoint but /healthz answers 401 with a Bearer
// challenge; with it the server behaves exactly like an open one.
func TestTokenAuth(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(st, t.Logf, WithToken("hunter2")))
	t.Cleanup(ts.Close)
	e := testEntry(t)
	body, _ := json.Marshal(&e)

	authed := func(method, url string, body []byte, token string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(method, url, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(data)
	}

	// Missing and wrong tokens are rejected with a challenge.
	for _, token := range []string{"", "hunter3"} {
		resp, _ := authed(http.MethodPut, ts.URL+"/v1/entry/"+e.Key, body, token)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("PUT with token %q = %d, want 401", token, resp.StatusCode)
		}
		if got := resp.Header.Get("WWW-Authenticate"); !strings.HasPrefix(got, "Bearer") {
			t.Fatalf("401 WWW-Authenticate = %q, want a Bearer challenge", got)
		}
	}
	// A rejected PUT must not have touched the store.
	if _, ok, _ := st.Get(e.Key); ok {
		t.Fatal("unauthorized PUT reached the store")
	}

	// The right token passes and the entry round-trips.
	if resp, msg := authed(http.MethodPut, ts.URL+"/v1/entry/"+e.Key, body, "hunter2"); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("authorized PUT = %d: %s", resp.StatusCode, msg)
	}
	if resp, msg := authed(http.MethodGet, ts.URL+"/v1/entry/"+e.Key, nil, "hunter2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized GET = %d: %s", resp.StatusCode, msg)
	}

	// /healthz stays open for probes.
	if resp, msg := authed(http.MethodGet, ts.URL+"/healthz", nil, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("unauthenticated healthz = %d: %s", resp.StatusCode, msg)
	}
}
