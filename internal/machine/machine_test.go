package machine

import (
	"testing"

	"gat/internal/sim"
)

func TestSummitShape(t *testing.T) {
	m := MustNew(Summit(4))
	if m.Procs() != 24 {
		t.Fatalf("procs = %d, want 24", m.Procs())
	}
	if m.NodeOf(0) != 0 || m.NodeOf(5) != 0 || m.NodeOf(6) != 1 || m.NodeOf(23) != 3 {
		t.Fatal("NodeOf mapping wrong")
	}
	if !m.SameNode(0, 5) || m.SameNode(5, 6) {
		t.Fatal("SameNode wrong")
	}
	if m.GPUOf(7) == nil || m.GPUOf(7).Name() != "node1/gpu1" {
		t.Fatalf("GPUOf(7) = %v", m.GPUOf(7))
	}
}

func TestMachineFreshEngine(t *testing.T) {
	a, b := MustNew(Summit(1)), MustNew(Summit(1))
	if a.Eng == b.Eng {
		t.Fatal("machines must not share engines")
	}
	if a.Eng.Now() != 0 {
		t.Fatal("fresh machine should start at time zero")
	}
}

func TestMachineDevicesUsable(t *testing.T) {
	m := MustNew(Summit(1))
	s := m.GPUOf(0).NewStream("s", 1)
	var fired bool
	s.Kernel("k", 100*sim.Microsecond).OnFire(m.Eng, func() { fired = true })
	m.Eng.Run()
	if !fired {
		t.Fatal("kernel on machine GPU did not complete")
	}
}

func TestBadConfigErrors(t *testing.T) {
	if _, err := New(Config{Nodes: 0, GPUsPerNode: 6}); err == nil {
		t.Error("zero-node machine should return an error")
	}
	bad := Summit(2)
	bad.GPUsPerNode = 0
	if _, err := New(bad); err == nil {
		t.Error("zero-GPU machine should return an error")
	}
	if err := Summit(4).Validate(); err != nil {
		t.Errorf("Summit(4) should validate, got %v", err)
	}
}

func TestMustNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew on a bad config did not panic")
		}
	}()
	MustNew(Config{Nodes: -1})
}
