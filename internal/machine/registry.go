package machine

import (
	"fmt"
	"sort"
	"strings"

	"gat/internal/gpu"
	"gat/internal/netsim"
)

// Profile is a named cluster configuration selectable by experiments:
// the machine dimension of a scenario. Build returns the Config for a
// given node count; every registered profile's output must pass
// Config.Validate for any positive node count.
type Profile struct {
	// Name is the registry key (lower-case, stable across releases).
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Calibrated marks profiles validated against the real machine
	// (only Summit today); the rest are illustrative datasheet models.
	Calibrated bool
	// Version is the cache-identity version of the profile's cost
	// model: bump it whenever Build's output changes simulated results
	// (GPU datasheet numbers, network parameters, topology), so
	// content-addressed run caches keyed on Identity are invalidated.
	Version int
	// Build returns the configuration at the given node count.
	Build func(nodes int) Config
}

// Identity returns the profile's stable identity string, "name@vN" —
// the machine component of a run fingerprint.
func (p Profile) Identity() string {
	return fmt.Sprintf("%s@v%d", p.Name, p.Version)
}

var profiles []Profile

// RegisterProfile adds a profile to the registry. Duplicate names are a
// programming error and panic at init time.
func RegisterProfile(p Profile) {
	if p.Name == "" || p.Build == nil {
		panic("machine: profile needs a name and a build function")
	}
	for _, q := range profiles {
		if q.Name == p.Name {
			panic(fmt.Sprintf("machine: duplicate profile %q", p.Name))
		}
	}
	profiles = append(profiles, p)
}

// Profiles returns the registered profiles in registration order
// (built-ins first).
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// ProfileByName resolves a profile, with an error naming the known
// profiles on a miss.
func ProfileByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	sort.Strings(names)
	return Profile{}, fmt.Errorf("machine: unknown profile %q (have: %s)",
		name, strings.Join(names, ", "))
}

// BuildProfile resolves name and builds its Config at the given node
// count, validating the result.
func BuildProfile(name string, nodes int) (Config, error) {
	p, err := ProfileByName(name)
	if err != nil {
		return Config{}, err
	}
	cfg := p.Build(nodes)
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("machine: profile %q at %d nodes: %w", name, nodes, err)
	}
	return cfg, nil
}

func init() {
	RegisterProfile(Profile{
		Name:        "summit",
		Description: "Summit: 6x V100 per node, dual-rail EDR fat tree (paper-calibrated)",
		Calibrated:  true,
		Version:     1,
		Build:       Summit,
	})
	RegisterProfile(Profile{
		Name:        "perlmutter",
		Description: "Perlmutter-like: 4x A100 per node, Slingshot-11 (illustrative)",
		Version:     1,
		Build:       Perlmutter,
	})
	RegisterProfile(Profile{
		Name:        "frontier",
		Description: "Frontier-like: 8x MI250X GCD per node, Slingshot-11 (illustrative)",
		Version:     1,
		Build:       Frontier,
	})
	// Fabric-backed variants: the same cost models with the detailed
	// contention fabric attached. Each is its own profile (not a
	// mutation of the base), so its "name@vN" identity versions its
	// fabric parameters independently: bumping a tapered profile's
	// Version invalidates cached runs for that profile only, never for
	// the untouched base machines.
	RegisterProfile(Profile{
		Name:        "summit-tapered-2x",
		Description: "Summit with a 2:1 tapered fat tree (3 uplinks/pod; contention study)",
		Version:     1,
		Build:       taperedFatTree(Summit, 2),
	})
	RegisterProfile(Profile{
		Name:        "summit-tapered-4x",
		Description: "Summit with a 4:1 tapered fat tree (3 uplinks/pod; contention study)",
		Version:     1,
		Build:       taperedFatTree(Summit, 4),
	})
	RegisterProfile(Profile{
		Name:        "perlmutter-dragonfly",
		Description: "Perlmutter-like on an explicit dragonfly (2:1 global taper, illustrative)",
		Version:     1,
		Build:       dragonflyVariant(Perlmutter, 2),
	})
	RegisterProfile(Profile{
		Name:        "frontier-dragonfly",
		Description: "Frontier-like on an explicit dragonfly (2:1 global taper, illustrative)",
		Version:     1,
		Build:       dragonflyVariant(Frontier, 2),
	})
	// Routing/topology-zoo variants: route choice is part of the cost
	// model, so each routed profile carries its own Version — retuning
	// the adaptive policy (candidate count, penalty half-life) means
	// bumping that profile's Version, invalidating only its cached runs.
	RegisterProfile(Profile{
		Name:        "perlmutter-dragonfly-adaptive",
		Description: "perlmutter-dragonfly with adaptive (occupancy+penalty) routing",
		Version:     1,
		Build:       withRouting(dragonflyVariant(Perlmutter, 2), netsim.RoutingAdaptive),
	})
	RegisterProfile(Profile{
		Name:        "frontier-slimfly",
		Description: "Frontier-like on a diameter-2 slim-fly group graph (2:1 taper, illustrative)",
		Version:     1,
		Build:       topologyVariant(Frontier, netsim.TopoSlimFly, 2, 2),
	})
	RegisterProfile(Profile{
		Name:        "summit-torus",
		Description: "Summit cost model on a 3-D torus of cabinets (dimension-order routes)",
		Version:     1,
		Build:       topologyVariant(Summit, netsim.TopoTorus, 2, 3),
	})
}

// taperedFatTree wraps a base profile builder with a detailed fat-tree
// fabric tapered by the given ratio (uplink bandwidth derived from the
// pod's aggregate injection bandwidth / taper, over 3 parallel links).
func taperedFatTree(base func(int) Config, taper float64) func(int) Config {
	return func(nodes int) Config {
		cfg := base(nodes)
		cfg.Fabric = &netsim.FabricConfig{Taper: taper, UplinksPerPod: 3}
		return cfg
	}
}

// dragonflyVariant wraps a base profile builder with a dragonfly
// topology and explicit global links tapered by the given ratio, the
// Slingshot-class geometry the base Slingshot cost model approximates
// with hop counts alone.
func dragonflyVariant(base func(int) Config, taper float64) func(int) Config {
	return func(nodes int) Config {
		cfg := base(nodes)
		cfg.Net.Topology = netsim.TopoDragonfly
		cfg.Fabric = &netsim.FabricConfig{Taper: taper, UplinksPerPod: 2}
		return cfg
	}
}

// topologyVariant wraps a base profile builder with an alternative
// switch geometry and a detailed fabric tapered by the given ratio.
func topologyVariant(base func(int) Config, topo string, taper float64, uplinks int) func(int) Config {
	return func(nodes int) Config {
		cfg := base(nodes)
		cfg.Net.Topology = topo
		cfg.Fabric = &netsim.FabricConfig{Taper: taper, UplinksPerPod: uplinks}
		return cfg
	}
}

// withRouting overrides the routing policy of a fabric-backed builder.
func withRouting(build func(int) Config, routing string) func(int) Config {
	return func(nodes int) Config {
		cfg := build(nodes)
		cfg.Fabric.Routing = routing
		return cfg
	}
}

// Perlmutter returns an illustrative Perlmutter-like GPU-node
// configuration: 4 A100s per node, four Slingshot-11 NICs (~100 GB/s
// aggregate injection), NVLink3 peers. Datasheet numbers, not
// paper-calibrated.
func Perlmutter(nodes int) Config {
	return Config{
		Nodes:       nodes,
		GPUsPerNode: 4,
		GPU:         gpu.A100(),
		Net:         netsim.Slingshot(100e9, 75e9),
		HostMemBW:   200e9,
	}
}

// Frontier returns an illustrative Frontier-like configuration: 8
// MI250X GCDs per node (one rank per GCD), four Slingshot-11 NICs,
// Infinity Fabric peers. Datasheet numbers, not paper-calibrated.
func Frontier(nodes int) Config {
	return Config{
		Nodes:       nodes,
		GPUsPerNode: 8,
		GPU:         gpu.MI250X(),
		Net:         netsim.Slingshot(100e9, 50e9),
		HostMemBW:   205e9,
	}
}
