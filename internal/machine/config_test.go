package machine

import (
	"testing"

	"gat/internal/gpu"
	"gat/internal/netsim"
	"gat/internal/sim"
)

func TestCustomClusterConfig(t *testing.T) {
	cfg := Config{
		Nodes:       3,
		GPUsPerNode: 4,
		GPU:         gpu.V100(),
		Net:         netsim.Summit(),
		HostMemBW:   100e9,
	}
	m := MustNew(cfg)
	if m.Procs() != 12 {
		t.Fatalf("procs = %d, want 12", m.Procs())
	}
	if m.NodeOf(11) != 2 {
		t.Fatalf("NodeOf(11) = %d, want 2", m.NodeOf(11))
	}
	if m.Net.Nodes() != 3 {
		t.Fatalf("network nodes = %d", m.Net.Nodes())
	}
}

func TestSummitCalibrationValues(t *testing.T) {
	cfg := Summit(1)
	if cfg.GPUsPerNode != 6 {
		t.Fatalf("Summit has 6 GPUs per node, got %d", cfg.GPUsPerNode)
	}
	if cfg.GPU.MemBandwidth != 780e9 {
		t.Fatalf("V100 bandwidth = %v", cfg.GPU.MemBandwidth)
	}
	if cfg.Net.InjectionBW != 23e9 {
		t.Fatalf("injection = %v", cfg.Net.InjectionBW)
	}
}

func TestMachineSharedNetworkAndClock(t *testing.T) {
	m := MustNew(Summit(2))
	// A transfer on the machine's network and a kernel on one of its
	// GPUs must advance the same clock.
	var xferAt, kernAt sim.Time
	m.Net.Transfer(0, 1, 1000, sim.FiredSignal()).OnFire(m.Eng, func() { xferAt = m.Eng.Now() })
	m.GPUOf(3).NewStream("s", gpu.PriorityNormal).Kernel("k", 777).OnFire(m.Eng, func() { kernAt = m.Eng.Now() })
	m.Eng.Run()
	if xferAt == 0 || kernAt == 0 {
		t.Fatal("shared-engine events did not run")
	}
}
