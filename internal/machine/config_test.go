package machine

import (
	"testing"

	"gat/internal/gpu"
	"gat/internal/netsim"
	"gat/internal/sim"
)

func TestCustomClusterConfig(t *testing.T) {
	cfg := Config{
		Nodes:       3,
		GPUsPerNode: 4,
		GPU:         gpu.V100(),
		Net:         netsim.Summit(),
		HostMemBW:   100e9,
	}
	m := MustNew(cfg)
	if m.Procs() != 12 {
		t.Fatalf("procs = %d, want 12", m.Procs())
	}
	if m.NodeOf(11) != 2 {
		t.Fatalf("NodeOf(11) = %d, want 2", m.NodeOf(11))
	}
	if m.Net.Nodes() != 3 {
		t.Fatalf("network nodes = %d", m.Net.Nodes())
	}
}

func TestSummitCalibrationValues(t *testing.T) {
	cfg := Summit(1)
	if cfg.GPUsPerNode != 6 {
		t.Fatalf("Summit has 6 GPUs per node, got %d", cfg.GPUsPerNode)
	}
	if cfg.GPU.MemBandwidth != 780e9 {
		t.Fatalf("V100 bandwidth = %v", cfg.GPU.MemBandwidth)
	}
	if cfg.Net.InjectionBW != 23e9 {
		t.Fatalf("injection = %v", cfg.Net.InjectionBW)
	}
}

func TestValidateFabricSection(t *testing.T) {
	base := Summit(2)
	ok := base
	ok.Fabric = &netsim.FabricConfig{Taper: 2, UplinksPerPod: 3}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid fabric config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no bandwidth or taper", func(c *Config) { c.Fabric = &netsim.FabricConfig{} }},
		{"negative uplink BW", func(c *Config) { c.Fabric = &netsim.FabricConfig{UplinkBW: -1} }},
		{"negative taper", func(c *Config) { c.Fabric = &netsim.FabricConfig{Taper: -2} }},
		{"negative links", func(c *Config) { c.Fabric = &netsim.FabricConfig{Taper: 2, UplinksPerPod: -1} }},
		{"negative overhead", func(c *Config) { c.Fabric = &netsim.FabricConfig{Taper: 2, LinkOverhead: -5} }},
		{"unknown topology", func(c *Config) { c.Net.Topology = "hypercube" }},
		{"unknown routing", func(c *Config) { c.Fabric = &netsim.FabricConfig{Taper: 2, Routing: "teleport"} }},
	}
	for _, c := range cases {
		cfg := base
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an impossible fabric config", c.name)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted an impossible fabric config", c.name)
		}
	}
}

func TestNewAttachesFabric(t *testing.T) {
	cfg := Summit(40) // 40 nodes: more than two 18-node pods
	cfg.Fabric = &netsim.FabricConfig{Taper: 4, UplinksPerPod: 3}
	m := MustNew(cfg)
	if m.Net.Fabric() == nil {
		t.Fatal("machine.New did not attach the configured fabric")
	}
	// Cross-pod traffic must register on the shared links.
	m.Net.Transfer(0, 20, 1<<20, sim.FiredSignal())
	m.Eng.Run()
	if max, mean := m.Net.LinkUtilization(); max <= 0 || mean <= 0 {
		t.Fatalf("fabric saw no utilization: max=%g mean=%g", max, mean)
	}
	if MustNew(Summit(2)).Net.Fabric() != nil {
		t.Fatal("NIC-only profile grew a fabric")
	}
}

func TestTopologySummary(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Summit(2), "fattree"},
		{taperedFatTree(Summit, 2)(2), "fattree 2:1"},
		{taperedFatTree(Summit, 4)(2), "fattree 4:1"},
		{dragonflyVariant(Perlmutter, 2)(2), "dragonfly 2:1"},
	}
	for _, c := range cases {
		if got := c.cfg.TopologySummary(); got != c.want {
			t.Errorf("TopologySummary = %q, want %q", got, c.want)
		}
	}
}

func TestMachineSharedNetworkAndClock(t *testing.T) {
	m := MustNew(Summit(2))
	// A transfer on the machine's network and a kernel on one of its
	// GPUs must advance the same clock.
	var xferAt, kernAt sim.Time
	m.Net.Transfer(0, 1, 1000, sim.FiredSignal()).OnFire(m.Eng, func() { xferAt = m.Eng.Now() })
	m.GPUOf(3).NewStream("s", gpu.PriorityNormal).Kernel("k", 777).OnFire(m.Eng, func() { kernAt = m.Eng.Now() })
	m.Eng.Run()
	if xferAt == 0 || kernAt == 0 {
		t.Fatal("shared-engine events did not run")
	}
}
