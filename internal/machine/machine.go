// Package machine assembles simulated clusters: nodes with host cores
// (PEs), GPUs, and NICs wired to one discrete-event engine. The Summit
// configuration is the calibrated default used by every experiment.
package machine

import (
	"fmt"

	"gat/internal/gpu"
	"gat/internal/netsim"
	"gat/internal/sim"
)

// Config describes a homogeneous cluster.
type Config struct {
	// Nodes is the number of compute nodes.
	Nodes int
	// GPUsPerNode is the number of GPUs (and, in the paper's setup, the
	// number of application processes/PEs) per node.
	GPUsPerNode int
	// GPU is the device cost model.
	GPU gpu.Config
	// Net is the interconnect cost model.
	Net netsim.Config
	// Fabric, when non-nil, attaches netsim's detailed contention
	// fabric: shared per-group uplinks/downlinks (sized by UplinkBW or
	// the Taper ratio) that cross-group transfers reserve in addition
	// to the endpoint NICs. Nil keeps the NIC-only model every
	// pre-fabric profile uses, so existing results are unaffected.
	Fabric *netsim.FabricConfig
	// HostMemBW is host memory bandwidth per node in bytes/s, used for
	// intra-node host-message copies.
	HostMemBW float64
}

// Summit returns the calibrated Summit configuration with the given node
// count: 6 V100s per node, dual-rail EDR InfiniBand.
func Summit(nodes int) Config {
	return Config{
		Nodes:       nodes,
		GPUsPerNode: 6,
		GPU:         gpu.V100(),
		Net:         netsim.Summit(),
		HostMemBW:   120e9,
	}
}

// Validate reports whether the configuration describes a buildable
// cluster, with an error naming the offending field otherwise.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("machine: Nodes must be positive, got %d", c.Nodes)
	case c.GPUsPerNode <= 0:
		return fmt.Errorf("machine: GPUsPerNode must be positive, got %d", c.GPUsPerNode)
	case c.GPU.MemBandwidth <= 0:
		return fmt.Errorf("machine: GPU.MemBandwidth must be positive, got %g", c.GPU.MemBandwidth)
	case c.GPU.CopyBandwidth <= 0:
		return fmt.Errorf("machine: GPU.CopyBandwidth must be positive, got %g", c.GPU.CopyBandwidth)
	case c.Net.InjectionBW <= 0:
		return fmt.Errorf("machine: Net.InjectionBW must be positive, got %g", c.Net.InjectionBW)
	case c.Net.IntraNodeBW <= 0:
		return fmt.Errorf("machine: Net.IntraNodeBW must be positive, got %g", c.Net.IntraNodeBW)
	case c.HostMemBW <= 0:
		return fmt.Errorf("machine: HostMemBW must be positive, got %g", c.HostMemBW)
	case c.Net.JitterFrac < 0 || c.Net.JitterFrac >= 1:
		return fmt.Errorf("machine: Net.JitterFrac must be in [0,1), got %g", c.Net.JitterFrac)
	}
	podSize := c.Net.PodSize
	if podSize <= 0 {
		podSize = 1 // netsim.New defaults it; only the name matters here
	}
	if _, err := netsim.TopologyByName(c.Net.Topology, podSize, c.Nodes); err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	if f := c.Fabric; f != nil {
		if err := netsim.ValidRouting(f.Routing); err != nil {
			return fmt.Errorf("machine: %w", err)
		}
		switch {
		case f.UplinkBW < 0:
			return fmt.Errorf("machine: Fabric.UplinkBW must not be negative, got %g", f.UplinkBW)
		case f.Taper < 0:
			return fmt.Errorf("machine: Fabric.Taper must not be negative, got %g", f.Taper)
		case f.UplinkBW == 0 && f.Taper == 0:
			return fmt.Errorf("machine: Fabric needs UplinkBW or a Taper ratio")
		case f.UplinksPerPod < 0:
			return fmt.Errorf("machine: Fabric.UplinksPerPod must not be negative, got %d", f.UplinksPerPod)
		case f.LinkOverhead < 0:
			return fmt.Errorf("machine: Fabric.LinkOverhead must not be negative, got %v", f.LinkOverhead)
		}
	}
	return nil
}

// TopologySummary names the configured switch geometry with its taper,
// e.g. "fattree", "fattree 4:1", "dragonfly 2:1" — the topology column
// of profile listings.
func (c Config) TopologySummary() string {
	name := c.Net.Topology
	if name == "" {
		name = netsim.TopoFatTree
	}
	if c.Fabric == nil {
		return name
	}
	if c.Fabric.Taper > 0 {
		return fmt.Sprintf("%s %g:1", name, c.Fabric.Taper)
	}
	return name + " fabric"
}

// RoutingSummary names the configured routing policy, e.g. "minimal"
// or "adaptive" — the routing column of profile listings. Without a
// detailed fabric there is no route choice to make, so it reports "-".
func (c Config) RoutingSummary() string {
	if c.Fabric == nil {
		return "-"
	}
	if c.Fabric.Routing == "" {
		return netsim.RoutingMinimal
	}
	return c.Fabric.Routing
}

// Machine is an instantiated cluster on a fresh simulation engine.
type Machine struct {
	Eng  *sim.Engine
	Cfg  Config
	Net  *netsim.Network
	GPUs []*gpu.Device // indexed by global PE/rank id
}

// New instantiates the cluster described by cfg, or returns the
// Validate error for an impossible configuration.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := sim.NewEngine()
	m := &Machine{
		Eng: e,
		Cfg: cfg,
		Net: netsim.New(e, cfg.Net, cfg.Nodes),
	}
	if cfg.Fabric != nil {
		// Before any traffic by construction: the network was created on
		// the line above.
		m.Net.EnableFabric(*cfg.Fabric)
	}
	total := cfg.Nodes * cfg.GPUsPerNode
	for i := 0; i < total; i++ {
		m.GPUs = append(m.GPUs, gpu.New(e, fmt.Sprintf("node%d/gpu%d", i/cfg.GPUsPerNode, i%cfg.GPUsPerNode), cfg.GPU))
	}
	return m, nil
}

// MustNew is New for configurations known valid by construction (tests,
// registered profiles); it panics on a Validate error.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// ResetTransients frees every arena-allocated transient record on the
// machine — engine signals and pipe ops, GPU stream ops, network
// protocol records — keeping the chunk memory warm for the next run.
// Call it only at a run boundary: the engine idle, all streams drained,
// and no signal or record handle from the finished run used afterwards.
// Durable state (clock, traffic counters, pipe busy accounting, stream
// pools) is preserved, so a machine can host a sequence of runs — a
// benchmark batch, a parameter sweep reusing one cluster — with zero
// steady-state record allocation.
func (m *Machine) ResetTransients() {
	m.Eng.ResetArenas()
	for _, d := range m.GPUs {
		d.ResetOps()
	}
	m.Net.ResetOps()
}

// Procs returns the total number of PEs/ranks (one per GPU, matching the
// paper's one-process-one-GPU mapping).
func (m *Machine) Procs() int { return m.Cfg.Nodes * m.Cfg.GPUsPerNode }

// NodeOf returns the node housing global PE/rank id p.
func (m *Machine) NodeOf(p int) int { return p / m.Cfg.GPUsPerNode }

// GPUOf returns the device bound to global PE/rank id p.
func (m *Machine) GPUOf(p int) *gpu.Device { return m.GPUs[p] }

// SameNode reports whether two PEs share a node.
func (m *Machine) SameNode(a, b int) bool { return m.NodeOf(a) == m.NodeOf(b) }
