package machine

import (
	"fmt"
	"strings"
	"testing"

	"gat/internal/netsim"
)

func TestBuiltinProfilesBuildAndValidate(t *testing.T) {
	ps := Profiles()
	if len(ps) < 3 {
		t.Fatalf("want >= 3 built-in profiles, got %d", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		for _, nodes := range []int{1, 2, 16} {
			cfg, err := BuildProfile(p.Name, nodes)
			if err != nil {
				t.Fatalf("%s at %d nodes: %v", p.Name, nodes, err)
			}
			m, err := New(cfg)
			if err != nil {
				t.Fatalf("%s at %d nodes: %v", p.Name, nodes, err)
			}
			if m.Procs() != nodes*cfg.GPUsPerNode {
				t.Fatalf("%s: procs = %d", p.Name, m.Procs())
			}
		}
	}
	for _, want := range []string{
		"summit", "perlmutter", "frontier",
		"summit-tapered-2x", "summit-tapered-4x",
		"perlmutter-dragonfly", "frontier-dragonfly",
	} {
		if !seen[want] {
			t.Fatalf("missing built-in profile %q", want)
		}
	}
}

// TestFabricProfiles pins the fabric-backed variants: tapered profiles
// attach a tapered fat tree, dragonfly profiles switch topology, and
// the base profiles they wrap stay NIC-only and untouched — their
// cached results must survive this PR.
func TestFabricProfiles(t *testing.T) {
	cases := []struct {
		name, topo string
		taper      float64
	}{
		{"summit-tapered-2x", "fattree", 2},
		{"summit-tapered-4x", "fattree", 4},
		{"perlmutter-dragonfly", netsim.TopoDragonfly, 2},
		{"frontier-dragonfly", netsim.TopoDragonfly, 2},
	}
	for _, c := range cases {
		cfg, err := BuildProfile(c.name, 4)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if cfg.Fabric == nil || cfg.Fabric.Taper != c.taper {
			t.Errorf("%s: fabric = %+v, want taper %g", c.name, cfg.Fabric, c.taper)
		}
		wantTopo := c.topo
		gotTopo := cfg.Net.Topology
		if gotTopo == "" {
			gotTopo = "fattree"
		}
		if gotTopo != wantTopo {
			t.Errorf("%s: topology = %q, want %q", c.name, gotTopo, wantTopo)
		}
	}
	for _, base := range []string{"summit", "perlmutter", "frontier"} {
		cfg, err := BuildProfile(base, 4)
		if err != nil {
			t.Fatalf("%s: %v", base, err)
		}
		if cfg.Fabric != nil || cfg.Net.Topology != "" {
			t.Errorf("base profile %s grew fabric/topology settings; that would invalidate its cached runs", base)
		}
	}
}

func TestOnlySummitIsCalibrated(t *testing.T) {
	for _, p := range Profiles() {
		if got, want := p.Calibrated, p.Name == "summit"; got != want {
			t.Errorf("%s: Calibrated = %v, want %v", p.Name, got, want)
		}
	}
}

func TestProfileByNameUnknown(t *testing.T) {
	_, err := ProfileByName("nope")
	if err == nil || !strings.Contains(err.Error(), "have:") {
		t.Fatalf("unknown profile error should list known profiles, got %v", err)
	}
	if _, err := BuildProfile("nope", 4); err == nil {
		t.Fatal("BuildProfile of unknown profile should error")
	}
}

func TestProfilesDiffer(t *testing.T) {
	// The machine dimension must be consequential: the profiles model
	// different hardware, so a timed transfer or kernel differs.
	s, _ := BuildProfile("summit", 1)
	f, _ := BuildProfile("frontier", 1)
	if s.GPUsPerNode == f.GPUsPerNode && s.GPU.MemBandwidth == f.GPU.MemBandwidth {
		t.Fatal("summit and frontier profiles are indistinguishable")
	}
	p, _ := BuildProfile("perlmutter", 1)
	if p.Net.InjectionBW == s.Net.InjectionBW {
		t.Fatal("perlmutter should not share Summit's injection bandwidth")
	}
}

// TestProfileIdentity pins the versioned identity strings that enter
// run fingerprints: every registered profile must have a stable,
// distinct "name@vN" identity, and bumping Version must change it.
func TestProfileIdentity(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Profiles() {
		id := p.Identity()
		want := fmt.Sprintf("%s@v%d", p.Name, p.Version)
		if id != want {
			t.Errorf("profile %s identity = %q, want %q", p.Name, id, want)
		}
		if seen[id] {
			t.Errorf("duplicate profile identity %q", id)
		}
		seen[id] = true
	}
	s, err := ProfileByName("summit")
	if err != nil {
		t.Fatal(err)
	}
	if s.Identity() != "summit@v1" {
		t.Errorf("summit identity = %q, want summit@v1 (bumping it invalidates all cached Summit runs)", s.Identity())
	}
	bumped := s
	bumped.Version++
	if bumped.Identity() == s.Identity() {
		t.Error("version bump did not change the profile identity")
	}
}
