package pdes

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"gat/internal/sim"
)

// This file is the lane_test.go order-equivalence pattern generalized
// to partitions: a randomized workload mixing zero-delay self-traffic,
// timed self-traffic and cross-LP (hence potentially cross-shard)
// traffic is run serial and at several shard counts, and the per-LP
// delivery sequences must match exactly. Each LP owns a private seeded
// RNG — handler invocation order per LP is the thing under test, so
// the RNG stream an LP consumes is identical across partitions iff
// delivery order is.

const (
	randLPs       = 12
	randLookahead = 64 * sim.Nanosecond
	randKinds     = 3
)

// randLP is one LP's private state: its RNG and its delivery log.
type randLP struct {
	rng *rand.Rand
	log []string
}

// runRandom executes the randomized workload on k shards and returns
// the per-LP delivery logs plus run stats. The handler's behavior is a
// function of LP state and message only — never of the partition — so
// any divergence between shard counts is a delivery-order bug.
func runRandom(seed int64, k int) ([]string, Stats) {
	lps := make([]randLP, randLPs)
	for i := range lps {
		lps[i].rng = rand.New(rand.NewSource(seed + int64(i)))
	}
	r := MustNew(Config{
		LPs: randLPs, Shards: k, Lookahead: randLookahead,
		Handler: func(ctx *Ctx, m Message) {
			lp := &lps[ctx.LP()]
			lp.log = append(lp.log, fmt.Sprintf("t=%d src=%d seq=%d kind=%d data=%d",
				ctx.Now(), m.Src, m.Seq, m.Kind, m.Data))
			if m.Data <= 0 {
				return
			}
			// Fan out a random mixture; Data is the remaining hop budget,
			// split so total traffic stays bounded.
			n := 1 + lp.rng.Intn(2)
			for i := 0; i < n; i++ {
				budget := int64(lp.rng.Intn(int(m.Data))) // < m.Data: strictly decreasing
				switch lp.rng.Intn(3) {
				case 0: // zero-delay self-message (the engine's lane path)
					ctx.Send(ctx.LP(), 0, int32(lp.rng.Intn(randKinds)), budget)
				case 1: // timed self-message below the lookahead
					ctx.Send(ctx.LP(), sim.Time(1+lp.rng.Intn(int(randLookahead))), int32(lp.rng.Intn(randKinds)), budget)
				default: // cross-LP: delay >= lookahead, so it is legal
					// under every partition tested
					dst := lp.rng.Intn(randLPs)
					ctx.Send(dst, randLookahead+sim.Time(lp.rng.Intn(200)), int32(lp.rng.Intn(randKinds)), budget)
				}
			}
		},
	})
	for lp := 0; lp < randLPs; lp++ {
		r.Post(lp, sim.Time(lp%5), 0, 6)
	}
	r.Run()
	out := make([]string, randLPs)
	for i := range lps {
		out[i] = strings.Join(lps[i].log, "\n")
	}
	return out, r.Stats()
}

// TestRandomWorkloadShardEquivalence cross-checks sharded against
// serial delivery order over several seeds and shard counts, including
// a K that does not divide the LP count.
func TestRandomWorkloadShardEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		serial, serialStats := runRandom(seed, 1)
		if serialStats.Events < randLPs {
			t.Fatalf("seed %d: workload barely ran (%d events)", seed, serialStats.Events)
		}
		for _, k := range []int{2, 3, 4} {
			sharded, st := runRandom(seed, k)
			if st.Shards != k {
				t.Fatalf("seed %d: wanted %d shards, got %d", seed, k, st.Shards)
			}
			if st.Events != serialStats.Events {
				t.Errorf("seed %d k=%d: event count diverged: %d vs serial %d",
					seed, k, st.Events, serialStats.Events)
			}
			for lp := range sharded {
				if sharded[lp] != serial[lp] {
					t.Fatalf("seed %d k=%d: LP %d delivery order diverged\n--- serial ---\n%s\n--- k=%d ---\n%s",
						seed, k, lp, serial[lp], k, sharded[lp])
				}
			}
		}
	}
}
