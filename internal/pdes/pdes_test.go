package pdes

import (
	"fmt"
	"strings"
	"testing"

	"gat/internal/sim"
)

// echoRun wires a tiny two-LP protocol: LP 0 sends a token to LP 1,
// which bounces it back, for a fixed number of round trips.
func echoRun(t *testing.T, shards int) (trace string, st Stats) {
	t.Helper()
	const la = 10 * sim.Nanosecond
	// One log per LP: handlers may only touch their own LP's state
	// (LPs on different shards run concurrently).
	logs := make([][]string, 2)
	r := MustNew(Config{
		LPs: 2, Shards: shards, Lookahead: la,
		Handler: func(ctx *Ctx, m Message) {
			lp := ctx.LP()
			logs[lp] = append(logs[lp], fmt.Sprintf("%d@%d from %d data %d", lp, ctx.Now(), m.Src, m.Data))
			if m.Data > 0 {
				ctx.Send(1-lp, la, 0, m.Data-1)
			}
		},
	})
	r.Post(0, 0, 0, 6)
	r.Run()
	return strings.Join(logs[0], "\n") + "\n---\n" + strings.Join(logs[1], "\n"), r.Stats()
}

// TestEchoAcrossShards checks the bounced token produces the exact
// same per-LP delivery traces serial and sharded, and that the sharded
// run really windowed (more than one barrier).
func TestEchoAcrossShards(t *testing.T) {
	serial, st1 := echoRun(t, 1)
	if st1.Events != 7 {
		t.Fatalf("serial echo delivered %d messages, want 7:\n%s", st1.Events, serial)
	}
	sharded, st2 := echoRun(t, 2)
	if sharded != serial {
		t.Fatalf("sharded trace differs:\n--- serial ---\n%s\n--- sharded ---\n%s", serial, sharded)
	}
	if st2.Shards != 2 || st2.Windows < 2 {
		t.Fatalf("sharded run did not window: %+v", st2)
	}
	if st1.Events != st2.Events {
		t.Fatalf("event count is partition-dependent: %d vs %d", st1.Events, st2.Events)
	}
	if st1.CrossMessages != 1 { // just the Post
		t.Fatalf("serial run merged %d messages, want 1 (the Post)", st1.CrossMessages)
	}
}

// TestShardsClamped: more shards than LPs degrade gracefully.
func TestShardsClamped(t *testing.T) {
	_, st := echoRun(t, 16)
	if st.Shards != 2 {
		t.Fatalf("shards not clamped to LP count: %d", st.Shards)
	}
}

// TestSelfMessageZeroDelay checks a zero-delay self-send is allowed
// and delivered in send order at the same instant, after the message
// that triggered it.
func TestSelfMessageZeroDelay(t *testing.T) {
	var got []int64
	r := MustNew(Config{
		LPs: 1, Shards: 1,
		Handler: func(ctx *Ctx, m Message) {
			got = append(got, m.Data)
			if m.Data < 3 {
				ctx.Send(0, 0, 0, m.Data+1)
			}
		},
	})
	r.Post(0, 5, 0, 0)
	r.Run()
	want := []int64{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}

// sendPanics runs one Post-then-send protocol and reports whether the
// handler's send panicked. Only the seeding message (kind 0) triggers
// the send under test; whatever it delivers (kind 1) is inert, so a
// legal send terminates instead of ringing forever.
func sendPanics(cfg Config, send func(ctx *Ctx)) (panicked bool) {
	cfg.Handler = func(ctx *Ctx, m Message) {
		if m.Kind != 0 {
			return
		}
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		send(ctx)
	}
	r := MustNew(cfg)
	r.Post(0, 0, 0, 0)
	r.Run()
	return panicked
}

// TestSendContracts checks the delivery-order preconditions fail
// loudly: zero-delay inter-LP sends, cross-shard sends under the
// lookahead, and cross-shard sends with no lookahead at all.
func TestSendContracts(t *testing.T) {
	if !sendPanics(Config{LPs: 2, Shards: 1, Lookahead: 10},
		func(ctx *Ctx) { ctx.Send(1, 0, 1, 0) }) {
		t.Error("zero-delay inter-LP send did not panic")
	}
	if !sendPanics(Config{LPs: 2, Shards: 2, Lookahead: 10},
		func(ctx *Ctx) { ctx.Send(1, 5, 1, 0) }) {
		t.Error("cross-shard send below the lookahead did not panic")
	}
	if !sendPanics(Config{LPs: 2, Shards: 2},
		func(ctx *Ctx) { ctx.Send(1, 100, 1, 0) }) {
		t.Error("cross-shard send with zero lookahead did not panic")
	}
	if sendPanics(Config{LPs: 2, Shards: 2, Lookahead: 10},
		func(ctx *Ctx) { ctx.Send(1, 10, 1, 0) }) {
		t.Error("legal cross-shard send at exactly the lookahead panicked")
	}
}

// TestConfigErrors checks New's validation.
func TestConfigErrors(t *testing.T) {
	h := func(*Ctx, Message) {}
	for _, cfg := range []Config{
		{LPs: 0, Handler: h},
		{LPs: 4},
		{LPs: 4, Handler: h, Lookahead: -1},
		{LPs: 4, Shards: 2, Handler: h, ShardOf: func(int) int { return 7 }},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) succeeded, want error", cfg)
		}
	}
}

// TestPostAfterRun checks late seeding panics.
func TestPostAfterRun(t *testing.T) {
	r := MustNew(Config{LPs: 1, Handler: func(*Ctx, Message) {}})
	r.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("Post after Run did not panic")
		}
	}()
	r.Post(0, 0, 0, 0)
}

// TestSortMsgs pins the merge order on a shuffled batch with ties in
// every key position.
func TestSortMsgs(t *testing.T) {
	msgs := []Message{
		{At: 5, Src: 1, Seq: 2},
		{At: 3, Src: 9, Seq: 1},
		{At: 5, Src: 0, Seq: 7},
		{At: 5, Src: 1, Seq: 1},
		{At: 3, Src: 2, Seq: 4},
		{At: 9, Src: 0, Seq: 1},
	}
	sortMsgs(msgs)
	want := []Message{
		{At: 3, Src: 2, Seq: 4},
		{At: 3, Src: 9, Seq: 1},
		{At: 5, Src: 0, Seq: 7},
		{At: 5, Src: 1, Seq: 1},
		{At: 5, Src: 1, Seq: 2},
		{At: 9, Src: 0, Seq: 1},
	}
	for i := range want {
		if msgs[i] != want[i] {
			t.Fatalf("sortMsgs[%d] = %+v, want %+v", i, msgs[i], want[i])
		}
	}
}
