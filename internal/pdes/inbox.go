package pdes

import (
	"unsafe"

	"gat/internal/sim"
)

// lpBox is one LP's inbox: a binary min-heap of undelivered messages
// ordered by the partition-independent (At, Src, Seq) key, plus the
// LP's send counter. A box is owned by its LP's shard while a window
// runs; the coordinator pushes into it only between windows.
type lpBox struct {
	sh      *shard
	lp      int32
	sendSeq uint64
	heap    []Message
}

// ptr returns the box as the untyped event argument drainBox receives.
func (b *lpBox) ptr() unsafe.Pointer { return unsafe.Pointer(b) }

// msgLess orders messages by (At, Src, Seq) — delivery order. The key
// is total: Seq increments per source, so no two messages from one
// source collide, and distinct sources differ in Src.
//
//gat:hotpath
func msgLess(a, b Message) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Seq < b.Seq
}

// push inserts m, sifting up.
//
//gat:hotpath
func (b *lpBox) push(m Message) {
	q := append(b.heap, m)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !msgLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	b.heap = q
}

// popMin removes and returns the earliest message.
//
//gat:hotpath
func (b *lpBox) popMin() Message {
	q := b.heap
	min := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = Message{}
	b.heap = q[:n]
	siftDownMsg(b.heap, 0, n)
	return min
}

// siftDownMsg restores the min-heap property below index i over m[:n].
//
//gat:hotpath
func siftDownMsg(m []Message, i, n int) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && msgLess(m[c+1], m[c]) {
			c++
		}
		if !msgLess(m[c], m[i]) {
			return
		}
		m[i], m[c] = m[c], m[i]
		i = c
	}
}

// sortMsgs orders msgs ascending by (At, Src, Seq) with an in-place
// heapsort: no allocation, no comparator closure (this runs on the
// barrier merge path), and determinism for free since the key is
// total.
//
//gat:hotpath
func sortMsgs(msgs []Message) {
	n := len(msgs)
	// Max-heapify under the inverted comparison, then repeatedly swap
	// the maximum to the tail.
	for i := n/2 - 1; i >= 0; i-- {
		siftDownMsgMax(msgs, i, n)
	}
	for i := n - 1; i > 0; i-- {
		msgs[0], msgs[i] = msgs[i], msgs[0]
		siftDownMsgMax(msgs, 0, i)
	}
}

// siftDownMsgMax is siftDownMsg under the inverted order (max-heap),
// for sortMsgs.
//
//gat:hotpath
func siftDownMsgMax(m []Message, i, n int) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && msgLess(m[c], m[c+1]) {
			c++
		}
		if !msgLess(m[i], m[c]) {
			return
		}
		m[i], m[c] = m[c], m[i]
		i = c
	}
}

// drainBox is the anonymous delivery event: pop the inbox minimum and
// hand it to the handler. One drain is scheduled per pushed message,
// but a drain does not name "its" message — the pop decides, which is
// what makes per-LP delivery order partition-independent (see the
// package comment).
//
//gat:hotpath
func drainBox(_ *sim.Engine, arg unsafe.Pointer) {
	b := (*lpBox)(arg)
	m := b.popMin()
	sh := b.sh
	sh.ctx.box = b
	sh.r.handler(&sh.ctx, m)
}
