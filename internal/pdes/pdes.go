// Package pdes is the conservative parallel-in-run layer: one
// simulated run partitioned across K shards, each owning a private
// sim.Engine, advancing together through bounded lookahead windows —
// with results byte-identical to serial execution at any K.
//
// # Model
//
// The unit of partitioning is the logical process (LP): a node, a
// process, anything that owns its state and interacts with other LPs
// only through timestamped messages. Each LP belongs to one shard.
// A message to an LP on the same shard is scheduled directly on the
// shard's engine; a message to another shard is buffered in the
// sender's outbox and exchanged at the next window barrier.
//
// The window bound comes from conservative lookahead: if every
// cross-shard message sent at time t arrives no earlier than
// t + lookahead, then all shards can safely advance from the global
// next-event time `next` to just before next + lookahead without any
// of them receiving a message from the "past". For the cluster
// topologies in internal/netsim that lookahead is the minimum
// cross-shard wire latency (netsim.MinCrossLatency).
//
// # Determinism
//
// Serial/sharded byte-identity does not come for free from the
// engines' (time, seq) order — engine sequence numbers differ across
// partitions. It comes from a delivery discipline this package
// enforces:
//
//   - Every message lands in the destination LP's inbox, a min-heap
//     ordered by (At, Src, Seq) where Seq is a per-source send counter.
//     The (Src, Seq) pair is partition-independent.
//   - Delivery events are anonymous: each pops the inbox minimum,
//     rather than carrying a specific message. Since inter-LP messages
//     must be sent at least 1ns before they arrive (Send enforces it),
//     every message for time T is in the inbox before the first
//     delivery at T pops — so the pop sequence each LP observes depends
//     only on the partition-independent message set, never on engine
//     scheduling order.
//   - Cross-shard messages are merged at the barrier in sorted
//     (At, Src, Seq) order before injection, so even their engine
//     sequence numbers are assigned deterministically.
//
// A Handler must therefore be a deterministic function of its own LP's
// state and the delivered message: LPs on one shard run concurrently
// with LPs on other shards, so shared mutable state across LPs is both
// a data race and a determinism bug.
package pdes

import (
	"fmt"
	"sync"

	"gat/internal/sim"
)

// Message is one timestamped interaction between two logical
// processes. Kind and Data carry the payload; protocols needing more
// than one word index LP-local state with it.
type Message struct {
	// At is the delivery time at Dst.
	At sim.Time
	// Seq is the per-source send sequence — with Src, a
	// partition-independent identity that breaks delivery ties.
	Seq uint64
	// Src and Dst are LP ids. Src == Dst for self-messages.
	Src, Dst int32
	// Kind discriminates the message for the handler.
	Kind int32
	// Data is one payload word.
	Data int64
}

// Handler delivers one message to its destination LP. It runs on the
// destination shard's goroutine and must touch only that LP's state
// and the Ctx.
type Handler func(ctx *Ctx, m Message)

// Config describes a partitioned run.
type Config struct {
	// LPs is the number of logical processes, ids 0..LPs-1.
	LPs int
	// Shards is the requested shard count; it is clamped to [1, LPs].
	Shards int
	// Lookahead is the conservative bound: a cross-shard message sent
	// at t may not be delivered before t + Lookahead. Zero means no
	// cross-shard traffic is possible (Send panics on any), and windows
	// are unbounded.
	Lookahead sim.Time
	// ShardOf maps an LP to its shard in [0, Shards). Nil assigns
	// contiguous blocks of LPs.
	ShardOf func(lp int) int
	// Handler delivers every message.
	Handler Handler
}

// shard is one partition: a private engine, the LPs it owns, and the
// outbox its LPs' cross-shard sends accumulate during a window.
type shard struct {
	id     int32
	r      *Runner
	eng    *sim.Engine
	outbox []Message
	// ctx is the reusable handler context, so delivery allocates
	// nothing per message.
	ctx Ctx
}

// Runner coordinates one partitioned run.
type Runner struct {
	handler   Handler
	lookahead sim.Time
	shards    []*shard
	lpShard   []int32
	// boxes is the per-LP inbox array. Each element is owned by the
	// shard of its LP while a window runs; the coordinator touches them
	// only between windows.
	boxes []lpBox
	// pending holds cross-shard messages (and pre-run Posts) not yet
	// deliverable: everything with At beyond the last window's bound.
	pending   []Message
	windows   uint64
	crossMsgs uint64
	started   bool
}

// unboundedLimit bounds a window when no lookahead applies (one shard,
// or no cross-shard traffic possible).
const unboundedLimit = sim.Time(1<<62 - 1)

// New builds a Runner for the given partition. The configuration is
// validated eagerly: a bad LP count, shard map or missing handler is a
// programming error at the call site, not something to discover deep
// into a window.
func New(cfg Config) (*Runner, error) {
	if cfg.LPs <= 0 {
		return nil, fmt.Errorf("pdes: need at least one LP, got %d", cfg.LPs)
	}
	if cfg.Handler == nil {
		return nil, fmt.Errorf("pdes: Config.Handler must be set")
	}
	if cfg.Lookahead < 0 {
		return nil, fmt.Errorf("pdes: negative lookahead %v", cfg.Lookahead)
	}
	k := cfg.Shards
	if k < 1 {
		k = 1
	}
	if k > cfg.LPs {
		k = cfg.LPs
	}
	shardOf := cfg.ShardOf
	if shardOf == nil {
		per := (cfg.LPs + k - 1) / k
		shardOf = func(lp int) int { return lp / per }
	}
	r := &Runner{
		handler:   cfg.Handler,
		lookahead: cfg.Lookahead,
		lpShard:   make([]int32, cfg.LPs),
		boxes:     make([]lpBox, cfg.LPs),
	}
	for i := 0; i < k; i++ {
		sh := &shard{id: int32(i), r: r, eng: sim.NewEngine()}
		r.shards = append(r.shards, sh)
	}
	for lp := 0; lp < cfg.LPs; lp++ {
		s := shardOf(lp)
		if s < 0 || s >= k {
			return nil, fmt.Errorf("pdes: ShardOf(%d) = %d, want [0,%d)", lp, s, k)
		}
		r.lpShard[lp] = int32(s)
		r.boxes[lp] = lpBox{sh: r.shards[s], lp: int32(lp)}
	}
	return r, nil
}

// MustNew is New or panic, for callers whose configuration is static.
func MustNew(cfg Config) *Runner {
	r, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Post enqueues an initial message for lp, delivered at absolute time
// at. It may only be called before Run: seeding goes through the same
// sorted merge as barrier traffic, so the injection order — and with
// it the whole run — is independent of Post call order at equal
// (at, lp) keys only when keys differ; equal keys order by call, like
// consecutive sends from one source.
func (r *Runner) Post(lp int, at sim.Time, kind int32, data int64) {
	if r.started {
		panic("pdes: Post after Run")
	}
	if lp < 0 || lp >= len(r.boxes) {
		//gat:alloc-ok cold panic path
		panic(fmt.Sprintf("pdes: Post to LP %d of %d", lp, len(r.boxes)))
	}
	if at < 0 {
		//gat:alloc-ok cold panic path
		panic(fmt.Sprintf("pdes: Post at negative time %v", at))
	}
	b := &r.boxes[lp]
	b.sendSeq++
	r.pending = append(r.pending, Message{
		At: at, Src: int32(lp), Dst: int32(lp), Kind: kind, Seq: b.sendSeq, Data: data,
	})
}

// Run advances every shard to quiescence: repeatedly place the next
// lookahead window at the global minimum pending time, deliver every
// already-exchanged message falling inside it, run all shard engines
// concurrently to the window bound, then collect the outboxes at the
// barrier. With one shard (or zero lookahead) the single window is
// unbounded and Run degenerates to a plain serial drain.
func (r *Runner) Run() {
	r.started = true
	for {
		next, ok := r.nextTime()
		if !ok {
			return
		}
		limit := unboundedLimit
		if r.lookahead > 0 && len(r.shards) > 1 {
			// Window [next, next+lookahead): cross-shard messages sent
			// inside it arrive at >= next + lookahead, beyond the bound
			// — RunUntil is inclusive, hence the -1.
			limit = next + r.lookahead - 1
		}
		r.deliver(limit)
		r.runWindow(limit)
		r.collect()
		r.windows++
	}
}

// nextTime returns the earliest pending instant across shard engines
// and undelivered messages — the start of the next window.
func (r *Runner) nextTime() (sim.Time, bool) {
	var min sim.Time
	ok := false
	for _, sh := range r.shards {
		if t, has := sh.eng.NextEventTime(); has && (!ok || t < min) {
			min, ok = t, true
		}
	}
	for i := range r.pending {
		if t := r.pending[i].At; !ok || t < min {
			min, ok = t, true
		}
	}
	return min, ok
}

// deliver merges every pending message with At <= limit into its
// destination shard: sorted by the partition-independent (At, Src,
// Seq) key, then injected in that order so destination engine sequence
// numbers are assigned deterministically. This is the barrier merge —
// with Send's push, the hot path of the whole layer.
//
//gat:hotpath
func (r *Runner) deliver(limit sim.Time) {
	if len(r.pending) == 0 {
		return
	}
	sortMsgs(r.pending)
	n := 0
	for n < len(r.pending) && r.pending[n].At <= limit {
		n++
	}
	for i := 0; i < n; i++ {
		m := r.pending[i]
		b := &r.boxes[m.Dst]
		b.push(m)
		b.sh.eng.InjectAt(m.At, drainBox, b.ptr())
	}
	r.crossMsgs += uint64(n)
	rest := copy(r.pending, r.pending[n:])
	r.pending = r.pending[:rest]
}

// runWindow advances every shard engine to the window bound. Shards
// run on their own goroutines; the barrier (WaitGroup) orders their
// memory against the coordinator's merge work on either side.
func (r *Runner) runWindow(limit sim.Time) {
	if len(r.shards) == 1 {
		r.shards[0].eng.RunUntil(limit)
		return
	}
	var wg sync.WaitGroup
	for _, sh := range r.shards {
		sh := sh
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh.eng.RunUntil(limit)
		}()
	}
	wg.Wait()
}

// collect drains every shard outbox into pending at the barrier.
func (r *Runner) collect() {
	for _, sh := range r.shards {
		r.pending = append(r.pending, sh.outbox...)
		sh.outbox = sh.outbox[:0]
	}
}

// Stats summarizes a completed (or in-progress) run.
type Stats struct {
	// Shards is the effective shard count.
	Shards int
	// Windows is the number of lookahead windows executed.
	Windows uint64
	// CrossMessages counts messages merged at window barriers
	// (cross-shard traffic plus pre-run Posts).
	CrossMessages uint64
	// Events is the total engine events executed across shards. It is
	// partition-independent: one delivery event per message.
	Events uint64
}

// Stats returns the run's execution summary. Windows and CrossMessages
// vary with the partition; Events does not.
func (r *Runner) Stats() Stats {
	s := Stats{Shards: len(r.shards), Windows: r.windows, CrossMessages: r.crossMsgs}
	for _, sh := range r.shards {
		s.Events += sh.eng.EventsExecuted()
	}
	return s
}

// Ctx is the API a Handler interacts with the run through.
type Ctx struct {
	box *lpBox
}

// Now returns the LP's current simulation time.
func (c *Ctx) Now() sim.Time { return c.box.sh.eng.Now() }

// LP returns the id of the LP the message was delivered to.
func (c *Ctx) LP() int { return int(c.box.lp) }

// Send queues a message from the current LP to dst after delay.
// Self-messages (dst == the current LP) may use any delay >= 0; a
// message to another LP must use delay >= 1ns — that gap is what makes
// delivery order partition-independent — and a message to another
// shard must respect the configured lookahead.
//
//gat:hotpath
func (c *Ctx) Send(dst int, delay sim.Time, kind int32, data int64) {
	b := c.box
	sh := b.sh
	r := sh.r
	if dst < 0 || dst >= len(r.boxes) {
		//gat:alloc-ok cold panic path
		panic(fmt.Sprintf("pdes: send to LP %d of %d", dst, len(r.boxes)))
	}
	if delay < 0 {
		//gat:alloc-ok cold panic path
		panic(fmt.Sprintf("pdes: negative send delay %v", delay))
	}
	src := b.lp
	if int32(dst) != src && delay < sim.Nanosecond {
		//gat:alloc-ok cold panic path
		panic(fmt.Sprintf("pdes: zero-delay send %d->%d; inter-LP messages need delay >= 1ns", src, dst))
	}
	b.sendSeq++
	m := Message{
		At: sh.eng.Now() + delay, Src: src, Dst: int32(dst),
		Kind: kind, Seq: b.sendSeq, Data: data,
	}
	if r.lpShard[dst] == sh.id {
		db := &r.boxes[dst]
		db.push(m)
		sh.eng.InjectAt(m.At, drainBox, db.ptr())
		return
	}
	if r.lookahead <= 0 {
		//gat:alloc-ok cold panic path
		panic(fmt.Sprintf("pdes: cross-shard send %d->%d with zero lookahead", src, dst))
	}
	if delay < r.lookahead {
		//gat:alloc-ok cold panic path
		panic(fmt.Sprintf("pdes: cross-shard send %d->%d with delay %v < lookahead %v", src, dst, delay, r.lookahead))
	}
	sh.outbox = append(sh.outbox, m)
}
