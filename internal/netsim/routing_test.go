package netsim

import (
	"reflect"
	"testing"

	"gat/internal/sim"
)

func TestValidRouting(t *testing.T) {
	for _, name := range append([]string{""}, RoutingNames()...) {
		if err := ValidRouting(name); err != nil {
			t.Fatalf("ValidRouting(%q) = %v", name, err)
		}
	}
	if err := ValidRouting("teleport"); err == nil {
		t.Fatal("unknown routing policy should error")
	}
}

// routedNetwork builds a fabric network for routing tests: `groups`
// dragonfly-by-default groups of 2 nodes, one uplink per group unless
// widened, per-run seed fixed so routers reproduce.
func routedNetwork(t *testing.T, topo, routing string, groups, uplinks int, seed uint64) (*sim.Engine, *Network, *Fabric) {
	t.Helper()
	e := sim.NewEngine()
	cfg := testConfig()
	cfg.Topology = topo
	cfg.JitterSeed = seed
	n := New(e, cfg, 2*groups)
	fc := fabricConfig()
	fc.UplinksPerPod = uplinks
	fc.Routing = routing
	return e, n, n.EnableFabric(fc)
}

// shiftTraffic sends one message per node to its counterpart one group
// ahead — all-cross-group traffic touching every router path.
func shiftTraffic(e *sim.Engine, n *Network, nodes int) sim.Time {
	for src := 0; src < nodes; src++ {
		n.Transfer(src, (src+2)%nodes, 1000, sim.FiredSignal())
	}
	e.Run()
	return e.Now()
}

// TestMinimalRoutingMatchesLegacy: Routing "" and "minimal" are the
// same policy, and on every topology they reproduce identical traffic
// timelines and per-link utilization — the byte-identity contract that
// keeps pre-Router sweep goldens valid.
func TestMinimalRoutingMatchesLegacy(t *testing.T) {
	for _, topo := range []string{TopoFatTree, TopoDragonfly, TopoTorus, TopoSlimFly} {
		run := func(routing string) (sim.Time, map[string]float64) {
			e, n, f := routedNetwork(t, topo, routing, 4, 2, 7)
			return shiftTraffic(e, n, 8), f.Utilizations()
		}
		tEmpty, uEmpty := run("")
		tMin, uMin := run(RoutingMinimal)
		if tEmpty != tMin || !reflect.DeepEqual(uEmpty, uMin) {
			t.Fatalf("%s: empty vs %q routing diverged: %v vs %v", topo, RoutingMinimal, tEmpty, tMin)
		}
	}
}

// TestRouterDeterminism: with one seed, each stateful policy makes
// identical choices run over run — the whole timeline and every link's
// utilization reproduce. The per-link utilization map is the sharpest
// cheap observable: any diverging RNG draw or penalty update lands
// some message on a different link.
func TestRouterDeterminism(t *testing.T) {
	for _, routing := range []string{RoutingValiant, RoutingAdaptive} {
		t.Run(routing, func(t *testing.T) {
			run := func(seed uint64) (sim.Time, map[string]float64) {
				e, n, f := routedNetwork(t, TopoDragonfly, routing, 4, 2, seed)
				return shiftTraffic(e, n, 8), f.Utilizations()
			}
			t1, u1 := run(42)
			t2, u2 := run(42)
			if t1 != t2 || !reflect.DeepEqual(u1, u2) {
				t.Fatalf("%s: same seed diverged: %v vs %v\n%v\n%v", routing, t1, t2, u1, u2)
			}
		})
	}
	// And the Valiant stream really is seed-dependent: across many
	// seeds, at least one must land detours differently. (Per-seed
	// collisions are possible — 4 groups — but not across all of them.)
	base, baseU := func() (sim.Time, map[string]float64) {
		e, n, f := routedNetwork(t, TopoDragonfly, RoutingValiant, 4, 2, 0)
		return shiftTraffic(e, n, 8), f.Utilizations()
	}()
	for seed := uint64(1); seed <= 16; seed++ {
		e, n, f := routedNetwork(t, TopoDragonfly, RoutingValiant, 4, 2, seed)
		tt := shiftTraffic(e, n, 8)
		if tt != base || !reflect.DeepEqual(f.Utilizations(), baseU) {
			return
		}
	}
	t.Fatal("valiant routing ignored its seed: 17 seeds, identical timelines")
}

// TestAdaptivePenaltyEvolution: the penalty table is live state — a
// backlogged wave must steer the next wave's choices. Observable as:
// with adaptive routing, repeating an adversarial wave pattern leaves
// strictly more links busy than minimal routing does (which hashes the
// same flows onto the same links every wave).
func TestAdaptivePenaltyEvolution(t *testing.T) {
	busyLinks := func(routing string) int {
		e, n, f := routedNetwork(t, TopoDragonfly, routing, 4, 2, 7)
		ready := sim.FiredSignal()
		for wave := 0; wave < 3; wave++ {
			var arrivals []*sim.Signal
			for src := 0; src < 8; src++ {
				arrivals = append(arrivals, n.Transfer(src, (src+2)%8, 200000, ready))
			}
			ready = sim.AllOf(e, arrivals...)
		}
		e.Run()
		busy := 0
		for _, u := range f.Utilizations() {
			if u > 0 {
				busy++
			}
		}
		return busy
	}
	min, ad := busyLinks(RoutingMinimal), busyLinks(RoutingAdaptive)
	if ad <= min {
		t.Fatalf("adaptive routing spread traffic over %d links, minimal over %d; want adaptive > minimal", ad, min)
	}
}

// TestAdaptiveReducesMaxUtil is the congestion-relief claim in
// miniature: under adversarial shift traffic on a tapered dragonfly,
// the adaptive router's hottest link is measurably cooler than the
// minimal router's.
func TestAdaptiveReducesMaxUtil(t *testing.T) {
	maxUtil := func(routing string) float64 {
		e, n, f := routedNetwork(t, TopoDragonfly, routing, 4, 2, 7)
		ready := sim.FiredSignal()
		for wave := 0; wave < 4; wave++ {
			var arrivals []*sim.Signal
			for src := 0; src < 8; src++ {
				arrivals = append(arrivals, n.Transfer(src, (src+2)%8, 500000, ready))
			}
			ready = sim.AllOf(e, arrivals...)
		}
		e.Run()
		mx, _ := f.UtilizationSummary()
		return mx
	}
	min, ad := maxUtil(RoutingMinimal), maxUtil(RoutingAdaptive)
	if ad >= min {
		t.Fatalf("adaptive max link util %.4f, minimal %.4f; want adaptive < minimal", ad, min)
	}
}

// TestRoutingNeverUndercutsLookahead pins the PDES contract documented
// on MinCrossLatency: on every topology, no routing policy ever
// returns a route shorter than the topology's minimal path, so the
// lookahead bound — priced off minimal hop counts — stays conservative
// under every policy. Checked exhaustively over node pairs and, for
// the stateful routers, across repeated calls (RNG and penalty state
// must not open a shortcut either).
func TestRoutingNeverUndercutsLookahead(t *testing.T) {
	for _, topo := range []string{TopoFatTree, TopoDragonfly, TopoTorus, TopoSlimFly} {
		for _, routing := range RoutingNames() {
			_, n, f := routedNetwork(t, topo, routing, 6, 2, 9)
			r := f.Router()
			nodes := 12
			for trial := 0; trial < 3; trial++ {
				for src := 0; src < nodes; src++ {
					for dst := 0; dst < nodes; dst++ {
						if n.topo.Group(src) == n.topo.Group(dst) {
							continue
						}
						minHops := n.topo.Hops(src, dst)
						route := r.Route(src, dst)
						if route.Hops < minHops {
							t.Fatalf("%s/%s: route %d→%d has %d hops, minimal is %d — undercuts the lookahead bound",
								topo, routing, src, dst, route.Hops, minHops)
						}
						if len(route.Claims) == 0 {
							t.Fatalf("%s/%s: cross-group route %d→%d claims no links", topo, routing, src, dst)
						}
						// And the minimal hop count itself never undercuts
						// the adjacent-group distance the lookahead prices.
						if minHops < n.topo.CrossGroupHops() {
							t.Fatalf("%s: minimal %d→%d hops %d below CrossGroupHops %d",
								topo, src, dst, minHops, n.topo.CrossGroupHops())
						}
					}
				}
			}
		}
	}
}

// TestValiantDetourLengthens: a Valiant route through a genuine
// intermediate group claims more links than the minimal route — the
// load-balancing detour is real, not a relabeled minimal path.
func TestValiantDetourLengthens(t *testing.T) {
	_, n, f := routedNetwork(t, TopoDragonfly, RoutingValiant, 6, 1, 3)
	minimal := n.topo.Hops(0, 2)
	sawDetour := false
	r := f.Router()
	for i := 0; i < 64 && !sawDetour; i++ {
		if r.Route(0, 2).Hops > minimal {
			sawDetour = true
		}
	}
	if !sawDetour {
		t.Fatal("64 Valiant routes on a 6-group dragonfly never detoured")
	}
}
