package netsim

import (
	"testing"

	"gat/internal/sim"
)

func fabricConfig() FabricConfig {
	return FabricConfig{UplinkBW: 1e9, UplinksPerPod: 1, LinkOverhead: 0}
}

func TestFabricIntraPodUnaffected(t *testing.T) {
	// Same-pod transfers bypass the fabric entirely.
	timeFor := func(detailed bool) sim.Time {
		e := sim.NewEngine()
		n := New(e, testConfig(), 4) // pod size 2
		if detailed {
			n.EnableFabric(fabricConfig())
		}
		var at sim.Time
		n.Transfer(0, 1, 500, sim.FiredSignal()).OnFire(e, func() { at = e.Now() })
		e.Run()
		return at
	}
	if a, b := timeFor(false), timeFor(true); a != b {
		t.Fatalf("intra-pod transfer changed with fabric: %v vs %v", a, b)
	}
}

func TestFabricCrossPodAddsNoDelayWhenIdle(t *testing.T) {
	// On an idle non-tapered fabric a single message is (nearly) as
	// fast as with the NIC-only model.
	e := sim.NewEngine()
	n := New(e, testConfig(), 4)
	n.EnableFabric(fabricConfig())
	var at sim.Time
	n.Transfer(0, 2, 500, sim.FiredSignal()).OnFire(e, func() { at = e.Now() })
	e.Run()
	// NIC-only: tx 0..500, rx 130..630. Detailed: up 10..510,
	// down 20..520, rx earliest 30, end max(530, 520+10=530) = 530.
	if at < 500 || at > 700 {
		t.Fatalf("cross-pod idle transfer at %v, implausible", at)
	}
}

func TestTaperedFabricCongests(t *testing.T) {
	// Halve the uplink bandwidth and send two cross-pod flows from
	// different nodes in the same pod: they contend on the shared
	// uplink, which the NIC-only model cannot see.
	run := func(taper bool) sim.Time {
		e := sim.NewEngine()
		n := New(e, testConfig(), 4)
		fc := fabricConfig()
		if taper {
			fc.UplinkBW = 0.5e9
		}
		n.EnableFabric(fc)
		done := 0
		var last sim.Time
		for _, src := range []int{0, 1} {
			n.Transfer(src, 2+src%2, 1000, sim.FiredSignal()).OnFire(e, func() {
				done++
				last = e.Now()
			})
		}
		e.Run()
		if done != 2 {
			t.Fatal("transfers lost")
		}
		return last
	}
	full, tapered := run(false), run(true)
	if tapered <= full {
		t.Fatalf("tapered fabric (%v) should be slower than full bisection (%v)", tapered, full)
	}
}

func TestFabricUtilizations(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, testConfig(), 4)
	f := n.EnableFabric(fabricConfig())
	n.Transfer(0, 2, 1000, sim.FiredSignal())
	e.Run()
	utils := f.Utilizations()
	// 4 nodes / pod size 2 = 2 pods, each with 1 uplink + 1 downlink.
	if len(utils) != 4 {
		t.Fatalf("got %d fabric links, want 4", len(utils))
	}
	busy := 0
	for _, u := range utils {
		if u > 0 {
			busy++
		}
	}
	if busy != 2 { // one uplink + one downlink carried the message
		t.Fatalf("%d fabric links busy, want 2", busy)
	}
}

func TestFabricBadConfigPanics(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, testConfig(), 4)
	defer func() {
		if recover() == nil {
			t.Error("zero uplink bandwidth did not panic")
		}
	}()
	n.EnableFabric(FabricConfig{UplinkBW: 0})
}
