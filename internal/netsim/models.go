package netsim

import "gat/internal/sim"

// Additional interconnect cost models beyond the paper's calibrated
// Summit fat tree. Illustrative, from public latency/bandwidth figures;
// not calibrated the way Summit() is (DESIGN.md §5).

// Slingshot returns an illustrative HPE Slingshot-11 dragonfly-class
// interconnect with the given aggregate per-node injection bandwidth
// (Perlmutter GPU nodes and Frontier nodes both carry four 200 Gb/s
// NICs, ~25 GB/s each) and intra-node peer bandwidth (NVLink3 on
// Perlmutter, Infinity Fabric on Frontier).
func Slingshot(injectionBW, intraNodeBW float64) Config {
	return Config{
		LatencyBase:           1700 * sim.Nanosecond,
		LatencyPerHop:         350 * sim.Nanosecond,
		InjectionBW:           injectionBW,
		NICOverhead:           700 * sim.Nanosecond,
		IntraNodeBW:           intraNodeBW,
		IntraNodeLatency:      1700 * sim.Nanosecond,
		GPUDirectOverhead:     350 * sim.Nanosecond,
		RendezvousThreshold:   64 << 10,
		PipelineChunkOverhead: 12 * sim.Microsecond,
		PipelineChunkSize:     1 << 20,
		PodSize:               16,
	}
}
