package netsim

import "gat/internal/sim"

// This file is the lookahead seam of the conservative PDES layer
// (internal/pdes): static queries over the cost model and topology that
// need no instantiated Network — an exascale-scale LP partition derives
// its window bound from the configuration alone, without building one
// NIC pipe per node.

// PathLatency returns the deterministic (jitter-free) one-way wire
// latency between nodes a and b under the α–β model: the intra-node
// path at 0 hops, LatencyBase + (hops-1)·LatencyPerHop otherwise.
// Network.Latency computes the same value (plus the jitter draw when
// enabled) for instantiated networks.
func PathLatency(cfg Config, topo Topology, a, b int) sim.Time {
	h := topo.Hops(a, b)
	if h == 0 {
		return cfg.IntraNodeLatency
	}
	return cfg.LatencyBase + sim.Time(h-1)*cfg.LatencyPerHop
}

// MinCrossLatency returns the smallest one-way wire latency between any
// two of the nodes that a partition places on different shards — the
// conservative lookahead bound: no cross-shard interaction can take
// effect sooner than this after it is sent. It returns 0 when no pair
// of nodes crosses shards (a single shard, or fewer nodes than shards'
// worth of groups), which callers must treat as "no lookahead window"
// rather than a zero-width one.
//
// The scan is O(nodes): every geometry prices same-group pairs alike,
// and CrossGroupHops is by contract the geometry's *minimum*
// cross-group hop distance (the fat tree and dragonfly price every
// cross-group pair at it; the torus and slim fly only their adjacent
// groups), so the minimum is decided by whether the partition splits a
// group, not by which pair it splits.
//
// The bound also holds under every routing policy, not just minimal:
// a Router may lengthen a route (Valiant detours, adaptive escapes)
// but never shorten it below the topology's minimal path, because
// non-minimal group paths traverse at least as many inter-group edges
// and hopsForEdges is strictly increasing — so the shortest *possible*
// route, which this function prices, stays the conservative floor.
// TestRoutingNeverUndercutsLookahead pins the invariant for every
// topology × routing pair; internal/pdes's serial-vs-sharded
// byte-equality depends on it.
func MinCrossLatency(cfg Config, topo Topology, nodes int, shardOf func(node int) int) sim.Time {
	if nodes < 2 || shardOf == nil {
		return 0
	}
	multi := false
	splitA, splitB := -1, -1
	groupShard := map[int]int{}
	groupNode := map[int]int{}
	first := shardOf(0)
	for n := 0; n < nodes; n++ {
		s := shardOf(n)
		if s != first {
			multi = true
		}
		g := topo.Group(n)
		if prev, ok := groupShard[g]; ok {
			if prev != s && splitA < 0 {
				splitA, splitB = groupNode[g], n
			}
		} else {
			groupShard[g] = s
			groupNode[g] = n
		}
	}
	if !multi {
		return 0
	}
	if splitA >= 0 {
		// A group is split across shards: the in-group (or worse, the
		// intra-node) path is the binding latency.
		return PathLatency(cfg, topo, splitA, splitB)
	}
	// Group-aligned partition: every cross-shard pair is cross-group,
	// and no such pair is closer than the adjacent-group distance.
	h := topo.CrossGroupHops()
	return cfg.LatencyBase + sim.Time(h-1)*cfg.LatencyPerHop
}

// MinCrossLatency is the instantiated-network form of the package-level
// query, over this network's cost model, topology and node count.
func (n *Network) MinCrossLatency(shardOf func(node int) int) sim.Time {
	return MinCrossLatency(n.cfg, n.topo, len(n.nics), shardOf)
}
