package netsim

import (
	"fmt"

	"gat/internal/sim"
)

// Detailed fabric model: optional explicit group-egress and
// group-ingress pipes — leaf uplinks and spine downlinks on a fat
// tree, global out/in links on a dragonfly, inter-cabinet links on a
// torus — so traffic between switch groups contends on shared links
// instead of only on endpoint NICs. The default NIC-only model is a
// good approximation of Summit's non-blocking fat tree; the detailed
// model exists to study what the paper's results look like on a
// *tapered* fabric, where link contention grows with scale, and under
// non-minimal routing (FabricConfig.Routing), where route choice
// itself responds to that contention.

// FabricConfig parameterizes the detailed fabric.
type FabricConfig struct {
	// UplinkBW is the bandwidth of one group egress/ingress link in
	// bytes/s. With UplinkBW < PodSize*InjectionBW/UplinksPerPod the
	// fabric is tapered. Zero derives it from Taper.
	UplinkBW float64
	// Taper, when UplinkBW is zero, derives the link bandwidth from the
	// taper ratio: the group's aggregate uplink bandwidth is
	// PodSize*InjectionBW/Taper, split over UplinksPerPod links. Taper 1
	// is a non-blocking (fully provisioned) fabric; Taper 2 a 2:1 taper.
	Taper float64
	// UplinksPerPod is the number of parallel egress (and ingress) links
	// per switch group; flows hash over them by (src, dst) unless
	// adaptive routing resolves the choice by occupancy.
	UplinksPerPod int
	// LinkOverhead is the per-message occupancy overhead of each link.
	LinkOverhead sim.Time
	// Routing selects the route-choice policy for cross-group messages:
	// "" or "minimal" (the topology's shortest path, flow-hashed link
	// choice — the pre-Router behavior, byte-identical), "valiant"
	// (random intermediate group per message), or "adaptive"
	// (occupancy- and penalty-driven choice between the minimal route
	// and Valiant detours). See Router.
	Routing string
}

// Fabric is the instantiated link set plus the routing policy.
type Fabric struct {
	cfg    FabricConfig
	n      *Network
	groups int
	// links holds every fabric pipe; a link's dense id is its index —
	// the integer key the adaptive router's penalty table is indexed by.
	links []*sim.Pipe
	// up[g] / down[g] are the ids of group g's parallel egress/ingress
	// links, ascending.
	up, down [][]int
	router   Router
}

// EnableFabric attaches a detailed fabric to the network. Transfers
// between different switch groups (Topology.Group) then reserve the
// shared links along their route — chosen by the configured Router —
// in addition to the endpoint NICs.
//
// It must be called before any traffic is offered (before the first
// Transfer): links attached mid-run would have missed earlier
// contention and report utilization against the wrong elapsed time, so
// a late call panics. Machine-layer configurations attach the fabric
// at machine.New time via Config.Fabric, which always satisfies this.
func (n *Network) EnableFabric(cfg FabricConfig) *Fabric {
	if n.offered {
		panic("netsim: EnableFabric called after traffic was offered; attach the fabric before any Transfer")
	}
	if cfg.UplinksPerPod <= 0 {
		cfg.UplinksPerPod = 1
	}
	if cfg.UplinkBW <= 0 && cfg.Taper > 0 {
		cfg.UplinkBW = float64(n.cfg.PodSize) * n.cfg.InjectionBW /
			(cfg.Taper * float64(cfg.UplinksPerPod))
	}
	if cfg.UplinkBW <= 0 {
		panic("netsim: fabric needs a positive uplink bandwidth or taper ratio")
	}
	groups := n.topo.Group(len(n.nics)-1) + 1
	label := n.topo.groupLabel()
	f := &Fabric{cfg: cfg, n: n, groups: groups}
	for g := 0; g < groups; g++ {
		var ups, downs []int
		for i := 0; i < cfg.UplinksPerPod; i++ {
			ups = append(ups, f.newLink(fmt.Sprintf("%s%d/up%d", label, g, i)))
			downs = append(downs, f.newLink(fmt.Sprintf("%s%d/down%d", label, g, i)))
		}
		f.up = append(f.up, ups)
		f.down = append(f.down, downs)
	}
	f.router = f.newRouter(cfg.Routing, n.cfg.JitterSeed)
	n.fabric = f
	return f
}

// newLink creates one fabric pipe and returns its dense id.
func (f *Fabric) newLink(name string) int {
	f.links = append(f.links, sim.NewPipe(f.n.eng, name, f.cfg.UplinkBW, f.cfg.LinkOverhead))
	return len(f.links) - 1
}

// Config returns the fabric parameters, with derived fields (an
// UplinkBW computed from Taper) resolved.
func (f *Fabric) Config() FabricConfig { return f.cfg }

// Router returns the active routing policy.
func (f *Fabric) Router() Router { return f.router }

// Groups returns the number of switch groups the fabric links.
func (f *Fabric) Groups() int { return f.groups }

// linkSet returns a group's egress or ingress link ids, ascending.
func (f *Fabric) linkSet(group int, down bool) []int {
	if down {
		return f.down[group]
	}
	return f.up[group]
}

// pick hashes a flow onto one of a set of parallel links. The
// (src, dst) pair is run through a full 64-bit finalizer (splitmix64)
// rather than a multiply-add: halo traffic is stride-aligned (partner
// = rank + k), and a linear hash mod a power-of-two link count maps
// every such flow onto one link, defeating the parallel uplinks.
func (f *Fabric) pick(ids []int, src, dst int) int {
	h := uint64(src)<<32 | uint64(uint32(dst))
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return ids[h%uint64(len(ids))]
}

// reserve books every link claim of a route for a cross-group message,
// cut-through after the tx NIC: each claim starts one hop latency
// after the previous stage's start. Claims left at PickByHash resolve
// through the flow hash; adaptive routing pre-resolves them. It
// returns the final (ingress) link's occupancy window, which gates the
// receive side.
func (f *Fabric) reserve(route Route, src, dst int, bytes int64, txStart sim.Time) (lastStart, lastEnd sim.Time) {
	hop := f.n.cfg.LatencyPerHop
	prev := txStart
	for i := range route.Claims {
		c := &route.Claims[i]
		id := c.Link
		if id == PickByHash {
			id = f.pick(f.linkSet(c.Group, c.Down), src, dst)
		}
		lastStart, lastEnd = f.links[id].Reserve(prev+hop, bytes)
		prev = lastStart
	}
	return lastStart, lastEnd
}

// Utilizations returns the utilization of every fabric link, keyed by
// link name (for taper and routing studies).
func (f *Fabric) Utilizations() map[string]float64 {
	out := make(map[string]float64, len(f.links))
	for _, l := range f.links {
		out[l.Name()] = l.Utilization()
	}
	return out
}

// UtilizationSummary reduces Utilizations to the max and mean link
// utilization — the per-run congestion summary experiments report.
func (f *Fabric) UtilizationSummary() (max, mean float64) {
	var sum float64
	for _, l := range f.links {
		u := l.Utilization()
		if u > max {
			max = u
		}
		sum += u
	}
	if len(f.links) > 0 {
		mean = sum / float64(len(f.links))
	}
	return max, mean
}
