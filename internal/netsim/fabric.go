package netsim

import (
	"fmt"

	"gat/internal/sim"
)

// Detailed fabric model: optional explicit group-egress and
// group-ingress pipes — leaf uplinks and spine downlinks on a fat
// tree, global out/in links on a dragonfly — so traffic between switch
// groups contends on shared links instead of only on endpoint NICs.
// The default NIC-only model is a good approximation of Summit's
// non-blocking fat tree; the detailed model exists to study what the
// paper's results look like on a *tapered* fabric, where link
// contention grows with scale.

// FabricConfig parameterizes the detailed fabric.
type FabricConfig struct {
	// UplinkBW is the bandwidth of one group egress/ingress link in
	// bytes/s. With UplinkBW < PodSize*InjectionBW/UplinksPerPod the
	// fabric is tapered. Zero derives it from Taper.
	UplinkBW float64
	// Taper, when UplinkBW is zero, derives the link bandwidth from the
	// taper ratio: the group's aggregate uplink bandwidth is
	// PodSize*InjectionBW/Taper, split over UplinksPerPod links. Taper 1
	// is a non-blocking (fully provisioned) fabric; Taper 2 a 2:1 taper.
	Taper float64
	// UplinksPerPod is the number of parallel egress (and ingress) links
	// per switch group; flows hash over them by (src, dst).
	UplinksPerPod int
	// LinkOverhead is the per-message occupancy overhead of each link.
	LinkOverhead sim.Time
}

// Fabric is the instantiated link set.
type Fabric struct {
	cfg FabricConfig
	// up[g][i] carries group-egress traffic; down[g][i] group-ingress.
	up, down [][]*sim.Pipe
}

// EnableFabric attaches a detailed fabric to the network. Transfers
// between different switch groups (Topology.Group) then reserve an
// egress and an ingress link in addition to the endpoint NICs.
//
// It must be called before any traffic is offered (before the first
// Transfer): links attached mid-run would have missed earlier
// contention and report utilization against the wrong elapsed time, so
// a late call panics. Machine-layer configurations attach the fabric
// at machine.New time via Config.Fabric, which always satisfies this.
func (n *Network) EnableFabric(cfg FabricConfig) *Fabric {
	if n.offered {
		panic("netsim: EnableFabric called after traffic was offered; attach the fabric before any Transfer")
	}
	if cfg.UplinksPerPod <= 0 {
		cfg.UplinksPerPod = 1
	}
	if cfg.UplinkBW <= 0 && cfg.Taper > 0 {
		cfg.UplinkBW = float64(n.cfg.PodSize) * n.cfg.InjectionBW /
			(cfg.Taper * float64(cfg.UplinksPerPod))
	}
	if cfg.UplinkBW <= 0 {
		panic("netsim: fabric needs a positive uplink bandwidth or taper ratio")
	}
	groups := n.topo.Group(len(n.nics)-1) + 1
	label := n.topo.groupLabel()
	f := &Fabric{cfg: cfg}
	for g := 0; g < groups; g++ {
		var ups, downs []*sim.Pipe
		for i := 0; i < cfg.UplinksPerPod; i++ {
			ups = append(ups, sim.NewPipe(n.eng,
				fmt.Sprintf("%s%d/up%d", label, g, i), cfg.UplinkBW, cfg.LinkOverhead))
			downs = append(downs, sim.NewPipe(n.eng,
				fmt.Sprintf("%s%d/down%d", label, g, i), cfg.UplinkBW, cfg.LinkOverhead))
		}
		f.up = append(f.up, ups)
		f.down = append(f.down, downs)
	}
	n.fabric = f
	return f
}

// Config returns the fabric parameters, with derived fields (an
// UplinkBW computed from Taper) resolved.
func (f *Fabric) Config() FabricConfig { return f.cfg }

// pick hashes a flow onto one of the group's parallel links. The
// (src, dst) pair is run through a full 64-bit finalizer (splitmix64)
// rather than a multiply-add: halo traffic is stride-aligned (partner
// = rank + k), and a linear hash mod a power-of-two link count maps
// every such flow onto one link, defeating the parallel uplinks.
func (f *Fabric) pick(links []*sim.Pipe, src, dst int) *sim.Pipe {
	h := uint64(src)<<32 | uint64(uint32(dst))
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return links[h%uint64(len(links))]
}

// reserve books the fabric path for a cross-group message, cut-through
// after the tx NIC: each stage starts one hop latency after the
// previous stage's start. It returns the ingress-link occupancy
// window, which gates the receive side.
func (f *Fabric) reserve(n *Network, src, dst int, bytes int64, txStart sim.Time) (downStart, downEnd sim.Time) {
	srcGrp := n.topo.Group(src)
	dstGrp := n.topo.Group(dst)
	hop := n.cfg.LatencyPerHop
	upStart, _ := f.pick(f.up[srcGrp], src, dst).Reserve(txStart+hop, bytes)
	return f.pick(f.down[dstGrp], src, dst).Reserve(upStart+hop, bytes)
}

// Utilizations returns the utilization of every fabric link, keyed by
// link name (for taper studies).
func (f *Fabric) Utilizations() map[string]float64 {
	out := make(map[string]float64)
	for _, set := range [][][]*sim.Pipe{f.up, f.down} {
		for _, links := range set {
			for _, l := range links {
				out[l.Name()] = l.Utilization()
			}
		}
	}
	return out
}

// UtilizationSummary reduces Utilizations to the max and mean link
// utilization — the per-run congestion summary experiments report.
func (f *Fabric) UtilizationSummary() (max, mean float64) {
	var sum float64
	var count int
	for _, set := range [][][]*sim.Pipe{f.up, f.down} {
		for _, links := range set {
			for _, l := range links {
				u := l.Utilization()
				if u > max {
					max = u
				}
				sum += u
				count++
			}
		}
	}
	if count > 0 {
		mean = sum / float64(count)
	}
	return max, mean
}
