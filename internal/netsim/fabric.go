package netsim

import (
	"fmt"

	"gat/internal/sim"
)

// Detailed fabric model: an optional two-level fat tree with explicit
// leaf-uplink and spine-downlink pipes, so that traffic between pods
// contends on shared links instead of only on endpoint NICs. The
// default NIC-only model is a good approximation of Summit's
// non-blocking fat tree; the detailed model exists to study what the
// paper's results look like on a *tapered* fabric, where link
// contention grows with scale.

// FabricConfig parameterizes the detailed fabric.
type FabricConfig struct {
	// UplinkBW is the bandwidth of one leaf-switch uplink in bytes/s.
	// With UplinkBW < PodSize*InjectionBW the fabric is tapered.
	UplinkBW float64
	// UplinksPerPod is the number of parallel uplinks per leaf switch;
	// flows hash over them by (src, dst).
	UplinksPerPod int
	// LinkOverhead is the per-message occupancy overhead of each link.
	LinkOverhead sim.Time
}

// Fabric is the instantiated link set.
type Fabric struct {
	cfg FabricConfig
	// up[pod][i] carries pod->spine traffic; down[pod][i] spine->pod.
	up, down [][]*sim.Pipe
}

// EnableFabric attaches a detailed fabric to the network. Transfers
// between different pods then reserve an uplink and a downlink in
// addition to the endpoint NICs.
func (n *Network) EnableFabric(cfg FabricConfig) *Fabric {
	if cfg.UplinksPerPod <= 0 {
		cfg.UplinksPerPod = 1
	}
	if cfg.UplinkBW <= 0 {
		panic("netsim: fabric needs positive uplink bandwidth")
	}
	pods := (len(n.nics) + n.cfg.PodSize - 1) / n.cfg.PodSize
	f := &Fabric{cfg: cfg}
	for p := 0; p < pods; p++ {
		var ups, downs []*sim.Pipe
		for i := 0; i < cfg.UplinksPerPod; i++ {
			ups = append(ups, sim.NewPipe(n.eng,
				fmt.Sprintf("pod%d/up%d", p, i), cfg.UplinkBW, cfg.LinkOverhead))
			downs = append(downs, sim.NewPipe(n.eng,
				fmt.Sprintf("pod%d/down%d", p, i), cfg.UplinkBW, cfg.LinkOverhead))
		}
		f.up = append(f.up, ups)
		f.down = append(f.down, downs)
	}
	n.fabric = f
	return f
}

// pick hashes a flow onto one of the pod's parallel links.
func (f *Fabric) pick(links []*sim.Pipe, src, dst int) *sim.Pipe {
	h := uint64(src)*2654435761 + uint64(dst)*40503
	return links[h%uint64(len(links))]
}

// reserve books the fabric path for a cross-pod message, cut-through
// after the tx NIC: each stage starts one hop latency after the
// previous stage's start. It returns the spine-downlink occupancy
// window, which gates the receive side.
func (f *Fabric) reserve(n *Network, src, dst int, bytes int64, txStart sim.Time) (downStart, downEnd sim.Time) {
	srcPod := src / n.cfg.PodSize
	dstPod := dst / n.cfg.PodSize
	hop := n.cfg.LatencyPerHop
	upStart, _ := f.pick(f.up[srcPod], src, dst).Reserve(txStart+hop, bytes)
	return f.pick(f.down[dstPod], src, dst).Reserve(upStart+hop, bytes)
}

// Utilizations returns the utilization of every fabric link, keyed by
// link name (for taper studies).
func (f *Fabric) Utilizations() map[string]float64 {
	out := make(map[string]float64)
	for _, set := range [][][]*sim.Pipe{f.up, f.down} {
		for _, links := range set {
			for _, l := range links {
				out[l.Name()] = l.Utilization()
			}
		}
	}
	return out
}
