package netsim

import (
	"fmt"

	"gat/internal/sim"
)

// Routing policy registry names. FabricConfig.Routing selects one;
// empty means RoutingMinimal, which reproduces the pre-Router fabric
// byte-for-byte.
const (
	RoutingMinimal  = "minimal"
	RoutingValiant  = "valiant"
	RoutingAdaptive = "adaptive"
)

// RoutingNames lists the registered routing policies, minimal first.
func RoutingNames() []string {
	return []string{RoutingMinimal, RoutingValiant, RoutingAdaptive}
}

// ValidRouting reports whether name selects a routing policy ("" is
// minimal), with an error naming the known policies otherwise.
func ValidRouting(name string) error {
	switch name {
	case "", RoutingMinimal, RoutingValiant, RoutingAdaptive:
		return nil
	}
	return fmt.Errorf("netsim: unknown routing policy %q (have: %s, %s, %s)",
		name, RoutingMinimal, RoutingValiant, RoutingAdaptive)
}

// PickByHash marks a LinkClaim whose parallel-link choice is deferred
// to the splitmix64 flow hash at reservation time (minimal and Valiant
// routing). Adaptive routing resolves claims to concrete link ids
// before reservation.
const PickByHash = -1

// LinkClaim is one shared fabric link a route occupies: a group's
// egress (up) or ingress (down) link set, and either a pre-resolved
// member (a dense Fabric link id) or PickByHash.
type LinkClaim struct {
	Group int
	Down  bool
	Link  int
}

// Route is one candidate fabric path: its switch hop count — which
// prices the wire latency exactly as Topology.Hops prices minimal
// paths — and the ordered shared-link claims the message occupies
// cut-through, each starting one hop latency after the previous.
type Route struct {
	Hops   int
	Claims []LinkClaim
}

// Router chooses the fabric route of each cross-group message. It is
// consulted at fire time — after the tx NIC reservation, when per-link
// occupancy is current — so adaptive policies react to the congestion
// the message would actually meet. Implementations are owned by one
// Fabric (one engine, one run): they may keep per-run state (seeded
// RNG streams, penalty tables) and reuse scratch buffers, because a
// returned Route is consumed before the next call. Determinism
// contract: route choice may depend only on per-run state and engine
// time, never on wall clock or map order, so sweeps stay byte-identical
// at any -j / -shards.
type Router interface {
	// Name is the policy's registry key.
	Name() string
	// Route returns the path for one src→dst message; src and dst are
	// nodes in different groups.
	Route(src, dst int) Route
}

// routingSeedSalt decouples the routing RNG stream from the jitter
// stream: both derive from the per-run seed, but a Valiant draw must
// not perturb jitter draws (and vice versa).
const routingSeedSalt = 0x9e3779b97f4a7c15

// adaptiveCandidates is the number of non-minimal detours the adaptive
// router considers per message, UGAL-style.
const adaptiveCandidates = 2

// newRouter instantiates the configured policy for this fabric. The
// seed is the per-run jitter seed (set for every run by the bench
// layer, jittered or not), so routing decisions reproduce run-for-run.
func (f *Fabric) newRouter(name string, seed uint64) Router {
	switch name {
	case "", RoutingMinimal:
		return &minimalRouter{f: f}
	case RoutingValiant:
		return &valiantRouter{f: f, rng: sim.NewRNG(seed ^ routingSeedSalt)}
	case RoutingAdaptive:
		half := 8 * f.n.cfg.LatencyBase
		if half <= 0 {
			half = 8 * sim.Microsecond
		}
		return &adaptiveRouter{
			f:        f,
			rng:      sim.NewRNG(seed ^ routingSeedSalt),
			penalty:  make([]linkPenalty, len(f.links)),
			halfLife: half,
		}
	}
	// machine.Config.Validate reports unknown names as errors first;
	// reaching here means a raw netsim caller skipped validation.
	panic(ValidRouting(name))
}

// appendClaims expands a group-level path (from `from`, through each
// group in path) into per-link claims: every inter-group edge u→v
// occupies u's egress set and v's ingress set, choice deferred to the
// flow hash.
func appendClaims(claims []LinkClaim, from int, path []int) []LinkClaim {
	prev := from
	for _, g := range path {
		claims = append(claims,
			LinkClaim{Group: prev, Down: false, Link: PickByHash},
			LinkClaim{Group: g, Down: true, Link: PickByHash})
		prev = g
	}
	return claims
}

// minimalRouter always takes the topology's shortest path, with the
// parallel-link choice left to the flow hash — exactly the pre-Router
// fabric behavior on every topology.
type minimalRouter struct {
	f      *Fabric
	path   []int
	claims []LinkClaim
}

func (r *minimalRouter) Name() string { return RoutingMinimal }

func (r *minimalRouter) Route(src, dst int) Route {
	topo := r.f.n.topo
	ga, gb := topo.Group(src), topo.Group(dst)
	r.path = topo.groupPath(ga, gb, r.path[:0])
	r.claims = appendClaims(r.claims[:0], ga, r.path)
	return Route{Hops: topo.hopsForEdges(len(r.path)), Claims: r.claims}
}

// valiantRouter implements Valiant load balancing: every cross-group
// message detours through a uniformly random intermediate group drawn
// from the per-run seeded routing RNG, trading path length for
// immunity to adversarial traffic patterns. A draw landing on the
// source or destination group degenerates to the minimal route, as in
// classical VLB. Exactly one draw per message, so the stream — and
// with it every sweep byte — reproduces under any -j / -shards.
type valiantRouter struct {
	f      *Fabric
	rng    *sim.RNG
	path   []int
	claims []LinkClaim
}

func (r *valiantRouter) Name() string { return RoutingValiant }

func (r *valiantRouter) Route(src, dst int) Route {
	topo := r.f.n.topo
	ga, gb := topo.Group(src), topo.Group(dst)
	via := r.rng.Intn(r.f.groups)
	r.path = r.path[:0]
	mid := ga
	if via != ga && via != gb {
		r.path = topo.groupPath(ga, via, r.path)
		mid = via
	}
	r.path = topo.groupPath(mid, gb, r.path)
	r.claims = appendClaims(r.claims[:0], ga, r.path)
	return Route{Hops: topo.hopsForEdges(len(r.path)), Claims: r.claims}
}

// linkPenalty is one link's congestion memory: val is the accumulated
// backlog last observed at engine time at, halved for every elapsed
// halfLife when read (lazy decay, integer shifts — exactly
// reproducible on every platform).
type linkPenalty struct {
	val sim.Time
	at  sim.Time
}

// adaptiveRouter is progressive-adaptive (UGAL-style) routing built on
// the feedback-chooser idiom of SNIPPETS snippet 2's IpChooser: each
// message scores the minimal route against adaptiveCandidates Valiant
// detours, where a route's cost is the summed backlog of its claimed
// links (how far in the future each frees up) plus a decaying penalty
// that remembers recently congested links, and non-minimal routes pay
// their extra hops at wire cost — so an idle fabric always routes
// minimally. Parallel-link claims resolve to the cheapest member with
// a deterministic (occupancy, linkID) tie-break: link sets are scanned
// in ascending id order and only a strictly cheaper link displaces the
// incumbent, so equal-cost choices are stable at any -j / -shards.
type adaptiveRouter struct {
	f        *Fabric
	rng      *sim.RNG
	penalty  []linkPenalty
	halfLife sim.Time
	path     []int
	claims   []LinkClaim // candidate scratch
	best     []LinkClaim // winning candidate's claims
}

func (r *adaptiveRouter) Name() string { return RoutingAdaptive }

// decayed returns link id's penalty at engine time now.
func (r *adaptiveRouter) decayed(id int, now sim.Time) sim.Time {
	p := r.penalty[id]
	if p.val == 0 {
		return 0
	}
	steps := (now - p.at) / r.halfLife
	if steps >= 63 {
		return 0
	}
	return p.val >> uint(steps)
}

// cost prices one link: its current backlog plus its decayed penalty.
func (r *adaptiveRouter) cost(id int, now sim.Time) sim.Time {
	b := r.f.links[id].FreeAt() - now
	if b < 0 {
		b = 0
	}
	return b + r.decayed(id, now)
}

// scoreAndResolve resolves every claim to the cheapest link of its set
// (ascending-id scan, strictly-cheaper displacement: the (occupancy,
// linkID) tie-break) and returns the route's summed link cost.
func (r *adaptiveRouter) scoreAndResolve(claims []LinkClaim, now sim.Time) sim.Time {
	var total sim.Time
	for i := range claims {
		set := r.f.linkSet(claims[i].Group, claims[i].Down)
		best := set[0]
		bestCost := r.cost(best, now)
		for _, id := range set[1:] {
			if c := r.cost(id, now); c < bestCost {
				best, bestCost = id, c
			}
		}
		claims[i].Link = best
		total += bestCost
	}
	return total
}

func (r *adaptiveRouter) Route(src, dst int) Route {
	f := r.f
	topo := f.n.topo
	now := f.n.eng.Now()
	hopCost := f.n.cfg.LatencyPerHop
	ga, gb := topo.Group(src), topo.Group(dst)

	// Candidate 0: the minimal route.
	r.path = topo.groupPath(ga, gb, r.path[:0])
	r.best = appendClaims(r.best[:0], ga, r.path)
	minHops := topo.hopsForEdges(len(r.path))
	bestHops := minHops
	bestScore := r.scoreAndResolve(r.best, now)

	// Non-minimal candidates: Valiant detours, their extra hops priced
	// at wire cost. Always exactly adaptiveCandidates RNG draws per
	// message, degenerate draws included, to keep the stream aligned.
	for k := 0; k < adaptiveCandidates; k++ {
		via := r.rng.Intn(f.groups)
		if via == ga || via == gb {
			continue
		}
		r.path = topo.groupPath(ga, via, r.path[:0])
		r.path = topo.groupPath(via, gb, r.path)
		r.claims = appendClaims(r.claims[:0], ga, r.path)
		hops := topo.hopsForEdges(len(r.path))
		score := r.scoreAndResolve(r.claims, now) +
			sim.Time(hops-minHops)*hopCost
		if score < bestScore {
			r.best, r.claims = r.claims, r.best
			bestScore, bestHops = score, hops
		}
	}

	// Feedback: links chosen while backlogged accumulate penalty, so
	// later messages spread away from a congested path even after its
	// queue drains — the decaying blacklist of the IpChooser idiom.
	for i := range r.best {
		id := r.best[i].Link
		if b := f.links[id].FreeAt() - now; b > 0 {
			r.penalty[id] = linkPenalty{val: r.decayed(id, now) + b, at: now}
		}
	}
	return Route{Hops: bestHops, Claims: r.best}
}
