// Package netsim models the cluster interconnect: per-node NIC injection
// ports, an α–β latency/bandwidth wire model with fat-tree hop counts,
// an intra-node peer path, and the message protocols that matter to
// GPU-aware communication — eager, rendezvous, GPUDirect RDMA, and the
// pipelined host-staging fallback that IBM Spectrum MPI applies to large
// device buffers (the protocol change observed in the paper's Fig 7a).
package netsim

import (
	"fmt"
	"unsafe"

	"gat/internal/sim"
)

// Config is the interconnect cost model.
type Config struct {
	// LatencyBase is the end-to-end wire latency for a minimal message.
	LatencyBase sim.Time
	// LatencyPerHop is added per switch hop beyond the first.
	LatencyPerHop sim.Time
	// InjectionBW is the per-node NIC bandwidth in bytes/s, applied
	// independently to the send (tx) and receive (rx) sides.
	InjectionBW float64
	// NICOverhead is the fixed NIC occupancy per message.
	NICOverhead sim.Time
	// IntraNodeBW is the bandwidth of the intra-node peer path
	// (NVLink / shared memory) in bytes/s.
	IntraNodeBW float64
	// IntraNodeLatency is the fixed latency of an intra-node transfer.
	IntraNodeLatency sim.Time
	// GPUDirectOverhead is the extra per-message cost of registering a
	// device buffer for RDMA.
	GPUDirectOverhead sim.Time
	// RendezvousThreshold is the message size at and above which a
	// ready-to-send/clear-to-send handshake (one extra RTT) precedes the
	// data, as in UCX and MPI rendezvous protocols.
	RendezvousThreshold int64
	// PipelineChunkOverhead is the per-chunk protocol cost (pinned
	// buffer management, progress-engine work) of the pipelined
	// host-staging path used by Spectrum MPI for large device buffers.
	PipelineChunkOverhead sim.Time
	// PipelineChunkSize is the chunk granularity of that path.
	PipelineChunkSize int64
	// PodSize is the number of nodes per switch group — the leaf pod of
	// a fat tree, the router group of a dragonfly — used for hop
	// counting and for attaching the detailed fabric's shared links.
	PodSize int
	// Topology selects the switch geometry by registry name
	// (TopologyByName): "" or "fattree" is the two-level fat tree the
	// calibrated Summit model always used; "dragonfly" models
	// group-local vs. global links for Slingshot-class machines;
	// "torus" a 3-D torus of cabinets with dimension-order minimal
	// routes; "slimfly" a diameter-2 slim-fly-style group graph.
	Topology string
	// JitterFrac, when positive, perturbs each transfer's latency by a
	// uniform ±fraction drawn from a seeded RNG. It models the
	// run-to-run variability of a shared production fabric (the paper
	// observed 300–800 us swings for CUDA-aware Spectrum MPI on 64+
	// nodes, §IV-B). Zero keeps the network perfectly deterministic.
	JitterFrac float64
	// JitterSeed seeds the jitter RNG; runs with equal seeds are
	// reproducible even with jitter enabled.
	JitterSeed uint64
}

// Summit returns an interconnect model calibrated to Summit's dual-rail
// EDR InfiniBand non-blocking fat tree (23 GB/s injection). See
// DESIGN.md §5.
func Summit() Config {
	return Config{
		LatencyBase:           1600 * sim.Nanosecond,
		LatencyPerHop:         450 * sim.Nanosecond,
		InjectionBW:           23e9,
		NICOverhead:           900 * sim.Nanosecond,
		IntraNodeBW:           45e9,
		IntraNodeLatency:      1900 * sim.Nanosecond,
		GPUDirectOverhead:     400 * sim.Nanosecond,
		RendezvousThreshold:   64 << 10,
		PipelineChunkOverhead: 15 * sim.Microsecond,
		PipelineChunkSize:     1 << 20,
		PodSize:               18,
	}
}

// NIC is one node's network interface, with independent tx and rx ports.
type NIC struct {
	Node int
	TX   *sim.Pipe
	RX   *sim.Pipe
}

// Network is the cluster interconnect.
type Network struct {
	eng    *sim.Engine
	cfg    Config
	topo   Topology
	nics   []*NIC
	intra  []*sim.Pipe // per-node intra-node peer path
	rng    *sim.RNG    // jitter source; nil when JitterFrac == 0
	fabric *Fabric     // optional detailed shared fabric links

	// offered marks that Transfer has been called at least once; the
	// detailed fabric must be attached before that (EnableFabric).
	offered bool

	messages uint64
	bytes    int64

	// Arenas for the per-message protocol records. They share the
	// engine's lifetime: a record is pinned by pending events only until
	// its message completes, and the whole set is dropped with the
	// network (see sim.Arena).
	xferOps  sim.Arena[xferOp]
	countOps sim.Arena[countOp]
	gdOps    sim.Arena[gdOp]
}

// New builds a network connecting nodes nodes. An unknown
// Config.Topology name panics; machine.Config.Validate reports it as
// an error first for configurations built through the machine layer.
func New(e *sim.Engine, cfg Config, nodes int) *Network {
	if nodes <= 0 {
		panic("netsim: need at least one node")
	}
	if cfg.PodSize <= 0 {
		cfg.PodSize = 18
	}
	topo, err := TopologyByName(cfg.Topology, cfg.PodSize, nodes)
	if err != nil {
		panic(err)
	}
	n := &Network{eng: e, cfg: cfg, topo: topo}
	if cfg.JitterFrac > 0 {
		n.rng = sim.NewRNG(cfg.JitterSeed)
	}
	for i := 0; i < nodes; i++ {
		n.nics = append(n.nics, &NIC{
			Node: i,
			TX:   sim.NewPipe(e, fmt.Sprintf("nic%d/tx", i), cfg.InjectionBW, cfg.NICOverhead),
			RX:   sim.NewPipe(e, fmt.Sprintf("nic%d/rx", i), cfg.InjectionBW, cfg.NICOverhead),
		})
		n.intra = append(n.intra, sim.NewPipe(e, fmt.Sprintf("node%d/intra", i), cfg.IntraNodeBW, cfg.IntraNodeLatency))
	}
	return n
}

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return len(n.nics) }

// Engine returns the simulation engine the network is attached to.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Config returns the interconnect cost model.
func (n *Network) Config() Config { return n.cfg }

// NIC returns node i's NIC.
func (n *Network) NIC(i int) *NIC { return n.nics[i] }

// Messages returns the number of transfers that have started moving
// data (their ready signal fired): completed or in flight. Transfers
// scheduled behind a ready signal that has not fired — including runs
// truncated by RunUntil — are not counted.
func (n *Network) Messages() uint64 { return n.messages }

// BytesMoved returns the total bytes of the transfers counted by
// Messages: bytes whose movement has started, not merely been
// scheduled.
func (n *Network) BytesMoved() int64 { return n.bytes }

// Topology returns the switch geometry the network routes through.
func (n *Network) Topology() Topology { return n.topo }

// Fabric returns the detailed fabric, or nil when the NIC-only model
// is in effect.
func (n *Network) Fabric() *Fabric { return n.fabric }

// LinkUtilization returns the max and mean utilization over the
// detailed fabric's links, or zeros when no fabric is attached — the
// congestion summary experiments report per run.
func (n *Network) LinkUtilization() (max, mean float64) {
	if n.fabric == nil {
		return 0, 0
	}
	return n.fabric.UtilizationSummary()
}

// ResetOps frees all protocol records (transfer, accounting and
// GPUDirect gate ops) at once, keeping chunk capacity warm for the next
// run. It may only be called at a run boundary: no transfer may be
// pending and no previously returned arrival signal may be used
// afterwards. Traffic counters are not reset.
func (n *Network) ResetOps() {
	n.xferOps.Reset()
	n.countOps.Reset()
	n.gdOps.Reset()
}

// Hops returns the switch hop count between two nodes under the
// configured topology: 0 within a node, 2 within a switch group, and
// the topology's cross-group distance (4 for the fat tree, 3 for the
// dragonfly minimal route) otherwise.
func (n *Network) Hops(a, b int) int { return n.topo.Hops(a, b) }

// Latency returns the one-way wire latency between two nodes,
// including jitter when enabled. The deterministic base is the shared
// PathLatency model, so the PDES lookahead derivation prices routes
// exactly as instantiated transfers do.
func (n *Network) Latency(a, b int) sim.Time {
	base := PathLatency(n.cfg, n.topo, a, b)
	if n.rng != nil {
		return n.rng.Jitter(base, n.cfg.JitterFrac)
	}
	return base
}

// RTT returns the round-trip latency, used for rendezvous handshakes.
func (n *Network) RTT(a, b int) sim.Time { return 2 * n.Latency(a, b) }

// latencyForHops prices a route of the given switch hop count under
// the α–β model, including the jitter draw when enabled — the same
// pricing Latency applies to minimal paths, generalized to the routes
// non-minimal policies return.
func (n *Network) latencyForHops(h int) sim.Time {
	base := n.cfg.IntraNodeLatency
	if h > 0 {
		base = n.cfg.LatencyBase + sim.Time(h-1)*n.cfg.LatencyPerHop
	}
	if n.rng != nil {
		return n.rng.Jitter(base, n.cfg.JitterFrac)
	}
	return base
}

// RoutingName returns the active routing policy's registry name
// ("minimal", "valiant", "adaptive"), or "" when no detailed fabric is
// attached — the provenance string experiment reports carry per run.
func (n *Network) RoutingName() string {
	if n.fabric == nil {
		return ""
	}
	return n.fabric.router.Name()
}

// countOp defers the Messages/BytesMoved accounting of an intra-node
// transfer until its ready signal fires.
type countOp struct {
	n     *Network
	bytes int64
}

// countOpFire is the ArgFunc advancing the counters when a deferred
// intra-node transfer starts.
func countOpFire(_ *sim.Engine, arg unsafe.Pointer) {
	op := (*countOp)(arg)
	op.n.messages++
	op.n.bytes += op.bytes
}

// xferOp is one pending inter-node transfer: the route waits in the
// record until ready fires, then the cut-through reservations are made
// at fire-time prices (NIC occupancy, fabric contention, jitter draw)
// and arrived is scheduled.
type xferOp struct {
	n        *Network
	src, dst int
	bytes    int64
	arrived  sim.Signal
}

// xferOpStart is the ArgFunc run when an inter-node transfer's ready
// signal fires.
func xferOpStart(_ *sim.Engine, arg unsafe.Pointer) {
	op := (*xferOp)(arg)
	n := op.n
	src, dst, bytes := op.src, op.dst, op.bytes
	n.messages++
	n.bytes += bytes
	txStart, _ := n.nics[src].TX.Reserve(n.eng.Now(), bytes)
	var rxEarliest, downEnd sim.Time
	if n.fabric != nil && n.topo.Group(src) != n.topo.Group(dst) {
		// Route choice happens here, at fire time, so adaptive policies
		// see the congestion this message would actually meet. The
		// route's hop count prices the wire latency (identical to
		// n.Latency for minimal routes, so pre-Router timelines hold).
		route := n.fabric.router.Route(src, dst)
		rxEarliest = txStart + n.latencyForHops(route.Hops)
		var downStart sim.Time
		downStart, downEnd = n.fabric.reserve(route, src, dst, bytes, txStart)
		if e := downStart + n.cfg.LatencyPerHop; e > rxEarliest {
			rxEarliest = e
		}
	} else {
		rxEarliest = txStart + n.Latency(src, dst)
	}
	_, rxEnd := n.nics[dst].RX.Reserve(rxEarliest, bytes)
	if e := downEnd + n.cfg.LatencyPerHop; e > rxEnd {
		rxEnd = e
	}
	n.eng.FireAt(rxEnd, &op.arrived)
}

// Transfer moves bytes from node src to node dst, starting when ready
// fires, and returns a signal fired when the data has fully arrived.
// The path is cut-through: the receive side drains in parallel with
// injection, offset by the wire latency, so a large message occupies
// the network for size/bandwidth once, not twice. Intra-node transfers
// use the peer path instead of the NIC.
//
// The Messages/BytesMoved counters advance when the transfer starts
// (ready fires), not at schedule time, so truncated runs and
// never-fired ready signals do not overstate traffic.
//
//gat:hotpath
func (n *Network) Transfer(src, dst int, bytes int64, ready *sim.Signal) *sim.Signal {
	n.offered = true
	if src == dst {
		if ready.Fired() {
			// The dominant already-ready path: the transfer starts now,
			// so count now.
			n.messages++
			n.bytes += bytes
		} else {
			op := n.countOps.New()
			op.n = n
			op.bytes = bytes
			ready.OnFireArg(n.eng, countOpFire, unsafe.Pointer(op))
		}
		return n.intra[src].TransferAfter(ready, bytes)
	}
	op := n.xferOps.New()
	op.n = n
	op.src, op.dst, op.bytes = src, dst, bytes
	ready.OnFireArg(n.eng, xferOpStart, unsafe.Pointer(op))
	return &op.arrived
}

// After returns a signal that fires d after sig fires.
func After(e *sim.Engine, sig *sim.Signal, d sim.Time) *sim.Signal {
	return e.AfterSignal(sig, d)
}

// gdOp carries one GPUDirect transfer's protocol gates: gate fires a
// handshake RTT after ready (rendezvous-sized messages only), gated
// fires the registration overhead after that. The RTT is computed when
// the gate event runs, not at schedule time, so the jitter RNG draw
// order matches the protocol order on the wire.
type gdOp struct {
	n        *Network
	src, dst int
	gate     sim.Signal
	gated    sim.Signal
}

// gdGateFire schedules the rendezvous gate one RTT out.
func gdGateFire(_ *sim.Engine, arg unsafe.Pointer) {
	op := (*gdOp)(arg)
	op.n.eng.FireAt(op.n.eng.Now()+op.n.RTT(op.src, op.dst), &op.gate)
}

// gdOverheadFire schedules the registration-complete gate.
func gdOverheadFire(_ *sim.Engine, arg unsafe.Pointer) {
	op := (*gdOp)(arg)
	op.n.eng.FireAt(op.n.eng.Now()+op.n.cfg.GPUDirectOverhead, &op.gated)
}

// TransferGPUDirect is Transfer plus the device-buffer registration
// overhead, and, for rendezvous-sized messages, a handshake RTT before
// the data moves. This is the UCX/GPUDirect path used by the Charm++
// Channel API and by CUDA-aware MPI below its pipelining threshold.
//
//gat:hotpath
func (n *Network) TransferGPUDirect(src, dst int, bytes int64, ready *sim.Signal) *sim.Signal {
	op := n.gdOps.New()
	op.n = n
	op.src, op.dst = src, dst
	start := ready
	if bytes >= n.cfg.RendezvousThreshold && src != dst {
		ready.OnFireArg(n.eng, gdGateFire, unsafe.Pointer(op))
		start = &op.gate
	}
	start.OnFireArg(n.eng, gdOverheadFire, unsafe.Pointer(op))
	return n.Transfer(src, dst, bytes, &op.gated)
}
