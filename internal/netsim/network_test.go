package netsim

import (
	"testing"
	"testing/quick"

	"gat/internal/gpu"
	"gat/internal/sim"
)

// testConfig uses round numbers: 1 B/ns NIC and intra-node bandwidth,
// 100ns base latency, 10ns/hop, no NIC overhead.
func testConfig() Config {
	return Config{
		LatencyBase:         100,
		LatencyPerHop:       10,
		InjectionBW:         1e9,
		NICOverhead:         0,
		IntraNodeBW:         1e9,
		IntraNodeLatency:    50,
		GPUDirectOverhead:   5,
		RendezvousThreshold: 1000,
		PodSize:             2,
	}
}

func TestHops(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, testConfig(), 8)
	if h := n.Hops(3, 3); h != 0 {
		t.Fatalf("same-node hops = %d", h)
	}
	if h := n.Hops(0, 1); h != 2 { // same pod (pod size 2)
		t.Fatalf("same-pod hops = %d, want 2", h)
	}
	if h := n.Hops(0, 5); h != 4 {
		t.Fatalf("cross-pod hops = %d, want 4", h)
	}
}

func TestLatency(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, testConfig(), 8)
	if l := n.Latency(0, 1); l != 110 { // base + 1 extra hop
		t.Fatalf("same-pod latency = %v, want 110", l)
	}
	if l := n.Latency(0, 5); l != 130 {
		t.Fatalf("cross-pod latency = %v, want 130", l)
	}
	if l := n.Latency(2, 2); l != 50 {
		t.Fatalf("intra latency = %v, want 50", l)
	}
}

func TestTransferInterNode(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, testConfig(), 4)
	var at sim.Time
	n.Transfer(0, 1, 200, sim.FiredSignal()).OnFire(e, func() { at = e.Now() })
	e.Run()
	// Cut-through: tx 0..200; rx 110..310 overlapping tx.
	if at != 310 {
		t.Fatalf("arrival at %v, want 310", at)
	}
}

func TestTransferIntraNode(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, testConfig(), 4)
	var at sim.Time
	n.Transfer(2, 2, 200, sim.FiredSignal()).OnFire(e, func() { at = e.Now() })
	e.Run()
	// intra pipe: overhead 50 + 200.
	if at != 250 {
		t.Fatalf("intra arrival at %v, want 250", at)
	}
}

func TestNICSerializesSends(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, testConfig(), 4)
	var a1, a2 sim.Time
	n.Transfer(0, 1, 100, sim.FiredSignal()).OnFire(e, func() { a1 = e.Now() })
	n.Transfer(0, 2, 100, sim.FiredSignal()).OnFire(e, func() { a2 = e.Now() })
	e.Run()
	// First: tx 0..100, rx at node1 110..210. Second: tx 100..200
	// (serialized on node0's NIC), cross-pod latency 130, rx at node2
	// 230..330.
	if a1 != 210 {
		t.Fatalf("a1 = %v, want 210", a1)
	}
	if a2 != 330 {
		t.Fatalf("a2 = %v, want 330", a2)
	}
}

func TestTransferGPUDirectEager(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, testConfig(), 4)
	var at sim.Time
	// 500 bytes < rendezvous threshold 1000: no handshake, just
	// GPUDirect overhead 5.
	n.TransferGPUDirect(0, 1, 500, sim.FiredSignal()).OnFire(e, func() { at = e.Now() })
	e.Run()
	// overhead 5, tx 5..505, rx 115..615.
	if at != 615 {
		t.Fatalf("eager GPUDirect arrival at %v, want 615", at)
	}
}

func TestTransferGPUDirectRendezvous(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, testConfig(), 4)
	var at sim.Time
	n.TransferGPUDirect(0, 1, 2000, sim.FiredSignal()).OnFire(e, func() { at = e.Now() })
	e.Run()
	// RTT 220 + overhead 5: tx 225..2225, rx 335..2335.
	if at != 2335 {
		t.Fatalf("rendezvous arrival at %v, want 2335", at)
	}
}

func gpuTestConfig() gpu.Config {
	return gpu.Config{
		MemBandwidth:      1e9,
		CopyBandwidth:     1e9,
		CopySetup:         0,
		KernelDispatch:    0,
		GraphNodeDispatch: 0,
	}
}

func TestStagedTransfer(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, testConfig(), 4)
	src := gpu.New(e, "g0", gpuTestConfig())
	dst := gpu.New(e, "g1", gpuTestConfig())
	var at sim.Time
	n.StagedTransfer(src, dst, 0, 1, 100, sim.FiredSignal()).OnFire(e, func() { at = e.Now() })
	e.Run()
	// d2h 0..100, tx 100..200, rx 210..310, h2d 310..410.
	if at != 410 {
		t.Fatalf("staged arrival at %v, want 410", at)
	}
}

func TestPipelinedStagedFasterThanSerialForLargeMsgs(t *testing.T) {
	run := func(pipelined bool) sim.Time {
		e := sim.NewEngine()
		n := New(e, testConfig(), 4)
		src := gpu.New(e, "g0", gpuTestConfig())
		dst := gpu.New(e, "g1", gpuTestConfig())
		var at sim.Time
		var sig *sim.Signal
		if pipelined {
			sig = n.PipelinedStagedTransfer(src, dst, 0, 1, 10000, 1000, sim.FiredSignal())
		} else {
			sig = n.StagedTransfer(src, dst, 0, 1, 10000, sim.FiredSignal())
		}
		sig.OnFire(e, func() { at = e.Now() })
		e.Run()
		return at
	}
	serial, piped := run(false), run(true)
	if piped >= serial {
		t.Fatalf("pipelined (%v) should beat serial staging (%v) for large messages", piped, serial)
	}
}

func TestPipelinedStagedSlowerThanGPUDirect(t *testing.T) {
	// The Spectrum-MPI pipelined fallback must lose to true GPUDirect —
	// the root cause of the MPI-D flattening in Fig 7a. The per-chunk
	// protocol overhead is what tips the balance.
	cfg := testConfig()
	cfg.PipelineChunkOverhead = 500
	e := sim.NewEngine()
	n := New(e, cfg, 4)
	src := gpu.New(e, "g0", gpuTestConfig())
	dst := gpu.New(e, "g1", gpuTestConfig())
	var pipedAt, directAt sim.Time
	n.PipelinedStagedTransfer(src, dst, 0, 1, 10000, 1000, sim.FiredSignal()).
		OnFire(e, func() { pipedAt = e.Now() })
	e.Run()
	e2 := sim.NewEngine()
	n2 := New(e2, cfg, 4)
	n2.TransferGPUDirect(0, 1, 10000, sim.FiredSignal()).OnFire(e2, func() { directAt = e2.Now() })
	e2.Run()
	if directAt >= pipedAt {
		t.Fatalf("GPUDirect (%v) should beat pipelined staging (%v)", directAt, pipedAt)
	}
}

func TestAfterHelper(t *testing.T) {
	e := sim.NewEngine()
	base := sim.NewSignal()
	var at sim.Time
	After(e, base, 50).OnFire(e, func() { at = e.Now() })
	if After(e, base, 0) != base {
		t.Fatal("After with zero delay should return the input signal")
	}
	e.Schedule(100, func() { base.Fire(e) })
	e.Run()
	if at != 150 {
		t.Fatalf("After fired at %v, want 150", at)
	}
}

func TestPipelinedSmallMessageFallsBack(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, testConfig(), 4)
	src := gpu.New(e, "g0", gpuTestConfig())
	dst := gpu.New(e, "g1", gpuTestConfig())
	var at sim.Time
	// bytes <= chunk: identical to plain staging.
	n.PipelinedStagedTransfer(src, dst, 0, 1, 100, 1000, sim.FiredSignal()).
		OnFire(e, func() { at = e.Now() })
	e.Run()
	if at != 410 {
		t.Fatalf("small pipelined staged at %v, want 410", at)
	}
}

func TestTransferCounters(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, testConfig(), 2)
	n.Transfer(0, 1, 100, sim.FiredSignal())
	n.Transfer(1, 0, 200, sim.FiredSignal())
	e.Run()
	if n.Messages() != 2 || n.BytesMoved() != 300 {
		t.Fatalf("messages=%d bytes=%d, want 2/300", n.Messages(), n.BytesMoved())
	}
}

// TestTransferCountersFireTime is the truncated-run regression test:
// counters must reflect transfers that started, not transfers that
// were merely scheduled behind a ready signal.
func TestTransferCountersFireTime(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, testConfig(), 4)

	// A never-fired ready must contribute nothing, inter- or
	// intra-node.
	n.Transfer(0, 1, 100, sim.NewSignal())
	n.Transfer(2, 2, 50, sim.NewSignal())
	e.Run()
	if n.Messages() != 0 || n.BytesMoved() != 0 {
		t.Fatalf("never-ready transfers counted: messages=%d bytes=%d, want 0/0",
			n.Messages(), n.BytesMoved())
	}

	// A run truncated before the ready fires must not count the
	// pending transfer; resuming past the fire time must.
	late := sim.NewSignal()
	e.Schedule(1000, func() { late.Fire(e) })
	n.Transfer(0, 1, 300, late)
	gated := sim.NewSignal()
	e.Schedule(2000, func() { gated.Fire(e) })
	n.Transfer(1, 1, 70, gated) // intra-node, also gated
	e.RunUntil(500)
	if n.Messages() != 0 || n.BytesMoved() != 0 {
		t.Fatalf("truncated run counted pending transfers: messages=%d bytes=%d",
			n.Messages(), n.BytesMoved())
	}
	e.RunUntil(1500)
	if n.Messages() != 1 || n.BytesMoved() != 300 {
		t.Fatalf("after first fire: messages=%d bytes=%d, want 1/300",
			n.Messages(), n.BytesMoved())
	}
	e.Run()
	if n.Messages() != 2 || n.BytesMoved() != 370 {
		t.Fatalf("after full run: messages=%d bytes=%d, want 2/370",
			n.Messages(), n.BytesMoved())
	}
}

// Property: transfer time is monotonically non-decreasing in message
// size for a quiet network.
func TestTransferMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		small, large := int64(a), int64(b)
		if small > large {
			small, large = large, small
		}
		timeFor := func(bytes int64) sim.Time {
			e := sim.NewEngine()
			n := New(e, testConfig(), 4)
			var at sim.Time
			n.Transfer(0, 1, bytes, sim.FiredSignal()).OnFire(e, func() { at = e.Now() })
			e.Run()
			return at
		}
		return timeFor(small) <= timeFor(large)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSummitConfigSanity(t *testing.T) {
	cfg := Summit()
	if cfg.InjectionBW != 23e9 {
		t.Fatalf("Summit injection bandwidth = %v, want 23 GB/s", cfg.InjectionBW)
	}
	if cfg.RendezvousThreshold != 64<<10 {
		t.Fatalf("rendezvous threshold = %d", cfg.RendezvousThreshold)
	}
	e := sim.NewEngine()
	n := New(e, cfg, 512)
	// A 9 MB halo at 23 GB/s should take ~800us wire time.
	var at sim.Time
	n.Transfer(0, 100, 9<<20, sim.FiredSignal()).OnFire(e, func() { at = e.Now() })
	e.Run()
	// 9 MB at 23 GB/s is ~410us of wire time with cut-through.
	if at < 300*sim.Microsecond || at > 600*sim.Microsecond {
		t.Fatalf("9MB transfer took %v, implausible", at)
	}
}
