package netsim

import (
	"testing"

	"gat/internal/gpu"
	"gat/internal/sim"
)

// stagedChain runs msgs host-staged transfers back to back — each
// issued only when the previous one has landed, the way MPI-H issues
// halos as matches complete while the engine runs — and returns the
// devices for pool inspection.
func stagedChain(msgs int) (src, dst *gpu.Device) {
	e := sim.NewEngine()
	n := New(e, testConfig(), 4)
	src = gpu.New(e, "g0", gpuTestConfig())
	dst = gpu.New(e, "g1", gpuTestConfig())
	remaining := msgs
	var next func()
	next = func() {
		remaining--
		done := n.StagedTransfer(src, dst, 0, 1, 100, sim.FiredSignal())
		if remaining > 0 {
			done.OnFire(e, next)
		}
	}
	next()
	e.Run()
	return src, dst
}

// TestStagedTransferReusesStreams pins the free-list behavior: a long
// sequential chain of staged messages — the MPI-H halo pattern — must
// not grow the per-device stream population with the message count.
func TestStagedTransferReusesStreams(t *testing.T) {
	src, dst := stagedChain(100)
	if got := src.PooledStreams(); got > 2 {
		t.Errorf("source device pooled %d staging streams after 100 sequential messages, want <= 2", got)
	}
	if got := dst.PooledStreams(); got > 2 {
		t.Errorf("destination device pooled %d staging streams after 100 sequential messages, want <= 2", got)
	}
}

// TestStagedTransferAllocs is the allocs/op regression gate for the
// staging hot path (every MPI-H halo message): amortized allocations
// per message must stay small — in particular, no per-message stream
// construction (one stream costs ~4 allocations: struct, completeFn
// closure, op chunk, pool slot).
func TestStagedTransferAllocs(t *testing.T) {
	perMsg := func(msgs int) float64 {
		return testing.AllocsPerRun(3, func() { stagedChain(msgs) })
	}
	const extra = 400
	base, grown := perMsg(10), perMsg(10+extra)
	marginal := (grown - base) / extra
	// Each staged message legitimately allocates a handful of signals
	// and events; two fresh streams per message would add ~8 on top.
	if marginal > 7 {
		t.Fatalf("staged transfer allocates %.1f allocs/message (marginal), want <= 7 — staging streams are not being reused", marginal)
	}
}

// TestPipelinedStagedReuse covers the pipelined path's acquire
// ordering: src and dst streams must be distinct even when the pool
// could satisfy both, and chunks must still serialize correctly.
func TestPipelinedStagedReuse(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, testConfig(), 4)
	src := gpu.New(e, "g0", gpuTestConfig())
	dst := gpu.New(e, "g1", gpuTestConfig())
	var first, second sim.Time
	done := n.PipelinedStagedTransfer(src, dst, 0, 1, 10000, 1000, sim.FiredSignal())
	done.OnFire(e, func() { first = e.Now() })
	e.Run()
	// Second message after the first drained: streams come from the
	// pool and the timeline matches a fresh-stream run of equal shape.
	n.PipelinedStagedTransfer(src, dst, 0, 1, 10000, 1000, sim.FiredSignal()).
		OnFire(e, func() { second = e.Now() })
	e.Run()
	if first == 0 || second == 0 {
		t.Fatal("pipelined transfers did not complete")
	}
	if got := second - first; got != first {
		t.Fatalf("pooled rerun took %v, fresh run took %v — stream reuse changed the timeline", got, first)
	}
}
