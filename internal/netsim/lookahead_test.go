package netsim

import (
	"testing"

	"gat/internal/sim"
)

func lookaheadCfg() Config {
	c := Summit()
	c.PodSize = 4
	return c
}

// TestPathLatencyMatchesNetwork checks the static path model against an
// instantiated jitter-free network for every pair of a two-pod cluster,
// on both geometries.
func TestPathLatencyMatchesNetwork(t *testing.T) {
	for _, name := range []string{TopoFatTree, TopoDragonfly, TopoTorus, TopoSlimFly} {
		cfg := lookaheadCfg()
		cfg.Topology = name
		topo, err := TopologyByName(name, cfg.PodSize, 8)
		if err != nil {
			t.Fatal(err)
		}
		n := New(sim.NewEngine(), cfg, 8)
		for a := 0; a < 8; a++ {
			for b := 0; b < 8; b++ {
				if got, want := PathLatency(cfg, topo, a, b), n.Latency(a, b); got != want {
					t.Fatalf("%s: PathLatency(%d,%d) = %v, Network.Latency = %v", name, a, b, got, want)
				}
			}
		}
	}
}

func TestCrossGroupHops(t *testing.T) {
	for _, c := range []struct {
		name string
		want int
	}{{TopoFatTree, 4}, {TopoDragonfly, 3}, {TopoTorus, 3}, {TopoSlimFly, 3}} {
		topo, err := TopologyByName(c.name, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		if got := topo.CrossGroupHops(); got != c.want {
			t.Errorf("%s: CrossGroupHops = %d, want %d", c.name, got, c.want)
		}
		// The method must agree with Hops on an actual cross-group pair.
		if got := topo.Hops(0, 4); got != c.want {
			t.Errorf("%s: Hops(0,4) = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestMinCrossLatency checks the lookahead derivation: zero without a
// real split, the cross-group latency for a group-aligned partition,
// and the in-group latency once a group is split across shards.
func TestMinCrossLatency(t *testing.T) {
	cfg := lookaheadCfg()
	cfg.Topology = TopoDragonfly
	topo, err := TopologyByName(cfg.Topology, cfg.PodSize, 8)
	if err != nil {
		t.Fatal(err)
	}
	crossGroup := cfg.LatencyBase + 2*cfg.LatencyPerHop // 3 hops
	inGroup := cfg.LatencyBase + cfg.LatencyPerHop      // 2 hops

	if got := MinCrossLatency(cfg, topo, 8, func(int) int { return 0 }); got != 0 {
		t.Errorf("single shard: lookahead = %v, want 0", got)
	}
	if got := MinCrossLatency(cfg, topo, 1, func(n int) int { return n }); got != 0 {
		t.Errorf("single node: lookahead = %v, want 0", got)
	}
	aligned := func(n int) int { return topo.Group(n) % 2 }
	if got := MinCrossLatency(cfg, topo, 8, aligned); got != crossGroup {
		t.Errorf("group-aligned: lookahead = %v, want %v", got, crossGroup)
	}
	split := func(n int) int { return n % 2 }
	if got := MinCrossLatency(cfg, topo, 8, split); got != inGroup {
		t.Errorf("split group: lookahead = %v, want %v", got, inGroup)
	}

	// The instantiated-network form must agree.
	n := New(sim.NewEngine(), cfg, 8)
	if got := n.MinCrossLatency(aligned); got != crossGroup {
		t.Errorf("Network.MinCrossLatency = %v, want %v", got, crossGroup)
	}
}
