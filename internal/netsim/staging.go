package netsim

import (
	"gat/internal/gpu"
	"gat/internal/sim"
)

// StagedTransfer models classic host-staging communication of a device
// buffer: a D2H copy on the source GPU, a host-to-host network transfer,
// and an H2D copy on the destination GPU, executed back to back. The
// returned signal fires when the data is resident in destination device
// memory.
//
// The copies go through the GPUs' DMA engines, so they contend with the
// application's own transfers — the effect that makes host staging
// expensive in the paper's Charm-H and MPI-H variants.
//
// Staging streams come from the devices' acquire pools rather than
// being created per message: an idle pooled stream is behaviorally
// identical to a fresh one (empty queue, same gating via the ready/
// arrived signals), so reuse preserves the transfer timeline while
// keeping the per-message hot path allocation-free — every MPI-H halo
// message lands here via mpi.World.start.
func (n *Network) StagedTransfer(srcDev, dstDev *gpu.Device, src, dst int, bytes int64, ready *sim.Signal) *sim.Signal {
	srcStream := srcDev.AcquireStream("stage/d2h", gpu.PriorityHigh)
	srcStream.WaitSignal(ready)
	d2hDone := srcStream.Copy(gpu.D2H, bytes)
	arrived := n.Transfer(src, dst, bytes, d2hDone)
	dstStream := dstDev.AcquireStream("stage/h2d", gpu.PriorityHigh)
	dstStream.WaitSignal(arrived)
	return dstStream.Copy(gpu.H2D, bytes)
}

// PipelinedStagedTransfer models IBM Spectrum MPI's large-device-message
// protocol: the message is split into chunks that are staged through
// pinned host buffers, with the D2H copy, network transfer, and H2D
// copy of different chunks overlapping in a pipeline (Hanford et al.,
// "Challenges of GPU-Aware Communication in MPI"). Each chunk pays its
// own per-transfer overheads, which is why this path loses to true
// GPUDirect for large messages.
func (n *Network) PipelinedStagedTransfer(srcDev, dstDev *gpu.Device, src, dst int, bytes int64, chunk int64, ready *sim.Signal) *sim.Signal {
	if chunk <= 0 {
		panic("netsim: chunk size must be positive")
	}
	if bytes <= chunk {
		return n.StagedTransfer(srcDev, dstDev, src, dst, bytes, ready)
	}
	// The src stream gets its gate op before the dst acquire so the two
	// acquires can never return the same (still idle) stream.
	srcStream := srcDev.AcquireStream("pipe/d2h", gpu.PriorityHigh)
	srcStream.WaitSignal(ready)
	dstStream := dstDev.AcquireStream("pipe/h2d", gpu.PriorityHigh)

	done := n.eng.NewSignal()
	// Stage 1: successive D2H chunk copies are serialized by the stream.
	// Stage 2: each chunk's network transfer starts when its D2H is done
	// (NIC pipe serializes chunks in order). Stage 3: each chunk's H2D
	// waits for its own arrival; the dst stream serializes them.
	for remaining := bytes; remaining > 0; {
		c := chunk
		if remaining < c {
			c = remaining
		}
		remaining -= c
		d2hDone := srcStream.Copy(gpu.D2H, c)
		// Each chunk pays the pipeline protocol overhead before it can
		// be injected — the cost that keeps this path below GPUDirect.
		sendReady := After(n.eng, d2hDone, n.cfg.PipelineChunkOverhead)
		arrived := n.Transfer(src, dst, c, sendReady)
		dstStream.WaitSignal(arrived)
		h2dDone := dstStream.Copy(gpu.H2D, c)
		if remaining == 0 {
			h2dDone.Chain(n.eng, done)
		}
	}
	return done
}
