package netsim

import "fmt"

// Topology models the interconnect's switch geometry: how many switch
// hops separate two nodes, which nodes share a switch group — the
// granularity at which the detailed fabric (EnableFabric) attaches its
// shared links — and the group-level paths routes traverse. Transfers
// within one group ride only the endpoint NICs; transfers between
// groups additionally claim shared group egress/ingress links along
// their route (see Route), which is where taper-induced contention
// appears.
//
// Four geometries are built in: the two-level fat tree the paper's
// Summit model always used, a dragonfly (group-local vs. global links)
// for the Slingshot-class machines, a 3-D torus of switch groups with
// dimension-order minimal routing, and a diameter-2 slim-fly-style
// group graph. All group nodes in blocks of Config.PodSize.
type Topology interface {
	// Name is the registry key ("fattree", "dragonfly", "torus",
	// "slimfly").
	Name() string
	// Hops returns the switch hop count of the minimal route between
	// two nodes (0 within a node).
	Hops(a, b int) int
	// Group returns the switch group of a node: the leaf pod of a fat
	// tree, the router group of a dragonfly, the grid cell of a torus.
	Group(node int) int
	// CrossGroupHops returns the switch hop count of the minimal route
	// between nodes in *adjacent* groups — the geometry's smallest
	// cross-group distance. For the fat tree and dragonfly every
	// cross-group pair prices alike; the torus and slim fly have longer
	// pairs too, so this is a lower bound, which is exactly what the
	// conservative-PDES lookahead derivation needs (MinCrossLatency).
	CrossGroupHops() int

	// groupLabel prefixes fabric link names ("pod" / "grp" / ...).
	groupLabel() string
	// groupPath appends the minimal group-level route from group ga to
	// group gb to buf — exclusive of ga, inclusive of gb, empty when
	// equal — where each consecutive pair is one inter-group link
	// traversal. Routers compose these paths (e.g. through a Valiant
	// intermediate) and expand them into link claims.
	groupPath(ga, gb int, buf []int) []int
	// hopsForEdges prices a route that traverses k inter-group edges
	// (k >= 1) in switch hops. It is strictly increasing in k, so a
	// longer group path is never cheaper than the minimal one — the
	// PDES lookahead's shortest-route bound relies on this (see
	// MinCrossLatency and TestRoutingNeverUndercutsLookahead).
	hopsForEdges(k int) int
}

// Topology registry names. Config.Topology selects one; empty means
// TopoFatTree, which reproduces the pre-topology hop model exactly.
const (
	TopoFatTree   = "fattree"
	TopoDragonfly = "dragonfly"
	TopoTorus     = "torus"
	TopoSlimFly   = "slimfly"
)

// TopologyByName resolves a topology name with the given group size
// (nodes per leaf pod / router group) and cluster node count. Empty
// selects the fat tree. The node count shapes the geometries whose
// group graph depends on scale (the torus grid, the slim-fly array);
// the fat tree and dragonfly ignore it.
func TopologyByName(name string, groupSize, nodes int) (Topology, error) {
	if groupSize <= 0 {
		return nil, fmt.Errorf("netsim: topology needs a positive group size, got %d", groupSize)
	}
	if nodes <= 0 {
		nodes = 1
	}
	groups := (nodes + groupSize - 1) / groupSize
	switch name {
	case "", TopoFatTree:
		return fatTree{groupSize: groupSize}, nil
	case TopoDragonfly:
		return dragonfly{groupSize: groupSize}, nil
	case TopoTorus:
		return newTorus(groupSize, groups), nil
	case TopoSlimFly:
		return newSlimFly(groupSize, groups), nil
	default:
		return nil, fmt.Errorf("netsim: unknown topology %q (have: %s, %s, %s, %s)",
			name, TopoFatTree, TopoDragonfly, TopoTorus, TopoSlimFly)
	}
}

// fatTree is the two-level fat tree: nodes under a leaf switch (pod),
// leaves under a spine layer. 2 hops within a pod (node-leaf-node),
// 4 across pods (node-leaf-spine-leaf-node). Every pod pair is one
// spine traversal apart, so group paths are single-edge and each edge
// costs two switch-to-switch hops (leaf-spine-leaf).
type fatTree struct{ groupSize int }

func (t fatTree) Name() string        { return TopoFatTree }
func (t fatTree) groupLabel() string  { return "pod" }
func (t fatTree) Group(node int) int  { return node / t.groupSize }
func (t fatTree) CrossGroupHops() int { return 4 }

func (t fatTree) groupPath(ga, gb int, buf []int) []int {
	if ga == gb {
		return buf
	}
	return append(buf, gb)
}

func (t fatTree) hopsForEdges(k int) int { return 2 + 2*k }

func (t fatTree) Hops(a, b int) int {
	switch {
	case a == b:
		return 0
	case t.Group(a) == t.Group(b):
		return 2
	default:
		return 4
	}
}

// dragonfly is a dragonfly: all-to-all router links within a group,
// one global-link hop between any two groups. 2 hops within a group
// (node-router-node), 3 on the minimal cross-group route
// (node-router-global-router-node adds one switch traversal over the
// in-group path). Non-minimal (Valiant) routes chain two global hops
// through an intermediate group.
type dragonfly struct{ groupSize int }

func (t dragonfly) Name() string        { return TopoDragonfly }
func (t dragonfly) groupLabel() string  { return "grp" }
func (t dragonfly) Group(node int) int  { return node / t.groupSize }
func (t dragonfly) CrossGroupHops() int { return 3 }

func (t dragonfly) groupPath(ga, gb int, buf []int) []int {
	if ga == gb {
		return buf
	}
	return append(buf, gb)
}

func (t dragonfly) hopsForEdges(k int) int { return 2 + k }

func (t dragonfly) Hops(a, b int) int {
	switch {
	case a == b:
		return 0
	case t.Group(a) == t.Group(b):
		return 2
	default:
		return 3
	}
}

// torus is a 3-D torus of switch groups: the groups (cabinets) sit on
// a dx×dy×dz grid with wraparound links in each dimension, factored
// from the group count as near-cubically as its divisors allow.
// Minimal routing is dimension-order — X, then Y, then Z, each along
// the shorter way around the ring (ties go the increasing direction) —
// so cross-group routes traverse intermediate cabinets and claim their
// links: pass-through contention the single-global-hop geometries
// cannot express. 2 hops within a cabinet, 2 + ring distance across.
type torus struct {
	groupSize  int
	dx, dy, dz int
}

func newTorus(groupSize, groups int) torus {
	dx, dy, dz := torusDims(groups)
	return torus{groupSize: groupSize, dx: dx, dy: dy, dz: dz}
}

// torusDims factors the group count into dx <= dy <= dz, each the
// largest divisor not exceeding the cube (then square) root — a
// deterministic near-cubic grid. Prime counts degrade to a 1×1×G ring.
func torusDims(groups int) (dx, dy, dz int) {
	if groups < 1 {
		groups = 1
	}
	dx = 1
	for d := 1; d*d*d <= groups; d++ {
		if groups%d == 0 {
			dx = d
		}
	}
	rest := groups / dx
	dy = 1
	for d := 1; d*d <= rest; d++ {
		if rest%d == 0 {
			dy = d
		}
	}
	return dx, dy, rest / dy
}

func (t torus) Name() string        { return TopoTorus }
func (t torus) groupLabel() string  { return "cab" }
func (t torus) Group(node int) int  { return node / t.groupSize }
func (t torus) CrossGroupHops() int { return 3 } // adjacent cabinets: the minimum cross-group distance

func (t torus) hopsForEdges(k int) int { return 2 + k }

func (t torus) coords(g int) (x, y, z int) {
	return g % t.dx, (g / t.dx) % t.dy, g / (t.dx * t.dy)
}

func (t torus) index(x, y, z int) int { return (z*t.dy+y)*t.dx + x }

// ringDist is the shorter way around a ring of size n.
func ringDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d > n-d {
		d = n - d
	}
	return d
}

// ringStep moves coordinate c one step toward target along a ring of
// size n, the shorter way around (ties go the increasing direction).
func ringStep(c, target, n int) int {
	fwd := (target - c + n) % n
	if fwd <= n-fwd {
		return (c + 1) % n
	}
	return (c - 1 + n) % n
}

func (t torus) groupDist(ga, gb int) int {
	ax, ay, az := t.coords(ga)
	bx, by, bz := t.coords(gb)
	return ringDist(ax, bx, t.dx) + ringDist(ay, by, t.dy) + ringDist(az, bz, t.dz)
}

func (t torus) groupPath(ga, gb int, buf []int) []int {
	x, y, z := t.coords(ga)
	bx, by, bz := t.coords(gb)
	for x != bx {
		x = ringStep(x, bx, t.dx)
		buf = append(buf, t.index(x, y, z))
	}
	for y != by {
		y = ringStep(y, by, t.dy)
		buf = append(buf, t.index(x, y, z))
	}
	for z != bz {
		z = ringStep(z, bz, t.dz)
		buf = append(buf, t.index(x, y, z))
	}
	return buf
}

func (t torus) Hops(a, b int) int {
	switch ga, gb := t.Group(a), t.Group(b); {
	case a == b:
		return 0
	case ga == gb:
		return 2
	default:
		return 2 + t.groupDist(ga, gb)
	}
}

// slimFly approximates a slim-fly / flattened-butterfly diameter-2
// group graph: groups occupy a q×q grid (q = ceil(sqrt(groups)),
// row-major, the last row possibly ragged) and are adjacent iff they
// share a row or a column — O(sqrt(groups)) global links per group and
// at most two inter-group traversals between any pair. Minimal routing
// is the direct link when adjacent, else via the lower-index corner
// group completing the row/column rectangle (at least one corner
// always exists, even on a ragged grid). 2 hops within a group, 3 to
// an adjacent group, 4 otherwise.
type slimFly struct {
	groupSize int
	groups    int
	q         int
}

func newSlimFly(groupSize, groups int) slimFly {
	q := 1
	for q*q < groups {
		q++
	}
	return slimFly{groupSize: groupSize, groups: groups, q: q}
}

func (t slimFly) Name() string        { return TopoSlimFly }
func (t slimFly) groupLabel() string  { return "sf" }
func (t slimFly) Group(node int) int  { return node / t.groupSize }
func (t slimFly) CrossGroupHops() int { return 3 }

func (t slimFly) hopsForEdges(k int) int { return 2 + k }

func (t slimFly) adjacent(ga, gb int) bool {
	return ga/t.q == gb/t.q || ga%t.q == gb%t.q
}

// via returns the intermediate group of a non-adjacent pair: the
// lower-index valid corner of their row/column rectangle.
func (t slimFly) via(ga, gb int) int {
	c1 := (ga/t.q)*t.q + gb%t.q
	c2 := (gb/t.q)*t.q + ga%t.q
	if c2 < c1 {
		c1, c2 = c2, c1
	}
	if c1 < t.groups {
		return c1
	}
	return c2
}

func (t slimFly) groupPath(ga, gb int, buf []int) []int {
	if ga == gb {
		return buf
	}
	if !t.adjacent(ga, gb) {
		buf = append(buf, t.via(ga, gb))
	}
	return append(buf, gb)
}

func (t slimFly) Hops(a, b int) int {
	switch ga, gb := t.Group(a), t.Group(b); {
	case a == b:
		return 0
	case ga == gb:
		return 2
	case t.adjacent(ga, gb):
		return 3
	default:
		return 4
	}
}
