package netsim

import "fmt"

// Topology models the interconnect's switch geometry: how many switch
// hops separate two nodes, and which nodes share a switch group — the
// granularity at which the detailed fabric (EnableFabric) attaches its
// shared links. Transfers within one group ride only the endpoint NICs;
// transfers between groups additionally reserve the source group's
// egress link and the destination group's ingress link, which is where
// taper-induced contention appears.
//
// Two geometries are built in: the two-level fat tree the paper's
// Summit model always used, and a dragonfly (group-local vs. global
// links) for the Slingshot-class machines. Both group nodes in blocks
// of Config.PodSize.
type Topology interface {
	// Name is the registry key ("fattree", "dragonfly").
	Name() string
	// Hops returns the switch hop count between two nodes (0 within a
	// node).
	Hops(a, b int) int
	// Group returns the switch group of a node: the leaf pod of a fat
	// tree, the router group of a dragonfly.
	Group(node int) int
	// CrossGroupHops returns the switch hop count of the minimal route
	// between nodes in different groups — the geometry's largest (and,
	// between groups, only) hop distance. It bounds cross-group wire
	// latency from below without enumerating node pairs, which is what
	// the conservative-PDES lookahead derivation needs (MinCrossLatency).
	CrossGroupHops() int

	// groupLabel prefixes fabric link names ("pod" / "grp").
	groupLabel() string
}

// Topology registry names. Config.Topology selects one; empty means
// TopoFatTree, which reproduces the pre-topology hop model exactly.
const (
	TopoFatTree   = "fattree"
	TopoDragonfly = "dragonfly"
)

// TopologyByName resolves a topology name with the given group size
// (nodes per leaf pod / router group). Empty selects the fat tree.
func TopologyByName(name string, groupSize int) (Topology, error) {
	if groupSize <= 0 {
		return nil, fmt.Errorf("netsim: topology needs a positive group size, got %d", groupSize)
	}
	switch name {
	case "", TopoFatTree:
		return fatTree{groupSize: groupSize}, nil
	case TopoDragonfly:
		return dragonfly{groupSize: groupSize}, nil
	default:
		return nil, fmt.Errorf("netsim: unknown topology %q (have: %s, %s)",
			name, TopoFatTree, TopoDragonfly)
	}
}

// fatTree is the two-level fat tree: nodes under a leaf switch (pod),
// leaves under a spine layer. 2 hops within a pod (node-leaf-node),
// 4 across pods (node-leaf-spine-leaf-node).
type fatTree struct{ groupSize int }

func (t fatTree) Name() string        { return TopoFatTree }
func (t fatTree) groupLabel() string  { return "pod" }
func (t fatTree) Group(node int) int  { return node / t.groupSize }
func (t fatTree) CrossGroupHops() int { return 4 }

func (t fatTree) Hops(a, b int) int {
	switch {
	case a == b:
		return 0
	case t.Group(a) == t.Group(b):
		return 2
	default:
		return 4
	}
}

// dragonfly is a minimal-route dragonfly: all-to-all router links
// within a group, one global-link hop between groups. 2 hops within a
// group (node-router-node), 3 on the minimal cross-group route
// (node-router-global-router-node adds one switch traversal over the
// in-group path).
type dragonfly struct{ groupSize int }

func (t dragonfly) Name() string        { return TopoDragonfly }
func (t dragonfly) groupLabel() string  { return "grp" }
func (t dragonfly) Group(node int) int  { return node / t.groupSize }
func (t dragonfly) CrossGroupHops() int { return 3 }

func (t dragonfly) Hops(a, b int) int {
	switch {
	case a == b:
		return 0
	case t.Group(a) == t.Group(b):
		return 2
	default:
		return 3
	}
}
