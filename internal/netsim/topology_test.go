package netsim

import (
	"strings"
	"testing"

	"gat/internal/sim"
)

func TestTopologyByName(t *testing.T) {
	for _, name := range []string{"", TopoFatTree, TopoDragonfly, TopoTorus, TopoSlimFly} {
		topo, err := TopologyByName(name, 4, 16)
		if err != nil {
			t.Fatalf("TopologyByName(%q): %v", name, err)
		}
		if name != "" && topo.Name() != name {
			t.Fatalf("TopologyByName(%q).Name() = %q", name, topo.Name())
		}
	}
	if topo, _ := TopologyByName("", 4, 16); topo.Name() != TopoFatTree {
		t.Fatalf("empty topology name should default to %s, got %s", TopoFatTree, topo.Name())
	}
	if _, err := TopologyByName("hypercube", 4, 16); err == nil || !strings.Contains(err.Error(), "hypercube") {
		t.Fatalf("unknown topology should error naming it, got %v", err)
	}
	if _, err := TopologyByName(TopoFatTree, 0, 16); err == nil {
		t.Fatal("zero group size should error")
	}
}

func TestDragonflyHops(t *testing.T) {
	cfg := testConfig() // pod size 2
	cfg.Topology = TopoDragonfly
	e := sim.NewEngine()
	n := New(e, cfg, 8)
	if h := n.Hops(3, 3); h != 0 {
		t.Fatalf("same-node hops = %d, want 0", h)
	}
	if h := n.Hops(0, 1); h != 2 {
		t.Fatalf("same-group hops = %d, want 2", h)
	}
	// Dragonfly minimal route: one global-link traversal, 3 switch
	// hops — shorter than the fat tree's 4.
	if h := n.Hops(0, 5); h != 3 {
		t.Fatalf("cross-group hops = %d, want 3", h)
	}
	ft := New(sim.NewEngine(), testConfig(), 8)
	if n.Latency(0, 5) >= ft.Latency(0, 5) {
		t.Fatalf("dragonfly cross-group latency (%v) should undercut the fat tree (%v)",
			n.Latency(0, 5), ft.Latency(0, 5))
	}
}

func TestUnknownTopologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown Config.Topology did not panic in New")
		}
	}()
	New(sim.NewEngine(), Config{InjectionBW: 1e9, IntraNodeBW: 1e9, Topology: "hypercube"}, 2)
}

func TestDragonflyFabricCongests(t *testing.T) {
	// The tapered-contention effect must survive the topology swap:
	// two flows from one dragonfly group share its global links.
	run := func(taper float64) sim.Time {
		cfg := testConfig()
		cfg.Topology = TopoDragonfly
		e := sim.NewEngine()
		n := New(e, cfg, 4)
		n.EnableFabric(FabricConfig{Taper: taper})
		var last sim.Time
		for _, src := range []int{0, 1} {
			n.Transfer(src, 2+src%2, 1000, sim.FiredSignal()).OnFire(e, func() { last = e.Now() })
		}
		e.Run()
		return last
	}
	if full, tapered := run(1), run(4); tapered <= full {
		t.Fatalf("tapered dragonfly (%v) should be slower than full provisioning (%v)", tapered, full)
	}
}

func TestDragonflyFabricLinkNames(t *testing.T) {
	cfg := testConfig()
	cfg.Topology = TopoDragonfly
	e := sim.NewEngine()
	n := New(e, cfg, 4)
	f := n.EnableFabric(FabricConfig{Taper: 1})
	for name := range f.Utilizations() {
		if !strings.HasPrefix(name, "grp") {
			t.Fatalf("dragonfly fabric link named %q, want grp* prefix", name)
		}
	}
}

func TestFabricTaperDerivesUplinkBW(t *testing.T) {
	// Taper 2 over 1 link: the group's aggregate injection (2 nodes x
	// 1e9) halved.
	e := sim.NewEngine()
	n := New(e, testConfig(), 4)
	f := n.EnableFabric(FabricConfig{Taper: 2})
	if got := f.Config().UplinkBW; got != 1e9 {
		t.Fatalf("derived uplink BW = %g, want 1e9 (2 nodes * 1e9 / taper 2)", got)
	}
	// Explicit UplinkBW wins over Taper.
	e2 := sim.NewEngine()
	n2 := New(e2, testConfig(), 4)
	if got := n2.EnableFabric(FabricConfig{UplinkBW: 3e9, Taper: 2}).Config().UplinkBW; got != 3e9 {
		t.Fatalf("explicit uplink BW overridden: got %g, want 3e9", got)
	}
}

func TestEnableFabricOddNodeCount(t *testing.T) {
	// 5 nodes at pod size 2: the trailing partial pod must still get
	// links and route traffic.
	e := sim.NewEngine()
	n := New(e, testConfig(), 5)
	f := n.EnableFabric(fabricConfig())
	if got := len(f.up); got != 3 {
		t.Fatalf("5 nodes / pod size 2 built %d pods, want 3", got)
	}
	var at sim.Time
	n.Transfer(0, 4, 500, sim.FiredSignal()).OnFire(e, func() { at = e.Now() })
	e.Run()
	if at == 0 {
		t.Fatal("transfer to the partial pod never arrived")
	}
	if max, _ := n.LinkUtilization(); max <= 0 {
		t.Fatal("partial-pod transfer left no fabric utilization")
	}
}

func TestFabricFlowHashingSpreadsLinks(t *testing.T) {
	// With 4 parallel uplinks and many distinct (src, dst) flows, the
	// hash must actually use more than one link per group — on every
	// topology's link set, since each builds its own claim sequence.
	for _, topo := range []string{TopoFatTree, TopoDragonfly, TopoTorus, TopoSlimFly} {
		t.Run(topo, func(t *testing.T) {
			e := sim.NewEngine()
			cfg := testConfig()
			cfg.PodSize = 8
			cfg.Topology = topo
			n := New(e, cfg, 16)
			fc := fabricConfig()
			fc.UplinksPerPod = 4
			f := n.EnableFabric(fc)
			for src := 0; src < 8; src++ {
				n.Transfer(src, 8+src, 100, sim.FiredSignal())
			}
			e.Run()
			busy := map[string]bool{}
			for name, u := range f.Utilizations() {
				if u > 0 && strings.Contains(name, "/up") {
					busy[name] = true
				}
			}
			if len(busy) < 2 {
				t.Fatalf("%s: 8 distinct flows used %d of 4 uplinks; hashing does not spread", topo, len(busy))
			}
		})
	}
}

func TestEnableFabricAfterTrafficPanics(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, testConfig(), 4)
	n.Transfer(0, 2, 100, sim.FiredSignal())
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("EnableFabric after traffic did not panic")
		}
	}()
	n.EnableFabric(fabricConfig())
}

func TestUtilizationSummary(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, testConfig(), 4)
	f := n.EnableFabric(fabricConfig())
	n.Transfer(0, 2, 1000, sim.FiredSignal())
	e.Run()
	max, mean := f.UtilizationSummary()
	if max <= 0 || mean <= 0 {
		t.Fatalf("summary after cross-pod traffic: max=%g mean=%g, want both > 0", max, mean)
	}
	if mean > max {
		t.Fatalf("mean (%g) exceeds max (%g)", mean, max)
	}
	// 4 links total, 2 busy with equal windows: mean is half the max.
	if diff := mean - max/2; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("mean = %g, want max/2 = %g", mean, max/2)
	}
	nm := New(sim.NewEngine(), testConfig(), 4)
	if mx, mn := nm.LinkUtilization(); mx != 0 || mn != 0 {
		t.Fatalf("NIC-only LinkUtilization = %g/%g, want zeros", mx, mn)
	}
}
