package charm

import (
	"testing"

	"gat/internal/machine"
	"gat/internal/sim"
)

// testOptions uses round numbers for exact assertions.
func testOptions() Options {
	return Options{
		SchedOverhead:      10,
		EntryOverhead:      5,
		MsgHostOverhead:    7,
		HAPIRegister:       3,
		HostCopyBW:         1e9,     // 1 B/ns
		EagerThreshold:     1 << 30, // everything eager in unit tests
		RendezvousHostCost: 50,
		Envelope:           0,
	}
}

func testMachine(nodes int) *machine.Machine {
	cfg := machine.Summit(nodes)
	// Zero out network noise for exact PE arithmetic where needed.
	return machine.MustNew(cfg)
}

func newTestRuntime(nodes int) *Runtime {
	return NewRuntime(testMachine(nodes), testOptions())
}

func TestPERunsTasksInPriorityOrder(t *testing.T) {
	rt := newTestRuntime(1)
	pe := rt.PE(0)
	var order []string
	// Occupy the PE so subsequent enqueues pile up in the queue.
	pe.Enqueue(PrioNormal, 100, "first", nil, func(ctx *Ctx) {})
	pe.Enqueue(PrioNormal, 1, "normal", nil, func(ctx *Ctx) { order = append(order, "normal") })
	pe.Enqueue(PrioHigh, 1, "high", nil, func(ctx *Ctx) { order = append(order, "high") })
	rt.Engine().Run()
	if len(order) != 2 || order[0] != "high" || order[1] != "normal" {
		t.Fatalf("order = %v, want [high normal]", order)
	}
}

func TestPESerializesTasks(t *testing.T) {
	rt := newTestRuntime(1)
	pe := rt.PE(0)
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		pe.Enqueue(PrioNormal, 0, "t", nil, func(ctx *Ctx) {
			ctx.Charge(100)
			ctx.Do(func() { ends = append(ends, ctx.Engine().Now()) })
		})
	}
	rt.Engine().Run()
	want := []sim.Time{100, 200, 300}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if pe.BusyTime() != 300 {
		t.Fatalf("busy = %v, want 300", pe.BusyTime())
	}
	if pe.TasksRun() != 3 {
		t.Fatalf("tasks = %d, want 3", pe.TasksRun())
	}
}

func TestCtxChargeStaggersEffects(t *testing.T) {
	rt := newTestRuntime(1)
	pe := rt.PE(0)
	var at1, at2 sim.Time
	pe.Enqueue(PrioNormal, 0, "t", nil, func(ctx *Ctx) {
		ctx.Charge(50)
		ctx.Do(func() { at1 = ctx.Engine().Now() })
		ctx.Charge(25)
		ctx.Do(func() { at2 = ctx.Engine().Now() })
	})
	rt.Engine().Run()
	if at1 != 50 || at2 != 75 {
		t.Fatalf("effects at %v/%v, want 50/75", at1, at2)
	}
}

func TestCtxBlockStallsPE(t *testing.T) {
	rt := newTestRuntime(1)
	pe := rt.PE(0)
	sig := sim.NewSignal()
	var secondAt sim.Time
	pe.Enqueue(PrioNormal, 0, "sync", nil, func(ctx *Ctx) {
		ctx.Charge(10)
		ctx.Block(sig) // models cudaStreamSynchronize
	})
	pe.Enqueue(PrioNormal, 0, "later", nil, func(ctx *Ctx) {
		secondAt = ctx.Engine().Now()
	})
	rt.Engine().Schedule(500, func() { sig.Fire(rt.Engine()) })
	rt.Engine().Run()
	if secondAt != 500 {
		t.Fatalf("blocked task ran at %v, want 500", secondAt)
	}
}

func TestCtxBlockAlreadyFiredDoesNotStall(t *testing.T) {
	rt := newTestRuntime(1)
	pe := rt.PE(0)
	var secondAt sim.Time
	pe.Enqueue(PrioNormal, 0, "sync", nil, func(ctx *Ctx) {
		ctx.Charge(10)
		ctx.Block(sim.FiredSignal())
	})
	pe.Enqueue(PrioNormal, 0, "later", nil, func(ctx *Ctx) {
		secondAt = ctx.Engine().Now()
	})
	rt.Engine().Run()
	if secondAt != 10 {
		t.Fatalf("task after no-op sync ran at %v, want 10", secondAt)
	}
}

func TestLaunchKernelChargesHostAndRuns(t *testing.T) {
	rt := newTestRuntime(1)
	pe := rt.PE(0)
	dev := rt.M.GPUOf(0)
	stream := dev.NewStream("s", 1)
	launchHost := dev.Config().KernelLaunchHost
	dispatch := dev.Config().KernelDispatch
	var kernelDone, peFree sim.Time
	pe.Enqueue(PrioNormal, 0, "launcher", nil, func(ctx *Ctx) {
		ctx.LaunchKernel(stream, "k", 1000).OnFire(ctx.Engine(), func() {
			kernelDone = ctx.Engine().Now()
		})
	})
	pe.Enqueue(PrioNormal, 0, "next", nil, func(ctx *Ctx) {
		peFree = ctx.Engine().Now()
	})
	rt.Engine().Run()
	if want := sim.Time(launchHost) + dispatch + 1000; kernelDone != want {
		t.Fatalf("kernel done at %v, want %v", kernelDone, want)
	}
	// The PE is free as soon as the launch overhead is paid — it does
	// not wait for the kernel (asynchronous completion, Fig 4).
	if peFree != launchHost {
		t.Fatalf("PE free at %v, want %v (async completion)", peFree, launchHost)
	}
}

func TestHAPICallbackDeliveredThroughQueue(t *testing.T) {
	rt := newTestRuntime(1)
	pe := rt.PE(0)
	dev := rt.M.GPUOf(0)
	stream := dev.NewStream("s", 1)
	var cbAt sim.Time
	pe.Enqueue(PrioNormal, 0, "launcher", nil, func(ctx *Ctx) {
		ctx.LaunchKernel(stream, "k", 1000)
		ctx.HAPICallback(stream, "done", func(ctx2 *Ctx) {
			cbAt = ctx2.Engine().Now()
		})
	})
	rt.Engine().Run()
	cfg := dev.Config()
	// Kernel ends at launchHost + dispatch + 1000; callback is enqueued
	// then pays scheduling overhead before running.
	earliest := cfg.KernelLaunchHost + cfg.KernelDispatch + 1000
	if cbAt < earliest {
		t.Fatalf("HAPI callback at %v, before kernel completion %v", cbAt, earliest)
	}
	if cbAt > earliest+sim.Microsecond {
		t.Fatalf("HAPI callback at %v, too long after completion %v", cbAt, earliest)
	}
}

func TestArrayBlockMapping(t *testing.T) {
	rt := newTestRuntime(2) // 12 PEs
	a := NewArray(rt, "blk", [3]int{4, 3, 2}, nil, func(ix Index) any { return nil })
	if a.Len() != 24 {
		t.Fatalf("len = %d, want 24", a.Len())
	}
	// 24 elements over 12 PEs: 2 consecutive elements per PE.
	for flat := 0; flat < 24; flat++ {
		el := a.elems[flat]
		if el.PE() != flat/2 {
			t.Fatalf("elem %d on PE %d, want %d", flat, el.PE(), flat/2)
		}
	}
	if got := len(a.ElemsOnPE(3)); got != 2 {
		t.Fatalf("PE 3 has %d elems, want 2", got)
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	rt := newTestRuntime(1)
	a := NewArray(rt, "blk", [3]int{3, 4, 5}, nil, func(ix Index) any { return nil })
	for flat := 0; flat < a.Len(); flat++ {
		ix := a.Unflatten(flat)
		if a.Flatten(ix) != flat {
			t.Fatalf("round trip failed at %d -> %v", flat, ix)
		}
	}
}

func TestSendLocalAndRemote(t *testing.T) {
	rt := newTestRuntime(2)
	var gotLocal, gotRemote sim.Time
	entries := []EntryFn{
		func(el *Elem, ctx *Ctx, m Msg) { // 0: receiver
			if el.PE() == 0 {
				gotLocal = ctx.Engine().Now()
			} else {
				gotRemote = ctx.Engine().Now()
			}
		},
		func(el *Elem, ctx *Ctx, m Msg) { // 1: sender
			ctx.Send(el.Arr, Index{0, 0, 0}, Msg{Entry: 0})
			ctx.Send(el.Arr, Index{11, 0, 0}, Msg{Entry: 0}) // PE 11, node 1
		},
	}
	a := NewArray(rt, "blk", [3]int{12, 1, 1}, entries, func(ix Index) any { return nil })
	a.Invoke(Index{0, 0, 0}, Msg{Entry: 1})
	rt.Engine().Run()
	if gotLocal == 0 || gotRemote == 0 {
		t.Fatal("both sends must be delivered")
	}
	if gotRemote <= gotLocal {
		t.Fatalf("remote (%v) should arrive after local (%v)", gotRemote, gotLocal)
	}
}

func TestBroadcastReachesAll(t *testing.T) {
	rt := newTestRuntime(1)
	count := 0
	entries := []EntryFn{
		func(el *Elem, ctx *Ctx, m Msg) { count++ },
	}
	a := NewArray(rt, "blk", [3]int{2, 2, 2}, entries, func(ix Index) any { return nil })
	a.Broadcast(Msg{Entry: 0})
	rt.Engine().Run()
	if count != 8 {
		t.Fatalf("broadcast reached %d elements, want 8", count)
	}
}

func TestPayloadCostScalesWithBytes(t *testing.T) {
	rt := newTestRuntime(1)
	big, small := sim.Time(0), sim.Time(0)
	entries := []EntryFn{
		func(el *Elem, ctx *Ctx, m Msg) {},
		func(el *Elem, ctx *Ctx, m Msg) {
			before := ctx.Clock()
			ctx.Send(el.Arr, Index{1, 0, 0}, Msg{Entry: 0, Bytes: m.Bytes})
			if m.Ref == 0 {
				small = ctx.Clock() - before
			} else {
				big = ctx.Clock() - before
			}
		},
	}
	a := NewArray(rt, "blk", [3]int{2, 1, 1}, entries, func(ix Index) any { return nil })
	a.Invoke(Index{0, 0, 0}, Msg{Entry: 1, Ref: 0, Bytes: 100})
	a.Invoke(Index{0, 0, 0}, Msg{Entry: 1, Ref: 1, Bytes: 10000})
	rt.Engine().Run()
	if big <= small {
		t.Fatalf("large payload send cost (%v) should exceed small (%v)", big, small)
	}
}
