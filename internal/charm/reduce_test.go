package charm

import (
	"testing"

	"gat/internal/sim"
)

// reductionFixture builds an array whose single entry contributes to a
// reduction for the message's Ref epoch.
func reductionFixture(t *testing.T, nodes, elems int) (*Runtime, *Array, *Reduction) {
	t.Helper()
	rt := newTestRuntime(nodes)
	a := NewArray(rt, "r", [3]int{elems, 1, 1}, nil, func(ix Index) any { return nil })
	red := NewReduction(a, 8)
	a.entries = []EntryFn{
		func(el *Elem, ctx *Ctx, m Msg) { red.Contribute(ctx, m.Ref) },
	}
	return rt, a, red
}

func TestReductionFiresOnceAllContribute(t *testing.T) {
	rt, a, red := reductionFixture(t, 2, 24)
	var firedAt sim.Time = -1
	red.Expect(0, func(ctx *Ctx) { firedAt = ctx.Engine().Now() })
	a.Broadcast(Msg{Entry: 0, Ref: 0})
	rt.Engine().Run()
	if firedAt < 0 {
		t.Fatal("reduction never fired")
	}
	if !red.Done(0) {
		t.Fatal("Done(0) should report true")
	}
}

func TestReductionWaitsForLastContribution(t *testing.T) {
	rt, a, red := reductionFixture(t, 1, 6)
	fired := false
	red.Expect(0, func(ctx *Ctx) { fired = true })
	// All but one element contribute.
	for _, el := range a.Elems()[:5] {
		a.Invoke(el.Idx, Msg{Entry: 0, Ref: 0})
	}
	rt.Engine().Run()
	if fired {
		t.Fatal("reduction fired before the last contribution")
	}
	a.Invoke(a.Elems()[5].Idx, Msg{Entry: 0, Ref: 0})
	rt.Engine().Run()
	if !fired {
		t.Fatal("reduction did not fire after the last contribution")
	}
}

func TestReductionSeparateEpochs(t *testing.T) {
	rt, a, red := reductionFixture(t, 1, 6)
	order := make([]int, 0, 2)
	red.Expect(0, func(ctx *Ctx) { order = append(order, 0) })
	red.Expect(1, func(ctx *Ctx) { order = append(order, 1) })
	a.Broadcast(Msg{Entry: 0, Ref: 0})
	a.Broadcast(Msg{Entry: 0, Ref: 1})
	rt.Engine().Run()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("epoch completion order = %v", order)
	}
}

func TestReductionOverContributionPanics(t *testing.T) {
	rt, a, _ := reductionFixture(t, 1, 6)
	a.Broadcast(Msg{Entry: 0, Ref: 0})
	a.Invoke(a.Elems()[0].Idx, Msg{Entry: 0, Ref: 0}) // 7th contribution
	defer func() {
		if recover() == nil {
			t.Error("over-contribution did not panic")
		}
	}()
	rt.Engine().Run()
}

func TestReductionTakesTimeAcrossNodes(t *testing.T) {
	// A cross-node reduction must consume virtual time (tree messages).
	rt, a, red := reductionFixture(t, 4, 24)
	var firedAt sim.Time
	red.Expect(0, func(ctx *Ctx) { firedAt = ctx.Engine().Now() })
	a.Broadcast(Msg{Entry: 0, Ref: 0})
	rt.Engine().Run()
	if firedAt <= 0 {
		t.Fatalf("cross-node reduction fired at %v, want > 0", firedAt)
	}
}
