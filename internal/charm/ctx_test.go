package charm

import (
	"testing"

	"gat/internal/gpu"
	"gat/internal/sim"
)

func TestEnqueueCopyGatedOnSignal(t *testing.T) {
	rt := newTestRuntime(1)
	pe := rt.PE(0)
	dev := rt.M.GPUOf(0)
	s := dev.NewStream("cp", gpu.PriorityHigh)
	gate := sim.NewSignal()
	var copyAt sim.Time
	pe.Enqueue(PrioNormal, 0, "t", nil, func(ctx *Ctx) {
		ctx.EnqueueCopy(s, gpu.D2H, 1000, gate).OnFire(ctx.Engine(), func() {
			copyAt = ctx.Engine().Now()
		})
	})
	rt.Engine().Schedule(time500(), func() { gate.Fire(rt.Engine()) })
	rt.Engine().Run()
	if copyAt <= time500() {
		t.Fatalf("gated copy completed at %v, before gate at %v", copyAt, time500())
	}
}

func time500() sim.Time { return 500 * sim.Microsecond }

func TestEnqueueCopyUngated(t *testing.T) {
	rt := newTestRuntime(1)
	pe := rt.PE(0)
	dev := rt.M.GPUOf(0)
	s := dev.NewStream("cp", gpu.PriorityHigh)
	var copyAt sim.Time
	pe.Enqueue(PrioNormal, 0, "t", nil, func(ctx *Ctx) {
		ctx.EnqueueCopy(s, gpu.H2D, 1000, nil).OnFire(ctx.Engine(), func() {
			copyAt = ctx.Engine().Now()
		})
	})
	rt.Engine().Run()
	if copyAt <= 0 {
		t.Fatal("ungated copy never completed")
	}
}

func TestGateStreamOrdersAcrossStreams(t *testing.T) {
	rt := newTestRuntime(1)
	pe := rt.PE(0)
	dev := rt.M.GPUOf(0)
	prod := dev.NewStream("prod", gpu.PriorityNormal)
	cons := dev.NewStream("cons", gpu.PriorityNormal)
	var prodDone, consDone sim.Time
	pe.Enqueue(PrioNormal, 0, "t", nil, func(ctx *Ctx) {
		p := ctx.LaunchKernel(prod, "produce", 100*sim.Microsecond)
		p.OnFire(ctx.Engine(), func() { prodDone = ctx.Engine().Now() })
		ctx.GateStream(cons, p)
		ctx.LaunchKernel(cons, "consume", sim.Microsecond).OnFire(ctx.Engine(), func() {
			consDone = ctx.Engine().Now()
		})
	})
	rt.Engine().Run()
	if consDone <= prodDone {
		t.Fatalf("consumer (%v) ran before producer finished (%v)", consDone, prodDone)
	}
}

func TestPostRunsAsSeparateTask(t *testing.T) {
	rt := newTestRuntime(1)
	pe := rt.PE(0)
	var tasks []uint64
	pe.Enqueue(PrioNormal, 0, "t", nil, func(ctx *Ctx) {
		ctx.Charge(100)
		ctx.Post(PrioNormal, "cont", func(ctx2 *Ctx) {
			tasks = append(tasks, pe.TasksRun())
		})
	})
	rt.Engine().Run()
	if len(tasks) != 1 || tasks[0] != 2 {
		t.Fatalf("continuation should be the PE's 2nd task: %v", tasks)
	}
}

func TestCommCallbackRunsOnOwnPE(t *testing.T) {
	rt := newTestRuntime(2)
	pe := rt.PE(3)
	var ranOn int = -1
	pe.Enqueue(PrioNormal, 0, "t", nil, func(ctx *Ctx) {
		cb := ctx.CommCallback("recv", func(ctx2 *Ctx) { ranOn = ctx2.PE().ID() })
		// Simulate a comm-layer completion from event context elsewhere.
		ctx.Engine().Schedule(50, cb)
	})
	rt.Engine().Run()
	if ranOn != 3 {
		t.Fatalf("callback ran on PE %d, want 3", ranOn)
	}
}

func TestElemLoadAccounting(t *testing.T) {
	rt := newTestRuntime(1)
	a := NewArray(rt, "l", [3]int{6, 1, 1}, []EntryFn{
		func(el *Elem, ctx *Ctx, m Msg) {
			ctx.Charge(100)
			s := rt.M.GPUOf(el.PE()).NewStream("s", gpu.PriorityNormal)
			ctx.LaunchKernel(s, "k", 5000)
		},
	}, func(ix Index) any { return nil })
	a.Invoke(Index{2, 0, 0}, Msg{Entry: 0})
	rt.Engine().Run()
	el := a.Elem(Index{2, 0, 0})
	if el.GPULoad != 5000 {
		t.Fatalf("GPULoad = %v, want 5000", el.GPULoad)
	}
	if el.Busy <= 100 {
		t.Fatalf("Busy = %v, want > 100 (includes launch overhead)", el.Busy)
	}
	if el.Load() != el.Busy+el.GPULoad {
		t.Fatal("Load() mismatch")
	}
}

func TestHAPIIsHighPriority(t *testing.T) {
	// A HAPI completion callback must bypass queued normal-priority
	// entries (communication-first scheduling, §III-A).
	rt := newTestRuntime(1)
	pe := rt.PE(0)
	dev := rt.M.GPUOf(0)
	s := dev.NewStream("s", gpu.PriorityNormal)
	var order []string
	pe.Enqueue(PrioNormal, 0, "launcher", nil, func(ctx *Ctx) {
		ctx.LaunchKernel(s, "k", sim.Microsecond)
		ctx.HAPICallback(s, "done", func(*Ctx) { order = append(order, "hapi") })
		// Stuff the queue with slow normal tasks; they outlast the
		// kernel, so the HAPI callback lands while they are queued.
		for i := 0; i < 3; i++ {
			pe.Enqueue(PrioNormal, 20*sim.Microsecond, "slow", nil, func(*Ctx) {
				order = append(order, "slow")
			})
		}
	})
	rt.Engine().Run()
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	if order[0] == "hapi" {
		t.Fatal("hapi should not run before any queued task (kernel still in flight)")
	}
	pos := -1
	for i, s := range order {
		if s == "hapi" {
			pos = i
		}
	}
	if pos == len(order)-1 {
		t.Fatalf("hapi ran last — priority bypass failed: %v", order)
	}
}
