package charm

import (
	"gat/internal/sim"
)

// Reduction implements Charm++-style contributions: every element of an
// array contributes once per epoch; local contributions are aggregated
// on each PE and combined up a binary tree of PEs with small runtime
// messages; the root fires a completion callback. This is the
// mechanism behind CkCallback-based reductions (used for residual
// checks and termination detection in real Charm++ applications).
type Reduction struct {
	arr     *Array
	payload int64 // per-message contribution size in bytes

	epoch   int
	pending map[int]*reduceEpoch
}

type reduceEpoch struct {
	localLeft map[int]int // PE -> outstanding local contributions
	kidsLeft  map[int]int // PE -> outstanding child-tree messages
	done      func(*Ctx)
	fired     bool
}

// NewReduction creates a reduction context over the array with the
// given contribution payload size.
func NewReduction(arr *Array, payload int64) *Reduction {
	return &Reduction{arr: arr, payload: payload, pending: make(map[int]*reduceEpoch)}
}

// tree topology over PEs: parent(p) = (p-1)/2.
func reduceParent(pe int) int { return (pe - 1) / 2 }

func reduceChildren(pe, numPE int) []int {
	var out []int
	for _, c := range []int{2*pe + 1, 2*pe + 2} {
		if c < numPE {
			out = append(out, c)
		}
	}
	return out
}

// epochState lazily builds the bookkeeping for an epoch.
func (r *Reduction) epochState(epoch int) *reduceEpoch {
	st, ok := r.pending[epoch]
	if !ok {
		st = &reduceEpoch{localLeft: make(map[int]int), kidsLeft: make(map[int]int)}
		numPE := r.arr.rt.NumPEs()
		for pe := 0; pe < numPE; pe++ {
			st.kidsLeft[pe] = len(reduceChildren(pe, numPE))
		}
		for _, el := range r.arr.Elems() {
			st.localLeft[el.PE()]++
		}
		r.pending[epoch] = st
	}
	return st
}

// Expect registers the root callback for an epoch. It must be called
// before (or in the same event cascade as) the epoch's contributions
// complete.
func (r *Reduction) Expect(epoch int, done func(*Ctx)) {
	st := r.epochState(epoch)
	st.done = done
}

// Contribute records one element's contribution for the epoch from
// within an entry method. When the last local contribution on a PE
// arrives and all child-tree messages are in, the PE forwards one
// message toward the root; the root runs the epoch callback.
func (r *Reduction) Contribute(ctx *Ctx, epoch int) {
	st := r.epochState(epoch)
	pe := ctx.PE().ID()
	if st.localLeft[pe] <= 0 {
		panic("charm: element over-contributed to reduction")
	}
	st.localLeft[pe]--
	r.maybeForward(ctx, st, pe)
}

// arriveFromChild processes a tree message from a child PE.
func (r *Reduction) arriveFromChild(ctx *Ctx, st *reduceEpoch, pe int) {
	st.kidsLeft[pe]--
	r.maybeForward(ctx, st, pe)
}

func (r *Reduction) maybeForward(ctx *Ctx, st *reduceEpoch, pe int) {
	if st.localLeft[pe] != 0 || st.kidsLeft[pe] != 0 {
		return
	}
	st.localLeft[pe] = -1 // mark forwarded; a PE folds exactly once
	rt := r.arr.rt
	if pe == 0 {
		if st.fired {
			panic("charm: reduction root fired twice")
		}
		st.fired = true
		if st.done != nil {
			st.done(ctx)
		}
		return
	}
	// Forward the partial result to the parent PE as a small
	// high-priority runtime message.
	parent := reduceParent(pe)
	ctx.Charge(rt.Opt.MsgHostOverhead)
	eng := rt.Engine()
	at := ctx.Clock()
	eng.At(at, func() {
		srcNode := rt.M.NodeOf(pe)
		dstNode := rt.M.NodeOf(parent)
		size := r.payload + rt.Opt.Envelope
		deliver := func() {
			rt.PE(parent).Enqueue(PrioHigh, rt.Opt.SchedOverhead, "reduce", nil, func(ctx *Ctx) {
				r.arriveFromChild(ctx, st, parent)
			})
		}
		if srcNode == dstNode && pe == parent {
			deliver()
			return
		}
		rt.M.Net.Transfer(srcNode, dstNode, size, sim.FiredSignal()).OnFire(eng, func() { deliver() })
	})
}

// Done reports whether the epoch's reduction has completed at the root.
func (r *Reduction) Done(epoch int) bool {
	st, ok := r.pending[epoch]
	return ok && st.fired
}
