package charm

import (
	"gat/internal/gpu"
	"gat/internal/sim"
)

// Ctx is the execution context of one entry-method invocation. It
// accumulates the host time the handler consumes on its PE: every call
// that costs CPU time advances the clock, and every side effect (kernel
// enqueue, message injection) is scheduled at the clock value it would
// occur at on real hardware. The PE stays busy until the final clock.
type Ctx struct {
	pe      *PE
	elem    *Elem
	clock   sim.Time
	blockOn *sim.Signal
}

// PE returns the executing processing element.
func (ctx *Ctx) PE() *PE { return ctx.pe }

// Elem returns the chare element this invocation targets, or nil for
// runtime callbacks.
func (ctx *Ctx) Elem() *Elem { return ctx.elem }

// Runtime returns the owning runtime.
func (ctx *Ctx) Runtime() *Runtime { return ctx.pe.rt }

// Engine returns the simulation engine.
func (ctx *Ctx) Engine() *sim.Engine { return ctx.pe.rt.Engine() }

// Clock returns the handler's current staggered completion time.
func (ctx *Ctx) Clock() sim.Time { return ctx.clock }

// Charge adds host compute time to the handler.
func (ctx *Ctx) Charge(d sim.Time) {
	if d > 0 {
		ctx.clock += d
	}
}

// Do schedules fn to run at the handler's current clock, after the host
// work charged so far.
func (ctx *Ctx) Do(fn func()) {
	ctx.Engine().At(ctx.clock, fn)
}

// Block stalls the PE after this handler finishes until sig fires —
// the cudaStreamSynchronize pattern. A blocked PE processes no messages,
// which is exactly the lost overlap the paper's Fig 4 illustrates.
func (ctx *Ctx) Block(sig *sim.Signal) {
	ctx.blockOn = sig
}

// LaunchKernel charges the kernel launch host overhead and enqueues the
// kernel on the stream at the staggered instant. It returns the kernel's
// completion signal.
func (ctx *Ctx) LaunchKernel(s *gpu.Stream, label string, dur sim.Time) *sim.Signal {
	cfg := s.Device().Config()
	ctx.clock += cfg.KernelLaunchHost
	if ctx.elem != nil {
		ctx.elem.GPULoad += dur
	}
	out := sim.NewSignal()
	eng := ctx.Engine()
	eng.At(ctx.clock, func() {
		s.Kernel(label, dur).Chain(eng, out)
	})
	return out
}

// LaunchKernelBytes is LaunchKernel with a roofline-derived duration.
func (ctx *Ctx) LaunchKernelBytes(s *gpu.Stream, label string, bytes int64) *sim.Signal {
	return ctx.LaunchKernel(s, label, s.Device().KernelTime(bytes))
}

// EnqueueCopy charges the async-copy host overhead and enqueues a DMA
// transfer, optionally gated on after (pass nil for no gate).
func (ctx *Ctx) EnqueueCopy(s *gpu.Stream, dir gpu.CopyDir, bytes int64, after *sim.Signal) *sim.Signal {
	cfg := s.Device().Config()
	ctx.clock += cfg.CopyLaunchHost
	out := sim.NewSignal()
	eng := ctx.Engine()
	eng.At(ctx.clock, func() {
		if after != nil {
			s.WaitSignal(after)
		}
		s.Copy(dir, bytes).Chain(eng, out)
	})
	return out
}

// LaunchGraph charges the graph launch host overhead and enqueues one
// execution of g.
func (ctx *Ctx) LaunchGraph(s *gpu.Stream, g *gpu.Graph) *sim.Signal {
	cfg := s.Device().Config()
	ctx.clock += cfg.GraphLaunchHost + sim.Time(g.Len())*cfg.GraphNodeHost
	if ctx.elem != nil {
		ctx.elem.GPULoad += g.TotalKernelTime()
	}
	out := sim.NewSignal()
	eng := ctx.Engine()
	eng.At(ctx.clock, func() {
		s.Launch(g).Chain(eng, out)
	})
	return out
}

// GateStream makes subsequent work on s wait for sig, charging no host
// time (the dependency is enforced on the device).
func (ctx *Ctx) GateStream(s *gpu.Stream, sig *sim.Signal) {
	eng := ctx.Engine()
	eng.At(ctx.clock, func() { s.WaitSignal(sig) })
}

// HAPICallback registers fn to run as a high-priority PE task when all
// work currently enqueued on the stream (as of the handler's staggered
// clock) completes. This is the Hybrid API asynchronous completion
// mechanism (§III-A): the PE keeps scheduling other chares while the
// GPU works, and fn is delivered through the message queue like any
// other task.
func (ctx *Ctx) HAPICallback(s *gpu.Stream, label string, fn func(*Ctx)) {
	rt := ctx.pe.rt
	ctx.clock += rt.Opt.HAPIRegister
	pe := ctx.pe
	elem := ctx.elem
	eng := ctx.Engine()
	eng.At(ctx.clock, func() {
		s.OnComplete(func() {
			pe.Enqueue(PrioHigh, rt.Opt.SchedOverhead, label, elem, fn)
		})
	})
}

// Post enqueues fn as a task on this PE at the handler's staggered
// clock — the self-message pattern for continuations.
func (ctx *Ctx) Post(prio int, label string, fn func(*Ctx)) {
	rt := ctx.pe.rt
	pe := ctx.pe
	elem := ctx.elem
	ctx.Do(func() {
		pe.Enqueue(prio, rt.Opt.SchedOverhead, label, elem, fn)
	})
}

// CommCallback returns a plain closure suitable for comm.Channel
// completion hooks: when invoked it enqueues fn as a high-priority task
// on this chare's PE.
func (ctx *Ctx) CommCallback(label string, fn func(*Ctx)) func() {
	rt := ctx.pe.rt
	pe := ctx.pe
	elem := ctx.elem
	return func() {
		pe.Enqueue(PrioHigh, rt.Opt.SchedOverhead, label, elem, fn)
	}
}
