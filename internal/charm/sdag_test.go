package charm

import (
	"testing"
	"testing/quick"
)

// gateCtx builds a throwaway Ctx for gate unit tests (the gate only
// threads it through to actions).
func gateCtx(t *testing.T) *Ctx {
	t.Helper()
	rt := newTestRuntime(1)
	return &Ctx{pe: rt.PE(0)}
}

func TestGateInOrderArrivals(t *testing.T) {
	g := NewGate()
	ctx := gateCtx(t)
	var done bool
	var actions int
	g.Expect(ctx, 0, 3, func(*Ctx) { done = true })
	for i := 0; i < 3; i++ {
		g.Arrive(ctx, 0, func(*Ctx) { actions++ })
		if i < 2 && done {
			t.Fatal("gate fired early")
		}
	}
	if !done || actions != 3 {
		t.Fatalf("done=%v actions=%d", done, actions)
	}
}

func TestGateBuffersFutureRefs(t *testing.T) {
	g := NewGate()
	ctx := gateCtx(t)
	var doneRef0, doneRef1 bool
	// A fast neighbor sends iteration-1 halos before we finished
	// iteration 0.
	g.Expect(ctx, 0, 2, func(*Ctx) { doneRef0 = true })
	g.Arrive(ctx, 1, nil) // future: buffered
	g.Arrive(ctx, 0, nil)
	g.Arrive(ctx, 1, nil) // future: buffered
	if doneRef0 {
		t.Fatal("ref 0 fired with only one ref-0 arrival")
	}
	if g.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", g.Pending())
	}
	g.Arrive(ctx, 0, nil)
	if !doneRef0 {
		t.Fatal("ref 0 did not fire")
	}
	// Opening for ref 1 must replay both buffered arrivals immediately.
	g.Expect(ctx, 1, 2, func(*Ctx) { doneRef1 = true })
	if !doneRef1 {
		t.Fatal("buffered ref-1 arrivals were not replayed")
	}
	if g.Pending() != 0 {
		t.Fatalf("pending = %d after replay, want 0", g.Pending())
	}
}

func TestGateStaleArrivalPanics(t *testing.T) {
	g := NewGate()
	ctx := gateCtx(t)
	g.Expect(ctx, 5, 1, nil)
	g.Arrive(ctx, 5, nil)
	defer func() {
		if recover() == nil {
			t.Error("stale arrival did not panic")
		}
	}()
	g.Arrive(ctx, 3, nil)
}

func TestGateReopenWhileOpenPanics(t *testing.T) {
	g := NewGate()
	ctx := gateCtx(t)
	g.Expect(ctx, 0, 2, nil)
	defer func() {
		if recover() == nil {
			t.Error("re-opening open gate did not panic")
		}
	}()
	g.Expect(ctx, 1, 2, nil)
}

// Property: for any interleaving where each of N iterations receives
// exactly `need` arrivals (possibly one iteration early), the gate fires
// exactly once per iteration, in order.
func TestGateIterationProperty(t *testing.T) {
	f := func(early []bool, needRaw, itersRaw uint8) bool {
		need := int(needRaw)%4 + 1
		iters := int(itersRaw)%5 + 1
		rt := newTestRuntime(1)
		ctx := &Ctx{pe: rt.PE(0)}
		g := NewGate()
		var fired []int

		// earlyFor reports whether arrival j of iteration i is sent one
		// iteration ahead of schedule (neighbors can run at most one
		// iteration ahead under Jacobi's dependency structure).
		earlyFor := func(i, j int) bool {
			k := i*need + j
			return k < len(early) && early[k] && i > 0
		}

		var expect func(i int)
		expect = func(i int) {
			if i == iters {
				return
			}
			g.Expect(ctx, i, need, func(*Ctx) {
				fired = append(fired, i)
				expect(i + 1)
			})
			// Deliver this iteration's remaining (non-early) arrivals,
			// plus next iteration's early ones.
			for j := 0; j < need; j++ {
				if !earlyFor(i, j) {
					g.Arrive(ctx, i, nil)
				}
			}
			if i+1 < iters {
				for j := 0; j < need; j++ {
					if earlyFor(i+1, j) {
						g.Arrive(ctx, i+1, nil)
					}
				}
			}
		}
		expect(0)
		if len(fired) != iters {
			return false
		}
		for i, r := range fired {
			if r != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
