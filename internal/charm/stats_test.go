package charm

import "testing"

func TestCollectStats(t *testing.T) {
	rt := newTestRuntime(1)
	a := NewArray(rt, "s", [3]int{6, 1, 1}, []EntryFn{
		func(el *Elem, ctx *Ctx, m Msg) { ctx.Charge(100) },
	}, func(ix Index) any { return nil })
	a.Broadcast(Msg{Entry: 0})
	rt.Engine().Run()
	st := rt.Collect()
	if st.NumPEs != 6 {
		t.Fatalf("NumPEs = %d", st.NumPEs)
	}
	if st.Tasks != 6 {
		t.Fatalf("tasks = %d, want 6", st.Tasks)
	}
	if st.MsgsSent != 6 {
		t.Fatalf("msgs = %d, want 6", st.MsgsSent)
	}
	if st.BusyTotal == 0 || st.BusyMax == 0 {
		t.Fatal("busy accounting empty")
	}
	// One element per PE with equal cost: perfectly balanced.
	if im := st.Imbalance(); im < 0.99 || im > 1.01 {
		t.Fatalf("imbalance = %v, want ~1.0", im)
	}
}

func TestImbalanceDetectsSkew(t *testing.T) {
	rt := newTestRuntime(1)
	a := NewArray(rt, "s", [3]int{6, 1, 1}, []EntryFn{
		func(el *Elem, ctx *Ctx, m Msg) {
			if el.Flat == 0 {
				ctx.Charge(1000)
			} else {
				ctx.Charge(10)
			}
		},
	}, func(ix Index) any { return nil })
	a.Broadcast(Msg{Entry: 0})
	rt.Engine().Run()
	if im := rt.Collect().Imbalance(); im < 2 {
		t.Fatalf("imbalance = %v, want > 2 for skewed load", im)
	}
}

func TestStatsEmptyRuntime(t *testing.T) {
	rt := newTestRuntime(1)
	st := rt.Collect()
	if st.Imbalance() != 0 || st.Tasks != 0 {
		t.Fatal("empty runtime should report zero stats")
	}
}
