package charm

import (
	"sort"

	"gat/internal/sim"
)

// Migrate moves element ix to PE dst, transferring stateBytes of chare
// state across the machine. The element is unavailable during the move;
// messages sent after the location update routes to the new PE. done,
// if non-nil, runs when the migration completes.
//
// Migratability is the adaptive-runtime capability overdecomposition
// enables (§I): the paper uses it to motivate ODF > 1 even where
// overlap alone does not pay.
func (a *Array) Migrate(ix Index, dst int, stateBytes int64, done func()) {
	rt := a.rt
	el := a.Elem(ix)
	src := a.peOf[el.Flat]
	if dst == src {
		if done != nil {
			rt.Engine().Schedule(0, done)
		}
		return
	}
	eng := rt.Engine()
	srcNode, dstNode := rt.M.NodeOf(src), rt.M.NodeOf(dst)
	arrived := rt.M.Net.Transfer(srcNode, dstNode, stateBytes+rt.Opt.Envelope, sim.FiredSignal())
	arrived.OnFire(eng, func() {
		a.peOf[el.Flat] = dst
		if done != nil {
			done()
		}
	})
}

// GreedyAssign computes a greedy longest-processing-time assignment of
// element loads to numPE bins and returns the per-element PE choice.
// It is the classic Charm++ GreedyLB strategy.
func GreedyAssign(loads []sim.Time, numPE int) []int {
	type item struct {
		idx  int
		load sim.Time
	}
	items := make([]item, len(loads))
	for i, l := range loads {
		items[i] = item{idx: i, load: l}
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].load > items[j].load })
	binLoad := make([]sim.Time, numPE)
	out := make([]int, len(loads))
	for _, it := range items {
		best := 0
		for b := 1; b < numPE; b++ {
			if binLoad[b] < binLoad[best] {
				best = b
			}
		}
		out[it.idx] = best
		binLoad[best] += it.load
	}
	return out
}

// RefineAssign improves an existing placement by moving elements off
// overloaded PEs onto underloaded ones until the maximum bin is within
// tolerance of the average — the Charm++ RefineLB strategy. Unlike LPT
// it preserves locality: elements that are not causing imbalance stay
// put, keeping migration traffic proportional to the imbalance.
func RefineAssign(loads []sim.Time, current []int, numPE int, tolerance float64) []int {
	out := append([]int(nil), current...)
	binLoad := make([]sim.Time, numPE)
	var total sim.Time
	for i, pe := range current {
		binLoad[pe] += loads[i]
		total += loads[i]
	}
	avg := total / sim.Time(numPE)
	limit := sim.Time(float64(avg) * (1 + tolerance))
	for moves := 0; moves <= len(loads); moves++ {
		maxPE, minPE := 0, 0
		for pe := 1; pe < numPE; pe++ {
			if binLoad[pe] > binLoad[maxPE] {
				maxPE = pe
			}
			if binLoad[pe] < binLoad[minPE] {
				minPE = pe
			}
		}
		if binLoad[maxPE] <= limit {
			break
		}
		// Move the largest element on maxPE that does not overshoot the
		// receiving bin past the donor.
		gap := binLoad[maxPE] - binLoad[minPE]
		best := -1
		for i := range loads {
			if out[i] != maxPE || loads[i] <= 0 || loads[i] >= gap {
				continue
			}
			if best < 0 || loads[i] > loads[best] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out[best] = minPE
		binLoad[maxPE] -= loads[best]
		binLoad[minPE] += loads[best]
	}
	return out
}

// RebalanceGreedy measures each element's accumulated load (host busy
// time plus launched device time), computes a refined assignment,
// migrates every element whose PE changes, and fires the returned
// signal when all migrations complete. Load counters reset so the next
// period measures fresh load.
func (a *Array) RebalanceGreedy(stateBytes int64) *sim.Signal {
	rt := a.rt
	loads := make([]sim.Time, a.Len())
	for i, el := range a.elems {
		loads[i] = el.Load()
		el.Busy = 0
		el.GPULoad = 0
	}
	assign := RefineAssign(loads, a.peOf, rt.NumPEs(), 0.05)
	var moves int
	for i := range a.elems {
		if assign[i] != a.peOf[i] {
			moves++
		}
	}
	done := sim.NewSignal()
	if moves == 0 {
		done.Fire(rt.Engine())
		return done
	}
	counter := sim.NewCounter(moves)
	counter.Done().Chain(rt.Engine(), done)
	for i, el := range a.elems {
		if assign[i] != a.peOf[i] {
			a.Migrate(el.Idx, assign[i], stateBytes, func() { counter.Add(rt.Engine()) })
		}
	}
	return done
}
