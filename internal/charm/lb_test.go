package charm

import (
	"testing"
	"testing/quick"

	"gat/internal/sim"
)

func TestGreedyAssignBalances(t *testing.T) {
	loads := []sim.Time{100, 90, 80, 10, 10, 10}
	assign := GreedyAssign(loads, 3)
	bins := make([]sim.Time, 3)
	for i, pe := range assign {
		bins[pe] += loads[i]
	}
	// LPT on these loads achieves perfect balance (100, 90+10, 80+10+10).
	for _, b := range bins {
		if b != 100 {
			t.Fatalf("bins = %v, want all 100", bins)
		}
	}
}

func TestGreedyAssignSingleBin(t *testing.T) {
	assign := GreedyAssign([]sim.Time{5, 5, 5}, 1)
	for _, pe := range assign {
		if pe != 0 {
			t.Fatal("single-bin assignment must map all to 0")
		}
	}
}

// Property: greedy assignment never leaves max/min bin imbalance worse
// than max single load relative to the mean-optimal bound.
func TestGreedyAssignBoundProperty(t *testing.T) {
	f := func(raw []uint16, binsRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		bins := int(binsRaw)%8 + 1
		loads := make([]sim.Time, len(raw))
		var total, maxLoad sim.Time
		for i, r := range raw {
			loads[i] = sim.Time(r)
			total += loads[i]
			if loads[i] > maxLoad {
				maxLoad = loads[i]
			}
		}
		assign := GreedyAssign(loads, bins)
		binLoad := make([]sim.Time, bins)
		for i, pe := range assign {
			if pe < 0 || pe >= bins {
				return false
			}
			binLoad[pe] += loads[i]
		}
		var maxBin sim.Time
		for _, b := range binLoad {
			if b > maxBin {
				maxBin = b
			}
		}
		// LPT guarantee: makespan <= mean + max item.
		mean := total / sim.Time(bins)
		return maxBin <= mean+maxLoad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRefineAssignMovesOnlyWhatItMust(t *testing.T) {
	// One overloaded PE; refine must fix it while leaving balanced PEs
	// untouched.
	loads := []sim.Time{100, 100, 10, 10, 10, 10}
	current := []int{0, 0, 1, 1, 2, 2}
	out := RefineAssign(loads, current, 3, 0.05)
	if out[0] == out[1] {
		t.Fatalf("hot elements still share PE: %v", out)
	}
	// The best achievable max bin is 100 (one hot element per bin);
	// refine must reach it without mass migration.
	bl := make([]sim.Time, 3)
	moved := 0
	for i := range out {
		bl[out[i]] += loads[i]
		if out[i] != current[i] {
			moved++
		}
	}
	var maxBin sim.Time
	for _, b := range bl {
		if b > maxBin {
			maxBin = b
		}
	}
	if maxBin != 100 {
		t.Fatalf("max bin = %v after refine, want 100 (assign %v)", maxBin, out)
	}
	if moved > len(loads)/2 {
		t.Fatalf("refine moved %d of %d elements — not locality-preserving", moved, len(loads))
	}
}

func TestRefineAssignBalancedInputUnchanged(t *testing.T) {
	loads := []sim.Time{10, 10, 10, 10}
	current := []int{0, 1, 2, 3}
	out := RefineAssign(loads, current, 4, 0.05)
	for i := range out {
		if out[i] != current[i] {
			t.Fatalf("balanced input was perturbed: %v", out)
		}
	}
}

// Property: RefineAssign never increases the maximum bin load.
func TestRefineAssignNeverWorseProperty(t *testing.T) {
	f := func(raw []uint8, binsRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		bins := int(binsRaw)%6 + 2
		loads := make([]sim.Time, len(raw))
		current := make([]int, len(raw))
		for i, r := range raw {
			loads[i] = sim.Time(r)
			current[i] = i % bins
		}
		maxBin := func(assign []int) sim.Time {
			bl := make([]sim.Time, bins)
			for i, pe := range assign {
				bl[pe] += loads[i]
			}
			var m sim.Time
			for _, b := range bl {
				if b > m {
					m = b
				}
			}
			return m
		}
		out := RefineAssign(loads, current, bins, 0.05)
		for _, pe := range out {
			if pe < 0 || pe >= bins {
				return false
			}
		}
		return maxBin(out) <= maxBin(current)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateMovesElement(t *testing.T) {
	rt := newTestRuntime(2)
	a := NewArray(rt, "blk", [3]int{12, 1, 1}, nil, func(ix Index) any { return nil })
	el := a.Elem(Index{0, 0, 0})
	if el.PE() != 0 {
		t.Fatalf("elem starts on PE %d", el.PE())
	}
	var movedAt sim.Time
	a.Migrate(Index{0, 0, 0}, 7, 1<<20, func() { movedAt = rt.Engine().Now() })
	rt.Engine().Run()
	if el.PE() != 7 {
		t.Fatalf("elem on PE %d after migrate, want 7", el.PE())
	}
	if movedAt <= 0 {
		t.Fatal("migration must take simulated time (state transfer)")
	}
}

func TestMigrateSamePENoop(t *testing.T) {
	rt := newTestRuntime(1)
	a := NewArray(rt, "blk", [3]int{6, 1, 1}, nil, func(ix Index) any { return nil })
	done := false
	a.Migrate(Index{0, 0, 0}, 0, 1<<20, func() { done = true })
	rt.Engine().Run()
	if !done {
		t.Fatal("same-PE migrate should still complete")
	}
}

func TestRebalanceGreedyImprovesImbalance(t *testing.T) {
	rt := newTestRuntime(1) // 6 PEs
	a := NewArray(rt, "blk", [3]int{12, 1, 1}, nil, func(ix Index) any { return nil })
	// Fake a measured imbalance: the two elements on PE 0 are hot.
	for i, el := range a.Elems() {
		if i < 2 {
			el.Busy = 1000
		} else {
			el.Busy = 100
		}
	}
	fired := false
	a.RebalanceGreedy(1<<10).OnFire(rt.Engine(), func() { fired = true })
	rt.Engine().Run()
	if !fired {
		t.Fatal("rebalance did not complete")
	}
	// The two hot elements must no longer share a PE.
	hot0, hot1 := a.Elems()[0].PE(), a.Elems()[1].PE()
	if hot0 == hot1 {
		t.Fatalf("hot elements still share PE %d", hot0)
	}
	// Busy counters reset for the next measurement period.
	for _, el := range a.Elems() {
		if el.Busy != 0 {
			t.Fatal("busy counters not reset after rebalance")
		}
	}
}

func TestRebalanceNoMovesFiresImmediately(t *testing.T) {
	rt := newTestRuntime(1)
	a := NewArray(rt, "blk", [3]int{6, 1, 1}, nil, func(ix Index) any { return nil })
	// Uniform load on an already-balanced mapping: greedy may still
	// permute PEs, so just check the signal fires.
	fired := false
	a.RebalanceGreedy(1<<10).OnFire(rt.Engine(), func() { fired = true })
	rt.Engine().Run()
	if !fired {
		t.Fatal("rebalance signal did not fire")
	}
}
