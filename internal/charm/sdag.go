package charm

// Gate implements the SDAG "when" construct with reference numbers
// (§II-A): a chare element waits for a fixed number of message arrivals
// carrying the current reference number; arrivals tagged with future
// reference numbers are buffered until the element advances. This is
// how Jacobi3D keeps neighbors exchanging halos from the same iteration
// without any global synchronization.
type Gate struct {
	ref      int
	need     int
	got      int
	open     bool
	onDone   func(*Ctx)
	buffered map[int][]func(*Ctx)
}

// NewGate returns a closed gate at reference number 0.
func NewGate() *Gate {
	return &Gate{buffered: make(map[int][]func(*Ctx))}
}

// Ref returns the gate's current reference number.
func (g *Gate) Ref() int { return g.ref }

// Pending returns the number of buffered future arrivals.
func (g *Gate) Pending() int {
	n := 0
	for _, b := range g.buffered {
		n += len(b)
	}
	return n
}

// Expect opens the gate for reference number ref, requiring need
// arrivals; done runs (on the Ctx of the final arrival, or immediately
// on ctx if buffered arrivals already satisfy the count) once all
// arrivals are in. Arrivals buffered earlier for ref are replayed
// immediately.
func (g *Gate) Expect(ctx *Ctx, ref, need int, done func(*Ctx)) {
	if g.open {
		panic("charm: gate re-opened while open")
	}
	g.ref = ref
	g.need = need
	g.got = 0
	g.onDone = done
	g.open = true
	for _, action := range g.buffered[ref] {
		g.consume(ctx, action)
		if !g.open {
			break
		}
	}
	delete(g.buffered, ref)
}

// Arrive delivers one arrival tagged ref; action runs when the arrival
// is consumed (now if the gate is open at ref, or when the gate reaches
// ref). Arrivals for past reference numbers panic: neighbors can run at
// most one iteration ahead, so a stale arrival is a protocol bug.
func (g *Gate) Arrive(ctx *Ctx, ref int, action func(*Ctx)) {
	if g.open && ref == g.ref {
		g.consume(ctx, action)
		return
	}
	if ref < g.ref {
		panic("charm: arrival for a past reference number")
	}
	g.buffered[ref] = append(g.buffered[ref], action)
}

func (g *Gate) consume(ctx *Ctx, action func(*Ctx)) {
	if action != nil {
		action(ctx)
	}
	g.got++
	if g.got == g.need {
		g.open = false
		done := g.onDone
		g.onDone = nil
		if done != nil {
			done(ctx)
		}
	}
}
