package charm

import (
	"fmt"

	"gat/internal/sim"
)

// Index is a 3-D chare array index. 1-D and 2-D arrays use trailing
// zeros.
type Index [3]int

func (ix Index) String() string { return fmt.Sprintf("(%d,%d,%d)", ix[0], ix[1], ix[2]) }

// Msg is an entry-method invocation message.
type Msg struct {
	// Entry selects the registered entry method.
	Entry int
	// Ref is the SDAG reference number (the iteration in Jacobi3D).
	Ref int
	// Bytes is the payload size, which determines transfer and
	// pack/unpack costs. Zero for control messages.
	Bytes int64
	// Data carries arbitrary model-level payload.
	Data any
}

// EntryFn is one entry method: it runs to completion on the element's
// PE with a Ctx accounting its host time.
type EntryFn func(elem *Elem, ctx *Ctx, m Msg)

// Elem is one element of a chare array.
type Elem struct {
	Arr   *Array
	Idx   Index
	Flat  int
	State any
	// Busy accumulates host time consumed by this element's entries.
	Busy sim.Time
	// GPULoad accumulates device time launched on behalf of this
	// element. Busy + GPULoad is the load-balancing metric.
	GPULoad sim.Time
}

// Load returns the element's total measured load (host + device).
func (el *Elem) Load() sim.Time { return el.Busy + el.GPULoad }

// PE returns the element's current PE id (elements migrate).
func (el *Elem) PE() int { return el.Arr.peOf[el.Flat] }

// Array is a chare array: an indexed collection of elements distributed
// over PEs with a location manager.
type Array struct {
	rt      *Runtime
	name    string
	dims    [3]int
	elems   []*Elem // ordered by flat index, for deterministic iteration
	peOf    []int
	entries []EntryFn

	msgsSent uint64
}

// NewArray creates a dims[0]×dims[1]×dims[2] chare array with the given
// entry methods, distributing elements to PEs with the default block
// mapping (consecutive elements to each PE, as in Charm++). factory
// builds each element's state.
func NewArray(rt *Runtime, name string, dims [3]int, entries []EntryFn, factory func(Index) any) *Array {
	n := dims[0] * dims[1] * dims[2]
	if n <= 0 {
		panic("charm: array needs positive dimensions")
	}
	a := &Array{rt: rt, name: name, dims: dims, entries: entries}
	numPE := rt.NumPEs()
	for flat := 0; flat < n; flat++ {
		ix := a.Unflatten(flat)
		el := &Elem{Arr: a, Idx: ix, Flat: flat, State: factory(ix)}
		a.elems = append(a.elems, el)
		// Block map: ceil(n/numPE)-sized contiguous chunks.
		per := (n + numPE - 1) / numPE
		a.peOf = append(a.peOf, flat/per)
	}
	rt.arrays = append(rt.arrays, a)
	return a
}

// Name returns the array name.
func (a *Array) Name() string { return a.name }

// Dims returns the array dimensions.
func (a *Array) Dims() [3]int { return a.dims }

// Len returns the number of elements.
func (a *Array) Len() int { return len(a.elems) }

// MsgsSent returns the number of entry messages sent to this array.
func (a *Array) MsgsSent() uint64 { return a.msgsSent }

// Flatten converts an index to its flat position.
func (a *Array) Flatten(ix Index) int {
	return (ix[0]*a.dims[1]+ix[1])*a.dims[2] + ix[2]
}

// Unflatten converts a flat position to an index.
func (a *Array) Unflatten(flat int) Index {
	z := flat % a.dims[2]
	y := (flat / a.dims[2]) % a.dims[1]
	x := flat / (a.dims[1] * a.dims[2])
	return Index{x, y, z}
}

// Elem returns the element at ix.
func (a *Array) Elem(ix Index) *Elem { return a.elems[a.Flatten(ix)] }

// Elems returns all elements in flat-index order.
func (a *Array) Elems() []*Elem { return a.elems }

// ElemsOnPE returns the elements currently mapped to PE pe, in flat
// order.
func (a *Array) ElemsOnPE(pe int) []*Elem {
	var out []*Elem
	for _, el := range a.elems {
		if a.peOf[el.Flat] == pe {
			out = append(out, el)
		}
	}
	return out
}

// deliver enqueues the entry invocation at the element's PE. recvCost
// covers scheduling, dispatch, and payload unpacking.
func (a *Array) deliver(el *Elem, m Msg) {
	rt := a.rt
	pe := rt.PE(a.peOf[el.Flat])
	cost := rt.Opt.SchedOverhead + rt.Opt.EntryOverhead + rt.payloadCost(m.Bytes)
	label := fmt.Sprintf("%s.e%d", a.name, m.Entry)
	pe.Enqueue(PrioNormal, cost, label, el, func(ctx *Ctx) {
		a.entries[m.Entry](el, ctx, m)
	})
}

// Send invokes entry m.Entry on element ix from within a running entry
// method, charging the sender's host overhead (message allocation plus
// payload packing) and routing the message through the machine: a
// same-PE message is enqueued locally, a same-node message crosses the
// intra-node path, and a remote message crosses the network.
func (ctx *Ctx) Send(a *Array, ix Index, m Msg) {
	rt := ctx.pe.rt
	a.msgsSent++
	ctx.clock += rt.Opt.MsgHostOverhead + rt.payloadCost(m.Bytes)
	el := a.Elem(ix)
	srcPE := ctx.pe.id
	at := ctx.clock
	eng := ctx.Engine()
	eng.At(at, func() {
		dstPE := a.peOf[el.Flat]
		if dstPE == srcPE {
			a.deliver(el, m)
			return
		}
		srcNode := rt.M.NodeOf(srcPE)
		dstNode := rt.M.NodeOf(dstPE)
		size := m.Bytes + rt.Opt.Envelope
		rt.M.Net.Transfer(srcNode, dstNode, size, sim.FiredSignal()).
			OnFire(eng, func() { a.deliver(el, m) })
	})
}

// Invoke delivers an entry invocation from driver code (outside any
// entry method), modelling the main-chare broadcast that starts a
// program. No sender-side cost is charged.
func (a *Array) Invoke(ix Index, m Msg) {
	a.msgsSent++
	a.deliver(a.Elem(ix), m)
}

// Broadcast invokes the entry on every element, in flat order.
func (a *Array) Broadcast(m Msg) {
	for _, el := range a.elems {
		a.msgsSent++
		a.deliver(el, m)
	}
}
