// Package charm implements an asynchronous message-driven tasking
// runtime in the style of Charm++ (§II-A of the paper): chare arrays
// overdecomposed onto processing elements (PEs), per-PE schedulers
// draining prioritized message queues, entry methods that run to
// completion, SDAG-style reference-number gates, and HAPI-style
// asynchronous GPU completion callbacks.
//
// PEs are event-driven rather than goroutine-backed: entry methods never
// block, so a PE is a priority queue plus busy/blocked bookkeeping. Host
// time consumed by an entry method (scheduling, kernel launches, message
// sends) accumulates on a Ctx clock, and every side effect is scheduled
// at its correct staggered instant, reproducing the serialization of
// fine-grained overheads on the host core that drives the paper's
// strong-scaling results.
package charm

import (
	"container/heap"
	"fmt"

	"gat/internal/machine"
	"gat/internal/sim"
)

// Priorities for PE tasks. Communication-related callbacks run at high
// priority, as the paper prescribes for (un)packing and transfers.
const (
	PrioHigh   = 0
	PrioNormal = 1
)

// Options is the runtime cost model.
type Options struct {
	// SchedOverhead is charged per message picked up by a PE scheduler.
	SchedOverhead sim.Time
	// EntryOverhead is charged per entry-method dispatch (location
	// lookup, envelope handling).
	EntryOverhead sim.Time
	// MsgHostOverhead is charged at the sender per message send call.
	MsgHostOverhead sim.Time
	// HAPIRegister is charged to register a GPU completion callback.
	HAPIRegister sim.Time
	// HostCopyBW is the single-core memcpy bandwidth used to cost
	// copying eager message payloads in and out of communication
	// buffers (host-staging path).
	HostCopyBW float64
	// EagerThreshold is the message size up to which payloads are
	// copied through eager buffers; larger messages use zero-copy
	// rendezvous and pay only RendezvousHostCost.
	EagerThreshold int64
	// RendezvousHostCost is the fixed host cost (buffer registration,
	// protocol handling) of a zero-copy rendezvous message.
	RendezvousHostCost sim.Time
	// Envelope is the per-message header size in bytes.
	Envelope int64
}

// DefaultOptions returns the Summit-calibrated runtime cost model.
func DefaultOptions() Options {
	return Options{
		SchedOverhead:      800 * sim.Nanosecond,
		EntryOverhead:      500 * sim.Nanosecond,
		MsgHostOverhead:    1500 * sim.Nanosecond,
		HAPIRegister:       500 * sim.Nanosecond,
		HostCopyBW:         12e9,
		EagerThreshold:     64 << 10,
		RendezvousHostCost: 1500 * sim.Nanosecond,
		Envelope:           96,
	}
}

// Runtime is one instantiated Charm-style runtime over a machine.
type Runtime struct {
	M      *machine.Machine
	Opt    Options
	PEs    []*PE
	arrays []*Array
}

// NewRuntime creates a runtime with one PE per GPU (the paper's non-SMP
// one-core-one-GPU process layout).
func NewRuntime(m *machine.Machine, opt Options) *Runtime {
	rt := &Runtime{M: m, Opt: opt}
	for i := 0; i < m.Procs(); i++ {
		rt.PEs = append(rt.PEs, &PE{rt: rt, id: i, node: m.NodeOf(i)})
	}
	return rt
}

// Engine returns the simulation engine.
func (rt *Runtime) Engine() *sim.Engine { return rt.M.Eng }

// NumPEs returns the number of processing elements.
func (rt *Runtime) NumPEs() int { return len(rt.PEs) }

// PE returns processing element i.
func (rt *Runtime) PE(i int) *PE { return rt.PEs[i] }

// Stats summarizes runtime activity for reports.
type Stats struct {
	// NumPEs is the number of processing elements.
	NumPEs int
	// Tasks is the total number of tasks executed across PEs.
	Tasks uint64
	// BusyTotal is the summed host busy time of all PEs.
	BusyTotal sim.Time
	// BusyMax and BusyMin are the busiest and idlest PE loads, whose
	// spread measures host-side load imbalance.
	BusyMax, BusyMin sim.Time
	// MsgsSent is the number of entry-method messages sent to arrays.
	MsgsSent uint64
}

// Imbalance returns the busiest PE's load over the mean PE load
// (1.0 = perfectly balanced), or 0 before any work ran.
func (s Stats) Imbalance() float64 {
	if s.BusyTotal == 0 || s.NumPEs == 0 {
		return 0
	}
	mean := float64(s.BusyTotal) / float64(s.NumPEs)
	return float64(s.BusyMax) / mean
}

// Collect gathers runtime statistics.
func (rt *Runtime) Collect() Stats {
	st := Stats{NumPEs: rt.NumPEs()}
	for i, pe := range rt.PEs {
		b := pe.BusyTime()
		st.Tasks += pe.TasksRun()
		st.BusyTotal += b
		if i == 0 || b > st.BusyMax {
			st.BusyMax = b
		}
		if i == 0 || b < st.BusyMin {
			st.BusyMin = b
		}
	}
	for _, a := range rt.arrays {
		st.MsgsSent += a.MsgsSent()
	}
	return st
}

// payloadCost is the host time one side spends handling a message
// payload: eager messages are copied by the sending/receiving core,
// rendezvous-size messages go zero-copy and pay only the fixed
// registration cost.
func (rt *Runtime) payloadCost(bytes int64) sim.Time {
	switch {
	case bytes <= 0:
		return 0
	case bytes <= rt.Opt.EagerThreshold:
		return sim.DurationOf(bytes, rt.Opt.HostCopyBW)
	default:
		return rt.Opt.RendezvousHostCost
	}
}

// task is one unit of PE work: an entry-method invocation or a runtime
// callback.
type task struct {
	prio  int
	seq   uint64
	cost  sim.Time // host time consumed before handler side effects
	label string
	elem  *Elem // owning chare element, if any (for load accounting)
	run   func(*Ctx)
}

type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(*task)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}

// PE is one processing element: a scheduler draining a prioritized
// message queue, bound to one host core and one GPU.
type PE struct {
	rt   *Runtime
	id   int
	node int

	queue   taskHeap
	seq     uint64
	busy    bool
	blocked bool

	busyAccum sim.Time
	tasksRun  uint64
}

// ID returns the global PE id.
func (pe *PE) ID() int { return pe.id }

// Node returns the node housing this PE.
func (pe *PE) Node() int { return pe.node }

// BusyTime returns the cumulative host time this PE has spent executing
// tasks (excluding blocked time).
func (pe *PE) BusyTime() sim.Time { return pe.busyAccum }

// TasksRun returns the number of tasks executed.
func (pe *PE) TasksRun() uint64 { return pe.tasksRun }

// QueueLen returns the number of tasks waiting in the queue.
func (pe *PE) QueueLen() int { return len(pe.queue) }

// Enqueue adds a task to the PE's queue. cost is the host time consumed
// before the handler's side effects (scheduling + dispatch + payload
// handling); run executes with a Ctx whose clock starts after cost.
func (pe *PE) Enqueue(prio int, cost sim.Time, label string, elem *Elem, run func(*Ctx)) {
	pe.seq++
	heap.Push(&pe.queue, &task{prio: prio, seq: pe.seq, cost: cost, label: label, elem: elem, run: run})
	pe.startNext()
}

// startNext pops and executes the next task if the PE is idle.
func (pe *PE) startNext() {
	if pe.busy || pe.blocked || len(pe.queue) == 0 {
		return
	}
	t := heap.Pop(&pe.queue).(*task)
	pe.busy = true
	pe.tasksRun++
	eng := pe.rt.Engine()
	start := eng.Now()
	ctx := &Ctx{pe: pe, elem: t.elem, clock: start + t.cost}
	t.run(ctx)
	end := ctx.clock
	eng.At(end, func() {
		pe.busyAccum += end - start
		if t.elem != nil {
			t.elem.Busy += end - start
		}
		if tr := eng.Tracer(); tr != nil {
			tr.Add(sim.Span{Resource: fmt.Sprintf("pe%d", pe.id), Label: t.label, Start: start, End: end})
		}
		pe.busy = false
		if ctx.blockOn != nil && !ctx.blockOn.Fired() {
			pe.blocked = true
			ctx.blockOn.OnFire(eng, func() {
				pe.blocked = false
				pe.startNext()
			})
			return
		}
		pe.startNext()
	})
}
