// Package mpi implements an MPI-like runtime on the discrete-event
// simulator: ranks as blocking processes, non-blocking point-to-point
// with tag matching, waitall, barrier and allreduce collectives, and
// the two device-buffer transfer policies the paper measures — plain
// host buffers (MPI-H, the application stages data itself) and
// CUDA-aware device buffers (MPI-D, the library moves GPU memory and
// switches to pipelined host staging above a size threshold, as IBM
// Spectrum MPI does).
package mpi

import (
	"fmt"

	"gat/internal/gpu"
	"gat/internal/machine"
	"gat/internal/sim"
)

// Options is the MPI library cost model.
type Options struct {
	// CallOverhead is the host cost of each MPI call (Isend, Irecv,
	// Wait*).
	CallOverhead sim.Time
	// PipelineThreshold is the device-buffer message size at and above
	// which the library abandons GPUDirect for pipelined host staging
	// (Spectrum MPI's large-message protocol, §IV-B).
	PipelineThreshold int64
}

// DefaultOptions returns the Summit/Spectrum-MPI calibration.
func DefaultOptions() Options {
	return Options{
		CallOverhead:      1200 * sim.Nanosecond,
		PipelineThreshold: 1 << 20,
	}
}

// BufKind says where a communication buffer lives.
type BufKind int

// Buffer locations.
const (
	Host BufKind = iota
	Device
)

// World is an MPI communicator over all ranks of a machine, one rank
// per GPU.
type World struct {
	M     *machine.Machine
	Opt   Options
	ranks []*Rank

	// match holds unmatched sends and receives keyed by (src, dst,
	// tag). Both directions share one slot so posting an operation
	// costs a single map lookup — tag matching is on the per-message
	// hot path, and hashing the three-int key twice showed up in
	// profiles. Emptied slots are deleted and recycled through free:
	// halo-exchange tags embed the iteration number, so without
	// recycling the map would grow by every key ever used over a run.
	match map[matchKey]*matchSlot
	free  []*matchSlot

	// collEpoch backs NextEpoch. Per-world state: a process-global
	// counter would be shared by concurrently sweeping runs.
	collEpoch int

	// reqs and matchDones are the per-message record arenas; records
	// share the world's engine lifetime (see sim.Arena).
	reqs       sim.Arena[Request]
	matchDones sim.Arena[matchDone]
}

// matchKey packs (src, dst, tag) into one word: posting a message hashes
// the key once, and hashing a single uint64 is measurably cheaper than
// hashing a three-int struct on the per-message hot path. Ranks use 16
// bits and tags 32 — biased by 2^31 so the negative collective tag
// space fits — enough for any configuration the simulator can build;
// newMatchKey panics loudly rather than silently colliding if a tag
// scheme ever outgrows that.
type matchKey uint64

//gat:hotpath
func newMatchKey(src, dst, tag int) matchKey {
	t := uint64(tag) + 1<<31
	if uint(src)|uint(dst) >= 1<<16 || t >= 1<<32 {
		panic("mpi: rank or tag exceeds match-key range")
	}
	return matchKey(uint64(src)<<48 | uint64(dst)<<32 | t)
}

func (k matchKey) src() int { return int(k >> 48) }
func (k matchKey) dst() int { return int(k >> 32 & 0xffff) }

// matchSlot queues unmatched operations for one (src, dst, tag). The
// queues pop head-first by copy-down, preserving capacity: a matched
// pair usually leaves the slot empty, and the next iteration's
// operations reuse the backing arrays.
type matchSlot struct {
	sends []pendingSend
	recvs []pendingRecv
}

//gat:hotpath
func (w *World) slot(key matchKey) *matchSlot {
	s := w.match[key]
	if s == nil {
		if n := len(w.free); n > 0 {
			s = w.free[n-1]
			w.free[n-1] = nil
			w.free = w.free[:n-1]
		} else {
			s = &matchSlot{}
		}
		//gat:alloc-ok intentional single-lookup tag matching; recycled slots keep the map at steady-state size
		w.match[key] = s
	}
	return s
}

// release returns an emptied slot to the freelist. Its backing arrays
// come along, so the next key reuses them.
//
//gat:hotpath
func (w *World) release(key matchKey, s *matchSlot) {
	//gat:alloc-ok paired with slot's insert; deleting returns the slot to the freelist without growth
	delete(w.match, key)
	w.free = append(w.free, s)
}

type pendingSend struct {
	bytes int64
	kind  BufKind
	req   *Request
}

type pendingRecv struct {
	kind BufKind
	req  *Request
}

// Request is a non-blocking operation handle. The completion signal is
// embedded so posting an operation costs one allocation, not two —
// requests are made per message on the simulation's hottest path.
type Request struct {
	done sim.Signal
}

// Done reports whether the operation completed.
func (r *Request) Done() bool { return r.done.Fired() }

// NewWorld creates a world over m with one rank per GPU.
func NewWorld(m *machine.Machine, opt Options) *World {
	w := &World{
		M:     m,
		Opt:   opt,
		match: make(map[matchKey]*matchSlot),
	}
	for i := 0; i < m.Procs(); i++ {
		w.ranks = append(w.ranks, &Rank{w: w, id: i})
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Reset frees every per-message record (requests and match-completion
// links) the world has allocated, keeping the chunk memory warm for the
// next Run. Like sim.Engine.ResetArenas it must only be called at a run
// boundary — every posted operation matched and completed, no Request
// handle from the finished run used afterwards — which also means the
// match map is empty again. A world reset this way can host a sequence
// of runs on one machine with zero steady-state record allocation.
func (w *World) Reset() {
	w.reqs.Reset()
	w.matchDones.Reset()
}

// Run spawns every rank executing body and runs the simulation to
// completion, returning the final virtual time.
func (w *World) Run(body func(r *Rank)) sim.Time {
	for _, r := range w.ranks {
		r := r
		r.proc = w.M.Eng.Spawn(fmt.Sprintf("rank%d", r.id), func(p *sim.Proc) {
			body(r)
		})
	}
	return w.M.Eng.Run()
}

// Rank is one MPI process bound to a host core and one GPU.
type Rank struct {
	w    *World
	id   int
	proc *sim.Proc
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.w.Size() }

// Proc returns the simulated process backing the rank.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// GPU returns the device bound to this rank.
func (r *Rank) GPU() *gpu.Device { return r.w.M.GPUOf(r.id) }

// Node returns the node housing this rank.
func (r *Rank) Node() int { return r.w.M.NodeOf(r.id) }

// Engine returns the simulation engine.
func (r *Rank) Engine() *sim.Engine { return r.w.M.Eng }

// Compute blocks the rank for d of host computation.
func (r *Rank) Compute(d sim.Time) { r.proc.Sleep(d) }
