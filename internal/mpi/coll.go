package mpi

// Collective tags live in a reserved negative space so they never
// collide with application point-to-point tags.
const (
	tagBarrierBase   = -1 << 20
	tagAllreduceBase = -1 << 21
	tagGatherBase    = -1 << 22
	tagBcastBase     = -1 << 23
	tagReduceBase    = -1 << 24
)

// NextEpoch hands out a unique tag offset per collective invocation on
// this world. The counter lives on the World — not in a process-global
// — so concurrent sweep runs, each with a private World and engine, can
// never observe each other's epochs drifting the tag space. All ranks
// of one collective must share the epoch value, so one rank (or the
// driver) draws it and the others receive it; application code passes
// explicit epochs (see internal/jacobi).
func (w *World) NextEpoch() int {
	w.collEpoch++
	return w.collEpoch
}

// Barrier synchronizes all ranks with a dissemination barrier:
// ceil(log2 P) rounds of small messages, the standard scalable
// implementation.
func (r *Rank) Barrier(epoch int) {
	p := r.Size()
	if p == 1 {
		r.proc.Sleep(r.w.Opt.CallOverhead)
		return
	}
	const probe = 64 // bytes per barrier message
	for round, dist := 0, 1; dist < p; round, dist = round+1, dist*2 {
		to := (r.id + dist) % p
		from := (r.id - dist + p) % p
		tag := tagBarrierBase + epoch*64 + round
		sreq := r.Isend(to, tag, probe, Host)
		rreq := r.Irecv(from, tag, Host)
		r.Waitall(sreq, rreq)
	}
}

// Allreduce reduces bytes of data across all ranks using recursive
// doubling over the largest power-of-two subgroup, with pre/post
// exchange steps for leftover ranks. It returns after the result is
// available everywhere. Only timing is modelled; the caller owns the
// actual values.
func (r *Rank) Allreduce(epoch int, bytes int64) {
	p := r.Size()
	if p == 1 {
		r.proc.Sleep(r.w.Opt.CallOverhead)
		return
	}
	// Largest power of two <= p.
	m := 1
	for m*2 <= p {
		m *= 2
	}
	rem := p - m
	base := tagAllreduceBase + epoch*256

	if r.id >= m {
		// Extra rank: fold into partner, then wait for the result.
		partner := r.id - m
		r.Wait(r.Isend(partner, base, bytes, Host))
		r.Wait(r.Irecv(partner, base+1, Host))
		return
	}
	if r.id < rem {
		r.Wait(r.Irecv(r.id+m, base, Host))
	}
	for round, dist := 0, 1; dist < m; round, dist = round+1, dist*2 {
		partner := r.id ^ dist
		tag := base + 2 + round
		sreq := r.Isend(partner, tag, bytes, Host)
		rreq := r.Irecv(partner, tag, Host)
		r.Waitall(sreq, rreq)
	}
	if r.id < rem {
		r.Wait(r.Isend(r.id+m, base+1, bytes, Host))
	}
}

// Bcast distributes bytes from root to every rank along a binomial
// tree rooted at root (rank ids are rotated so any root works).
func (r *Rank) Bcast(epoch, root int, bytes int64) {
	p := r.Size()
	if p == 1 {
		r.proc.Sleep(r.w.Opt.CallOverhead)
		return
	}
	me := (r.id - root + p) % p // virtual rank: root becomes 0
	base := tagBcastBase + epoch*64
	// Find the round in which this rank receives (highest set bit).
	if me != 0 {
		recvRound := 0
		for dist := 1; dist*2 <= me; dist *= 2 {
			recvRound++
		}
		dist := 1 << recvRound
		src := (me - dist + root + p) % p
		r.Wait(r.Irecv(src, base+recvRound, Host))
	}
	// Forward in every later round while the partner is in range.
	start := 1
	if me != 0 {
		for start <= me {
			start *= 2
		}
	}
	round := 0
	for d := 1; d < start; d *= 2 {
		round++
	}
	for dist := start; me+dist < p; dist *= 2 {
		dst := (me + dist + root) % p
		r.Wait(r.Isend(dst, base+round, bytes, Host))
		round++
	}
}

// Reduce folds bytes from all ranks to root along a binary tree of
// virtual ranks (root rotated to 0).
func (r *Rank) Reduce(epoch, root int, bytes int64) {
	p := r.Size()
	if p == 1 {
		r.proc.Sleep(r.w.Opt.CallOverhead)
		return
	}
	me := (r.id - root + p) % p
	base := tagReduceBase + epoch*4
	for _, c := range []int{2*me + 1, 2*me + 2} {
		if c < p {
			src := (c + root) % p
			r.Wait(r.Irecv(src, base, Host))
		}
	}
	if me != 0 {
		dst := ((me-1)/2 + root) % p
		r.Wait(r.Isend(dst, base, bytes, Host))
	}
}

// Gather collects bytes from every rank at root (timing model: each
// non-root rank sends to root; root receives all).
func (r *Rank) Gather(epoch int, root int, bytes int64) {
	base := tagGatherBase + epoch*4
	if r.id == root {
		reqs := make([]*Request, 0, r.Size()-1)
		for src := 0; src < r.Size(); src++ {
			if src == root {
				continue
			}
			reqs = append(reqs, r.Irecv(src, base, Host))
		}
		r.Waitall(reqs...)
		return
	}
	r.Wait(r.Isend(root, base, bytes, Host))
}
