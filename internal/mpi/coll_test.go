package mpi

import (
	"testing"

	"gat/internal/machine"
	"gat/internal/sim"
)

func TestBcastReachesAllRanks(t *testing.T) {
	for _, nodes := range []int{1, 2} {
		for root := 0; root < 3; root++ {
			w := testWorld(nodes)
			epoch := w.NextEpoch()
			done := 0
			w.Run(func(r *Rank) {
				r.Bcast(epoch, root, 4096)
				done++
			})
			if done != w.Size() {
				t.Fatalf("nodes=%d root=%d: %d ranks finished bcast, want %d",
					nodes, root, done, w.Size())
			}
		}
	}
}

func TestBcastRootLeavesFirst(t *testing.T) {
	w := testWorld(2)
	epoch := w.NextEpoch()
	times := make([]sim.Time, 12)
	w.Run(func(r *Rank) {
		r.Bcast(epoch, 0, 1<<20)
		times[r.ID()] = r.Engine().Now()
	})
	// Every non-root rank must finish no earlier than it could have
	// received data from the root.
	for i := 1; i < 12; i++ {
		if times[i] <= 0 {
			t.Fatalf("rank %d never finished", i)
		}
	}
}

func TestReduceCompletesAllRoots(t *testing.T) {
	w := testWorld(2)
	done := 0
	epoch1, epoch2 := w.NextEpoch(), w.NextEpoch()
	w.Run(func(r *Rank) {
		r.Reduce(epoch1, 0, 8)
		r.Reduce(epoch2, 5, 8)
		done++
	})
	if done != 12 {
		t.Fatalf("reduce finished on %d ranks, want 12", done)
	}
}

func TestCollectivesSingleRankFastPath(t *testing.T) {
	cfg := machine.Summit(1)
	cfg.GPUsPerNode = 1
	w := NewWorld(machine.MustNew(cfg), DefaultOptions())
	if w.Size() != 1 {
		t.Fatalf("size = %d, want 1", w.Size())
	}
	done := false
	w.Run(func(r *Rank) {
		r.Barrier(r.w.NextEpoch())
		r.Allreduce(r.w.NextEpoch(), 8)
		r.Bcast(r.w.NextEpoch(), 0, 1024)
		r.Reduce(r.w.NextEpoch(), 0, 8)
		done = true
	})
	if !done {
		t.Fatal("single-rank collectives did not complete")
	}
}

func TestBcastThenReducePipeline(t *testing.T) {
	// A bcast followed by a reduce with distinct epochs must not
	// deadlock or cross-match tags.
	w := testWorld(1)
	e1, e2 := w.NextEpoch(), w.NextEpoch()
	done := 0
	w.Run(func(r *Rank) {
		r.Bcast(e1, 2, 1024)
		r.Reduce(e2, 2, 1024)
		done++
	})
	if done != 6 {
		t.Fatalf("pipeline finished on %d ranks", done)
	}
}

func TestJacobiResidualOptionRuns(t *testing.T) {
	// The residual allreduce must add time, not hang.
	w := testWorld(1)
	epoch := w.NextEpoch()
	var withAt sim.Time
	w.Run(func(r *Rank) {
		r.Compute(10 * sim.Microsecond)
		r.Allreduce(epoch, 8)
		withAt = r.Engine().Now()
	})
	if withAt <= 10*sim.Microsecond {
		t.Fatalf("allreduce added no time: %v", withAt)
	}
}
