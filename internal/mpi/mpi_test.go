package mpi

import (
	"testing"

	"gat/internal/machine"
	"gat/internal/sim"
)

func testWorld(nodes int) *World {
	return NewWorld(machine.MustNew(machine.Summit(nodes)), DefaultOptions())
}

func TestSendRecvBasic(t *testing.T) {
	w := testWorld(1)
	var recvAt sim.Time
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Wait(r.Isend(1, 42, 1024, Host))
		case 1:
			r.Wait(r.Irecv(0, 42, Host))
			recvAt = r.Engine().Now()
		}
	})
	if recvAt == 0 {
		t.Fatal("receive never completed")
	}
}

func TestTagMatchingSeparatesMessages(t *testing.T) {
	w := testWorld(1)
	var order []int
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			// Send tag 2 first, then tag 1 — receiver waits on tag 1
			// first and must still get the right message.
			r.Isend(1, 2, 1<<20, Host)
			r.Isend(1, 1, 64, Host)
		case 1:
			r.Wait(r.Irecv(0, 1, Host))
			order = append(order, 1)
			r.Wait(r.Irecv(0, 2, Host))
			order = append(order, 2)
		}
	})
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestSameTagFIFO(t *testing.T) {
	w := testWorld(1)
	completions := 0
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			a := r.Isend(1, 7, 100, Host)
			b := r.Isend(1, 7, 100, Host)
			r.Waitall(a, b)
		case 1:
			a := r.Irecv(0, 7, Host)
			b := r.Irecv(0, 7, Host)
			r.Waitall(a, b)
			completions = 2
		}
	})
	if completions != 2 {
		t.Fatal("same-tag FIFO matching failed")
	}
}

func TestWaitallBlocksForAll(t *testing.T) {
	w := testWorld(1)
	var doneAt sim.Time
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Compute(100 * sim.Microsecond) // delay one send
			r.Isend(1, 1, 64, Host)
			r.Isend(1, 2, 64, Host)
		case 1:
			a := r.Irecv(0, 1, Host)
			b := r.Irecv(0, 2, Host)
			r.Waitall(a, b)
			doneAt = r.Engine().Now()
		}
	})
	if doneAt < 100*sim.Microsecond {
		t.Fatalf("waitall returned at %v, before delayed send", doneAt)
	}
}

func TestDeviceSmallUsesGPUDirect(t *testing.T) {
	// A small device-buffer message must not touch the GPU DMA engines
	// (GPUDirect goes NIC<->GPU directly).
	w := testWorld(2)
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Wait(r.Isend(6, 1, 64<<10, Device)) // rank 6 = node 1
		case 6:
			r.Wait(r.Irecv(0, 1, Device))
		}
	})
	if got := w.M.GPUOf(0).CopiesIssued(); got != 0 {
		t.Fatalf("GPUDirect send issued %d DMA copies, want 0", got)
	}
}

func TestDeviceLargeUsesPipelinedStaging(t *testing.T) {
	// At/above the pipeline threshold the library stages through host
	// memory, which shows up as DMA traffic on both GPUs.
	w := testWorld(2)
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Wait(r.Isend(6, 1, 9<<20, Device))
		case 6:
			r.Wait(r.Irecv(0, 1, Device))
		}
	})
	if got := w.M.GPUOf(0).CopiesIssued(); got == 0 {
		t.Fatal("pipelined staging should issue D2H copies on the sender")
	}
	if got := w.M.GPUOf(6).CopiesIssued(); got == 0 {
		t.Fatal("pipelined staging should issue H2D copies on the receiver")
	}
}

func TestDeviceIntraNodeStaysDirect(t *testing.T) {
	// Intra-node device messages use the peer path regardless of size.
	w := testWorld(1)
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Wait(r.Isend(1, 1, 9<<20, Device))
		case 1:
			r.Wait(r.Irecv(0, 1, Device))
		}
	})
	if got := w.M.GPUOf(0).CopiesIssued(); got != 0 {
		t.Fatalf("intra-node device transfer issued %d copies, want 0", got)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w := testWorld(2) // 12 ranks
	arrive := make([]sim.Time, 12)
	depart := make([]sim.Time, 12)
	epoch := w.NextEpoch() // one epoch shared by all ranks
	w.Run(func(r *Rank) {
		// Stagger arrivals.
		r.Compute(sim.Time(r.ID()) * 10 * sim.Microsecond)
		arrive[r.ID()] = r.Engine().Now()
		r.Barrier(epoch)
		depart[r.ID()] = r.Engine().Now()
	})
	var maxArrive sim.Time
	for _, a := range arrive {
		if a > maxArrive {
			maxArrive = a
		}
	}
	for i, d := range depart {
		if d < maxArrive {
			t.Fatalf("rank %d left barrier at %v, before last arrival %v", i, d, maxArrive)
		}
	}
}

func TestBarrierSharedEpoch(t *testing.T) {
	// All ranks must use the same epoch; NextEpoch per rank would
	// deadlock. Verify the documented usage pattern works twice in a row.
	w := testWorld(1)
	epoch1, epoch2 := w.NextEpoch(), w.NextEpoch()
	finished := 0
	w.Run(func(r *Rank) {
		r.Barrier(epoch1)
		r.Barrier(epoch2)
		finished++
	})
	if finished != 6 {
		t.Fatalf("finished = %d, want 6", finished)
	}
}

func TestAllreduceCompletes(t *testing.T) {
	for _, ranks := range []int{1, 2} { // 6 and 12 ranks (non-pow2)
		w := testWorld(ranks)
		epoch := w.NextEpoch()
		done := 0
		w.Run(func(r *Rank) {
			r.Allreduce(epoch, 8)
			done++
		})
		if done != w.Size() {
			t.Fatalf("nodes=%d: %d ranks completed, want %d", ranks, done, w.Size())
		}
	}
}

func TestGatherCompletes(t *testing.T) {
	w := testWorld(1)
	epoch := w.NextEpoch()
	done := 0
	w.Run(func(r *Rank) {
		r.Gather(epoch, 0, 1024)
		done++
	})
	if done != 6 {
		t.Fatalf("gather finished on %d ranks, want 6", done)
	}
}

func TestRankTopologyAccessors(t *testing.T) {
	w := testWorld(2)
	w.Run(func(r *Rank) {
		if r.Node() != r.ID()/6 {
			t.Errorf("rank %d reports node %d", r.ID(), r.Node())
		}
		if r.GPU() == nil {
			t.Errorf("rank %d has no GPU", r.ID())
		}
	})
}

func TestComputeAdvancesClock(t *testing.T) {
	w := testWorld(1)
	var at sim.Time
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Compute(5 * sim.Millisecond)
			at = r.Engine().Now()
		}
	})
	if at != 5*sim.Millisecond {
		t.Fatalf("compute ended at %v", at)
	}
}
