package mpi

import (
	"unsafe"

	"gat/internal/sim"
)

// Isend posts a non-blocking send of bytes to rank dst with the given
// tag. kind selects the buffer location; both sides of a match must
// agree. The request completes when the data has been delivered to the
// receiver's buffer (rendezvous semantics, appropriate for the halo
// sizes Jacobi3D exchanges).
func (r *Rank) Isend(dst, tag int, bytes int64, kind BufKind) *Request {
	r.proc.Sleep(r.w.Opt.CallOverhead)
	req := r.w.reqs.New()
	w := r.w
	key := newMatchKey(r.id, dst, tag)
	s := w.slot(key)
	if len(s.recvs) > 0 {
		pr := s.recvs[0]
		n := copy(s.recvs, s.recvs[1:])
		s.recvs[n] = pendingRecv{}
		s.recvs = s.recvs[:n]
		if n == 0 && len(s.sends) == 0 {
			w.release(key, s)
		}
		w.start(key, bytes, kind, pr.kind, req, pr.req)
		return req
	}
	s.sends = append(s.sends, pendingSend{bytes: bytes, kind: kind, req: req})
	return req
}

// Irecv posts a non-blocking receive from rank src with the given tag.
func (r *Rank) Irecv(src, tag int, kind BufKind) *Request {
	r.proc.Sleep(r.w.Opt.CallOverhead)
	req := r.w.reqs.New()
	w := r.w
	key := newMatchKey(src, r.id, tag)
	s := w.slot(key)
	if len(s.sends) > 0 {
		ps := s.sends[0]
		n := copy(s.sends, s.sends[1:])
		s.sends[n] = pendingSend{}
		s.sends = s.sends[:n]
		if n == 0 && len(s.recvs) == 0 {
			w.release(key, s)
		}
		w.start(key, ps.bytes, ps.kind, kind, ps.req, req)
		return req
	}
	s.recvs = append(s.recvs, pendingRecv{kind: kind, req: req})
	return req
}

// matchDone links a matched pair's completion: when the transfer's
// arrived signal fires, both request signals fire from one event, in
// send-then-receive order — two separate completion events would give
// an interleaving point the real sequence does not have.
type matchDone struct {
	sreq, rreq *Request
}

// matchDoneFire is the ArgFunc completing a matched send/recv pair.
func matchDoneFire(e *sim.Engine, arg unsafe.Pointer) {
	md := (*matchDone)(arg)
	md.sreq.done.Fire(e)
	md.rreq.done.Fire(e)
}

// start launches the matched transfer on the path implied by the buffer
// kinds.
//
//gat:hotpath
func (w *World) start(key matchKey, bytes int64, sendKind, recvKind BufKind, sreq, rreq *Request) {
	if sendKind != recvKind {
		panic("mpi: mixed host/device buffer match not supported")
	}
	srcNode := w.M.NodeOf(key.src())
	dstNode := w.M.NodeOf(key.dst())
	var arrived *sim.Signal
	switch {
	case sendKind == Host:
		arrived = w.M.Net.Transfer(srcNode, dstNode, bytes, sim.FiredSignal())
	case bytes >= w.Opt.PipelineThreshold && srcNode != dstNode:
		// Spectrum MPI's large-device-message fallback: chunked
		// staging through pinned host buffers.
		arrived = w.M.Net.PipelinedStagedTransfer(
			w.M.GPUOf(key.src()), w.M.GPUOf(key.dst()),
			srcNode, dstNode, bytes, w.M.Cfg.Net.PipelineChunkSize, sim.FiredSignal())
	default:
		arrived = w.M.Net.TransferGPUDirect(srcNode, dstNode, bytes, sim.FiredSignal())
	}
	md := w.matchDones.New()
	md.sreq, md.rreq = sreq, rreq
	arrived.OnFireArg(w.M.Eng, matchDoneFire, unsafe.Pointer(md))
}

// Wait blocks until the request completes.
func (r *Rank) Wait(req *Request) {
	r.proc.Sleep(r.w.Opt.CallOverhead)
	r.proc.Wait(&req.done)
}

// Waitall blocks until every request completes, charging a single call
// overhead (MPI_Waitall).
func (r *Rank) Waitall(reqs ...*Request) {
	r.proc.Sleep(r.w.Opt.CallOverhead)
	g := r.proc.NewWaitSet()
	for _, req := range reqs {
		g.Add(&req.done)
	}
	g.Wait()
}
