package bench

import (
	"gat/internal/app"
)

// Scenarios beyond the paper's evaluation: the same experiment shapes
// pointed at other applications and machine profiles. The non-Summit
// profiles are illustrative datasheet models (see internal/machine),
// so these quantify trends, not paper claims.

func registerExtraScenarios() {
	RegisterScenario(scalingScenario())
	RegisterScenario(jacobiMachineScenario("jacobi-perlmutter", "perlmutter"))
	RegisterScenario(jacobiMachineScenario("jacobi-frontier", "frontier"))
	RegisterScenario(minimdLBScenario("minimd-lb", "summit", 32))
	RegisterScenario(minimdLBScenario("minimd-frontier", "frontier", 16))
	RegisterScenario(minimdODFScenario())
	RegisterScenario(ringODFScenario("ring-odf", "summit"))
	RegisterScenario(ringODFScenario("ring-odf-perlmutter", "perlmutter"))
}

// scalingScenario is the app-generic scaling sweep: one series per
// variant of the resolved application, each run with the app's default
// parameters at every node count. It is the scenario -app retargets:
//
//	sweep -scenario scaling -app minimd -machine frontier
func scalingScenario() *Scenario {
	return &Scenario{
		Name:  "scaling",
		Title: "Scaling of every variant, app defaults per node count",
		App:   "jacobi3d", Machine: "summit", Kind: KindExtra,
		XLabel: "nodes", YLabel: "time/iter (ms)",
		Axis: nodeAxis(1, 64),
		SeriesFor: func(a app.App) []SeriesDef {
			var out []SeriesDef
			for _, v := range a.Variants() {
				v := v
				out = append(out, SeriesDef{v, func(c *Cell) Point {
					r := c.Run(v, c.Defaults())
					c.Progress("t=%v", r.TimePerIter)
					return Point{Nodes: c.Nodes, Value: ms(r.TimePerIter)}
				}})
			}
			return out
		},
	}
}

// jacobiMachineScenario is the Fig 7b experiment shape (weak scaling
// of the small problem across all four variants, fixed ODF-4 instead
// of a best-ODF search to keep cross-machine sweeps cheap) on a
// non-Summit profile.
func jacobiMachineScenario(name, profile string) *Scenario {
	cell := func(variant string) CellFn {
		return func(c *Cell) Point {
			p := c.Defaults() // weak-scaled 192^3/node, ODF-4
			r := c.Run(variant, p)
			c.Progress("t=%v", r.TimePerIter)
			return Point{Nodes: c.Nodes, Value: us(r.TimePerIter)}
		}
	}
	return &Scenario{
		Name:  name,
		Title: "Weak scaling 192^3/node on " + profile + " (illustrative profile)",
		App:   "jacobi3d", Machine: profile, Kind: KindExtra,
		XLabel: "nodes", YLabel: "time/iter (us)",
		Axis: nodeAxis(1, 64),
		Series: []SeriesDef{
			{"MPI-H", cell("mpi-h")},
			{"MPI-D", cell("mpi-d")},
			{"Charm-H", cell("charm-h")},
			{"Charm-D", cell("charm-d")},
		},
	}
}

// minimdLBScenario weak-scales the miniMD proxy and measures what
// periodic greedy load balancing buys on its non-uniform patch
// densities.
func minimdLBScenario(name, profile string, hi int) *Scenario {
	cell := func(variant string) CellFn {
		return func(c *Cell) Point {
			r := c.Run(variant, app.Params{ODF: 4})
			c.Progress("t=%v", r.TimePerIter)
			return Point{Nodes: c.Nodes, Value: ms(r.TimePerIter)}
		}
	}
	return &Scenario{
		Name:  name,
		Title: "miniMD static vs load-balanced patches on " + profile,
		App:   "minimd", Machine: profile, Kind: KindExtra,
		XLabel: "nodes", YLabel: "time/step (ms)",
		Axis: nodeAxis(1, hi),
		Series: []SeriesDef{
			{"Static", cell("charm-static")},
			{"LoadBalanced", cell("charm-lb")},
		},
	}
}

// minimdODFScenario sweeps the patch overdecomposition factor at a
// fixed machine size — the miniMD analogue of abl-odf.
func minimdODFScenario() *Scenario {
	cell := func(variant string) CellFn {
		return func(c *Cell) Point {
			r := c.Run(variant, app.Params{ODF: c.X})
			c.Progress("t=%v", r.TimePerIter)
			return Point{Nodes: c.X, Value: ms(r.TimePerIter)}
		}
	}
	return &Scenario{
		Name:  "minimd-odf",
		Title: "miniMD ODF sensitivity at a fixed machine size",
		App:   "minimd", Machine: "summit", Kind: KindExtra,
		XLabel: "odf", YLabel: "time/step (ms)",
		Axis: func(opt Options) []AxisPoint {
			nodes := scaleNodes(4, opt)
			var pts []AxisPoint
			for _, odf := range []int{1, 2, 4, 8} {
				pts = append(pts, AxisPoint{X: odf, Nodes: nodes})
			}
			return pts
		},
		Series: []SeriesDef{
			{"Static", cell("charm-static")},
			{"LoadBalanced", cell("charm-lb")},
		},
	}
}

// ringODFScenario sweeps the ring app's overdecomposition factor on a
// two-node machine: the quickstart experiment (overdecomposition hides
// communication) as a registered scenario.
func ringODFScenario(name, profile string) *Scenario {
	return &Scenario{
		Name:  name,
		Title: "Ring of GPU tasks: ODF hides communication, on " + profile,
		App:   "ring", Machine: profile, Kind: KindExtra,
		XLabel: "odf", YLabel: "time/step (ms)",
		Axis: func(opt Options) []AxisPoint {
			var pts []AxisPoint
			for _, odf := range []int{1, 2, 4, 8} {
				pts = append(pts, AxisPoint{X: odf, Nodes: 2})
			}
			return pts
		},
		Series: []SeriesDef{
			{"Ring", func(c *Cell) Point {
				r := c.Run("ring", app.Params{ODF: c.X})
				c.Progress("t=%v", r.TimePerIter)
				return Point{Nodes: c.X, Value: ms(r.TimePerIter)}
			}},
		},
	}
}
