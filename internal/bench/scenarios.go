package bench

import (
	"gat/internal/app"
	"gat/internal/jacobi"
	"gat/internal/machine"
	"gat/internal/netsim"
)

// Scenarios beyond the paper's evaluation: the same experiment shapes
// pointed at other applications and machine profiles, plus the
// topology/congestion studies over the detailed contention fabric. The
// non-Summit profiles are illustrative datasheet models (see
// internal/machine), so these quantify trends, not paper claims.

func registerExtraScenarios() {
	RegisterScenario(scalingScenario())
	RegisterScenario(jacobiMachineScenario("jacobi-perlmutter", "perlmutter"))
	RegisterScenario(jacobiMachineScenario("jacobi-frontier", "frontier"))
	RegisterScenario(minimdLBScenario("minimd-lb", "summit", 32))
	RegisterScenario(minimdLBScenario("minimd-frontier", "frontier", 16))
	RegisterScenario(minimdODFScenario())
	RegisterScenario(ringODFScenario("ring-odf", "summit"))
	RegisterScenario(ringODFScenario("ring-odf-perlmutter", "perlmutter"))
	RegisterScenario(jacobiTaperScenario())
	RegisterScenario(jacobiTaperMsgScenario())
	RegisterScenario(minimdTaperScenario())
	RegisterScenario(jacobiMachineScenario("jacobi-dragonfly", "perlmutter-dragonfly"))
	// The dragonfly profiles group 16 nodes per router group, so the
	// axis must reach 32 for any transfer to cross a global link.
	RegisterScenario(minimdLBScenario("minimd-dragonfly", "frontier-dragonfly", 32))
	RegisterScenario(jacobiExascaleScenario())
	registerRoutingScenarios()
}

// congested copies the run's fabric-link congestion summary and
// routing policy onto its figure point (zeros/empty on NIC-only
// machines), so per-run reports say where a point was network-bound
// and which route-choice policy made it so.
func congested(p Point, r app.Metrics) Point {
	p.MaxLinkUtil, p.MeanLinkUtil = r.MaxLinkUtil, r.MeanLinkUtil
	p.Routing = r.Routing
	return p
}

// taperedAt returns the machine hook attaching a contention fabric
// tapered by ratio t to the cell's base profile (3 parallel uplinks
// per switch group, matching the summit-tapered-* profiles).
func taperedAt(t float64) func(*machine.Config) {
	return func(cfg *machine.Config) {
		cfg.Fabric = &netsim.FabricConfig{Taper: t, UplinksPerPod: 3}
	}
}

// taperAxis sweeps the taper ratio x in {1,4,16,32} at a fixed
// machine size — hi nodes, at least two switch groups on the target
// profile so cross-group traffic exists for the fabric to contend.
// The axis reaches deep tapers deliberately: on two Summit pods the
// halo plane only saturates the shared uplinks past ~8:1, and the
// interesting comparison — blocking MPI degrading while overdecomposed
// async variants stay flat — needs the saturated end.
func taperAxis(hi int) func(opt Options) []AxisPoint {
	return func(opt Options) []AxisPoint {
		nodes := scaleNodes(hi, opt)
		var pts []AxisPoint
		for _, taper := range []int{1, 4, 16, 32} {
			pts = append(pts, AxisPoint{X: taper, Nodes: nodes})
		}
		return pts
	}
}

// jacobiTaperScenario sweeps the fabric taper ratio under the Jacobi3D
// halo exchange: two Summit pods (36 nodes), host-staged MPI and the
// GPU-aware Charm variant. At taper 1:1 the fabric is fully
// provisioned and adds no contention; as the ratio grows the shared
// uplinks saturate and MPI-H's iteration time rises, while the
// overdecomposed Charm-D stays flat until the links hit ~100%
// utilization — the paper's overlap claim stressed by, and surviving,
// a pushed-back network.
func jacobiTaperScenario() *Scenario {
	cell := func(variant string) CellFn {
		return func(c *Cell) Point {
			m := c.NewMachineWith(taperedAt(float64(c.X)))
			r := c.RunOn(m, variant, c.Defaults())
			c.Progress("t=%v net=%.0f%%", r.TimePerIter, 100*r.MaxLinkUtil)
			return congested(Point{Nodes: c.X, Value: us(r.TimePerIter)}, r)
		}
	}
	return &Scenario{
		Name:  "jacobi-taper",
		Title: "Jacobi3D halo exchange vs fat-tree taper ratio, 2 Summit pods",
		App:   "jacobi3d", Machine: "summit", Kind: KindExtra,
		// Version covers the cell-embedded fabric parameters
		// (taperedAt's uplink count, the taper axis): bump on change.
		Version: 1,
		XLabel:  "taper", YLabel: "time/iter (us)",
		Axis: taperAxis(36),
		Series: []SeriesDef{
			{"MPI-H", cell("mpi-h")},
			{"Charm-D", cell("charm-d")},
		},
	}
}

// jacobiTaperMsgScenario sweeps the halo message size (per-node grid
// side) under fixed taper ratios: the message-size axis of the
// congestion study. Larger grids exchange larger halos, so the tapered
// series diverge from the 1:1 baseline as messages grow.
func jacobiTaperMsgScenario() *Scenario {
	cell := func(taper float64) CellFn {
		return func(c *Cell) Point {
			m := c.NewMachineWith(taperedAt(taper))
			p := c.Defaults()
			p.Global = jacobi.WeakGlobal([3]int{c.X, c.X, c.X}, c.Nodes)
			r := c.RunOn(m, "mpi-d", p)
			c.Progress("t=%v net=%.0f%%", r.TimePerIter, 100*r.MaxLinkUtil)
			return congested(Point{Nodes: c.X, Value: us(r.TimePerIter)}, r)
		}
	}
	return &Scenario{
		Name:  "jacobi-taper-msgsize",
		Title: "Jacobi3D MPI-D vs per-node grid size under fabric taper, 2 Summit pods",
		App:   "jacobi3d", Machine: "summit", Kind: KindExtra,
		// Version covers the per-series taper constants and fabric
		// parameters embedded in the cells.
		Version: 1,
		XLabel:  "side/node", YLabel: "time/iter (us)",
		Axis: func(opt Options) []AxisPoint {
			nodes := scaleNodes(36, opt)
			var pts []AxisPoint
			for _, side := range []int{128, 192, 256} {
				pts = append(pts, AxisPoint{X: side, Nodes: nodes})
			}
			return pts
		},
		Series: []SeriesDef{
			{"Taper1", cell(1)},
			{"Taper8", cell(8)},
			{"Taper32", cell(32)},
		},
	}
}

// minimdTaperScenario sweeps the fabric taper ratio under the miniMD
// proxy's neighbor exchange at a fixed machine size. It is the
// contrast case: the 1-D patch chain crosses the pod boundary exactly
// once, so even deep tapers leave it latency-bound — step time stays
// flat while the link-utilization column confirms the fabric saw the
// (small) cross-pod flow. Not every workload congests.
func minimdTaperScenario() *Scenario {
	return &Scenario{
		Name:  "minimd-taper",
		Title: "miniMD neighbor exchange vs fat-tree taper ratio",
		App:   "minimd", Machine: "summit", Kind: KindExtra,
		// Version covers the cell-embedded fabric parameters.
		Version: 1,
		XLabel:  "taper", YLabel: "time/step (ms)",
		Axis: taperAxis(36),
		Series: []SeriesDef{
			{"Static", func(c *Cell) Point {
				m := c.NewMachineWith(taperedAt(float64(c.X)))
				r := c.RunOn(m, "charm-static", app.Params{ODF: 4})
				c.Progress("t=%v net=%.0f%%", r.TimePerIter, 100*r.MaxLinkUtil)
				return congested(Point{Nodes: c.X, Value: ms(r.TimePerIter)}, r)
			}},
		},
	}
}

// jacobiExascaleScenario weak-scales the Jacobi3D LP model (see
// jacobi.RunExa) to exascale node counts on the dragonfly profile —
// far past what the full per-GPU simulation sweeps reach. It is the
// first app-less scenario: the machine config is consumed as a cost
// model only, and the cell honors the sweep's -shards knob, running
// the point on the conservative parallel-in-run engine with
// byte-identical output at any shard count (the pdes guarantee; the
// partition diagnostics go to progress lines, never into the point).
func jacobiExascaleScenario() *Scenario {
	cell := func(overlap bool) CellFn {
		return func(c *Cell) Point {
			wu, it := c.Iterations()
			r := jacobi.RunExa(c.Config(), jacobi.Config{
				Global: jacobi.WeakGlobal([3]int{192, 192, 192}, c.Nodes),
				Warmup: wu, Iters: it,
			}, jacobi.ExaOpts{Shards: c.Shards(), Overlap: overlap})
			c.Progress("t=%v shards=%d windows=%d cross=%d",
				r.TimePerIter, r.Shards, r.Windows, r.CrossMessages)
			return Point{Nodes: c.Nodes, Value: us(r.TimePerIter)}
		}
	}
	return &Scenario{
		Name:  "jacobi-exascale",
		Title: "Jacobi3D LP model weak scaling 192^3/node, perlmutter-dragonfly",
		App:   "", Machine: "perlmutter-dragonfly", Kind: KindExtra,
		// Version covers the LP cost model's fixed problem base and
		// schedule constants embedded in the cell.
		Version: 1,
		XLabel:  "nodes", YLabel: "time/iter (us)",
		Axis: nodeAxis(1024, 16384),
		Series: []SeriesDef{
			{"Blocking", cell(false)},
			{"Overlap", cell(true)},
		},
	}
}

// scalingScenario is the app-generic scaling sweep: one series per
// variant of the resolved application, each run with the app's default
// parameters at every node count. It is the scenario -app retargets:
//
//	sweep -scenario scaling -app minimd -machine frontier
func scalingScenario() *Scenario {
	return &Scenario{
		Name:  "scaling",
		Title: "Scaling of every variant, app defaults per node count",
		App:   "jacobi3d", Machine: "summit", Kind: KindExtra,
		XLabel: "nodes", YLabel: "time/iter (ms)",
		Axis: nodeAxis(1, 64),
		SeriesFor: func(a app.App) []SeriesDef {
			var out []SeriesDef
			for _, v := range a.Variants() {
				v := v
				out = append(out, SeriesDef{v, func(c *Cell) Point {
					r := c.Run(v, c.Defaults())
					c.Progress("t=%v", r.TimePerIter)
					return congested(Point{Nodes: c.Nodes, Value: ms(r.TimePerIter)}, r)
				}})
			}
			return out
		},
	}
}

// jacobiMachineScenario is the Fig 7b experiment shape (weak scaling
// of the small problem across all four variants, fixed ODF-4 instead
// of a best-ODF search to keep cross-machine sweeps cheap) on a
// non-Summit profile.
func jacobiMachineScenario(name, profile string) *Scenario {
	cell := func(variant string) CellFn {
		return func(c *Cell) Point {
			p := c.Defaults() // weak-scaled 192^3/node, ODF-4
			r := c.Run(variant, p)
			c.Progress("t=%v", r.TimePerIter)
			return congested(Point{Nodes: c.Nodes, Value: us(r.TimePerIter)}, r)
		}
	}
	return &Scenario{
		Name:  name,
		Title: "Weak scaling 192^3/node on " + profile + " (illustrative profile)",
		App:   "jacobi3d", Machine: profile, Kind: KindExtra,
		XLabel: "nodes", YLabel: "time/iter (us)",
		Axis: nodeAxis(1, 64),
		Series: []SeriesDef{
			{"MPI-H", cell("mpi-h")},
			{"MPI-D", cell("mpi-d")},
			{"Charm-H", cell("charm-h")},
			{"Charm-D", cell("charm-d")},
		},
	}
}

// minimdLBScenario weak-scales the miniMD proxy and measures what
// periodic greedy load balancing buys on its non-uniform patch
// densities.
func minimdLBScenario(name, profile string, hi int) *Scenario {
	cell := func(variant string) CellFn {
		return func(c *Cell) Point {
			r := c.Run(variant, app.Params{ODF: 4})
			c.Progress("t=%v", r.TimePerIter)
			return congested(Point{Nodes: c.Nodes, Value: ms(r.TimePerIter)}, r)
		}
	}
	return &Scenario{
		Name:  name,
		Title: "miniMD static vs load-balanced patches on " + profile,
		App:   "minimd", Machine: profile, Kind: KindExtra,
		XLabel: "nodes", YLabel: "time/step (ms)",
		Axis: nodeAxis(1, hi),
		Series: []SeriesDef{
			{"Static", cell("charm-static")},
			{"LoadBalanced", cell("charm-lb")},
		},
	}
}

// minimdODFScenario sweeps the patch overdecomposition factor at a
// fixed machine size — the miniMD analogue of abl-odf.
func minimdODFScenario() *Scenario {
	cell := func(variant string) CellFn {
		return func(c *Cell) Point {
			r := c.Run(variant, app.Params{ODF: c.X})
			c.Progress("t=%v", r.TimePerIter)
			return Point{Nodes: c.X, Value: ms(r.TimePerIter)}
		}
	}
	return &Scenario{
		Name:  "minimd-odf",
		Title: "miniMD ODF sensitivity at a fixed machine size",
		App:   "minimd", Machine: "summit", Kind: KindExtra,
		XLabel: "odf", YLabel: "time/step (ms)",
		Axis: func(opt Options) []AxisPoint {
			nodes := scaleNodes(4, opt)
			var pts []AxisPoint
			for _, odf := range []int{1, 2, 4, 8} {
				pts = append(pts, AxisPoint{X: odf, Nodes: nodes})
			}
			return pts
		},
		Series: []SeriesDef{
			{"Static", cell("charm-static")},
			{"LoadBalanced", cell("charm-lb")},
		},
	}
}

// ringODFScenario sweeps the ring app's overdecomposition factor on a
// two-node machine: the quickstart experiment (overdecomposition hides
// communication) as a registered scenario.
func ringODFScenario(name, profile string) *Scenario {
	return &Scenario{
		Name:  name,
		Title: "Ring of GPU tasks: ODF hides communication, on " + profile,
		App:   "ring", Machine: profile, Kind: KindExtra,
		XLabel: "odf", YLabel: "time/step (ms)",
		Axis: func(opt Options) []AxisPoint {
			var pts []AxisPoint
			for _, odf := range []int{1, 2, 4, 8} {
				pts = append(pts, AxisPoint{X: odf, Nodes: 2})
			}
			return pts
		},
		Series: []SeriesDef{
			{"Ring", func(c *Cell) Point {
				r := c.Run("ring", app.Params{ODF: c.X})
				c.Progress("t=%v", r.TimePerIter)
				return Point{Nodes: c.X, Value: ms(r.TimePerIter)}
			}},
		},
	}
}
