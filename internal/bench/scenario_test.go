package bench

import (
	"testing"

	"gat/internal/app"
)

// TestScenarioRegistryInvariants asserts what cmd/sweep -list promises:
// unique names, and a registry spanning several apps and machine
// profiles beyond the paper's single (jacobi3d, summit) pair.
func TestScenarioRegistryInvariants(t *testing.T) {
	seen := map[string]bool{}
	appsUsed := map[string]bool{}
	machinesUsed := map[string]bool{}
	for _, s := range Scenarios() {
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if s.App != "" {
			if _, err := app.ByName(s.App); err != nil {
				t.Errorf("scenario %q: %v", s.Name, err)
			}
			appsUsed[s.App] = true
		}
		machinesUsed[s.Machine] = true
	}
	if len(seen) < 12 {
		t.Errorf("registry has %d scenarios, want >= 12", len(seen))
	}
	if len(appsUsed) < 2 {
		t.Errorf("scenarios span %d apps, want >= 2", len(appsUsed))
	}
	if len(machinesUsed) < 3 {
		t.Errorf("scenarios span %d machine profiles, want >= 3", len(machinesUsed))
	}
}

// TestAllScenariosBuildNonEmptyPlans compiles every registered
// scenario (axis + series + app + machine resolution, no simulation)
// and checks the plan shape.
func TestAllScenariosBuildNonEmptyPlans(t *testing.T) {
	for _, s := range Scenarios() {
		p, err := s.Plan(quickOpt(), Overrides{})
		if err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if len(p.Specs) == 0 {
			t.Errorf("%s: empty plan", s.Name)
		}
		if len(p.Skeleton.Series) == 0 {
			t.Errorf("%s: no series", s.Name)
		}
		if p.Skeleton.ID != s.Name {
			t.Errorf("%s: plan id %q", s.Name, p.Skeleton.ID)
		}
		for _, spec := range p.Specs {
			if spec.Scenario != s.Name || spec.Machine == "" {
				t.Errorf("%s: spec %s missing composition metadata: %+v", s.Name, spec.Name(), spec)
			}
		}
	}
}

// TestScenarioMachineOverride runs one Jacobi figure cell on a
// non-Summit profile and checks the override is both recorded and
// consequential.
func TestScenarioMachineOverride(t *testing.T) {
	opt := Options{MaxNodes: 1, Warmup: 1, Iters: 2}
	base, err := PlanScenario("fig7b", opt, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	over, err := PlanScenario("fig7b", opt, Overrides{Machine: "frontier"})
	if err != nil {
		t.Fatal(err)
	}
	if base.Specs[0].Machine != "summit" || over.Specs[0].Machine != "frontier" {
		t.Fatalf("machine metadata: base %q, override %q",
			base.Specs[0].Machine, over.Specs[0].Machine)
	}
	a, b := base.Specs[0].Execute(), over.Specs[0].Execute()
	if a.Value <= 0 || b.Value <= 0 {
		t.Fatalf("non-positive values: %v, %v", a.Value, b.Value)
	}
	if a.Value == b.Value {
		t.Fatal("frontier profile produced identical timing to summit; override not applied")
	}
}

// TestScenarioAppOverride retargets the generic scaling scenario and
// checks fixed-app scenarios reject -app.
func TestScenarioAppOverride(t *testing.T) {
	p, err := PlanScenario("scaling", Options{MaxNodes: 1, Iters: 2}, Overrides{App: "ring"})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Skeleton.Series) != 1 || p.Skeleton.Series[0].Name != "ring" {
		t.Fatalf("scaling over ring should have the ring variant as its only series: %+v", p.Skeleton.Series)
	}
	if pt := p.Specs[0].Execute(); pt.Value <= 0 {
		t.Fatalf("ring scaling cell returned %v", pt.Value)
	}
	if _, err := PlanScenario("fig6a", Options{}, Overrides{App: "minimd"}); err == nil {
		t.Fatal("fixed-app scenario should reject an app override")
	}
	if _, err := PlanScenario("scaling", Options{}, Overrides{App: "nope"}); err == nil {
		t.Fatal("unknown app override should error")
	}
	if _, err := PlanScenario("fig6a", Options{}, Overrides{Machine: "nope"}); err == nil {
		t.Fatal("unknown machine override should error")
	}
}

// TestIterationResolution pins the -iters/-warmup semantics: sweep
// options override even an app's non-zero defaults, and the recorded
// spec metadata reflects each app's own defaults otherwise.
func TestIterationResolution(t *testing.T) {
	// ring defaults to 20 steps; -iters must still win.
	p, err := PlanScenario("ring-odf", Options{Iters: 3}, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Specs[0].Iters; got != 3 {
		t.Fatalf("ring-odf spec iters with -iters 3: got %d", got)
	}
	// Without overrides, spec metadata records the app's defaults —
	// minimd runs 12 timesteps with no warmup, not jacobi's 3+10.
	p, err = PlanScenario("minimd-lb", Options{MaxNodes: 1}, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Specs[0]; got.Iters != 12 || got.Warmup != 0 {
		t.Fatalf("minimd-lb spec metadata: warmup=%d iters=%d, want 0/12", got.Warmup, got.Iters)
	}
	p, err = PlanScenario("fig6a", Options{MaxNodes: 1}, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Specs[0]; got.Iters != 10 || got.Warmup != 3 {
		t.Fatalf("fig6a spec metadata: warmup=%d iters=%d, want 3/10", got.Warmup, got.Iters)
	}
}

// TestNonSummitNonJacobiEndToEnd is the acceptance combination: a
// minimd scenario on the frontier profile, run through the plan path.
func TestNonSummitNonJacobiEndToEnd(t *testing.T) {
	p, err := PlanScenario("minimd-lb", Options{MaxNodes: 1, Iters: 4}, Overrides{Machine: "frontier"})
	if err != nil {
		t.Fatal(err)
	}
	fig := p.Run()
	if len(fig.Series) != 2 {
		t.Fatalf("want 2 series, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		for _, pt := range s.Points {
			if pt.Value <= 0 {
				t.Fatalf("%s: non-positive time %v", s.Name, pt.Value)
			}
		}
	}
}
