package bench

import (
	"fmt"
	"io"

	"gat/internal/jacobi"
	"gat/internal/sim"
)

// Claims are the paper's qualitative statements (DESIGN.md §4, C1–C7),
// checked programmatically against the simulation. Each claim runs at a
// configurable scale; thresholds encode "shape" (orderings and rough
// factors), not absolute times.

// ClaimResult is one verified claim.
type ClaimResult struct {
	ID     string
	Text   string
	Pass   bool
	Detail string
}

// Claim is a named check.
type Claim struct {
	ID   string
	Text string
	Run  func(opt Options) ClaimResult
}

// Claims returns all claim checks.
func Claims() []Claim {
	return []Claim{
		{"C1", "Overdecomposition helps the large weak-scaling problem (best ODF > 1 for Charm-H and Charm-D)", claimC1},
		{"C2", "Combining overlap and GPU-aware communication beats ODF-1 host staging substantially at scale", claimC2},
		{"C3", "MPI-D loses its advantage over MPI-H for 9 MB halos across nodes (pipelined staging protocol change)", claimC3},
		{"C4", "Small problem (192^3/node): ODF-1 is best and GPU-aware communication helps both runtimes", claimC4},
		{"C5", "Strong scaling: Charm-D is fastest, gains more from ODF-2 than Charm-H, and reaches sub-ms at scale", claimC5},
		{"C6", "Kernel fusion C improves the strong-scaling limit, more at ODF-8 than ODF-1", claimC6},
		{"C7", "CUDA graphs speed up ODF-8 without fusion; the benefit shrinks with fusion and at ODF-1", claimC7},
	}
}

// CheckClaims runs every claim and writes a PASS/FAIL report.
func CheckClaims(opt Options, w io.Writer) bool {
	all := true
	for _, c := range Claims() {
		res := c.Run(opt)
		status := "PASS"
		if !res.Pass {
			status = "FAIL"
			all = false
		}
		fmt.Fprintf(w, "%-4s %s\n     %s\n     -> %s\n", res.ID, status, c.Text, res.Detail)
	}
	return all
}

// scaleNodes picks the largest node count <= MaxNodes (default hi).
func scaleNodes(hi int, opt Options) int {
	n := hi
	for opt.MaxNodes > 0 && n > opt.MaxNodes {
		n /= 2
	}
	if n < 1 {
		n = 1
	}
	return n
}

// runCharm and runMPI execute one variant on a fresh machine. seed
// feeds the network jitter RNG (figure specs pass their RunSpec seed;
// the claim checks pass 0 — they are threshold checks, not figure
// points).
func runCharm(opt Options, global [3]int, nodes int, seed uint64, co jacobi.CharmOpts) jacobi.Result {
	return jacobi.RunCharm(opt.machineFor(nodes, seed), opt.cfg(global), co)
}

func runMPI(opt Options, global [3]int, nodes int, seed uint64, mo jacobi.MPIOpts) jacobi.Result {
	return jacobi.RunMPI(opt.machineFor(nodes, seed), opt.cfg(global), mo)
}

func claimC1(opt Options) ClaimResult {
	nodes := scaleNodes(4, opt)
	global := weakGlobal(weakBaseLarge, nodes)
	_, odfH := bestODF(opt, opt.cfg(global), nodes, 0, jacobi.CharmOpts{}.Optimized(), []int{1, 2, 4, 8})
	_, odfD := bestODF(opt, opt.cfg(global), nodes, 0, jacobi.CharmOpts{GPUAware: true}.Optimized(), []int{1, 2, 4, 8})
	return ClaimResult{ID: "C1",
		Pass:   odfH > 1 && odfD > 1,
		Detail: fmt.Sprintf("nodes=%d best ODF: Charm-H=%d Charm-D=%d (paper: 4 and 2)", nodes, odfH, odfD)}
}

func claimC2(opt Options) ClaimResult {
	nodes := scaleNodes(64, opt)
	global := weakGlobal(weakBaseLarge, nodes)
	base := runCharm(opt, global, nodes, 0, jacobi.CharmOpts{ODF: 1}.Optimized())
	best, odf := bestODF(opt, opt.cfg(global), nodes, 0, jacobi.CharmOpts{GPUAware: true}.Optimized(), []int{1, 2, 4})
	gain := float64(base.TimePerIter)/float64(best.TimePerIter) - 1
	return ClaimResult{ID: "C2",
		Pass: best.TimePerIter < base.TimePerIter,
		Detail: fmt.Sprintf("nodes=%d ODF-1 Charm-H %v vs Charm-D ODF-%d %v (%.0f%% faster; paper: 61%% at 512 nodes)",
			nodes, base.TimePerIter, odf, best.TimePerIter, gain*100)}
}

func claimC3(opt Options) ClaimResult {
	nodes := scaleNodes(16, opt)
	if nodes < 2 {
		nodes = 2
	}
	global := weakGlobal(weakBaseLarge, nodes)
	h := runMPI(opt, global, nodes, 0, jacobi.MPIOpts{})
	d := runMPI(opt, global, nodes, 0, jacobi.MPIOpts{Device: true})
	ratio := float64(h.TimePerIter) / float64(d.TimePerIter)
	return ClaimResult{ID: "C3",
		Pass: ratio < 1.35 && ratio > 0.7,
		Detail: fmt.Sprintf("nodes=%d MPI-H/MPI-D = %.2f (pipelined staging erases the GPUDirect gap; paper: ~1.0)",
			nodes, ratio)}
}

func claimC4(opt Options) ClaimResult {
	nodes := scaleNodes(8, opt)
	global := weakGlobal(weakBaseSmall, nodes)
	_, odfH := bestODF(opt, opt.cfg(global), nodes, 0, jacobi.CharmOpts{}.Optimized(), []int{1, 2, 4})
	_, odfD := bestODF(opt, opt.cfg(global), nodes, 0, jacobi.CharmOpts{GPUAware: true}.Optimized(), []int{1, 2, 4})
	mh := runMPI(opt, global, nodes, 0, jacobi.MPIOpts{})
	md := runMPI(opt, global, nodes, 0, jacobi.MPIOpts{Device: true})
	ch := runCharm(opt, global, nodes, 0, jacobi.CharmOpts{ODF: 1}.Optimized())
	cd := runCharm(opt, global, nodes, 0, jacobi.CharmOpts{ODF: 1, GPUAware: true}.Optimized())
	pass := odfH == 1 && odfD == 1 && md.TimePerIter < mh.TimePerIter && cd.TimePerIter < ch.TimePerIter
	return ClaimResult{ID: "C4",
		Pass: pass,
		Detail: fmt.Sprintf("nodes=%d best ODFs H/D=%d/%d; MPI %v->%v, Charm %v->%v with GPU-awareness",
			nodes, odfH, odfD, mh.TimePerIter, md.TimePerIter, ch.TimePerIter, cd.TimePerIter)}
}

func claimC5(opt Options) ClaimResult {
	nodes := scaleNodes(512, opt)
	if nodes < 8 {
		nodes = 8
	}
	h1 := runCharm(opt, strongGlobal, nodes, 0, jacobi.CharmOpts{ODF: 1}.Optimized())
	h2 := runCharm(opt, strongGlobal, nodes, 0, jacobi.CharmOpts{ODF: 2}.Optimized())
	d1 := runCharm(opt, strongGlobal, nodes, 0, jacobi.CharmOpts{ODF: 1, GPUAware: true}.Optimized())
	d2 := runCharm(opt, strongGlobal, nodes, 0, jacobi.CharmOpts{ODF: 2, GPUAware: true}.Optimized())
	mh := runMPI(opt, strongGlobal, nodes, 0, jacobi.MPIOpts{})
	gainH := float64(h1.TimePerIter)/float64(h2.TimePerIter) - 1
	gainD := float64(d1.TimePerIter)/float64(d2.TimePerIter) - 1
	best := d2.TimePerIter
	if d1.TimePerIter < best {
		best = d1.TimePerIter
	}
	subMS := nodes < 512 || best < sim.Millisecond
	pass := best < mh.TimePerIter && best < h2.TimePerIter && gainD > gainH && subMS
	return ClaimResult{ID: "C5",
		Pass: pass,
		Detail: fmt.Sprintf("nodes=%d Charm-D best %v (MPI-H %v); ODF-2 gain: Charm-D %.0f%% vs Charm-H %.0f%% (paper: +13%% vs -13%%)",
			nodes, best, mh.TimePerIter, gainD*100, gainH*100)}
}

func claimC6(opt Options) ClaimResult {
	nodes := scaleNodes(128, opt)
	run := func(odf int, f jacobi.Fusion) sim.Time {
		return runCharm(opt, fusionGlobal, nodes, 0,
			jacobi.CharmOpts{ODF: odf, GPUAware: true, Fusion: f}.Optimized()).TimePerIter
	}
	b1, c1 := run(1, jacobi.FusionNone), run(1, jacobi.FusionC)
	b8, c8 := run(8, jacobi.FusionNone), run(8, jacobi.FusionC)
	gain1 := 1 - float64(c1)/float64(b1)
	gain8 := 1 - float64(c8)/float64(b8)
	// Fusion only pays once kernels are fine-grained enough; the
	// paper's own Fig 8a shows no ODF-1 effect until 32 nodes. Below
	// 64 nodes, require only the high-ODF part of the claim.
	pass := c8 < b8 && gain8 > gain1
	if nodes >= 64 {
		pass = pass && c1 < b1
	}
	return ClaimResult{ID: "C6",
		Pass: pass,
		Detail: fmt.Sprintf("nodes=%d fusion-C gain: ODF-1 %.0f%% (paper 20%%), ODF-8 %.0f%% (paper 51%%)",
			nodes, gain1*100, gain8*100)}
}

func claimC7(opt Options) ClaimResult {
	nodes := scaleNodes(128, opt)
	speedup := func(odf int, f jacobi.Fusion) float64 {
		base := runCharm(opt, fusionGlobal, nodes, 0,
			jacobi.CharmOpts{ODF: odf, GPUAware: true, Fusion: f}.Optimized()).TimePerIter
		g := runCharm(opt, fusionGlobal, nodes, 0,
			jacobi.CharmOpts{ODF: odf, GPUAware: true, Fusion: f, Graphs: true}.Optimized()).TimePerIter
		return float64(base) / float64(g)
	}
	none8 := speedup(8, jacobi.FusionNone)
	c8 := speedup(8, jacobi.FusionC)
	return ClaimResult{ID: "C7",
		Pass: none8 > 1.2 && c8 < none8 && c8 < 1.2,
		Detail: fmt.Sprintf("nodes=%d ODF-8 graph speedup: no fusion %.2fx (paper 1.5x), fusion C %.2fx (paper ~1.0x)",
			nodes, none8, c8)}
}
