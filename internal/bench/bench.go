// Package bench is the experiment harness: one generator per figure of
// the paper's evaluation (§IV), each reproducing the figure's series —
// workload, parameter sweep, baselines — on the simulated machine and
// emitting the same rows the paper plots.
//
// A generator does not run anything itself: it produces a Plan, a flat
// list of self-contained RunSpecs (one simulation point each) plus a
// deterministic assembly step. Plan.Run executes serially; the
// internal/sweep orchestrator executes the same specs on a worker pool
// with byte-identical output.
package bench

import (
	"fmt"
	"io"
	"sort"

	"gat/internal/jacobi"
	"gat/internal/machine"
	"gat/internal/sim"
)

// Options tunes a figure generation run.
type Options struct {
	// MaxNodes caps the node-count sweep (0 = the paper's full range).
	MaxNodes int
	// Warmup and Iters override the iteration counts (0 = defaults:
	// 3 warm-up, 10 timed).
	Warmup, Iters int
	// Jitter, when positive, perturbs each network transfer's latency
	// by up to this fraction, seeded per run from the RunSpec seed.
	// Zero (the default) keeps the cost model exactly deterministic.
	Jitter float64
	// Verbose, if non-nil, receives progress lines.
	Verbose io.Writer
}

// machineFor builds the standard Summit machine for one run, wiring
// the jitter knobs so equal (options, seed) pairs reproduce equal
// timelines.
func (o Options) machineFor(nodes int, seed uint64) *machine.Machine {
	cfg := machine.Summit(nodes)
	cfg.Net.JitterFrac = o.Jitter
	cfg.Net.JitterSeed = seed
	return machine.New(cfg)
}

func (o Options) cfg(global [3]int) jacobi.Config {
	return jacobi.Config{Global: global, Warmup: o.Warmup, Iters: o.Iters}.DefaultIterations()
}

func (o Options) progress(format string, args ...any) {
	if o.Verbose != nil {
		fmt.Fprintf(o.Verbose, format+"\n", args...)
	}
}

// Point is one measured value in a series.
type Point struct {
	// Nodes is the x coordinate.
	Nodes int
	// Value is the y value: time per iteration for the timing figures,
	// a dimensionless ratio for the speedup figures.
	Value float64
	// Meta annotates the point (e.g. the best ODF chosen).
	Meta string
}

// Series is one line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is one reproduced figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Generator builds one figure. Plan decomposes the figure into a flat
// list of independent RunSpecs; Run is the serial reference execution.
type Generator struct {
	ID    string
	Title string
	Plan  func(Options) Plan
}

// Run generates the figure serially, in spec order.
func (g Generator) Run(opt Options) Figure { return g.Plan(opt).Run() }

// Generators returns all figure generators in publication order.
func Generators() []Generator {
	return []Generator{
		{"fig6a", "Weak scaling 1536^3/node: Charm-H before vs after optimizations", fig6a},
		{"fig6b", "Strong scaling 3072^3: Charm-H before vs after optimizations", fig6b},
		{"fig7a", "Weak scaling 1536^3/node: MPI-H, MPI-D, Charm-H, Charm-D", fig7a},
		{"fig7b", "Weak scaling 192^3/node: MPI-H, MPI-D, Charm-H, Charm-D", fig7b},
		{"fig7c", "Strong scaling 3072^3: MPI-H, MPI-D, Charm-H, Charm-D", fig7c},
		{"fig8a", "Kernel fusion, strong scaling 768^3, ODF-1", fig8a},
		{"fig8b", "Kernel fusion, strong scaling 768^3, ODF-8", fig8b},
		{"fig9a", "CUDA-graph speedup vs fusion, ODF-1", fig9a},
		{"fig9b", "CUDA-graph speedup vs fusion, ODF-8", fig9b},
	}
}

// Generate runs the generator with the given id.
func Generate(id string, opt Options) (Figure, error) {
	for _, g := range Generators() {
		if g.ID == id {
			return g.Run(opt), nil
		}
	}
	return Figure{}, fmt.Errorf("bench: unknown figure %q", id)
}

// PlanFor resolves id — paper figure or ablation — to its run plan.
func PlanFor(id string, opt Options) (Plan, error) {
	for _, g := range append(Generators(), AblationGenerators()...) {
		if g.ID == id {
			return g.Plan(opt), nil
		}
	}
	return Plan{}, fmt.Errorf("bench: unknown figure %q", id)
}

// nodeSweep returns the geometric node-count range [lo..hi] capped by
// opt.MaxNodes. A cap below lo still yields the single point lo, so a
// figure never comes back empty.
func nodeSweep(lo, hi int, opt Options) []int {
	var out []int
	for n := lo; n <= hi; n *= 2 {
		if opt.MaxNodes > 0 && n > opt.MaxNodes && len(out) > 0 {
			break
		}
		out = append(out, n)
		if opt.MaxNodes > 0 && n > opt.MaxNodes {
			break
		}
	}
	return out
}

// weakGlobal grows the base per-node grid with the node count, doubling
// one dimension per node doubling (z, then y, then x), matching §IV-B.
func weakGlobal(base [3]int, nodes int) [3]int {
	g := base
	axis := 2
	for f := nodes; f > 1; f /= 2 {
		g[axis] *= 2
		axis--
		if axis < 0 {
			axis = 2
		}
	}
	return g
}

// bestODF runs the Charm variant over the candidate ODFs and returns
// the fastest result, as the paper does for every Charm data point
// (§IV-A: "the one with the best performance is chosen"). All
// candidate runs share one seed: they are alternatives for the same
// data point, not separate measurements.
func bestODF(opt Options, cfg jacobi.Config, nodes int, seed uint64, base jacobi.CharmOpts, odfs []int) (jacobi.Result, int) {
	var best jacobi.Result
	bestODF := 0
	for _, odf := range odfs {
		opts := base
		opts.ODF = odf
		r := jacobi.RunCharm(opt.machineFor(nodes, seed), cfg, opts)
		if bestODF == 0 || r.TimePerIter < best.TimePerIter {
			best, bestODF = r, odf
		}
	}
	return best, bestODF
}

// odfCandidates returns the ODF search set, trimmed at large node
// counts where high ODFs are both slow to simulate and never optimal
// (§IV-C shows the best ODF falls as scale rises).
func odfCandidates(nodes int) []int {
	switch {
	case nodes <= 16:
		return []int{1, 2, 4, 8, 16}
	case nodes <= 64:
		return []int{1, 2, 4, 8}
	default:
		return []int{1, 2, 4}
	}
}

// ms converts simulated time to milliseconds for figure values.
func ms(t sim.Time) float64 { return t.Millis() }

// us converts simulated time to microseconds for figure values.
func us(t sim.Time) float64 { return t.Micros() }

// WriteTable renders the figure as an aligned text table.
func (f Figure) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "# y: %s\n", f.YLabel)
	xs := f.xValues()
	fmt.Fprintf(w, "%-8s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%16s", s.Name)
	}
	fmt.Fprintln(w)
	for _, x := range xs {
		fmt.Fprintf(w, "%-8d", x)
		for _, s := range f.Series {
			if p, ok := s.at(x); ok {
				cell := fmt.Sprintf("%.3f", p.Value)
				if p.Meta != "" {
					cell += " (" + p.Meta + ")"
				}
				fmt.Fprintf(w, "%16s", cell)
			} else {
				fmt.Fprintf(w, "%16s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteCSV renders the figure as CSV rows (figure,series,nodes,value,meta).
func (f Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "figure,series,nodes,value,meta"); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%g,%s\n", f.ID, s.Name, p.Nodes, p.Value, p.Meta); err != nil {
				return err
			}
		}
	}
	return nil
}

func (f Figure) xValues() []int {
	seen := map[int]bool{}
	var xs []int
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.Nodes] {
				seen[p.Nodes] = true
				xs = append(xs, p.Nodes)
			}
		}
	}
	sort.Ints(xs)
	return xs
}

func (s Series) at(x int) (Point, bool) {
	for _, p := range s.Points {
		if p.Nodes == x {
			return p, true
		}
	}
	return Point{}, false
}
