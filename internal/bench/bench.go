// Package bench is the experiment harness: one generator per figure of
// the paper's evaluation (§IV), each reproducing the figure's series —
// workload, parameter sweep, baselines — on the simulated machine and
// emitting the same rows the paper plots.
//
// A generator does not run anything itself: it produces a Plan, a flat
// list of self-contained RunSpecs (one simulation point each) plus a
// deterministic assembly step. Plan.Run executes serially; the
// internal/sweep orchestrator executes the same specs on a worker pool
// with byte-identical output.
package bench

import (
	"fmt"
	"io"
	"sort"

	"gat/internal/jacobi"
	"gat/internal/machine"
	"gat/internal/sim"
)

// Options tunes a figure generation run.
type Options struct {
	// MaxNodes caps the node-count sweep (0 = the paper's full range).
	MaxNodes int
	// Warmup and Iters override the iteration counts (0 = defaults:
	// 3 warm-up, 10 timed).
	Warmup, Iters int
	// Jitter, when positive, perturbs each network transfer's latency
	// by up to this fraction, seeded per run from the RunSpec seed.
	// Zero (the default) keeps the cost model exactly deterministic.
	Jitter float64
	// Shards is the conservative-PDES shard count for parallel-in-run
	// execution (internal/pdes); <= 1 runs serially. Scenarios that
	// support it (Cell.Shards) produce byte-identical output at any
	// value, so Shards is a runtime knob, not a result parameter — it
	// deliberately stays out of RunSpec and the run fingerprint.
	Shards int
	// Verbose, if non-nil, receives progress lines.
	Verbose io.Writer
}

// machineFor builds the standard Summit machine for one run, wiring
// the jitter knobs so equal (options, seed) pairs reproduce equal
// timelines. Scenario cells build machines through Cell.NewMachine
// instead; this remains for the claim checks, which are calibrated to
// Summit.
func (o Options) machineFor(nodes int, seed uint64) *machine.Machine {
	cfg := machine.Summit(nodes)
	cfg.Net.JitterFrac = o.Jitter
	cfg.Net.JitterSeed = seed
	return machine.MustNew(cfg)
}

func (o Options) cfg(global [3]int) jacobi.Config {
	return jacobi.Config{Global: global, Warmup: o.Warmup, Iters: o.Iters}.DefaultIterations()
}

func (o Options) progress(format string, args ...any) {
	if o.Verbose != nil {
		fmt.Fprintf(o.Verbose, format+"\n", args...)
	}
}

// Point is one measured value in a series.
type Point struct {
	// Nodes is the x coordinate.
	Nodes int
	// Value is the y value: time per iteration for the timing figures,
	// a dimensionless ratio for the speedup figures.
	Value float64
	// Meta annotates the point (e.g. the best ODF chosen).
	Meta string
	// MaxLinkUtil and MeanLinkUtil carry the run's fabric-link
	// congestion summary (app.Metrics) into per-run provenance: the
	// gat-sweep-v3 report, the run store, and the -v/-explain displays.
	// They never enter rendered tables or CSV, so figure bytes are
	// unchanged; zero on NIC-only machines.
	MaxLinkUtil, MeanLinkUtil float64
	// Routing names the routing policy the run's fabric used
	// ("minimal", "valiant", "adaptive"; empty on NIC-only machines).
	// Like the utilization fields it is provenance only — the
	// gat-sweep-v3 report and the run store carry it, rendered tables
	// and CSV never do.
	Routing string
}

// Series is one line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is one reproduced figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Generator builds one figure. Plan decomposes the figure into a flat
// list of independent RunSpecs; Run is the serial reference execution.
// Generators are views over the scenario registry, kept for the
// classic figure-centric API.
type Generator struct {
	ID    string
	Title string
	Plan  func(Options) Plan
}

// Run generates the figure serially, in spec order.
func (g Generator) Run(opt Options) Figure { return g.Plan(opt).Run() }

// generatorsOfKind adapts the registered scenarios of one kind.
func generatorsOfKind(k Kind) []Generator {
	var out []Generator
	for _, s := range Scenarios() {
		if s.Kind != k {
			continue
		}
		s := s
		out = append(out, Generator{
			ID:    s.Name,
			Title: s.Title,
			Plan: func(opt Options) Plan {
				p, err := s.Plan(opt, Overrides{})
				if err != nil {
					// Registered scenarios resolve by construction; a
					// failure here is a registration bug.
					panic(err)
				}
				return p
			},
		})
	}
	return out
}

// Generators returns the paper-figure generators in publication order.
func Generators() []Generator { return generatorsOfKind(KindFigure) }

// AblationGenerators returns the ablation generators.
func AblationGenerators() []Generator { return generatorsOfKind(KindAblation) }

// Generate runs the paper-figure scenario with the given id.
func Generate(id string, opt Options) (Figure, error) {
	for _, g := range Generators() {
		if g.ID == id {
			return g.Run(opt), nil
		}
	}
	return Figure{}, fmt.Errorf("bench: unknown figure %q", id)
}

// PlanFor resolves id — any registered scenario — to its run plan on
// the scenario's default app and machine.
func PlanFor(id string, opt Options) (Plan, error) {
	return PlanScenario(id, opt, Overrides{})
}

// nodeSweep returns the geometric node-count range [lo..hi] capped by
// opt.MaxNodes. A cap below lo still yields the single point lo, so a
// figure never comes back empty.
func nodeSweep(lo, hi int, opt Options) []int {
	var out []int
	for n := lo; n <= hi; n *= 2 {
		if opt.MaxNodes > 0 && n > opt.MaxNodes && len(out) > 0 {
			break
		}
		out = append(out, n)
		if opt.MaxNodes > 0 && n > opt.MaxNodes {
			break
		}
	}
	return out
}

// weakGlobal grows the base per-node grid with the node count,
// matching §IV-B (now shared with the app layer as jacobi.WeakGlobal).
func weakGlobal(base [3]int, nodes int) [3]int {
	return jacobi.WeakGlobal(base, nodes)
}

// bestODF runs the Charm variant over the candidate ODFs and returns
// the fastest result, as the paper does for every Charm data point
// (§IV-A: "the one with the best performance is chosen"). All
// candidate runs share one seed: they are alternatives for the same
// data point, not separate measurements.
func bestODF(opt Options, cfg jacobi.Config, nodes int, seed uint64, base jacobi.CharmOpts, odfs []int) (jacobi.Result, int) {
	var best jacobi.Result
	bestODF := 0
	for _, odf := range odfs {
		opts := base
		opts.ODF = odf
		r := jacobi.RunCharm(opt.machineFor(nodes, seed), cfg, opts)
		if bestODF == 0 || r.TimePerIter < best.TimePerIter {
			best, bestODF = r, odf
		}
	}
	return best, bestODF
}

// odfCandidates returns the ODF search set, trimmed at large node
// counts where high ODFs are both slow to simulate and never optimal
// (§IV-C shows the best ODF falls as scale rises).
func odfCandidates(nodes int) []int {
	switch {
	case nodes <= 16:
		return []int{1, 2, 4, 8, 16}
	case nodes <= 64:
		return []int{1, 2, 4, 8}
	default:
		return []int{1, 2, 4}
	}
}

// ms converts simulated time to milliseconds for figure values.
func ms(t sim.Time) float64 { return t.Millis() }

// us converts simulated time to microseconds for figure values.
func us(t sim.Time) float64 { return t.Micros() }

// WriteTable renders the figure as an aligned text table.
func (f Figure) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "# y: %s\n", f.YLabel)
	xs := f.xValues()
	fmt.Fprintf(w, "%-8s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%16s", s.Name)
	}
	fmt.Fprintln(w)
	for _, x := range xs {
		fmt.Fprintf(w, "%-8d", x)
		for _, s := range f.Series {
			if p, ok := s.at(x); ok {
				cell := fmt.Sprintf("%.3f", p.Value)
				if p.Meta != "" {
					cell += " (" + p.Meta + ")"
				}
				fmt.Fprintf(w, "%16s", cell)
			} else {
				fmt.Fprintf(w, "%16s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteCSV renders the figure as CSV rows (figure,series,nodes,value,meta).
func (f Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "figure,series,nodes,value,meta"); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%g,%s\n", f.ID, s.Name, p.Nodes, p.Value, p.Meta); err != nil {
				return err
			}
		}
	}
	return nil
}

func (f Figure) xValues() []int {
	seen := map[int]bool{}
	var xs []int
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.Nodes] {
				seen[p.Nodes] = true
				xs = append(xs, p.Nodes)
			}
		}
	}
	sort.Ints(xs)
	return xs
}

func (s Series) at(x int) (Point, bool) {
	for _, p := range s.Points {
		if p.Nodes == x {
			return p, true
		}
	}
	return Point{}, false
}
