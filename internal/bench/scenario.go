package bench

import (
	"fmt"
	"sort"
	"strings"

	"gat/internal/app"
	"gat/internal/machine"
)

// This file is the experiment layer's composition seam: a Scenario
// picks one registered application (internal/app), one machine profile
// (internal/machine), a sweep axis and a set of series, and compiles
// them into a Plan of independent RunSpecs. The paper's figures, the
// ablations and every new workload/machine combination are all
// registered scenarios; cmd/sweep resolves them by name and can
// override the machine (and, for app-generic scenarios, the
// application) without touching this package.

// Kind groups scenarios for listing and for the classic -fig aliases.
type Kind int

// Scenario kinds.
const (
	// KindFigure marks reproductions of the paper's figures
	// (-fig all).
	KindFigure Kind = iota
	// KindAblation marks the repo's ablations (-fig ablations).
	KindAblation
	// KindExtra marks scenarios beyond the paper's evaluation.
	KindExtra
)

func (k Kind) String() string {
	switch k {
	case KindFigure:
		return "figure"
	case KindAblation:
		return "ablation"
	case KindExtra:
		return "extra"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AxisPoint is one position on a scenario's sweep axis: the x
// coordinate and the machine size simulated there. For scaling
// scenarios they coincide; for e.g. an ODF or message-size sweep the
// node count is fixed while x varies.
type AxisPoint struct {
	X, Nodes int
}

// CellFn measures one (series, x) cell and returns its figure point.
// It may run the application several times (an ODF search, a
// with/without ratio) — each Cell.Run builds a fresh machine, so the
// runs stay independent and deterministic.
type CellFn func(c *Cell) Point

// SeriesDef is one line of a scenario: its column name and the cell
// measurement.
type SeriesDef struct {
	Name string
	Cell CellFn
}

// Scenario composes application x machine x variant-series x sweep
// axis into a figure-shaped experiment.
type Scenario struct {
	// Name is the registry key and the emitted figure id.
	Name string
	// Title is the figure title. TitleFor, when set, derives it from
	// the options instead (for titles that name the resolved scale).
	Title    string
	TitleFor func(opt Options) string
	// App is the default application (an internal/app registry name);
	// empty for machine-level scenarios that bypass the app layer.
	App string
	// Machine is the default machine profile (an internal/machine
	// registry name).
	Machine string
	// Kind groups the scenario for listings and -fig aliases.
	Kind Kind
	// Version is the cache-identity version of the scenario's own cell
	// logic: bump it when constants embedded in the cells change
	// simulated results — a NewMachineWith fabric parameter, a search
	// set, a fixed problem size — so content-addressed run caches are
	// invalidated for this scenario only. Parameters owned by the app
	// or the machine profile are covered by their own versions; zero
	// (the common case) keeps the legacy fingerprint form, so
	// pre-versioned cache keys survive.
	Version int
	// XLabel and YLabel are the axis captions.
	XLabel, YLabel string
	// Axis returns the sweep positions, honoring opt.MaxNodes.
	Axis func(opt Options) []AxisPoint
	// Series are the fixed lines of the scenario, in column order.
	Series []SeriesDef
	// SeriesFor, when set, derives the series from the resolved
	// application instead of Series — such scenarios accept an app
	// override.
	SeriesFor func(a app.App) []SeriesDef
}

// Overrides re-targets a scenario at resolve time.
type Overrides struct {
	// Machine selects a registered machine profile, replacing the
	// scenario's default.
	Machine string
	// App replaces the application for scenarios that derive their
	// series from the app (SeriesFor); fixed-series scenarios reject
	// it with an error.
	App string
}

// Cell is the execution context a CellFn measures in: the axis
// position, the per-cell seed, and constructors for fresh machines and
// application runs on the scenario's (possibly overridden) profile and
// app.
type Cell struct {
	// X is the x coordinate; Nodes the machine size.
	X, Nodes int
	// Seed is the cell's deterministic seed (shared by every run the
	// cell performs: they are alternatives for one data point).
	Seed uint64

	opt     Options
	profile machine.Profile
	app     app.App
	name    string // FigID/Series@X, for progress lines
}

// NewMachine builds a fresh machine on the cell's profile at the
// cell's node count, wired to the sweep's jitter options.
func (c *Cell) NewMachine() *machine.Machine {
	return c.NewMachineWith(nil)
}

// NewMachineWith is NewMachine with a configuration hook: mutate (when
// non-nil) runs on the built profile config before the machine is
// instantiated. It is how sweep axes that are machine properties —
// e.g. the fabric taper ratio of the congestion scenarios — vary per
// cell without registering one profile per axis point. The mutated
// config is validated by machine.MustNew, so an impossible mutation
// fails loudly at the cell, not deep in a run.
func (c *Cell) NewMachineWith(mutate func(*machine.Config)) *machine.Machine {
	cfg := c.Config()
	if mutate != nil {
		mutate(&cfg)
	}
	return machine.MustNew(cfg)
}

// Config builds the cell's machine configuration — profile at the
// cell's node count, jitter wired — without instantiating the cluster.
// Cells that consume the configuration as a cost model only (the
// LP-level exascale runs, which never build per-node NICs and GPUs)
// use this instead of NewMachine.
func (c *Cell) Config() machine.Config {
	cfg := c.profile.Build(c.Nodes)
	cfg.Net.JitterFrac = c.opt.Jitter
	cfg.Net.JitterSeed = c.Seed
	return cfg
}

// Shards returns the sweep's parallel-in-run shard count, always >= 1.
// Cells that honor it must produce identical points at every value
// (the pdes layer guarantees this for LP-model runs); it never enters
// the run fingerprint.
func (c *Cell) Shards() int {
	if c.opt.Shards > 1 {
		return c.opt.Shards
	}
	return 1
}

// Iterations returns the sweep's warmup/iters overrides, zero meaning
// "use the workload's default". App-backed cells get this resolution
// through Run; app-less cells consult it directly.
func (c *Cell) Iterations() (warmup, iters int) {
	return c.opt.Warmup, c.opt.Iters
}

// App returns the resolved application, or nil for app-less scenarios.
func (c *Cell) App() app.App { return c.app }

// Defaults returns the resolved application's default parameters at
// the cell's node count.
func (c *Cell) Defaults() app.Params { return c.app.Defaults(c.Nodes) }

// Run executes one application run of the given variant on a fresh
// machine. Non-zero sweep options override the given Warmup/Iters
// (so -iters/-warmup always win, even over app defaults); fields left
// zero fall through to the app's own defaults.
func (c *Cell) Run(variant string, p app.Params) app.Metrics {
	return c.RunOn(c.NewMachine(), variant, p)
}

// RunOn is Run on a caller-built machine (NewMachine/NewMachineWith),
// for cells whose sweep axis is a machine property.
func (c *Cell) RunOn(m *machine.Machine, variant string, p app.Params) app.Metrics {
	if c.app == nil {
		panic(fmt.Sprintf("bench: cell %s belongs to an app-less scenario; use NewMachine", c.name))
	}
	if c.opt.Warmup != 0 {
		p.Warmup = c.opt.Warmup
	}
	if c.opt.Iters != 0 {
		p.Iters = c.opt.Iters
	}
	run, err := c.app.BuildRun(m, variant, p)
	if err != nil {
		panic(fmt.Sprintf("bench: cell %s: %v", c.name, err))
	}
	return run()
}

// Progress emits one progress line for this cell, prefixed with its
// stable name.
func (c *Cell) Progress(format string, args ...any) {
	c.opt.progress("%s "+format, append([]any{c.name}, args...)...)
}

// Plan compiles the scenario into a flat run plan under the given
// options and overrides.
func (s *Scenario) Plan(opt Options, ov Overrides) (Plan, error) {
	profName := s.Machine
	if ov.Machine != "" {
		profName = ov.Machine
	}
	prof, err := machine.ProfileByName(profName)
	if err != nil {
		return Plan{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}

	appName := s.App
	if ov.App != "" {
		if s.SeriesFor == nil {
			return Plan{}, fmt.Errorf("scenario %q is fixed to app %q; only app-generic scenarios (e.g. %q) accept -app",
				s.Name, s.App, "scaling")
		}
		appName = ov.App
	}
	var a app.App
	if appName != "" {
		if a, err = app.ByName(appName); err != nil {
			return Plan{}, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}

	series := s.Series
	if s.SeriesFor != nil {
		series = s.SeriesFor(a)
	}
	if len(series) == 0 {
		return Plan{}, fmt.Errorf("scenario %q: no series", s.Name)
	}
	names := make([]string, len(series))
	for i, sd := range series {
		names[i] = sd.Name
	}

	title := s.Title
	if s.TitleFor != nil {
		title = s.TitleFor(opt)
	}
	b := newPlan(opt, s.Name, title, s.XLabel, s.YLabel, names...)
	b.scenario, b.app, b.machine = s.Name, appName, profName
	b.scenarioID = s.Identity()
	b.machineID = prof.Identity()
	if a != nil {
		b.appID = app.Identity(a)
	}
	b.appRef = a
	for _, ap := range s.Axis(opt) {
		for si, sd := range series {
			ap, sd := ap, sd
			b.add(si, ap.X, ap.Nodes, func(spec RunSpec) Point {
				return sd.Cell(&Cell{
					X:       ap.X,
					Nodes:   ap.Nodes,
					Seed:    spec.Seed,
					opt:     opt,
					profile: prof,
					app:     a,
					name:    spec.Name(),
				})
			})
		}
	}
	return b.plan(), nil
}

// Identity returns the scenario's fingerprint component: the plain
// name at Version 0 — the exact form every pre-versioned cache key
// hashed, so introducing the version field orphaned nothing — and
// "name@vN" once bumped.
func (s *Scenario) Identity() string {
	if s.Version == 0 {
		return s.Name
	}
	return fmt.Sprintf("%s@v%d", s.Name, s.Version)
}

// --- registry ---

var scenarios []*Scenario

// RegisterScenario adds a scenario to the global registry. Duplicate
// or malformed registrations are programming errors and panic at init
// time.
func RegisterScenario(s *Scenario) {
	switch {
	case s.Name == "":
		panic("bench: scenario needs a name")
	case s.Axis == nil:
		panic(fmt.Sprintf("bench: scenario %q needs a sweep axis", s.Name))
	case len(s.Series) == 0 && s.SeriesFor == nil:
		panic(fmt.Sprintf("bench: scenario %q needs series", s.Name))
	case s.SeriesFor != nil && s.App == "":
		panic(fmt.Sprintf("bench: scenario %q derives series from its app and so needs a default App", s.Name))
	case s.Machine == "":
		panic(fmt.Sprintf("bench: scenario %q needs a machine profile", s.Name))
	}
	for _, t := range scenarios {
		if t.Name == s.Name {
			panic(fmt.Sprintf("bench: duplicate scenario %q", s.Name))
		}
	}
	scenarios = append(scenarios, s)
}

// Scenarios returns all registered scenarios in registration order
// (paper figures, then ablations, then extras).
func Scenarios() []*Scenario {
	out := make([]*Scenario, len(scenarios))
	copy(out, scenarios)
	return out
}

// ScenarioByName resolves a scenario, with an error naming the known
// scenarios on a miss.
func ScenarioByName(name string) (*Scenario, error) {
	for _, s := range scenarios {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.Name
	}
	sort.Strings(names)
	return nil, fmt.Errorf("bench: unknown scenario %q (have: %s)",
		name, strings.Join(names, ", "))
}

// PlanScenario resolves name and compiles its plan under opt and ov.
func PlanScenario(name string, opt Options, ov Overrides) (Plan, error) {
	s, err := ScenarioByName(name)
	if err != nil {
		return Plan{}, err
	}
	return s.Plan(opt, ov)
}

// nodeAxis is the standard geometric node sweep [lo..hi] where the x
// coordinate is the machine size.
func nodeAxis(lo, hi int) func(opt Options) []AxisPoint {
	return func(opt Options) []AxisPoint {
		var pts []AxisPoint
		for _, n := range nodeSweep(lo, hi, opt) {
			pts = append(pts, AxisPoint{X: n, Nodes: n})
		}
		return pts
	}
}

func init() {
	registerFigureScenarios()
	registerAblationScenarios()
	registerExtraScenarios()
}
