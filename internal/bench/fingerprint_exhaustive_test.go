package bench

import (
	"reflect"
	"testing"
)

// fingerprintExempt lists the exported RunSpec fields that are allowed
// to NOT influence the fingerprint, with the reason why. Everything
// else must change the content address when mutated — otherwise two
// different experiments could collide in the run cache and a stale
// figure point would be served as fresh.
var fingerprintExempt = map[string]string{
	// App and Machine are display names; the fingerprint hashes their
	// versioned identities (appID, machineID) instead, so that bumping
	// app.Identity or machine.Profile.Identity invalidates cached runs
	// even when the human-readable name is unchanged.
	"App":     "hashed via the versioned appID identity",
	"Machine": "hashed via the versioned machineID identity",
}

// mutate returns a copy of the field value changed to a different,
// same-typed value. Extend the switch when RunSpec grows a field of a
// new kind — failing loudly here is the point of the test.
func mutate(t *testing.T, v reflect.Value, name string) {
	t.Helper()
	switch v.Kind() {
	case reflect.String:
		v.SetString(v.String() + "~mutated")
	case reflect.Int:
		v.SetInt(v.Int() + 1)
	case reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Float64:
		v.SetFloat(v.Float() + 0.5)
	default:
		t.Fatalf("RunSpec.%s has kind %v: teach mutate() about it so the exhaustiveness check keeps covering every field", name, v.Kind())
	}
}

// TestFingerprintCoversEveryExportedField proves by construction that
// no exported RunSpec field can be added without either entering the
// fingerprint or being explicitly exempted above. This is the
// machine-checked version of the comment block in fingerprint.go: a
// new field that silently misses the hash would make distinct runs
// share a cache key.
func TestFingerprintCoversEveryExportedField(t *testing.T) {
	baseline := RunSpec{
		FigID:    "fig7a",
		Series:   "gat",
		X:        8,
		Nodes:    8,
		Warmup:   2,
		Iters:    16,
		Seed:     42,
		Jitter:   0.05,
		Scenario: "fig7a",
		App:      "jacobi3d",
		Machine:  "summit-ish",
		// scenarioID is deliberately left empty so the Scenario
		// fallback path is the one under test; the versioned
		// identities stand in for App/Machine as documented.
		appID:     "jacobi3d@v1",
		machineID: "summit-ish@v1",
	}
	const salt = "exhaustive-test-salt"
	base := baseline.fingerprint(salt)

	rt := reflect.TypeOf(baseline)
	seen := map[string]bool{}
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() {
			continue
		}
		seen[f.Name] = true
		spec := baseline
		mutate(t, reflect.ValueOf(&spec).Elem().Field(i), f.Name)
		changed := spec.fingerprint(salt) != base
		_, exempt := fingerprintExempt[f.Name]
		switch {
		case changed && exempt:
			t.Errorf("RunSpec.%s is listed in fingerprintExempt but mutating it changed the fingerprint; drop the stale exemption", f.Name)
		case !changed && !exempt:
			t.Errorf("RunSpec.%s does not influence the fingerprint and is not in fingerprintExempt: two specs differing only in %s would collide in the run cache", f.Name, f.Name)
		}
	}

	// The exempt set may only name fields that still exist, so renames
	// cannot leave a dead entry silently covering a future field.
	for name := range fingerprintExempt {
		if !seen[name] {
			t.Errorf("fingerprintExempt names %q, which is not an exported RunSpec field", name)
		}
	}
}

// TestFingerprintExemptFieldsHaveVersionedStandIns pins the documented
// reason the exemptions are safe: the versioned identity strings that
// replace App and Machine in the hash do change the fingerprint.
func TestFingerprintExemptFieldsHaveVersionedStandIns(t *testing.T) {
	spec := RunSpec{FigID: "f", appID: "a@1", machineID: "m@1"}
	const salt = "standin-salt"
	base := spec.fingerprint(salt)
	for name, bump := range map[string]func(*RunSpec){
		"appID":     func(s *RunSpec) { s.appID = "a@2" },
		"machineID": func(s *RunSpec) { s.machineID = "m@2" },
	} {
		s := spec
		bump(&s)
		if s.fingerprint(salt) == base {
			t.Errorf("bumping %s did not change the fingerprint; the App/Machine exemptions in fingerprintExempt are no longer justified", name)
		}
	}
	if len(fingerprintExempt) != 2 {
		t.Fatalf("fingerprintExempt grew beyond App/Machine (%d entries); add a matching stand-in check here", len(fingerprintExempt))
	}
}
