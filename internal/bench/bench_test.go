package bench

import (
	"strings"
	"testing"

	"gat/internal/jacobi"
)

func base() jacobi.CharmOpts { return jacobi.CharmOpts{GPUAware: true} }

// quickOpt keeps generator tests fast: tiny sweeps, few iterations.
func quickOpt() Options {
	return Options{MaxNodes: 2, Warmup: 1, Iters: 3}
}

func TestAllGeneratorsProduceSeries(t *testing.T) {
	for _, g := range Generators() {
		fig := g.Run(quickOpt())
		if fig.ID != g.ID {
			t.Errorf("%s: figure id mismatch: %q", g.ID, fig.ID)
		}
		if len(fig.Series) == 0 {
			t.Errorf("%s: no series", g.ID)
		}
		for _, s := range fig.Series {
			if len(s.Points) == 0 {
				t.Errorf("%s/%s: no points", g.ID, s.Name)
			}
			for _, p := range s.Points {
				if p.Value <= 0 {
					t.Errorf("%s/%s: non-positive value at %d", g.ID, s.Name, p.Nodes)
				}
			}
		}
	}
}

func TestAblationGenerators(t *testing.T) {
	for _, g := range AblationGenerators() {
		fig := g.Run(quickOpt())
		if len(fig.Series) != 2 {
			t.Errorf("%s: want 2 series, got %d", g.ID, len(fig.Series))
		}
	}
}

func TestGenerateUnknownID(t *testing.T) {
	if _, err := Generate("nope", quickOpt()); err == nil {
		t.Fatal("unknown id should error")
	}
	if _, err := GenerateAny("nope", quickOpt()); err == nil {
		t.Fatal("unknown id should error via GenerateAny")
	}
}

func TestGenerateByID(t *testing.T) {
	fig, err := Generate("fig7b", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("fig7b should have 4 variant series, got %d", len(fig.Series))
	}
}

func TestWeakGlobalGrowth(t *testing.T) {
	base := [3]int{100, 100, 100}
	cases := []struct {
		nodes int
		want  [3]int
	}{
		{1, [3]int{100, 100, 100}},
		{2, [3]int{100, 100, 200}},
		{4, [3]int{100, 200, 200}},
		{8, [3]int{200, 200, 200}},
		{64, [3]int{400, 400, 400}},
	}
	for _, c := range cases {
		if got := weakGlobal(base, c.nodes); got != c.want {
			t.Errorf("weakGlobal(%d) = %v, want %v", c.nodes, got, c.want)
		}
	}
}

func TestWeakScalingMatchesStrongAtEight(t *testing.T) {
	// §IV-C: the 3072^3 strong-scaling grid equals the weak-scaling
	// global grid at 8 nodes.
	if got := weakGlobal(weakBaseLarge, 8); got != strongGlobal {
		t.Fatalf("weakGlobal(1536^3, 8) = %v, want %v", got, strongGlobal)
	}
}

func TestNodeSweepCap(t *testing.T) {
	got := nodeSweep(1, 512, Options{MaxNodes: 8})
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("sweep = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", got, want)
		}
	}
}

func TestODFCandidatesShrinkWithScale(t *testing.T) {
	if len(odfCandidates(8)) <= len(odfCandidates(512)) {
		t.Fatal("ODF search set should shrink at large node counts")
	}
}

func TestTableAndCSVOutput(t *testing.T) {
	fig, err := Generate("fig7b", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	var tbl strings.Builder
	fig.WriteTable(&tbl)
	for _, want := range []string{"fig7b", "MPI-H", "Charm-D", "nodes"} {
		if !strings.Contains(tbl.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, tbl.String())
		}
	}
	var csv strings.Builder
	if err := fig.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "figure,series,nodes,value,meta") {
		t.Fatal("CSV header missing")
	}
	lines := strings.Count(csv.String(), "\n")
	if lines < 5 {
		t.Fatalf("CSV too short: %d lines", lines)
	}
}

func TestBestODFPicksMinimum(t *testing.T) {
	cfg := quickOpt().cfg([3]int{192, 192, 192})
	candidates := []int{1, 2, 4}
	best, odf := bestODF(quickOpt(), cfg, 1, 0, base().Optimized(), candidates)
	found := false
	for _, c := range candidates {
		if odf == c {
			found = true
		}
	}
	if !found {
		t.Fatalf("bestODF returned ODF %d outside candidates", odf)
	}
	// Re-running the winning ODF must reproduce its time (determinism
	// of the selection).
	again, odf2 := bestODF(quickOpt(), cfg, 1, 0, base().Optimized(), []int{odf})
	if odf2 != odf || again.TimePerIter != best.TimePerIter {
		t.Fatalf("bestODF not reproducible: %v/%d vs %v/%d",
			best.TimePerIter, odf, again.TimePerIter, odf2)
	}
}
