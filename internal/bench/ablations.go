package bench

import (
	"fmt"

	"gat/internal/app"
	"gat/internal/comm"
	"gat/internal/sim"
)

// Ablation experiments for the design choices DESIGN.md calls out:
// stream priorities (§III-A), the Channel API vs the older GPU
// Messaging API (§II-B), and the manual-overlap option of the MPI
// variant (Fig 1b). These have no paper figure; they quantify how much
// each mechanism contributes in our reproduction.

func registerAblationScenarios() {
	RegisterScenario(ablPriorityScenario())
	RegisterScenario(ablOverlapScenario())
	RegisterScenario(ablChannelAPIScenario())
	RegisterScenario(ablODFScenario())
}

// ablPriorityScenario compares Charm-D with and without high-priority
// streams for packing and transfers, strong scaling a 768^3 grid.
func ablPriorityScenario() *Scenario {
	cell := func(flat bool) CellFn {
		return func(c *Cell) Point {
			r := c.Run("charm-d", app.Params{Global: fusionGlobal, ODF: 4, FlatPriority: flat})
			c.Progress("t=%v", r.TimePerIter)
			return Point{Nodes: c.Nodes, Value: us(r.TimePerIter)}
		}
	}
	return &Scenario{
		Name: "abl-priority", Title: "High-priority communication streams on/off",
		App: "jacobi3d", Machine: "summit", Kind: KindAblation,
		XLabel: "nodes", YLabel: "time/iter (us)",
		Axis: nodeAxis(1, 32),
		Series: []SeriesDef{
			{"PriorityStreams", cell(false)},
			{"FlatPriority", cell(true)},
		},
	}
}

// ablOverlapScenario compares the MPI variant with and without the
// manual interior/exterior overlap of Fig 1b, weak scaling the large
// problem.
func ablOverlapScenario() *Scenario {
	cell := func(overlap bool) CellFn {
		return func(c *Cell) Point {
			r := c.Run("mpi-h", app.Params{Global: weakGlobal(weakBaseLarge, c.Nodes), Overlap: overlap})
			c.Progress("t=%v", r.TimePerIter)
			return Point{Nodes: c.Nodes, Value: ms(r.TimePerIter)}
		}
	}
	return &Scenario{
		Name: "abl-overlap", Title: "Manual overlap in MPI Jacobi3D",
		App: "jacobi3d", Machine: "summit", Kind: KindAblation,
		XLabel: "nodes", YLabel: "time/iter (ms)",
		Axis: nodeAxis(1, 32),
		Series: []SeriesDef{
			{"NoOverlap", cell(false)},
			{"ManualOverlap", cell(true)},
		},
	}
}

// ablChannelAPIScenario measures one-way inter-node delivery latency
// of a device buffer under the Channel API vs the GPU Messaging API
// across message sizes. The x column holds log2(bytes) instead of
// nodes; this is a machine-level scenario that bypasses the app layer.
func ablChannelAPIScenario() *Scenario {
	return &Scenario{
		Name: "abl-chanapi", Title: "Channel API vs GPU Messaging API",
		App: "", Machine: "summit", Kind: KindAblation,
		XLabel: "log2B", YLabel: "one-way latency (us)",
		Axis: func(opt Options) []AxisPoint {
			var pts []AxisPoint
			for p := 10; p <= 24; p += 2 {
				pts = append(pts, AxisPoint{X: p, Nodes: 2})
			}
			return pts
		},
		Series: []SeriesDef{
			{"ChannelAPI", func(c *Cell) Point {
				bytes := int64(1) << c.X
				mc := c.NewMachine()
				ch := comm.NewChannel(mc.Net,
					comm.Endpoint{Proc: 0, Node: 0}, comm.Endpoint{Proc: 1, Node: 1})
				var at sim.Time
				ch.Recv(1, 0, func() { at = mc.Eng.Now() })
				ch.Send(0, 0, bytes, sim.FiredSignal(), nil)
				mc.Eng.Run()
				c.Progress("t=%v", at)
				return Point{Nodes: c.X, Value: us(at)}
			}},
			{"MessagingAPI", func(c *Cell) Point {
				bytes := int64(1) << c.X
				mm := c.NewMachine()
				var at sim.Time
				comm.MessagingSend(mm.Net, comm.DefaultMessagingConfig(),
					comm.Endpoint{Proc: 0, Node: 0}, comm.Endpoint{Proc: 1, Node: 1},
					bytes, sim.FiredSignal(), func() { at = mm.Eng.Now() })
				mm.Eng.Run()
				c.Progress("t=%v", at)
				return Point{Nodes: c.X, Value: us(at)}
			}},
		},
	}
}

// ablODFNodes picks the abl-odf machine size: the largest node count
// <= MaxNodes up to 32, clamped to 8 because 3072^3 needs >= 8 nodes
// to fit in 16 GB per GPU (two grid copies) — also why the paper's
// strong scaling starts at 8 nodes.
func ablODFNodes(opt Options) int {
	nodes := scaleNodes(32, opt)
	if nodes < 8 {
		nodes = 8
	}
	return nodes
}

// ablODFScenario sweeps the overdecomposition factor at a fixed
// strong-scaling point, the sensitivity behind the paper's per-point
// best-ODF choice (§IV-A). The x column holds the ODF instead of a
// node count.
func ablODFScenario() *Scenario {
	cell := func(variant string) CellFn {
		return func(c *Cell) Point {
			r := c.Run(variant, app.Params{Global: strongGlobal, ODF: c.X})
			c.Progress("t=%v", r.TimePerIter)
			return Point{Nodes: c.X, Value: ms(r.TimePerIter)}
		}
	}
	return &Scenario{
		Name: "abl-odf", Title: "ODF sensitivity, 3072^3 strong-scaling point",
		TitleFor: func(opt Options) string {
			return fmt.Sprintf("ODF sensitivity, 3072^3 on %d nodes", ablODFNodes(opt))
		},
		App: "jacobi3d", Machine: "summit", Kind: KindAblation,
		XLabel: "odf", YLabel: "time/iter (ms)",
		Axis: func(opt Options) []AxisPoint {
			var pts []AxisPoint
			for _, odf := range []int{1, 2, 4, 8, 16} {
				pts = append(pts, AxisPoint{X: odf, Nodes: ablODFNodes(opt)})
			}
			return pts
		},
		Series: []SeriesDef{
			{"Charm-H", cell("charm-h")},
			{"Charm-D", cell("charm-d")},
		},
	}
}

// GenerateAny resolves any scenario — paper figure, ablation or extra
// — and runs it serially.
func GenerateAny(id string, opt Options) (Figure, error) {
	p, err := PlanFor(id, opt)
	if err != nil {
		return Figure{}, err
	}
	return p.Run(), nil
}
