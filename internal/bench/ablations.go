package bench

import (
	"fmt"

	"gat/internal/comm"
	"gat/internal/jacobi"
	"gat/internal/sim"
)

// Ablation experiments for the design choices DESIGN.md calls out:
// stream priorities (§III-A), the Channel API vs the older GPU
// Messaging API (§II-B), and the manual-overlap option of the MPI
// variant (Fig 1b). These have no paper figure; they quantify how much
// each mechanism contributes in our reproduction.

// AblationGenerators returns the ablation figure generators.
func AblationGenerators() []Generator {
	return []Generator{
		{"abl-priority", "Ablation: high-priority communication streams on/off (Charm-D ODF-4)", ablPriority},
		{"abl-overlap", "Ablation: manual interior/exterior overlap in MPI (Fig 1b option)", ablOverlap},
		{"abl-chanapi", "Ablation: Channel API vs GPU Messaging API one-way latency", ablChannelAPI},
		{"abl-odf", "Ablation: ODF sensitivity of Charm-H and Charm-D (strong scaling point)", ablODF},
	}
}

// ablODF sweeps the overdecomposition factor at a fixed strong-scaling
// point, the sensitivity behind the paper's per-point best-ODF choice
// (§IV-A). The x column holds the ODF instead of a node count.
func ablODF(opt Options) Plan {
	// 3072^3 needs >= 8 nodes to fit in 16 GB per GPU (two grid copies),
	// which is also why the paper's strong scaling starts at 8 nodes.
	nodes := scaleNodes(32, opt)
	if nodes < 8 {
		nodes = 8
	}
	b := newPlan(opt, "abl-odf", fmt.Sprintf("ODF sensitivity, 3072^3 on %d nodes", nodes),
		"odf", "time/iter (ms)", "Charm-H", "Charm-D")
	for _, odf := range []int{1, 2, 4, 8, 16} {
		for si, co := range []jacobi.CharmOpts{
			jacobi.CharmOpts{ODF: odf}.Optimized(),
			jacobi.CharmOpts{ODF: odf, GPUAware: true}.Optimized(),
		} {
			b.add(si, odf, nodes, func(s RunSpec) Point {
				r := runCharm(opt, strongGlobal, nodes, s.Seed, co)
				opt.progress("%s t=%v", s.Name(), r.TimePerIter)
				return Point{Nodes: odf, Value: ms(r.TimePerIter)}
			})
		}
	}
	return b.plan()
}

// GenerateAny resolves both paper figures and ablations.
func GenerateAny(id string, opt Options) (Figure, error) {
	p, err := PlanFor(id, opt)
	if err != nil {
		return Figure{}, err
	}
	return p.Run(), nil
}

// ablPriority compares Charm-D with and without high-priority streams
// for packing and transfers, strong scaling a 768^3 grid.
func ablPriority(opt Options) Plan {
	b := newPlan(opt, "abl-priority", "High-priority communication streams on/off",
		"nodes", "time/iter (us)", "PriorityStreams", "FlatPriority")
	for _, n := range nodeSweep(1, 32, opt) {
		for si, co := range []jacobi.CharmOpts{
			jacobi.CharmOpts{ODF: 4, GPUAware: true}.Optimized(),
			jacobi.CharmOpts{ODF: 4, GPUAware: true, FlatPriority: true}.Optimized(),
		} {
			b.add(si, n, n, func(s RunSpec) Point {
				r := runCharm(opt, fusionGlobal, n, s.Seed, co)
				opt.progress("%s t=%v", s.Name(), r.TimePerIter)
				return Point{Nodes: n, Value: us(r.TimePerIter)}
			})
		}
	}
	return b.plan()
}

// ablOverlap compares the MPI variant with and without the manual
// interior/exterior overlap of Fig 1b, weak scaling the large problem.
func ablOverlap(opt Options) Plan {
	b := newPlan(opt, "abl-overlap", "Manual overlap in MPI Jacobi3D",
		"nodes", "time/iter (ms)", "NoOverlap", "ManualOverlap")
	for _, n := range nodeSweep(1, 32, opt) {
		for si, mo := range []jacobi.MPIOpts{{}, {Overlap: true}} {
			b.add(si, n, n, func(s RunSpec) Point {
				r := runMPI(opt, weakGlobal(weakBaseLarge, n), n, s.Seed, mo)
				opt.progress("%s t=%v", s.Name(), r.TimePerIter)
				return Point{Nodes: n, Value: ms(r.TimePerIter)}
			})
		}
	}
	return b.plan()
}

// ablChannelAPI measures one-way inter-node delivery latency of a
// device buffer under the Channel API vs the GPU Messaging API across
// message sizes. The x column holds log2(bytes) instead of nodes.
func ablChannelAPI(opt Options) Plan {
	b := newPlan(opt, "abl-chanapi", "Channel API vs GPU Messaging API",
		"log2B", "one-way latency (us)", "ChannelAPI", "MessagingAPI")
	for p := 10; p <= 24; p += 2 {
		bytes := int64(1) << p
		b.add(0, p, 2, func(s RunSpec) Point {
			mc := opt.machineFor(2, s.Seed)
			ch := comm.NewChannel(mc.Net,
				comm.Endpoint{Proc: 0, Node: 0}, comm.Endpoint{Proc: 1, Node: 1})
			var at sim.Time
			ch.Recv(1, 0, func() { at = mc.Eng.Now() })
			ch.Send(0, 0, bytes, sim.FiredSignal(), nil)
			mc.Eng.Run()
			opt.progress("%s t=%v", s.Name(), at)
			return Point{Nodes: p, Value: us(at)}
		})
		b.add(1, p, 2, func(s RunSpec) Point {
			mm := opt.machineFor(2, s.Seed)
			var at sim.Time
			comm.MessagingSend(mm.Net, comm.DefaultMessagingConfig(),
				comm.Endpoint{Proc: 0, Node: 0}, comm.Endpoint{Proc: 1, Node: 1},
				bytes, sim.FiredSignal(), func() { at = mm.Eng.Now() })
			mm.Eng.Run()
			opt.progress("%s t=%v", s.Name(), at)
			return Point{Nodes: p, Value: us(at)}
		})
	}
	return b.plan()
}
