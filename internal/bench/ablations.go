package bench

import (
	"fmt"

	"gat/internal/comm"
	"gat/internal/jacobi"
	"gat/internal/machine"
	"gat/internal/sim"
)

// Ablation experiments for the design choices DESIGN.md calls out:
// stream priorities (§III-A), the Channel API vs the older GPU
// Messaging API (§II-B), and the manual-overlap option of the MPI
// variant (Fig 1b). These have no paper figure; they quantify how much
// each mechanism contributes in our reproduction.

// AblationGenerators returns the ablation figure generators.
func AblationGenerators() []Generator {
	return []Generator{
		{"abl-priority", "Ablation: high-priority communication streams on/off (Charm-D ODF-4)", ablPriority},
		{"abl-overlap", "Ablation: manual interior/exterior overlap in MPI (Fig 1b option)", ablOverlap},
		{"abl-chanapi", "Ablation: Channel API vs GPU Messaging API one-way latency", ablChannelAPI},
		{"abl-odf", "Ablation: ODF sensitivity of Charm-H and Charm-D (strong scaling point)", ablODF},
	}
}

// ablODF sweeps the overdecomposition factor at a fixed strong-scaling
// point, the sensitivity behind the paper's per-point best-ODF choice
// (§IV-A). The x column holds the ODF instead of a node count.
func ablODF(opt Options) Figure {
	// 3072^3 needs >= 8 nodes to fit in 16 GB per GPU (two grid copies),
	// which is also why the paper's strong scaling starts at 8 nodes.
	nodes := scaleNodes(32, opt)
	if nodes < 8 {
		nodes = 8
	}
	h := Series{Name: "Charm-H"}
	d := Series{Name: "Charm-D"}
	for _, odf := range []int{1, 2, 4, 8, 16} {
		cfg := opt.cfg(strongGlobal)
		rh := jacobi.RunCharm(machine.New(machine.Summit(nodes)), cfg,
			jacobi.CharmOpts{ODF: odf}.Optimized())
		rd := jacobi.RunCharm(machine.New(machine.Summit(nodes)), cfg,
			jacobi.CharmOpts{ODF: odf, GPUAware: true}.Optimized())
		h.Points = append(h.Points, Point{Nodes: odf, Value: ms(rh.TimePerIter)})
		d.Points = append(d.Points, Point{Nodes: odf, Value: ms(rd.TimePerIter)})
		opt.progress("abl-odf odf=%d charmH=%v charmD=%v", odf, rh.TimePerIter, rd.TimePerIter)
	}
	return Figure{ID: "abl-odf", Title: fmt.Sprintf("ODF sensitivity, 3072^3 on %d nodes", nodes),
		XLabel: "odf", YLabel: "time/iter (ms)", Series: []Series{h, d}}
}

// GenerateAny resolves both paper figures and ablations.
func GenerateAny(id string, opt Options) (Figure, error) {
	for _, g := range append(Generators(), AblationGenerators()...) {
		if g.ID == id {
			return g.Run(opt), nil
		}
	}
	return Figure{}, fmt.Errorf("bench: unknown figure %q", id)
}

// ablPriority compares Charm-D with and without high-priority streams
// for packing and transfers, strong scaling a 768^3 grid.
func ablPriority(opt Options) Figure {
	with := Series{Name: "PriorityStreams"}
	flat := Series{Name: "FlatPriority"}
	for _, n := range nodeSweep(1, 32, opt) {
		cfg := opt.cfg(fusionGlobal)
		w := jacobi.RunCharm(machine.New(machine.Summit(n)), cfg,
			jacobi.CharmOpts{ODF: 4, GPUAware: true}.Optimized())
		f := jacobi.RunCharm(machine.New(machine.Summit(n)), cfg,
			jacobi.CharmOpts{ODF: 4, GPUAware: true, FlatPriority: true}.Optimized())
		with.Points = append(with.Points, Point{Nodes: n, Value: us(w.TimePerIter)})
		flat.Points = append(flat.Points, Point{Nodes: n, Value: us(f.TimePerIter)})
		opt.progress("abl-priority nodes=%d with=%v flat=%v", n, w.TimePerIter, f.TimePerIter)
	}
	return Figure{ID: "abl-priority", Title: "High-priority communication streams on/off",
		XLabel: "nodes", YLabel: "time/iter (us)", Series: []Series{with, flat}}
}

// ablOverlap compares the MPI variant with and without the manual
// interior/exterior overlap of Fig 1b, weak scaling the large problem.
func ablOverlap(opt Options) Figure {
	off := Series{Name: "NoOverlap"}
	on := Series{Name: "ManualOverlap"}
	for _, n := range nodeSweep(1, 32, opt) {
		cfg := opt.cfg(weakGlobal(weakBaseLarge, n))
		o := jacobi.RunMPI(machine.New(machine.Summit(n)), cfg, jacobi.MPIOpts{})
		v := jacobi.RunMPI(machine.New(machine.Summit(n)), cfg, jacobi.MPIOpts{Overlap: true})
		off.Points = append(off.Points, Point{Nodes: n, Value: ms(o.TimePerIter)})
		on.Points = append(on.Points, Point{Nodes: n, Value: ms(v.TimePerIter)})
		opt.progress("abl-overlap nodes=%d off=%v on=%v", n, o.TimePerIter, v.TimePerIter)
	}
	return Figure{ID: "abl-overlap", Title: "Manual overlap in MPI Jacobi3D",
		XLabel: "nodes", YLabel: "time/iter (ms)", Series: []Series{off, on}}
}

// ablChannelAPI measures one-way inter-node delivery latency of a
// device buffer under the Channel API vs the GPU Messaging API across
// message sizes. The x column holds log2(bytes) instead of nodes.
func ablChannelAPI(opt Options) Figure {
	channel := Series{Name: "ChannelAPI"}
	messaging := Series{Name: "MessagingAPI"}
	for p := 10; p <= 24; p += 2 {
		bytes := int64(1) << p

		mc := machine.New(machine.Summit(2))
		ch := comm.NewChannel(mc.Net,
			comm.Endpoint{Proc: 0, Node: 0}, comm.Endpoint{Proc: 1, Node: 1})
		var chAt sim.Time
		ch.Recv(1, 0, func() { chAt = mc.Eng.Now() })
		ch.Send(0, 0, bytes, sim.FiredSignal(), nil)
		mc.Eng.Run()

		mm := machine.New(machine.Summit(2))
		var msgAt sim.Time
		comm.MessagingSend(mm.Net, comm.DefaultMessagingConfig(),
			comm.Endpoint{Proc: 0, Node: 0}, comm.Endpoint{Proc: 1, Node: 1},
			bytes, sim.FiredSignal(), func() { msgAt = mm.Eng.Now() })
		mm.Eng.Run()

		channel.Points = append(channel.Points, Point{Nodes: p, Value: us(chAt)})
		messaging.Points = append(messaging.Points, Point{Nodes: p, Value: us(msgAt)})
		opt.progress("abl-chanapi 2^%d bytes: channel=%v messaging=%v", p, chAt, msgAt)
	}
	return Figure{ID: "abl-chanapi", Title: "Channel API vs GPU Messaging API",
		XLabel: "log2B", YLabel: "one-way latency (us)", Series: []Series{channel, messaging}}
}
