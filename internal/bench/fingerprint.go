package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync/atomic"

	"gat/internal/sim"
)

// Run fingerprinting: the content address of a simulation result. Two
// specs share a fingerprint exactly when they must produce the same
// figure point, so the fingerprint is the cache key of the run store
// (internal/sweep/store) and the precision anchor of sweep resume.
//
// The canonical input covers everything that determines a run's
// simulated output:
//
//   - the engine-semantics salt (sim.EngineVersion) — bumped when the
//     simulator's timelines change;
//   - the versioned app and machine identities (app.Identity,
//     machine.Profile.Identity) — bumped when a workload or cost model
//     changes independent of the engine;
//   - the experiment coordinates: figure, scenario, series, x, nodes;
//   - the resolved iteration counts, the per-run seed, and the jitter
//     fraction.
//
// Host-side facts (worker count, wall-clock, output format) are
// deliberately absent: they never influence figure values.

// Fingerprint returns the run's content address: 32 lower-case hex
// characters (the first 16 bytes of a SHA-256 over the canonical input
// string). Stable across processes, hosts and Go versions.
func (s RunSpec) Fingerprint() string {
	return s.fingerprint(sim.EngineVersion)
}

// fingerprint computes the content address under an explicit engine
// salt; split out so tests can prove that bumping the salt invalidates
// every key.
func (s RunSpec) fingerprint(salt string) string {
	// The scenario component is versioned (Scenario.Identity): cell
	// logic with embedded cost-model constants — NewMachineWith fabric
	// parameters, search sets — invalidates its own keys by bumping
	// Scenario.Version. At version 0 the identity is the plain name,
	// the exact bytes pre-versioned keys hashed. Specs built outside
	// Scenario.Plan (tests) fall back to the name.
	sid := s.scenarioID
	if sid == "" {
		sid = s.Scenario
	}
	h := sha256.New()
	fmt.Fprintf(h, "gat-run|engine=%s|fig=%s|scenario=%s|app=%s|machine=%s|series=%s|x=%d|nodes=%d|warmup=%d|iters=%d|seed=%d|jitter=%s",
		salt, s.FigID, sid, s.appID, s.machineID, s.Series,
		s.X, s.Nodes, s.Warmup, s.Iters, s.Seed,
		strconv.FormatFloat(s.Jitter, 'g', -1, 64))
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// AppIdentity and MachineIdentity expose the versioned identity
// strings hashed into the fingerprint (empty app identity for
// machine-level scenarios), for provenance displays and cache entries.
func (s RunSpec) AppIdentity() string { return s.appID }

// MachineIdentity returns the versioned machine-profile identity.
func (s RunSpec) MachineIdentity() string { return s.machineID }

// executions counts RunSpec.Execute calls process-wide. It is the
// run-counter hook behind Executions, letting tests and smoke checks
// assert that a warm-cache sweep performed zero engine simulations.
var executions atomic.Uint64

// Executions returns the number of RunSpec simulations executed by
// this process so far (monotonic; cached or resumed runs don't count).
func Executions() uint64 { return executions.Load() }
