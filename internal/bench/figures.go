package bench

import (
	"fmt"

	"gat/internal/app"
)

var weakBaseLarge = [3]int{1536, 1536, 1536}
var weakBaseSmall = [3]int{192, 192, 192}
var strongGlobal = [3]int{3072, 3072, 3072}
var fusionGlobal = [3]int{768, 768, 768}

// registerFigureScenarios registers the paper's figures (§IV), each as
// a scenario over the jacobi3d app on the calibrated Summit profile.
func registerFigureScenarios() {
	RegisterScenario(fig6Scenario(true))
	RegisterScenario(fig6Scenario(false))
	RegisterScenario(variantScenario("fig7a", "Weak scaling 1536^3/node: MPI-H, MPI-D, Charm-H, Charm-D",
		"time/iter (ms)", 1, func(n int) [3]int { return weakGlobal(weakBaseLarge, n) }, false))
	RegisterScenario(variantScenario("fig7b", "Weak scaling 192^3/node: MPI-H, MPI-D, Charm-H, Charm-D",
		"time/iter (us)", 1, func(n int) [3]int { return weakGlobal(weakBaseSmall, n) }, true))
	RegisterScenario(variantScenario("fig7c", "Strong scaling 3072^3: MPI-H, MPI-D, Charm-H, Charm-D",
		"time/iter (ms)", 8, func(int) [3]int { return strongGlobal }, false))
	RegisterScenario(fig8Scenario("fig8a", 1))
	RegisterScenario(fig8Scenario("fig8b", 8))
	RegisterScenario(fig9Scenario("fig9a", 1))
	RegisterScenario(fig9Scenario("fig9b", 8))
}

// fig6Scenario reproduces Fig 6: Charm-H with ODF-4, before vs after
// the §III-C synchronization/stream optimizations, weak (fig6a) or
// strong (fig6b) scaling.
func fig6Scenario(weak bool) *Scenario {
	id, title := "fig6a", "Weak scaling 1536^3/node: Charm-H before vs after optimizations"
	lo := 1
	if !weak {
		id, title = "fig6b", "Strong scaling 3072^3: Charm-H before vs after optimizations"
		lo = 8
	}
	cell := func(unoptimized bool) CellFn {
		return func(c *Cell) Point {
			global := strongGlobal
			if weak {
				global = weakGlobal(weakBaseLarge, c.Nodes)
			}
			r := c.Run("charm-h", app.Params{Global: global, ODF: 4, Unoptimized: unoptimized})
			c.Progress("t=%v", r.TimePerIter)
			return Point{Nodes: c.Nodes, Value: ms(r.TimePerIter)}
		}
	}
	return &Scenario{
		Name: id, Title: title, App: "jacobi3d", Machine: "summit", Kind: KindFigure,
		XLabel: "nodes", YLabel: "time/iter (ms)",
		Axis: nodeAxis(lo, 512),
		Series: []SeriesDef{
			{"Before", cell(true)},
			{"After", cell(false)},
		},
	}
}

// variantScenario builds the MPI-H / MPI-D / Charm-H / Charm-D
// comparison repeated in every panel of Fig 7: four independent runs
// per node count, where the Charm entries each search their best ODF,
// as the paper does for every Charm data point (§IV-A).
func variantScenario(id, title, ylabel string, lo int, global func(int) [3]int, inUS bool) *Scenario {
	conv := ms
	if inUS {
		conv = us
	}
	mpiCell := func(variant string) CellFn {
		return func(c *Cell) Point {
			r := c.Run(variant, app.Params{Global: global(c.Nodes)})
			c.Progress("t=%v", r.TimePerIter)
			return congested(Point{Nodes: c.Nodes, Value: conv(r.TimePerIter)}, r)
		}
	}
	charmCell := func(variant string) CellFn {
		return func(c *Cell) Point {
			r, odf := bestODFRun(c, variant, global(c.Nodes))
			c.Progress("t=%v (odf%d)", r.TimePerIter, odf)
			return congested(Point{Nodes: c.Nodes, Value: conv(r.TimePerIter), Meta: fmt.Sprintf("ODF-%d", odf)}, r)
		}
	}
	return &Scenario{
		Name: id, Title: title, App: "jacobi3d", Machine: "summit", Kind: KindFigure,
		XLabel: "nodes", YLabel: ylabel,
		Axis: nodeAxis(lo, 512),
		Series: []SeriesDef{
			{"MPI-H", mpiCell("mpi-h")},
			{"MPI-D", mpiCell("mpi-d")},
			{"Charm-H", charmCell("charm-h")},
			{"Charm-D", charmCell("charm-d")},
		},
	}
}

// bestODFRun runs the Charm variant over the candidate ODFs for the
// cell's scale and returns the fastest result, as the paper does for
// every Charm data point (§IV-A: "the one with the best performance is
// chosen"). All candidate runs share the cell's seed: they are
// alternatives for the same data point, not separate measurements.
func bestODFRun(c *Cell, variant string, global [3]int) (app.Metrics, int) {
	var best app.Metrics
	bestODF := 0
	for _, odf := range odfCandidates(c.Nodes) {
		r := c.Run(variant, app.Params{Global: global, ODF: odf})
		if bestODF == 0 || r.TimePerIter < best.TimePerIter {
			best, bestODF = r, odf
		}
	}
	return best, bestODF
}

// fusionStrategies is the strategy axis of Figs 8 and 9.
var fusionStrategies = []string{"none", "A", "B", "C"}

// fig8Scenario runs the kernel-fusion comparison: Charm-D on a 768^3
// grid scaled to 128 nodes, at a fixed ODF.
func fig8Scenario(id string, odf int) *Scenario {
	cell := func(fusion string) CellFn {
		return func(c *Cell) Point {
			r := c.Run("charm-d", app.Params{Global: fusionGlobal, ODF: odf, Fusion: fusion})
			c.Progress("t=%v", r.TimePerIter)
			return Point{Nodes: c.Nodes, Value: ms(r.TimePerIter)}
		}
	}
	series := make([]SeriesDef, len(fusionStrategies))
	for i, f := range fusionStrategies {
		name := "Strategy" + f
		if f == "none" {
			name = "Baseline"
		}
		series[i] = SeriesDef{name, cell(f)}
	}
	return &Scenario{
		Name: id, Title: fmt.Sprintf("Kernel fusion, 768^3, ODF-%d", odf),
		App: "jacobi3d", Machine: "summit", Kind: KindFigure,
		XLabel: "nodes", YLabel: "time/iter (ms)",
		Axis:   nodeAxis(1, 128),
		Series: series,
	}
}

// fig9Scenario measures the speedup from CUDA graphs under each fusion
// strategy: speedup = t(no graphs) / t(graphs). Each cell runs its
// base/graphed pair back to back so the ratio is self-contained.
func fig9Scenario(id string, odf int) *Scenario {
	cell := func(fusion string) CellFn {
		return func(c *Cell) Point {
			p := app.Params{Global: fusionGlobal, ODF: odf, Fusion: fusion}
			base := c.Run("charm-d", p)
			p.Graphs = true
			graphed := c.Run("charm-d", p)
			speedup := float64(base.TimePerIter) / float64(graphed.TimePerIter)
			c.Progress("base=%v graphed=%v speedup=%.2f",
				base.TimePerIter, graphed.TimePerIter, speedup)
			return Point{Nodes: c.Nodes, Value: speedup}
		}
	}
	series := make([]SeriesDef, len(fusionStrategies))
	for i, f := range fusionStrategies {
		name := "Fusion" + f
		if f == "none" {
			name = "NoFusion"
		}
		series[i] = SeriesDef{name, cell(f)}
	}
	return &Scenario{
		Name: id, Title: fmt.Sprintf("CUDA-graph speedup vs fusion, 768^3, ODF-%d", odf),
		App: "jacobi3d", Machine: "summit", Kind: KindFigure,
		XLabel: "nodes", YLabel: "speedup (x)",
		Axis:   nodeAxis(1, 128),
		Series: series,
	}
}
