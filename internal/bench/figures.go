package bench

import (
	"fmt"

	"gat/internal/jacobi"
)

var weakBaseLarge = [3]int{1536, 1536, 1536}
var weakBaseSmall = [3]int{192, 192, 192}
var strongGlobal = [3]int{3072, 3072, 3072}
var fusionGlobal = [3]int{768, 768, 768}

// fig6a: weak scaling of Charm-H with ODF-4, before vs after the
// §III-C synchronization/stream optimizations.
func fig6a(opt Options) Plan {
	return fig6(opt, true)
}

// fig6b: the strong-scaling companion of fig6a.
func fig6b(opt Options) Plan {
	return fig6(opt, false)
}

func fig6(opt Options, weak bool) Plan {
	id, title := "fig6a", "Weak scaling 1536^3/node: Charm-H before vs after optimizations"
	lo := 1
	if !weak {
		id, title = "fig6b", "Strong scaling 3072^3: Charm-H before vs after optimizations"
		lo = 8
	}
	b := newPlan(opt, id, title, "nodes", "time/iter (ms)", "Before", "After")
	for _, n := range nodeSweep(lo, 512, opt) {
		global := strongGlobal
		if weak {
			global = weakGlobal(weakBaseLarge, n)
		}
		for si, co := range []jacobi.CharmOpts{
			{ODF: 4},
			jacobi.CharmOpts{ODF: 4}.Optimized(),
		} {
			b.add(si, n, n, func(s RunSpec) Point {
				r := runCharm(opt, global, n, s.Seed, co)
				opt.progress("%s t=%v", s.Name(), r.TimePerIter)
				return Point{Nodes: n, Value: ms(r.TimePerIter)}
			})
		}
	}
	return b.plan()
}

// variantPlan builds the MPI-H / MPI-D / Charm-H / Charm-D comparison
// repeated in every panel of Fig 7: four independent runs per node
// count, where the Charm entries each search their best ODF, as the
// paper does for every Charm data point (§IV-A).
func variantPlan(opt Options, id, title, ylabel string, lo int, global func(int) [3]int, inUS bool) Plan {
	conv := ms
	if inUS {
		conv = us
	}
	b := newPlan(opt, id, title, "nodes", ylabel, "MPI-H", "MPI-D", "Charm-H", "Charm-D")
	for _, n := range nodeSweep(lo, 512, opt) {
		g := global(n)
		for si, mo := range []jacobi.MPIOpts{{}, {Device: true}} {
			b.add(si, n, n, func(s RunSpec) Point {
				r := runMPI(opt, g, n, s.Seed, mo)
				opt.progress("%s t=%v", s.Name(), r.TimePerIter)
				return Point{Nodes: n, Value: conv(r.TimePerIter)}
			})
		}
		for i, co := range []jacobi.CharmOpts{
			jacobi.CharmOpts{}.Optimized(),
			jacobi.CharmOpts{GPUAware: true}.Optimized(),
		} {
			b.add(2+i, n, n, func(s RunSpec) Point {
				r, odf := bestODF(opt, opt.cfg(g), n, s.Seed, co, odfCandidates(n))
				opt.progress("%s t=%v (odf%d)", s.Name(), r.TimePerIter, odf)
				return Point{Nodes: n, Value: conv(r.TimePerIter), Meta: fmt.Sprintf("ODF-%d", odf)}
			})
		}
	}
	return b.plan()
}

// fig7a: weak scaling with the large base problem (1536^3 per node).
func fig7a(opt Options) Plan {
	return variantPlan(opt, "fig7a", "Weak scaling 1536^3/node: MPI-H, MPI-D, Charm-H, Charm-D",
		"time/iter (ms)", 1, func(n int) [3]int { return weakGlobal(weakBaseLarge, n) }, false)
}

// fig7b: weak scaling with the small base problem (192^3 per node),
// reported in microseconds.
func fig7b(opt Options) Plan {
	return variantPlan(opt, "fig7b", "Weak scaling 192^3/node: MPI-H, MPI-D, Charm-H, Charm-D",
		"time/iter (us)", 1, func(n int) [3]int { return weakGlobal(weakBaseSmall, n) }, true)
}

// fig7c: strong scaling of the fixed 3072^3 grid.
func fig7c(opt Options) Plan {
	return variantPlan(opt, "fig7c", "Strong scaling 3072^3: MPI-H, MPI-D, Charm-H, Charm-D",
		"time/iter (ms)", 8, func(int) [3]int { return strongGlobal }, false)
}

// fusionStrategies is the strategy axis of Figs 8 and 9.
var fusionStrategies = []jacobi.Fusion{
	jacobi.FusionNone, jacobi.FusionA, jacobi.FusionB, jacobi.FusionC,
}

// fig8 runs the kernel-fusion comparison: Charm-D on a 768^3 grid
// scaled to 128 nodes, at a fixed ODF.
func fig8(opt Options, id string, odf int) Plan {
	b := newPlan(opt, id, fmt.Sprintf("Kernel fusion, 768^3, ODF-%d", odf),
		"nodes", "time/iter (ms)", "Baseline", "StrategyA", "StrategyB", "StrategyC")
	for _, n := range nodeSweep(1, 128, opt) {
		for si, f := range fusionStrategies {
			b.add(si, n, n, func(s RunSpec) Point {
				r := runCharm(opt, fusionGlobal, n, s.Seed,
					jacobi.CharmOpts{ODF: odf, GPUAware: true, Fusion: f}.Optimized())
				opt.progress("%s t=%v", s.Name(), r.TimePerIter)
				return Point{Nodes: n, Value: ms(r.TimePerIter)}
			})
		}
	}
	return b.plan()
}

func fig8a(opt Options) Plan { return fig8(opt, "fig8a", 1) }
func fig8b(opt Options) Plan { return fig8(opt, "fig8b", 8) }

// fig9 measures the speedup from CUDA graphs under each fusion
// strategy: speedup = t(no graphs) / t(graphs). Each spec runs its
// base/graphed pair back to back so the ratio is self-contained.
func fig9(opt Options, id string, odf int) Plan {
	b := newPlan(opt, id, fmt.Sprintf("CUDA-graph speedup vs fusion, 768^3, ODF-%d", odf),
		"nodes", "speedup (x)", "NoFusion", "FusionA", "FusionB", "FusionC")
	for _, n := range nodeSweep(1, 128, opt) {
		for si, f := range fusionStrategies {
			b.add(si, n, n, func(s RunSpec) Point {
				co := jacobi.CharmOpts{ODF: odf, GPUAware: true, Fusion: f}.Optimized()
				base := runCharm(opt, fusionGlobal, n, s.Seed, co)
				co.Graphs = true
				graphed := runCharm(opt, fusionGlobal, n, s.Seed, co)
				speedup := float64(base.TimePerIter) / float64(graphed.TimePerIter)
				opt.progress("%s base=%v graphed=%v speedup=%.2f",
					s.Name(), base.TimePerIter, graphed.TimePerIter, speedup)
				return Point{Nodes: n, Value: speedup}
			})
		}
	}
	return b.plan()
}

func fig9a(opt Options) Plan { return fig9(opt, "fig9a", 1) }
func fig9b(opt Options) Plan { return fig9(opt, "fig9b", 8) }
